#!/usr/bin/env bash
# run_checks.sh: tier-1 tests in the default configuration, a budgeted
# determinism check of the CLI (same circuit + work budget at several
# --jobs values must produce byte-identical outputs), a shared-BDD-manager
# identity check (shared and private managers must produce the same bytes
# at every --jobs value), a batch steal-invariance check (outputs
# byte-identical across --jobs 1/2/4 x --steal on/off), an intra-cone
# fan-out invariance check (outputs byte-identical across --jobs 1/2/4 x
# --intra-cone on/off, budgeted and warm-cache variants included), a
# per-cone memory-quota determinism check (tight --cone-mem batch runs
# byte-identical across --jobs x --intra-cone x cold/warm cache, with the
# full suite re-run under AddressSanitizer), fault-injection
# and checkpoint/resume checks of the containment subsystem (including a
# steal-enabled crash/resume cycle), persistent-memo-store checks (warm
# runs byte-identical to cold across --jobs, corrupted stores degrade to
# cold start), a graceful-shutdown check (SIGTERM mid-batch must exit with
# the documented resumable code, leave a valid journal, and --resume must
# reproduce the uninterrupted bytes), then the concurrency-sensitive
# engine/cancel/bdd/parse/io/persist tests — including the
# nested-parallel_for deadlock regressions in test_thread_pool and the
# cancellation watchdog paths — under ThreadSanitizer.
#
#   tools/run_checks.sh [--skip-tsan]
#
# Exit code is nonzero if any stage fails.
set -euo pipefail

cd "$(dirname "$0")/.."
REPO="$PWD"
JOBS="$(nproc 2>/dev/null || echo 2)"
SKIP_TSAN=0
[[ "${1:-}" == "--skip-tsan" ]] && SKIP_TSAN=1

echo "== stage 1: tier-1 tests (RelWithDebInfo) =="
cmake -B build -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build -j "$JOBS"
(cd build && ctest --output-on-failure -j "$JOBS")

echo "== stage 2: budgeted determinism across job counts =="
# The core claim of the deterministic work budget: exhausting it must cut
# the run at the same round on every thread schedule, so the output files
# are byte-identical across --jobs. Checked on both regression circuits.
WORKDIR="$(mktemp -d)"
trap 'rm -rf "$WORKDIR"' EXIT
for circuit in tests/data/rca16.blif tests/data/control24.blif; do
    name="$(basename "$circuit" .blif)"
    for j in 1 2 4; do
        ./build/tools/lls_opt --work-budget 200 --jobs "$j" --iterations 6 \
            "$circuit" "$WORKDIR/$name.j$j.blif" > /dev/null
    done
    cmp "$WORKDIR/$name.j1.blif" "$WORKDIR/$name.j2.blif"
    cmp "$WORKDIR/$name.j1.blif" "$WORKDIR/$name.j4.blif"
    echo "$name: budgeted outputs identical for --jobs 1/2/4"
done

echo "== stage 2b: shared BDD manager is jobs- and mode-invariant =="
# The shared concurrent BddManager is an execution knob: with it on, the
# output must be byte-identical across --jobs AND identical to the private
# per-call managers (--shared-bdd off), on both regression circuits.
for circuit in tests/data/rca16.blif tests/data/control24.blif; do
    name="$(basename "$circuit" .blif)"
    for j in 1 2 4; do
        ./build/tools/lls_opt --shared-bdd on --jobs "$j" --iterations 6 \
            "$circuit" "$WORKDIR/$name.shared.j$j.blif" > /dev/null
    done
    ./build/tools/lls_opt --shared-bdd off --jobs 2 --iterations 6 \
        "$circuit" "$WORKDIR/$name.private.blif" > /dev/null
    cmp "$WORKDIR/$name.shared.j1.blif" "$WORKDIR/$name.shared.j2.blif"
    cmp "$WORKDIR/$name.shared.j1.blif" "$WORKDIR/$name.shared.j4.blif"
    cmp "$WORKDIR/$name.shared.j1.blif" "$WORKDIR/$name.private.blif"
    echo "$name: shared-BDD outputs identical for --jobs 1/2/4 and to --shared-bdd off"
done

echo "== stage 2c: batch outputs are jobs- and steal-invariant =="
# Two-level work stealing is an execution knob: batch outputs must be
# byte-identical across --jobs 1/2/4 x --steal on/off. The --jobs 1 --steal
# off corner is the old strictly-serial schedule; --jobs 4 --steal on has
# freed workers joining other items' cone fan-outs.
for j in 1 2 4; do
    for s in on off; do
        ./build/tools/lls_opt --batch --jobs "$j" --steal "$s" \
            --out-dir "$WORKDIR/batch.j$j.$s" \
            tests/data/rca16.blif tests/data/control24.blif > /dev/null
    done
done
for j in 1 2 4; do
    for s in on off; do
        for name in rca16 control24; do
            cmp "$WORKDIR/batch.j1.off/$name.blif" "$WORKDIR/batch.j$j.$s/$name.blif"
        done
    done
done
echo "batch outputs identical across --jobs 1/2/4 x --steal on/off"

echo "== stage 2d: intra-cone fan-out is jobs-, mode-, and cache-invariant =="
# The third scheduling level (per-cube SAT don't-care proofs fanned across
# the pool) is an execution knob: batch outputs and budgeted single runs
# must be byte-identical across --jobs 1/2/4 x --intra-cone on/off, and a
# warm persistent-store replay must reproduce the cold bytes under every
# combination too.
for j in 1 2 4; do
    for m in on off; do
        ./build/tools/lls_opt --batch --jobs "$j" --intra-cone "$m" --iterations 6 \
            --out-dir "$WORKDIR/ic.j$j.$m" \
            tests/data/rca16.blif tests/data/control24.blif > /dev/null
        ./build/tools/lls_opt --work-budget 200 --jobs "$j" --intra-cone "$m" \
            --iterations 6 tests/data/rca16.blif "$WORKDIR/ic.budget.j$j.$m.blif" > /dev/null
    done
done
for j in 1 2 4; do
    for m in on off; do
        for name in rca16 control24; do
            cmp "$WORKDIR/ic.j1.off/$name.blif" "$WORKDIR/ic.j$j.$m/$name.blif"
        done
        cmp "$WORKDIR/ic.budget.j1.off.blif" "$WORKDIR/ic.budget.j$j.$m.blif"
    done
done
# Warm-cache variant: populate the persistent store cold, then replay it
# read-only at several --jobs x --intra-cone combinations.
ICCACHE="$WORKDIR/intracone_cache"
./build/tools/lls_opt --cache-dir "$ICCACHE" --jobs 1 --intra-cone off --iterations 6 \
    --aiger "$WORKDIR/ic.cold.aag" \
    tests/data/rca16.blif "$WORKDIR/ic.cold.blif" > /dev/null
for j in 1 4; do
    for m in on off; do
        ./build/tools/lls_opt --cache-dir "$ICCACHE" --cache-mode read --jobs "$j" \
            --intra-cone "$m" --iterations 6 --aiger "$WORKDIR/ic.warm.j$j.$m.aag" \
            tests/data/rca16.blif "$WORKDIR/ic.warm.j$j.$m.blif" > /dev/null
        cmp "$WORKDIR/ic.cold.aag" "$WORKDIR/ic.warm.j$j.$m.aag"
    done
done
echo "intra-cone outputs identical across --jobs 1/2/4 x on/off, budgeted + warm cache"

echo "== stage 2e: per-cone memory quota degrades deterministically =="
# The Tier-1 memory quota's core claim: a tight --cone-mem must trip at
# identical program points whatever the job count, intra-cone setting, or
# cache state — batch outputs byte-identical across --jobs 1/2/4 x
# --intra-cone on/off x cold/warm persistent cache, with at least one cone
# actually degraded (the quota is calibrated to fire on rca16).
MEMCACHE="$WORKDIR/memgov_cache"
# Seed run: populates the persistent store (quota-degraded evaluations
# memoize and persist like any deterministic fault) and is the byte
# reference for every later combination.
./build/tools/lls_opt --batch --cone-mem 4M --mem-budget 64M --jobs 1 \
    --intra-cone on --iterations 6 --cache-dir "$MEMCACHE" \
    --out-dir "$WORKDIR/mg.seed" \
    tests/data/rca16.blif tests/data/control24.blif > "$WORKDIR/mg.seed.log"
grep -q "memgov" "$WORKDIR/mg.seed.log" || {
    echo "expected at least one memgov-degraded cone under --cone-mem 4M"; exit 1; }
for j in 1 2 4; do
    for m in on off; do
        ./build/tools/lls_opt --batch --cone-mem 4M --mem-budget 64M \
            --jobs "$j" --intra-cone "$m" --iterations 6 \
            --out-dir "$WORKDIR/mg.j$j.$m.cold" \
            tests/data/rca16.blif tests/data/control24.blif \
            > "$WORKDIR/mg.j$j.$m.cold.log"
        ./build/tools/lls_opt --batch --cone-mem 4M --mem-budget 64M \
            --jobs "$j" --intra-cone "$m" --iterations 6 \
            --cache-dir "$MEMCACHE" --cache-mode read \
            --out-dir "$WORKDIR/mg.j$j.$m.warm" \
            tests/data/rca16.blif tests/data/control24.blif \
            > "$WORKDIR/mg.j$j.$m.warm.log"
    done
done
for j in 1 2 4; do
    for m in on off; do
        for pass in cold warm; do
            for name in rca16 control24; do
                cmp "$WORKDIR/mg.seed/$name.blif" "$WORKDIR/mg.j$j.$m.$pass/$name.blif"
            done
        done
    done
done
echo "quota'd outputs identical across --jobs 1/2/4 x --intra-cone on/off x cold/warm"

echo "== stage 3: fault injection never aborts and stays jobs-invariant =="
# Every engine site class, injected on the regression circuits: the run must
# exit 0 (contained, not crashed), verify equivalence, and produce the same
# bytes at every --jobs value. Plus a short fuzz run with injection enabled.
for spec in resource@decompose:1 invariant@spcf:1 solver@sat:1 verify@cec:1 \
            resource@decompose:3; do
    for circuit in tests/data/rca16.blif tests/data/control24.blif; do
        name="$(basename "$circuit" .blif)"
        tag="${spec//[@:]/_}"
        for j in 1 2 4; do
            ./build/tools/lls_opt --fault-inject "$spec" --jobs "$j" --iterations 6 \
                "$circuit" "$WORKDIR/$name.$tag.j$j.blif" > /dev/null
        done
        cmp "$WORKDIR/$name.$tag.j1.blif" "$WORKDIR/$name.$tag.j2.blif"
        cmp "$WORKDIR/$name.$tag.j1.blif" "$WORKDIR/$name.$tag.j4.blif"
        echo "$name: $spec contained, outputs identical for --jobs 1/2/4"
    done
done
# From inside WORKDIR so a failure's fuzz_corpus/ lands in the temp dir.
(cd "$WORKDIR" && "$REPO/build/tools/lls_fuzz" 3 4242 --fault-inject resource@decompose:1)
# Store-file mutation fuzzing: random corruption of published shards must
# always degrade to a byte-identical cold recompute, never a crash.
(cd "$WORKDIR" && "$REPO/build/tools/lls_fuzz" --mutate-store 3 4242)
# Memory-governor fuzzing: random tight per-cone quotas + small global
# budgets must always be contained (equivalent, never "recovered",
# byte-identical across job counts).
(cd "$WORKDIR" && "$REPO/build/tools/lls_fuzz" --mem-budget 3 4242)
# The full test suite again under AddressSanitizer: the recovery ladder's
# throw/catch/degrade paths, the quota exhaustion throws, and the
# governor's shed/admission machinery must be leak- and corruption-free,
# not just functionally right.
cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DLLS_SANITIZE=address
cmake --build build-asan -j "$JOBS"
(cd build-asan && ctest --output-on-failure -j "$JOBS")

echo "== stage 4: interrupted checkpoint + resume is byte-identical =="
# Run the batch uninterrupted; then crash it (simulated, exit 42) after one
# journaled circuit and resume from the checkpoint. The resumed outputs must
# match the uninterrupted ones byte for byte.
./build/tools/lls_opt --batch tests/data/rca16.blif tests/data/control24.blif \
    --out-dir "$WORKDIR/full" --jobs 2 > /dev/null
rc=0
./build/tools/lls_opt --batch tests/data/rca16.blif tests/data/control24.blif \
    --out-dir "$WORKDIR/resumed" --jobs 2 --checkpoint "$WORKDIR/ckpt.txt" \
    --fault-inject fatal@batch:1 > /dev/null 2>&1 || rc=$?
[[ "$rc" == 42 ]] || { echo "expected simulated crash exit 42, got $rc"; exit 1; }
./build/tools/lls_opt --batch tests/data/rca16.blif tests/data/control24.blif \
    --out-dir "$WORKDIR/resumed" --jobs 2 --checkpoint "$WORKDIR/ckpt.txt" \
    --resume > /dev/null
cmp "$WORKDIR/full/rca16.blif" "$WORKDIR/resumed/rca16.blif"
cmp "$WORKDIR/full/control24.blif" "$WORKDIR/resumed/control24.blif"
echo "checkpoint/resume outputs identical to uninterrupted run"

# The same crash/resume cycle with stealing enabled and more workers than
# items: an interrupted steal-enabled batch must resume byte-identical too.
rc=0
./build/tools/lls_opt --batch tests/data/rca16.blif tests/data/control24.blif \
    --out-dir "$WORKDIR/resumed-steal" --jobs 4 --steal on \
    --checkpoint "$WORKDIR/ckpt-steal.txt" \
    --fault-inject fatal@batch:1 > /dev/null 2>&1 || rc=$?
[[ "$rc" == 42 ]] || { echo "expected simulated crash exit 42, got $rc"; exit 1; }
./build/tools/lls_opt --batch tests/data/rca16.blif tests/data/control24.blif \
    --out-dir "$WORKDIR/resumed-steal" --jobs 4 --steal on \
    --checkpoint "$WORKDIR/ckpt-steal.txt" --resume > /dev/null
cmp "$WORKDIR/full/rca16.blif" "$WORKDIR/resumed-steal/rca16.blif"
cmp "$WORKDIR/full/control24.blif" "$WORKDIR/resumed-steal/control24.blif"
echo "steal-enabled checkpoint/resume outputs identical to uninterrupted run"

echo "== stage 4b: persistent store warm runs are byte-identical =="
# Cold run populates the cache directory; warm runs at several --jobs
# values must replay to byte-identical AIGER output with warm hits > 0.
CACHE="$WORKDIR/memo_cache"
./build/tools/lls_opt --cache-dir "$CACHE" --jobs 1 --iterations 6 \
    --aiger "$WORKDIR/persist.cold.aag" \
    tests/data/rca16.blif "$WORKDIR/persist.cold.blif" > /dev/null
for j in 1 2 4; do
    ./build/tools/lls_opt --cache-dir "$CACHE" --cache-mode read --jobs "$j" \
        --iterations 6 --aiger "$WORKDIR/persist.warm.j$j.aag" \
        --metrics-json "$WORKDIR/persist.warm.j$j.json" \
        tests/data/rca16.blif "$WORKDIR/persist.warm.j$j.blif" > /dev/null
    cmp "$WORKDIR/persist.cold.aag" "$WORKDIR/persist.warm.j$j.aag"
    grep -q '"persist.warm_hits":0' "$WORKDIR/persist.warm.j$j.json" && {
        echo "expected persist.warm_hits > 0 at --jobs $j"; exit 1; }
    grep -q '"persist.warm_hits":' "$WORKDIR/persist.warm.j$j.json" || {
        echo "persist.warm_hits missing from metrics JSON"; exit 1; }
done
echo "warm outputs identical to cold for --jobs 1/2/4, warm hits recorded"

echo "== stage 4c: corrupted store degrades to cold start, not failure =="
# Truncate and bit-flip every shard: the run must exit 0, report a cold
# start, and still produce the same bytes (recomputed).
CORRUPT="$WORKDIR/memo_corrupt"
cp -r "$CACHE" "$CORRUPT"
for f in "$CORRUPT"/*.shard; do
    size=$(stat -c %s "$f")
    head -c "$((size / 2))" "$f" > "$f.t" && mv "$f.t" "$f"
    printf '\377' | dd of="$f" bs=1 seek=12 conv=notrunc status=none
done
./build/tools/lls_opt --cache-dir "$CORRUPT" --cache-mode read --jobs 2 \
    --iterations 6 --aiger "$WORKDIR/persist.corrupt.aag" \
    tests/data/rca16.blif "$WORKDIR/persist.corrupt.blif" > "$WORKDIR/persist.corrupt.log"
grep -q "persist: cold start" "$WORKDIR/persist.corrupt.log" || {
    echo "expected cold-start fallback on corrupted store"; exit 1; }
cmp "$WORKDIR/persist.cold.aag" "$WORKDIR/persist.corrupt.aag"
echo "corrupted store contained: cold start, byte-identical output"

echo "== stage 4d: SIGTERM mid-batch is resumable and byte-identical =="
# A larger batch (distinct copies so names stay unique in the journal and
# out-dir), killed with SIGTERM mid-flight: the process must exit with the
# documented resumable-shutdown code (30), keep a valid journal of every
# finished item, and --resume must complete the batch with outputs
# byte-identical to an uninterrupted run. Also exercises the deadline
# watchdog end-to-end first (--cone-deadline on a real run must exit 0).
./build/tools/lls_opt --cone-deadline 30s --jobs 2 --iterations 6 \
    tests/data/rca16.blif "$WORKDIR/deadline.blif" > /dev/null
echo "--cone-deadline run completed cleanly"
# Watchdog fuzzing: random circuits under microsecond-scale random cone
# deadlines must stay equivalent and well-formed (degrade-to-original).
(cd "$WORKDIR" && "$REPO/build/tools/lls_fuzz" --deadline 3 4242)
SIG_INPUTS=()
for i in 1 2 3; do
    cp tests/data/rca16.blif "$WORKDIR/sig_rca$i.blif"
    cp tests/data/control24.blif "$WORKDIR/sig_ctl$i.blif"
    SIG_INPUTS+=("$WORKDIR/sig_rca$i.blif" "$WORKDIR/sig_ctl$i.blif")
done
./build/tools/lls_opt --batch --jobs 2 --iterations 6 \
    --out-dir "$WORKDIR/sig-full" "${SIG_INPUTS[@]}" > /dev/null
rc=0
./build/tools/lls_opt --batch --jobs 2 --iterations 6 \
    --out-dir "$WORKDIR/sig-resumed" --checkpoint "$WORKDIR/sig-ckpt.txt" \
    "${SIG_INPUTS[@]}" > "$WORKDIR/sig.log" 2>&1 &
SIG_PID=$!
sleep 0.3
kill -TERM "$SIG_PID" 2>/dev/null || true
wait "$SIG_PID" || rc=$?
[[ "$rc" == 30 ]] || { echo "expected signal-shutdown exit 30, got $rc"; cat "$WORKDIR/sig.log"; exit 1; }
grep -q "terminated by signal 15" "$WORKDIR/sig.log" || {
    echo "missing shutdown diagnostic"; cat "$WORKDIR/sig.log"; exit 1; }
[[ -f "$WORKDIR/sig-ckpt.txt" ]] || { echo "journal missing after shutdown"; exit 1; }
./build/tools/lls_opt --batch --jobs 2 --iterations 6 \
    --out-dir "$WORKDIR/sig-resumed" --checkpoint "$WORKDIR/sig-ckpt.txt" \
    --resume "${SIG_INPUTS[@]}" > /dev/null
for i in 1 2 3; do
    cmp "$WORKDIR/sig-full/sig_rca$i.blif" "$WORKDIR/sig-resumed/sig_rca$i.blif"
    cmp "$WORKDIR/sig-full/sig_ctl$i.blif" "$WORKDIR/sig-resumed/sig_ctl$i.blif"
done
echo "SIGTERM shutdown: exit 30, journal intact, resumed outputs byte-identical"

if [[ "$SKIP_TSAN" == 1 ]]; then
    echo "== stage 5: skipped (--skip-tsan) =="
    exit 0
fi

echo "== stage 5: engine + cancel + shared-BDD + persist tests under ThreadSanitizer =="
# test_engine includes the intra-cone stress test: many concurrent per-cube
# SAT fan-outs from multiple batch items draining one shared pool.
cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DLLS_SANITIZE=thread
cmake --build build-tsan -j "$JOBS" \
    --target test_thread_pool test_engine test_parse test_cancel test_io \
             test_bdd_concurrent test_cache test_persist
(cd build-tsan && ctest -R 'test_thread_pool|test_engine|test_parse|test_cancel|test_io|test_bdd_concurrent|test_cache|test_persist' \
    --output-on-failure)

echo "== all checks passed =="
