#!/usr/bin/env bash
# run_checks.sh: tier-1 tests in the default configuration, a budgeted
# determinism check of the CLI (same circuit + work budget at several
# --jobs values must produce byte-identical outputs), then the
# concurrency-sensitive engine/parse/io tests under ThreadSanitizer.
#
#   tools/run_checks.sh [--skip-tsan]
#
# Exit code is nonzero if any stage fails.
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 2)"
SKIP_TSAN=0
[[ "${1:-}" == "--skip-tsan" ]] && SKIP_TSAN=1

echo "== stage 1: tier-1 tests (RelWithDebInfo) =="
cmake -B build -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build -j "$JOBS"
(cd build && ctest --output-on-failure -j "$JOBS")

echo "== stage 2: budgeted determinism across job counts =="
# The core claim of the deterministic work budget: exhausting it must cut
# the run at the same round on every thread schedule, so the output files
# are byte-identical across --jobs. Checked on both regression circuits.
WORKDIR="$(mktemp -d)"
trap 'rm -rf "$WORKDIR"' EXIT
for circuit in tests/data/rca16.blif tests/data/control24.blif; do
    name="$(basename "$circuit" .blif)"
    for j in 1 2 4; do
        ./build/tools/lls_opt --work-budget 200 --jobs "$j" --iterations 6 \
            "$circuit" "$WORKDIR/$name.j$j.blif" > /dev/null
    done
    cmp "$WORKDIR/$name.j1.blif" "$WORKDIR/$name.j2.blif"
    cmp "$WORKDIR/$name.j1.blif" "$WORKDIR/$name.j4.blif"
    echo "$name: budgeted outputs identical for --jobs 1/2/4"
done

if [[ "$SKIP_TSAN" == 1 ]]; then
    echo "== stage 3: skipped (--skip-tsan) =="
    exit 0
fi

echo "== stage 3: engine tests under ThreadSanitizer =="
cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DLLS_SANITIZE=thread
cmake --build build-tsan -j "$JOBS" --target test_thread_pool test_engine test_parse test_io
(cd build-tsan && ctest -R 'test_thread_pool|test_engine|test_parse|test_io' --output-on-failure)

echo "== all checks passed =="
