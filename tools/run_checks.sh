#!/usr/bin/env bash
# run_checks.sh: tier-1 tests in the default configuration, then the
# concurrency-sensitive engine tests under ThreadSanitizer.
#
#   tools/run_checks.sh [--skip-tsan]
#
# Exit code is nonzero if any stage fails.
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 2)"
SKIP_TSAN=0
[[ "${1:-}" == "--skip-tsan" ]] && SKIP_TSAN=1

echo "== stage 1: tier-1 tests (RelWithDebInfo) =="
cmake -B build -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build -j "$JOBS"
(cd build && ctest --output-on-failure -j "$JOBS")

if [[ "$SKIP_TSAN" == 1 ]]; then
    echo "== stage 2: skipped (--skip-tsan) =="
    exit 0
fi

echo "== stage 2: engine tests under ThreadSanitizer =="
cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DLLS_SANITIZE=thread
cmake --build build-tsan -j "$JOBS" --target test_thread_pool test_engine
(cd build-tsan && ctest -R 'test_thread_pool|test_engine' --output-on-failure)

echo "== all checks passed =="
