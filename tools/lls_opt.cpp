// lls_opt: command-line timing optimization driver.
//
//   lls_opt [options] <input.blif> [output.blif]
//
// Options:
//   --flow sis|abc|dc|lookahead   optimization flow (default: lookahead)
//   --iterations N                lookahead decomposition rounds (default 10)
//   --no-verify                   skip the final equivalence check
//   --map                         print a technology-mapping report
//   --aiger PATH                  also dump the result as ASCII AIGER
//   --verilog PATH                dump the mapped gate-level netlist as Verilog
//   --stats                       print per-round decomposition log
//
// Exit code is nonzero on parse errors or a failed equivalence check.

#include <cstdio>
#include <cstring>
#include <string>

#include "baseline/flows.hpp"
#include "cec/cec.hpp"
#include "common/stopwatch.hpp"
#include "io/blif.hpp"
#include "lookahead/optimize.hpp"
#include <fstream>

#include "mapping/mapper.hpp"
#include "mapping/netlist.hpp"

namespace {

int usage(const char* argv0) {
    std::fprintf(stderr,
                 "usage: %s [--flow sis|abc|dc|lookahead] [--iterations N] [--no-verify]\n"
                 "          [--map] [--aiger PATH] [--verilog PATH] [--stats] <input.blif> [output.blif]\n",
                 argv0);
    return 2;
}

}  // namespace

int main(int argc, char** argv) {
    std::string flow = "lookahead";
    std::string input_path, output_path, aiger_path, verilog_path;
    int iterations = 10;
    bool verify = true, map_report = false, print_stats = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--flow" && i + 1 < argc) {
            flow = argv[++i];
        } else if (arg == "--iterations" && i + 1 < argc) {
            iterations = std::atoi(argv[++i]);
        } else if (arg == "--no-verify") {
            verify = false;
        } else if (arg == "--map") {
            map_report = true;
        } else if (arg == "--aiger" && i + 1 < argc) {
            aiger_path = argv[++i];
        } else if (arg == "--verilog" && i + 1 < argc) {
            verilog_path = argv[++i];
        } else if (arg == "--stats") {
            print_stats = true;
        } else if (!arg.empty() && arg[0] == '-') {
            return usage(argv[0]);
        } else if (input_path.empty()) {
            input_path = arg;
        } else if (output_path.empty()) {
            output_path = arg;
        } else {
            return usage(argv[0]);
        }
    }
    if (input_path.empty()) return usage(argv[0]);

    lls::Aig circuit;
    try {
        circuit = lls::read_blif_file(input_path);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error reading %s: %s\n", input_path.c_str(), e.what());
        return 1;
    }
    std::printf("%s: %zu PIs, %zu POs, %zu AND nodes, depth %d\n", input_path.c_str(),
                circuit.num_pis(), circuit.num_pos(), circuit.count_reachable_ands(),
                circuit.depth());

    lls::Stopwatch sw;
    lls::Aig optimized;
    lls::OptimizeStats stats;
    lls::Rng rng(1);
    if (flow == "sis") {
        optimized = lls::flow_sis(circuit, rng);
    } else if (flow == "abc") {
        optimized = lls::flow_abc(circuit, rng);
    } else if (flow == "dc") {
        optimized = lls::flow_dc(circuit, rng);
    } else if (flow == "lookahead") {
        lls::LookaheadParams params;
        params.max_iterations = iterations;
        optimized = lls::optimize_timing(circuit, params, &stats);
    } else {
        return usage(argv[0]);
    }
    std::printf("%s flow: depth %d -> %d, %zu -> %zu AND nodes (%.2fs)\n", flow.c_str(),
                circuit.depth(), optimized.depth(), circuit.count_reachable_ands(),
                optimized.count_reachable_ands(), sw.elapsed_seconds());
    if (print_stats)
        for (const auto& line : stats.log) std::printf("  %s\n", line.c_str());

    if (verify) {
        const lls::CecResult cec = lls::check_equivalence(circuit, optimized, 4000000);
        if (!cec.resolved) {
            std::fprintf(stderr, "equivalence check UNRESOLVED (conflict limit)\n");
            return 1;
        }
        if (!cec.equivalent) {
            std::fprintf(stderr, "equivalence check FAILED\n");
            return 1;
        }
        std::printf("equivalence check: PASS\n");
    }

    if (map_report) {
        const lls::CellLibrary lib = lls::CellLibrary::generic_70nm();
        const lls::MappedCircuit mapped = lls::map_circuit(optimized, lib);
        std::printf("mapped: %zu gates, delay %.0f ps, area %.1f, power %.3f mW @1GHz\n",
                    mapped.num_gates, mapped.delay_ps, mapped.area, mapped.power_mw);
        for (const auto& [cell, count] : mapped.cell_histogram)
            std::printf("  %-8s %d\n", cell.c_str(), count);
    }

    if (!output_path.empty()) {
        lls::write_blif_file(output_path, optimized, "lls_opt");
        std::printf("wrote %s\n", output_path.c_str());
    }
    if (!aiger_path.empty()) {
        lls::write_aiger_file(aiger_path, optimized);
        std::printf("wrote %s\n", aiger_path.c_str());
    }
    if (!verilog_path.empty()) {
        const lls::CellLibrary lib = lls::CellLibrary::generic_70nm();
        const lls::Netlist netlist = lls::map_to_netlist(optimized, lib);
        std::ofstream vout(verilog_path);
        if (!vout) {
            std::fprintf(stderr, "cannot open %s\n", verilog_path.c_str());
            return 1;
        }
        netlist.write_verilog(vout, "lls_mapped");
        std::printf("wrote %s (%zu gates, %.0f ps critical path)\n", verilog_path.c_str(),
                    netlist.num_gates(), netlist.critical_delay_ps());
    }
    return 0;
}
