// lls_opt: command-line timing optimization driver.
//
//   lls_opt [options] <input.blif> [output.blif]
//   lls_opt --batch [options] <input.blif> [input2.blif ...]
//
// Options:
//   --flow sis|abc|dc|lookahead   optimization flow (default: lookahead)
//   --iterations N                lookahead decomposition rounds (default 10)
//   --jobs N|auto                 worker threads (cone fan-out; batch circuits);
//                                 auto (or 0) = every hardware thread
//   --steal on|off                batch mode: freed workers join the cone
//                                 fan-out of still-running circuits (default
//                                 on; off = each circuit strictly serial on
//                                 one worker); outputs byte-identical either way
//   --intra-cone on|off           fan the per-cube SAT don't-care proofs inside
//                                 one cone across the worker pool (the third
//                                 scheduling level; default on); outputs and
//                                 budget spend byte-identical either way
//   --shared-bdd on|off           share one concurrency-safe BDD manager across
//                                 the run's workers (default on; off = private
//                                 per-call managers, the pre-refactor behavior)
//   --work-budget N               deterministic work budget in units (0 = none);
//                                 budgeted runs are bit-identical across --jobs
//   --batch                       optimize every input concurrently (--jobs)
//   --out-dir DIR                 batch mode: write DIR/<input> per circuit
//   --checkpoint FILE             batch mode: journal each completed circuit to
//                                 FILE (flush-and-throw); with --resume, skip
//                                 circuits already journaled under the same
//                                 input hash + params fingerprint
//   --resume                      resume an interrupted --checkpoint batch
//   --fault-inject SPEC           deterministic fault injection, SPEC =
//                                 kind@site[:count][,...]; kinds parse|resource|
//                                 solver|verify|invariant|io|cancel fire
//                                 synthetic LlsErrors at engine sites
//                                 (decompose|spcf|sat|cec); fatal@batch:N kills
//                                 the process after N journaled circuits
//                                 (crash simulation)
//   --no-verify                   skip the final equivalence check
//   --map                         print a technology-mapping report
//   --aiger PATH                  also dump the result as ASCII AIGER
//   --verilog PATH                dump the mapped gate-level netlist as Verilog
//   --stats                       print per-round decomposition log
//   --metrics                     print engine stage timers + cache stats
//   --metrics-json FILE           dump the metrics registry as JSON to FILE
//   --cache-dir DIR               persistent memo store: load intact shards
//                                 from DIR before optimizing and publish new
//                                 memo entries back (see docs/ENGINE.md,
//                                 "Persistent memo store"); corrupt or
//                                 version-mismatched shards degrade to a
//                                 cold start, never a failure
//   --cache-mode read|write|rw|off
//                                 what --cache-dir may do (default rw)
//   --cone-deadline DUR           per-cone wall-clock watchdog (500ms/30s/5m;
//                                 default off): a cone evaluation that outlives
//                                 it is cancelled and kept original with a
//                                 FaultRecord — nondeterministic, like the
//                                 wall-clock rail
//   --time-budget DUR             wall-clock safety rail for the whole run
//                                 (nondeterministic; use --work-budget for
//                                 reproducible budgeted runs)
//   --cone-mem SIZE               deterministic per-cone memory quota (64M,
//                                 1G, plain bytes; default off): a cone whose
//                                 evaluation would exceed it keeps its
//                                 original logic with a FaultRecord — at the
//                                 same program point whatever --jobs,
//                                 --intra-cone, or cache state, so quota'd
//                                 runs stay byte-identical
//   --mem-budget SIZE             process-wide memory high-water rail:
//                                 crossing it sheds the memo caches first,
//                                 then holds batch admission until in-flight
//                                 items release memory; committed outputs
//                                 stay byte-identical (only the event counts
//                                 are wall-dependent)
//
// Exit codes are documented in --help: 0 success; 1 not equivalent / item
// failed; 2 usage; 10..16 per ErrorKind; 30 terminated by SIGTERM/SIGINT
// with the checkpoint journal and persist-store shards flushed (--resume
// continues byte-identically); 42 simulated crash (fatal@batch:N). A second
// signal hard-exits with the conventional 128+signo.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include <atomic>

#include <sstream>

#include "baseline/flows.hpp"
#include "cec/cec.hpp"
#include "common/cancel.hpp"
#include "common/error.hpp"
#include "common/fault.hpp"
#include "common/memgov.hpp"
#include "common/parse.hpp"
#include "common/stopwatch.hpp"
#include "common/thread_pool.hpp"
#include "engine/checkpoint.hpp"
#include "engine/engine.hpp"
#include "engine/metrics.hpp"
#include "engine/warm_start.hpp"
#include "io/blif.hpp"
#include "lookahead/optimize.hpp"
#include <fstream>

#include "mapping/mapper.hpp"
#include "mapping/netlist.hpp"

namespace {

// Graceful signal-driven shutdown: the first SIGTERM/SIGINT requests
// cooperative cancellation (the engine stops dispatching, in-flight cones
// cancel at their next poll, the checkpoint journal and persist-store
// shards are flushed, and the process exits with kExitSignalShutdown so
// scripts know --resume will continue byte-identically). A second signal
// hard-exits with the conventional 128+signo. Everything the handler does
// is async-signal-safe: one atomic exchange, one relaxed store, _exit.
lls::CancelToken g_shutdown;
std::atomic<int> g_signal{0};

extern "C" void handle_shutdown_signal(int sig) {
    if (g_signal.exchange(sig) != 0) _exit(128 + sig);
    g_shutdown.request();
}

void install_signal_handlers() {
    struct sigaction action = {};
    action.sa_handler = handle_shutdown_signal;
    sigemptyset(&action.sa_mask);
    action.sa_flags = SA_RESTART;
    sigaction(SIGTERM, &action, nullptr);
    sigaction(SIGINT, &action, nullptr);
}

void print_usage(std::FILE* out, const char* argv0) {
    std::fprintf(out,
                 "usage: %s [--flow sis|abc|dc|lookahead] [--iterations N] [--jobs N|auto]\n"
                 "          [--steal on|off] [--intra-cone on|off] [--shared-bdd on|off]\n"
                 "          [--work-budget N]\n"
                 "          [--cone-deadline DUR] [--time-budget DUR]\n"
                 "          [--cone-mem SIZE] [--mem-budget SIZE]\n"
                 "          [--fault-inject SPEC]\n"
                 "          [--cache-dir DIR] [--cache-mode read|write|rw|off]\n"
                 "          [--no-verify] [--map]\n"
                 "          [--aiger PATH] [--verilog PATH] [--stats] [--metrics]\n"
                 "          [--metrics-json FILE]\n"
                 "          <input.blif> [output.blif]\n"
                 "       %s --batch [options] [--out-dir DIR] [--checkpoint FILE] [--resume]\n"
                 "          <input.blif> [input2.blif ...]\n"
                 "       %s --help\n",
                 argv0, argv0, argv0);
}

int usage(const char* argv0) {
    print_usage(stderr, argv0);
    return lls::kExitUsage;
}

int help(const char* argv0) {
    print_usage(stdout, argv0);
    std::printf(
        "\nDurations (DUR) are a number with a unit: 500ms, 30s, 5m.\n"
        "Sizes (SIZE) are plain bytes or a binary suffix: 4194304, 64M, 1G.\n"
        "\nexit codes:\n"
        "   0  success\n"
        "  %2d  result not equivalent / unresolved, or a batch item failed\n"
        "  %2d  usage error (bad flags or arguments)\n"
        "  %2d  parse error (malformed BLIF/AIGER/spec input)\n"
        "  %2d  resource exhausted (BDD node limit, SAT literal limit, memory)\n"
        "  %2d  solver limit (a solver gave up within its effort bound)\n"
        "  %2d  verification failed or could not be resolved\n"
        "  %2d  internal invariant violation\n"
        "  %2d  I/O error (filesystem open/read/write)\n"
        "  %2d  cancelled (cooperative cancellation surfaced as an error)\n"
        "  %2d  terminated by SIGTERM/SIGINT: checkpoint journal and persist\n"
        "      store flushed; rerun with --resume to continue byte-identically\n"
        "  %2d  simulated fatal crash (--fault-inject fatal@batch:N)\n"
        " 128+signo  hard exit on a second SIGTERM/SIGINT\n",
        lls::kExitNotEquivalent, lls::kExitUsage, lls::exit_code_for(lls::ErrorKind::ParseError),
        lls::exit_code_for(lls::ErrorKind::ResourceExhausted),
        lls::exit_code_for(lls::ErrorKind::SolverLimit),
        lls::exit_code_for(lls::ErrorKind::VerificationFailed),
        lls::exit_code_for(lls::ErrorKind::InvariantViolation),
        lls::exit_code_for(lls::ErrorKind::IoError), lls::exit_code_for(lls::ErrorKind::Cancelled),
        lls::kExitSignalShutdown, lls::kExitSimulatedCrash);
    return 0;
}

std::string basename_of(const std::string& path) {
    const std::size_t slash = path.find_last_of('/');
    return slash == std::string::npos ? path : path.substr(slash + 1);
}

/// One-line report of every contained fault of a finished run.
void print_fault_summary(const char* name, const lls::OptimizeStats& stats) {
    if (stats.faults.empty()) return;
    std::size_t recovered = 0;
    for (const auto& f : stats.faults) recovered += f.recovered ? 1 : 0;
    std::printf("%s: %zu fault(s) contained (%zu recovered, %zu cones kept original)\n", name,
                stats.faults.size(), recovered, stats.faults.size() - recovered);
    for (const auto& f : stats.faults)
        std::printf("  fault [%s/%s] cone %d (%s): %s%s\n", lls::error_kind_name(f.kind),
                    f.stage.c_str(), f.cone, f.cone_name.c_str(),
                    f.recovered ? "recovered" : "degraded",
                    f.retries.empty() ? "" : (" after " + std::to_string(f.retries.size()) +
                                              " retry rung(s)")
                                                 .c_str());
}

}  // namespace

int main(int argc, char** argv) {
    std::string flow = "lookahead";
    std::vector<std::string> inputs;
    std::string output_path, aiger_path, verilog_path, out_dir;
    std::string fault_spec, checkpoint_path;
    std::string cache_dir, cache_mode = "rw", metrics_json_path;
    int iterations = 10;
    int jobs = 1;
    std::uint64_t work_budget = 0;
    std::uint64_t cone_mem_bytes = 0, mem_budget_bytes = 0;
    bool governor_requested = false;
    double cone_deadline = 0.0, time_budget = 0.0;
    bool verify = true, map_report = false, print_stats = false, print_metrics = false;
    bool batch = false, resume = false, shared_bdd = true, steal = true, intra_cone = true;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            return help(argv[0]);
        } else if (arg == "--flow" && i + 1 < argc) {
            flow = argv[++i];
        } else if (arg == "--iterations" && i + 1 < argc) {
            if (!lls::parse_int_option("--iterations", argv[++i], 0, 1000000, &iterations))
                return usage(argv[0]);
        } else if (arg == "--jobs" && i + 1 < argc) {
            if (!lls::parse_jobs_option("--jobs", argv[++i], 1024, &jobs)) return usage(argv[0]);
        } else if (arg == "--steal" && i + 1 < argc) {
            const std::string value = argv[++i];
            if (value == "on") {
                steal = true;
            } else if (value == "off") {
                steal = false;
            } else {
                std::fprintf(stderr, "error: --steal expects on|off, got '%s'\n", value.c_str());
                return usage(argv[0]);
            }
        } else if (arg == "--intra-cone" && i + 1 < argc) {
            const std::string value = argv[++i];
            if (value == "on") {
                intra_cone = true;
            } else if (value == "off") {
                intra_cone = false;
            } else {
                std::fprintf(stderr, "error: --intra-cone expects on|off, got '%s'\n",
                             value.c_str());
                return usage(argv[0]);
            }
        } else if (arg == "--shared-bdd" && i + 1 < argc) {
            const std::string value = argv[++i];
            if (value == "on") {
                shared_bdd = true;
            } else if (value == "off") {
                shared_bdd = false;
            } else {
                std::fprintf(stderr, "error: --shared-bdd expects on|off, got '%s'\n",
                             value.c_str());
                return usage(argv[0]);
            }
        } else if (arg == "--work-budget" && i + 1 < argc) {
            if (!lls::parse_u64_option("--work-budget", argv[++i], UINT64_MAX, &work_budget))
                return usage(argv[0]);
        } else if (arg == "--cone-deadline" && i + 1 < argc) {
            if (!lls::parse_duration_option("--cone-deadline", argv[++i], &cone_deadline))
                return usage(argv[0]);
        } else if (arg == "--time-budget" && i + 1 < argc) {
            if (!lls::parse_duration_option("--time-budget", argv[++i], &time_budget))
                return usage(argv[0]);
        } else if (arg == "--cone-mem" && i + 1 < argc) {
            if (!lls::parse_size_option("--cone-mem", argv[++i], &cone_mem_bytes))
                return usage(argv[0]);
            governor_requested = true;
        } else if (arg == "--mem-budget" && i + 1 < argc) {
            if (!lls::parse_size_option("--mem-budget", argv[++i], &mem_budget_bytes))
                return usage(argv[0]);
            governor_requested = true;
        } else if (arg == "--batch") {
            batch = true;
        } else if (arg == "--out-dir" && i + 1 < argc) {
            out_dir = argv[++i];
        } else if (arg == "--checkpoint" && i + 1 < argc) {
            checkpoint_path = argv[++i];
        } else if (arg == "--resume") {
            resume = true;
        } else if (arg == "--fault-inject" && i + 1 < argc) {
            fault_spec = argv[++i];
        } else if (arg == "--no-verify") {
            verify = false;
        } else if (arg == "--map") {
            map_report = true;
        } else if (arg == "--aiger" && i + 1 < argc) {
            aiger_path = argv[++i];
        } else if (arg == "--verilog" && i + 1 < argc) {
            verilog_path = argv[++i];
        } else if (arg == "--stats") {
            print_stats = true;
        } else if (arg == "--metrics") {
            print_metrics = true;
        } else if (arg == "--metrics-json" && i + 1 < argc) {
            metrics_json_path = argv[++i];
        } else if (arg == "--cache-dir" && i + 1 < argc) {
            cache_dir = argv[++i];
        } else if (arg == "--cache-mode" && i + 1 < argc) {
            cache_mode = argv[++i];
        } else if (!arg.empty() && arg[0] == '-') {
            return usage(argv[0]);
        } else if (batch) {
            inputs.push_back(arg);
        } else if (inputs.empty()) {
            inputs.push_back(arg);
        } else if (output_path.empty()) {
            output_path = arg;
        } else {
            return usage(argv[0]);
        }
    }
    if (inputs.empty()) return usage(argv[0]);

    // --jobs auto (or 0) resolves to the whole machine here, once, so every
    // later report prints the actual thread count in use.
    if (jobs == 0) jobs = static_cast<int>(lls::ThreadPool::hardware_jobs());

    lls::LookaheadParams params;
    params.max_iterations = iterations;
    params.work_budget = work_budget;
    params.cone_deadline_seconds = cone_deadline;
    params.time_budget_seconds = time_budget;
    params.cone_mem_bytes = cone_mem_bytes;
    lls::EngineOptions engine;
    engine.jobs = jobs;
    engine.shared_bdd = shared_bdd;
    engine.steal = steal;
    engine.intra_cone = intra_cone;

    // From here on a SIGTERM/SIGINT requests graceful shutdown through the
    // engine's cancellation token instead of killing the process mid-write.
    install_signal_handlers();
    engine.cancel = &g_shutdown;

    // Fault injection: engine-site specs are forwarded through the params
    // (they are part of what the evaluations compute); `fatal@batch:N` is a
    // CLI-level crash simulation and is stripped here — it must not perturb
    // the params fingerprint, or a resumed run could never match an
    // uninterrupted one.
    int fatal_after = 0;
    if (!fault_spec.empty()) {
        try {
            const lls::FaultPlan plan = lls::FaultPlan::parse(fault_spec);
            params.fault_plan = plan.engine_spec();
            fatal_after = plan.fatal_count_for("batch");
        } catch (const std::exception& e) {
            std::fprintf(stderr, "error: bad --fault-inject spec: %s\n", e.what());
            return lls::kExitUsage;
        }
    }
    if (resume && checkpoint_path.empty()) {
        std::fprintf(stderr, "error: --resume requires --checkpoint FILE\n");
        return lls::kExitUsage;
    }

    // Persistent memo store: open + load before any optimization so every
    // run (single or batch) starts with warm caches. A store that cannot be
    // *read* degrades to a cold start inside load(); only an unusable write
    // setup throws, and even that merely disables persistence for the run —
    // the optimization itself must never be blocked by cache trouble.
    std::unique_ptr<lls::WarmStart> warm;
    {
        const auto mode = lls::persist::parse_store_mode(cache_mode);
        if (!mode) {
            std::fprintf(stderr, "error: --cache-mode expects read|write|rw|off, got '%s'\n",
                         cache_mode.c_str());
            return 2;
        }
        if (!cache_dir.empty() && *mode != lls::persist::StoreMode::Off) {
            try {
                warm = std::make_unique<lls::WarmStart>(cache_dir, *mode);
            } catch (const std::exception& e) {
                std::fprintf(stderr, "warning: persistent cache disabled: %s\n", e.what());
            }
        }
        if (warm) {
            const lls::persist::LoadReport& rep = warm->report();
            for (const auto& note : rep.notes)
                std::fprintf(stderr, "persist: rejected shard: %s\n", note.c_str());
            if (warm->imported_records() > 0)
                std::printf("persist: warm start, %zu record(s) from %zu shard(s)\n",
                            warm->imported_records(), rep.files_loaded);
            else
                std::printf("persist: cold start\n");
            engine.warm_start = warm.get();
        }
    }

    // Memory governance: either flag instantiates the Tier-2 accountant so
    // `engine.mem.charged_bytes` is meaningful even on quota-only runs
    // (budget 0 = accounting without the relief rail). The governor owns no
    // components — the engine binds solver arenas and BDD managers to it,
    // the memo caches register gauges + shed hooks here, and the warm-start
    // sets contribute a constant gauge.
    std::unique_ptr<lls::MemoryGovernor> governor;
    if (governor_requested) {
        governor = std::make_unique<lls::MemoryGovernor>(mem_budget_bytes);
        lls::register_memo_governance(*governor);
        if (warm) {
            lls::WarmStart* warm_ptr = warm.get();
            governor->add_gauge([warm_ptr] { return warm_ptr->approx_bytes(); });
        }
        engine.governor = governor.get();
    }

    // Shared epilogue of both modes: final store flush + metrics dumps.
    // Returns false (-> exit 1) only when --metrics-json cannot be written.
    auto epilogue = [&]() -> bool {
        if (warm) warm->finalize();
        if (governor)
            std::printf("memgov: %llu bytes charged, %llu shed event(s), %llu admission "
                        "hold(s)\n",
                        static_cast<unsigned long long>(governor->charged_total()),
                        static_cast<unsigned long long>(governor->shed_events()),
                        static_cast<unsigned long long>(governor->admission_holds()));
        if (print_metrics) lls::Metrics::global().report(stdout);
        if (!metrics_json_path.empty()) {
            std::ofstream out(metrics_json_path);
            out << lls::Metrics::global().to_json() << '\n';
            out.flush();
            if (!out.good()) {
                std::fprintf(stderr, "error writing %s\n", metrics_json_path.c_str());
                return false;
            }
            std::printf("wrote %s\n", metrics_json_path.c_str());
        }
        return true;
    };

    // ---- batch mode: many circuits, one pool -------------------------------
    if (batch) {
        if (flow != "lookahead") {
            std::fprintf(stderr, "error: --batch supports only --flow lookahead\n");
            return lls::kExitUsage;
        }
        if (!out_dir.empty()) {
            std::error_code ec;
            std::filesystem::create_directories(out_dir, ec);
            if (ec) {
                std::fprintf(stderr, "error: cannot create --out-dir %s: %s\n", out_dir.c_str(),
                             ec.message().c_str());
                return lls::exit_code_for(lls::ErrorKind::IoError);
            }
        }
        std::vector<lls::BatchItem> items;
        for (const auto& path : inputs) {
            try {
                items.push_back({path, lls::read_blif_file(path)});
            } catch (const std::exception& e) {
                std::fprintf(stderr, "error reading %s: %s\n", path.c_str(), e.what());
                return lls::exit_code_for(lls::error_kind_of(e));
            }
        }

        // Checkpoint journal: a fresh --checkpoint run starts a new journal
        // (any stale one is discarded); --resume keeps it and skips every
        // item already journaled under the same input hash and params
        // fingerprint — those outputs are already on disk, byte-identical
        // to what re-running would produce.
        std::unique_ptr<lls::BatchCheckpoint> checkpoint;
        std::uint64_t params_fp = 0;
        std::size_t skipped = 0;
        if (!checkpoint_path.empty()) {
            try {
                params_fp = lls::lookahead_params_fingerprint(params);
                if (!resume) std::remove(checkpoint_path.c_str());
                checkpoint = std::make_unique<lls::BatchCheckpoint>(checkpoint_path);
            } catch (const std::exception& e) {
                std::fprintf(stderr, "error: checkpoint %s: %s\n", checkpoint_path.c_str(),
                             e.what());
                return lls::exit_code_for(lls::error_kind_of(e));
            }
            if (resume) {
                std::vector<lls::BatchItem> pending;
                for (auto& item : items) {
                    if (checkpoint->find(item.name, item.input.cleanup().hash(), params_fp)) {
                        std::printf("%s: skipped (already journaled)\n", item.name.c_str());
                        ++skipped;
                    } else {
                        pending.push_back(std::move(item));
                    }
                }
                items = std::move(pending);
            }
        }

        lls::Stopwatch sw;
        int exit_code = 0;
        std::size_t journaled = 0;
        // Runs under the batch's completion mutex: per-item verification,
        // output writing, journaling, and (last) the simulated crash of
        // `fatal@batch:N` — the journal line is durable before the process
        // dies, exactly like a real mid-batch crash after a flush.
        auto on_complete = [&](const lls::BatchOutcome& r, std::size_t i) {
            if (r.cancelled) {
                // Shutdown interrupted this item: nothing is verified,
                // written, or journaled — --resume re-runs it from scratch
                // and reproduces the uninterrupted bytes.
                std::printf("%s: cancelled by shutdown request (not journaled; re-run with "
                            "--resume)\n",
                            r.name.c_str());
                return;
            }
            std::printf("%s: depth %d -> %d, %zu -> %zu AND nodes (%.2fs)\n", r.name.c_str(),
                        r.stats.initial_depth, r.stats.final_depth, r.stats.initial_ands,
                        r.stats.final_ands, r.seconds);
            if (r.failed) {
                std::fprintf(stderr, "%s: optimization failed, output kept original: %s\n",
                             r.name.c_str(), r.error.c_str());
                exit_code = 1;
            }
            print_fault_summary(r.name.c_str(), r.stats);
            if (r.stats.quota_degraded > 0)
                std::printf("%s: %d cone(s) exceeded --cone-mem and kept their original "
                            "logic\n",
                            r.name.c_str(), r.stats.quota_degraded);
            if (work_budget > 0)
                std::printf("%s: work budget spent %llu of %llu units%s\n", r.name.c_str(),
                            static_cast<unsigned long long>(r.stats.work_units),
                            static_cast<unsigned long long>(work_budget),
                            r.stats.budget_exhausted ? " (exhausted)" : "");
            if (verify && !r.failed) {
                const lls::CecResult cec =
                    lls::check_equivalence(items[i].input, r.output, 4000000);
                if (!cec.resolved || !cec.equivalent) {
                    std::fprintf(stderr, "%s: equivalence check %s\n", r.name.c_str(),
                                 cec.resolved ? "FAILED" : "UNRESOLVED");
                    exit_code = 1;
                    return;
                }
            }
            std::ostringstream bytes;
            lls::write_blif(bytes, r.output, "lls_opt");
            if (!out_dir.empty()) {
                const std::string out_path = out_dir + "/" + basename_of(r.name);
                try {
                    lls::write_blif_file(out_path, r.output, "lls_opt");
                    std::printf("wrote %s\n", out_path.c_str());
                } catch (const std::exception& e) {
                    std::fprintf(stderr, "error writing %s: %s\n", out_path.c_str(), e.what());
                    exit_code = 1;
                    return;  // an unwritten output must not be journaled as done
                }
            }
            if (checkpoint) {
                lls::CheckpointEntry entry;
                entry.name = r.name;
                entry.input_hash = items[i].input.cleanup().hash();
                entry.params_fingerprint = params_fp;
                entry.output_hash = lls::checkpoint_bytes_hash(bytes.str());
                entry.final_depth = r.stats.final_depth;
                entry.final_ands = r.stats.final_ands;
                entry.failed = r.failed;
                checkpoint->append(entry);  // flush-and-throw
                ++journaled;
                if (fatal_after > 0 && journaled >= static_cast<std::size_t>(fatal_after)) {
                    std::fprintf(stderr, "fault-inject: simulated crash after %zu journaled "
                                         "circuit(s)\n",
                                 journaled);
                    std::fflush(nullptr);
                    std::_Exit(lls::kExitSimulatedCrash);
                }
            }
        };

        const auto outcomes = lls::optimize_timing_batch(items, params, engine, on_complete);
        std::printf("batch: %zu circuits (%zu skipped via checkpoint), %d jobs, %.2fs wall "
                    "clock\n",
                    outcomes.size() + skipped, skipped, jobs, sw.elapsed_seconds());
        // Graceful signal shutdown: the journal holds every finished item
        // (appended flush-and-throw as it completed), and epilogue() flushes
        // the persist-store shards. The distinct exit code tells scripts
        // this run is resumable, not failed.
        if (g_signal.load() != 0) {
            const bool flushed = epilogue();
            std::size_t cancelled = 0;
            for (const auto& r : outcomes) cancelled += r.cancelled ? 1 : 0;
            std::fprintf(stderr,
                         "terminated by signal %d: %zu circuit(s) journaled, %zu cancelled; "
                         "checkpoint %s; rerun with --resume to continue\n",
                         g_signal.load(), journaled, cancelled,
                         flushed ? "flushed" : "flushed (metrics dump failed)");
            return lls::kExitSignalShutdown;
        }
        if (!epilogue()) exit_code = 1;
        return exit_code;
    }

    // ---- single-circuit mode ----------------------------------------------
    const std::string& input_path = inputs[0];
    lls::Aig circuit;
    try {
        circuit = lls::read_blif_file(input_path);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error reading %s: %s\n", input_path.c_str(), e.what());
        return lls::exit_code_for(lls::error_kind_of(e));
    }
    std::printf("%s: %zu PIs, %zu POs, %zu AND nodes, depth %d\n", input_path.c_str(),
                circuit.num_pis(), circuit.num_pos(), circuit.count_reachable_ands(),
                circuit.depth());

    lls::Stopwatch sw;
    lls::Aig optimized;
    lls::OptimizeStats stats;
    lls::Rng rng(1);
    if (flow == "sis") {
        optimized = lls::flow_sis(circuit, rng);
    } else if (flow == "abc") {
        optimized = lls::flow_abc(circuit, rng);
    } else if (flow == "dc") {
        optimized = lls::flow_dc(circuit, rng);
    } else if (flow == "lookahead") {
        try {
            optimized = lls::optimize_timing_engine(circuit, params, engine, &stats);
        } catch (const std::exception& e) {
            // Per-cone faults are contained inside the engine; anything
            // reaching here is an entry error (e.g. a malformed fault plan)
            // or an unrecoverable failure — report, never abort().
            std::fprintf(stderr, "error: optimization failed: %s\n", e.what());
            return lls::exit_code_for(lls::error_kind_of(e));
        }
    } else {
        return usage(argv[0]);
    }
    std::printf("%s flow: depth %d -> %d, %zu -> %zu AND nodes (%.2fs, %d jobs)\n", flow.c_str(),
                circuit.depth(), optimized.depth(), circuit.count_reachable_ands(),
                optimized.count_reachable_ands(), sw.elapsed_seconds(), jobs);
    if (work_budget > 0)
        std::printf("work budget: spent %llu of %llu units%s\n",
                    static_cast<unsigned long long>(stats.work_units),
                    static_cast<unsigned long long>(work_budget),
                    stats.budget_exhausted ? " (exhausted)" : "");
    if (stats.wall_clock_interrupted)
        std::fprintf(stderr,
                     "warning: wall-clock budget fired; this result is timing-dependent "
                     "(use --work-budget for deterministic budgeted runs)\n");
    if (stats.deadline_cancelled > 0)
        std::fprintf(stderr,
                     "warning: %d cone(s) hit --cone-deadline and kept their original "
                     "logic; this result is timing-dependent\n",
                     stats.deadline_cancelled);
    if (stats.quota_degraded > 0)
        std::printf("%d cone(s) exceeded --cone-mem and kept their original logic "
                    "(deterministic; byte-identical across --jobs)\n",
                    stats.quota_degraded);
    print_fault_summary(input_path.c_str(), stats);
    if (print_stats)
        for (const auto& line : stats.log) std::printf("  %s\n", line.c_str());
    // Graceful signal shutdown: the engine returned its best verified
    // circuit so far, but the optimization is incomplete — flush the
    // persist store and exit with the resumable-shutdown code instead of
    // writing partial outputs.
    if (stats.cancelled || g_signal.load() != 0) {
        epilogue();
        std::fprintf(stderr, "terminated by signal %d: optimization incomplete, outputs not "
                             "written\n",
                     g_signal.load());
        return lls::kExitSignalShutdown;
    }
    if (!epilogue()) return 1;

    if (verify) {
        const lls::CecResult cec = lls::check_equivalence(circuit, optimized, 4000000);
        if (!cec.resolved) {
            std::fprintf(stderr, "equivalence check UNRESOLVED (conflict limit)\n");
            return lls::kExitNotEquivalent;
        }
        if (!cec.equivalent) {
            std::fprintf(stderr, "equivalence check FAILED\n");
            return lls::kExitNotEquivalent;
        }
        std::printf("equivalence check: PASS\n");
    }

    if (map_report) {
        const lls::CellLibrary lib = lls::CellLibrary::generic_70nm();
        const lls::MappedCircuit mapped = lls::map_circuit(optimized, lib);
        std::printf("mapped: %zu gates, delay %.0f ps, area %.1f, power %.3f mW @1GHz\n",
                    mapped.num_gates, mapped.delay_ps, mapped.area, mapped.power_mw);
        for (const auto& [cell, count] : mapped.cell_histogram)
            std::printf("  %-8s %d\n", cell.c_str(), count);
    }

    if (!output_path.empty()) {
        try {
            lls::write_blif_file(output_path, optimized, "lls_opt");
        } catch (const std::exception& e) {
            std::fprintf(stderr, "error writing %s: %s\n", output_path.c_str(), e.what());
            return lls::exit_code_for(lls::error_kind_of(e));
        }
        std::printf("wrote %s\n", output_path.c_str());
    }
    if (!aiger_path.empty()) {
        try {
            lls::write_aiger_file(aiger_path, optimized);
        } catch (const std::exception& e) {
            std::fprintf(stderr, "error writing %s: %s\n", aiger_path.c_str(), e.what());
            return lls::exit_code_for(lls::error_kind_of(e));
        }
        std::printf("wrote %s\n", aiger_path.c_str());
    }
    if (!verilog_path.empty()) {
        const lls::CellLibrary lib = lls::CellLibrary::generic_70nm();
        const lls::Netlist netlist = lls::map_to_netlist(optimized, lib);
        std::ofstream vout(verilog_path);
        if (!vout) {
            std::fprintf(stderr, "cannot open %s\n", verilog_path.c_str());
            return 1;
        }
        netlist.write_verilog(vout, "lls_mapped");
        std::printf("wrote %s (%zu gates, %.0f ps critical path)\n", verilog_path.c_str(),
                    netlist.num_gates(), netlist.critical_delay_ps());
    }
    return 0;
}
