// lls_fuzz: randomized end-to-end robustness harness.
//
//   lls_fuzz [iterations] [base_seed] [--fault-inject SPEC]
//   lls_fuzz --mutate-store [iterations] [base_seed]
//   lls_fuzz --deadline [iterations] [base_seed]
//   lls_fuzz --mem-budget [iterations] [base_seed]
//
// Each iteration generates a random circuit (random shape, PI/PO counts and
// operator mix), pushes it through every optimization flow plus mapping and
// the BLIF/AIGER round-trips, and verifies every step by CEC. Any failure —
// a mismatch, an unresolved check, or an exception escaping a flow — writes
// the offending generated circuit to fuzz_corpus/ as a BLIF reproducer and
// prints the exact replay command before exiting nonzero. Used before
// releases; the unit-test suites run fixed subsets of the same checks.
//
// --fault-inject forwards a deterministic fault plan (common/fault.hpp
// grammar) into the lookahead flow, exercising the engine's containment
// ladder under fuzz workloads: injected faults must degrade cones, never
// break equivalence or crash the harness.
//
// --deadline exercises the runaway-cone watchdog (common/cancel.hpp): each
// iteration runs the lookahead flow under a tight random per-cone
// wall-clock deadline, so evaluations are cancelled at arbitrary poll
// points. Whatever the watchdog interrupts must be contained: the run
// completes (no crash, no hang), the result is equivalent to the input
// (cancelled cones degrade to original with a Cancelled FaultRecord), and
// it round-trips through the writers as a well-formed AIG.
//
// --mem-budget exercises the memory governor (common/memgov.hpp): each
// iteration runs the lookahead flow under a tight random per-cone byte
// quota plus a small random global budget, at a random job count. Whatever
// the quota trips must be contained deterministically: the run completes,
// the result is equivalent to the input, a quota-degraded cone is *never*
// reported as recovered (the memgov fault ends the retry ladder), the
// quota'd result is byte-identical across job counts, and it round-trips
// through the writers as a well-formed AIG.
//
// --mutate-store exercises the persistent memo store (src/persist/): each
// iteration populates a cache directory from a cold run, proves an intact
// warm replay is byte-identical with warm hits registered, then mutates
// every shard file (truncation, bit flips, zeroed header, appended
// garbage) and requires the mutated warm run to degrade to a cold start —
// same bytes, exit without any escaping exception.

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <sstream>
#include <string>

#include "common/fault.hpp"
#include "common/memgov.hpp"
#include "common/parse.hpp"

#include "baseline/flows.hpp"
#include "baseline/select_transform.hpp"
#include "cec/cec.hpp"
#include "cec/redundancy.hpp"
#include "engine/engine.hpp"
#include "engine/metrics.hpp"
#include "engine/warm_start.hpp"
#include "io/blif.hpp"
#include "io/generators.hpp"
#include "lookahead/optimize.hpp"
#include "mapping/netlist.hpp"
#include "persist/store.hpp"

#include <fstream>

namespace {

lls::Aig random_circuit(std::uint64_t seed) {
    lls::Rng rng(seed);
    const std::size_t num_pis = 4 + rng.next_below(20);
    const std::size_t num_nodes = 10 + rng.next_below(120);
    const std::size_t num_pos = 1 + rng.next_below(8);

    lls::Aig aig;
    std::vector<lls::AigLit> pool;
    for (std::size_t i = 0; i < num_pis; ++i) pool.push_back(aig.add_pi());
    for (std::size_t i = 0; i < num_nodes; ++i) {
        auto pick = [&]() {
            lls::AigLit l = pool[rng.next_below(pool.size())];
            return rng.next_bool() ? !l : l;
        };
        const lls::AigLit x = pick(), y = pick(), z = pick();
        switch (rng.next_below(5)) {
            case 0: pool.push_back(aig.land(x, y)); break;
            case 1: pool.push_back(aig.lor(x, y)); break;
            case 2: pool.push_back(aig.lxor(x, y)); break;
            case 3: pool.push_back(aig.lmux(x, y, z)); break;
            default: pool.push_back(aig.land(x, aig.lor(y, z))); break;
        }
    }
    for (std::size_t o = 0; o < num_pos; ++o)
        aig.add_po(pool[pool.size() - 1 - (o % pool.size())]);
    return aig.cleanup();
}

std::string g_argv0 = "lls_fuzz";
std::string g_fault_spec;

/// Writes the generated circuit that triggered a failure to fuzz_corpus/
/// and prints the replay command. The generator is a pure function of the
/// seed, so the replay command regenerates the identical circuit; the BLIF
/// file is for inspection and bug reports.
void dump_reproducer(std::uint64_t seed, const lls::Aig& circuit) {
    const std::string dir = "fuzz_corpus";
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    const std::string path = dir + "/seed_" + std::to_string(seed) + ".blif";
    try {
        lls::write_blif_file(path, circuit, "fuzz_seed_" + std::to_string(seed));
        std::fprintf(stderr, "reproducer written: %s\n", path.c_str());
    } catch (const std::exception& e) {
        std::fprintf(stderr, "could not write reproducer %s: %s\n", path.c_str(), e.what());
    }
    std::fprintf(stderr, "replay: %s 1 %llu%s%s\n", g_argv0.c_str(),
                 static_cast<unsigned long long>(seed),
                 g_fault_spec.empty() ? "" : " --fault-inject ", g_fault_spec.c_str());
}

bool verify(const char* what, std::uint64_t seed, const lls::Aig& a, const lls::Aig& b) {
    const lls::CecResult cec = lls::check_equivalence(a, b, 2000000);
    if (cec.resolved && cec.equivalent) return true;
    std::fprintf(stderr, "FUZZ FAILURE: %s at seed %llu (%s)\n", what,
                 static_cast<unsigned long long>(seed),
                 cec.resolved ? "inequivalent" : "unresolved");
    return false;
}

/// One fuzz iteration; returns false after dumping a reproducer on any
/// failure, including an exception escaping one of the flows.
bool run_iteration(std::uint64_t seed, const std::string& fault_plan) {
    const lls::Aig circuit = random_circuit(seed);
    // Every failure path funnels through here so the reproducer dump cannot
    // be forgotten when new checks are added.
    auto check = [&](bool ok) {
        if (!ok) dump_reproducer(seed, circuit);
        return ok;
    };
    try {
        lls::Rng rng(seed ^ 0xf00d);

        if (!check(verify("flow_sis", seed, circuit, lls::flow_sis(circuit, rng)))) return false;
        if (!check(verify("flow_abc", seed, circuit, lls::flow_abc(circuit, rng)))) return false;
        if (!check(verify("flow_dc", seed, circuit, lls::flow_dc(circuit, rng)))) return false;
        if (!check(verify("select_transform", seed, circuit,
                          lls::generalized_select_transform(circuit))))
            return false;
        if (!check(verify("redundancy", seed, circuit,
                          lls::remove_redundancies(circuit, rng, /*max_removals=*/20))))
            return false;

        lls::LookaheadParams params;
        params.max_iterations = 4;
        params.seed = seed;
        params.fault_plan = fault_plan;
        const lls::Aig optimized = lls::optimize_timing(circuit, params);
        if (!check(verify("lookahead", seed, circuit, optimized))) return false;

        std::stringstream blif;
        lls::write_blif(blif, optimized, "fuzz");
        if (!check(verify("blif roundtrip", seed, optimized, lls::read_blif(blif)))) return false;

        std::stringstream aag;
        lls::write_aiger(aag, optimized);
        if (!check(verify("aiger roundtrip", seed, optimized, lls::read_aiger(aag)))) return false;

        // Mapped netlist vs AIG on a handful of random vectors.
        const lls::CellLibrary lib = lls::CellLibrary::generic_70nm();
        const lls::Netlist netlist = lls::map_to_netlist(optimized, lib);
        lls::Rng vec_rng(seed ^ 0xbeef);
        for (int v = 0; v < 64; ++v) {
            std::uint64_t assignment = vec_rng.next_u64();
            std::vector<bool> inputs(optimized.num_pis());
            for (std::size_t k = 0; k < inputs.size(); ++k)
                inputs[k] = (assignment >> (k % 64)) & 1;
            const auto outs = netlist.evaluate(inputs);
            // Reference: evaluate the AIG by direct traversal.
            std::vector<char> value(optimized.num_nodes(), 0);
            for (std::size_t k = 0; k < optimized.num_pis(); ++k)
                value[optimized.pi(k)] = inputs[k] ? 1 : 0;
            for (std::uint32_t id = 1; id < optimized.num_nodes(); ++id) {
                if (!optimized.is_and(id)) continue;
                const auto& n = optimized.node(id);
                const bool f0 = (value[n.fanin0.node()] != 0) != n.fanin0.complemented();
                const bool f1 = (value[n.fanin1.node()] != 0) != n.fanin1.complemented();
                value[id] = (f0 && f1) ? 1 : 0;
            }
            for (std::size_t o = 0; o < optimized.num_pos(); ++o) {
                const lls::AigLit po = optimized.po(o);
                const bool expect = (value[po.node()] != 0) != po.complemented();
                if (outs[o] != expect) {
                    std::fprintf(stderr, "FUZZ FAILURE: mapped netlist at seed %llu\n",
                                 static_cast<unsigned long long>(seed));
                    dump_reproducer(seed, circuit);
                    return false;
                }
            }
        }
        std::printf("seed %llu ok (pis=%zu ands=%zu depth=%d -> %d)\n",
                    static_cast<unsigned long long>(seed), circuit.num_pis(),
                    circuit.count_reachable_ands(), circuit.depth(), optimized.depth());
        return true;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "FUZZ FAILURE: exception at seed %llu: %s\n",
                     static_cast<unsigned long long>(seed), e.what());
        dump_reproducer(seed, circuit);
        return false;
    }
}

/// One watchdog iteration: the lookahead flow under a tight random
/// per-cone deadline (microseconds to a few milliseconds, so many cones
/// are cancelled mid-evaluation at whatever poll site the clock catches).
/// The run must complete, stay equivalent (degrade-to-original), report
/// every cancellation as an unrecovered Cancelled fault, and produce a
/// circuit the writers accept.
bool run_deadline_iteration(std::uint64_t seed) {
    const lls::Aig circuit = random_circuit(seed);
    auto check = [&](bool ok) {
        if (!ok) dump_reproducer(seed, circuit);
        return ok;
    };
    try {
        lls::Rng rng(seed ^ 0xdead11e5);
        lls::LookaheadParams params;
        params.max_iterations = 4;
        params.seed = seed;
        // 1us .. ~2ms: tight enough that cones regularly outlive it.
        params.cone_deadline_seconds = static_cast<double>(1 + rng.next_below(2000)) * 1e-6;
        // Randomize the execution knobs the deadline interacts with: the
        // intra-cone fan-out moves the cancellation polls onto pool workers
        // (each proof task re-installs the deadline scope), and extra jobs
        // let the watchdog fire concurrently in several cones. Neither may
        // change what containment guarantees hold.
        lls::EngineOptions engine;
        engine.intra_cone = rng.next_bool();
        engine.jobs = 1 + static_cast<int>(rng.next_below(4));
        lls::OptimizeStats stats;
        const lls::Aig optimized = lls::optimize_timing_engine(circuit, params, engine, &stats);

        if (!check(verify("deadline lookahead", seed, circuit, optimized))) return false;
        for (const auto& f : stats.faults) {
            if (f.kind == lls::ErrorKind::Cancelled && f.recovered) {
                std::fprintf(stderr,
                             "FUZZ FAILURE: cancelled cone reported as recovered at seed %llu\n",
                             static_cast<unsigned long long>(seed));
                dump_reproducer(seed, circuit);
                return false;
            }
        }
        // A cancelled run must still hand the writers a well-formed AIG.
        std::stringstream blif;
        lls::write_blif(blif, optimized, "fuzz");
        if (!check(verify("deadline blif roundtrip", seed, optimized, lls::read_blif(blif))))
            return false;
        std::printf("seed %llu ok (deadline %.0fus, %d cone(s) cancelled, depth %d -> %d)\n",
                    static_cast<unsigned long long>(seed),
                    params.cone_deadline_seconds * 1e6, stats.deadline_cancelled,
                    circuit.depth(), optimized.depth());
        return true;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "FUZZ FAILURE: deadline exception at seed %llu: %s\n",
                     static_cast<unsigned long long>(seed), e.what());
        dump_reproducer(seed, circuit);
        return false;
    }
}

/// One memory-governor iteration: the lookahead flow under a tight random
/// per-cone quota (a few KB to a few MB, so cones regularly trip it at
/// some charge site) and a small random global budget, at a random job
/// count. Containment must be deterministic: the run completes, stays
/// equivalent (degrade-to-original), never reports a memgov fault as
/// recovered, produces byte-identical output across job counts, and the
/// result round-trips.
bool run_memgov_iteration(std::uint64_t seed) {
    const lls::Aig circuit = random_circuit(seed);
    auto check = [&](bool ok) {
        if (!ok) dump_reproducer(seed, circuit);
        return ok;
    };
    try {
        lls::Rng rng(seed ^ 0x4e4f4d);
        lls::LookaheadParams params;
        params.max_iterations = 4;
        params.seed = seed;
        // 1KB .. ~128KB: tight enough that many cones exhaust it, wide
        // enough that some complete (both the degrade path and the success
        // path run under accounting).
        params.cone_mem_bytes = (std::uint64_t{1} << 10) + rng.next_below(std::uint64_t{1} << 17);
        // A small global rail (1..32 MB) so shedding and the relief epoch
        // fire under fuzz workloads too; 0 every fourth run keeps the
        // accounting-only configuration covered.
        const std::uint64_t budget =
            rng.next_below(4) == 0 ? 0 : (std::uint64_t{1} << 20) * (1 + rng.next_below(32));

        auto run = [&](int jobs, bool intra, lls::OptimizeStats* stats) {
            lls::MemoryGovernor governor(budget);
            lls::EngineOptions engine;
            engine.jobs = jobs;
            engine.intra_cone = intra;
            engine.governor = &governor;
            const lls::Aig optimized =
                lls::optimize_timing_engine(circuit, params, engine, stats);
            std::stringstream aag;
            lls::write_aiger(aag, optimized);
            return std::make_pair(optimized, aag.str());
        };

        lls::OptimizeStats stats;
        const auto [optimized, bytes] =
            run(1 + static_cast<int>(rng.next_below(4)), rng.next_bool(), &stats);

        if (!check(verify("memgov lookahead", seed, circuit, optimized))) return false;
        int memgov_faults = 0;
        for (const auto& f : stats.faults) {
            if (f.stage != lls::kMemgovStage) continue;
            ++memgov_faults;
            if (f.recovered) {
                std::fprintf(stderr,
                             "FUZZ FAILURE: quota-degraded cone reported as recovered at seed "
                             "%llu\n",
                             static_cast<unsigned long long>(seed));
                dump_reproducer(seed, circuit);
                return false;
            }
        }
        if (memgov_faults != stats.quota_degraded) {
            std::fprintf(stderr,
                         "FUZZ FAILURE: quota_degraded=%d disagrees with %d memgov fault(s) at "
                         "seed %llu\n",
                         stats.quota_degraded, memgov_faults,
                         static_cast<unsigned long long>(seed));
            dump_reproducer(seed, circuit);
            return false;
        }
        // The quota is deterministic: a serial re-run must reproduce the
        // same bytes whatever schedule the first run used.
        lls::OptimizeStats serial_stats;
        const auto [serial_aig, serial_bytes] = run(1, !rng.next_bool(), &serial_stats);
        (void)serial_aig;
        if (bytes != serial_bytes || serial_stats.quota_degraded != stats.quota_degraded) {
            std::fprintf(stderr, "FUZZ FAILURE: quota'd run diverged across job counts at seed "
                                 "%llu\n",
                         static_cast<unsigned long long>(seed));
            dump_reproducer(seed, circuit);
            return false;
        }
        // A quota-degraded run must still hand the writers a well-formed AIG.
        std::stringstream blif;
        lls::write_blif(blif, optimized, "fuzz");
        if (!check(verify("memgov blif roundtrip", seed, optimized, lls::read_blif(blif))))
            return false;
        std::printf("seed %llu ok (quota %llu B, budget %llu B, %d cone(s) degraded, "
                    "depth %d -> %d)\n",
                    static_cast<unsigned long long>(seed),
                    static_cast<unsigned long long>(params.cone_mem_bytes),
                    static_cast<unsigned long long>(budget), stats.quota_degraded,
                    circuit.depth(), optimized.depth());
        return true;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "FUZZ FAILURE: memgov exception at seed %llu: %s\n",
                     static_cast<unsigned long long>(seed), e.what());
        dump_reproducer(seed, circuit);
        return false;
    }
}

/// AIGER bytes of one lookahead run of `circuit` through the engine, with
/// an optional warm-start bridge — the byte-level QoR probe of the store
/// mutation mode.
std::string optimize_bytes(const lls::Aig& circuit, std::uint64_t seed, lls::WarmStart* warm) {
    lls::LookaheadParams params;
    params.max_iterations = 4;
    params.seed = seed;
    lls::EngineOptions engine;
    engine.warm_start = warm;
    const lls::Aig optimized = lls::optimize_timing_engine(circuit, params, engine);
    std::stringstream aag;
    lls::write_aiger(aag, optimized);
    return aag.str();
}

/// Applies one random corruption to a shard file: truncation, bit flips,
/// a zeroed header, or appended garbage.
void mutate_file(const std::string& path, lls::Rng& rng) {
    std::string bytes;
    {
        std::ifstream in(path, std::ios::binary);
        std::stringstream buffer;
        buffer << in.rdbuf();
        bytes = buffer.str();
    }
    switch (rng.next_below(4)) {
        case 0:  // truncate somewhere, header included
            bytes.resize(rng.next_below(bytes.size() + 1));
            break;
        case 1:  // flip a handful of random bits
            for (std::size_t flips = 1 + rng.next_below(8); flips && !bytes.empty(); --flips) {
                const std::size_t at = rng.next_below(bytes.size());
                bytes[at] = static_cast<char>(bytes[at] ^ (1 << rng.next_below(8)));
            }
            break;
        case 2:  // zero the header
            for (std::size_t i = 0; i < bytes.size() && i < 16; ++i) bytes[i] = 0;
            break;
        default:  // append garbage (a torn concurrent append)
            for (std::size_t n = 1 + rng.next_below(64); n; --n)
                bytes.push_back(static_cast<char>(rng.next_below(256)));
            break;
    }
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// One store-mutation iteration: cold populate -> intact warm replay
/// (byte-identical, warm hits registered) -> mutate every shard -> the
/// mutated warm run must degrade to a cold start with identical bytes.
bool run_store_iteration(std::uint64_t seed) {
    const lls::Aig circuit = random_circuit(seed);
    const std::string dir = "fuzz_store/seed_" + std::to_string(seed);
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
    auto fail = [&](const char* what) {
        std::fprintf(stderr, "FUZZ FAILURE: %s at seed %llu\n", what,
                     static_cast<unsigned long long>(seed));
        dump_reproducer(seed, circuit);
        return false;
    };
    try {
        lls::clear_engine_caches();
        std::string cold;
        {
            lls::WarmStart warm(dir, lls::persist::StoreMode::ReadWrite);
            cold = optimize_bytes(circuit, seed, &warm);
            warm.finalize();
        }

        lls::clear_engine_caches();
        {
            lls::WarmStart warm(dir, lls::persist::StoreMode::Read);
            const std::uint64_t hits_before =
                lls::Metrics::global().counter("persist.warm_hits").value();
            if (optimize_bytes(circuit, seed, &warm) != cold)
                return fail("warm replay diverged from cold run");
            const std::uint64_t hits_after =
                lls::Metrics::global().counter("persist.warm_hits").value();
            if (circuit.depth() >= 2 && warm.imported_records() > 0 && hits_after == hits_before)
                return fail("warm replay registered no warm hits");
        }

        lls::Rng rng(seed ^ 0x57a7e);
        std::size_t mutated = 0;
        for (const auto& entry : std::filesystem::directory_iterator(dir)) {
            if (!entry.is_regular_file()) continue;
            mutate_file(entry.path().string(), rng);
            ++mutated;
        }
        lls::clear_engine_caches();
        {
            lls::WarmStart warm(dir, lls::persist::StoreMode::Read);
            if (optimize_bytes(circuit, seed, &warm) != cold)
                return fail("mutated store changed the result");
        }
        std::printf("seed %llu ok (store mutation contained, %zu shard(s) mutated)\n",
                    static_cast<unsigned long long>(seed), mutated);
        return true;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "FUZZ FAILURE: store exception at seed %llu: %s\n",
                     static_cast<unsigned long long>(seed), e.what());
        dump_reproducer(seed, circuit);
        return false;
    }
}

}  // namespace

int main(int argc, char** argv) {
    // Strict parsing: "lls_fuzz xyz" must be a usage error, not a 0-iteration
    // run that "passes".
    g_argv0 = argv[0];
    const auto usage = [&]() {
        std::fprintf(stderr,
                     "usage: %s [iterations] [base_seed] [--fault-inject SPEC]\n"
                     "       %s --mutate-store [iterations] [base_seed]\n"
                     "       %s --deadline [iterations] [base_seed]\n"
                     "       %s --mem-budget [iterations] [base_seed]\n",
                     argv[0], argv[0], argv[0], argv[0]);
        return 2;
    };
    int iterations = 25;
    std::uint64_t base_seed = 1000;
    std::string fault_plan;
    bool mutate_store = false, deadline_mode = false, memgov_mode = false;
    int positional = 0;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--fault-inject") {
            if (i + 1 >= argc) return usage();
            g_fault_spec = argv[++i];
        } else if (arg == "--mutate-store") {
            mutate_store = true;
        } else if (arg == "--deadline") {
            deadline_mode = true;
        } else if (arg == "--mem-budget") {
            memgov_mode = true;
        } else if (positional == 0) {
            if (!lls::parse_int_option("iterations", arg.c_str(), 1, 1000000000, &iterations))
                return usage();
            ++positional;
        } else if (positional == 1) {
            if (!lls::parse_u64_option("base_seed", arg.c_str(), UINT64_MAX, &base_seed))
                return usage();
            ++positional;
        } else {
            return usage();
        }
    }
    if (!g_fault_spec.empty()) {
        try {
            // Canonical engine-facing form; fatal@batch specs are meaningless
            // here (no checkpoint journal to crash against) and are stripped.
            fault_plan = lls::FaultPlan::parse(g_fault_spec).engine_spec();
        } catch (const std::exception& e) {
            std::fprintf(stderr, "error: %s\n", e.what());
            return 2;
        }
    }

    if ((mutate_store || deadline_mode || memgov_mode) && !g_fault_spec.empty()) {
        std::fprintf(stderr,
                     "error: --mutate-store/--deadline/--mem-budget and --fault-inject are "
                     "mutually exclusive\n");
        return 2;
    }
    if (static_cast<int>(mutate_store) + static_cast<int>(deadline_mode) +
            static_cast<int>(memgov_mode) >
        1) {
        std::fprintf(stderr, "error: --mutate-store, --deadline, and --mem-budget are mutually "
                             "exclusive\n");
        return 2;
    }

    for (int i = 0; i < iterations; ++i) {
        const std::uint64_t seed = base_seed + static_cast<std::uint64_t>(i);
        const bool ok = mutate_store    ? run_store_iteration(seed)
                        : deadline_mode ? run_deadline_iteration(seed)
                        : memgov_mode   ? run_memgov_iteration(seed)
                                        : run_iteration(seed, fault_plan);
        if (!ok) return 1;
    }
    std::printf("fuzz: %d iterations passed\n", iterations);
    return 0;
}
