#include "spcf/spcf.hpp"

#include <gtest/gtest.h>

#include "io/generators.hpp"

namespace lls {
namespace {

struct SpcfFixture : ::testing::Test {
    void build(int bits) {
        adder = ripple_carry_adder(bits);
        patterns = SimPatterns::exhaustive(adder.num_pis());
        sigs = simulate(adder, patterns);
    }
    Aig adder;
    SimPatterns patterns;
    std::vector<Signature> sigs;
};

TEST_F(SpcfFixture, DefaultDeltaIsMaxArrival) {
    build(4);
    const Spcf spcf = compute_spcf(adder, patterns, sigs);
    EXPECT_EQ(spcf.delta, spcf.max_arrival);
    EXPECT_GT(spcf.max_arrival, 0);
    // At the max-arrival threshold, at least one output has a nonempty SPCF.
    bool any = false;
    for (std::size_t o = 0; o < adder.num_pos(); ++o) any = any || !spcf.empty(o);
    EXPECT_TRUE(any);
}

TEST_F(SpcfFixture, MonotonicInDelta) {
    build(4);
    const Spcf strict = compute_spcf(adder, patterns, sigs);
    const Spcf loose = compute_spcf(adder, patterns, sigs, strict.max_arrival - 2);
    for (std::size_t o = 0; o < adder.num_pos(); ++o) {
        EXPECT_GE(loose.count(o), strict.count(o));
        // Every strictly-critical pattern is also loosely critical.
        for (std::size_t w = 0; w < strict.po_spcf[o].size(); ++w)
            EXPECT_EQ(strict.po_spcf[o][w] & ~loose.po_spcf[o][w], 0u);
    }
}

TEST_F(SpcfFixture, CriticalOutputIsTheDeepOne) {
    build(5);
    const Spcf spcf = compute_spcf(adder, patterns, sigs);
    // The most-significant sum and cout carry the longest sensitized paths;
    // sum0 = a0 ^ b0 ^ cin is shallow and must have an empty SPCF at delta.
    EXPECT_TRUE(spcf.empty(0));
    const std::size_t last_sum = adder.num_pos() - 2;
    const std::size_t cout = adder.num_pos() - 1;
    EXPECT_TRUE(!spcf.empty(last_sum) || !spcf.empty(cout));
    EXPECT_EQ(spcf.po_max_arrival[cout],
              *std::max_element(spcf.po_max_arrival.begin(), spcf.po_max_arrival.end()));
}

TEST_F(SpcfFixture, SpcfPatternsSensitizeLongPaths) {
    build(3);
    const Spcf spcf = compute_spcf(adder, patterns, sigs);
    const std::size_t cout = adder.num_pos() - 1;
    if (spcf.empty(cout)) GTEST_SKIP() << "cout not critical in this structure";
    // Cross-check the signature against a recomputation of arrivals.
    const TimingSimResult timing = timing_simulate(adder, patterns, sigs);
    for (std::size_t p = 0; p < patterns.num_patterns(); ++p) {
        const bool in_spcf = (spcf.po_spcf[cout][p >> 6] >> (p & 63)) & 1;
        EXPECT_EQ(in_spcf, timing.po_arrival[cout][p] >= spcf.delta);
    }
}

TEST(Spcf, CountAndEmptyAgree) {
    const Aig adder = ripple_carry_adder(3);
    const SimPatterns patterns = SimPatterns::exhaustive(adder.num_pis());
    const auto sigs = simulate(adder, patterns);
    const Spcf spcf = compute_spcf(adder, patterns, sigs, 1);
    for (std::size_t o = 0; o < adder.num_pos(); ++o)
        EXPECT_EQ(spcf.empty(o), spcf.count(o) == 0u);
}

TEST(Spcf, RandomPatternsOverapproximateShape) {
    // With random patterns on a wide adder, the SPCF must still identify the
    // carry chain outputs as the critical ones.
    const Aig adder = ripple_carry_adder(16);  // 33 PIs -> random sampling
    Rng rng(9);
    const SimPatterns patterns = SimPatterns::random(adder.num_pis(), 4096, rng);
    const auto sigs = simulate(adder, patterns);
    const Spcf spcf = compute_spcf(adder, patterns, sigs, 0);
    EXPECT_GT(spcf.max_arrival, 8);
    EXPECT_TRUE(spcf.empty(0));  // sum0 is never critical
}

}  // namespace
}  // namespace lls
