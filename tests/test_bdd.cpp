#include "bdd/bdd.hpp"

#include <gtest/gtest.h>

#include "bdd/aig_bdd.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "io/generators.hpp"
#include "spcf/spcf.hpp"
#include "spcf/spcf_bdd.hpp"
#include "tt/truth_table.hpp"

namespace lls {
namespace {

TruthTable random_tt(int num_vars, Rng& rng) {
    TruthTable tt(num_vars);
    for (std::uint64_t m = 0; m < tt.num_minterms(); ++m) tt.set_bit(m, rng.next_bool());
    return tt;
}

/// Builds the BDD of a truth table bottom-up (used as a reference).
BddManager::Ref bdd_from_tt(BddManager& m, const TruthTable& tt) {
    BddManager::Ref f = m.bdd_false();
    for (std::uint64_t minterm = 0; minterm < tt.num_minterms(); ++minterm) {
        if (!tt.get_bit(minterm)) continue;
        BddManager::Ref cube = m.bdd_true();
        for (int v = 0; v < tt.num_vars(); ++v) {
            const BddManager::Ref x = m.variable(v);
            cube = m.band(cube, ((minterm >> v) & 1) ? x : m.bnot(x));
        }
        f = m.bor(f, cube);
    }
    return f;
}

TEST(Bdd, TerminalsAndVariables) {
    BddManager m(3);
    EXPECT_TRUE(m.is_false(m.bdd_false()));
    EXPECT_TRUE(m.is_true(m.bdd_true()));
    const auto x0 = m.variable(0);
    EXPECT_EQ(m.variable(0), x0);  // canonical
    EXPECT_TRUE(m.evaluate(x0, 0b001));
    EXPECT_FALSE(m.evaluate(x0, 0b110));
}

TEST(Bdd, OperationsMatchTruthTables) {
    Rng rng(41);
    for (int n = 1; n <= 6; ++n) {
        BddManager m(n);
        for (int trial = 0; trial < 6; ++trial) {
            const TruthTable a = random_tt(n, rng);
            const TruthTable b = random_tt(n, rng);
            const auto fa = bdd_from_tt(m, a);
            const auto fb = bdd_from_tt(m, b);
            const auto f_and = m.band(fa, fb);
            const auto f_or = m.bor(fa, fb);
            const auto f_xor = m.bxor(fa, fb);
            const auto f_not = m.bnot(fa);
            for (std::uint64_t x = 0; x < (1ULL << n); ++x) {
                EXPECT_EQ(m.evaluate(f_and, x), a.get_bit(x) && b.get_bit(x));
                EXPECT_EQ(m.evaluate(f_or, x), a.get_bit(x) || b.get_bit(x));
                EXPECT_EQ(m.evaluate(f_xor, x), a.get_bit(x) != b.get_bit(x));
                EXPECT_EQ(m.evaluate(f_not, x), !a.get_bit(x));
            }
        }
    }
}

TEST(Bdd, CanonicityGivesEqualityTesting) {
    BddManager m(4);
    Rng rng(42);
    const TruthTable a = random_tt(4, rng);
    // Build the same function two different ways; refs must coincide.
    const auto f1 = bdd_from_tt(m, a);
    const auto f2 = m.bnot(bdd_from_tt(m, ~a));
    EXPECT_EQ(f1, f2);
}

TEST(Bdd, CofactorAndQuantification) {
    BddManager m(4);
    Rng rng(43);
    const TruthTable a = random_tt(4, rng);
    const auto f = bdd_from_tt(m, a);
    for (int v = 0; v < 4; ++v) {
        const auto c0 = m.cofactor(f, v, false);
        const auto c1 = m.cofactor(f, v, true);
        const auto ex = m.exists(f, v);
        const auto fa = m.forall(f, v);
        for (std::uint64_t x = 0; x < 16; ++x) {
            const std::uint64_t x0 = x & ~(1ULL << v);
            const std::uint64_t x1 = x | (1ULL << v);
            EXPECT_EQ(m.evaluate(c0, x), a.get_bit(x0));
            EXPECT_EQ(m.evaluate(c1, x), a.get_bit(x1));
            EXPECT_EQ(m.evaluate(ex, x), a.get_bit(x0) || a.get_bit(x1));
            EXPECT_EQ(m.evaluate(fa, x), a.get_bit(x0) && a.get_bit(x1));
        }
    }
}

TEST(Bdd, CountMinterms) {
    BddManager m(10);
    EXPECT_DOUBLE_EQ(m.count_minterms(m.bdd_false()), 0.0);
    EXPECT_DOUBLE_EQ(m.count_minterms(m.bdd_true()), 1024.0);
    EXPECT_DOUBLE_EQ(m.count_minterms(m.variable(3)), 512.0);
    const auto f = m.band(m.variable(0), m.bnot(m.variable(9)));
    EXPECT_DOUBLE_EQ(m.count_minterms(f), 256.0);
}

TEST(Bdd, NodeLimitIsEnforced) {
    BddManager m(16, 64);
    Rng rng(44);
    bool threw = false;
    try {
        BddManager::Ref f = m.bdd_false();
        for (int i = 0; i < 8; ++i) {
            const TruthTable t = random_tt(8, rng);
            f = m.bxor(f, bdd_from_tt(m, t.extend(16).permute({8, 9, 10, 11, 12, 13, 14, 15,
                                                                0, 1, 2, 3, 4, 5, 6, 7})));
        }
    } catch (const LlsError& e) {
        threw = true;
        EXPECT_EQ(e.kind(), ErrorKind::ResourceExhausted);
        EXPECT_EQ(e.stage(), "bdd");
    }
    EXPECT_TRUE(threw);
}

TEST(AigBdd, BddEquivalentDistinguishesNetworks) {
    const Aig adder = ripple_carry_adder(4);
    EXPECT_TRUE(bdd_equivalent(adder, adder));
    Aig other = ripple_carry_adder(4);
    other.set_po(0, !other.po(0));
    EXPECT_FALSE(bdd_equivalent(adder, other));
    EXPECT_THROW(bdd_equivalent(adder, adder, 4), LlsError);
}

TEST(AigBdd, NodeBddsMatchSimulation) {
    const Aig adder = ripple_carry_adder(4);
    BddManager m(static_cast<int>(adder.num_pis()));
    const auto refs = build_node_bdds(adder, m);
    const SimPatterns patterns = SimPatterns::exhaustive(adder.num_pis());
    const auto sigs = simulate(adder, patterns);
    for (std::uint32_t id = 1; id < adder.num_nodes(); ++id) {
        for (std::size_t p = 0; p < patterns.num_patterns(); ++p) {
            const bool sim = (sigs[id][p >> 6] >> (p & 63)) & 1;
            EXPECT_EQ(m.evaluate(refs[id], p), sim) << "node " << id << " pattern " << p;
        }
    }
}

// The decisive cross-validation: exact BDD SPCF == exhaustive-simulation
// SPCF, pattern by pattern, for every PO and multiple thresholds.
class SpcfCrossCheck : public ::testing::TestWithParam<int> {};

TEST_P(SpcfCrossCheck, BddAndSimulationAgree) {
    const int bits = GetParam();
    const Aig adder = ripple_carry_adder(bits);
    const SimPatterns patterns = SimPatterns::exhaustive(adder.num_pis());
    const auto sigs = simulate(adder, patterns);

    for (const std::int32_t delta : {0, 3, 5}) {
        const Spcf sim_spcf = compute_spcf(adder, patterns, sigs, delta);
        const auto exact = compute_spcf_exact(adder, delta);
        ASSERT_TRUE(exact.has_value());
        EXPECT_EQ(exact->max_arrival, sim_spcf.max_arrival);
        EXPECT_EQ(exact->delta, sim_spcf.delta);
        for (std::size_t o = 0; o < adder.num_pos(); ++o) {
            EXPECT_EQ(exact->po_max_arrival[o], sim_spcf.po_max_arrival[o]) << "po " << o;
            const Signature from_bdd =
                bdd_to_signature(*exact->manager, exact->po_spcf[o], patterns);
            EXPECT_EQ(from_bdd, sim_spcf.po_spcf[o]) << "po " << o << " delta " << delta;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AdderSizes, SpcfCrossCheck, ::testing::Values(2, 3, 4));

TEST(SpcfExact, ControlLogicAgreesWithSimulation) {
    const Aig circuit = synthetic_control_circuit({"x", 10, 4, 8, 6, 55});
    const SimPatterns patterns = SimPatterns::exhaustive(circuit.num_pis());
    const auto sigs = simulate(circuit, patterns);
    const Spcf sim_spcf = compute_spcf(circuit, patterns, sigs);
    const auto exact = compute_spcf_exact(circuit);
    ASSERT_TRUE(exact.has_value());
    EXPECT_EQ(exact->max_arrival, sim_spcf.max_arrival);
    for (std::size_t o = 0; o < circuit.num_pos(); ++o)
        EXPECT_EQ(bdd_to_signature(*exact->manager, exact->po_spcf[o], patterns),
                  sim_spcf.po_spcf[o]);
}

TEST(SpcfExact, FractionMatchesCount) {
    const Aig adder = ripple_carry_adder(3);
    const auto exact = compute_spcf_exact(adder);
    ASSERT_TRUE(exact.has_value());
    const std::size_t cout = adder.num_pos() - 1;
    const double frac = exact->fraction(cout);
    EXPECT_GE(frac, 0.0);
    EXPECT_LE(frac, 1.0);
    // The critical carry chain needs specific propagate values, so the SPCF
    // is a strict subset of the input space.
    EXPECT_LT(frac, 0.5);
}

TEST(SpcfExact, DecliningGracefullyOnTinyBudget) {
    const Aig adder = ripple_carry_adder(12);
    EXPECT_FALSE(compute_spcf_exact(adder, 0, /*bdd_node_limit=*/64).has_value());
}

}  // namespace
}  // namespace lls
