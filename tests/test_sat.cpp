#include "sat/solver.hpp"

#include <gtest/gtest.h>

#include <array>

#include "common/rng.hpp"

namespace lls::sat {
namespace {

TEST(SatSolver, TrivialSat) {
    Solver s;
    const int a = s.new_var();
    const int b = s.new_var();
    s.add_clause(Lit(a, false), Lit(b, false));
    EXPECT_EQ(s.solve(), Status::Sat);
    EXPECT_TRUE(s.model_value(a) || s.model_value(b));
}

TEST(SatSolver, TrivialUnsat) {
    Solver s;
    const int a = s.new_var();
    s.add_clause(Lit(a, false));
    EXPECT_FALSE(s.add_clause(Lit(a, true)));
    EXPECT_EQ(s.solve(), Status::Unsat);
}

TEST(SatSolver, UnitPropagationChain) {
    Solver s;
    std::vector<int> vars;
    for (int i = 0; i < 20; ++i) vars.push_back(s.new_var());
    // x0, and x_i -> x_{i+1}; finally !x19: unsat.
    s.add_clause(Lit(vars[0], false));
    for (int i = 0; i + 1 < 20; ++i) s.add_clause(Lit(vars[i], true), Lit(vars[i + 1], false));
    s.add_clause(Lit(vars[19], true));
    EXPECT_EQ(s.solve(), Status::Unsat);
}

TEST(SatSolver, XorChainSat) {
    Solver s;
    // x ^ y = 1 encoded by clauses; two chained xors.
    const int x = s.new_var(), y = s.new_var(), z = s.new_var();
    // x ^ y = 1
    s.add_clause(Lit(x, false), Lit(y, false));
    s.add_clause(Lit(x, true), Lit(y, true));
    // y ^ z = 1
    s.add_clause(Lit(y, false), Lit(z, false));
    s.add_clause(Lit(y, true), Lit(z, true));
    ASSERT_EQ(s.solve(), Status::Sat);
    EXPECT_NE(s.model_value(x), s.model_value(y));
    EXPECT_NE(s.model_value(y), s.model_value(z));
}

TEST(SatSolver, PigeonholeUnsat) {
    // 4 pigeons in 3 holes: classic small UNSAT with real conflict analysis.
    Solver s;
    const int pigeons = 4, holes = 3;
    std::vector<std::vector<int>> v(pigeons, std::vector<int>(holes));
    for (auto& row : v)
        for (auto& x : row) x = s.new_var();
    for (int p = 0; p < pigeons; ++p) {
        std::vector<Lit> clause;
        for (int h = 0; h < holes; ++h) clause.push_back(Lit(v[p][h], false));
        s.add_clause(clause);
    }
    for (int h = 0; h < holes; ++h)
        for (int p1 = 0; p1 < pigeons; ++p1)
            for (int p2 = p1 + 1; p2 < pigeons; ++p2)
                s.add_clause(Lit(v[p1][h], true), Lit(v[p2][h], true));
    EXPECT_EQ(s.solve(), Status::Unsat);
    EXPECT_GT(s.num_conflicts(), 0);
}

TEST(SatSolver, Assumptions) {
    Solver s;
    const int a = s.new_var();
    const int b = s.new_var();
    s.add_clause(Lit(a, true), Lit(b, false));  // a -> b
    EXPECT_EQ(s.solve({Lit(a, false), Lit(b, true)}), Status::Unsat);
    EXPECT_EQ(s.solve({Lit(a, false)}), Status::Sat);
    EXPECT_TRUE(s.model_value(b));
    // The solver must remain reusable after assumption-based calls.
    EXPECT_EQ(s.solve({Lit(b, true)}), Status::Sat);
    EXPECT_FALSE(s.model_value(a));
}

TEST(SatSolver, ConflictLimitReturnsUnknown) {
    // A hard pigeonhole instance with a 1-conflict budget cannot finish.
    Solver s;
    const int pigeons = 7, holes = 6;
    std::vector<std::vector<int>> v(pigeons, std::vector<int>(holes));
    for (auto& row : v)
        for (auto& x : row) x = s.new_var();
    for (int p = 0; p < pigeons; ++p) {
        std::vector<Lit> clause;
        for (int h = 0; h < holes; ++h) clause.push_back(Lit(v[p][h], false));
        s.add_clause(clause);
    }
    for (int h = 0; h < holes; ++h)
        for (int p1 = 0; p1 < pigeons; ++p1)
            for (int p2 = p1 + 1; p2 < pigeons; ++p2)
                s.add_clause(Lit(v[p1][h], true), Lit(v[p2][h], true));
    EXPECT_EQ(s.solve({}, 1), Status::Unknown);
}

TEST(SatSolver, HardPigeonholeExercisesClauseDatabaseReduction) {
    // php(9,8) needs ~20k conflicts, well past the learned-clause reduction
    // threshold, so this covers restart + reduce_learned + reason remapping.
    Solver s;
    const int holes = 8, pigeons = 9;
    std::vector<std::vector<int>> v(pigeons, std::vector<int>(holes));
    for (auto& row : v)
        for (auto& x : row) x = s.new_var();
    for (int p = 0; p < pigeons; ++p) {
        std::vector<Lit> clause;
        for (int h = 0; h < holes; ++h) clause.push_back(Lit(v[p][h], false));
        s.add_clause(clause);
    }
    for (int h = 0; h < holes; ++h)
        for (int p1 = 0; p1 < pigeons; ++p1)
            for (int p2 = p1 + 1; p2 < pigeons; ++p2)
                s.add_clause(Lit(v[p1][h], true), Lit(v[p2][h], true));
    EXPECT_EQ(s.solve(), Status::Unsat);
    EXPECT_GT(s.num_conflicts(), 2000);
}

TEST(SatSolver, TautologyAndDuplicateLiterals) {
    Solver s;
    const int a = s.new_var();
    const int b = s.new_var();
    EXPECT_TRUE(s.add_clause({Lit(a, false), Lit(a, true)}));          // tautology dropped
    EXPECT_TRUE(s.add_clause({Lit(b, false), Lit(b, false)}));         // dedup to unit
    EXPECT_EQ(s.solve(), Status::Sat);
    EXPECT_TRUE(s.model_value(b));
}

// Random 3-SAT cross-checked against brute force.
class RandomSat : public ::testing::TestWithParam<int> {};

TEST_P(RandomSat, AgreesWithBruteForce) {
    Rng rng(static_cast<std::uint64_t>(GetParam()));
    const int num_vars = 10;
    const int num_clauses = 3 + static_cast<int>(rng.next_below(50));

    std::vector<std::array<int, 3>> clauses;  // encoded literals 2v+neg
    for (int c = 0; c < num_clauses; ++c) {
        std::array<int, 3> cl{};
        for (auto& l : cl)
            l = static_cast<int>(rng.next_below(num_vars)) * 2 +
                static_cast<int>(rng.next_below(2));
        clauses.push_back(cl);
    }

    bool brute_sat = false;
    for (std::uint32_t m = 0; m < (1u << num_vars) && !brute_sat; ++m) {
        bool all = true;
        for (const auto& cl : clauses) {
            bool any = false;
            for (const int l : cl) {
                const bool val = ((m >> (l >> 1)) & 1) != 0;
                if (val != ((l & 1) != 0)) any = true;
            }
            if (!any) {
                all = false;
                break;
            }
        }
        brute_sat = all;
    }

    Solver s;
    for (int v = 0; v < num_vars; ++v) s.new_var();
    bool consistent = true;
    for (const auto& cl : clauses) {
        std::vector<Lit> lits;
        for (const int l : cl) lits.push_back(Lit(l >> 1, (l & 1) != 0));
        consistent = s.add_clause(lits) && consistent;
    }
    const Status st = consistent ? s.solve() : Status::Unsat;
    EXPECT_EQ(st == Status::Sat, brute_sat);

    if (st == Status::Sat) {
        // The model must actually satisfy all clauses.
        for (const auto& cl : clauses) {
            bool any = false;
            for (const int l : cl)
                if (s.model_value(l >> 1) != ((l & 1) != 0)) any = true;
            EXPECT_TRUE(any);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomSat, ::testing::Range(1, 40));

}  // namespace
}  // namespace lls::sat
