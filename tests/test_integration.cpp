// End-to-end flows: lookahead vs baselines on the paper's workloads,
// with equivalence checked at every step. These are the repository's
// cross-module integration tests.

#include <gtest/gtest.h>

#include "baseline/flows.hpp"
#include "cec/cec.hpp"
#include "io/blif.hpp"
#include "io/generators.hpp"
#include "lookahead/optimize.hpp"
#include "mapping/mapper.hpp"

namespace lls {
namespace {

TEST(Integration, LookaheadBeatsBaselinesOnRippleCarry) {
    // The Table 1 headline on one size: lookahead must land at or below the
    // best baseline depth and close to the CLA optimum.
    const Aig rca = ripple_carry_adder(8);
    Rng rng(5);
    const int d_sis = flow_sis(rca, rng).depth();
    const int d_abc = flow_abc(rca, rng).depth();
    const int d_dc = flow_dc(rca, rng).depth();

    LookaheadParams params;
    const Aig ours = optimize_timing(rca, params);
    EXPECT_TRUE(check_equivalence(rca, ours).equivalent);
    const int d_ours = ours.depth();
    EXPECT_LE(d_ours, std::min({d_sis, d_abc, d_dc}));
    EXPECT_LT(d_ours, rca.depth());
}

TEST(Integration, MappedDelayTracksDepthGains) {
    const CellLibrary lib = CellLibrary::generic_70nm();
    const Aig rca = ripple_carry_adder(10);
    const Aig ours = optimize_timing(rca);
    ASSERT_TRUE(check_equivalence(rca, ours).equivalent);
    const MappedCircuit before = map_circuit(rca, lib);
    const MappedCircuit after = map_circuit(ours, lib);
    EXPECT_LT(after.delay_ps, before.delay_ps);
}

TEST(Integration, ControlLogicEndToEnd) {
    BenchmarkProfile profile{"mini", 14, 5, 10, 8, 11};
    const Aig circuit = synthetic_control_circuit(profile);
    LookaheadParams params;
    params.max_iterations = 4;
    OptimizeStats stats;
    const Aig ours = optimize_timing(circuit, params, &stats);
    EXPECT_TRUE(stats.verified);
    EXPECT_TRUE(check_equivalence(circuit, ours).equivalent);
    EXPECT_LE(ours.depth(), circuit.depth());
}

TEST(Integration, BlifInBlifOutThroughTheFlow) {
    // A full user journey: BLIF in -> optimize -> BLIF out -> re-read ->
    // equivalent to the original.
    const Aig rca = ripple_carry_adder(5);
    std::stringstream in;
    write_blif(in, rca, "rca5");
    const Aig parsed = read_blif(in);
    const Aig optimized = optimize_timing(parsed);
    std::stringstream out;
    write_blif(out, optimized, "rca5_opt");
    const Aig reread = read_blif(out);
    EXPECT_TRUE(check_equivalence(rca, reread).equivalent);
}

TEST(Integration, CaseStudyDecompositionsOfTwoBitAdder) {
    // Sec. 4: the 2-bit adder c_out admits 4-level decompositions; our flow
    // must find *some* realization at most as deep as the ripple form, and
    // all the named fast adders must be equivalent to it.
    const Aig rca = ripple_carry_adder(2);
    const Aig cla = carry_lookahead_adder(2);
    const Aig csa = carry_select_adder(2, 1);
    EXPECT_TRUE(check_equivalence(rca, cla).equivalent);
    EXPECT_TRUE(check_equivalence(rca, csa).equivalent);

    const Aig ours = optimize_timing(rca);
    EXPECT_TRUE(check_equivalence(rca, ours).equivalent);
    EXPECT_LE(ours.depth(), rca.depth());
}

class AdderSweep : public ::testing::TestWithParam<int> {};

TEST_P(AdderSweep, OptimizedAdderStaysCorrectAndShallow) {
    const int bits = GetParam();
    const Aig rca = ripple_carry_adder(bits);
    LookaheadParams params;
    params.max_iterations = bits >= 12 ? 4 : 8;
    const Aig ours = optimize_timing(rca, params);
    EXPECT_TRUE(check_equivalence(rca, ours, 2000000).equivalent) << bits;
    if (bits >= 4) {
        EXPECT_LT(ours.depth(), rca.depth()) << bits;
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, AdderSweep, ::testing::Values(2, 4, 6, 8, 12));

}  // namespace
}  // namespace lls
