#include "cec/redundancy.hpp"

#include <gtest/gtest.h>

#include "cec/cec.hpp"
#include "io/generators.hpp"

namespace lls {
namespace {

TEST(Redundancy, RemovesAbsorbedTerm) {
    // y = (a&b) | (a&b&c): the second product is absorbed; the redundant
    // logic must disappear entirely.
    Aig aig;
    const AigLit a = aig.add_pi("a");
    const AigLit b = aig.add_pi("b");
    const AigLit c = aig.add_pi("c");
    const AigLit ab = aig.land(a, b);
    const AigLit abc = aig.land(ab, c);
    aig.add_po(aig.lor(ab, abc), "y");

    Rng rng(1);
    const Aig out = remove_redundancies(aig, rng);
    EXPECT_TRUE(check_equivalence(aig, out).equivalent);
    EXPECT_EQ(out.count_reachable_ands(), 1u);  // just a&b remains
}

TEST(Redundancy, RemovesConsensusTerm) {
    // y = a*b + !a*c + b*c: the consensus term b*c is redundant.
    Aig aig;
    const AigLit a = aig.add_pi("a");
    const AigLit b = aig.add_pi("b");
    const AigLit c = aig.add_pi("c");
    const AigLit t1 = aig.land(a, b);
    const AigLit t2 = aig.land(!a, c);
    const AigLit t3 = aig.land(b, c);
    aig.add_po(aig.lor(aig.lor(t1, t2), t3), "y");

    Rng rng(2);
    const Aig out = remove_redundancies(aig, rng);
    EXPECT_TRUE(check_equivalence(aig, out).equivalent);
    EXPECT_LT(out.count_reachable_ands(), aig.count_reachable_ands());
}

TEST(Redundancy, LeavesIrredundantCircuitsAlone) {
    // A ripple-carry adder has no untestable stuck-at-1 input faults.
    const Aig rca = ripple_carry_adder(3);
    Rng rng(3);
    const Aig out = remove_redundancies(rca, rng);
    EXPECT_TRUE(check_equivalence(rca, out).equivalent);
    EXPECT_EQ(out.count_reachable_ands(), rca.count_reachable_ands());
}

TEST(Redundancy, SatPathOnWideCircuits) {
    // > 14 PIs: candidates that survive the simulation screen go to SAT.
    Aig aig;
    std::vector<AigLit> pis;
    for (int i = 0; i < 16; ++i) pis.push_back(aig.add_pi());
    AigLit wide_and = aig.land_many(pis);
    // Redundant: OR with a term contained in the wide AND.
    const AigLit contained = aig.land(aig.land(pis[0], pis[1]), wide_and);
    aig.add_po(aig.lor(wide_and, contained), "y");

    Rng rng(4);
    const Aig out = remove_redundancies(aig, rng);
    EXPECT_TRUE(check_equivalence(aig, out).equivalent);
    EXPECT_LE(out.count_reachable_ands(), aig.count_reachable_ands());
}

TEST(Redundancy, RespectsRemovalBudget) {
    // With a zero budget the circuit is returned unchanged (just cleaned).
    Aig aig;
    const AigLit a = aig.add_pi();
    const AigLit b = aig.add_pi();
    const AigLit ab = aig.land(a, b);
    aig.add_po(aig.lor(ab, aig.land(ab, a)), "y");
    Rng rng(5);
    const Aig out = remove_redundancies(aig, rng, /*max_removals=*/0);
    EXPECT_TRUE(check_equivalence(aig, out).equivalent);
    EXPECT_EQ(out.count_reachable_ands(), aig.cleanup().count_reachable_ands());
}

}  // namespace
}  // namespace lls
