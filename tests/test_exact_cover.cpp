#include "sop/exact_cover.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace lls {
namespace {

TruthTable random_tt(int num_vars, Rng& rng) {
    TruthTable tt(num_vars);
    for (std::uint64_t m = 0; m < tt.num_minterms(); ++m) tt.set_bit(m, rng.next_bool());
    return tt;
}

/// Brute-force check that no cover of the same prime set with fewer cubes
/// exists (subset enumeration; only usable for small prime counts).
bool is_minimum_cover(const TruthTable& f, const TruthTable& dc, std::size_t cubes) {
    if (cubes == 0) return true;
    const auto primes = prime_implicants(f & ~dc, dc);
    if (primes.size() > 18) return true;  // enumeration too big; trust B&B
    const TruthTable on = f & ~dc;
    for (std::uint32_t subset = 0; subset < (1u << primes.size()); ++subset) {
        if (static_cast<std::size_t>(__builtin_popcount(subset)) >= cubes) continue;
        Sop s(f.num_vars());
        for (std::size_t p = 0; p < primes.size(); ++p)
            if ((subset >> p) & 1) s.add_cube(primes[p]);
        if (on.implies(s.to_truth_table())) return false;  // smaller cover exists
    }
    return true;
}

TEST(ExactCover, Constants) {
    const auto zero = exact_minimum_sop(TruthTable::constant(4, false));
    ASSERT_TRUE(zero.has_value());
    EXPECT_TRUE(zero->empty());
    const auto one = exact_minimum_sop(TruthTable::constant(4, true));
    ASSERT_TRUE(one.has_value());
    EXPECT_EQ(one->num_cubes(), 1u);
}

TEST(ExactCover, KnownMinima) {
    // xor2 needs exactly 2 cubes; majority-of-3 needs exactly 3.
    TruthTable x(2);
    x.set_bit(1, true);
    x.set_bit(2, true);
    ASSERT_TRUE(exact_minimum_sop(x).has_value());
    EXPECT_EQ(exact_minimum_sop(x)->num_cubes(), 2u);

    TruthTable maj(3);
    for (std::uint64_t m = 0; m < 8; ++m)
        maj.set_bit(m, __builtin_popcountll(m) >= 2);
    ASSERT_TRUE(exact_minimum_sop(maj).has_value());
    EXPECT_EQ(exact_minimum_sop(maj)->num_cubes(), 3u);
}

TEST(ExactCover, CoverIsExactAndMinimal) {
    Rng rng(61);
    for (int n = 2; n <= 5; ++n) {
        for (int trial = 0; trial < 12; ++trial) {
            const TruthTable f = random_tt(n, rng);
            const auto cover = exact_minimum_sop(f);
            ASSERT_TRUE(cover.has_value()) << "n=" << n;
            EXPECT_EQ(cover->to_truth_table(), f);
            EXPECT_TRUE(is_minimum_cover(f, TruthTable::constant(n, false), cover->num_cubes()))
                << "n=" << n << " cover " << cover->to_string();
        }
    }
}

TEST(ExactCover, UsesDontCares) {
    Rng rng(62);
    for (int trial = 0; trial < 12; ++trial) {
        const TruthTable f = random_tt(4, rng);
        const TruthTable dc = random_tt(4, rng) & ~f;
        const auto cover = exact_minimum_sop(f, dc);
        ASSERT_TRUE(cover.has_value());
        const TruthTable tt = cover->to_truth_table();
        EXPECT_TRUE(f.implies(tt));
        EXPECT_TRUE(tt.implies(f | dc));
        // Never worse than the exact cover without don't-cares.
        const auto strict = exact_minimum_sop(f);
        ASSERT_TRUE(strict.has_value());
        EXPECT_LE(cover->num_cubes(), strict->num_cubes());
    }
}

TEST(ExactCover, NeverBeatenByHeuristic) {
    Rng rng(63);
    for (int n = 2; n <= 6; ++n) {
        for (int trial = 0; trial < 8; ++trial) {
            const TruthTable f = random_tt(n, rng);
            const auto exact = exact_minimum_sop(f);
            ASSERT_TRUE(exact.has_value());
            // minimum_sop now routes through the exact cover for n <= 6.
            EXPECT_EQ(minimum_sop(f).num_cubes(), exact->num_cubes());
        }
    }
}

TEST(ExactCover, HandlesCyclicCore) {
    // The classic cyclic covering core: f = sum m(0,1,2,5,6,7) has six
    // primes, no essentials, and a minimum cover of exactly 3 cubes.
    TruthTable f(3);
    for (const std::uint64_t m : {1, 2, 3, 4, 5, 6}) f.set_bit(m, true);
    const auto cover = exact_minimum_sop(f);
    ASSERT_TRUE(cover.has_value());
    EXPECT_EQ(cover->num_cubes(), 3u);
    EXPECT_EQ(cover->to_truth_table(), f);
}

TEST(ExactCover, DeclinesOnTinyBudget) {
    // With no essential primes and a zero search budget the branch-and-bound
    // cannot even certify a first solution.
    TruthTable f(3);
    for (const std::uint64_t m : {1, 2, 3, 4, 5, 6}) f.set_bit(m, true);
    EXPECT_FALSE(exact_minimum_sop(f, TruthTable::constant(3, false), /*budget=*/1).has_value());
}

}  // namespace
}  // namespace lls
