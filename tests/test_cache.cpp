#include "engine/cache.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace lls {
namespace {

/// Maps every key to shard 0, so capacity and eviction behavior can be
/// exercised deterministically on a single stripe.
struct ZeroHash {
    std::size_t operator()(int) const { return 0; }
};

using OneShardCache = ShardedCache<int, int, ZeroHash>;

TEST(ShardedCache, MissThenHit) {
    OneShardCache cache("test.basic", 8);
    EXPECT_FALSE(cache.get(1).has_value());
    cache.put(1, 10);
    const auto hit = cache.get(1);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(*hit, 10);

    const CacheStatsSnapshot s = cache.stats();
    EXPECT_EQ(s.name, "test.basic");
    EXPECT_EQ(s.misses, 1u);
    EXPECT_EQ(s.hits, 1u);
    EXPECT_EQ(s.entries, 1u);
    EXPECT_EQ(s.evictions, 0u);
}

TEST(ShardedCache, InsertPastCapacityDropsHalfTheShard) {
    constexpr std::size_t kCap = 8;
    OneShardCache cache("test.evict", kCap);
    for (int k = 0; k < static_cast<int>(kCap); ++k) cache.put(k, k);
    EXPECT_EQ(cache.stats().entries, kCap);
    EXPECT_EQ(cache.stats().evictions, 0u);

    // The 9th distinct key trips the bound: the shard drops to half
    // capacity first, then the new key lands on top.
    cache.put(100, 100);
    const CacheStatsSnapshot s = cache.stats();
    EXPECT_EQ(s.entries, kCap / 2 + 1);
    EXPECT_EQ(s.evictions, kCap - kCap / 2);
    // The newly inserted key always survives its own eviction.
    ASSERT_TRUE(cache.get(100).has_value());
    EXPECT_EQ(*cache.get(100), 100);
}

TEST(ShardedCache, OverwriteAtCapacityDoesNotEvict) {
    constexpr std::size_t kCap = 8;
    OneShardCache cache("test.overwrite", kCap);
    for (int k = 0; k < static_cast<int>(kCap); ++k) cache.put(k, k);

    // Re-putting a resident key is an overwrite, not a growth insert.
    cache.put(3, 33);
    const CacheStatsSnapshot s = cache.stats();
    EXPECT_EQ(s.entries, kCap);
    EXPECT_EQ(s.evictions, 0u);
    EXPECT_EQ(*cache.get(3), 33);
}

TEST(ShardedCache, PerShardCapacityBoundHoldsUnderChurn) {
    constexpr std::size_t kCap = 4;
    using IntCache = ShardedCache<int, int>;
    IntCache cache("test.bound", kCap);
    for (int k = 0; k < 1000; ++k) cache.put(k, k);
    // Whatever the hash scatter, no shard may exceed its bound, so the
    // total is capped at kShards * kCap.
    const CacheStatsSnapshot s = cache.stats();
    EXPECT_LE(s.entries, IntCache::kShards * kCap);
    EXPECT_GT(s.evictions, 0u);
}

TEST(ShardedCache, GetOrComputeCachesTheFirstResult) {
    OneShardCache cache("test.memoize", 64);
    int calls = 0;
    const auto compute = [&calls] {
        ++calls;
        return 42;
    };
    EXPECT_EQ(cache.get_or_compute(7, compute), 42);
    EXPECT_EQ(cache.get_or_compute(7, compute), 42);
    EXPECT_EQ(calls, 1);
}

TEST(ShardedCache, ForEachVisitsEveryEntry) {
    ShardedCache<int, int> cache("test.visit", 1024);
    std::set<int> expected;
    for (int k = 0; k < 100; ++k) {
        cache.put(k, k * 2);
        expected.insert(k);
    }
    std::set<int> seen;
    cache.for_each([&](const int& key, const int& value) {
        EXPECT_EQ(value, key * 2);
        EXPECT_TRUE(seen.insert(key).second) << "duplicate visit of " << key;
    });
    EXPECT_EQ(seen, expected);
}

TEST(ShardedCache, StatsSnapshotExactUnderConcurrentInsert) {
    // 8 threads insert disjoint key ranges through get_or_compute with a
    // capacity high enough that nothing evicts: afterwards, entries/misses
    // are exactly the total key count and a second pass hits every key.
    constexpr int kThreads = 8;
    constexpr int kPerThread = 256;
    ShardedCache<int, int> cache("test.concurrent", 4096);

    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        workers.emplace_back([&cache, t] {
            for (int i = 0; i < kPerThread; ++i) {
                const int key = t * kPerThread + i;
                cache.get_or_compute(key, [key] { return key + 1; });
            }
        });
    }
    for (auto& w : workers) w.join();

    const CacheStatsSnapshot after_insert = cache.stats();
    EXPECT_EQ(after_insert.entries, static_cast<std::uint64_t>(kThreads * kPerThread));
    EXPECT_EQ(after_insert.misses, static_cast<std::uint64_t>(kThreads * kPerThread));
    EXPECT_EQ(after_insert.hits, 0u);
    EXPECT_EQ(after_insert.evictions, 0u);

    workers.clear();
    for (int t = 0; t < kThreads; ++t) {
        workers.emplace_back([&cache, t] {
            for (int i = 0; i < kPerThread; ++i) {
                const int key = t * kPerThread + i;
                const auto hit = cache.get(key);
                ASSERT_TRUE(hit.has_value());
                EXPECT_EQ(*hit, key + 1);
            }
        });
    }
    for (auto& w : workers) w.join();

    const CacheStatsSnapshot after_read = cache.stats();
    EXPECT_EQ(after_read.hits, static_cast<std::uint64_t>(kThreads * kPerThread));
    EXPECT_EQ(after_read.misses, after_insert.misses);
}

TEST(ShardedCache, ConcurrentGetOrComputeOnOneKeyStaysConsistent) {
    // Racing computes of the same fresh key may each run (compute happens
    // outside the stripe lock), but the cache must end up with exactly one
    // entry and every later read must return it.
    OneShardCache cache("test.race", 64);
    std::atomic<int> computes{0};
    std::vector<std::thread> workers;
    for (int t = 0; t < 8; ++t) {
        workers.emplace_back([&] {
            for (int i = 0; i < 100; ++i)
                cache.get_or_compute(5, [&] {
                    computes.fetch_add(1, std::memory_order_relaxed);
                    return 55;
                });
        });
    }
    for (auto& w : workers) w.join();

    EXPECT_GE(computes.load(), 1);
    EXPECT_EQ(cache.stats().entries, 1u);
    EXPECT_EQ(*cache.get(5), 55);
}

TEST(ShardedCache, BytesLedgerTracksInsertOverwriteEvictClear) {
    // Default flat sizer: every <int,int> entry costs the same.
    constexpr std::size_t kEntry = sizeof(int) + sizeof(int) + OneShardCache::kEntryOverheadBytes;
    OneShardCache cache("test.bytes", 8);
    EXPECT_EQ(cache.bytes(), 0u);
    for (int k = 0; k < 4; ++k) cache.put(k, k);
    EXPECT_EQ(cache.bytes(), 4 * kEntry);
    EXPECT_EQ(cache.stats().bytes, 4 * kEntry);
    cache.put(2, 22);  // overwrite: same size, ledger unchanged
    EXPECT_EQ(cache.bytes(), 4 * kEntry);
    for (int k = 4; k < 9; ++k) cache.put(k, k);  // trips the entry cap at the 9th
    EXPECT_EQ(cache.bytes(), cache.stats().entries * kEntry);
    cache.clear();
    EXPECT_EQ(cache.bytes(), 0u);
}

TEST(ShardedCache, CustomSizerChargesTheStoredEntry) {
    // The sizer sees the *stored* copy, so a capacity-dependent sizer stays
    // ledger-consistent: what insert adds, erase subtracts.
    using StringCache = ShardedCache<int, std::string, ZeroHash>;
    StringCache cache("test.sizer", 8, [](const int&, const std::string& v) {
        return sizeof(int) + v.capacity() + StringCache::kEntryOverheadBytes;
    });
    cache.put(1, std::string(100, 'x'));
    cache.put(2, std::string(5, 'y'));
    std::size_t expected = 0;
    cache.for_each([&](const int&, const std::string& v) {
        expected += sizeof(int) + v.capacity() + StringCache::kEntryOverheadBytes;
    });
    EXPECT_EQ(cache.bytes(), expected);
    // Overwrite with a differently-sized value re-prices the entry.
    cache.put(1, std::string(3, 'z'));
    expected = 0;
    cache.for_each([&](const int&, const std::string& v) {
        expected += sizeof(int) + v.capacity() + StringCache::kEntryOverheadBytes;
    });
    EXPECT_EQ(cache.bytes(), expected);
}

TEST(ShardedCache, ByteLimitEvictsBeforeTheEntryCap) {
    constexpr std::size_t kEntry = sizeof(int) + sizeof(int) + OneShardCache::kEntryOverheadBytes;
    // Generous entry cap; the byte limit is what binds. All keys land in
    // shard 0 (ZeroHash), whose slice is limit / kShards = 4 entries.
    OneShardCache cache("test.bytelimit", 4096);
    cache.set_byte_limit(4 * kEntry * OneShardCache::kShards);
    for (int k = 0; k < 4; ++k) cache.put(k, k);
    EXPECT_EQ(cache.stats().evictions, 0u);
    cache.put(4, 4);  // 5th entry would exceed the slice: evict half first
    const CacheStatsSnapshot s = cache.stats();
    EXPECT_GT(s.evictions, 0u);
    EXPECT_EQ(s.entries, 4u / 2 + 1);
    EXPECT_LE(cache.bytes(), 4 * kEntry);
    // The newly inserted key survives its own eviction.
    EXPECT_TRUE(cache.get(4).has_value());
}

TEST(ShardedCache, ShedHalfFreesBytesAndReportsThem) {
    constexpr std::size_t kEntry = sizeof(int) + sizeof(int) + OneShardCache::kEntryOverheadBytes;
    OneShardCache cache("test.shed", 64);
    for (int k = 0; k < 8; ++k) cache.put(k, k);
    const std::size_t before = cache.bytes();
    EXPECT_EQ(before, 8 * kEntry);
    const std::size_t freed = cache.shed_half();
    EXPECT_EQ(freed, before - cache.bytes());
    EXPECT_EQ(cache.stats().entries, 4u);
    EXPECT_EQ(cache.bytes(), 4 * kEntry);
    EXPECT_GT(cache.stats().evictions, 0u);
    // Shedding an empty cache is a no-op, not an underflow.
    cache.clear();
    EXPECT_EQ(cache.shed_half(), 0u);
    EXPECT_EQ(cache.bytes(), 0u);
}

TEST(ShardedCache, RegisteredInGlobalStats) {
    ShardedCache<std::string, int> cache("test.registry.unique", 16);
    cache.put("a", 1);
    bool found = false;
    for (const auto& s : all_cache_stats()) {
        if (s.name == "test.registry.unique") {
            found = true;
            EXPECT_EQ(s.entries, 1u);
        }
    }
    EXPECT_TRUE(found);
}

}  // namespace
}  // namespace lls
