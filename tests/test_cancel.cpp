// Unit tests of the cooperative-cancellation primitives
// (common/cancel.hpp): token requests across threads, deadline arming and
// the amortized clock check, scope nesting under help-while-waiting, and
// the poll's throw behavior. The engine-level behavior (cancelled cones
// degrading to FaultRecords, graceful batch shutdown) lives in
// test_engine.cpp.

#include "common/cancel.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "common/error.hpp"

namespace lls {
namespace {

TEST(CancelToken, StickyAndCrossThread) {
    CancelToken token;
    EXPECT_FALSE(token.requested());
    std::thread requester([&] { token.request(); });
    requester.join();
    EXPECT_TRUE(token.requested());
    // Sticky: once requested, always requested.
    EXPECT_TRUE(token.requested());
}

TEST(Deadline, DefaultUnarmedNeverExpires) {
    const Deadline d;
    EXPECT_FALSE(d.armed());
    EXPECT_FALSE(d.expired());
}

TEST(Deadline, AlreadyExpiredFiresOnFirstPoll) {
    // countdown starts at 0 in a fresh scope, so the very first poll reads
    // the clock — an evaluation that starts past its deadline does zero
    // work instead of running kCancelPollPeriod iterations for free.
    const Deadline d = Deadline::after_seconds(1e-9);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    const CancelScope scope(nullptr, &d);
    EXPECT_TRUE(cancel_pending());
    EXPECT_THROW(poll_cancellation("test"), LlsError);
}

TEST(Deadline, FarFutureDeadlineDoesNotFire) {
    const Deadline d = Deadline::after_seconds(3600.0);
    const CancelScope scope(nullptr, &d);
    for (int i = 0; i < 10000; ++i) EXPECT_FALSE(cancel_pending());
    EXPECT_NO_THROW(poll_cancellation("test"));
}

TEST(CancelScope, NoScopeMeansNoCancellation) {
    // Polls are unconditional in the hot loops; without a scope they must
    // be inert, not crash or throw.
    for (int i = 0; i < 1000; ++i) EXPECT_FALSE(cancel_pending());
    EXPECT_NO_THROW(poll_cancellation("test"));
}

TEST(CancelScope, TokenRequestSurfacesInPoll) {
    CancelToken token;
    const CancelScope scope(&token, nullptr);
    EXPECT_NO_THROW(poll_cancellation("test"));
    token.request();
    EXPECT_TRUE(cancel_pending());
    EXPECT_TRUE(cancel_requested_by_token());
    try {
        poll_cancellation("sat");
        FAIL() << "poll_cancellation did not throw";
    } catch (const LlsError& e) {
        EXPECT_EQ(e.kind(), ErrorKind::Cancelled);
        EXPECT_EQ(e.stage(), "sat");
    }
}

TEST(CancelScope, CrossThreadRequestCancelsWorker) {
    CancelToken token;
    std::atomic<bool> worker_saw_cancel{false};
    std::thread worker([&] {
        const CancelScope scope(&token, nullptr);
        // Spin until the main thread's request lands; bounded so a broken
        // token fails the test instead of hanging it.
        for (int i = 0; i < 10000000 && !cancel_pending(); ++i) {
            std::this_thread::yield();
        }
        worker_saw_cancel = cancel_pending();
    });
    token.request();
    worker.join();
    EXPECT_TRUE(worker_saw_cancel);
}

TEST(CancelScope, NestingSavesAndRestores) {
    // A pool worker that inlines another task (help-while-waiting) installs
    // the inner task's scope; on return the outer cone's deadline state
    // must come back exactly, including the fired latch.
    CancelToken outer_token;
    const Deadline outer_deadline = Deadline::after_seconds(1e-9);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    const CancelScope outer(&outer_token, &outer_deadline);
    EXPECT_TRUE(cancel_pending());  // outer deadline fired (latched)
    {
        const CancelScope inner(nullptr, nullptr);
        EXPECT_FALSE(cancel_pending());  // inner scope is clean
    }
    EXPECT_TRUE(cancel_pending());  // latch restored with the outer scope
    EXPECT_FALSE(cancel_requested_by_token());
    outer_token.request();
    EXPECT_TRUE(cancel_requested_by_token());
}

TEST(CancelScope, TokenCheckedEveryPollNotEveryPeriod) {
    // The deadline's clock read is amortized, but a shutdown request must
    // be visible on the very next poll — mid-period, not after up to 255
    // more iterations of SAT work.
    CancelToken token;
    const Deadline d = Deadline::after_seconds(3600.0);
    const CancelScope scope(&token, &d);
    for (int i = 0; i < 10; ++i) EXPECT_FALSE(cancel_pending());  // mid-period
    token.request();
    EXPECT_TRUE(cancel_pending());
}

TEST(CancelPoll, CheapWhenUnarmed) {
    // Smoke bound, not a benchmark: ten million no-scope polls must finish
    // in well under a second — catches an accidental clock read or lock on
    // the common path (a steady_clock::now() per poll would take seconds).
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < 10000000; ++i) {
        if (cancel_pending()) FAIL() << "spurious cancellation";
    }
    const auto elapsed = std::chrono::steady_clock::now() - start;
    EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count(), 1000);
}

TEST(CancelPoll, AmortizedClockReadsWithArmedDeadline) {
    // With an armed far-future deadline the poll still must not read the
    // clock every time: kCancelPollPeriod polls per read keeps 10M polls
    // to ~40k clock reads, comfortably under the same bound.
    const Deadline d = Deadline::after_seconds(3600.0);
    const CancelScope scope(nullptr, &d);
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < 10000000; ++i) {
        if (cancel_pending()) FAIL() << "spurious cancellation";
    }
    const auto elapsed = std::chrono::steady_clock::now() - start;
    EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count(), 1000);
}

}  // namespace
}  // namespace lls
