#include "persist/store.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/error.hpp"
#include "engine/engine.hpp"
#include "engine/metrics.hpp"
#include "engine/warm_start.hpp"
#include "io/blif.hpp"
#include "io/generators.hpp"
#include "persist/codec.hpp"
#include "tt/npn.hpp"

namespace lls {
namespace {

namespace fs = std::filesystem;
using persist::ByteReader;
using persist::ByteWriter;
using persist::LoadReport;
using persist::MemoStore;
using persist::Section;
using persist::StoreMode;

/// Fresh scratch directory per test, removed on destruction.
struct TempDir {
    fs::path path;
    explicit TempDir(const std::string& tag) {
        path = fs::temp_directory_path() / ("lls_persist_" + tag);
        fs::remove_all(path);
        fs::create_directories(path);
    }
    ~TempDir() {
        std::error_code ec;
        fs::remove_all(path, ec);
    }
    std::string str() const { return path.string(); }
};

std::vector<fs::path> shard_files(const fs::path& dir) {
    std::vector<fs::path> out;
    for (const auto& entry : fs::directory_iterator(dir))
        if (entry.is_regular_file() && entry.path().extension() == persist::kShardExtension)
            out.push_back(entry.path());
    return out;
}

std::string slurp(const fs::path& p) {
    std::ifstream in(p, std::ios::binary);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

void dump(const fs::path& p, const std::string& bytes) {
    std::ofstream out(p, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// ---------------------------------------------------------------- format --

TEST(PersistFormat, WriterReaderRoundtrip) {
    ByteWriter w;
    w.u8(0xab);
    w.u32(0xdeadbeef);
    w.u64(0x0123456789abcdefULL);
    w.varint(0);
    w.varint(127);
    w.varint(128);
    w.varint(0xffffffffffffffffULL);
    w.blob("hello");
    w.blob("");

    ByteReader r(w.str());
    EXPECT_EQ(r.u8(), 0xab);
    EXPECT_EQ(r.u32(), 0xdeadbeefu);
    EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
    EXPECT_EQ(r.varint(), 0u);
    EXPECT_EQ(r.varint(), 127u);
    EXPECT_EQ(r.varint(), 128u);
    EXPECT_EQ(r.varint(), 0xffffffffffffffffULL);
    EXPECT_EQ(r.blob(), "hello");
    EXPECT_EQ(r.blob(), "");
    EXPECT_TRUE(r.at_end());
    EXPECT_NO_THROW(r.expect_end());
}

TEST(PersistFormat, ReaderThrowsOnUnderrun) {
    ByteReader r(std::string_view("\x01\x02", 2));
    EXPECT_THROW(r.u32(), LlsError);
}

TEST(PersistFormat, ReaderThrowsOnMalformedVarint) {
    // Ten continuation bytes: a varint can't span more than 64 bits.
    const std::string bad(10, '\xff');
    ByteReader r(bad);
    EXPECT_THROW(r.varint(), LlsError);
}

TEST(PersistFormat, ReaderThrowsOnBlobPastEnd) {
    ByteWriter w;
    w.varint(1000);  // blob claims 1000 bytes...
    w.raw("xy");     // ...but only two follow
    ByteReader r(w.str());
    EXPECT_THROW(r.blob(), LlsError);
}

TEST(PersistFormat, TrailingBytesAreAnError) {
    ByteReader r(std::string_view("abc"));
    (void)r.u8();
    EXPECT_THROW(r.expect_end(), LlsError);
}

// ---------------------------------------------------------------- codecs --

TEST(PersistCodec, PairKeyRoundtrip) {
    const std::string key = persist::encode_pair_key(0x1122334455667788ULL, 42);
    EXPECT_EQ(key.size(), 16u);
    const auto [a, b] = persist::decode_pair_key(key);
    EXPECT_EQ(a, 0x1122334455667788ULL);
    EXPECT_EQ(b, 42u);
    EXPECT_THROW(persist::decode_pair_key("short"), LlsError);
}

TEST(PersistCodec, AigRoundtripPreservesStructure) {
    // cleanup() products are exactly what outcome AIGs look like: PIs
    // first, ANDs freshly created in id order — the replay codec's domain.
    const Aig original = ripple_carry_adder(6).cleanup();
    ByteWriter w;
    persist::encode_aig(w, original);
    ByteReader r(w.str());
    const Aig decoded = persist::decode_aig(r);
    EXPECT_TRUE(r.at_end());
    EXPECT_EQ(decoded.hash(), original.hash());
    EXPECT_EQ(decoded.num_pis(), original.num_pis());
    EXPECT_EQ(decoded.num_pos(), original.num_pos());
    EXPECT_EQ(decoded.depth(), original.depth());
}

TEST(PersistCodec, AigDecodeRejectsCorruptBytes) {
    const Aig original = ripple_carry_adder(4).cleanup();
    ByteWriter w;
    persist::encode_aig(w, original);
    std::string bytes = w.str();
    bytes[bytes.size() / 2] ^= 0x40;  // flip a bit mid-structure
    ByteReader r(bytes);
    // Either the node replay diverges (hash/fanin check) or the reader
    // underruns — both must surface as the structured store error.
    EXPECT_THROW(persist::decode_aig(r), LlsError);
}

TEST(PersistCodec, ConeEvaluationRoundtripWithoutOutcome) {
    ConeEvaluation eval;
    eval.outcome = nullptr;  // "no improvement found" is a first-class memo
    eval.cost.decompositions = 17;
    eval.cost.sat_conflicts = 3141;
    const ConeEvaluation back =
        persist::decode_cone_evaluation(persist::encode_cone_evaluation(eval));
    EXPECT_EQ(back.outcome, nullptr);
    EXPECT_EQ(back.cost.decompositions, 17u);
    EXPECT_EQ(back.cost.sat_conflicts, 3141u);
    EXPECT_TRUE(back.faults.empty());
}

TEST(PersistCodec, ConeEvaluationRoundtripWithOutcome) {
    auto outcome = std::make_shared<DecomposeOutcome>();
    outcome->aig = carry_lookahead_adder(4).cleanup();
    outcome->old_depth = 12;
    outcome->new_depth = 7;
    outcome->num_windows = 5;
    outcome->reconstruction = "y = S1*y0 + !S1*y1";

    ConeEvaluation eval;
    eval.outcome = outcome;
    eval.cost.decompositions = 9;
    const ConeEvaluation back =
        persist::decode_cone_evaluation(persist::encode_cone_evaluation(eval));
    ASSERT_NE(back.outcome, nullptr);
    EXPECT_EQ(back.outcome->aig.hash(), outcome->aig.hash());
    EXPECT_EQ(back.outcome->old_depth, 12);
    EXPECT_EQ(back.outcome->new_depth, 7);
    EXPECT_EQ(back.outcome->num_windows, 5);
    EXPECT_EQ(back.outcome->reconstruction, outcome->reconstruction);
    EXPECT_EQ(back.cost.decompositions, 9u);
}

TEST(PersistCodec, FaultedEvaluationMustNotBePersisted) {
    ConeEvaluation eval;
    eval.faults.push_back(FaultRecord{});
    EXPECT_THROW(persist::encode_cone_evaluation(eval), ContractViolation);
}

TEST(PersistCodec, CecVerdictRoundtrip) {
    EXPECT_TRUE(persist::decode_cec_verdict(persist::encode_cec_verdict(true)));
    EXPECT_FALSE(persist::decode_cec_verdict(persist::encode_cec_verdict(false)));
    EXPECT_THROW(persist::decode_cec_verdict("\x07"), LlsError);
}

TEST(PersistCodec, NpnResultRoundtrip) {
    TruthTable tt(4);
    tt.set_bit(3, true);
    tt.set_bit(7, true);
    tt.set_bit(14, true);
    const NpnResult npn = npn_canonize(tt);
    const NpnResult back = persist::decode_npn_result(persist::encode_npn_result(npn));
    EXPECT_EQ(back.canonical, npn.canonical);
    EXPECT_EQ(back.perm, npn.perm);
    EXPECT_EQ(back.input_negation, npn.input_negation);
    EXPECT_EQ(back.output_negation, npn.output_negation);
}

TEST(PersistCodec, ExactStructureRoundtrip) {
    ExactStructure s;
    s.num_inputs = 3;
    s.gates.push_back({0, 1, true, false});
    s.gates.push_back({2, 3, false, true});
    s.output_signal = 4;
    s.output_complemented = true;
    const auto back = persist::decode_exact_structure(
        persist::encode_exact_structure(std::optional<ExactStructure>(s)));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->num_inputs, 3);
    ASSERT_EQ(back->gates.size(), 2u);
    EXPECT_EQ(back->gates[0].fanin0, 0);
    EXPECT_EQ(back->gates[0].fanin1, 1);
    EXPECT_TRUE(back->gates[0].complement0);
    EXPECT_FALSE(back->gates[0].complement1);
    EXPECT_EQ(back->gates[1].fanin0, 2);
    EXPECT_TRUE(back->gates[1].complement1);
    EXPECT_EQ(back->output_signal, 4);
    EXPECT_TRUE(back->output_complemented);
    EXPECT_FALSE(back->output_constant);

    // "no realization in budget" is itself a memo worth persisting.
    const auto none = persist::decode_exact_structure(
        persist::encode_exact_structure(std::nullopt));
    EXPECT_FALSE(none.has_value());
}

// ----------------------------------------------------------------- store --

TEST(PersistStore, PublishLoadRoundtripAcrossAllSections) {
    TempDir dir("roundtrip");
    {
        MemoStore store(dir.str(), StoreMode::ReadWrite);
        store.load();
        EXPECT_TRUE(store.report().cold_start);
        EXPECT_TRUE(store.record(Section::Decompose, persist::encode_pair_key(1, 2),
                                 [] { return std::string("dval"); }));
        EXPECT_TRUE(store.record(Section::Cec, persist::encode_pair_key(3, 4),
                                 [] { return persist::encode_cec_verdict(true); }));
        EXPECT_TRUE(store.record(Section::Npn, "4:abcd", [] { return std::string("nval"); }));
        EXPECT_TRUE(store.record(Section::ExactStruct, "4:abcd:c512",
                                 [] { return std::string("xval"); }));
        EXPECT_EQ(store.fresh_count(), 4u);
        EXPECT_TRUE(store.publish());
        EXPECT_EQ(store.fresh_count(), 0u);
        EXPECT_EQ(store.loaded_count(), 4u);
    }
    ASSERT_EQ(shard_files(dir.path).size(), 1u);

    MemoStore reader(dir.str(), StoreMode::Read);
    const LoadReport& report = reader.load();
    EXPECT_EQ(report.files_scanned, 1u);
    EXPECT_EQ(report.files_loaded, 1u);
    EXPECT_EQ(report.files_rejected, 0u);
    EXPECT_EQ(report.records_loaded, 4u);
    EXPECT_FALSE(report.cold_start);

    std::map<std::string, std::string> decompose;
    reader.for_each_loaded(Section::Decompose, [&](std::string_view k, std::string_view v) {
        decompose.emplace(k, v);
    });
    ASSERT_EQ(decompose.size(), 1u);
    EXPECT_EQ(decompose.begin()->first, persist::encode_pair_key(1, 2));
    EXPECT_EQ(decompose.begin()->second, "dval");

    bool cec_seen = false;
    reader.for_each_loaded(Section::Cec, [&](std::string_view k, std::string_view v) {
        cec_seen = true;
        EXPECT_EQ(k, persist::encode_pair_key(3, 4));
        EXPECT_TRUE(persist::decode_cec_verdict(v));
    });
    EXPECT_TRUE(cec_seen);
}

TEST(PersistStore, RecordDeduplicatesAndIsLazy) {
    TempDir dir("dedupe");
    MemoStore store(dir.str(), StoreMode::ReadWrite);
    store.load();
    int calls = 0;
    const auto value = [&calls] {
        ++calls;
        return std::string("v");
    };
    EXPECT_TRUE(store.record(Section::Npn, "k", value));
    EXPECT_FALSE(store.record(Section::Npn, "k", value));
    EXPECT_EQ(calls, 1);
    EXPECT_TRUE(store.publish());
    // Promoted-to-loaded keys stay known: still not re-staged.
    EXPECT_FALSE(store.record(Section::Npn, "k", value));
    EXPECT_EQ(calls, 1);
}

TEST(PersistStore, ReadOnlyModeNeverPublishes) {
    TempDir dir("readonly");
    MemoStore store(dir.str(), StoreMode::Read);
    store.load();
    store.record(Section::Npn, "k", [] { return std::string("v"); });
    EXPECT_FALSE(store.publish());
    EXPECT_TRUE(shard_files(dir.path).empty());
}

TEST(PersistStore, OffModeIsInert) {
    TempDir dir("off");
    MemoStore store(dir.str(), StoreMode::Off);
    const LoadReport& report = store.load();
    EXPECT_TRUE(report.cold_start);
    EXPECT_EQ(report.files_scanned, 0u);
    EXPECT_FALSE(store.publish());
}

/// Publishes one good shard holding a single NPN record and returns its
/// path.
fs::path publish_one_shard(const TempDir& dir) {
    MemoStore store(dir.str(), StoreMode::ReadWrite);
    store.load();
    store.record(Section::Npn, "key", [] { return std::string("value"); });
    EXPECT_TRUE(store.publish());
    const auto files = shard_files(dir.path);
    EXPECT_EQ(files.size(), 1u);
    return files.at(0);
}

TEST(PersistStore, TruncatedShardIsRejectedWholeNotFatal) {
    TempDir dir("truncate");
    const fs::path shard = publish_one_shard(dir);
    const std::string good = slurp(shard);
    dump(shard, good.substr(0, good.size() - 3));

    MemoStore reader(dir.str(), StoreMode::Read);
    const LoadReport& report = reader.load();
    EXPECT_EQ(report.files_rejected, 1u);
    EXPECT_EQ(report.records_loaded, 0u);
    EXPECT_TRUE(report.cold_start);
    ASSERT_EQ(report.notes.size(), 1u);
    EXPECT_NE(report.notes[0].find("persist"), std::string::npos);
}

TEST(PersistStore, BitFlippedShardIsRejectedWholeNotFatal) {
    TempDir dir("bitflip");
    const fs::path shard = publish_one_shard(dir);
    std::string bytes = slurp(shard);
    bytes[bytes.size() - 5] ^= 0x01;  // corrupt the record checksum/payload
    dump(shard, bytes);

    MemoStore reader(dir.str(), StoreMode::Read);
    const LoadReport& report = reader.load();
    EXPECT_EQ(report.files_rejected, 1u);
    EXPECT_TRUE(report.cold_start);
}

TEST(PersistStore, VersionMismatchIsRejectedAndNamed) {
    TempDir dir("version");
    const fs::path shard = publish_one_shard(dir);
    std::string bytes = slurp(shard);
    bytes[8] = 99;  // the u32 LE format-version field follows the magic
    dump(shard, bytes);

    MemoStore reader(dir.str(), StoreMode::Read);
    const LoadReport& report = reader.load();
    EXPECT_EQ(report.files_rejected, 1u);
    EXPECT_TRUE(report.cold_start);
    ASSERT_EQ(report.notes.size(), 1u);
    EXPECT_NE(report.notes[0].find("format version"), std::string::npos);
}

TEST(PersistStore, BadMagicIsRejected) {
    TempDir dir("magic");
    const fs::path shard = publish_one_shard(dir);
    std::string bytes = slurp(shard);
    bytes[0] = 'X';
    dump(shard, bytes);

    MemoStore reader(dir.str(), StoreMode::Read);
    EXPECT_EQ(reader.load().files_rejected, 1u);
}

TEST(PersistStore, UnknownSectionRecordIsSkippedNotFatal) {
    TempDir dir("unknown_section");
    // Hand-craft a shard: one record of an id from the future (9) and one
    // the loader understands.
    ByteWriter file;
    file.raw(std::string_view(persist::kMagic, sizeof(persist::kMagic)));
    file.u32(persist::kFormatVersion);
    file.u32(0);
    const auto append_record = [&file](std::uint8_t section, std::string_view key,
                                       std::string_view value) {
        ByteWriter payload;
        payload.u8(section);
        payload.blob(key);
        payload.blob(value);
        file.u32(static_cast<std::uint32_t>(payload.str().size()));
        file.raw(payload.str());
        file.u64(persist::fnv1a(payload.str()));
    };
    append_record(9, "future-key", "future-value");
    append_record(static_cast<std::uint8_t>(Section::Npn), "known", "v");
    dump(dir.path / ("hand" + std::string(persist::kShardExtension)), file.str());

    MemoStore reader(dir.str(), StoreMode::Read);
    const LoadReport& report = reader.load();
    EXPECT_EQ(report.files_rejected, 0u);
    EXPECT_EQ(report.files_loaded, 1u);
    EXPECT_EQ(report.records_loaded, 1u);  // only the known section
    EXPECT_FALSE(report.cold_start);
}

TEST(PersistStore, TempFilesAreIgnoredByTheLoader) {
    TempDir dir("tempfiles");
    publish_one_shard(dir);
    dump(dir.path / (".tmp-memo-junk" + std::string(persist::kShardExtension)), "garbage");
    dump(dir.path / "README.txt", "not a shard");

    MemoStore reader(dir.str(), StoreMode::Read);
    const LoadReport& report = reader.load();
    EXPECT_EQ(report.files_scanned, 1u);
    EXPECT_EQ(report.records_loaded, 1u);
}

TEST(PersistStore, CompactionMergesManyShardsIntoOne) {
    TempDir dir("compact");
    // Ten single-record shards from ten sequential "processes".
    for (int i = 0; i < 10; ++i) {
        MemoStore store(dir.str(), StoreMode::ReadWrite);
        store.load();
        store.record(Section::Npn, "key" + std::to_string(i),
                     [i] { return "value" + std::to_string(i); });
        ASSERT_TRUE(store.publish());
    }
    EXPECT_EQ(shard_files(dir.path).size(), 10u);

    MemoStore store(dir.str(), StoreMode::ReadWrite);
    store.load();
    EXPECT_EQ(store.report().records_loaded, 10u);
    store.compact(/*max_shards=*/8);
    EXPECT_EQ(shard_files(dir.path).size(), 1u);

    MemoStore reader(dir.str(), StoreMode::Read);
    EXPECT_EQ(reader.load().records_loaded, 10u);
}

TEST(PersistStore, ParseStoreModeGrammar) {
    EXPECT_EQ(persist::parse_store_mode("read"), StoreMode::Read);
    EXPECT_EQ(persist::parse_store_mode("write"), StoreMode::Write);
    EXPECT_EQ(persist::parse_store_mode("rw"), StoreMode::ReadWrite);
    EXPECT_EQ(persist::parse_store_mode("off"), StoreMode::Off);
    EXPECT_FALSE(persist::parse_store_mode("READ").has_value());
    EXPECT_FALSE(persist::parse_store_mode("").has_value());
}

// ------------------------------------------------------------ warm start --

std::string optimize_bytes(const Aig& input, const LookaheadParams& params,
                           WarmStart* warm) {
    EngineOptions engine;
    engine.jobs = 2;
    engine.warm_start = warm;
    const Aig out = optimize_timing_engine(input, params, engine);
    std::stringstream aiger;
    write_aiger(aiger, out);
    return aiger.str();
}

std::uint64_t warm_hits() { return Metrics::global().counter("persist.warm_hits").value(); }

TEST(WarmStartEndToEnd, WarmRunIsByteIdenticalAndMetered) {
    TempDir dir("e2e");
    const Aig input = ripple_carry_adder(8);
    LookaheadParams params;
    params.max_iterations = 4;

    clear_engine_caches();
    std::string cold;
    {
        WarmStart warm(dir.str(), StoreMode::ReadWrite);
        EXPECT_EQ(warm.imported_records(), 0u);
        cold = optimize_bytes(input, params, &warm);
        warm.finalize();
    }
    ASSERT_FALSE(shard_files(dir.path).empty());

    clear_engine_caches();  // simulate a fresh process
    const std::uint64_t hits_before = warm_hits();
    {
        WarmStart warm(dir.str(), StoreMode::Read);
        EXPECT_FALSE(warm.report().cold_start);
        EXPECT_GT(warm.imported_records(), 0u);
        const std::string rewarmed = optimize_bytes(input, params, &warm);
        EXPECT_EQ(rewarmed, cold);
    }
    EXPECT_GT(warm_hits(), hits_before);
}

TEST(WarmStartEndToEnd, BudgetedWarmRunMatchesBudgetedColdRun) {
    // The PR 2 invariant extended to disk: imported entries replay their
    // stored WorkCost, so the budget exhausts at the same point warm or
    // cold and the committed bytes agree.
    TempDir dir("budget");
    const Aig input = ripple_carry_adder(8);
    LookaheadParams params;
    params.max_iterations = 4;
    params.work_budget = 400;

    clear_engine_caches();
    std::string cold;
    {
        WarmStart warm(dir.str(), StoreMode::ReadWrite);
        cold = optimize_bytes(input, params, &warm);
        warm.finalize();
    }

    clear_engine_caches();
    {
        WarmStart warm(dir.str(), StoreMode::Read);
        EXPECT_GT(warm.imported_records(), 0u);
        EXPECT_EQ(optimize_bytes(input, params, &warm), cold);
    }
}

TEST(WarmStartEndToEnd, CorruptedStoreFallsBackToColdStart) {
    TempDir dir("corrupt_e2e");
    const Aig input = ripple_carry_adder(8);
    LookaheadParams params;
    params.max_iterations = 4;

    clear_engine_caches();
    std::string cold;
    {
        WarmStart warm(dir.str(), StoreMode::ReadWrite);
        cold = optimize_bytes(input, params, &warm);
        warm.finalize();
    }

    // Mangle every shard in the directory.
    for (const auto& shard : shard_files(dir.path)) {
        std::string bytes = slurp(shard);
        bytes = bytes.substr(0, bytes.size() / 2);
        if (!bytes.empty()) bytes[bytes.size() / 2] ^= 0x10;
        dump(shard, bytes);
    }

    clear_engine_caches();
    {
        WarmStart warm(dir.str(), StoreMode::Read);
        EXPECT_TRUE(warm.report().cold_start);
        EXPECT_GT(warm.report().files_rejected, 0u);
        EXPECT_EQ(warm.imported_records(), 0u);
        // Cold recompute, deterministic: same bytes, no crash.
        EXPECT_EQ(optimize_bytes(input, params, &warm), cold);
    }
}

TEST(WarmStartEndToEnd, WriteOnlyModeStaysColdButPublishes) {
    TempDir dir("writeonly");
    publish_one_shard(dir);
    const Aig input = ripple_carry_adder(6);
    LookaheadParams params;
    params.max_iterations = 3;

    clear_engine_caches();
    WarmStart warm(dir.str(), StoreMode::Write);
    EXPECT_EQ(warm.imported_records(), 0u);  // write mode never imports
    (void)optimize_bytes(input, params, &warm);
    warm.finalize();
    EXPECT_GE(shard_files(dir.path).size(), 1u);
}

}  // namespace
}  // namespace lls
