#include "exact/exact_synthesis.hpp"

#include <gtest/gtest.h>

#include "cec/cec.hpp"
#include "common/rng.hpp"
#include "exact/rewrite.hpp"
#include "io/generators.hpp"
#include "sim/simulation.hpp"

namespace lls {
namespace {

TruthTable random_tt(int num_vars, Rng& rng) {
    TruthTable tt(num_vars);
    for (std::uint64_t m = 0; m < tt.num_minterms(); ++m) tt.set_bit(m, rng.next_bool());
    return tt;
}

TEST(ExactSynthesis, TrivialCases) {
    const auto c0 = exact_synthesize(TruthTable::constant(3, false));
    ASSERT_TRUE(c0.has_value());
    EXPECT_TRUE(c0->output_constant);
    EXPECT_TRUE(c0->gates.empty());

    const auto passthrough = exact_synthesize(TruthTable::variable(3, 1));
    ASSERT_TRUE(passthrough.has_value());
    EXPECT_TRUE(passthrough->gates.empty());
    EXPECT_EQ(passthrough->output_signal, 1);

    const auto inverted = exact_synthesize(~TruthTable::variable(3, 2));
    ASSERT_TRUE(inverted.has_value());
    EXPECT_TRUE(inverted->gates.empty());
    EXPECT_TRUE(inverted->output_complemented);
}

TEST(ExactSynthesis, KnownMinimalGateCounts) {
    // The classic references: AND/OR = 1, XOR2 = 3, MUX = 3, MAJ3 = 4,
    // 3-input parity = 6 AND gates.
    const struct {
        const char* hex;
        int vars;
        std::size_t gates;
    } cases[] = {
        {"8", 2, 1}, {"e", 2, 1}, {"6", 2, 3}, {"ca", 3, 3}, {"e8", 3, 4}, {"96", 3, 6},
    };
    for (const auto& c : cases) {
        const auto r = exact_synthesize(TruthTable::from_hex(c.vars, c.hex));
        ASSERT_TRUE(r.has_value()) << c.hex;
        EXPECT_EQ(r->gates.size(), c.gates) << c.hex;
    }
}

TEST(ExactSynthesis, DeclinesWhenBoundTooSmall) {
    // 4-input parity needs 9 AND gates; within 7 it must decline, and xor2
    // must decline within 2.
    EXPECT_FALSE(exact_synthesize(TruthTable::from_hex(4, "6996"), 7, 30000).has_value());
    EXPECT_FALSE(exact_synthesize(TruthTable::from_hex(2, "6"), 2).has_value());
}

TEST(ExactSynthesis, StructuresEvaluateCorrectly) {
    Rng rng(71);
    for (int n = 2; n <= 4; ++n) {
        for (int trial = 0; trial < 6; ++trial) {
            const TruthTable f = random_tt(n, rng);
            const auto r = exact_synthesize(f, 7, 30000);
            if (!r) continue;  // some 4-var functions need > 7 gates
            for (std::uint32_t row = 0; row < (1u << n); ++row)
                EXPECT_EQ(r->evaluate(row), f.get_bit(row));
        }
    }
}

TEST(ExactSynthesis, BuildMatchesStructure) {
    Rng rng(72);
    const TruthTable f = random_tt(3, rng);
    const auto r = exact_synthesize(f);
    ASSERT_TRUE(r.has_value());

    Aig aig;
    std::vector<AigLit> pis;
    for (int i = 0; i < 3; ++i) pis.push_back(aig.add_pi());
    aig.add_po(build_exact_structure(aig, *r, pis), "y");
    EXPECT_LE(aig.count_reachable_ands(), r->gates.size());

    const SimPatterns patterns = SimPatterns::exhaustive(3);
    const auto sigs = simulate(aig, patterns);
    const Signature out = literal_signature(aig, aig.po(0), sigs, 8);
    for (std::uint64_t m = 0; m < 8; ++m)
        EXPECT_EQ(((out[0] >> m) & 1) != 0, f.get_bit(m));
}

TEST(Rewrite, PreservesFunctionOnAdders) {
    const Aig rca = ripple_carry_adder(6);
    const Aig out = rewrite(rca);
    EXPECT_TRUE(check_equivalence(rca, out).equivalent);
    EXPECT_LE(out.count_reachable_ands(), rca.count_reachable_ands());
}

TEST(Rewrite, CompactsRedundantStructures) {
    // A deliberately wasteful xor construction: rewrite must find the
    // 3-gate realization.
    Aig aig;
    const AigLit a = aig.add_pi();
    const AigLit b = aig.add_pi();
    // xor via two muxes and spare logic: (a ? !b : b)
    const AigLit t = aig.lmux(a, !b, b);
    const AigLit spare = aig.land(aig.lor(a, b), aig.lor(!a, !b));
    aig.add_po(aig.lor(aig.land(t, spare), aig.land(t, !spare)), "x");

    const Aig out = rewrite(aig);
    EXPECT_TRUE(check_equivalence(aig, out).equivalent);
    EXPECT_LE(out.count_reachable_ands(), 3u);
}

TEST(Rewrite, DelayModeNeverDeepens) {
    const Aig circuit = synthetic_control_circuit({"rw", 14, 5, 10, 8, 91});
    RewriteOptions opt;
    opt.delay_oriented = true;
    const Aig out = rewrite(circuit, opt);
    EXPECT_TRUE(check_equivalence(circuit, out).equivalent);
    EXPECT_LE(out.depth(), circuit.depth());
}

}  // namespace
}  // namespace lls
