#include "baseline/flows.hpp"

#include <gtest/gtest.h>

#include "baseline/restructure.hpp"
#include "cec/cec.hpp"
#include "io/generators.hpp"

namespace lls {
namespace {

TEST(Balance, LinearAndChainBecomesLogDepth) {
    Aig aig;
    std::vector<AigLit> pis;
    for (int i = 0; i < 16; ++i) pis.push_back(aig.add_pi());
    AigLit chain = pis[0];
    for (int i = 1; i < 16; ++i) chain = aig.land(chain, pis[i]);  // depth 15
    aig.add_po(chain, "y");
    EXPECT_EQ(aig.depth(), 15);

    const Aig balanced = balance(aig);
    EXPECT_EQ(balanced.depth(), 4);
    EXPECT_TRUE(check_equivalence(aig, balanced).equivalent);
}

TEST(Balance, RespectsArrivalSkew) {
    // (((a&b)&c)&d) where a&b is shared elsewhere: the shared node stays a
    // leaf and the tree re-associates around it.
    Aig aig;
    const AigLit a = aig.add_pi();
    const AigLit b = aig.add_pi();
    const AigLit c = aig.add_pi();
    const AigLit d = aig.add_pi();
    const AigLit ab = aig.land(a, b);
    aig.add_po(aig.land(aig.land(ab, c), d), "y");
    aig.add_po(aig.lxor(ab, c), "shared");
    const Aig balanced = balance(aig);
    EXPECT_TRUE(check_equivalence(aig, balanced).equivalent);
    EXPECT_LE(balanced.depth(), aig.depth());
}

TEST(Balance, HandlesComplementedEdgesAndConstants) {
    Aig aig;
    const AigLit a = aig.add_pi();
    const AigLit b = aig.add_pi();
    aig.add_po(aig.land(!a, !b), "nor");
    aig.add_po(AigLit::constant(true), "one");
    const Aig balanced = balance(aig);
    EXPECT_TRUE(check_equivalence(aig, balanced).equivalent);
}

TEST(Restructure, DelayModePreservesFunction) {
    const Aig rca = ripple_carry_adder(6);
    RestructureOptions opt;
    opt.delay_oriented = true;
    const Aig out = restructure(rca, opt);
    EXPECT_TRUE(check_equivalence(rca, out).equivalent);
    EXPECT_LE(out.depth(), rca.depth());
}

TEST(Restructure, AreaModePreservesFunction) {
    const Aig rca = ripple_carry_adder(6);
    RestructureOptions opt;
    opt.delay_oriented = false;
    const Aig out = restructure(rca, opt);
    EXPECT_TRUE(check_equivalence(rca, out).equivalent);
}

TEST(Restructure, CriticalOnlyModeTouchesOnlyCriticalPaths) {
    const Aig rca = ripple_carry_adder(6);
    RestructureOptions opt;
    opt.delay_oriented = true;
    opt.only_critical = true;
    const Aig out = restructure(rca, opt);
    EXPECT_TRUE(check_equivalence(rca, out).equivalent);
    EXPECT_LE(out.depth(), rca.depth());
}

class FlowTest : public ::testing::TestWithParam<int> {};

TEST_P(FlowTest, AllFlowsPreserveEquivalenceOnAdders) {
    const int bits = GetParam();
    const Aig rca = ripple_carry_adder(bits);
    Rng rng(77);
    const Aig sis = flow_sis(rca, rng);
    const Aig abc = flow_abc(rca, rng);
    const Aig dc = flow_dc(rca, rng);
    EXPECT_TRUE(check_equivalence(rca, sis).equivalent) << "sis " << bits;
    EXPECT_TRUE(check_equivalence(rca, abc).equivalent) << "abc " << bits;
    EXPECT_TRUE(check_equivalence(rca, dc).equivalent) << "dc " << bits;
    // The delay-oriented DC stand-in must not be worse than plain ABC-style
    // area optimization on depth.
    EXPECT_LE(dc.depth(), abc.depth());
}

INSTANTIATE_TEST_SUITE_P(AdderSizes, FlowTest, ::testing::Values(2, 4, 6));

TEST(Flows, PreserveEquivalenceOnControlLogic) {
    BenchmarkProfile profile{"t", 12, 4, 8, 8, 5};
    const Aig circuit = synthetic_control_circuit(profile);
    Rng rng(78);
    EXPECT_TRUE(check_equivalence(circuit, flow_sis(circuit, rng)).equivalent);
    EXPECT_TRUE(check_equivalence(circuit, flow_abc(circuit, rng)).equivalent);
    EXPECT_TRUE(check_equivalence(circuit, flow_dc(circuit, rng)).equivalent);
}

}  // namespace
}  // namespace lls
