#include "lookahead/optimize.hpp"

#include <gtest/gtest.h>

#include "aig/aig_build.hpp"
#include "cec/cec.hpp"
#include "io/generators.hpp"
#include "lookahead/decompose.hpp"
#include "lookahead/reduce.hpp"
#include "lookahead/simplify.hpp"
#include "network/network.hpp"
#include "spcf/spcf.hpp"

namespace lls {
namespace {

TruthTable and2() {
    TruthTable tt(2);
    tt.set_bit(3, true);
    return tt;
}

/// Verifies the central window invariant: wherever the agreement window is
/// 1, the simplified function equals the original.
void expect_window_invariant(const TruthTable& original, const SimplifyOutcome& outcome) {
    EXPECT_EQ(outcome.window_tt, ~(outcome.new_tt ^ original));
    EXPECT_TRUE((outcome.window_tt & (outcome.new_tt ^ original)).is_const0());
}

TEST(Simplify, CubeWeightCountsMatchingPatterns) {
    Network net;
    const auto a = net.add_pi();
    const auto b = net.add_pi();
    const auto n = net.add_node({a, b}, and2());
    net.add_po(n, false, "y");
    const SimPatterns patterns = SimPatterns::exhaustive(2);
    const auto sigs = net.simulate(patterns);

    Signature all(patterns.num_words(), 0xfULL);  // all 4 patterns critical
    const Cube c = Cube{}.with_literal(0, true).with_literal(1, true);  // x0 x1
    EXPECT_EQ(cube_weight(net, n, c, sigs, all), 1u);  // only minterm 11
    const Cube just_a = Cube{}.with_literal(0, true);
    EXPECT_EQ(cube_weight(net, n, just_a, sigs, all), 2u);  // minterms 01, 11
    Signature none(patterns.num_words(), 0);
    EXPECT_EQ(cube_weight(net, n, c, sigs, none), 0u);
}

TEST(Simplify, ReducesDeepNodeAndKeepsWindowInvariant) {
    // Node: f = x0*x1*x2*x3 + parity-ish clutter, with skewed fanin levels
    // so that the node's level can be reduced by dropping low-weight cubes.
    Network net;
    const auto a = net.add_pi();
    const auto b = net.add_pi();
    const auto c = net.add_pi();
    const auto d = net.add_pi();
    // A deep helper node to skew levels.
    const auto deep = net.add_node({a, b}, and2());
    // Target node over (deep, c, d): f = deep*c + c*d + !deep*!c*!d.
    TruthTable f(3);
    for (std::uint64_t m = 0; m < 8; ++m) {
        const bool vdeep = m & 1, vc = (m >> 1) & 1, vd = (m >> 2) & 1;
        f.set_bit(m, (vdeep && vc) || (vc && vd) || (!vdeep && !vc && !vd));
    }
    const auto n = net.add_node({deep, c, d}, f);
    net.add_po(n, false, "y");

    const SimPatterns patterns = SimPatterns::exhaustive(4);
    const auto sigs = net.simulate(patterns);
    const auto levels = net.compute_sop_levels();

    // All patterns critical: Simplify must still find a level reduction.
    Signature spcf(patterns.num_words(), 0xffffULL);
    const auto outcome = simplify_node(net, n, levels, sigs, spcf, 10);
    if (outcome) {
        EXPECT_LT(outcome->new_level, outcome->old_level);
        expect_window_invariant(f, *outcome);
    }
    // With a *selective* SPCF (only patterns where deep*c holds), the kept
    // cubes must cover that region, i.e. the window contains it.
    Signature selective(patterns.num_words(), 0);
    for (std::size_t p = 0; p < 16; ++p) {
        const bool va = patterns.pi_value(0, p), vb = patterns.pi_value(1, p),
                   vc2 = patterns.pi_value(2, p);
        if (va && vb && vc2) selective[0] |= 1ULL << p;
    }
    const auto sel = simplify_node(net, n, levels, sigs, selective, 10);
    ASSERT_TRUE(sel.has_value());
    EXPECT_LT(sel->new_level, sel->old_level);
    expect_window_invariant(f, *sel);
    // Every critical pattern must fall into the agreement window.
    for (std::size_t p = 0; p < 16; ++p) {
        if (!((selective[0] >> p) & 1)) continue;
        std::uint32_t minterm = 0;
        const auto& fan = net.fanins(n);
        for (std::size_t i = 0; i < fan.size(); ++i)
            if ((sigs[fan[i]][0] >> p) & 1) minterm |= 1u << i;
        EXPECT_TRUE(sel->window_tt.get_bit(minterm)) << "pattern " << p;
    }
}

TEST(Simplify, RefusesLevelZeroNodes) {
    Network net;
    const auto a = net.add_pi();
    const auto b = net.add_pi();
    // Single-literal node: level 0, nothing to simplify.
    const auto n = net.add_node({a, b}, TruthTable::variable(2, 0));
    net.add_po(n, false, "y");
    const SimPatterns patterns = SimPatterns::exhaustive(2);
    const auto sigs = net.simulate(patterns);
    const auto levels = net.compute_sop_levels();
    Signature spcf(patterns.num_words(), 0xf);
    EXPECT_FALSE(simplify_node(net, n, levels, sigs, spcf, 10).has_value());
}

TEST(Reduce, WindowsImplyAgreementAtRoot) {
    // The inductive correctness property behind the whole construction:
    // whenever every window holds, the reduced root equals the original.
    const Aig cone = extract_cone(ripple_carry_adder(3), 3);  // cout of 3-bit adder
    Network net = Network::from_aig(cone, 4, 6);
    const SimPatterns patterns = SimPatterns::exhaustive(cone.num_pis());
    auto sigs = net.simulate(patterns);
    const auto aig_sigs = simulate(cone, patterns);
    const Spcf spcf = compute_spcf(cone, patterns, aig_sigs);

    const std::uint32_t y = net.po(0).node;
    std::vector<std::uint32_t> mapping;
    const std::uint32_t y0 = net.duplicate_cone(y, &mapping);
    sigs.resize(net.num_nodes());
    for (std::uint32_t old_id = 0; old_id < mapping.size(); ++old_id)
        if (mapping[old_id] != old_id) sigs[mapping[old_id]] = sigs[old_id];

    const ReduceResult rr = reduce_cone(net, y0, sigs, patterns.num_patterns(), spcf.po_spcf[0]);
    if (rr.windows.empty()) GTEST_SKIP() << "no simplification found";
    EXPECT_LE(rr.new_level, rr.old_level);

    // Evaluate: window_j over fanins of marked node j (signatures are kept
    // up to date by reduce_cone). Where all windows hold, y0 == y.
    const auto final_sigs = net.simulate(patterns);
    Signature sigma(patterns.num_words(), ~0ULL);
    for (const auto& [node, wtt] : rr.windows) {
        for (std::size_t p = 0; p < patterns.num_patterns(); ++p) {
            std::uint32_t minterm = 0;
            const auto& fan = net.fanins(node);
            for (std::size_t i = 0; i < fan.size(); ++i)
                if ((final_sigs[fan[i]][p >> 6] >> (p & 63)) & 1) minterm |= 1u << i;
            if (!wtt.get_bit(minterm)) sigma[p >> 6] &= ~(1ULL << (p & 63));
        }
    }
    for (std::size_t p = 0; p < patterns.num_patterns(); ++p) {
        const bool in_window = (sigma[p >> 6] >> (p & 63)) & 1;
        if (!in_window) continue;
        const bool v_orig = (final_sigs[y][p >> 6] >> (p & 63)) & 1;
        const bool v_reduced = (final_sigs[y0][p >> 6] >> (p & 63)) & 1;
        EXPECT_EQ(v_orig, v_reduced) << "window invariant violated at pattern " << p;
    }
}

TEST(Decompose, CoutConeOfAdderImproves) {
    const Aig rca = ripple_carry_adder(4);
    const Aig cone = extract_cone(rca, rca.num_pos() - 1);  // cout
    LookaheadParams params;
    Rng rng(1);
    const auto outcome = decompose_output(cone, params, rng);
    ASSERT_TRUE(outcome.has_value());
    EXPECT_LT(outcome->new_depth, outcome->old_depth);
    EXPECT_GE(outcome->num_windows, 1);
    EXPECT_TRUE(check_equivalence(outcome->aig, cone).equivalent);
}

TEST(Decompose, RejectsShallowCones) {
    Aig aig;
    const AigLit a = aig.add_pi();
    const AigLit b = aig.add_pi();
    aig.add_po(aig.land(a, b), "y");
    LookaheadParams params;
    Rng rng(2);
    EXPECT_FALSE(decompose_output(aig, params, rng).has_value());
}

TEST(Optimize, RippleCarryAdderDepthDrops) {
    const Aig rca = ripple_carry_adder(8);
    LookaheadParams params;
    OptimizeStats stats;
    const Aig optimized = optimize_timing(rca, params, &stats);
    EXPECT_TRUE(stats.verified);
    EXPECT_LT(stats.final_depth, stats.initial_depth);
    EXPECT_TRUE(check_equivalence(rca, optimized).equivalent);
}

TEST(Optimize, PreservesInterface) {
    const Aig rca = ripple_carry_adder(4);
    const Aig optimized = optimize_timing(rca);
    EXPECT_EQ(optimized.num_pis(), rca.num_pis());
    EXPECT_EQ(optimized.num_pos(), rca.num_pos());
    for (std::size_t i = 0; i < rca.num_pis(); ++i)
        EXPECT_EQ(optimized.pi_name(i), rca.pi_name(i));
    for (std::size_t o = 0; o < rca.num_pos(); ++o)
        EXPECT_EQ(optimized.po_name(o), rca.po_name(o));
}

TEST(Optimize, IdempotentOnOptimalCircuits) {
    // A two-input AND cannot get shallower; the flow must terminate cleanly.
    Aig aig;
    const AigLit a = aig.add_pi();
    const AigLit b = aig.add_pi();
    aig.add_po(aig.land(a, b), "y");
    OptimizeStats stats;
    const Aig out = optimize_timing(aig, {}, &stats);
    EXPECT_EQ(stats.final_depth, 1);
    EXPECT_EQ(stats.iterations, 0);
    EXPECT_TRUE(check_equivalence(aig, out).equivalent);
}

TEST(Optimize, WideAdderUsesSampledSpcfAndStaysCorrect) {
    // 16-bit adder: 33 PIs forces sampled SPCF + SAT-verified secondary
    // simplification; the result must still verify by CEC.
    const Aig rca = ripple_carry_adder(16);
    LookaheadParams params;
    params.max_iterations = 4;
    OptimizeStats stats;
    const Aig optimized = optimize_timing(rca, params, &stats);
    EXPECT_TRUE(stats.verified);
    EXPECT_LT(optimized.depth(), rca.depth());
    EXPECT_TRUE(check_equivalence(rca, optimized, 2000000).equivalent);
}

// Ablation-style parameterized run: the flow must stay correct with each
// feature toggled off.
struct AblationParam {
    bool implication_rules;
    bool secondary;
    bool area_recovery;
};

class OptimizeAblation : public ::testing::TestWithParam<AblationParam> {};

TEST_P(OptimizeAblation, CorrectUnderFeatureToggles) {
    const auto p = GetParam();
    LookaheadParams params;
    params.use_implication_rules = p.implication_rules;
    params.secondary_simplification = p.secondary;
    params.area_recovery = p.area_recovery;
    params.max_iterations = 3;
    const Aig rca = ripple_carry_adder(6);
    OptimizeStats stats;
    const Aig out = optimize_timing(rca, params, &stats);
    EXPECT_TRUE(check_equivalence(rca, out).equivalent);
    EXPECT_LE(out.depth(), rca.depth());
}

INSTANTIATE_TEST_SUITE_P(Toggles, OptimizeAblation,
                         ::testing::Values(AblationParam{false, true, true},
                                           AblationParam{true, false, true},
                                           AblationParam{true, true, false},
                                           AblationParam{false, false, false}));

}  // namespace
}  // namespace lls
