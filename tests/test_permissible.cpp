#include "baseline/permissible.hpp"

#include <gtest/gtest.h>

#include "cec/cec.hpp"
#include "io/generators.hpp"
#include "sim/simulation.hpp"

namespace lls {
namespace {

TEST(Permissible, ExploitsObservabilityDontCares) {
    // g = a & b feeds only y = g | (a & c). When a = 0, g is unobservable
    // (y = 0 regardless); when a = 1, g = b. So g may be rewritten to just
    // `b`, which don't-care minimization must discover.
    Aig aig;
    const AigLit a = aig.add_pi("a");
    const AigLit b = aig.add_pi("b");
    const AigLit c = aig.add_pi("c");
    const AigLit g = aig.land(a, b);
    aig.add_po(aig.lor(g, aig.land(a, c)), "y");

    const Aig out = permissible_function_simplify(aig);
    EXPECT_TRUE(check_equivalence(aig, out).equivalent);
    EXPECT_LE(out.count_reachable_ands(), aig.count_reachable_ands());
}

TEST(Permissible, PreservesFunctionOnAdders) {
    for (const int bits : {3, 5}) {
        const Aig rca = ripple_carry_adder(bits);
        const Aig out = permissible_function_simplify(rca);
        EXPECT_TRUE(check_equivalence(rca, out).equivalent) << bits;
    }
}

TEST(Permissible, PreservesFunctionOnControlLogicSampled) {
    // > 14 PIs forces the SAT-proven (flip-miter) path.
    const Aig circuit = synthetic_control_circuit({"pf", 18, 6, 10, 10, 131});
    ASSERT_GT(circuit.num_pis(), static_cast<std::size_t>(SimPatterns::kMaxExhaustivePis));
    const Aig out = permissible_function_simplify(circuit);
    EXPECT_TRUE(check_equivalence(circuit, out, 2000000).equivalent);
}

TEST(Permissible, ShrinksRedundantControlLogic) {
    // Build a circuit with heavy unobservable logic: a wide mux whose select
    // legs share conditions, so many internal nodes carry don't-cares.
    Aig aig;
    const AigLit s = aig.add_pi("s");
    const AigLit a = aig.add_pi("a");
    const AigLit b = aig.add_pi("b");
    const AigLit d = aig.add_pi("d");
    // leg0 = a & (s | d) observable only when s = 1: the (s | d) factor is
    // don't-care-reducible to constant 1 under the mux.
    const AigLit leg0 = aig.land(a, aig.lor(s, d));
    const AigLit leg1 = aig.land(b, aig.lor(!s, d));
    aig.add_po(aig.lmux(s, leg0, leg1), "y");

    const Aig out = permissible_function_simplify(aig);
    EXPECT_TRUE(check_equivalence(aig, out).equivalent);
    EXPECT_LT(out.count_reachable_ands(), aig.count_reachable_ands());
}

}  // namespace
}  // namespace lls
