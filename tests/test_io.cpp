#include "io/blif.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "cec/cec.hpp"
#include "common/error.hpp"
#include "io/generators.hpp"
#include "sim/simulation.hpp"

namespace lls {
namespace {

TEST(Generators, AdderFamiliesAreEquivalent) {
    for (int bits : {2, 3, 5, 8}) {
        const Aig rca = ripple_carry_adder(bits);
        const Aig cla = carry_lookahead_adder(bits);
        const Aig csa = carry_select_adder(bits, 2);
        EXPECT_TRUE(check_equivalence(rca, cla).equivalent) << bits;
        EXPECT_TRUE(check_equivalence(rca, csa).equivalent) << bits;
    }
}

TEST(Generators, ClaIsShallowerThanRca) {
    for (int bits : {8, 16}) {
        EXPECT_LT(carry_lookahead_adder(bits).depth(), ripple_carry_adder(bits).depth()) << bits;
    }
}

TEST(Generators, AdderInterface) {
    const Aig rca = ripple_carry_adder(4);
    EXPECT_EQ(rca.num_pis(), 9u);   // a0..a3, b0..b3, cin
    EXPECT_EQ(rca.num_pos(), 5u);   // sum0..3, cout
    EXPECT_EQ(rca.pi_name(0), "a0");
    EXPECT_EQ(rca.pi_name(8), "cin");
    EXPECT_EQ(rca.po_name(4), "cout");
}

TEST(Generators, SyntheticControlIsDeterministicPerSeed) {
    BenchmarkProfile p{"t", 16, 6, 10, 10, 99};
    const Aig a = synthetic_control_circuit(p);
    const Aig b = synthetic_control_circuit(p);
    EXPECT_EQ(a.hash(), b.hash());
    p.seed = 100;
    const Aig c = synthetic_control_circuit(p);
    EXPECT_NE(a.hash(), c.hash());
}

TEST(Generators, SyntheticControlMatchesProfile) {
    for (const auto& profile : table2_profiles()) {
        const Aig circuit = synthetic_control_circuit(profile);
        EXPECT_EQ(circuit.num_pis(), static_cast<std::size_t>(profile.num_pis)) << profile.name;
        EXPECT_EQ(circuit.num_pos(), static_cast<std::size_t>(profile.num_pos)) << profile.name;
        EXPECT_GT(circuit.depth(), 4) << profile.name;
        if (profile.name == "C432") break;  // spot-check the first few profiles
    }
}

TEST(Blif, WriteReadRoundTrip) {
    const Aig rca = ripple_carry_adder(4);
    std::stringstream ss;
    write_blif(ss, rca, "rca4");
    const Aig back = read_blif(ss);
    EXPECT_EQ(back.num_pis(), rca.num_pis());
    EXPECT_EQ(back.num_pos(), rca.num_pos());
    EXPECT_TRUE(check_equivalence(rca, back).equivalent);
}

TEST(Blif, ParsesMultiCubeNames) {
    const std::string text = R"(
.model test
.inputs a b c
.outputs y z
# y = a*b + !c, z = !(a + b) via off-set cover
.names a b c y
11- 1
--0 1
.names a b z
1- 0
-1 0
.end
)";
    std::stringstream ss(text);
    const Aig aig = read_blif(ss);
    ASSERT_EQ(aig.num_pis(), 3u);
    ASSERT_EQ(aig.num_pos(), 2u);
    const SimPatterns patterns = SimPatterns::exhaustive(3);
    const auto sigs = simulate(aig, patterns);
    for (std::size_t p = 0; p < 8; ++p) {
        const bool a = patterns.pi_value(0, p), b = patterns.pi_value(1, p),
                   c = patterns.pi_value(2, p);
        const Signature y = literal_signature(aig, aig.po(0), sigs, 8);
        const Signature z = literal_signature(aig, aig.po(1), sigs, 8);
        EXPECT_EQ(((y[0] >> p) & 1) != 0, (a && b) || !c);
        EXPECT_EQ(((z[0] >> p) & 1) != 0, !(a || b));
    }
}

TEST(Blif, ParsesConstantsAndContinuations) {
    const std::string text =
        ".model t\n.inputs a\n.outputs one zero y\n"
        ".names one\n1\n"
        ".names zero\n"
        ".names a \\\none y\n11 1\n.end\n";
    std::stringstream ss(text);
    const Aig aig = read_blif(ss);
    const SimPatterns patterns = SimPatterns::exhaustive(1);
    const auto sigs = simulate(aig, patterns);
    EXPECT_EQ(literal_signature(aig, aig.po(0), sigs, 2)[0] & 3, 3u);  // constant 1
    EXPECT_EQ(literal_signature(aig, aig.po(1), sigs, 2)[0] & 3, 0u);  // constant 0
    EXPECT_EQ(literal_signature(aig, aig.po(2), sigs, 2)[0] & 3, 2u);  // y == a
}

TEST(Blif, RejectsSequentialModels) {
    std::stringstream ss(".model t\n.inputs a\n.outputs y\n.latch a y 0\n.end\n");
    EXPECT_THROW((void)read_blif(ss), std::runtime_error);
}

TEST(Blif, RejectsCycles) {
    std::stringstream ss(
        ".model t\n.inputs a\n.outputs y\n.names y a x\n11 1\n.names x a y\n11 1\n.end\n");
    EXPECT_THROW((void)read_blif(ss), std::runtime_error);
}

/// Runs read_blif on `text` and returns the diagnostic it raised.
LlsError blif_error(const std::string& text) {
    std::stringstream ss(text);
    try {
        (void)read_blif(ss);
    } catch (const LlsError& e) {
        return e;
    }
    ADD_FAILURE() << "expected read_blif to throw for:\n" << text;
    return LlsError(ErrorKind::InvariantViolation, "did not throw");
}

TEST(Blif, DiagnosesDuplicateNamesOutput) {
    const auto e = blif_error(
        ".model t\n.inputs a b\n.outputs y\n"
        ".names a b y\n11 1\n"
        ".names a b y\n00 1\n.end\n");
    EXPECT_EQ(e.kind(), ErrorKind::ParseError);
    EXPECT_NE(std::string(e.what()).find("line 6"), std::string::npos) << e.what();
    EXPECT_NE(std::string(e.what()).find("duplicate driver"), std::string::npos) << e.what();
    EXPECT_NE(std::string(e.what()).find("line 4"), std::string::npos) << e.what();
}

TEST(Blif, DiagnosesNamesRedefiningInput) {
    const auto e = blif_error(
        ".model t\n.inputs a b\n.outputs y\n"
        ".names b a\n1 1\n"
        ".names a y\n1 1\n.end\n");
    EXPECT_EQ(e.kind(), ErrorKind::ParseError);
    EXPECT_NE(std::string(e.what()).find("line 4"), std::string::npos) << e.what();
    EXPECT_NE(std::string(e.what()).find("'a'"), std::string::npos) << e.what();
}

TEST(Blif, DiagnosesUndeclaredSignalReference) {
    const auto e = blif_error(
        ".model t\n.inputs a\n.outputs y\n"
        ".names a ghost y\n11 1\n.end\n");
    EXPECT_EQ(e.kind(), ErrorKind::ParseError);
    EXPECT_NE(std::string(e.what()).find("line 4"), std::string::npos) << e.what();
    EXPECT_NE(std::string(e.what()).find("undeclared signal 'ghost'"), std::string::npos)
        << e.what();
}

TEST(Blif, DiagnosesUndrivenOutput) {
    const auto e = blif_error(".model t\n.inputs a\n.outputs a ghost\n.end\n");
    EXPECT_EQ(e.kind(), ErrorKind::ParseError);
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos) << e.what();
    EXPECT_NE(std::string(e.what()).find("'ghost' is never driven"), std::string::npos)
        << e.what();
}

TEST(Blif, DiagnosesMissingEnd) {
    const auto e = blif_error(".model t\n.inputs a\n.outputs y\n.names a y\n1 1\n");
    EXPECT_EQ(e.kind(), ErrorKind::ParseError);
    EXPECT_NE(std::string(e.what()).find("missing .end"), std::string::npos) << e.what();
}

TEST(Blif, CycleDiagnosticNamesTheSignal) {
    const auto e = blif_error(
        ".model t\n.inputs a\n.outputs y\n.names y a x\n11 1\n.names x a y\n11 1\n.end\n");
    EXPECT_EQ(e.kind(), ErrorKind::ParseError);
    EXPECT_NE(std::string(e.what()).find("cycle"), std::string::npos) << e.what();
}

TEST(Blif, FileReaderRaisesIoErrorOnMissingFile) {
    try {
        (void)read_blif_file("/nonexistent/lls_no_such_file.blif");
        FAIL() << "expected read_blif_file to throw";
    } catch (const LlsError& e) {
        EXPECT_EQ(e.kind(), ErrorKind::IoError);
    }
}

TEST(Aiger, WriteReadRoundTrip) {
    for (int bits : {2, 5}) {
        const Aig rca = ripple_carry_adder(bits);
        std::stringstream ss;
        write_aiger(ss, rca);
        const Aig back = read_aiger(ss);
        EXPECT_EQ(back.num_pis(), rca.num_pis());
        EXPECT_EQ(back.num_pos(), rca.num_pos());
        EXPECT_TRUE(check_equivalence(rca, back).equivalent) << bits;
        EXPECT_EQ(back.po_name(back.num_pos() - 1), "cout");  // symbol table parsed
    }
}

TEST(Aiger, ReadRejectsLatchesAndBinaryFormat) {
    std::stringstream latched("aag 3 1 1 1 1\n2\n4 2 1\n6\n6 4 2\n");
    EXPECT_THROW((void)read_aiger(latched), std::runtime_error);
    std::stringstream binary("aig 3 1 0 1 2\n");
    EXPECT_THROW((void)read_aiger(binary), std::runtime_error);
}

TEST(Aiger, ReadHandlesConstantsAndComplements) {
    // Single AND of complemented inputs, output complemented; plus const outputs.
    std::stringstream ss("aag 3 2 0 3 1\n2\n4\n7\n0\n1\n6 3 5\no0 nand\n");
    const Aig aig = read_aiger(ss);
    ASSERT_EQ(aig.num_pis(), 2u);
    ASSERT_EQ(aig.num_pos(), 3u);
    EXPECT_EQ(aig.po_name(0), "nand");
    const SimPatterns patterns = SimPatterns::exhaustive(2);
    const auto sigs = simulate(aig, patterns);
    const Signature y = literal_signature(aig, aig.po(0), sigs, 4);
    for (std::uint64_t mt = 0; mt < 4; ++mt) {
        const bool va = mt & 1, vb = (mt >> 1) & 1;
        EXPECT_EQ(((y[0] >> mt) & 1) != 0, !(!va && !vb));
    }
    EXPECT_EQ(literal_signature(aig, aig.po(1), sigs, 4)[0] & 0xf, 0x0u);
    EXPECT_EQ(literal_signature(aig, aig.po(2), sigs, 4)[0] & 0xf, 0xfu);
}

TEST(AigerBinary, WriteReadRoundTrip) {
    for (int bits : {3, 6}) {
        const Aig rca = ripple_carry_adder(bits);
        std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
        write_aiger_binary(ss, rca);
        const Aig back = read_aiger(ss);
        EXPECT_EQ(back.num_pis(), rca.num_pis());
        EXPECT_EQ(back.num_pos(), rca.num_pos());
        EXPECT_TRUE(check_equivalence(rca, back).equivalent) << bits;
        EXPECT_EQ(back.po_name(back.num_pos() - 1), "cout");
    }
}

TEST(AigerBinary, RoundTripPreservesDegenerates) {
    Aig aig;
    const AigLit a = aig.add_pi("a");
    aig.add_po(AigLit::constant(true), "one");
    aig.add_po(!a, "na");
    std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
    write_aiger_binary(ss, aig);
    const Aig back = read_aiger(ss);
    EXPECT_TRUE(check_equivalence(aig, back).equivalent);
}

TEST(AigerBinary, DeltasAreCompact) {
    // The binary body must be smaller than the ascii body for real circuits.
    const Aig rca = ripple_carry_adder(16);
    std::stringstream ascii, binary;
    write_aiger(ascii, rca);
    write_aiger_binary(binary, rca);
    EXPECT_LT(binary.str().size(), ascii.str().size());
}

TEST(Aiger, HeaderAndCounts) {
    const Aig rca = ripple_carry_adder(2);
    std::stringstream ss;
    write_aiger(ss, rca);
    std::string word;
    ss >> word;
    EXPECT_EQ(word, "aag");
    std::size_t m, i, l, o, a;
    ss >> m >> i >> l >> o >> a;
    EXPECT_EQ(i, rca.num_pis());
    EXPECT_EQ(l, 0u);
    EXPECT_EQ(o, rca.num_pos());
    EXPECT_EQ(a, rca.num_ands());
    EXPECT_EQ(m, rca.num_nodes() - 1);
}

TEST(FileWriters, ThrowOnUnwritableTarget) {
    // A stream error after open must surface as an exception, never as a
    // silently truncated file that parses back as a smaller circuit.
    const Aig rca = ripple_carry_adder(8);
    // Writing to a directory path fails at open; the "cannot open" branch.
    EXPECT_THROW(write_blif_file("/tmp", rca, "t"), std::runtime_error);
    EXPECT_THROW(write_aiger_file("/tmp", rca), std::runtime_error);
    EXPECT_THROW(write_aiger_binary_file("/tmp", rca), std::runtime_error);
    // /dev/full opens fine but every flush fails with ENOSPC; the
    // truncated-output branch. Only present on Linux — skip elsewhere.
    std::ifstream dev_full("/dev/full");
    if (!dev_full.good()) GTEST_SKIP() << "/dev/full not available";
    EXPECT_THROW(write_blif_file("/dev/full", rca, "t"), std::runtime_error);
    EXPECT_THROW(write_aiger_file("/dev/full", rca), std::runtime_error);
    EXPECT_THROW(write_aiger_binary_file("/dev/full", rca), std::runtime_error);
}

TEST(FileWriters, SuccessfulWriteRoundTrips) {
    const Aig rca = ripple_carry_adder(6);
    const std::string path = ::testing::TempDir() + "lls_test_io_rt.blif";
    write_blif_file(path, rca, "rt");
    const Aig back = read_blif_file(path);
    EXPECT_TRUE(check_equivalence(rca, back).equivalent);
    std::remove(path.c_str());
}

}  // namespace
}  // namespace lls
