#include "network/network.hpp"

#include <gtest/gtest.h>

#include "cec/cec.hpp"
#include "io/generators.hpp"

namespace lls {
namespace {

/// f = (x0 & x1) as a 2-var table.
TruthTable and2() {
    TruthTable tt(2);
    tt.set_bit(3, true);
    return tt;
}

TruthTable xor2() {
    TruthTable tt(2);
    tt.set_bit(1, true);
    tt.set_bit(2, true);
    return tt;
}

TEST(Network, BasicConstruction) {
    Network net;
    const auto a = net.add_pi("a");
    const auto b = net.add_pi("b");
    const auto n1 = net.add_node({a, b}, and2());
    net.add_po(n1, false, "y");
    EXPECT_EQ(net.num_pis(), 2u);
    EXPECT_EQ(net.num_pos(), 1u);
    EXPECT_TRUE(net.is_internal(n1));
    EXPECT_EQ(net.fanins(n1).size(), 2u);
    EXPECT_EQ(net.pi_index(a), 0u);
}

TEST(Network, SopLevelMetricBalancedTrees) {
    Network net;
    std::vector<std::uint32_t> pis;
    for (int i = 0; i < 8; ++i) pis.push_back(net.add_pi());
    // 8-input AND as one node: optimal AND tree has level 3.
    TruthTable tt = TruthTable::constant(8, true);
    for (int i = 0; i < 8; ++i) tt &= TruthTable::variable(8, i);
    const auto n = net.add_node(pis, tt);
    net.add_po(n, false, "y");
    const auto levels = net.compute_sop_levels();
    EXPECT_EQ(levels[n], 3);
    EXPECT_EQ(net.sop_depth(), 3);
}

TEST(Network, SopLevelUsesCheaperPhase) {
    // f = x0 + x1 + ... + x7 : on-set SOP has 8 cubes (level 3 OR tree) and
    // the off-set is a single 8-literal cube (level 3) -- both give 3; but
    // a function whose off-set is a single literal must get level 0+.
    Network net;
    std::vector<std::uint32_t> pis;
    for (int i = 0; i < 4; ++i) pis.push_back(net.add_pi());
    // f = !(x0) -> off-set SOP = {x0}: single-literal cube, level = fanin level.
    TruthTable tt = ~TruthTable::variable(4, 0);
    const auto n = net.add_node(pis, tt);
    net.add_po(n, false, "y");
    const auto levels = net.compute_sop_levels();
    EXPECT_EQ(levels[n], 0);  // inversion is free in the level metric
}

TEST(Network, SopLevelRespectsArrivalSkew) {
    // Node g = AND(a, b); node h = AND(g, c, d) -- the balanced combine must
    // hide the late g behind the early c*d pairing: level(h) = 2, not 3.
    Network net;
    const auto a = net.add_pi();
    const auto b = net.add_pi();
    const auto c = net.add_pi();
    const auto d = net.add_pi();
    const auto g = net.add_node({a, b}, and2());
    TruthTable and3 = TruthTable::constant(3, true);
    for (int i = 0; i < 3; ++i) and3 &= TruthTable::variable(3, i);
    const auto h = net.add_node({g, c, d}, and3);
    net.add_po(h, false, "y");
    const auto levels = net.compute_sop_levels();
    EXPECT_EQ(levels[g], 1);
    EXPECT_EQ(levels[h], 2);
}

TEST(Network, CriticalFanins) {
    Network net;
    const auto a = net.add_pi();
    const auto b = net.add_pi();
    const auto c = net.add_pi();
    const auto deep = net.add_node({a, b}, xor2());  // level 1 (xor is 2-cube SOP)
    // h = deep & c: the deep fanin is critical, c is not.
    const auto h = net.add_node({deep, c}, and2());
    net.add_po(h, false, "y");
    const auto levels = net.compute_sop_levels();
    const auto crit = net.critical_fanins(h, levels);
    ASSERT_EQ(crit.size(), 1u);
    EXPECT_EQ(crit[0], deep);
}

TEST(Network, FromAigToAigRoundTrip) {
    for (int bits : {2, 3, 4}) {
        const Aig adder = ripple_carry_adder(bits);
        const Network net = Network::from_aig(adder, 4, 6);
        EXPECT_EQ(net.num_pis(), adder.num_pis());
        EXPECT_EQ(net.num_pos(), adder.num_pos());
        const Aig back = net.to_aig();
        EXPECT_TRUE(check_equivalence(adder, back).equivalent) << bits << " bits";
    }
}

TEST(Network, ClusteringReducesNodeCount) {
    const Aig adder = ripple_carry_adder(8);
    const Network net = Network::from_aig(adder, 5, 8);
    // Clusters swallow multiple AND nodes each.
    std::size_t internal = 0;
    for (std::uint32_t id = 0; id < net.num_nodes(); ++id)
        if (net.is_internal(id)) ++internal;
    EXPECT_LT(internal, adder.num_ands());
}

TEST(Network, AreaRebuildIsEquivalentAndSmaller) {
    const Aig adder = ripple_carry_adder(5);
    const Network net = Network::from_aig(adder, 5, 8);
    const Aig timed = net.to_aig();
    const Aig area = net.to_aig_area();
    EXPECT_TRUE(check_equivalence(adder, timed).equivalent);
    EXPECT_TRUE(check_equivalence(adder, area).equivalent);
    // The factored rebuild never uses more nodes than the timed one.
    EXPECT_LE(area.count_reachable_ands(), timed.count_reachable_ands());
    EXPECT_LE(timed.depth(), area.depth());
}

TEST(Network, SimulateMatchesAig) {
    const Aig adder = ripple_carry_adder(4);
    const Network net = Network::from_aig(adder, 4, 6);
    const SimPatterns patterns = SimPatterns::exhaustive(adder.num_pis());
    const auto aig_sigs = simulate(adder, patterns);
    const auto net_sigs = net.simulate(patterns);
    for (std::size_t o = 0; o < adder.num_pos(); ++o) {
        Signature aig_out = literal_signature(adder, adder.po(o), aig_sigs, patterns.num_patterns());
        Signature net_out = net_sigs[net.po(o).node];
        if (net.po(o).complemented)
            for (std::size_t w = 0; w < net_out.size(); ++w) net_out[w] = ~net_out[w];
        // Mask tail bits before comparing.
        const std::uint64_t tail =
            patterns.num_patterns() % 64 ? (1ULL << (patterns.num_patterns() % 64)) - 1 : ~0ULL;
        aig_out.back() &= tail;
        net_out.back() &= tail;
        EXPECT_EQ(aig_out, net_out) << "po " << o;
    }
}

TEST(Network, SetFunctionInvalidatesSops) {
    Network net;
    const auto a = net.add_pi();
    const auto b = net.add_pi();
    const auto n = net.add_node({a, b}, and2());
    net.add_po(n, false, "y");
    EXPECT_EQ(net.on_sop(n).num_cubes(), 1u);
    net.set_function(n, xor2());
    EXPECT_EQ(net.on_sop(n).num_cubes(), 2u);
}

TEST(Network, DuplicateConeIsIndependent) {
    Network net;
    const auto a = net.add_pi();
    const auto b = net.add_pi();
    const auto g = net.add_node({a, b}, and2());
    const auto h = net.add_node({g, a}, xor2());
    net.add_po(h, false, "y");

    std::vector<std::uint32_t> mapping;
    const auto h2 = net.duplicate_cone(h, &mapping);
    EXPECT_NE(h2, h);
    EXPECT_EQ(mapping[h], h2);
    EXPECT_NE(mapping[g], g);
    EXPECT_EQ(mapping[a], a);  // PIs are shared

    // Modifying the copy leaves the original untouched.
    net.set_function(mapping[g], xor2());
    EXPECT_EQ(net.function(g), and2());
    EXPECT_EQ(net.function(mapping[g]), xor2());
}

TEST(Network, EvalNodeSignatureIncremental) {
    Network net;
    const auto a = net.add_pi();
    const auto b = net.add_pi();
    const auto n = net.add_node({a, b}, xor2());
    net.add_po(n, false, "y");
    const SimPatterns patterns = SimPatterns::exhaustive(2);
    auto sigs = net.simulate(patterns);
    const Signature fresh = net.eval_node_signature(n, sigs, patterns.num_patterns());
    EXPECT_EQ(fresh, sigs[n]);
    EXPECT_EQ(fresh[0] & 0xf, 0x6u);  // xor pattern over minterms 0..3
}

TEST(Network, ToAigWithMapExposesInternalSignals) {
    Network net;
    const auto a = net.add_pi();
    const auto b = net.add_pi();
    const auto g = net.add_node({a, b}, and2());
    net.add_po(g, true, "y");  // complemented PO
    std::vector<AigLit> map;
    const Aig aig = net.to_aig_with_map(&map);
    EXPECT_EQ(aig.num_pos(), 1u);
    // PO must be the complement of node g's literal.
    EXPECT_EQ(aig.po(0), !map[g]);
}

}  // namespace
}  // namespace lls
