// Degenerate-circuit edge cases: constant outputs, pass-through outputs,
// unused inputs, empty logic. Every public entry point must handle these
// without violating interfaces or functions.

#include <gtest/gtest.h>

#include <sstream>

#include "baseline/flows.hpp"
#include "baseline/restructure.hpp"
#include "cec/cec.hpp"
#include "io/blif.hpp"
#include "io/generators.hpp"
#include "lookahead/decompose.hpp"
#include "lookahead/optimize.hpp"
#include "mapping/mapper.hpp"
#include "network/network.hpp"

namespace lls {
namespace {

/// A deliberately degenerate circuit: constant-0 PO, constant-1 PO,
/// pass-through PO, inverted pass-through PO, one real gate, unused PI.
Aig degenerate_circuit() {
    Aig aig;
    const AigLit a = aig.add_pi("a");
    const AigLit b = aig.add_pi("b");
    (void)aig.add_pi("unused");
    aig.add_po(AigLit::constant(false), "zero");
    aig.add_po(AigLit::constant(true), "one");
    aig.add_po(a, "pass");
    aig.add_po(!a, "npass");
    aig.add_po(aig.land(a, !b), "gate");
    return aig;
}

TEST(EdgeCases, CleanupKeepsDegenerateInterface) {
    const Aig aig = degenerate_circuit();
    const Aig clean = aig.cleanup();
    EXPECT_EQ(clean.num_pis(), 3u);
    EXPECT_EQ(clean.num_pos(), 5u);
    EXPECT_TRUE(check_equivalence(aig, clean).equivalent);
}

TEST(EdgeCases, OptimizeTimingHandlesDegenerates) {
    const Aig aig = degenerate_circuit();
    OptimizeStats stats;
    const Aig out = optimize_timing(aig, {}, &stats);
    EXPECT_TRUE(check_equivalence(aig, out).equivalent);
    EXPECT_EQ(out.num_pos(), aig.num_pos());
    EXPECT_LE(out.depth(), aig.depth());
}

TEST(EdgeCases, DecomposeRejectsConstantAndPassThroughCones) {
    LookaheadParams params;
    Rng rng(1);
    Aig pass;
    const AigLit a = pass.add_pi("a");
    pass.add_po(a, "y");
    EXPECT_FALSE(decompose_output(pass, params, rng).has_value());

    Aig constant;
    (void)constant.add_pi("a");
    constant.add_po(AigLit::constant(true), "y");
    EXPECT_FALSE(decompose_output(constant, params, rng).has_value());
}

TEST(EdgeCases, BaselineFlowsHandleDegenerates) {
    const Aig aig = degenerate_circuit();
    Rng rng(2);
    EXPECT_TRUE(check_equivalence(aig, flow_sis(aig, rng)).equivalent);
    EXPECT_TRUE(check_equivalence(aig, flow_abc(aig, rng)).equivalent);
    EXPECT_TRUE(check_equivalence(aig, flow_dc(aig, rng)).equivalent);
    EXPECT_TRUE(check_equivalence(aig, balance(aig)).equivalent);
}

TEST(EdgeCases, MapperHandlesDegenerates) {
    const CellLibrary lib = CellLibrary::generic_70nm();
    const MappedCircuit mapped = map_circuit(degenerate_circuit(), lib);
    // One real gate plus the inverter for "npass".
    EXPECT_GE(mapped.num_gates, 2u);
    EXPECT_GE(mapped.delay_ps, lib.inverter_delay_ps());
}

TEST(EdgeCases, NetworkRoundTripOnDegenerates) {
    const Aig aig = degenerate_circuit();
    const Network net = Network::from_aig(aig, 4, 4);
    EXPECT_TRUE(check_equivalence(aig, net.to_aig()).equivalent);
}

TEST(EdgeCases, BlifRoundTripOnDegenerates) {
    const Aig aig = degenerate_circuit();
    std::stringstream ss;
    write_blif(ss, aig, "degenerate");
    const Aig back = read_blif(ss);
    EXPECT_TRUE(check_equivalence(aig, back).equivalent);
}

TEST(EdgeCases, SatSweepOnDegenerates) {
    const Aig aig = degenerate_circuit();
    Rng rng(3);
    EXPECT_TRUE(check_equivalence(aig, sat_sweep(aig, rng)).equivalent);
}

TEST(EdgeCases, SingleInputCircuits) {
    Aig aig;
    const AigLit a = aig.add_pi("a");
    aig.add_po(!a, "na");
    const Aig out = optimize_timing(aig);
    EXPECT_TRUE(check_equivalence(aig, out).equivalent);
    EXPECT_EQ(out.depth(), 0);
}

TEST(EdgeCases, ZeroPoCircuit) {
    Aig aig;
    (void)aig.add_pi("a");
    EXPECT_EQ(aig.depth(), 0);
    EXPECT_EQ(aig.count_reachable_ands(), 0u);
    const Aig clean = aig.cleanup();
    EXPECT_EQ(clean.num_pis(), 1u);
}

TEST(EdgeCases, TimeBudgetZeroDecompositions) {
    // An exhausted budget must still return a valid, verified circuit.
    const Aig aig = ripple_carry_adder(6);
    LookaheadParams params;
    params.time_budget_seconds = 1e-9;
    OptimizeStats stats;
    const Aig out = optimize_timing(aig, params, &stats);
    EXPECT_TRUE(check_equivalence(aig, out).equivalent);
    EXPECT_LE(out.depth(), aig.depth());
}

}  // namespace
}  // namespace lls
