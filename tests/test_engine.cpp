#include "engine/engine.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <sstream>

#include "cec/cec.hpp"
#include "common/error.hpp"
#include "common/fault.hpp"
#include "common/memgov.hpp"
#include "engine/checkpoint.hpp"
#include "engine/metrics.hpp"
#include "io/blif.hpp"
#include "io/generators.hpp"

namespace lls {
namespace {

/// QoR + structure fingerprint of an optimized circuit.
struct Result {
    int depth;
    std::size_t ands;
    std::uint64_t hash;
};

Result run(const Aig& input, int jobs, bool use_cache = true) {
    LookaheadParams params;
    params.max_iterations = 6;
    EngineOptions engine;
    engine.jobs = jobs;
    engine.use_result_cache = use_cache;
    OptimizeStats stats;
    const Aig out = optimize_timing_engine(input, params, engine, &stats);
    EXPECT_TRUE(stats.verified);
    EXPECT_TRUE(check_equivalence(input, out, 2000000).equivalent);
    return {out.depth(), out.count_reachable_ands(), out.hash()};
}

TEST(Engine, JobsInvariantOnGeneratedAdders) {
    for (const int bits : {6, 10}) {
        const Aig rca = ripple_carry_adder(bits);
        const Result serial = run(rca, 1);
        const Result parallel4 = run(rca, 4);
        EXPECT_EQ(serial.depth, parallel4.depth) << bits;
        EXPECT_EQ(serial.ands, parallel4.ands) << bits;
        // Stronger than QoR equality: the committed structure is identical.
        EXPECT_EQ(serial.hash, parallel4.hash) << bits;
        EXPECT_LT(serial.depth, rca.depth()) << bits;
    }
}

TEST(Engine, JobsInvariantOnBlifRoundtrip) {
    BenchmarkProfile profile;
    profile.name = "engine_case";
    profile.num_pis = 12;
    profile.num_pos = 4;
    profile.chain_length = 9;
    profile.num_shared = 3;
    profile.seed = 11;
    const Aig circuit = synthetic_control_circuit(profile);

    // Through the BLIF reader, as a real input file would arrive.
    std::stringstream blif;
    write_blif(blif, circuit, "engine_case");
    const Aig parsed = read_blif(blif);

    const Result serial = run(parsed, 1);
    const Result parallel3 = run(parsed, 3);
    EXPECT_EQ(serial.depth, parallel3.depth);
    EXPECT_EQ(serial.ands, parallel3.ands);
    EXPECT_EQ(serial.hash, parallel3.hash);
}

TEST(Engine, ResultCacheDoesNotChangeQoR) {
    const Aig rca = ripple_carry_adder(7);
    const Result cached = run(rca, 2, /*use_cache=*/true);
    const Result uncached = run(rca, 2, /*use_cache=*/false);
    EXPECT_EQ(cached.depth, uncached.depth);
    EXPECT_EQ(cached.ands, uncached.ands);
    EXPECT_EQ(cached.hash, uncached.hash);
}

std::string run_aiger(const Aig& input, int jobs, bool shared_bdd) {
    LookaheadParams params;
    params.max_iterations = 6;
    EngineOptions engine;
    engine.jobs = jobs;
    engine.shared_bdd = shared_bdd;
    OptimizeStats stats;
    const Aig out = optimize_timing_engine(input, params, engine, &stats);
    EXPECT_TRUE(stats.verified);
    std::stringstream aag;
    write_aiger(aag, out);
    return aag.str();
}

TEST(Engine, SharedBddMatchesPrivateByteForByte) {
    // The shared manager is an execution knob: the serialized output must be
    // identical to the private-manager baseline for every jobs value, on
    // both sides of the switch.
    const Aig rca = ripple_carry_adder(8);
    const std::string baseline = run_aiger(rca, 1, /*shared_bdd=*/false);
    for (const int jobs : {1, 2, 4})
        EXPECT_EQ(run_aiger(rca, jobs, /*shared_bdd=*/true), baseline) << "jobs=" << jobs;
    EXPECT_EQ(run_aiger(rca, 4, /*shared_bdd=*/false), baseline);
}

TEST(Engine, CacheHitCountersIncreaseOnRepeatedRuns) {
    const Aig rca = ripple_carry_adder(9);
    run(rca, 1);
    const CacheStatsSnapshot after_first = decomposition_cache_stats();
    run(rca, 1);
    const CacheStatsSnapshot after_second = decomposition_cache_stats();
    // The second run re-derives the same cones, so it must hit the memo.
    EXPECT_GT(after_second.hits, after_first.hits);
    EXPECT_GT(after_second.entries, 0u);
}

TEST(Engine, BatchMatchesIndividualRuns) {
    std::vector<BatchItem> items;
    items.push_back({"rca6", ripple_carry_adder(6)});
    items.push_back({"rca8", ripple_carry_adder(8)});

    LookaheadParams params;
    params.max_iterations = 6;
    EngineOptions engine;
    engine.jobs = 2;
    const auto outcomes = optimize_timing_batch(items, params, engine);
    ASSERT_EQ(outcomes.size(), 2u);
    for (std::size_t i = 0; i < items.size(); ++i) {
        EXPECT_EQ(outcomes[i].name, items[i].name);
        EXPECT_TRUE(check_equivalence(items[i].input, outcomes[i].output, 2000000).equivalent);
        const Result individual = run(items[i].input, 1);
        EXPECT_EQ(outcomes[i].output.depth(), individual.depth) << items[i].name;
        EXPECT_EQ(outcomes[i].output.count_reachable_ands(), individual.ands) << items[i].name;
    }
}

/// A deliberately skewed batch: one circuit with many equally-critical
/// cones (wide per-round fan-out, the stealing target) plus several small
/// adders that finish quickly and free their workers.
std::vector<BatchItem> skewed_batch() {
    BenchmarkProfile profile;
    profile.name = "steal_big";
    profile.num_pis = 14;
    profile.num_pos = 8;
    profile.chain_length = 9;
    profile.num_shared = 3;
    profile.seed = 23;
    std::vector<BatchItem> items;
    items.push_back({"big", synthetic_control_circuit(profile)});
    items.push_back({"small0", ripple_carry_adder(4)});
    items.push_back({"small1", ripple_carry_adder(5)});
    items.push_back({"small2", ripple_carry_adder(6)});
    return items;
}

std::vector<std::string> batch_aigers(const std::vector<BatchItem>& items, int jobs, bool steal) {
    // Cold caches every run: a warm memo would mask any schedule-dependence
    // this test exists to catch.
    clear_engine_caches();
    LookaheadParams params;
    params.max_iterations = 5;
    EngineOptions engine;
    engine.jobs = jobs;
    engine.steal = steal;
    const auto outcomes = optimize_timing_batch(items, params, engine);
    std::vector<std::string> aigers;
    for (const auto& outcome : outcomes) {
        EXPECT_FALSE(outcome.failed) << outcome.name;
        std::stringstream aag;
        write_aiger(aag, outcome.output);
        aigers.push_back(aag.str());
    }
    return aigers;
}

TEST(Engine, BatchStealingIsByteIdenticalAcrossJobsAndModes) {
    // The two-level scheduler is an execution knob: freed workers joining
    // another item's cone fan-out must never change what that item
    // commits. Full serialized bytes, not just QoR, across jobs values and
    // both sides of the switch.
    const auto items = skewed_batch();
    const auto baseline = batch_aigers(items, 1, /*steal=*/false);
    ASSERT_EQ(baseline.size(), items.size());
    for (const int jobs : {2, 4}) {
        EXPECT_EQ(batch_aigers(items, jobs, /*steal=*/true), baseline) << "steal jobs=" << jobs;
        EXPECT_EQ(batch_aigers(items, jobs, /*steal=*/false), baseline)
            << "no-steal jobs=" << jobs;
    }
    EXPECT_EQ(batch_aigers(items, 1, /*steal=*/true), baseline);
}

TEST(Engine, BatchStealingDonatesRangesToSharedPool) {
    // With stealing on and more than one worker, in-flight items publish
    // their multi-cone rounds to the shared pool; the donation counter is
    // deterministic (it counts rounds, not schedule-dependent steals).
    Metrics& metrics = Metrics::global();
    const std::uint64_t donated_before = metrics.counter("engine.steal.donated_ranges").value();
    batch_aigers(skewed_batch(), 4, /*steal=*/true);
    EXPECT_GT(metrics.counter("engine.steal.donated_ranges").value(), donated_before);

    // With stealing off there is no shared pool, so nothing is donated.
    const std::uint64_t donated_mid = metrics.counter("engine.steal.donated_ranges").value();
    batch_aigers(skewed_batch(), 4, /*steal=*/false);
    EXPECT_EQ(metrics.counter("engine.steal.donated_ranges").value(), donated_mid);
}

TEST(Engine, OnCompleteNeverRunsConcurrentlyUnderStealing) {
    // The checkpoint hook's serialization guarantee must survive the
    // shared-pool rework: journal writers rely on never being entered
    // concurrently.
    const auto items = skewed_batch();
    LookaheadParams params;
    params.max_iterations = 5;
    EngineOptions engine;
    engine.jobs = 4;
    engine.steal = true;
    std::atomic<int> in_hook{0};
    std::vector<int> seen(items.size(), 0);
    const auto outcomes = optimize_timing_batch(
        items, params, engine, [&](const BatchOutcome& outcome, std::size_t index) {
            EXPECT_EQ(in_hook.fetch_add(1), 0) << "on_complete entered concurrently";
            ASSERT_LT(index, seen.size());
            ++seen[index];
            EXPECT_EQ(outcome.name, items[index].name);
            in_hook.fetch_sub(1);
        });
    ASSERT_EQ(outcomes.size(), items.size());
    for (const int count : seen) EXPECT_EQ(count, 1);
}

TEST(Checkpoint, ResumedItemsMatchUninterruptedRunUnderStealing) {
    // The --resume property under two-level scheduling: an interrupted
    // steal-enabled batch re-running only its tail must reproduce the
    // uninterrupted bytes — stealing must not let one item's schedule leak
    // into another item's output.
    const auto items = skewed_batch();
    clear_engine_caches();
    LookaheadParams params;
    params.max_iterations = 5;
    EngineOptions engine;
    engine.jobs = 4;
    engine.steal = true;

    auto aiger_of = [](const BatchOutcome& outcome) {
        std::stringstream aag;
        write_aiger(aag, outcome.output);
        return aag.str();
    };

    const auto full = optimize_timing_batch(items, params, engine);
    ASSERT_EQ(full.size(), items.size());

    // Crash after the first two items were journaled; the resumed batch
    // (still steal-enabled) only contains the tail.
    clear_engine_caches();
    std::vector<BatchItem> resumed_items = {items[2], items[3]};
    const auto resumed = optimize_timing_batch(resumed_items, params, engine);
    ASSERT_EQ(resumed.size(), 2u);
    EXPECT_EQ(aiger_of(resumed[0]), aiger_of(full[2]));
    EXPECT_EQ(aiger_of(resumed[1]), aiger_of(full[3]));
}

/// Full byte-level fingerprint of a budgeted run: the serialized output AIG
/// plus the budget bookkeeping. "Bit-identical across --jobs" means exactly
/// this string being equal, not just depth/AND counts.
struct BudgetedResult {
    std::string aiger;
    std::uint64_t work_units;
    bool budget_exhausted;
};

BudgetedResult run_budgeted(const Aig& input, std::uint64_t work_budget, int jobs) {
    LookaheadParams params;
    params.max_iterations = 6;
    params.work_budget = work_budget;
    EngineOptions engine;
    engine.jobs = jobs;
    OptimizeStats stats;
    const Aig out = optimize_timing_engine(input, params, engine, &stats);
    EXPECT_TRUE(stats.verified);
    EXPECT_FALSE(stats.wall_clock_interrupted);
    EXPECT_TRUE(check_equivalence(input, out, 2000000).equivalent);
    std::stringstream aag;
    write_aiger(aag, out);
    return {aag.str(), stats.work_units, stats.budget_exhausted};
}

TEST(Engine, BudgetedRunsAreJobsInvariant) {
    // Budgets chosen to exercise the interesting regimes: 1 (exhausted after
    // the very first round), a mid value (exhausted partway through the run),
    // and a huge value (never binds). Every jobs count must agree byte for
    // byte on the output AND on the work spent.
    const Aig rca = ripple_carry_adder(8);
    for (const std::uint64_t budget : {std::uint64_t{1}, std::uint64_t{100},
                                       std::uint64_t{1} << 62}) {
        const BudgetedResult serial = run_budgeted(rca, budget, 1);
        for (const int jobs : {2, 4}) {
            const BudgetedResult parallel = run_budgeted(rca, budget, jobs);
            EXPECT_EQ(serial.aiger, parallel.aiger) << "budget=" << budget << " jobs=" << jobs;
            EXPECT_EQ(serial.work_units, parallel.work_units)
                << "budget=" << budget << " jobs=" << jobs;
            EXPECT_EQ(serial.budget_exhausted, parallel.budget_exhausted)
                << "budget=" << budget << " jobs=" << jobs;
        }
    }
}

TEST(Engine, BudgetedRunsAreCacheStateInvariant) {
    // The memo must not alter a budgeted trajectory: a run that hits cached
    // cone evaluations has to charge exactly what a cold run would.
    const Aig circuit = ripple_carry_adder(7);
    clear_engine_caches();
    const BudgetedResult cold = run_budgeted(circuit, 60, 2);
    const BudgetedResult warm = run_budgeted(circuit, 60, 2);
    EXPECT_EQ(cold.aiger, warm.aiger);
    EXPECT_EQ(cold.work_units, warm.work_units);
    EXPECT_EQ(cold.budget_exhausted, warm.budget_exhausted);
}

TEST(Engine, BudgetSemantics) {
    const Aig rca = ripple_carry_adder(8);

    // budget=1 still commits one full round: rounds are atomic, exhaustion
    // gates the NEXT round. The run must report exhaustion and still improve
    // (or at least not worsen) the circuit.
    const BudgetedResult tiny = run_budgeted(rca, 1, 2);
    EXPECT_TRUE(tiny.budget_exhausted);
    EXPECT_GE(tiny.work_units, 1u);

    // A budget the run cannot spend is reported as not exhausted, and the
    // result matches the unbudgeted engine exactly.
    const BudgetedResult huge = run_budgeted(rca, std::uint64_t{1} << 62, 2);
    EXPECT_FALSE(huge.budget_exhausted);
    LookaheadParams params;
    params.max_iterations = 6;
    EngineOptions engine;
    engine.jobs = 2;
    const Aig unbudgeted = optimize_timing_engine(rca, params, engine);
    std::stringstream aag;
    write_aiger(aag, unbudgeted);
    EXPECT_EQ(huge.aiger, aag.str());

    // A binding mid-size budget spends no more than allowed... plus at most
    // the final round's overshoot, and strictly less than the huge run.
    const BudgetedResult mid = run_budgeted(rca, 100, 2);
    EXPECT_TRUE(mid.budget_exhausted);
    EXPECT_LT(mid.work_units, huge.work_units);
}

// ---------------------------------------------------------------------------
// Intra-cone SAT fan-out (third scheduling level)

/// One engine run configured to exercise the SAT don't-care proofs of
/// secondary simplification (the intra-cone fan-out's workload): forcing
/// random patterns makes every cone's simulation non-exhaustive, so the
/// unreached candidate minterms go to per-cube SAT queries instead of
/// being read off an exhaustive truth table. Caches are cleared first —
/// every run is cold unless the caller re-runs itself.
BudgetedResult run_intra_cone(const Aig& input, int jobs, bool intra_cone,
                              std::uint64_t work_budget = 0) {
    clear_engine_caches();
    LookaheadParams params;
    params.max_iterations = 4;
    params.force_random_patterns = true;
    params.work_budget = work_budget;
    EngineOptions engine;
    engine.jobs = jobs;
    engine.intra_cone = intra_cone;
    OptimizeStats stats;
    const Aig out = optimize_timing_engine(input, params, engine, &stats);
    EXPECT_TRUE(stats.verified);
    EXPECT_FALSE(stats.wall_clock_interrupted);
    EXPECT_TRUE(check_equivalence(input, out, 2000000).equivalent);
    std::stringstream aag;
    write_aiger(aag, out);
    return {aag.str(), stats.work_units, stats.budget_exhausted};
}

TEST(Engine, IntraConeIsByteIdenticalAcrossJobsAndModes) {
    // The intra-cone fan-out is an execution knob: per-cube proof tasks
    // run on pool workers, but verdicts commit and conflicts charge in
    // fixed task order after the join, so serialized output AND work spend
    // must match the serial path byte for byte at every jobs value.
    const Aig rca = ripple_carry_adder(8);
    const BudgetedResult baseline = run_intra_cone(rca, 1, /*intra_cone=*/false);
    for (const int jobs : {1, 2, 4}) {
        for (const bool intra : {false, true}) {
            const BudgetedResult r = run_intra_cone(rca, jobs, intra);
            EXPECT_EQ(r.aiger, baseline.aiger) << "jobs=" << jobs << " intra=" << intra;
            EXPECT_EQ(r.work_units, baseline.work_units)
                << "jobs=" << jobs << " intra=" << intra;
        }
    }
}

TEST(Engine, IntraConeBudgetedRunsAreInvariantAcrossModesAndCacheStates) {
    // Budgeted trajectories must be unperturbed by the fan-out: the join
    // charges conflicts in task index order, so exhaustion fires after the
    // same round regardless of jobs x intra-cone x cold/warm cache.
    const Aig rca = ripple_carry_adder(8);
    for (const std::uint64_t budget : {std::uint64_t{80}, std::uint64_t{1} << 62}) {
        const BudgetedResult baseline = run_intra_cone(rca, 1, /*intra_cone=*/false, budget);
        for (const int jobs : {2, 4}) {
            const BudgetedResult r = run_intra_cone(rca, jobs, /*intra_cone=*/true, budget);
            EXPECT_EQ(r.aiger, baseline.aiger) << "budget=" << budget << " jobs=" << jobs;
            EXPECT_EQ(r.work_units, baseline.work_units)
                << "budget=" << budget << " jobs=" << jobs;
            EXPECT_EQ(r.budget_exhausted, baseline.budget_exhausted)
                << "budget=" << budget << " jobs=" << jobs;
        }
        // Warm-cache replay: run_intra_cone clears caches, so call the
        // engine again directly on the now-populated memo.
        LookaheadParams params;
        params.max_iterations = 4;
        params.force_random_patterns = true;
        params.work_budget = budget;
        EngineOptions engine;
        engine.jobs = 4;
        engine.intra_cone = true;
        OptimizeStats stats;
        const Aig warm = optimize_timing_engine(rca, params, engine, &stats);
        std::stringstream aag;
        write_aiger(aag, warm);
        EXPECT_EQ(aag.str(), baseline.aiger) << "warm budget=" << budget;
        EXPECT_EQ(stats.work_units, baseline.work_units) << "warm budget=" << budget;
    }
}

TEST(Engine, IntraConeMetricsCountQueriesAndParallelBatches) {
    Metrics& metrics = Metrics::global();
    const std::uint64_t queries_before = metrics.counter("engine.intracone.queries").value();
    const std::uint64_t batches_before =
        metrics.counter("engine.intracone.parallel_batches").value();
    run_intra_cone(ripple_carry_adder(8), 4, /*intra_cone=*/true);
    // The forced-random-pattern run must have sent don't-care candidates
    // to SAT; with workers available, multi-task batches fan out.
    EXPECT_GT(metrics.counter("engine.intracone.queries").value(), queries_before);
    EXPECT_GT(metrics.counter("engine.intracone.parallel_batches").value(), batches_before);

    // With the fan-out disabled the serial loop answers the same queries
    // but never dispatches a parallel batch.
    const std::uint64_t batches_mid =
        metrics.counter("engine.intracone.parallel_batches").value();
    run_intra_cone(ripple_carry_adder(8), 4, /*intra_cone=*/false);
    EXPECT_EQ(metrics.counter("engine.intracone.parallel_batches").value(), batches_mid);
}

TEST(Engine, IntraConeStressConcurrentFanoutsThroughSharedPool) {
    // Many simultaneous intra-cone fan-outs through one shared batch pool —
    // the three-level schedule TSan runs race-check: batch items x cone
    // rounds x per-cube proof tasks all drain the same queue, and every
    // proof task re-installs its cancellation scope on whichever worker
    // picks it up. Outputs must still match the fully serial baseline.
    std::vector<BatchItem> items;
    items.push_back({"rca7", ripple_carry_adder(7)});
    items.push_back({"rca8", ripple_carry_adder(8)});
    for (int s = 0; s < 3; ++s) {
        BenchmarkProfile profile;
        profile.name = "intracone_stress";
        profile.num_pis = 14;
        profile.num_pos = 6;
        profile.chain_length = 8;
        profile.num_shared = 3;
        profile.seed = 31 + s;
        items.push_back({"ctrl" + std::to_string(s), synthetic_control_circuit(profile)});
    }
    LookaheadParams params;
    params.max_iterations = 3;
    params.force_random_patterns = true;

    auto batch_bytes = [&](int jobs, bool steal, bool intra) {
        clear_engine_caches();
        EngineOptions engine;
        engine.jobs = jobs;
        engine.steal = steal;
        engine.intra_cone = intra;
        const auto outcomes = optimize_timing_batch(items, params, engine);
        std::vector<std::string> aigers;
        for (const auto& outcome : outcomes) {
            EXPECT_FALSE(outcome.failed) << outcome.name;
            std::stringstream aag;
            write_aiger(aag, outcome.output);
            aigers.push_back(aag.str());
        }
        return aigers;
    };

    const auto baseline = batch_bytes(1, /*steal=*/false, /*intra=*/false);
    ASSERT_EQ(baseline.size(), items.size());
    EXPECT_EQ(batch_bytes(4, /*steal=*/true, /*intra=*/true), baseline);
    EXPECT_EQ(batch_bytes(4, /*steal=*/false, /*intra=*/true), baseline);
    EXPECT_EQ(batch_bytes(2, /*steal=*/true, /*intra=*/true), baseline);
}

// ---------------------------------------------------------------------------
// Fault containment & recovery (PR 3)

TEST(FaultPlan, GrammarRoundtrip) {
    const FaultPlan plan = FaultPlan::parse("resource@decompose:2,solver@sat,fatal@batch:1");
    EXPECT_EQ(plan.count_for("decompose"), 2);
    EXPECT_EQ(plan.count_for("sat"), 1);
    EXPECT_EQ(plan.count_for("cec"), 0);
    EXPECT_EQ(plan.fatal_count_for("batch"), 1);
    // engine_spec() strips fatal specs: they are CLI-level crash directives,
    // not engine faults, and must not perturb the params fingerprint.
    const std::string engine_spec = FaultPlan::parse(plan.engine_spec()).engine_spec();
    EXPECT_EQ(engine_spec, plan.engine_spec());
    EXPECT_EQ(engine_spec.find("fatal"), std::string::npos);
    EXPECT_EQ(FaultPlan::parse("fatal@batch:1").fingerprint(), FaultPlan().fingerprint());

    // "cancel" serializes as error_kind_name(Cancelled) = "cancelled"; the
    // canonical form must re-parse (the CLI round-trips every plan through
    // engine_spec()) and both spellings must fingerprint identically.
    const FaultPlan cancel_plan = FaultPlan::parse("cancel@decompose:1");
    EXPECT_EQ(FaultPlan::parse(cancel_plan.engine_spec()).engine_spec(),
              cancel_plan.engine_spec());
    EXPECT_EQ(FaultPlan::parse("cancelled@decompose:1").fingerprint(),
              cancel_plan.fingerprint());

    for (const char* bad : {"bogus@decompose", "resource", "resource@sat:x", "@sat"}) {
        try {
            FaultPlan::parse(bad);
            ADD_FAILURE() << "no throw for " << bad;
        } catch (const LlsError& e) {
            EXPECT_EQ(e.kind(), ErrorKind::ParseError) << bad;
        }
    }
}

OptimizeStats run_faulted(const Aig& input, const std::string& plan, int jobs, Aig* out_aig) {
    LookaheadParams params;
    params.max_iterations = 6;
    params.fault_plan = plan;
    EngineOptions engine;
    engine.jobs = jobs;
    OptimizeStats stats;
    *out_aig = optimize_timing_engine(input, params, engine, &stats);
    return stats;
}

TEST(Engine, FaultInjectionRecoversAtEverySiteClass) {
    // One plan per engine injection site, each with a distinct error kind.
    // Every run must complete, stay CEC-equivalent, and (for the sites the
    // small adder exercises on every cone) report contained fault records.
    const Aig rca = ripple_carry_adder(6);
    const struct {
        const char* plan;
        ErrorKind kind;
        bool always_hit;  // site reached for every cone on this input
    } cases[] = {
        {"resource@decompose:1", ErrorKind::ResourceExhausted, true},
        {"invariant@spcf:1", ErrorKind::InvariantViolation, true},
        {"solver@sat:1", ErrorKind::SolverLimit, false},
        {"verify@cec:1", ErrorKind::VerificationFailed, false},
    };
    for (const auto& c : cases) {
        Aig out;
        const OptimizeStats stats = run_faulted(rca, c.plan, 2, &out);
        EXPECT_TRUE(stats.verified) << c.plan;
        EXPECT_TRUE(check_equivalence(rca, out, 2000000).equivalent) << c.plan;
        if (c.always_hit) {
            ASSERT_FALSE(stats.faults.empty()) << c.plan;
        }
        for (const FaultRecord& fault : stats.faults) {
            EXPECT_EQ(fault.kind, c.kind) << c.plan;
            EXPECT_TRUE(fault.recovered) << c.plan << " cone " << fault.cone;
            EXPECT_GE(fault.cone, 0) << c.plan;
            EXPECT_FALSE(fault.retries.empty()) << c.plan;
        }
    }
}

TEST(Engine, FaultInjectionIsJobsInvariant) {
    const Aig rca = ripple_carry_adder(7);
    const std::string plan = "resource@decompose:1,verify@cec:1";

    auto fingerprint = [&](int jobs) {
        Aig out;
        const OptimizeStats stats = run_faulted(rca, plan, jobs, &out);
        std::stringstream aag;
        write_aiger(aag, out);
        std::string fp = aag.str();
        // Fold the fault journal into the fingerprint: records must agree in
        // order, site, and outcome — not just in count.
        for (const FaultRecord& fault : stats.faults) {
            fp += "|" + std::string(error_kind_name(fault.kind)) + "@" + fault.stage + "#" +
                  std::to_string(fault.cone) + ":" + (fault.recovered ? "r" : "d");
        }
        return fp;
    };

    const std::string serial = fingerprint(1);
    EXPECT_FALSE(serial.empty());
    EXPECT_EQ(serial, fingerprint(2));
    EXPECT_EQ(serial, fingerprint(4));
}

TEST(Engine, ExhaustedRetryLadderDegradesToOriginalCone) {
    // count=3 poisons all three retry rungs: the cone must be kept in its
    // original form (degraded, recovered=false) and the overall result must
    // still verify — containment, not propagation.
    const Aig rca = ripple_carry_adder(6);
    Aig out;
    const OptimizeStats stats = run_faulted(rca, "resource@decompose:3", 2, &out);
    EXPECT_TRUE(stats.verified);
    EXPECT_TRUE(check_equivalence(rca, out, 2000000).equivalent);
    ASSERT_FALSE(stats.faults.empty());
    for (const FaultRecord& fault : stats.faults) {
        EXPECT_FALSE(fault.recovered);
        EXPECT_EQ(fault.retries.size(), 2u);  // two escalations, both poisoned
    }
    // Nothing decomposed successfully; any depth gain came from the
    // conventional restructuring passes, not from lookahead commits.
    EXPECT_EQ(stats.outputs_decomposed, 0);
}

TEST(Engine, FaultedRunsAreCacheStateInvariant) {
    // Memo hits must replay fault records identically to cold evaluation.
    const Aig rca = ripple_carry_adder(6);
    clear_engine_caches();
    Aig cold_out, warm_out;
    const OptimizeStats cold = run_faulted(rca, "resource@decompose:1", 2, &cold_out);
    const OptimizeStats warm = run_faulted(rca, "resource@decompose:1", 2, &warm_out);
    EXPECT_EQ(cold_out.hash(), warm_out.hash());
    ASSERT_EQ(cold.faults.size(), warm.faults.size());
    for (std::size_t i = 0; i < cold.faults.size(); ++i) {
        EXPECT_EQ(cold.faults[i].cone, warm.faults[i].cone);
        EXPECT_EQ(cold.faults[i].stage, warm.faults[i].stage);
        EXPECT_EQ(cold.faults[i].recovered, warm.faults[i].recovered);
    }
}

TEST(Engine, FaultPlanDoesNotPerturbCleanRuns) {
    // An empty plan must leave the params fingerprint — and therefore the
    // RNG streams and memo keys — exactly as before PR 3.
    LookaheadParams params;
    params.max_iterations = 6;
    const std::uint64_t clean = lookahead_params_fingerprint(params);
    params.fault_plan = "";
    EXPECT_EQ(lookahead_params_fingerprint(params), clean);
    params.fault_plan = "resource@decompose:1";
    EXPECT_NE(lookahead_params_fingerprint(params), clean);
}

TEST(Engine, BatchItemFaultBoundary) {
    // A malformed fault plan makes every item's evaluation throw at parse
    // time; the batch must degrade each item to its (cleaned) input instead
    // of aborting, and report the failure on the outcome.
    std::vector<BatchItem> items;
    items.push_back({"rca5", ripple_carry_adder(5)});
    items.push_back({"rca6", ripple_carry_adder(6)});
    LookaheadParams params;
    params.max_iterations = 4;
    params.fault_plan = "not-a-plan";
    EngineOptions engine;
    engine.jobs = 2;
    const auto outcomes = optimize_timing_batch(items, params, engine);
    ASSERT_EQ(outcomes.size(), 2u);
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        EXPECT_TRUE(outcomes[i].failed) << outcomes[i].name;
        EXPECT_NE(outcomes[i].error.find("fault"), std::string::npos) << outcomes[i].error;
        EXPECT_FALSE(outcomes[i].stats.verified);
        EXPECT_EQ(outcomes[i].output.hash(), items[i].input.cleanup().hash());
    }
}

TEST(Engine, OnCompleteHookSeesEveryItemOnce) {
    std::vector<BatchItem> items;
    items.push_back({"rca5", ripple_carry_adder(5)});
    items.push_back({"rca6", ripple_carry_adder(6)});
    items.push_back({"rca7", ripple_carry_adder(7)});
    LookaheadParams params;
    params.max_iterations = 4;
    EngineOptions engine;
    engine.jobs = 3;
    std::vector<int> seen(items.size(), 0);
    const auto outcomes = optimize_timing_batch(
        items, params, engine, [&](const BatchOutcome& outcome, std::size_t index) {
            // The hook is mutex-serialized, so unsynchronized writes are safe.
            ASSERT_LT(index, seen.size());
            ++seen[index];
            EXPECT_EQ(outcome.name, items[index].name);
        });
    ASSERT_EQ(outcomes.size(), items.size());
    for (const int count : seen) EXPECT_EQ(count, 1);
}

TEST(Checkpoint, JournalRoundtrip) {
    const std::string path =
        (std::filesystem::temp_directory_path() / "lls_test_checkpoint.txt").string();
    std::remove(path.c_str());

    CheckpointEntry entry;
    entry.name = "rca8";
    entry.input_hash = 0xdeadbeefULL;
    entry.params_fingerprint = 0x1234ULL;
    entry.output_hash = checkpoint_bytes_hash("aag 1 2 3");
    entry.final_depth = 14;
    entry.final_ands = 493;
    entry.failed = false;
    {
        BatchCheckpoint journal(path);
        EXPECT_TRUE(journal.entries().empty());
        journal.append(entry);
    }
    {
        // Reload: the entry is found by its exact triple and nothing else.
        BatchCheckpoint journal(path);
        ASSERT_EQ(journal.entries().size(), 1u);
        const CheckpointEntry* found = journal.find("rca8", 0xdeadbeefULL, 0x1234ULL);
        ASSERT_NE(found, nullptr);
        EXPECT_EQ(found->output_hash, entry.output_hash);
        EXPECT_EQ(found->final_depth, 14);
        EXPECT_EQ(found->final_ands, 493u);
        // Stale entries (same name, different input or params) do not match.
        EXPECT_EQ(journal.find("rca8", 0xdeadbeefULL, 0x9999ULL), nullptr);
        EXPECT_EQ(journal.find("rca8", 0xbeefULL, 0x1234ULL), nullptr);
        EXPECT_EQ(journal.find("other", 0xdeadbeefULL, 0x1234ULL), nullptr);

        CheckpointEntry tabbed = entry;
        tabbed.name = "bad\tname";
        EXPECT_THROW(journal.append(tabbed), LlsError);
    }
    {
        // A non-journal file is rejected up front, not silently re-stamped.
        std::ofstream(path, std::ios::trunc) << "not a journal\n";
        try {
            BatchCheckpoint journal(path);
            ADD_FAILURE() << "no throw on bad magic";
        } catch (const LlsError& e) {
            EXPECT_EQ(e.kind(), ErrorKind::ParseError);
        }
    }
    std::remove(path.c_str());
}

TEST(Checkpoint, ResumedItemsMatchUninterruptedRun) {
    // The property that makes --resume byte-identical: each batch item's
    // output depends only on (input, params), never on which other items ran
    // alongside it. A "resumed" batch that re-runs only the tail must produce
    // the same bytes the full batch produced for those items.
    std::vector<BatchItem> items;
    items.push_back({"rca5", ripple_carry_adder(5)});
    items.push_back({"rca6", ripple_carry_adder(6)});
    items.push_back({"rca7", ripple_carry_adder(7)});
    LookaheadParams params;
    params.max_iterations = 4;
    EngineOptions engine;
    engine.jobs = 2;

    auto aiger_of = [](const BatchOutcome& outcome) {
        std::stringstream aag;
        write_aiger(aag, outcome.output);
        return aag.str();
    };

    const auto full = optimize_timing_batch(items, params, engine);
    ASSERT_EQ(full.size(), 3u);

    // Simulate a crash after item 0 was journaled: the resumed run only
    // contains the remaining items.
    std::vector<BatchItem> resumed_items = {items[1], items[2]};
    const auto resumed = optimize_timing_batch(resumed_items, params, engine);
    ASSERT_EQ(resumed.size(), 2u);
    EXPECT_EQ(aiger_of(resumed[0]), aiger_of(full[1]));
    EXPECT_EQ(aiger_of(resumed[1]), aiger_of(full[2]));
}

TEST(Engine, MetricsRecordRuns) {
    Metrics& metrics = Metrics::global();
    const std::uint64_t runs_before = metrics.counter("engine.runs").value();
    run(ripple_carry_adder(5), 2);
    EXPECT_GT(metrics.counter("engine.runs").value(), runs_before);
    EXPECT_GT(metrics.timer("engine.evaluate").samples(), 0u);
    const std::string json = metrics.to_json();
    EXPECT_NE(json.find("\"engine.runs\""), std::string::npos);
    EXPECT_NE(json.find("\"caches\""), std::string::npos);
}

// ---- cooperative cancellation ------------------------------------------

TEST(Engine, InjectedCancelDegradesConeWithFaultRecord) {
    // `cancel@decompose` exercises the cone-deadline path deterministically:
    // the cancelled cone must be kept original (recovered=false) with a
    // Cancelled fault record, the retry ladder must NOT escalate (retrying
    // a timed-out evaluation is how a runaway cone eats the whole budget),
    // and the run must stay equivalent.
    const Aig rca = ripple_carry_adder(6);
    clear_engine_caches();
    Aig out;
    const OptimizeStats stats = run_faulted(rca, "cancel@decompose:1", 2, &out);
    EXPECT_TRUE(stats.verified);
    EXPECT_TRUE(check_equivalence(rca, out, 2000000).equivalent);
    ASSERT_FALSE(stats.faults.empty());
    for (const FaultRecord& fault : stats.faults) {
        EXPECT_EQ(fault.kind, ErrorKind::Cancelled);
        EXPECT_FALSE(fault.recovered);
        EXPECT_TRUE(fault.retries.empty());  // ladder stops on cancellation
    }
    EXPECT_EQ(stats.deadline_cancelled, static_cast<int>(stats.faults.size()));
    EXPECT_FALSE(stats.cancelled);  // a cone cancellation is not a shutdown
    EXPECT_EQ(stats.outputs_decomposed, 0);
}

TEST(Engine, InjectedCancelIsJobsInvariant) {
    // Cancelled evaluations are never memoized (timing_dependent), so every
    // run recomputes them — and injection being a pure function of
    // (cone, params), the recompute replays identically across schedules.
    const Aig rca = ripple_carry_adder(7);
    auto fingerprint = [&](int jobs) {
        clear_engine_caches();
        Aig out;
        const OptimizeStats stats = run_faulted(rca, "cancel@decompose:1", jobs, &out);
        std::stringstream aag;
        write_aiger(aag, out);
        std::string fp = aag.str();
        for (const FaultRecord& fault : stats.faults)
            fp += "|" + std::string(error_kind_name(fault.kind)) + "@" + fault.stage + "#" +
                  std::to_string(fault.cone);
        return fp;
    };
    const std::string serial = fingerprint(1);
    EXPECT_FALSE(serial.empty());
    EXPECT_EQ(serial, fingerprint(2));
    EXPECT_EQ(serial, fingerprint(4));
}

TEST(Engine, InjectedCancelIsCacheStateInvariant) {
    // Unlike plain faults (memoized and replayed from cache), cancelled
    // evaluations are recomputed on every run. Cold and warm runs must
    // still agree bit-for-bit, fault journal included.
    const Aig rca = ripple_carry_adder(6);
    clear_engine_caches();
    Aig cold_out, warm_out;
    const OptimizeStats cold = run_faulted(rca, "cancel@decompose:1", 2, &cold_out);
    const OptimizeStats warm = run_faulted(rca, "cancel@decompose:1", 2, &warm_out);
    EXPECT_EQ(cold_out.hash(), warm_out.hash());
    ASSERT_EQ(cold.faults.size(), warm.faults.size());
    EXPECT_EQ(cold.deadline_cancelled, warm.deadline_cancelled);
}

TEST(Engine, TinyConeDeadlineDegradesAndCounts) {
    // A deadline far below any real evaluation time cancels (essentially)
    // every cone: the run must complete, verify, count the cancellations in
    // stats and the engine.cancel.* metrics, and keep cancelled cones
    // original. This is the wall-clock path, so only the *containment* is
    // asserted, never which cones fired.
    const Aig rca = ripple_carry_adder(8);
    clear_engine_caches();
    LookaheadParams params;
    params.max_iterations = 4;
    params.cone_deadline_seconds = 1e-9;
    EngineOptions engine;
    engine.jobs = 2;
    const std::uint64_t cancels_before =
        Metrics::global().counter("engine.cancel.deadline_cancelled").value();
    OptimizeStats stats;
    const Aig out = optimize_timing_engine(rca, params, engine, &stats);
    EXPECT_TRUE(stats.verified);
    EXPECT_TRUE(check_equivalence(rca, out, 2000000).equivalent);
    EXPECT_GT(stats.deadline_cancelled, 0);
    ASSERT_FALSE(stats.faults.empty());
    for (const FaultRecord& fault : stats.faults) {
        EXPECT_EQ(fault.kind, ErrorKind::Cancelled);
        EXPECT_FALSE(fault.recovered);
    }
    EXPECT_GT(Metrics::global().counter("engine.cancel.deadline_cancelled").value(),
              cancels_before);
    clear_engine_caches();  // drop any entries computed alongside the cancellations
}

TEST(Engine, PreRequestedTokenReturnsInputWithCancelledFlag) {
    // A token requested before the run starts: the engine must dispatch
    // nothing and hand back the (cleaned) input with stats.cancelled set —
    // the single-circuit analogue of a batch item that never started.
    const Aig rca = ripple_carry_adder(6);
    CancelToken token;
    token.request();
    LookaheadParams params;
    params.max_iterations = 4;
    EngineOptions engine;
    engine.jobs = 2;
    engine.cancel = &token;
    const std::uint64_t stops_before =
        Metrics::global().counter("engine.cancel.shutdowns").value();
    OptimizeStats stats;
    const Aig out = optimize_timing_engine(rca, params, engine, &stats);
    EXPECT_TRUE(stats.cancelled);
    EXPECT_EQ(stats.outputs_decomposed, 0);
    EXPECT_TRUE(check_equivalence(rca, out, 2000000).equivalent);
    EXPECT_GT(Metrics::global().counter("engine.cancel.shutdowns").value(), stops_before);
}

TEST(Engine, BatchShutdownMarksItemsCancelledNotFailed) {
    // With the token already requested, every batch item must come back
    // cancelled (never failed), on_complete must still see each exactly
    // once, and outputs must be safe placeholders (the unmodified input).
    std::vector<BatchItem> items;
    items.push_back({"a", ripple_carry_adder(5)});
    items.push_back({"b", ripple_carry_adder(6)});
    items.push_back({"c", ripple_carry_adder(7)});
    CancelToken token;
    token.request();
    EngineOptions engine;
    engine.jobs = 2;
    engine.cancel = &token;
    LookaheadParams params;
    params.max_iterations = 4;
    std::atomic<int> completions{0};
    const auto outcomes = optimize_timing_batch(
        items, params, engine, [&](const BatchOutcome& r, std::size_t) {
            ++completions;
            EXPECT_TRUE(r.cancelled);
        });
    ASSERT_EQ(outcomes.size(), items.size());
    EXPECT_EQ(completions.load(), static_cast<int>(items.size()));
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        EXPECT_TRUE(outcomes[i].cancelled) << outcomes[i].name;
        EXPECT_FALSE(outcomes[i].failed) << outcomes[i].name;
        EXPECT_TRUE(check_equivalence(items[i].input, outcomes[i].output, 2000000).equivalent)
            << outcomes[i].name;
    }
}

TEST(Engine, MidBatchShutdownKeepsFinishedItemsByteIdentical) {
    // Request shutdown from on_complete after the first finished item: the
    // finished prefix must match an uninterrupted run byte-for-byte (what
    // --resume relies on), and the interrupted/never-started remainder must
    // be cancelled, not failed.
    const auto items = skewed_batch();
    LookaheadParams params;
    params.max_iterations = 6;

    auto aiger_of = [](const BatchOutcome& r) {
        std::stringstream aag;
        write_aiger(aag, r.output);
        return aag.str();
    };

    clear_engine_caches();
    EngineOptions full_engine;
    full_engine.jobs = 2;
    const auto full = optimize_timing_batch(items, params, full_engine);

    clear_engine_caches();
    CancelToken token;
    EngineOptions engine;
    engine.jobs = 2;
    engine.cancel = &token;
    std::atomic<int> finished{0};
    const auto interrupted = optimize_timing_batch(
        items, params, engine, [&](const BatchOutcome& r, std::size_t) {
            if (!r.cancelled && ++finished == 1) token.request();
        });
    ASSERT_EQ(interrupted.size(), items.size());
    std::size_t completed = 0, cancelled = 0;
    for (std::size_t i = 0; i < interrupted.size(); ++i) {
        if (interrupted[i].cancelled) {
            ++cancelled;
            EXPECT_FALSE(interrupted[i].failed);
            continue;
        }
        ++completed;
        EXPECT_FALSE(interrupted[i].failed);
        // Finished-before-shutdown items are exactly the uninterrupted bytes.
        EXPECT_EQ(aiger_of(interrupted[i]), aiger_of(full[i])) << interrupted[i].name;
    }
    EXPECT_GE(completed, 1u);
    EXPECT_EQ(completed + cancelled, items.size());
}

// ---- memory governance (PR 10) -----------------------------------------

TEST(MemoryQuota, ChargesDeterministicallyAndThrowsAtTheLimit) {
    // Unlimited (limit 0): charges accumulate, nothing ever throws, and
    // remaining() is the "no bound" sentinel.
    MemoryQuota unlimited;
    unlimited.charge(std::uint64_t{8} << 30);
    EXPECT_EQ(unlimited.charged(), std::uint64_t{8} << 30);
    EXPECT_EQ(unlimited.remaining(), ~std::uint64_t{0});

    MemoryQuota quota(1000);
    quota.charge(600);
    EXPECT_EQ(quota.remaining(), 400u);
    quota.charge(400);  // exactly at the limit: not over, no throw
    EXPECT_EQ(quota.remaining(), 0u);
    try {
        quota.charge(1);
        ADD_FAILURE() << "no throw past the limit";
    } catch (const LlsError& e) {
        EXPECT_EQ(e.kind(), ErrorKind::ResourceExhausted);
        EXPECT_EQ(e.stage(), kMemgovStage);
    }
    // The charge that tripped the quota is recorded before the throw, so
    // the total stays an exact function of the charge stream.
    EXPECT_EQ(quota.charged(), 1001u);
    EXPECT_EQ(quota.remaining(), 0u);
}

TEST(MemoryGovernor, ShedsOncePerEpisodeAndGateSelfClears) {
    // Budget 0: pure accounting — no relief, no admission hold, and the
    // gate never blocks.
    MemoryGovernor accountant(0);
    accountant.charge(std::int64_t{8} << 20);
    EXPECT_EQ(accountant.counted_bytes(), std::uint64_t{8} << 20);
    EXPECT_EQ(accountant.charged_total(), std::uint64_t{8} << 20);
    accountant.charge(-(std::int64_t{8} << 20));
    EXPECT_EQ(accountant.counted_bytes(), 0u);
    EXPECT_EQ(accountant.charged_total(), std::uint64_t{8} << 20);  // monotonic
    EXPECT_EQ(accountant.shed_events(), 0u);
    EXPECT_FALSE(accountant.admission_held());
    accountant.admission_acquire();
    accountant.admission_release();

    // Armed rail: a gauge (stand-in for a memo cache) holds 4 MiB against a
    // 1 MiB budget. Relief runs the shed hooks exactly once per growth
    // episode, however many charges arrive while still over the rail.
    const std::uint64_t budget = std::uint64_t{1} << 20;
    MemoryGovernor governor(budget);
    std::uint64_t cache_bytes = std::uint64_t{4} << 20;
    int sheds = 0;
    governor.add_gauge([&cache_bytes] { return cache_bytes; });
    governor.add_shed_hook([&] {
        cache_bytes /= 2;
        ++sheds;
    });
    // Prime the gauge snapshot (the charge-path screen is allowed to trust
    // a cached poll until counted traffic forces a refresh).
    EXPECT_EQ(governor.current_bytes(), cache_bytes);
    governor.charge(512);
    EXPECT_EQ(sheds, 1);
    EXPECT_EQ(governor.shed_events(), 1u);
    EXPECT_EQ(governor.relief_epoch(), 1u);
    EXPECT_EQ(cache_bytes, std::uint64_t{2} << 20);
    // Still over the rail after shedding: the admission hold goes up, but a
    // repeat charge in the same episode must NOT shed again (hysteresis —
    // re-halving an already-shed cache frees nothing worth the eviction).
    EXPECT_TRUE(governor.admission_held());
    governor.charge(512);
    EXPECT_EQ(sheds, 1);

    // With nothing in flight the gate admits regardless of the hold: only
    // finishing work can release memory, so blocking would deadlock.
    governor.admission_acquire();
    // Usage collapses below the rail; the second acquire's re-poll must
    // observe that and clear the hold instead of waiting forever.
    cache_bytes = 0;
    governor.charge(-1024);
    governor.admission_acquire();
    EXPECT_FALSE(governor.admission_held());
    governor.admission_release();
    governor.admission_release();
}

TEST(Engine, ConeQuotaKeysTheMemoFingerprint) {
    // A nonzero quota changes results (degraded cones keep their original
    // structure), so it must key the memo; zero must add nothing, keeping
    // every pre-PR-10 fingerprint — and so every RNG stream — intact.
    LookaheadParams params;
    params.max_iterations = 6;
    const std::uint64_t clean = lookahead_params_fingerprint(params);
    params.cone_mem_bytes = 0;
    EXPECT_EQ(lookahead_params_fingerprint(params), clean);
    params.cone_mem_bytes = std::uint64_t{4} << 20;
    const std::uint64_t bounded = lookahead_params_fingerprint(params);
    EXPECT_NE(bounded, clean);
    params.cone_mem_bytes = std::uint64_t{8} << 20;
    EXPECT_NE(lookahead_params_fingerprint(params), bounded);
}

OptimizeStats run_quota(const Aig& input, int jobs, bool intra_cone, std::uint64_t cone_mem,
                        Aig* out_aig) {
    LookaheadParams params;
    params.max_iterations = 6;
    params.cone_mem_bytes = cone_mem;
    EngineOptions engine;
    engine.jobs = jobs;
    engine.intra_cone = intra_cone;
    OptimizeStats stats;
    *out_aig = optimize_timing_engine(input, params, engine, &stats);
    return stats;
}

/// A quota tight enough to trip on the deeper cones of a small ripple
/// adder but loose enough that the run still commits work elsewhere.
constexpr std::uint64_t kTestConeQuota = std::uint64_t{24} << 10;

TEST(Engine, ConeQuotaDegradesByteIdenticallyAcrossSchedules) {
    // The Tier-1 charge stream is a pure function of (cone, params): which
    // cones exhaust the quota — and the resulting output bytes and fault
    // journal — must be identical across jobs, intra-cone fan-out, and
    // cache state.
    const Aig rca = ripple_carry_adder(7);
    const std::uint64_t degrades_before =
        Metrics::global().counter("engine.mem.quota_degrades").value();

    auto fingerprint = [&](int jobs, bool intra, bool cold) {
        if (cold) clear_engine_caches();
        Aig out;
        const OptimizeStats stats = run_quota(rca, jobs, intra, kTestConeQuota, &out);
        EXPECT_TRUE(stats.verified);
        EXPECT_TRUE(check_equivalence(rca, out, 2000000).equivalent);
        EXPECT_GT(stats.quota_degraded, 0);
        int memgov_records = 0;
        for (const FaultRecord& fault : stats.faults) {
            if (fault.stage != kMemgovStage) continue;
            ++memgov_records;
            EXPECT_EQ(fault.kind, ErrorKind::ResourceExhausted);
            // Exhaustion ends the retry ladder: escalated rungs only grow
            // the footprint, so the cone degrades at the first rung and can
            // never be reported recovered.
            EXPECT_FALSE(fault.recovered);
            EXPECT_TRUE(fault.retries.empty());
        }
        EXPECT_EQ(memgov_records, stats.quota_degraded);
        std::stringstream aag;
        write_aiger(aag, out);
        std::string fp = aag.str();
        for (const FaultRecord& fault : stats.faults)
            fp += "|" + std::string(error_kind_name(fault.kind)) + "@" + fault.stage + "#" +
                  std::to_string(fault.cone) + ":" + (fault.recovered ? "r" : "d");
        return fp;
    };

    const std::string baseline = fingerprint(1, true, /*cold=*/true);
    EXPECT_FALSE(baseline.empty());
    for (const int jobs : {1, 2, 4})
        for (const bool intra : {true, false})
            EXPECT_EQ(fingerprint(jobs, intra, /*cold=*/true), baseline)
                << "jobs=" << jobs << " intra=" << intra;
    // Warm: quota degradation memoizes like any deterministic fault, so a
    // cache hit must replay the same bytes and the same journal.
    EXPECT_EQ(fingerprint(2, true, /*cold=*/false), baseline);
    EXPECT_GT(Metrics::global().counter("engine.mem.quota_degrades").value(), degrades_before);
    clear_engine_caches();  // drop the quota-keyed entries
}

TEST(Engine, InjectedOomIsContainedAndMapsToResourceExhausted) {
    // `oom@...` throws a raw std::bad_alloc at the site — the containment
    // path must classify it ResourceExhausted, recover through the retry
    // ladder like any resource fault, and stay jobs-invariant.
    const FaultPlan plan = FaultPlan::parse("oom@decompose:1");
    EXPECT_EQ(FaultPlan::parse(plan.engine_spec()).engine_spec(), plan.engine_spec());
    // Same ErrorKind, different injection: the fingerprints must not
    // collide, or an oom plan could replay a resource plan's memo entries.
    EXPECT_NE(plan.fingerprint(), FaultPlan::parse("resource@decompose:1").fingerprint());

    const Aig rca = ripple_carry_adder(6);
    auto fingerprint = [&](int jobs) {
        Aig out;
        const OptimizeStats stats = run_faulted(rca, "oom@decompose:1", jobs, &out);
        EXPECT_TRUE(stats.verified);
        EXPECT_TRUE(check_equivalence(rca, out, 2000000).equivalent);
        EXPECT_FALSE(stats.faults.empty());
        for (const FaultRecord& fault : stats.faults) {
            EXPECT_EQ(fault.kind, ErrorKind::ResourceExhausted);
            EXPECT_TRUE(fault.recovered);
        }
        std::stringstream aag;
        write_aiger(aag, out);
        return aag.str();
    };
    const std::string serial = fingerprint(1);
    EXPECT_EQ(serial, fingerprint(2));
    EXPECT_EQ(serial, fingerprint(4));
}

TEST(Engine, BatchRunLevelOomFailsItemsWithoutTearingDownTheBatch) {
    // `oom@run` fires at run entry, before any per-cone boundary exists —
    // the batch item boundary must degrade each item to its (cleaned)
    // input, exactly like any other item-level failure.
    std::vector<BatchItem> items;
    items.push_back({"rca5", ripple_carry_adder(5)});
    items.push_back({"rca6", ripple_carry_adder(6)});
    LookaheadParams params;
    params.max_iterations = 4;
    params.fault_plan = "oom@run:1";
    EngineOptions engine;
    engine.jobs = 2;
    const auto outcomes = optimize_timing_batch(items, params, engine);
    ASSERT_EQ(outcomes.size(), 2u);
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        EXPECT_TRUE(outcomes[i].failed) << outcomes[i].name;
        EXPECT_FALSE(outcomes[i].cancelled) << outcomes[i].name;
        EXPECT_FALSE(outcomes[i].error.empty()) << outcomes[i].name;
        EXPECT_FALSE(outcomes[i].stats.verified);
        EXPECT_EQ(outcomes[i].output.hash(), items[i].input.cleanup().hash());
    }
}

TEST(Engine, GovernedRunsMatchUngovernedByteForByte) {
    // The Tier-2 rail is a wall rail: a budget small enough to force
    // shedding mid-run may change *when* memo entries exist, but never what
    // the run commits. Charged bytes must flow into the metrics registry.
    const Aig rca = ripple_carry_adder(8);
    clear_engine_caches();
    const std::string baseline = run_aiger(rca, 2, /*shared_bdd=*/true);

    clear_engine_caches();
    const std::uint64_t charged_before =
        Metrics::global().counter("engine.mem.charged_bytes").value();
    MemoryGovernor governor(std::uint64_t{1} << 20);
    register_memo_governance(governor);
    LookaheadParams params;
    params.max_iterations = 6;
    EngineOptions engine;
    engine.jobs = 2;
    engine.shared_bdd = true;
    engine.governor = &governor;
    OptimizeStats stats;
    const Aig out = optimize_timing_engine(rca, params, engine, &stats);
    EXPECT_TRUE(stats.verified);
    std::stringstream aag;
    write_aiger(aag, out);
    EXPECT_EQ(aag.str(), baseline);
    // Solver arenas and the shared BDD manager pushed counted deltas.
    EXPECT_GT(governor.charged_total(), 0u);
    EXPECT_GT(Metrics::global().counter("engine.mem.charged_bytes").value(), charged_before);
    // A 1 MiB budget is far below the run's working set, so at least one
    // relief episode must have run.
    EXPECT_GT(governor.shed_events(), 0u);
    clear_engine_caches();  // leave no half-shed state behind
}

TEST(Engine, GovernedBatchCompletesAndMatchesUngoverned) {
    // Admission control only delays dispatch (and with nothing in flight
    // admits unconditionally), so a governed batch under a starvation-level
    // budget must finish every item with the ungoverned bytes.
    std::vector<BatchItem> items;
    items.push_back({"rca5", ripple_carry_adder(5)});
    items.push_back({"rca6", ripple_carry_adder(6)});
    items.push_back({"rca7", ripple_carry_adder(7)});
    LookaheadParams params;
    params.max_iterations = 4;

    auto aiger_of = [](const BatchOutcome& outcome) {
        std::stringstream aag;
        write_aiger(aag, outcome.output);
        return aag.str();
    };

    clear_engine_caches();
    EngineOptions plain;
    plain.jobs = 2;
    const auto ungoverned = optimize_timing_batch(items, params, plain);

    clear_engine_caches();
    MemoryGovernor governor(std::uint64_t{512} << 10);
    register_memo_governance(governor);
    EngineOptions engine;
    engine.jobs = 2;
    engine.governor = &governor;
    const auto governed = optimize_timing_batch(items, params, engine);

    ASSERT_EQ(governed.size(), items.size());
    for (std::size_t i = 0; i < governed.size(); ++i) {
        EXPECT_FALSE(governed[i].failed) << governed[i].name;
        EXPECT_FALSE(governed[i].cancelled) << governed[i].name;
        EXPECT_EQ(aiger_of(governed[i]), aiger_of(ungoverned[i])) << governed[i].name;
    }
    EXPECT_GT(governor.charged_total(), 0u);
    clear_engine_caches();
}

}  // namespace
}  // namespace lls
