#include "engine/engine.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "cec/cec.hpp"
#include "engine/metrics.hpp"
#include "io/blif.hpp"
#include "io/generators.hpp"

namespace lls {
namespace {

/// QoR + structure fingerprint of an optimized circuit.
struct Result {
    int depth;
    std::size_t ands;
    std::uint64_t hash;
};

Result run(const Aig& input, int jobs, bool use_cache = true) {
    LookaheadParams params;
    params.max_iterations = 6;
    EngineOptions engine;
    engine.jobs = jobs;
    engine.use_result_cache = use_cache;
    OptimizeStats stats;
    const Aig out = optimize_timing_engine(input, params, engine, &stats);
    EXPECT_TRUE(stats.verified);
    EXPECT_TRUE(check_equivalence(input, out, 2000000).equivalent);
    return {out.depth(), out.count_reachable_ands(), out.hash()};
}

TEST(Engine, JobsInvariantOnGeneratedAdders) {
    for (const int bits : {6, 10}) {
        const Aig rca = ripple_carry_adder(bits);
        const Result serial = run(rca, 1);
        const Result parallel4 = run(rca, 4);
        EXPECT_EQ(serial.depth, parallel4.depth) << bits;
        EXPECT_EQ(serial.ands, parallel4.ands) << bits;
        // Stronger than QoR equality: the committed structure is identical.
        EXPECT_EQ(serial.hash, parallel4.hash) << bits;
        EXPECT_LT(serial.depth, rca.depth()) << bits;
    }
}

TEST(Engine, JobsInvariantOnBlifRoundtrip) {
    BenchmarkProfile profile;
    profile.name = "engine_case";
    profile.num_pis = 12;
    profile.num_pos = 4;
    profile.chain_length = 9;
    profile.num_shared = 3;
    profile.seed = 11;
    const Aig circuit = synthetic_control_circuit(profile);

    // Through the BLIF reader, as a real input file would arrive.
    std::stringstream blif;
    write_blif(blif, circuit, "engine_case");
    const Aig parsed = read_blif(blif);

    const Result serial = run(parsed, 1);
    const Result parallel3 = run(parsed, 3);
    EXPECT_EQ(serial.depth, parallel3.depth);
    EXPECT_EQ(serial.ands, parallel3.ands);
    EXPECT_EQ(serial.hash, parallel3.hash);
}

TEST(Engine, ResultCacheDoesNotChangeQoR) {
    const Aig rca = ripple_carry_adder(7);
    const Result cached = run(rca, 2, /*use_cache=*/true);
    const Result uncached = run(rca, 2, /*use_cache=*/false);
    EXPECT_EQ(cached.depth, uncached.depth);
    EXPECT_EQ(cached.ands, uncached.ands);
    EXPECT_EQ(cached.hash, uncached.hash);
}

TEST(Engine, CacheHitCountersIncreaseOnRepeatedRuns) {
    const Aig rca = ripple_carry_adder(9);
    run(rca, 1);
    const CacheStatsSnapshot after_first = decomposition_cache_stats();
    run(rca, 1);
    const CacheStatsSnapshot after_second = decomposition_cache_stats();
    // The second run re-derives the same cones, so it must hit the memo.
    EXPECT_GT(after_second.hits, after_first.hits);
    EXPECT_GT(after_second.entries, 0u);
}

TEST(Engine, BatchMatchesIndividualRuns) {
    std::vector<BatchItem> items;
    items.push_back({"rca6", ripple_carry_adder(6)});
    items.push_back({"rca8", ripple_carry_adder(8)});

    LookaheadParams params;
    params.max_iterations = 6;
    EngineOptions engine;
    engine.jobs = 2;
    const auto outcomes = optimize_timing_batch(items, params, engine);
    ASSERT_EQ(outcomes.size(), 2u);
    for (std::size_t i = 0; i < items.size(); ++i) {
        EXPECT_EQ(outcomes[i].name, items[i].name);
        EXPECT_TRUE(check_equivalence(items[i].input, outcomes[i].output, 2000000).equivalent);
        const Result individual = run(items[i].input, 1);
        EXPECT_EQ(outcomes[i].output.depth(), individual.depth) << items[i].name;
        EXPECT_EQ(outcomes[i].output.count_reachable_ands(), individual.ands) << items[i].name;
    }
}

TEST(Engine, MetricsRecordRuns) {
    Metrics& metrics = Metrics::global();
    const std::uint64_t runs_before = metrics.counter("engine.runs").value();
    run(ripple_carry_adder(5), 2);
    EXPECT_GT(metrics.counter("engine.runs").value(), runs_before);
    EXPECT_GT(metrics.timer("engine.evaluate").samples(), 0u);
    const std::string json = metrics.to_json();
    EXPECT_NE(json.find("\"engine.runs\""), std::string::npos);
    EXPECT_NE(json.find("\"caches\""), std::string::npos);
}

}  // namespace
}  // namespace lls
