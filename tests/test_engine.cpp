#include "engine/engine.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "cec/cec.hpp"
#include "engine/metrics.hpp"
#include "io/blif.hpp"
#include "io/generators.hpp"

namespace lls {
namespace {

/// QoR + structure fingerprint of an optimized circuit.
struct Result {
    int depth;
    std::size_t ands;
    std::uint64_t hash;
};

Result run(const Aig& input, int jobs, bool use_cache = true) {
    LookaheadParams params;
    params.max_iterations = 6;
    EngineOptions engine;
    engine.jobs = jobs;
    engine.use_result_cache = use_cache;
    OptimizeStats stats;
    const Aig out = optimize_timing_engine(input, params, engine, &stats);
    EXPECT_TRUE(stats.verified);
    EXPECT_TRUE(check_equivalence(input, out, 2000000).equivalent);
    return {out.depth(), out.count_reachable_ands(), out.hash()};
}

TEST(Engine, JobsInvariantOnGeneratedAdders) {
    for (const int bits : {6, 10}) {
        const Aig rca = ripple_carry_adder(bits);
        const Result serial = run(rca, 1);
        const Result parallel4 = run(rca, 4);
        EXPECT_EQ(serial.depth, parallel4.depth) << bits;
        EXPECT_EQ(serial.ands, parallel4.ands) << bits;
        // Stronger than QoR equality: the committed structure is identical.
        EXPECT_EQ(serial.hash, parallel4.hash) << bits;
        EXPECT_LT(serial.depth, rca.depth()) << bits;
    }
}

TEST(Engine, JobsInvariantOnBlifRoundtrip) {
    BenchmarkProfile profile;
    profile.name = "engine_case";
    profile.num_pis = 12;
    profile.num_pos = 4;
    profile.chain_length = 9;
    profile.num_shared = 3;
    profile.seed = 11;
    const Aig circuit = synthetic_control_circuit(profile);

    // Through the BLIF reader, as a real input file would arrive.
    std::stringstream blif;
    write_blif(blif, circuit, "engine_case");
    const Aig parsed = read_blif(blif);

    const Result serial = run(parsed, 1);
    const Result parallel3 = run(parsed, 3);
    EXPECT_EQ(serial.depth, parallel3.depth);
    EXPECT_EQ(serial.ands, parallel3.ands);
    EXPECT_EQ(serial.hash, parallel3.hash);
}

TEST(Engine, ResultCacheDoesNotChangeQoR) {
    const Aig rca = ripple_carry_adder(7);
    const Result cached = run(rca, 2, /*use_cache=*/true);
    const Result uncached = run(rca, 2, /*use_cache=*/false);
    EXPECT_EQ(cached.depth, uncached.depth);
    EXPECT_EQ(cached.ands, uncached.ands);
    EXPECT_EQ(cached.hash, uncached.hash);
}

TEST(Engine, CacheHitCountersIncreaseOnRepeatedRuns) {
    const Aig rca = ripple_carry_adder(9);
    run(rca, 1);
    const CacheStatsSnapshot after_first = decomposition_cache_stats();
    run(rca, 1);
    const CacheStatsSnapshot after_second = decomposition_cache_stats();
    // The second run re-derives the same cones, so it must hit the memo.
    EXPECT_GT(after_second.hits, after_first.hits);
    EXPECT_GT(after_second.entries, 0u);
}

TEST(Engine, BatchMatchesIndividualRuns) {
    std::vector<BatchItem> items;
    items.push_back({"rca6", ripple_carry_adder(6)});
    items.push_back({"rca8", ripple_carry_adder(8)});

    LookaheadParams params;
    params.max_iterations = 6;
    EngineOptions engine;
    engine.jobs = 2;
    const auto outcomes = optimize_timing_batch(items, params, engine);
    ASSERT_EQ(outcomes.size(), 2u);
    for (std::size_t i = 0; i < items.size(); ++i) {
        EXPECT_EQ(outcomes[i].name, items[i].name);
        EXPECT_TRUE(check_equivalence(items[i].input, outcomes[i].output, 2000000).equivalent);
        const Result individual = run(items[i].input, 1);
        EXPECT_EQ(outcomes[i].output.depth(), individual.depth) << items[i].name;
        EXPECT_EQ(outcomes[i].output.count_reachable_ands(), individual.ands) << items[i].name;
    }
}

/// Full byte-level fingerprint of a budgeted run: the serialized output AIG
/// plus the budget bookkeeping. "Bit-identical across --jobs" means exactly
/// this string being equal, not just depth/AND counts.
struct BudgetedResult {
    std::string aiger;
    std::uint64_t work_units;
    bool budget_exhausted;
};

BudgetedResult run_budgeted(const Aig& input, std::uint64_t work_budget, int jobs) {
    LookaheadParams params;
    params.max_iterations = 6;
    params.work_budget = work_budget;
    EngineOptions engine;
    engine.jobs = jobs;
    OptimizeStats stats;
    const Aig out = optimize_timing_engine(input, params, engine, &stats);
    EXPECT_TRUE(stats.verified);
    EXPECT_FALSE(stats.wall_clock_interrupted);
    EXPECT_TRUE(check_equivalence(input, out, 2000000).equivalent);
    std::stringstream aag;
    write_aiger(aag, out);
    return {aag.str(), stats.work_units, stats.budget_exhausted};
}

TEST(Engine, BudgetedRunsAreJobsInvariant) {
    // Budgets chosen to exercise the interesting regimes: 1 (exhausted after
    // the very first round), a mid value (exhausted partway through the run),
    // and a huge value (never binds). Every jobs count must agree byte for
    // byte on the output AND on the work spent.
    const Aig rca = ripple_carry_adder(8);
    for (const std::uint64_t budget : {std::uint64_t{1}, std::uint64_t{100},
                                       std::uint64_t{1} << 62}) {
        const BudgetedResult serial = run_budgeted(rca, budget, 1);
        for (const int jobs : {2, 4}) {
            const BudgetedResult parallel = run_budgeted(rca, budget, jobs);
            EXPECT_EQ(serial.aiger, parallel.aiger) << "budget=" << budget << " jobs=" << jobs;
            EXPECT_EQ(serial.work_units, parallel.work_units)
                << "budget=" << budget << " jobs=" << jobs;
            EXPECT_EQ(serial.budget_exhausted, parallel.budget_exhausted)
                << "budget=" << budget << " jobs=" << jobs;
        }
    }
}

TEST(Engine, BudgetedRunsAreCacheStateInvariant) {
    // The memo must not alter a budgeted trajectory: a run that hits cached
    // cone evaluations has to charge exactly what a cold run would.
    const Aig circuit = ripple_carry_adder(7);
    clear_engine_caches();
    const BudgetedResult cold = run_budgeted(circuit, 60, 2);
    const BudgetedResult warm = run_budgeted(circuit, 60, 2);
    EXPECT_EQ(cold.aiger, warm.aiger);
    EXPECT_EQ(cold.work_units, warm.work_units);
    EXPECT_EQ(cold.budget_exhausted, warm.budget_exhausted);
}

TEST(Engine, BudgetSemantics) {
    const Aig rca = ripple_carry_adder(8);

    // budget=1 still commits one full round: rounds are atomic, exhaustion
    // gates the NEXT round. The run must report exhaustion and still improve
    // (or at least not worsen) the circuit.
    const BudgetedResult tiny = run_budgeted(rca, 1, 2);
    EXPECT_TRUE(tiny.budget_exhausted);
    EXPECT_GE(tiny.work_units, 1u);

    // A budget the run cannot spend is reported as not exhausted, and the
    // result matches the unbudgeted engine exactly.
    const BudgetedResult huge = run_budgeted(rca, std::uint64_t{1} << 62, 2);
    EXPECT_FALSE(huge.budget_exhausted);
    LookaheadParams params;
    params.max_iterations = 6;
    EngineOptions engine;
    engine.jobs = 2;
    const Aig unbudgeted = optimize_timing_engine(rca, params, engine);
    std::stringstream aag;
    write_aiger(aag, unbudgeted);
    EXPECT_EQ(huge.aiger, aag.str());

    // A binding mid-size budget spends no more than allowed... plus at most
    // the final round's overshoot, and strictly less than the huge run.
    const BudgetedResult mid = run_budgeted(rca, 100, 2);
    EXPECT_TRUE(mid.budget_exhausted);
    EXPECT_LT(mid.work_units, huge.work_units);
}

TEST(Engine, MetricsRecordRuns) {
    Metrics& metrics = Metrics::global();
    const std::uint64_t runs_before = metrics.counter("engine.runs").value();
    run(ripple_carry_adder(5), 2);
    EXPECT_GT(metrics.counter("engine.runs").value(), runs_before);
    EXPECT_GT(metrics.timer("engine.evaluate").samples(), 0u);
    const std::string json = metrics.to_json();
    EXPECT_NE(json.find("\"engine.runs\""), std::string::npos);
    EXPECT_NE(json.find("\"caches\""), std::string::npos);
}

}  // namespace
}  // namespace lls
