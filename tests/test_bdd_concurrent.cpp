#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "bdd/bdd.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "tt/truth_table.hpp"

namespace lls {
namespace {

// Concurrency stress suite for the shared BddManager. Everything here is
// meant to run under TSan (tools/run_checks.sh stage 5) as well as in the
// plain build: the assertions check the canonicity contract — identical
// functions yield identical refs no matter which thread built them first —
// and the shared-resource boundaries (global node limit, lossy computed
// table).

TruthTable random_tt(int num_vars, Rng& rng) {
    TruthTable tt(num_vars);
    for (std::uint64_t m = 0; m < tt.num_minterms(); ++m) tt.set_bit(m, rng.next_bool());
    return tt;
}

BddManager::Ref bdd_from_tt(BddManager& m, const TruthTable& tt) {
    BddManager::Ref f = m.bdd_false();
    for (std::uint64_t minterm = 0; minterm < tt.num_minterms(); ++minterm) {
        if (!tt.get_bit(minterm)) continue;
        BddManager::Ref cube = m.bdd_true();
        for (int v = 0; v < tt.num_vars(); ++v) {
            const BddManager::Ref x = m.variable(v);
            cube = m.band(cube, ((minterm >> v) & 1) ? x : m.bnot(x));
        }
        f = m.bor(f, cube);
    }
    return f;
}

// N threads build the *same* function set in one shared manager. Canonicity
// demands every thread ends up holding the identical ref for each function,
// and that a serial rebuild in the same manager reproduces those refs. A
// fresh private manager cross-checks the semantics, so a canonical-but-wrong
// shared build can't pass.
TEST(BddConcurrent, IdenticalBuildsYieldIdenticalRefs) {
    constexpr int kThreads = 8;
    constexpr int kVars = 6;
    constexpr int kFunctions = 10;

    Rng rng(301);
    std::vector<TruthTable> tables;
    for (int i = 0; i < kFunctions; ++i) tables.push_back(random_tt(kVars, rng));

    BddManager shared(kVars);
    std::vector<std::vector<BddManager::Ref>> per_thread(kThreads);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            std::vector<BddManager::Ref> refs;
            for (const TruthTable& tt : tables) {
                const BddManager::Ref f = bdd_from_tt(shared, tt);
                // Exercise the computed table from every thread too: the
                // negation pair must land on complementary canonical refs.
                const BddManager::Ref g = shared.bnot(shared.bnot(f));
                refs.push_back(f);
                EXPECT_EQ(f, g);
            }
            per_thread[t] = std::move(refs);
        });
    }
    for (auto& th : threads) th.join();

    for (int t = 1; t < kThreads; ++t) EXPECT_EQ(per_thread[t], per_thread[0]);

    // Serial rebuild in the now-warm shared manager: pure unique-table and
    // computed-table hits, same refs.
    for (int i = 0; i < kFunctions; ++i)
        EXPECT_EQ(bdd_from_tt(shared, tables[i]), per_thread[0][i]);

    // Semantic cross-check against a cold private manager.
    BddManager serial(kVars);
    for (int i = 0; i < kFunctions; ++i) {
        const BddManager::Ref f = bdd_from_tt(serial, tables[i]);
        for (std::uint64_t x = 0; x < (1ULL << kVars); ++x)
            ASSERT_EQ(shared.evaluate(per_thread[0][i], x), serial.evaluate(f, x))
                << "function " << i << " assignment " << x;
    }
}

// Threads working on *disjoint* functions still share nodes: any common
// subfunction collapses to one ref. Afterwards each thread's result must
// match a serial build of its function inside the same manager.
TEST(BddConcurrent, DisjointWorkloadsStayCanonical) {
    constexpr int kThreads = 8;
    constexpr int kVars = 7;

    std::vector<TruthTable> tables;
    for (int t = 0; t < kThreads; ++t) {
        Rng rng(700 + t);
        tables.push_back(random_tt(kVars, rng));
    }

    BddManager shared(kVars);
    std::vector<BddManager::Ref> results(kThreads);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&, t] { results[t] = bdd_from_tt(shared, tables[t]); });
    for (auto& th : threads) th.join();

    for (int t = 0; t < kThreads; ++t)
        EXPECT_EQ(bdd_from_tt(shared, tables[t]), results[t]) << "thread " << t;
}

// The node limit is one global threshold across every shard: threads
// hammering the manager from all sides must each hit ResourceExhausted
// (never some other failure), and the manager must stay usable afterwards —
// existing refs are intact and allocation-free operations still work.
TEST(BddConcurrent, GlobalNodeLimitUnderContention) {
    constexpr int kThreads = 8;
    constexpr std::size_t kLimit = 256;

    BddManager m(16, kLimit);
    const BddManager::Ref x0 = m.variable(0);
    const BddManager::Ref x1 = m.variable(1);
    const BddManager::Ref warm = m.band(x0, x1);

    std::atomic<int> exhausted{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            Rng rng(900 + t);
            try {
                BddManager::Ref f = m.bdd_false();
                for (int round = 0; round < 64; ++round)
                    f = m.bxor(f, bdd_from_tt(m, random_tt(10, rng)));
                ADD_FAILURE() << "thread " << t << " never hit the node limit";
            } catch (const LlsError& e) {
                EXPECT_EQ(e.kind(), ErrorKind::ResourceExhausted);
                EXPECT_EQ(e.stage(), "bdd");
                exhausted.fetch_add(1, std::memory_order_relaxed);
            }
        });
    }
    for (auto& th : threads) th.join();

    EXPECT_EQ(exhausted.load(), kThreads);
    // Failed allocations roll their reservation back, so the aggregate count
    // settles at (or below) the configured threshold.
    EXPECT_LE(m.num_nodes(), kLimit);
    // The manager survived: existing nodes are readable and hit-only
    // operations succeed.
    EXPECT_EQ(m.band(x0, x1), warm);
    EXPECT_TRUE(m.evaluate(warm, 0b11));
    EXPECT_FALSE(m.evaluate(warm, 0b01));
}

// The computed table is lossy and capacity-bounded: more distinct ITE calls
// than slots force direct-mapped overwrites (counted as evictions), and a
// recomputation after eviction returns the identical canonical ref.
TEST(BddConcurrent, ComputedTableIsLossyNotUnbounded) {
    // node_limit 2048 -> 1024 computed-table slots; 60 variables give
    // 1770 ordered conjunction pairs, so evictions follow by pigeonhole.
    constexpr int kVars = 60;
    BddManager m(kVars, 2048);

    std::vector<BddManager::Ref> first;
    for (int i = 0; i < kVars; ++i)
        for (int j = i + 1; j < kVars; ++j) first.push_back(m.band(m.variable(i), m.variable(j)));

    const BddStats stats = m.stats();
    EXPECT_GT(stats.ite_evictions, 0u);
    EXPECT_GT(stats.ite_misses, stats.ite_hits);  // mostly distinct calls

    std::size_t k = 0;
    for (int i = 0; i < kVars; ++i)
        for (int j = i + 1; j < kVars; ++j)
            EXPECT_EQ(m.band(m.variable(i), m.variable(j)), first[k++]);
}

// Counter sanity: a repeated operation is a computed-table hit, a repeated
// node a unique-table hit.
TEST(BddConcurrent, StatsCountHitsAndMisses) {
    BddManager m(4);
    const BddManager::Ref f = m.band(m.variable(0), m.variable(1));
    // Identical call: satisfied by the computed table.
    EXPECT_EQ(m.band(m.variable(0), m.variable(1)), f);
    // Commuted operands: a different ITE key, so the recursion reruns and
    // rediscovers the existing node in the unique table.
    EXPECT_EQ(m.band(m.variable(1), m.variable(0)), f);
    const BddStats stats = m.stats();
    EXPECT_GE(stats.ite_misses, 1u);
    EXPECT_GE(stats.ite_hits, 1u);
    EXPECT_GE(stats.nodes_created, 3u);  // two variables + the conjunction
    EXPECT_GE(stats.unique_hits, 1u);
}

}  // namespace
}  // namespace lls
