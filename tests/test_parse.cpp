#include "common/parse.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

namespace lls {
namespace {

TEST(ParseInt, AcceptsWholeTokenInRange) {
    int out = -1;
    EXPECT_TRUE(parse_int_option("--n", "0", 0, 100, &out));
    EXPECT_EQ(out, 0);
    EXPECT_TRUE(parse_int_option("--n", "42", 0, 100, &out));
    EXPECT_EQ(out, 42);
    EXPECT_TRUE(parse_int_option("--n", "100", 0, 100, &out));
    EXPECT_EQ(out, 100);
    EXPECT_TRUE(parse_int_option("--n", "-7", -10, 10, &out));
    EXPECT_EQ(out, -7);
}

TEST(ParseInt, RejectsGarbageWithoutTouchingOutput) {
    // std::atoi would have turned each of these into a silently wrong value.
    int out = 1234;
    EXPECT_FALSE(parse_int_option("--n", "xyz", 0, 100, &out));
    EXPECT_FALSE(parse_int_option("--n", "", 0, 100, &out));
    EXPECT_FALSE(parse_int_option("--n", "12x", 0, 100, &out));
    EXPECT_FALSE(parse_int_option("--n", "1 2", 0, 100, &out));
    EXPECT_FALSE(parse_int_option("--n", "0x10", 0, 100, &out));
    EXPECT_EQ(out, 1234);
}

TEST(ParseInt, RejectsOutOfRange) {
    int out = 1234;
    EXPECT_FALSE(parse_int_option("--n", "101", 0, 100, &out));
    EXPECT_FALSE(parse_int_option("--n", "-1", 0, 100, &out));
    EXPECT_FALSE(parse_int_option("--n", "99999999999999999999", 0, 100, &out));
    EXPECT_EQ(out, 1234);
}

TEST(ParseU64, AcceptsFullRange) {
    std::uint64_t out = 0;
    EXPECT_TRUE(parse_u64_option("--b", "0", UINT64_MAX, &out));
    EXPECT_EQ(out, 0u);
    EXPECT_TRUE(parse_u64_option("--b", "18446744073709551615", UINT64_MAX, &out));
    EXPECT_EQ(out, UINT64_MAX);
}

TEST(ParseU64, RejectsNegativeGarbageAndOverflow) {
    std::uint64_t out = 77;
    // strtoull would silently wrap "-1" to UINT64_MAX; the wrapper must not.
    EXPECT_FALSE(parse_u64_option("--b", "-1", UINT64_MAX, &out));
    EXPECT_FALSE(parse_u64_option("--b", "xyz", UINT64_MAX, &out));
    EXPECT_FALSE(parse_u64_option("--b", "", UINT64_MAX, &out));
    EXPECT_FALSE(parse_u64_option("--b", "5five", UINT64_MAX, &out));
    EXPECT_FALSE(parse_u64_option("--b", "18446744073709551616", UINT64_MAX, &out));
    EXPECT_FALSE(parse_u64_option("--b", "11", 10, &out));
    EXPECT_EQ(out, 77u);
}

TEST(ParseJobs, AutoAndZeroMeanWholeMachine) {
    // "auto" and 0 both resolve to the sentinel 0; the caller maps it to
    // ThreadPool::hardware_jobs(). Before this existed, the only way to
    // use the whole machine was to know the core count.
    int out = -1;
    EXPECT_TRUE(parse_jobs_option("--jobs", "auto", 1024, &out));
    EXPECT_EQ(out, 0);
    out = -1;
    EXPECT_TRUE(parse_jobs_option("--jobs", "0", 1024, &out));
    EXPECT_EQ(out, 0);
    EXPECT_TRUE(parse_jobs_option("--jobs", "8", 1024, &out));
    EXPECT_EQ(out, 8);
}

TEST(ParseJobs, RejectsGarbageAndOutOfRange) {
    int out = 7;
    EXPECT_FALSE(parse_jobs_option("--jobs", "automatic", 1024, &out));
    EXPECT_FALSE(parse_jobs_option("--jobs", "Auto", 1024, &out));
    EXPECT_FALSE(parse_jobs_option("--jobs", "-1", 1024, &out));
    EXPECT_FALSE(parse_jobs_option("--jobs", "4x", 1024, &out));
    EXPECT_FALSE(parse_jobs_option("--jobs", "2048", 1024, &out));
    EXPECT_EQ(out, 7);
}

TEST(ParseDuration, AcceptsEveryUnit) {
    double out = -1.0;
    EXPECT_TRUE(parse_duration_option("--d", "500ms", &out));
    EXPECT_DOUBLE_EQ(out, 0.5);
    EXPECT_TRUE(parse_duration_option("--d", "30s", &out));
    EXPECT_DOUBLE_EQ(out, 30.0);
    EXPECT_TRUE(parse_duration_option("--d", "5m", &out));
    EXPECT_DOUBLE_EQ(out, 300.0);
    EXPECT_TRUE(parse_duration_option("--d", "1.5s", &out));
    EXPECT_DOUBLE_EQ(out, 1.5);
    EXPECT_TRUE(parse_duration_option("--d", "0.25m", &out));
    EXPECT_DOUBLE_EQ(out, 15.0);
}

TEST(ParseDuration, RejectsGarbageWithoutTouchingOutput) {
    // A bare number is ambiguous (seconds? ms?) — the unit is mandatory, so
    // "30" is an error, not a silent guess.
    double out = 99.0;
    EXPECT_FALSE(parse_duration_option("--d", "30", &out));
    EXPECT_FALSE(parse_duration_option("--d", "", &out));
    EXPECT_FALSE(parse_duration_option("--d", "ms", &out));
    EXPECT_FALSE(parse_duration_option("--d", "5h", &out));
    EXPECT_FALSE(parse_duration_option("--d", "5 s", &out));
    EXPECT_FALSE(parse_duration_option("--d", "-5s", &out));
    EXPECT_FALSE(parse_duration_option("--d", "1.2.3s", &out));
    EXPECT_FALSE(parse_duration_option("--d", "s5s", &out));
    EXPECT_DOUBLE_EQ(out, 99.0);
}

TEST(ParseSize, AcceptsBytesAndBinarySuffixes) {
    std::uint64_t out = 0;
    EXPECT_TRUE(parse_size_option("--m", "4096", &out));
    EXPECT_EQ(out, 4096u);
    EXPECT_TRUE(parse_size_option("--m", "64M", &out));
    EXPECT_EQ(out, std::uint64_t{64} << 20);
    EXPECT_TRUE(parse_size_option("--m", "1G", &out));
    EXPECT_EQ(out, std::uint64_t{1} << 30);
    EXPECT_TRUE(parse_size_option("--m", "16k", &out));
    EXPECT_EQ(out, std::uint64_t{16} << 10);
    EXPECT_TRUE(parse_size_option("--m", "2g", &out));
    EXPECT_EQ(out, std::uint64_t{2} << 30);
    // 0 parses (it means "off", like the params default).
    EXPECT_TRUE(parse_size_option("--m", "0", &out));
    EXPECT_EQ(out, 0u);
}

TEST(ParseSize, RejectsGarbageWithoutTouchingOutput) {
    std::uint64_t out = 77;
    EXPECT_FALSE(parse_size_option("--m", "", &out));
    EXPECT_FALSE(parse_size_option("--m", "M", &out));       // empty digit run
    EXPECT_FALSE(parse_size_option("--m", "64MB", &out));    // trailing garbage
    EXPECT_FALSE(parse_size_option("--m", "-64M", &out));    // signs
    EXPECT_FALSE(parse_size_option("--m", "1.5G", &out));    // fractions
    EXPECT_FALSE(parse_size_option("--m", "64 M", &out));    // whitespace
    EXPECT_FALSE(parse_size_option("--m", "x64M", &out));
    EXPECT_EQ(out, 77u);
}

TEST(ParseSize, RejectsOverflow) {
    std::uint64_t out = 77;
    // Digit-run overflow and multiplier overflow are both caught.
    EXPECT_FALSE(parse_size_option("--m", "18446744073709551616", &out));
    EXPECT_FALSE(parse_size_option("--m", "18446744073709551615K", &out));
    EXPECT_FALSE(parse_size_option("--m", "99999999999G", &out));
    EXPECT_EQ(out, 77u);
    // The largest representable suffixed values still parse.
    EXPECT_TRUE(parse_size_option("--m", "17179869183G", &out));
    EXPECT_EQ(out, std::uint64_t{17179869183u} << 30);
}

TEST(ParseDuration, RejectsZeroAndNonPositive) {
    // Durations arm watchdogs; zero means "off" and is expressed by not
    // passing the flag, never by "0s".
    double out = 99.0;
    EXPECT_FALSE(parse_duration_option("--d", "0s", &out));
    EXPECT_FALSE(parse_duration_option("--d", "0.0ms", &out));
    EXPECT_DOUBLE_EQ(out, 99.0);
}

}  // namespace
}  // namespace lls
