#include "sop/sop.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "sop/factor.hpp"

namespace lls {
namespace {

TruthTable random_tt(int num_vars, Rng& rng) {
    TruthTable tt(num_vars);
    for (std::uint64_t m = 0; m < tt.num_minterms(); ++m) tt.set_bit(m, rng.next_bool());
    return tt;
}

TEST(Cube, LiteralManipulation) {
    Cube c;
    EXPECT_EQ(c.num_literals(), 0);
    c = c.with_literal(2, true).with_literal(5, false);
    EXPECT_EQ(c.num_literals(), 2);
    EXPECT_TRUE(c.has_literal(2));
    EXPECT_TRUE(c.literal_polarity(2));
    EXPECT_TRUE(c.has_literal(5));
    EXPECT_FALSE(c.literal_polarity(5));
    EXPECT_EQ(c.to_string(6), "--1--0");
    EXPECT_EQ(c.without_literal(2).num_literals(), 1);
}

TEST(Cube, ContainmentAndIntersection) {
    const Cube big = Cube{}.with_literal(0, true);           // x0
    const Cube small = big.with_literal(1, false);           // x0 !x1
    const Cube other = Cube{}.with_literal(0, false);        // !x0
    EXPECT_TRUE(big.contains_cube(small));
    EXPECT_FALSE(small.contains_cube(big));
    EXPECT_TRUE(big.intersects(small));
    EXPECT_FALSE(big.intersects(other));
    EXPECT_TRUE(Cube::tautology().contains_cube(other));
}

TEST(Cube, MintermContainment) {
    const Cube c = Cube{}.with_literal(1, true).with_literal(3, false);
    for (std::uint32_t m = 0; m < 16; ++m)
        EXPECT_EQ(c.contains_minterm(m), ((m >> 1) & 1) == 1 && ((m >> 3) & 1) == 0);
}

TEST(Sop, EvaluateMatchesTruthTable) {
    Sop s(3);
    s.add_cube(Cube{}.with_literal(0, true).with_literal(1, true));   // x0 x1
    s.add_cube(Cube{}.with_literal(2, false));                        // !x2
    const TruthTable tt = s.to_truth_table();
    for (std::uint32_t m = 0; m < 8; ++m) EXPECT_EQ(s.evaluate(m), tt.get_bit(m));
}

TEST(Sop, ContainedCubeRemoval) {
    Sop s(3);
    s.add_cube(Cube{}.with_literal(0, true));
    s.add_cube(Cube{}.with_literal(0, true).with_literal(1, true));  // contained
    s.add_cube(Cube{}.with_literal(0, true));                        // duplicate
    const TruthTable before = s.to_truth_table();
    s.remove_contained_cubes();
    EXPECT_EQ(s.num_cubes(), 1u);
    EXPECT_EQ(s.to_truth_table(), before);
}

TEST(Isop, ExactOnConstants) {
    EXPECT_TRUE(isop(TruthTable::constant(4, false)).empty());
    const Sop one = isop(TruthTable::constant(4, true));
    EXPECT_EQ(one.num_cubes(), 1u);
    EXPECT_EQ(one.cubes()[0].num_literals(), 0);
}

TEST(Isop, CoverIsExactWithoutDontCares) {
    Rng rng(21);
    for (int n = 1; n <= 8; ++n) {
        for (int trial = 0; trial < 10; ++trial) {
            const TruthTable f = random_tt(n, rng);
            EXPECT_EQ(isop(f).to_truth_table(), f) << "n=" << n;
        }
    }
}

TEST(Isop, RespectsBounds) {
    Rng rng(22);
    for (int trial = 0; trial < 30; ++trial) {
        const TruthTable a = random_tt(6, rng);
        const TruthTable b = random_tt(6, rng);
        const TruthTable lower = a & b;
        const TruthTable upper = a | b;
        const TruthTable cover = isop(lower, upper).to_truth_table();
        EXPECT_TRUE(lower.implies(cover));
        EXPECT_TRUE(cover.implies(upper));
    }
}

TEST(Isop, IrredundantCubes) {
    Rng rng(23);
    for (int trial = 0; trial < 20; ++trial) {
        const TruthTable f = random_tt(5, rng);
        const Sop s = isop(f);
        // Dropping any single cube must lose some on-set minterm.
        for (std::size_t i = 0; i < s.num_cubes(); ++i) {
            Sop rest(5);
            for (std::size_t j = 0; j < s.num_cubes(); ++j)
                if (j != i) rest.add_cube(s.cubes()[j]);
            EXPECT_FALSE(f.implies(rest.to_truth_table()))
                << "cube " << i << " is redundant in " << s.to_string();
        }
    }
}

TEST(PrimeImplicants, AllPrimeAndCovering) {
    Rng rng(24);
    for (int trial = 0; trial < 15; ++trial) {
        const TruthTable f = random_tt(4, rng);
        if (f.is_const0()) continue;
        const auto primes = prime_implicants(f);
        // Every prime is an implicant, and dropping any literal breaks that.
        for (const auto& p : primes) {
            Sop sp(4);
            sp.add_cube(p);
            EXPECT_TRUE(sp.to_truth_table().implies(f));
            for (int v = 0; v < 4; ++v) {
                if (!p.has_literal(v)) continue;
                Sop wider(4);
                wider.add_cube(p.without_literal(v));
                EXPECT_FALSE(wider.to_truth_table().implies(f));
            }
        }
        // The union of all primes covers f exactly.
        Sop all(4, primes);
        EXPECT_EQ(all.to_truth_table(), f);
    }
}

TEST(MinimumSop, ExactCoverAndNoRedundantCube) {
    Rng rng(25);
    for (int n = 1; n <= 7; ++n) {
        for (int trial = 0; trial < 8; ++trial) {
            const TruthTable f = random_tt(n, rng);
            Sop s = minimum_sop(f);
            EXPECT_EQ(s.to_truth_table(), f);
            for (std::size_t i = 0; i < s.num_cubes(); ++i) {
                Sop rest(n);
                for (std::size_t j = 0; j < s.num_cubes(); ++j)
                    if (j != i) rest.add_cube(s.cubes()[j]);
                EXPECT_FALSE(f.implies(rest.to_truth_table()));
            }
        }
    }
}

TEST(MinimumSop, UsesDontCares) {
    // f = x0 x1, dc = x0 !x1: a single-literal cover x0 becomes possible.
    const TruthTable x0 = TruthTable::variable(2, 0);
    const TruthTable x1 = TruthTable::variable(2, 1);
    const Sop s = minimum_sop(x0 & x1, x0 & ~x1);
    EXPECT_EQ(s.num_cubes(), 1u);
    EXPECT_EQ(s.num_literals(), 1);
    const TruthTable cover = s.to_truth_table();
    EXPECT_TRUE((x0 & x1).implies(cover));
    EXPECT_TRUE(cover.implies(x0));
}

TEST(Factor, EquivalentToSop) {
    Rng rng(26);
    for (int n = 1; n <= 7; ++n) {
        for (int trial = 0; trial < 10; ++trial) {
            const TruthTable f = random_tt(n, rng);
            const Sop s = isop(f);
            const FactorExpr e = factor(s);
            for (std::uint32_t m = 0; m < (1u << n); ++m)
                EXPECT_EQ(evaluate(e, m), f.get_bit(m)) << e.to_string();
        }
    }
}

TEST(Factor, SharesCommonLiterals) {
    // ab + ac + ad factors as a(b + c + d): 4 literals instead of 6.
    Sop s(4);
    s.add_cube(Cube{}.with_literal(0, true).with_literal(1, true));
    s.add_cube(Cube{}.with_literal(0, true).with_literal(2, true));
    s.add_cube(Cube{}.with_literal(0, true).with_literal(3, true));
    const FactorExpr e = factor(s);
    EXPECT_EQ(e.num_literals(), 4);
}

TEST(Factor, Constants) {
    EXPECT_EQ(factor(Sop(3)).kind, FactorExpr::Kind::Const0);
    Sop taut(3);
    taut.add_cube(Cube::tautology());
    EXPECT_EQ(factor(taut).kind, FactorExpr::Kind::Const1);
}

// Property sweep: ISOP with random don't-care sets stays within bounds and
// is irredundant, across variable counts.
class IsopSweep : public ::testing::TestWithParam<int> {};

TEST_P(IsopSweep, DontCareCoversAreIrredundant) {
    const int n = GetParam();
    Rng rng(300 + n);
    for (int trial = 0; trial < 10; ++trial) {
        const TruthTable f = random_tt(n, rng);
        const TruthTable dc = random_tt(n, rng) & ~f;
        const Sop s = isop(f, f | dc);
        const TruthTable cover = s.to_truth_table();
        EXPECT_TRUE(f.implies(cover));
        EXPECT_TRUE(cover.implies(f | dc));
        for (std::size_t i = 0; i < s.num_cubes(); ++i) {
            Sop rest(n);
            for (std::size_t j = 0; j < s.num_cubes(); ++j)
                if (j != i) rest.add_cube(s.cubes()[j]);
            EXPECT_FALSE(f.implies(rest.to_truth_table()));
        }
    }
}

INSTANTIATE_TEST_SUITE_P(VarCounts, IsopSweep, ::testing::Values(2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace lls
