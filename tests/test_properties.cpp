// Cross-module randomized property tests: every transformation in the
// library must preserve functional equivalence on arbitrary circuits, and
// the structural metrics must behave monotonically. Each property is swept
// over many seeds via TEST_P.

#include <gtest/gtest.h>

#include <sstream>

#include "aig/aig_build.hpp"
#include "baseline/flows.hpp"
#include "baseline/permissible.hpp"
#include "baseline/restructure.hpp"
#include "baseline/select_transform.hpp"
#include "cec/cec.hpp"
#include "exact/rewrite.hpp"
#include "io/blif.hpp"
#include "io/generators.hpp"
#include "lookahead/optimize.hpp"
#include "network/network.hpp"

namespace lls {
namespace {

/// Random multi-output AIG with mixed AND/OR/XOR/MUX structure.
Aig random_circuit(std::uint64_t seed, std::size_t num_pis = 8, std::size_t num_nodes = 40,
                   std::size_t num_pos = 4) {
    Rng rng(seed);
    Aig aig;
    std::vector<AigLit> pool;
    for (std::size_t i = 0; i < num_pis; ++i) pool.push_back(aig.add_pi());
    for (std::size_t i = 0; i < num_nodes; ++i) {
        auto pick = [&]() {
            AigLit l = pool[rng.next_below(pool.size())];
            return rng.next_bool() ? !l : l;
        };
        const AigLit x = pick(), y = pick(), z = pick();
        switch (rng.next_below(4)) {
            case 0: pool.push_back(aig.land(x, y)); break;
            case 1: pool.push_back(aig.lor(x, y)); break;
            case 2: pool.push_back(aig.lxor(x, y)); break;
            default: pool.push_back(aig.lmux(x, y, z)); break;
        }
    }
    for (std::size_t o = 0; o < num_pos; ++o)
        aig.add_po(pool[pool.size() - 1 - o]);
    return aig.cleanup();
}

class SeedSweep : public ::testing::TestWithParam<int> {
protected:
    std::uint64_t seed() const { return static_cast<std::uint64_t>(GetParam()); }
};

TEST_P(SeedSweep, CleanupPreservesFunction) {
    const Aig aig = random_circuit(seed());
    EXPECT_TRUE(check_equivalence(aig, aig.cleanup()).equivalent);
}

TEST_P(SeedSweep, NetworkRoundTripPreservesFunction) {
    const Aig aig = random_circuit(seed());
    for (const int k : {3, 4, 6}) {
        const Network net = Network::from_aig(aig, k, 6);
        EXPECT_TRUE(check_equivalence(aig, net.to_aig()).equivalent) << "cut size " << k;
    }
}

TEST_P(SeedSweep, NetworkSopDepthBoundsNothingBelowZero) {
    const Aig aig = random_circuit(seed());
    const Network net = Network::from_aig(aig, 5, 8);
    const auto levels = net.compute_sop_levels();
    for (std::uint32_t id = 0; id < net.num_nodes(); ++id) {
        EXPECT_GE(levels[id], 0);
        if (!net.is_internal(id)) {
            EXPECT_EQ(levels[id], 0);
        }
    }
}

TEST_P(SeedSweep, BalancePreservesFunctionAndNeverDeepens) {
    const Aig aig = random_circuit(seed());
    const Aig balanced = balance(aig);
    EXPECT_TRUE(check_equivalence(aig, balanced).equivalent);
    EXPECT_LE(balanced.depth(), aig.depth());
}

TEST_P(SeedSweep, RestructurePreservesFunction) {
    const Aig aig = random_circuit(seed());
    RestructureOptions delay;
    delay.delay_oriented = true;
    RestructureOptions area;
    area.delay_oriented = false;
    EXPECT_TRUE(check_equivalence(aig, restructure(aig, delay)).equivalent);
    EXPECT_TRUE(check_equivalence(aig, restructure(aig, area)).equivalent);
}

TEST_P(SeedSweep, SatSweepPreservesFunctionAndNeverGrows) {
    const Aig aig = random_circuit(seed());
    Rng rng(seed() ^ 0xabcdef);
    const Aig swept = sat_sweep(aig, rng);
    EXPECT_TRUE(check_equivalence(aig, swept).equivalent);
    EXPECT_LE(swept.count_reachable_ands(), aig.count_reachable_ands());
}

TEST_P(SeedSweep, BlifRoundTripPreservesFunction) {
    const Aig aig = random_circuit(seed());
    std::stringstream ss;
    write_blif(ss, aig, "prop");
    EXPECT_TRUE(check_equivalence(aig, read_blif(ss)).equivalent);
}

TEST_P(SeedSweep, OptimizeTimingIsSoundAndNeverDeepens) {
    const Aig aig = random_circuit(seed());
    LookaheadParams params;
    params.max_iterations = 3;
    OptimizeStats stats;
    const Aig out = optimize_timing(aig, params, &stats);
    EXPECT_TRUE(stats.verified);
    EXPECT_TRUE(check_equivalence(aig, out).equivalent);
    EXPECT_LE(out.depth(), aig.depth());
}

TEST_P(SeedSweep, TimedTruthTableBuilderIsExact) {
    Rng rng(seed());
    const int n = 2 + static_cast<int>(rng.next_below(4));
    TruthTable tt(n);
    for (std::uint64_t m = 0; m < tt.num_minterms(); ++m) tt.set_bit(m, rng.next_bool());

    Aig aig;
    AigLevelTracker levels(aig);
    std::vector<AigLit> pis;
    for (int i = 0; i < n; ++i) pis.push_back(aig.add_pi());
    // Give the builder skewed arrivals by wrapping some PIs in chains.
    for (auto& pi : pis)
        if (rng.next_bool()) pi = aig.land(pi, aig.land(pi, pis[0]));
    const AigLit out = build_truth_table_timed(aig, tt, pis, levels);
    aig.add_po(out, "y");

    const SimPatterns patterns = SimPatterns::exhaustive(static_cast<std::size_t>(n));
    const auto sigs = simulate(aig, patterns);
    const Signature got = literal_signature(aig, aig.po(0), sigs, patterns.num_patterns());
    for (std::uint64_t m = 0; m < tt.num_minterms(); ++m) {
        // Re-evaluate through the possibly-wrapped PI literals: wrapping
        // with land(pi, land(pi, pis0)) = pi & pis0, so recompute expected
        // from actual PI signatures instead.
        std::uint32_t minterm = 0;
        for (int i = 0; i < n; ++i)
            if ((sigs[pis[static_cast<std::size_t>(i)].node()][m >> 6] >> (m & 63)) & 1)
                minterm |= 1u << i;
        EXPECT_EQ(((got[m >> 6] >> (m & 63)) & 1) != 0, tt.get_bit(minterm));
    }
}

TEST_P(SeedSweep, FlowsAgreeOnFunction) {
    const Aig aig = random_circuit(seed(), 10, 60, 5);
    Rng rng(seed() + 17);
    EXPECT_TRUE(check_equivalence(aig, flow_sis(aig, rng)).equivalent);
    EXPECT_TRUE(check_equivalence(aig, flow_abc(aig, rng)).equivalent);
    EXPECT_TRUE(check_equivalence(aig, flow_dc(aig, rng)).equivalent);
}

TEST_P(SeedSweep, ExactRewritePreservesFunction) {
    const Aig aig = random_circuit(seed(), 8, 50, 4);
    RewriteOptions area, delay;
    delay.delay_oriented = true;
    EXPECT_TRUE(check_equivalence(aig, rewrite(aig, area)).equivalent);
    const Aig fast = rewrite(aig, delay);
    EXPECT_TRUE(check_equivalence(aig, fast).equivalent);
    EXPECT_LE(fast.depth(), aig.depth());
}

TEST_P(SeedSweep, SelectTransformPreservesFunction) {
    const Aig aig = random_circuit(seed(), 9, 55, 3);
    const Aig out = generalized_select_transform(aig);
    EXPECT_TRUE(check_equivalence(aig, out).equivalent);
    EXPECT_LE(out.depth(), aig.depth());
}

TEST_P(SeedSweep, PermissibleSimplifyPreservesFunction) {
    const Aig aig = random_circuit(seed(), 8, 45, 4);
    const Aig out = permissible_function_simplify(aig);
    EXPECT_TRUE(check_equivalence(aig, out).equivalent);
    EXPECT_LE(out.count_reachable_ands(), aig.count_reachable_ands());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep, ::testing::Range(1, 13));

// Wider circuits exercise the sampled-signature paths (> 14 PIs).
class WideSeedSweep : public ::testing::TestWithParam<int> {};

TEST_P(WideSeedSweep, SampledPathsStaySound) {
    const std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
    const Aig aig = random_circuit(seed, 20, 80, 6);
    ASSERT_GT(aig.num_pis(), static_cast<std::size_t>(SimPatterns::kMaxExhaustivePis));
    LookaheadParams params;
    params.max_iterations = 2;
    const Aig out = optimize_timing(aig, params);
    EXPECT_TRUE(check_equivalence(aig, out, 2000000).equivalent);
    EXPECT_LE(out.depth(), aig.depth());
}

INSTANTIATE_TEST_SUITE_P(Seeds, WideSeedSweep, ::testing::Range(100, 106));

}  // namespace
}  // namespace lls
