#include "mapping/netlist.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "io/generators.hpp"
#include "mapping/mapper.hpp"
#include "sim/simulation.hpp"

namespace lls {
namespace {

/// The central mapping property: the gate-level netlist computes exactly
/// the same function as the AIG it was mapped from.
void expect_netlist_matches_aig(const Aig& aig, const Netlist& netlist,
                                std::size_t max_patterns = 4096) {
    Rng rng(99);
    const SimPatterns patterns =
        aig.num_pis() <= SimPatterns::kMaxExhaustivePis
            ? SimPatterns::exhaustive(aig.num_pis())
            : SimPatterns::random(aig.num_pis(), max_patterns, rng);
    const auto sigs = simulate(aig, patterns);
    std::vector<bool> inputs(aig.num_pis());
    for (std::size_t p = 0; p < patterns.num_patterns(); ++p) {
        for (std::size_t i = 0; i < aig.num_pis(); ++i) inputs[i] = patterns.pi_value(i, p);
        const std::vector<bool> outs = netlist.evaluate(inputs);
        ASSERT_EQ(outs.size(), aig.num_pos());
        for (std::size_t o = 0; o < aig.num_pos(); ++o) {
            const Signature sig = literal_signature(aig, aig.po(o), sigs, patterns.num_patterns());
            ASSERT_EQ(outs[o], ((sig[p >> 6] >> (p & 63)) & 1) != 0)
                << "pattern " << p << " po " << o;
        }
    }
}

TEST(Netlist, MappedAdderComputesAddition) {
    const CellLibrary lib = CellLibrary::generic_70nm();
    const Aig rca = ripple_carry_adder(5);
    const Netlist netlist = map_to_netlist(rca, lib);
    expect_netlist_matches_aig(rca, netlist);
}

TEST(Netlist, MappedClaAndWideCircuits) {
    const CellLibrary lib = CellLibrary::generic_70nm();
    const Aig cla = carry_lookahead_adder(12);  // 25 PIs -> sampled check
    expect_netlist_matches_aig(cla, map_to_netlist(cla, lib), 2048);
}

TEST(Netlist, MappedControlLogic) {
    const CellLibrary lib = CellLibrary::generic_70nm();
    const Aig circuit = synthetic_control_circuit({"nl", 12, 6, 10, 8, 77});
    expect_netlist_matches_aig(circuit, map_to_netlist(circuit, lib));
}

TEST(Netlist, DegenerateOutputs) {
    const CellLibrary lib = CellLibrary::generic_70nm();
    Aig aig;
    const AigLit a = aig.add_pi("a");
    aig.add_po(AigLit::constant(false), "zero");
    aig.add_po(AigLit::constant(true), "one");
    aig.add_po(a, "pass");
    aig.add_po(!a, "npass");
    const Netlist netlist = map_to_netlist(aig, lib);
    EXPECT_EQ(netlist.evaluate({false}), (std::vector<bool>{false, true, false, true}));
    EXPECT_EQ(netlist.evaluate({true}), (std::vector<bool>{false, true, true, false}));
}

TEST(Netlist, StaMatchesMapperDelay) {
    const CellLibrary lib = CellLibrary::generic_70nm();
    const Aig rca = ripple_carry_adder(8);
    const Netlist netlist = map_to_netlist(rca, lib);
    const MappedCircuit mapped = map_circuit(rca, lib);
    EXPECT_DOUBLE_EQ(netlist.critical_delay_ps(), mapped.delay_ps);
    EXPECT_DOUBLE_EQ(netlist.total_area(), mapped.area);
    EXPECT_EQ(netlist.num_gates(), mapped.num_gates);
}

TEST(Netlist, ArrivalTimesAreMonotone) {
    const CellLibrary lib = CellLibrary::generic_70nm();
    const Aig rca = ripple_carry_adder(6);
    const Netlist netlist = map_to_netlist(rca, lib);
    const auto arrival = netlist.arrival_times();
    for (const auto& g : netlist.gates())
        for (const auto in : g.inputs)
            EXPECT_GT(arrival[g.output], arrival[in]);
}

TEST(Netlist, SlacksAreNonNegativeAtCriticalTarget) {
    const CellLibrary lib = CellLibrary::generic_70nm();
    const Aig rca = ripple_carry_adder(8);
    const Netlist netlist = map_to_netlist(rca, lib);
    const auto slack = netlist.slacks();
    for (const auto& g : netlist.gates())
        EXPECT_GE(slack[g.output], -1e-9);
    // At the critical target the worst slack is exactly zero.
    double worst = 1e18;
    for (std::size_t o = 0; o < netlist.num_outputs(); ++o)
        worst = std::min(worst, slack[netlist.output_net(o)]);
    EXPECT_NEAR(worst, 0.0, 1e-9);
}

TEST(Netlist, CriticalPathIsConnectedAndZeroSlack) {
    const CellLibrary lib = CellLibrary::generic_70nm();
    const Aig rca = ripple_carry_adder(10);
    const Netlist netlist = map_to_netlist(rca, lib);
    const auto path = netlist.critical_path();
    ASSERT_FALSE(path.empty());
    const auto slack = netlist.slacks();
    const auto arrival = netlist.arrival_times();
    double sum = 0.0;
    for (std::size_t i = 0; i < path.size(); ++i) {
        const auto& g = netlist.gates()[path[i]];
        sum += lib.cell(g.cell).delay_ps;
        EXPECT_NEAR(slack[g.output], 0.0, 1e-9) << "gate " << i << " off the critical path";
        if (i + 1 < path.size()) {
            // Consecutive path gates must be connected output -> input.
            const auto& next = netlist.gates()[path[i + 1]];
            EXPECT_NE(std::find(next.inputs.begin(), next.inputs.end(), g.output),
                      next.inputs.end());
        }
    }
    EXPECT_NEAR(sum, netlist.critical_delay_ps(), 1e-9);
    EXPECT_NEAR(arrival[netlist.gates()[path.back()].output], netlist.critical_delay_ps(), 1e-9);
}

TEST(Netlist, RelaxedTargetGivesUniformExtraSlack) {
    const CellLibrary lib = CellLibrary::generic_70nm();
    const Aig rca = ripple_carry_adder(4);
    const Netlist netlist = map_to_netlist(rca, lib);
    const double target = netlist.critical_delay_ps() + 100.0;
    const auto tight = netlist.slacks();
    const auto relaxed = netlist.slacks(target);
    for (const auto& g : netlist.gates())
        EXPECT_NEAR(relaxed[g.output] - tight[g.output], 100.0, 1e-9);
}

TEST(Netlist, InvertersAreShared) {
    // Two POs needing the complement of the same signal must share one INV.
    const CellLibrary lib = CellLibrary::generic_70nm();
    Aig aig;
    const AigLit a = aig.add_pi("a");
    const AigLit b = aig.add_pi("b");
    const AigLit x = aig.land(a, b);
    aig.add_po(!x, "y0");
    aig.add_po(!x, "y1");
    const Netlist netlist = map_to_netlist(aig, lib);
    int inverters = 0;
    for (const auto& g : netlist.gates())
        if (lib.cell(g.cell).name == "INV") ++inverters;
    EXPECT_LE(inverters, 1);  // NAND2 mapping may even avoid it entirely
}

TEST(Netlist, VerilogDumpIsWellFormed) {
    const CellLibrary lib = CellLibrary::generic_70nm();
    const Aig rca = ripple_carry_adder(3);
    const Netlist netlist = map_to_netlist(rca, lib);
    std::stringstream ss;
    netlist.write_verilog(ss, "adder3");
    const std::string text = ss.str();
    EXPECT_NE(text.find("module adder3"), std::string::npos);
    EXPECT_NE(text.find("endmodule"), std::string::npos);
    EXPECT_NE(text.find("input a0;"), std::string::npos);
    EXPECT_NE(text.find("output cout;"), std::string::npos);
    // One instance line per gate.
    std::size_t instances = 0, pos = 0;
    while ((pos = text.find(" g", pos)) != std::string::npos) {
        ++instances;
        ++pos;
    }
    EXPECT_GE(instances, netlist.num_gates());
}

}  // namespace
}  // namespace lls
