#include "tt/truth_table.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "tt/npn.hpp"

namespace lls {
namespace {

TruthTable random_tt(int num_vars, Rng& rng) {
    TruthTable tt(num_vars);
    for (std::uint64_t m = 0; m < tt.num_minterms(); ++m) tt.set_bit(m, rng.next_bool());
    return tt;
}

TEST(TruthTable, ConstantsAndVariables) {
    const TruthTable zero = TruthTable::constant(3, false);
    const TruthTable one = TruthTable::constant(3, true);
    EXPECT_TRUE(zero.is_const0());
    EXPECT_TRUE(one.is_const1());
    EXPECT_EQ(zero.count_ones(), 0u);
    EXPECT_EQ(one.count_ones(), 8u);

    for (int v = 0; v < 3; ++v) {
        const TruthTable x = TruthTable::variable(3, v);
        EXPECT_EQ(x.count_ones(), 4u);
        for (std::uint64_t m = 0; m < 8; ++m) EXPECT_EQ(x.get_bit(m), ((m >> v) & 1) != 0);
    }
}

TEST(TruthTable, VariableAboveWordBoundary) {
    // 8 variables: variable 7 spans whole words.
    const TruthTable x7 = TruthTable::variable(8, 7);
    for (std::uint64_t m = 0; m < 256; ++m) EXPECT_EQ(x7.get_bit(m), ((m >> 7) & 1) != 0);
    EXPECT_TRUE(x7.has_var(7));
    EXPECT_FALSE(x7.has_var(3));
}

TEST(TruthTable, BooleanOperators) {
    const TruthTable a = TruthTable::variable(2, 0);
    const TruthTable b = TruthTable::variable(2, 1);
    EXPECT_EQ((a & b).to_binary(), "1000");
    EXPECT_EQ((a | b).to_binary(), "1110");
    EXPECT_EQ((a ^ b).to_binary(), "0110");
    EXPECT_EQ((~a).to_binary(), "0101");
}

TEST(TruthTable, ImpliesIsPartialOrder) {
    Rng rng(11);
    for (int trial = 0; trial < 50; ++trial) {
        const TruthTable f = random_tt(5, rng);
        const TruthTable g = random_tt(5, rng);
        EXPECT_TRUE(f.implies(f));
        EXPECT_TRUE((f & g).implies(f));
        EXPECT_TRUE(f.implies(f | g));
        EXPECT_EQ(f.implies(g), (f & ~g).is_const0());
    }
}

TEST(TruthTable, CofactorShannonExpansion) {
    Rng rng(12);
    for (int n = 1; n <= 8; ++n) {
        const TruthTable f = random_tt(n, rng);
        for (int v = 0; v < n; ++v) {
            const TruthTable c0 = f.cofactor(v, false);
            const TruthTable c1 = f.cofactor(v, true);
            EXPECT_FALSE(c0.has_var(v));
            EXPECT_FALSE(c1.has_var(v));
            const TruthTable x = TruthTable::variable(n, v);
            EXPECT_EQ(f, (x & c1) | (~x & c0)) << "n=" << n << " v=" << v;
        }
    }
}

TEST(TruthTable, SwapAndPermute) {
    Rng rng(13);
    const TruthTable f = random_tt(4, rng);
    const TruthTable swapped = f.swap_vars(1, 3);
    for (std::uint64_t m = 0; m < 16; ++m) {
        std::uint64_t sm = m & ~0xaULL;  // clear bits 1 and 3
        if ((m >> 1) & 1) sm |= 8;
        if ((m >> 3) & 1) sm |= 2;
        EXPECT_EQ(swapped.get_bit(m), f.get_bit(sm));
    }
    EXPECT_EQ(swapped.swap_vars(1, 3), f);

    // Identity permutation is a no-op; a rotation applied num_vars times is
    // the identity.
    EXPECT_EQ(f.permute({0, 1, 2, 3}), f);
    TruthTable rotated = f;
    for (int i = 0; i < 4; ++i) rotated = rotated.permute({1, 2, 3, 0});
    EXPECT_EQ(rotated, f);
}

TEST(TruthTable, ExtendAndShrink) {
    Rng rng(14);
    const TruthTable f = random_tt(3, rng);
    const TruthTable g = f.extend(7);
    EXPECT_EQ(g.num_vars(), 7);
    for (int v = 3; v < 7; ++v) EXPECT_FALSE(g.has_var(v));
    for (std::uint64_t m = 0; m < 128; ++m) EXPECT_EQ(g.get_bit(m), f.get_bit(m & 7));
    EXPECT_EQ(g.shrink(3), f);
}

TEST(TruthTable, ShrinkRejectsSupportVariable) {
    const TruthTable x2 = TruthTable::variable(3, 2);
    EXPECT_THROW((void)x2.shrink(2), ContractViolation);
}

TEST(TruthTable, HexRoundTrip) {
    Rng rng(15);
    for (int n = 0; n <= 9; ++n) {
        const TruthTable f = random_tt(n, rng);
        EXPECT_EQ(TruthTable::from_hex(n, f.to_hex()), f) << "n=" << n;
    }
}

TEST(TruthTable, HashDiscriminates) {
    Rng rng(16);
    const TruthTable f = random_tt(6, rng);
    TruthTable g = f;
    g.set_bit(17, !g.get_bit(17));
    EXPECT_NE(f.hash(), g.hash());
    EXPECT_EQ(f.hash(), TruthTable(f).hash());
}

TEST(Npn, ApplyInvertsConsistently) {
    Rng rng(17);
    for (int trial = 0; trial < 20; ++trial) {
        const TruthTable f = random_tt(3, rng);
        const NpnResult r = npn_canonize(f);
        // Re-applying the recorded transform to f must give the canonical form.
        EXPECT_EQ(npn_apply(f, r.perm, r.input_negation, r.output_negation), r.canonical);
    }
}

TEST(Npn, EquivalentFunctionsShareCanonicalForm) {
    Rng rng(18);
    for (int trial = 0; trial < 20; ++trial) {
        const TruthTable f = random_tt(4, rng);
        // Scramble f by a random NPN transform; canonical forms must agree.
        std::vector<int> perm{0, 1, 2, 3};
        for (int i = 3; i > 0; --i)
            std::swap(perm[static_cast<std::size_t>(i)],
                      perm[rng.next_below(static_cast<std::uint64_t>(i) + 1)]);
        const unsigned neg = static_cast<unsigned>(rng.next_below(16));
        const bool oneg = rng.next_bool();
        const TruthTable g = npn_apply(f, perm, neg, oneg);
        EXPECT_EQ(npn_canonize(f).canonical, npn_canonize(g).canonical);
    }
}

TEST(Npn, DistinguishesInequivalentClasses) {
    const TruthTable and2 = TruthTable::variable(2, 0) & TruthTable::variable(2, 1);
    const TruthTable xor2 = TruthTable::variable(2, 0) ^ TruthTable::variable(2, 1);
    EXPECT_NE(npn_canonize(and2).canonical, npn_canonize(xor2).canonical);
}

// Parameterized sweep: cofactor/smooth algebra over many variable counts.
class TruthTableSweep : public ::testing::TestWithParam<int> {};

TEST_P(TruthTableSweep, SmoothRemovesVariable) {
    Rng rng(100 + GetParam());
    const int n = GetParam();
    const TruthTable f = random_tt(n, rng);
    for (int v = 0; v < n; ++v) {
        const TruthTable s = f.smooth(v);
        EXPECT_FALSE(s.has_var(v));
        EXPECT_TRUE(f.implies(s));  // existential abstraction is an upper bound
    }
}

TEST_P(TruthTableSweep, DeMorgan) {
    Rng rng(200 + GetParam());
    const int n = GetParam();
    const TruthTable f = random_tt(n, rng);
    const TruthTable g = random_tt(n, rng);
    EXPECT_EQ(~(f & g), ~f | ~g);
    EXPECT_EQ(~(f | g), ~f & ~g);
    EXPECT_EQ(f ^ g, (f & ~g) | (~f & g));
}

INSTANTIATE_TEST_SUITE_P(VarCounts, TruthTableSweep, ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 10));

}  // namespace
}  // namespace lls
