#include "baseline/select_transform.hpp"

#include <gtest/gtest.h>

#include "aig/aig_build.hpp"
#include "cec/cec.hpp"
#include "io/generators.hpp"
#include "sim/simulation.hpp"

namespace lls {
namespace {

TEST(CofactorInternal, ReplacesNodeWithConstant) {
    Aig aig;
    const AigLit a = aig.add_pi("a");
    const AigLit b = aig.add_pi("b");
    const AigLit c = aig.add_pi("c");
    const AigLit ab = aig.land(a, b);
    aig.add_po(aig.lor(ab, c), "y");

    const Aig cof0 = cofactor_internal(aig, ab.node(), false);
    const Aig cof1 = cofactor_internal(aig, ab.node(), true);
    // y|ab=0 == c, y|ab=1 == 1.
    const SimPatterns patterns = SimPatterns::exhaustive(3);
    const auto s0 = simulate(cof0, patterns);
    const auto s1 = simulate(cof1, patterns);
    const Signature y0 = literal_signature(cof0, cof0.po(0), s0, 8);
    const Signature y1 = literal_signature(cof1, cof1.po(0), s1, 8);
    for (std::size_t p = 0; p < 8; ++p) {
        EXPECT_EQ(((y0[0] >> p) & 1) != 0, patterns.pi_value(2, p));
        EXPECT_TRUE((y1[0] >> p) & 1);
    }
}

TEST(CofactorInternal, ShannonExpansionHolds) {
    // mux(s, cone|s=1, cone|s=0) must equal the original cone for any
    // internal signal s -- the identity the select transform relies on.
    const Aig rca = ripple_carry_adder(4);
    const Aig cone = extract_cone(rca, rca.num_pos() - 1);
    const auto levels = cone.compute_levels();
    for (std::uint32_t s = 1; s < cone.num_nodes(); ++s) {
        if (!cone.is_and(s) || levels[s] != 4) continue;  // spot-check one level band
        const Aig c0 = cofactor_internal(cone, s, false);
        const Aig c1 = cofactor_internal(cone, s, true);
        Aig rebuilt;
        std::vector<AigLit> pis;
        for (std::size_t i = 0; i < cone.num_pis(); ++i) rebuilt.add_pi(cone.pi_name(i));
        for (std::size_t i = 0; i < cone.num_pis(); ++i) pis.push_back(rebuilt.pi_lit(i));
        std::vector<AigLit> map;
        (void)append_aig(rebuilt, cone, pis, &map);
        const AigLit y0 = append_aig(rebuilt, c0, pis)[0];
        const AigLit y1 = append_aig(rebuilt, c1, pis)[0];
        rebuilt.add_po(rebuilt.lmux(map[s], y1, y0), "y");
        EXPECT_TRUE(check_equivalence(cone, extract_cone(rebuilt, 0)).equivalent)
            << "signal " << s;
    }
}

TEST(SelectTransform, PreservesFunctionOnAdders) {
    for (const int bits : {4, 8}) {
        const Aig rca = ripple_carry_adder(bits);
        const Aig out = generalized_select_transform(rca);
        EXPECT_TRUE(check_equivalence(rca, out).equivalent) << bits;
        EXPECT_LE(out.depth(), rca.depth()) << bits;
    }
}

TEST(SelectTransform, ReducesRippleCarryDepth) {
    // The transform's motivating example: a carry chain turns into nested
    // carry-select blocks.
    const Aig rca = ripple_carry_adder(8);
    const Aig out = generalized_select_transform(rca);
    EXPECT_LT(out.depth(), rca.depth());
}

TEST(SelectTransform, PreservesFunctionOnControlLogic) {
    const Aig circuit = synthetic_control_circuit({"sel", 14, 5, 10, 8, 33});
    const Aig out = generalized_select_transform(circuit);
    EXPECT_TRUE(check_equivalence(circuit, out).equivalent);
    EXPECT_LE(out.depth(), circuit.depth());
}

}  // namespace
}  // namespace lls
