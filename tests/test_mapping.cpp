#include "mapping/mapper.hpp"

#include <gtest/gtest.h>

#include "io/generators.hpp"

namespace lls {
namespace {

TEST(Library, ContainsBasicCells) {
    const CellLibrary lib = CellLibrary::generic_70nm();
    EXPECT_GE(lib.cells().size(), 15u);
    EXPECT_GE(lib.inverter_index(), 0);
    EXPECT_EQ(lib.cell(lib.inverter_index()).name, "INV");
}

TEST(Library, MatchesAndFamilies) {
    const CellLibrary lib = CellLibrary::generic_70nm();
    // a & b
    TruthTable and2(2);
    and2.set_bit(3, true);
    const auto m = lib.match(and2);
    ASSERT_TRUE(m.has_value());
    // Whatever cell is chosen, applying the recorded transform must
    // reproduce the requested function.
    const Cell& cell = lib.cell(m->cell);
    for (std::uint32_t minterm = 0; minterm < 4; ++minterm) {
        std::uint32_t cm = 0;
        for (int pin = 0; pin < cell.num_inputs; ++pin) {
            bool v = (minterm >> m->leaf_of_pin[static_cast<std::size_t>(pin)]) & 1;
            if ((m->input_neg >> pin) & 1) v = !v;
            if (v) cm |= 1u << pin;
        }
        EXPECT_EQ(cell.function.get_bit(cm) != m->output_neg, and2.get_bit(minterm));
    }
}

TEST(Library, MatchesXorAndMux) {
    const CellLibrary lib = CellLibrary::generic_70nm();
    TruthTable x(2);
    x.set_bit(1, true);
    x.set_bit(2, true);
    ASSERT_TRUE(lib.match(x).has_value());
    EXPECT_EQ(lib.cell(lib.match(x)->cell).name, "XOR2");

    TruthTable mux = TruthTable::from_hex(3, "ca");
    ASSERT_TRUE(lib.match(mux).has_value());
    EXPECT_EQ(lib.cell(lib.match(mux)->cell).name, "MUX2");
}

TEST(Library, MatchRespectsPermutationAndNegation) {
    const CellLibrary lib = CellLibrary::generic_70nm();
    // !(a + b + c + d) = NOR4 regardless of literal polarities tested.
    TruthTable f = TruthTable::constant(4, true);
    for (int v = 0; v < 4; ++v) f &= ~TruthTable::variable(4, v);
    const auto m = lib.match(f);
    ASSERT_TRUE(m.has_value());
    // NAND4 with negated inputs and output also realizes this function and
    // is faster than NOR4; accept either, but the transform must be exact.
    const Cell& cell = lib.cell(m->cell);
    for (std::uint32_t minterm = 0; minterm < 16; ++minterm) {
        std::uint32_t cm = 0;
        for (int pin = 0; pin < cell.num_inputs; ++pin) {
            bool v = (minterm >> m->leaf_of_pin[static_cast<std::size_t>(pin)]) & 1;
            if ((m->input_neg >> pin) & 1) v = !v;
            if (v) cm |= 1u << pin;
        }
        EXPECT_EQ(cell.function.get_bit(cm) != m->output_neg, f.get_bit(minterm));
    }
    // AOI21 with permuted pins.
    TruthTable aoi = TruthTable::from_hex(3, "07").swap_vars(0, 2);
    const auto m2 = lib.match(aoi);
    ASSERT_TRUE(m2.has_value());
}

TEST(Library, NoMatchForExoticFourInput) {
    const CellLibrary lib = CellLibrary::generic_70nm();
    // 4-input XOR is not in the library and is NPN-inequivalent to all cells.
    TruthTable x4(4);
    for (std::uint64_t m = 0; m < 16; ++m)
        x4.set_bit(m, (__builtin_popcountll(m) & 1) != 0);
    EXPECT_FALSE(lib.match(x4).has_value());
}

TEST(Mapper, MapsAddersWithSaneMetrics) {
    const CellLibrary lib = CellLibrary::generic_70nm();
    const Aig rca = ripple_carry_adder(8);
    const MappedCircuit mapped = map_circuit(rca, lib);
    EXPECT_GT(mapped.num_gates, 0u);
    EXPECT_GT(mapped.delay_ps, 0.0);
    EXPECT_GT(mapped.area, 0.0);
    EXPECT_GT(mapped.power_mw, 0.0);
    std::size_t histogram_total = 0;
    for (const auto& [name, count] : mapped.cell_histogram)
        histogram_total += static_cast<std::size_t>(count);
    EXPECT_EQ(histogram_total, mapped.num_gates);
}

TEST(Mapper, ShallowCircuitMapsFaster) {
    const CellLibrary lib = CellLibrary::generic_70nm();
    const Aig rca = ripple_carry_adder(16);
    const Aig cla = carry_lookahead_adder(16);
    const MappedCircuit m_rca = map_circuit(rca, lib);
    const MappedCircuit m_cla = map_circuit(cla, lib);
    EXPECT_LT(m_cla.delay_ps, m_rca.delay_ps);
}

TEST(Mapper, SingleXorMapsToAnXorFamilyCell) {
    const CellLibrary lib = CellLibrary::generic_70nm();
    Aig aig;
    const AigLit a = aig.add_pi();
    const AigLit b = aig.add_pi();
    aig.add_po(aig.lxor(a, b), "x");
    const MappedCircuit mapped = map_circuit(aig, lib);
    // The AIG realization of XOR has a complemented output edge, so the
    // node itself is an XNOR; a single-phase mapper emits XNOR2 (+ one
    // inverter for the output polarity).
    EXPECT_LE(mapped.num_gates, 2u);
    EXPECT_EQ(mapped.cell_histogram.count("XOR2") + mapped.cell_histogram.count("XNOR2"), 1u);
}

TEST(Mapper, ParityChainBeatsNaiveXorCascade) {
    // A linear 8-input parity chain costs 7 XOR2 delays naively; the
    // delay-oriented mapper must do at least as well (it may legally prefer
    // faster NOR/NAND networks over the slow XOR cells).
    const CellLibrary lib = CellLibrary::generic_70nm();
    Aig aig;
    std::vector<AigLit> pis;
    for (int i = 0; i < 8; ++i) pis.push_back(aig.add_pi());
    AigLit parity = pis[0];
    for (int i = 1; i < 8; ++i) parity = aig.lxor(parity, pis[i]);
    aig.add_po(parity, "p");
    const MappedCircuit mapped = map_circuit(aig, lib);
    EXPECT_LE(mapped.delay_ps, 7 * 120.0);
    EXPECT_GT(mapped.num_gates, 6u);
}

TEST(Mapper, ComplementedPoCostsAnInverter) {
    const CellLibrary lib = CellLibrary::generic_70nm();
    Aig aig;
    const AigLit a = aig.add_pi();
    const AigLit b = aig.add_pi();
    aig.add_po(aig.land(a, b), "y");
    Aig neg;
    const AigLit p = neg.add_pi();
    const AigLit q = neg.add_pi();
    neg.add_po(!neg.land(p, q), "y");
    const MappedCircuit m_pos = map_circuit(aig, lib);
    const MappedCircuit m_neg = map_circuit(neg, lib);
    // NAND2 (one cell) vs AND2, or AND2+INV vs NAND2 -- either way the
    // delays differ and both map to >= 1 gate.
    EXPECT_GE(m_pos.num_gates, 1u);
    EXPECT_GE(m_neg.num_gates, 1u);
}

TEST(Mapper, PowerScalesWithClock) {
    const CellLibrary lib = CellLibrary::generic_70nm();
    const Aig rca = ripple_carry_adder(6);
    MapperOptions one_ghz;
    MapperOptions two_ghz;
    two_ghz.clock_ghz = 2.0;
    const double p1 = map_circuit(rca, lib, one_ghz).power_mw;
    const double p2 = map_circuit(rca, lib, two_ghz).power_mw;
    EXPECT_NEAR(p2, 2.0 * p1, 1e-9);
}

}  // namespace
}  // namespace lls
