#include "aig/aig.hpp"

#include <gtest/gtest.h>

#include "aig/aig_build.hpp"
#include "aig/cuts.hpp"
#include "common/rng.hpp"
#include "sim/simulation.hpp"

namespace lls {
namespace {

TEST(Aig, ConstantRules) {
    Aig aig;
    const AigLit a = aig.add_pi("a");
    EXPECT_EQ(aig.land(a, AigLit::constant(false)), AigLit::constant(false));
    EXPECT_EQ(aig.land(a, AigLit::constant(true)), a);
    EXPECT_EQ(aig.land(a, a), a);
    EXPECT_EQ(aig.land(a, !a), AigLit::constant(false));
    EXPECT_EQ(aig.num_ands(), 0u);
}

TEST(Aig, StructuralHashing) {
    Aig aig;
    const AigLit a = aig.add_pi("a");
    const AigLit b = aig.add_pi("b");
    const AigLit x = aig.land(a, b);
    const AigLit y = aig.land(b, a);  // commuted
    EXPECT_EQ(x, y);
    EXPECT_EQ(aig.num_ands(), 1u);
    const AigLit z = aig.land(!a, b);
    EXPECT_NE(x, z);
    EXPECT_EQ(aig.num_ands(), 2u);
}

TEST(Aig, DerivedOperators) {
    Aig aig;
    const AigLit a = aig.add_pi("a");
    const AigLit b = aig.add_pi("b");
    const AigLit s = aig.add_pi("s");
    aig.add_po(aig.lor(a, b), "or");
    aig.add_po(aig.lxor(a, b), "xor");
    aig.add_po(aig.lmux(s, a, b), "mux");

    const SimPatterns patterns = SimPatterns::exhaustive(3);
    const auto sigs = simulate(aig, patterns);
    for (std::size_t p = 0; p < 8; ++p) {
        const bool va = patterns.pi_value(0, p);
        const bool vb = patterns.pi_value(1, p);
        const bool vs = patterns.pi_value(2, p);
        const auto po_val = [&](std::size_t o) {
            const Signature sig = literal_signature(aig, aig.po(o), sigs, 8);
            return ((sig[0] >> p) & 1) != 0;
        };
        EXPECT_EQ(po_val(0), va || vb);
        EXPECT_EQ(po_val(1), va != vb);
        EXPECT_EQ(po_val(2), vs ? va : vb);
    }
}

TEST(Aig, LevelsAndDepth) {
    Aig aig;
    const AigLit a = aig.add_pi("a");
    const AigLit b = aig.add_pi("b");
    const AigLit c = aig.add_pi("c");
    const AigLit ab = aig.land(a, b);
    const AigLit abc = aig.land(ab, c);
    aig.add_po(abc, "y");
    const auto levels = aig.compute_levels();
    EXPECT_EQ(levels[ab.node()], 1);
    EXPECT_EQ(levels[abc.node()], 2);
    EXPECT_EQ(aig.depth(), 2);
}

TEST(Aig, BalancedManyInputAnd) {
    Aig aig;
    std::vector<AigLit> lits;
    for (int i = 0; i < 16; ++i) lits.push_back(aig.add_pi());
    aig.add_po(aig.land_many(lits), "y");
    EXPECT_EQ(aig.depth(), 4);  // ceil(log2(16))
}

TEST(Aig, CleanupRemovesDanglingKeepsInterface) {
    Aig aig;
    const AigLit a = aig.add_pi("a");
    const AigLit b = aig.add_pi("b");
    const AigLit unused_pi = aig.add_pi("c");
    (void)unused_pi;
    const AigLit keep = aig.land(a, b);
    (void)aig.land(!a, !b);  // dangling
    aig.add_po(!keep, "y");

    const Aig clean = aig.cleanup();
    EXPECT_EQ(clean.num_pis(), 3u);  // interface preserved
    EXPECT_EQ(clean.num_ands(), 1u);
    EXPECT_EQ(clean.pi_name(2), "c");
    EXPECT_TRUE(clean.po(0).complemented());
}

TEST(Aig, CountReachableAnds) {
    Aig aig;
    const AigLit a = aig.add_pi();
    const AigLit b = aig.add_pi();
    const AigLit x = aig.land(a, b);
    (void)aig.land(!a, b);  // unreachable from POs
    aig.add_po(x);
    EXPECT_EQ(aig.num_ands(), 2u);
    EXPECT_EQ(aig.count_reachable_ands(), 1u);
}

TEST(AigBuild, TruthTableConstruction) {
    Rng rng(31);
    for (int n = 1; n <= 6; ++n) {
        for (int trial = 0; trial < 8; ++trial) {
            TruthTable tt(n);
            for (std::uint64_t m = 0; m < tt.num_minterms(); ++m) tt.set_bit(m, rng.next_bool());

            Aig aig;
            std::vector<AigLit> pis;
            for (int i = 0; i < n; ++i) pis.push_back(aig.add_pi());
            aig.add_po(build_truth_table(aig, tt, pis), "y");

            const SimPatterns patterns = SimPatterns::exhaustive(static_cast<std::size_t>(n));
            const auto sigs = simulate(aig, patterns);
            const Signature out = literal_signature(aig, aig.po(0), sigs, patterns.num_patterns());
            for (std::uint64_t m = 0; m < tt.num_minterms(); ++m)
                EXPECT_EQ(((out[m >> 6] >> (m & 63)) & 1) != 0, tt.get_bit(m));
        }
    }
}

TEST(AigBuild, ExtractConeMatchesOutput) {
    Aig aig;
    const AigLit a = aig.add_pi("a");
    const AigLit b = aig.add_pi("b");
    const AigLit c = aig.add_pi("c");
    aig.add_po(aig.land(a, b), "y0");
    aig.add_po(aig.lxor(b, c), "y1");

    const Aig cone = extract_cone(aig, 1);
    EXPECT_EQ(cone.num_pos(), 1u);
    EXPECT_EQ(cone.num_pis(), 3u);
    EXPECT_EQ(cone.po_name(0), "y1");

    const SimPatterns patterns = SimPatterns::exhaustive(3);
    const auto sig_full = simulate(aig, patterns);
    const auto sig_cone = simulate(cone, patterns);
    EXPECT_EQ(literal_signature(aig, aig.po(1), sig_full, 8),
              literal_signature(cone, cone.po(0), sig_cone, 8));
}

TEST(AigBuild, AppendPreservesFunction) {
    Aig src;
    const AigLit a = src.add_pi("a");
    const AigLit b = src.add_pi("b");
    src.add_po(src.lxor(a, b), "x");

    Aig dst;
    const AigLit p = dst.add_pi("p");
    const AigLit q = dst.add_pi("q");
    const auto outs = append_aig(dst, src, {p, !q});  // note complemented mapping
    dst.add_po(outs[0], "y");

    const SimPatterns patterns = SimPatterns::exhaustive(2);
    const auto sigs = simulate(dst, patterns);
    const Signature out = literal_signature(dst, dst.po(0), sigs, 4);
    for (std::uint64_t m = 0; m < 4; ++m) {
        const bool vp = (m >> 0) & 1, vq = (m >> 1) & 1;
        EXPECT_EQ(((out[0] >> m) & 1) != 0, vp != !vq);
    }
}

TEST(Cuts, TruthTablesMatchSimulation) {
    Rng rng(32);
    // Random small circuit; every enumerated cut's function must agree with
    // simulation of the root in terms of the cut leaves.
    Aig aig;
    std::vector<AigLit> pool;
    for (int i = 0; i < 6; ++i) pool.push_back(aig.add_pi());
    for (int i = 0; i < 30; ++i) {
        AigLit x = pool[rng.next_below(pool.size())];
        AigLit y = pool[rng.next_below(pool.size())];
        if (rng.next_bool()) x = !x;
        if (rng.next_bool()) y = !y;
        pool.push_back(aig.land(x, y));
    }
    aig.add_po(pool.back(), "y");

    const SimPatterns patterns = SimPatterns::exhaustive(6);
    const auto sigs = simulate(aig, patterns);
    const CutEnumerator cuts(aig, 4, 6);
    for (std::uint32_t id = 1; id < aig.num_nodes(); ++id) {
        if (!aig.is_and(id)) continue;
        for (const auto& cut : cuts.cuts(id)) {
            for (std::size_t p = 0; p < patterns.num_patterns(); ++p) {
                std::uint32_t minterm = 0;
                for (std::size_t li = 0; li < cut.leaves.size(); ++li)
                    if ((sigs[cut.leaves[li]][p >> 6] >> (p & 63)) & 1)
                        minterm |= 1u << li;
                const bool expected = ((sigs[id][p >> 6] >> (p & 63)) & 1) != 0;
                EXPECT_EQ(cut.tt.get_bit(minterm), expected)
                    << "node " << id << " cut size " << cut.leaves.size();
            }
        }
    }
}

TEST(Cuts, RespectsSizeLimit) {
    Aig aig;
    std::vector<AigLit> lits;
    for (int i = 0; i < 8; ++i) lits.push_back(aig.add_pi());
    aig.add_po(aig.land_many(lits), "y");
    const CutEnumerator cuts(aig, 4, 10);
    for (std::uint32_t id = 1; id < aig.num_nodes(); ++id)
        for (const auto& cut : cuts.cuts(id)) EXPECT_LE(cut.leaves.size(), 4u);
}

TEST(Aig, HashChangesWithStructure) {
    Aig a;
    const AigLit x = a.add_pi();
    const AigLit y = a.add_pi();
    a.add_po(a.land(x, y));
    Aig b;
    const AigLit p = b.add_pi();
    const AigLit q = b.add_pi();
    b.add_po(b.lor(p, q));
    EXPECT_NE(a.hash(), b.hash());
}

}  // namespace
}  // namespace lls
