#include "cec/cec.hpp"

#include <gtest/gtest.h>

#include "io/generators.hpp"
#include "sim/simulation.hpp"

namespace lls {
namespace {

TEST(Cec, IdenticalCircuitsAreEquivalent) {
    const Aig a = ripple_carry_adder(4);
    const CecResult r = check_equivalence(a, a);
    EXPECT_TRUE(r.resolved);
    EXPECT_TRUE(r.equivalent);
}

TEST(Cec, AddersOfDifferentArchitecturesAreEquivalent) {
    // The strongest functional test available: three structurally different
    // adders computing the same arithmetic.
    const Aig rca = ripple_carry_adder(6);
    const Aig cla = carry_lookahead_adder(6);
    const Aig csa = carry_select_adder(6, 2);
    EXPECT_TRUE(check_equivalence(rca, cla).equivalent);
    EXPECT_TRUE(check_equivalence(rca, csa).equivalent);
    EXPECT_TRUE(check_equivalence(cla, csa).equivalent);
}

TEST(Cec, DetectsSingleOutputDifference) {
    Aig a, b;
    for (int i = 0; i < 3; ++i) {
        a.add_pi();
        b.add_pi();
    }
    a.add_po(a.land(a.pi_lit(0), a.pi_lit(1)), "y");
    b.add_po(b.lor(b.pi_lit(0), b.pi_lit(1)), "y");
    const CecResult r = check_equivalence(a, b);
    ASSERT_TRUE(r.resolved);
    EXPECT_FALSE(r.equivalent);
    // The counterexample must actually distinguish the two circuits.
    ASSERT_EQ(r.counterexample.size(), 3u);
    const bool va = r.counterexample[0], vb = r.counterexample[1];
    EXPECT_NE(va && vb, va || vb);
}

TEST(Cec, SatPathOnWideCircuits) {
    // > 14 PIs forces the SAT path (no exhaustive shortcut).
    const Aig rca = ripple_carry_adder(8);  // 17 PIs
    const Aig cla = carry_lookahead_adder(8);
    const CecResult r = check_equivalence(rca, cla);
    EXPECT_TRUE(r.resolved);
    EXPECT_TRUE(r.equivalent);

    // And a deliberately broken copy must be caught.
    Aig broken = ripple_carry_adder(8);
    broken.set_po(0, !broken.po(0));
    const CecResult r2 = check_equivalence(rca, broken);
    EXPECT_TRUE(r2.resolved);
    EXPECT_FALSE(r2.equivalent);
}

TEST(EncodeAig, MiterSemantics) {
    Aig a;
    const AigLit x = a.add_pi();
    const AigLit y = a.add_pi();
    a.add_po(a.lxor(x, y), "x^y");

    sat::Solver solver;
    std::vector<int> pi_vars{solver.new_var(), solver.new_var()};
    const auto pos = encode_aig(a, solver, pi_vars);
    ASSERT_EQ(pos.size(), 1u);
    // Force output 1 with x = y: UNSAT.
    EXPECT_EQ(solver.solve({pos[0], sat::Lit(pi_vars[0], false), sat::Lit(pi_vars[1], false)}),
              sat::Status::Unsat);
    // Force output 1 with x != y: SAT.
    EXPECT_EQ(solver.solve({pos[0], sat::Lit(pi_vars[0], false), sat::Lit(pi_vars[1], true)}),
              sat::Status::Sat);
}

TEST(SatSweep, MergesDuplicatedLogic) {
    Aig aig;
    const AigLit a = aig.add_pi();
    const AigLit b = aig.add_pi();
    const AigLit c = aig.add_pi();
    // Build XOR twice with different structures; the sweep must share them.
    const AigLit x1 = aig.lor(aig.land(a, !b), aig.land(!a, b));
    const AigLit x2 = !aig.lor(aig.land(a, b), aig.land(!a, !b));  // xnor complemented
    aig.add_po(aig.land(x1, c), "y0");
    aig.add_po(aig.land(x2, c), "y1");

    Rng rng(1);
    const Aig swept = sat_sweep(aig, rng);
    EXPECT_TRUE(check_equivalence(aig, swept).equivalent);
    EXPECT_LT(swept.count_reachable_ands(), aig.count_reachable_ands());
    // After merging x1 == x2 the two POs share a single driver.
    EXPECT_EQ(swept.po(0), swept.po(1));
}

TEST(SatSweep, DetectsConstantNodes) {
    Aig aig;
    const AigLit a = aig.add_pi();
    const AigLit b = aig.add_pi();
    // (a & b) & (a & !b) == 0, hidden behind two levels.
    const AigLit z = aig.land(aig.land(a, b), aig.land(a, !b));
    aig.add_po(aig.lor(z, b), "y");
    Rng rng(2);
    const Aig swept = sat_sweep(aig, rng);
    EXPECT_TRUE(check_equivalence(aig, swept).equivalent);
    EXPECT_EQ(swept.count_reachable_ands(), 0u);  // y collapses to just b
}

TEST(SatSweep, PreservesEquivalenceOnAdders) {
    Rng rng(3);
    for (int bits : {3, 5, 8}) {
        const Aig adder = ripple_carry_adder(bits);
        const Aig swept = sat_sweep(adder, rng);
        EXPECT_TRUE(check_equivalence(adder, swept).equivalent) << bits;
        EXPECT_LE(swept.count_reachable_ands(), adder.count_reachable_ands());
    }
}

}  // namespace
}  // namespace lls
