#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <set>
#include <stdexcept>
#include <vector>

namespace lls {
namespace {

TEST(ThreadPool, SubmitReturnsValues) {
    ThreadPool pool(4);
    std::vector<std::future<int>> futures;
    for (int i = 0; i < 100; ++i) futures.push_back(pool.submit([i] { return i * i; }));
    for (int i = 0; i < 100; ++i) EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
}

TEST(ThreadPool, ZeroWorkerPoolRunsInline) {
    ThreadPool pool(0);
    EXPECT_EQ(pool.size(), 0u);
    auto f = pool.submit([] { return 42; });
    EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, SubmitPropagatesExceptions) {
    ThreadPool pool(2);
    auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
    EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, WorkersSurviveThrowingTasks) {
    // Regression test for the worker-loop exception backstop: with a single
    // worker, a task whose exception escaped the loop would kill the only
    // thread and strand every later future. Throw a burst of tasks, then
    // prove the same worker still completes real work.
    ThreadPool pool(1);
    std::vector<std::future<int>> throwing;
    for (int i = 0; i < 8; ++i)
        throwing.push_back(pool.submit([]() -> int { throw std::runtime_error("boom"); }));
    for (auto& f : throwing) EXPECT_THROW(f.get(), std::runtime_error);

    auto alive = pool.submit([] { return 7; });
    ASSERT_EQ(alive.wait_for(std::chrono::seconds(30)), std::future_status::ready)
        << "worker died after a throwing task";
    EXPECT_EQ(alive.get(), 7);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
    ThreadPool pool(4);
    constexpr std::size_t kN = 10000;
    std::vector<std::atomic<int>> touched(kN);
    pool.parallel_for(0, kN, [&](std::size_t i) { touched[i].fetch_add(1); });
    for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(touched[i].load(), 1) << i;
}

TEST(ThreadPool, ParallelForEmptyAndReversedRanges) {
    ThreadPool pool(2);
    std::atomic<int> calls{0};
    pool.parallel_for(5, 5, [&](std::size_t) { calls.fetch_add(1); });
    pool.parallel_for(7, 3, [&](std::size_t) { calls.fetch_add(1); });
    EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPool, ParallelForRethrowsFirstException) {
    ThreadPool pool(4);
    std::atomic<int> completed{0};
    EXPECT_THROW(pool.parallel_for(0, 1000,
                                   [&](std::size_t i) {
                                       if (i == 17) throw std::logic_error("bad index");
                                       completed.fetch_add(1);
                                   }),
                 std::logic_error);
    EXPECT_LT(completed.load(), 1000);
}

TEST(ThreadPool, ParallelForWorksWithZeroWorkers) {
    ThreadPool pool(0);
    std::vector<int> out(64, 0);
    pool.parallel_for(0, out.size(), [&](std::size_t i) { out[i] = static_cast<int>(i); });
    std::vector<int> expected(64);
    std::iota(expected.begin(), expected.end(), 0);
    EXPECT_EQ(out, expected);
}

TEST(ThreadPool, UnevenTaskCostsStillComplete) {
    ThreadPool pool(3);
    std::atomic<long> sum{0};
    pool.parallel_for(0, 200, [&](std::size_t i) {
        long local = 0;
        // index-dependent busywork so workers finish at different times
        for (std::size_t k = 0; k < (i % 7) * 1000; ++k) local += static_cast<long>(k % 3);
        sum.fetch_add(static_cast<long>(i) + (local & 1));
    });
    EXPECT_GE(sum.load(), 199L * 200L / 2);
}

TEST(ThreadPool, HardwareJobsIsPositive) { EXPECT_GE(ThreadPool::hardware_jobs(), 1u); }

}  // namespace
}  // namespace lls
