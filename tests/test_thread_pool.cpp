#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

namespace lls {
namespace {

TEST(ThreadPool, SubmitReturnsValues) {
    ThreadPool pool(4);
    std::vector<std::future<int>> futures;
    for (int i = 0; i < 100; ++i) futures.push_back(pool.submit([i] { return i * i; }));
    for (int i = 0; i < 100; ++i) EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
}

TEST(ThreadPool, ZeroWorkerPoolRunsInline) {
    ThreadPool pool(0);
    EXPECT_EQ(pool.size(), 0u);
    auto f = pool.submit([] { return 42; });
    EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, SubmitPropagatesExceptions) {
    ThreadPool pool(2);
    auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
    EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, WorkersSurviveThrowingTasks) {
    // Regression test for the worker-loop exception backstop: with a single
    // worker, a task whose exception escaped the loop would kill the only
    // thread and strand every later future. Throw a burst of tasks, then
    // prove the same worker still completes real work.
    ThreadPool pool(1);
    std::vector<std::future<int>> throwing;
    for (int i = 0; i < 8; ++i)
        throwing.push_back(pool.submit([]() -> int { throw std::runtime_error("boom"); }));
    for (auto& f : throwing) EXPECT_THROW(f.get(), std::runtime_error);

    auto alive = pool.submit([] { return 7; });
    ASSERT_EQ(alive.wait_for(std::chrono::seconds(30)), std::future_status::ready)
        << "worker died after a throwing task";
    EXPECT_EQ(alive.get(), 7);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
    ThreadPool pool(4);
    constexpr std::size_t kN = 10000;
    std::vector<std::atomic<int>> touched(kN);
    pool.parallel_for(0, kN, [&](std::size_t i) { touched[i].fetch_add(1); });
    for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(touched[i].load(), 1) << i;
}

TEST(ThreadPool, ParallelForEmptyAndReversedRanges) {
    ThreadPool pool(2);
    std::atomic<int> calls{0};
    pool.parallel_for(5, 5, [&](std::size_t) { calls.fetch_add(1); });
    pool.parallel_for(7, 3, [&](std::size_t) { calls.fetch_add(1); });
    EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPool, ParallelForRethrowsFirstException) {
    ThreadPool pool(4);
    std::atomic<int> completed{0};
    EXPECT_THROW(pool.parallel_for(0, 1000,
                                   [&](std::size_t i) {
                                       if (i == 17) throw std::logic_error("bad index");
                                       completed.fetch_add(1);
                                   }),
                 std::logic_error);
    EXPECT_LT(completed.load(), 1000);
}

TEST(ThreadPool, ParallelForWorksWithZeroWorkers) {
    ThreadPool pool(0);
    std::vector<int> out(64, 0);
    pool.parallel_for(0, out.size(), [&](std::size_t i) { out[i] = static_cast<int>(i); });
    std::vector<int> expected(64);
    std::iota(expected.begin(), expected.end(), 0);
    EXPECT_EQ(out, expected);
}

TEST(ThreadPool, UnevenTaskCostsStillComplete) {
    ThreadPool pool(3);
    std::atomic<long> sum{0};
    pool.parallel_for(0, 200, [&](std::size_t i) {
        long local = 0;
        // index-dependent busywork so workers finish at different times
        for (std::size_t k = 0; k < (i % 7) * 1000; ++k) local += static_cast<long>(k % 3);
        sum.fetch_add(static_cast<long>(i) + (local & 1));
    });
    EXPECT_GE(sum.load(), 199L * 200L / 2);
}

TEST(ThreadPool, HardwareJobsIsPositive) { EXPECT_GE(ThreadPool::hardware_jobs(), 1u); }

TEST(ThreadPool, NestedParallelForTwoDeepFromEveryWorker) {
    // Regression test for the nested-parallel_for deadlock: before the
    // help-while-waiting fix, a parallel_for called from a pool task
    // submitted helpers to a queue whose workers were all blocked in
    // h.get() on those same helpers — no worker was ever free to drain
    // them. Nest two deep with more outer indices than threads so every
    // worker is guaranteed to issue nested calls concurrently.
    ThreadPool pool(4);
    constexpr std::size_t kOuter = 12, kMid = 8, kInner = 6;
    std::atomic<std::size_t> leaves{0};
    pool.parallel_for(0, kOuter, [&](std::size_t) {
        pool.parallel_for(0, kMid, [&](std::size_t) {
            pool.parallel_for(0, kInner, [&](std::size_t) {
                leaves.fetch_add(1, std::memory_order_relaxed);
            });
        });
    });
    EXPECT_EQ(leaves.load(), kOuter * kMid * kInner);
}

TEST(ThreadPool, NestedParallelForSingleWorker) {
    // The smallest pool that could deadlock: one worker, whose task nests.
    ThreadPool pool(1);
    std::atomic<int> leaves{0};
    pool.parallel_for(0, 4, [&](std::size_t) {
        pool.parallel_for(0, 4, [&](std::size_t) { leaves.fetch_add(1); });
    });
    EXPECT_EQ(leaves.load(), 16);
}

TEST(ThreadPool, NestedParallelForPropagatesInnerExceptions) {
    ThreadPool pool(3);
    std::atomic<int> outer_failures{0};
    pool.parallel_for(0, 6, [&](std::size_t) {
        try {
            pool.parallel_for(0, 8, [&](std::size_t j) {
                if (j == 3) throw std::runtime_error("inner");
            });
        } catch (const std::runtime_error&) {
            outer_failures.fetch_add(1);
        }
    });
    EXPECT_EQ(outer_failures.load(), 6);
}

TEST(ThreadPool, SubmitFromRunningTaskCompletes) {
    // A task submitting to its own pool must not deadlock, and the inner
    // future must become ready even when the pool is being torn down
    // around it: submit during shutdown runs the task inline instead of
    // leaving it stranded in a queue no worker will drain again.
    std::future<int> inner;
    std::atomic<bool> inner_submitted{false};
    {
        ThreadPool pool(1);
        pool.submit([&pool, &inner, &inner_submitted] {
            // Give the destructor (entered by the main thread as soon as
            // submit returns) a chance to raise stopping_ first; both
            // orderings are legal, and in both the future must resolve.
            std::this_thread::sleep_for(std::chrono::milliseconds(20));
            inner = pool.submit([] { return 99; });
            inner_submitted.store(true);
        });
    }  // ~ThreadPool: stopping_ raised while the task sleeps, then joined
    ASSERT_TRUE(inner_submitted.load());
    ASSERT_EQ(inner.wait_for(std::chrono::seconds(0)), std::future_status::ready)
        << "task submitted during shutdown was stranded";
    EXPECT_EQ(inner.get(), 99);
}

TEST(ThreadPool, AbortedParallelForCountsSkippedIndices) {
    // When an iteration throws, the remaining indices are skipped — and
    // must be accounted for, not silently dropped: a partial fan-out that
    // looks complete would corrupt any caller that trusts the range.
    ThreadPool pool(2);
    constexpr std::size_t kN = 500;
    std::atomic<std::size_t> completed{0}, failures{0};
    EXPECT_THROW(pool.parallel_for(0, kN,
                                   [&](std::size_t i) {
                                       if (i == 3) {
                                           failures.fetch_add(1);
                                           throw std::logic_error("abort");
                                       }
                                       completed.fetch_add(1);
                                   }),
                 std::logic_error);
    EXPECT_EQ(pool.aborted_indices(), kN - completed.load() - failures.load());
    EXPECT_GT(pool.aborted_indices(), 0u);

    // A clean follow-up range adds nothing to the counter.
    const std::uint64_t before = pool.aborted_indices();
    pool.parallel_for(0, 100, [](std::size_t) {});
    EXPECT_EQ(pool.aborted_indices(), before);
}

}  // namespace
}  // namespace lls
