#include "sim/simulation.hpp"

#include <gtest/gtest.h>

#include "io/generators.hpp"

namespace lls {
namespace {

TEST(SimPatterns, ExhaustiveEnumeratesAllMinterm) {
    const SimPatterns p = SimPatterns::exhaustive(4);
    EXPECT_EQ(p.num_patterns(), 16u);
    EXPECT_TRUE(p.is_exhaustive());
    for (std::size_t m = 0; m < 16; ++m)
        for (std::size_t i = 0; i < 4; ++i)
            EXPECT_EQ(p.pi_value(i, m), ((m >> i) & 1) != 0);
}

TEST(SimPatterns, RandomIsDeterministicPerSeed) {
    Rng rng1(42), rng2(42), rng3(43);
    const SimPatterns a = SimPatterns::random(5, 256, rng1);
    const SimPatterns b = SimPatterns::random(5, 256, rng2);
    const SimPatterns c = SimPatterns::random(5, 256, rng3);
    EXPECT_EQ(a.pi_bits(3), b.pi_bits(3));
    EXPECT_NE(a.pi_bits(3), c.pi_bits(3));
    EXPECT_FALSE(a.is_exhaustive());
}

TEST(SimPatterns, TailBitsAreMasked) {
    Rng rng(7);
    const SimPatterns p = SimPatterns::random(3, 100, rng);
    EXPECT_EQ(p.num_words(), 2u);
    for (std::size_t i = 0; i < 3; ++i)
        EXPECT_EQ(p.pi_bits(i)[1] >> (100 - 64), 0u) << "pattern bits beyond count must be zero";
}

TEST(Simulate, MatchesSemanticsExhaustively) {
    Aig aig;
    const AigLit a = aig.add_pi();
    const AigLit b = aig.add_pi();
    const AigLit c = aig.add_pi();
    const AigLit f = aig.lor(aig.land(a, !b), aig.lxor(b, c));
    aig.add_po(f, "y");

    const SimPatterns patterns = SimPatterns::exhaustive(3);
    const auto sigs = simulate(aig, patterns);
    const Signature out = literal_signature(aig, aig.po(0), sigs, 8);
    for (std::uint64_t m = 0; m < 8; ++m) {
        const bool va = m & 1, vb = (m >> 1) & 1, vc = (m >> 2) & 1;
        EXPECT_EQ(((out[0] >> m) & 1) != 0, (va && !vb) || (vb != vc));
    }
}

TEST(TimingSim, ConstantInputsGiveZeroArrival) {
    // A chain of buffers-of-ANDs: with both fanins non-controlling the
    // arrival accumulates; a controlling zero resets it to the zero's arrival.
    Aig aig;
    const AigLit a = aig.add_pi();
    const AigLit b = aig.add_pi();
    AigLit chain = aig.land(a, b);
    for (int i = 0; i < 5; ++i) chain = aig.land(chain, b);
    aig.add_po(chain, "y");

    const SimPatterns patterns = SimPatterns::exhaustive(2);
    const auto sigs = simulate(aig, patterns);
    const auto timing = timing_simulate(aig, patterns, sigs);
    // Pattern a=1,b=1 (minterm 3): all non-controlling -> full chain length 6.
    EXPECT_EQ(timing.po_arrival[0][3], 6);
    // Pattern a=0,b=0 (minterm 0): every AND has an immediately-arriving
    // controlling 0 -> the whole chain settles at arrival 1.
    EXPECT_EQ(timing.po_arrival[0][0], 1);
    // Pattern a=1,b=0 (minterm 1): b kills the first AND at arrival 0 and
    // every later AND too -> arrival stays 1.
    EXPECT_EQ(timing.po_arrival[0][1], 1);
    // Pattern a=0,b=1 (minterm 2): only the first AND is controlled; its 0
    // then *ripples* down the chain (a late controlling value still delays).
    EXPECT_EQ(timing.po_arrival[0][2], 6);
    EXPECT_EQ(timing.max_arrival, 6);
}

TEST(TimingSim, RippleCarryWorstCaseIsCarryPropagation) {
    // 8-bit RCA: the all-propagate pattern (a=0xFF, b=0x00 or 0x01, cin=1)
    // must sensitize a much longer path than a=0,b=0.
    const Aig adder = ripple_carry_adder(8);
    // PIs: a0..a7, b0..b7, cin => 17 PIs; use targeted patterns via random
    // set replaced by a tiny custom exhaustive check over chosen vectors:
    // build patterns manually through Rng-free construction is not exposed,
    // so probe with exhaustive simulation of a 4-bit adder instead.
    const Aig small = ripple_carry_adder(4);
    const SimPatterns patterns = SimPatterns::exhaustive(9);
    const auto sigs = simulate(small, patterns);
    const auto timing = timing_simulate(small, patterns, sigs);

    // cout is the last PO.
    const auto& cout_arrival = timing.po_arrival[4];
    // Pattern: a=1111 (PIs 0..3 set), b=0000, cin=1 (PI 8) -> full ripple.
    const std::size_t ripple = 0b1'0000'1111;
    // Pattern: a=0, b=0, cin=0 -> carry chain killed at every stage.
    const std::size_t quiet = 0;
    EXPECT_GT(cout_arrival[ripple], cout_arrival[quiet]);
    // Floating-mode arrival is bounded by the topological depth and the
    // ripple pattern must sensitize a substantial fraction of it.
    EXPECT_LE(timing.max_arrival, small.depth());
    EXPECT_GE(timing.max_arrival, small.depth() / 2);
    (void)adder;
}

TEST(TimingSim, ArrivalNeverExceedsTopologicalLevel) {
    const Aig adder = ripple_carry_adder(5);
    const SimPatterns patterns = SimPatterns::exhaustive(11);
    const auto sigs = simulate(adder, patterns);
    const auto timing = timing_simulate(adder, patterns, sigs);
    const auto levels = adder.compute_levels();
    for (std::size_t o = 0; o < adder.num_pos(); ++o) {
        const int topo = levels[adder.po(o).node()];
        for (const auto a : timing.po_arrival[o]) EXPECT_LE(a, topo);
    }
}

TEST(LiteralSignature, ComplementIsMasked) {
    Aig aig;
    const AigLit a = aig.add_pi();
    aig.add_po(!a, "y");
    Rng rng(5);
    const SimPatterns patterns = SimPatterns::random(1, 70, rng);
    const auto sigs = simulate(aig, patterns);
    const Signature out = literal_signature(aig, aig.po(0), sigs, 70);
    EXPECT_EQ(out[1] >> (70 - 64), 0u);  // no stray bits beyond the pattern count
}

}  // namespace
}  // namespace lls
