// Figure-style series: AIG depth and mapped delay as a function of adder
// width, for all four flows plus the CLA reference. The paper's evaluation
// is all tables; this sweep makes the Table 1 trend visible as a curve and
// doubles as a scalability check (every point is CEC-verified).
//
// Output: one CSV-like row per (width, flow).

#include <cstdio>

#include "baseline/flows.hpp"
#include "cec/cec.hpp"
#include "common/stopwatch.hpp"
#include "io/generators.hpp"
#include "lookahead/optimize.hpp"
#include "mapping/mapper.hpp"

using namespace lls;

int main() {
    const CellLibrary lib = CellLibrary::generic_70nm();
    std::printf("width,flow,aig_depth,aig_gates,mapped_delay_ps,mapped_area\n");

    Stopwatch total;
    for (const int n : {2, 4, 6, 8, 12, 16, 24, 32}) {
        const Aig rca = ripple_carry_adder(n);
        const Aig cla = carry_lookahead_adder(n);

        auto report = [&](const char* flow, const Aig& circuit) {
            const CecResult cec = check_equivalence(rca, circuit, 4000000);
            if (!cec.resolved || !cec.equivalent) {
                std::fprintf(stderr, "EQUIVALENCE FAILURE: %s on %d-bit adder\n", flow, n);
                std::exit(1);
            }
            const MappedCircuit mapped = map_circuit(circuit, lib);
            std::printf("%d,%s,%d,%zu,%.0f,%.1f\n", n, flow, circuit.depth(),
                        circuit.count_reachable_ands(), mapped.delay_ps, mapped.area);
            std::fflush(stdout);
        };

        Rng rng(1);
        report("ripple", rca);
        report("cla_reference", cla);
        report("sis", flow_sis(rca, rng));
        report("abc", flow_abc(rca, rng));
        report("dc", flow_dc(rca, rng));

        LookaheadParams params;
        params.max_iterations = 48;  // wide adders peel a few levels per round
        params.time_budget_seconds = 120.0;
        report("lookahead", optimize_timing(rca, params));
    }
    std::fprintf(stderr, "(sweep complete, all points verified; %.1fs)\n",
                 total.elapsed_seconds());
    return 0;
}
