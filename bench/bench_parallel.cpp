// Scaling bench of the concurrent optimization engine: optimizes a
// multi-output circuit (ripple-carry adder, every sum output on the
// critical ripple chain) with an increasing number of jobs and reports
// wall-clock speedup over the serial engine. The engine's determinism
// contract makes the comparison exact: every job count must produce the
// same depth and AND count, which this bench asserts — both for unbounded
// runs and for runs bounded by a deterministic --work-budget (the budgeted
// sweep uses half the unbudgeted work, so the budget genuinely binds).
//
//   bench_parallel [bits] [max_jobs] [iterations]
//
// Results go to stdout and to BENCH_parallel.json (machine-readable, one
// object per jobs value, plus a "budgeted" section) so the perf trajectory
// is tracked across PRs.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/parse.hpp"
#include "common/stopwatch.hpp"
#include "common/thread_pool.hpp"
#include "engine/engine.hpp"
#include "io/generators.hpp"

using namespace lls;

namespace {

struct Row {
    int jobs;
    double seconds;
    int depth;
    std::size_t ands;
    std::uint64_t work_units;
};

/// One sweep over the job counts; returns one row per jobs value and sets
/// `*identical` to whether depth/ANDs matched across all of them.
std::vector<Row> sweep(const Aig& circuit, const LookaheadParams& params,
                       const std::vector<int>& job_counts, bool* identical) {
    std::vector<Row> rows;
    for (const int jobs : job_counts) {
        // Each jobs value must redo the full work: the process-wide memo
        // would otherwise hand later runs the earlier runs' results and
        // fake the scaling curve.
        clear_engine_caches();
        EngineOptions engine;
        engine.jobs = jobs;
        OptimizeStats stats;
        Stopwatch sw;
        const Aig out = optimize_timing_engine(circuit, params, engine, &stats);
        const double seconds = sw.elapsed_seconds();
        if (!stats.verified) {
            std::fprintf(stderr, "VERIFICATION FAILURE at jobs=%d\n", jobs);
            std::exit(1);
        }
        rows.push_back({jobs, seconds, out.depth(), out.count_reachable_ands(),
                        stats.work_units});
        std::printf("  jobs=%-3d %8.2fs   depth %2d   %6zu ANDs   %8llu units   speedup %.2fx\n",
                    jobs, seconds, out.depth(), out.count_reachable_ands(),
                    static_cast<unsigned long long>(stats.work_units),
                    rows.front().seconds / seconds);
        std::fflush(stdout);
    }
    *identical = true;
    for (const auto& row : rows)
        *identical = *identical && row.depth == rows.front().depth &&
                     row.ands == rows.front().ands && row.work_units == rows.front().work_units;
    return rows;
}

std::string rows_json(const std::vector<Row>& rows) {
    std::string json = "[";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        if (i) json += ',';
        json += "{\"jobs\":" + std::to_string(rows[i].jobs) +
                ",\"seconds\":" + std::to_string(rows[i].seconds) +
                ",\"speedup\":" + std::to_string(rows.front().seconds / rows[i].seconds) +
                ",\"depth\":" + std::to_string(rows[i].depth) +
                ",\"ands\":" + std::to_string(rows[i].ands) +
                ",\"work_units\":" + std::to_string(rows[i].work_units) + "}";
    }
    return json + "]";
}

}  // namespace

int main(int argc, char** argv) {
    int bits = 16, max_jobs = 4, iterations = 4;
    const bool args_ok =
        (argc <= 1 || parse_int_option("bits", argv[1], 2, 4096, &bits)) &&
        (argc <= 2 || parse_int_option("max_jobs", argv[2], 1, 1024, &max_jobs)) &&
        (argc <= 3 || parse_int_option("iterations", argv[3], 1, 1000000, &iterations));
    if (!args_ok) {
        std::fprintf(stderr, "usage: %s [bits>=2] [max_jobs>=1] [iterations>=1]\n", argv[0]);
        return 2;
    }

    const Aig rca = ripple_carry_adder(bits);
    LookaheadParams params;
    params.max_iterations = iterations;

    std::printf("parallel scaling: %d-bit ripple adder, %zu PIs, %zu POs, depth %d, %zu ANDs "
                "(%zu hardware threads)\n",
                bits, rca.num_pis(), rca.num_pos(), rca.depth(), rca.count_reachable_ands(),
                ThreadPool::hardware_jobs());

    std::vector<int> job_counts;
    for (int j = 1; j <= max_jobs; j *= 2) job_counts.push_back(j);
    if (job_counts.back() != max_jobs) job_counts.push_back(max_jobs);

    bool identical = false;
    const std::vector<Row> rows = sweep(rca, params, job_counts, &identical);
    std::printf("QoR identical across job counts: %s\n", identical ? "yes" : "NO (BUG)");

    // Budgeted sweep: the same circuit under a deterministic work budget
    // that binds mid-run (half the unbudgeted spend), asserting that the
    // bit-identical guarantee survives budget exhaustion.
    const std::uint64_t work_budget = std::max<std::uint64_t>(1, rows.front().work_units / 2);
    std::printf("budgeted scaling: --work-budget %llu (half of unbudgeted %llu units)\n",
                static_cast<unsigned long long>(work_budget),
                static_cast<unsigned long long>(rows.front().work_units));
    LookaheadParams budgeted_params = params;
    budgeted_params.work_budget = work_budget;
    bool budgeted_identical = false;
    const std::vector<Row> budgeted_rows =
        sweep(rca, budgeted_params, job_counts, &budgeted_identical);
    std::printf("QoR identical across job counts with budget: %s\n",
                budgeted_identical ? "yes" : "NO (BUG)");

    std::string json = "{\"circuit\":\"rca" + std::to_string(bits) + "\",\"bits\":" +
                       std::to_string(bits) + ",\"iterations\":" + std::to_string(iterations) +
                       ",\"hardware_threads\":" + std::to_string(ThreadPool::hardware_jobs()) +
                       ",\"qor_identical\":" + (identical ? "true" : "false") +
                       ",\"runs\":" + rows_json(rows) +
                       ",\"budgeted\":{\"work_budget\":" + std::to_string(work_budget) +
                       ",\"qor_identical\":" + (budgeted_identical ? "true" : "false") +
                       ",\"runs\":" + rows_json(budgeted_rows) + "}}\n";
    if (std::FILE* f = std::fopen("BENCH_parallel.json", "w")) {
        std::fputs(json.c_str(), f);
        std::fclose(f);
        std::printf("wrote BENCH_parallel.json\n");
    }
    return identical && budgeted_identical ? 0 : 1;
}
