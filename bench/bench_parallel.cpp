// Scaling bench of the concurrent optimization engine: optimizes a
// multi-output circuit (ripple-carry adder, every sum output on the
// critical ripple chain) with an increasing number of jobs and reports
// wall-clock speedup over the serial engine. The engine's determinism
// contract makes the comparison exact: every job count must produce the
// same depth and AND count, which this bench asserts — both for unbounded
// runs and for runs bounded by a deterministic --work-budget (the budgeted
// sweep uses half the unbudgeted work, so the budget genuinely binds).
//
// A second sweep benchmarks the shared concurrent BddManager against
// per-task private managers on the engine's rung-2 access pattern (many
// workers building the node BDDs of overlapping PO cones) and records the
// cross-worker ITE-cache hit rate.
//
// A third sweep measures two-level work stealing on a deliberately skewed
// batch (one circuit with many equally-critical cones plus several small
// adders): with stealing off, the batch tail serializes on the big
// circuit while freed workers idle; with stealing on, they join its
// per-round cone fan-out. The sweep asserts the outputs' full structural
// hashes are identical between modes — stealing is an execution knob.
//
// A fourth sweep measures the intra-cone SAT fan-out (the third scheduling
// level) on a single dominant-cone input — one deep single-PO circuit, so
// item- and cone-level parallelism have nothing to fan out and only the
// per-cube don't-care proofs can occupy the pool. Asserts byte-level
// structural-hash identity between --intra-cone on and off.
//
// A fifth sweep measures the memory governor: the adder under a fixed
// tight per-cone quota (Tier 1, deterministic degradation) at global
// budgets {unlimited, 256M, 64M, 16M} (Tier 2, cache shedding). Since the
// global rail only evicts pure memo entries and the per-cone quota is
// schedule-invariant, the outputs must be identical at every budget; the
// sweep records wall time, QoR, cones degraded, and shed events per
// budget.
//
//   bench_parallel [bits] [max_jobs] [iterations]
//
// Results go to stdout and to BENCH_parallel.json (machine-readable, one
// object per jobs value, plus "budgeted", "bdd", "steal", "intracone",
// and "memgov" sections) so the perf trajectory is tracked across PRs.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "aig/aig_build.hpp"
#include "bdd/aig_bdd.hpp"
#include "bdd/bdd.hpp"
#include "common/memgov.hpp"
#include "common/parse.hpp"
#include "common/stopwatch.hpp"
#include "common/thread_pool.hpp"
#include "engine/engine.hpp"
#include "engine/metrics.hpp"
#include "io/generators.hpp"

using namespace lls;

namespace {

struct Row {
    int jobs;
    double seconds;
    int depth;
    std::size_t ands;
    std::uint64_t work_units;
};

/// One sweep over the job counts; returns one row per jobs value and sets
/// `*identical` to whether depth/ANDs matched across all of them.
std::vector<Row> sweep(const Aig& circuit, const LookaheadParams& params,
                       const std::vector<int>& job_counts, bool* identical) {
    std::vector<Row> rows;
    for (const int jobs : job_counts) {
        // Each jobs value must redo the full work: the process-wide memo
        // would otherwise hand later runs the earlier runs' results and
        // fake the scaling curve.
        clear_engine_caches();
        EngineOptions engine;
        engine.jobs = jobs;
        OptimizeStats stats;
        Stopwatch sw;
        const Aig out = optimize_timing_engine(circuit, params, engine, &stats);
        const double seconds = sw.elapsed_seconds();
        if (!stats.verified) {
            std::fprintf(stderr, "VERIFICATION FAILURE at jobs=%d\n", jobs);
            std::exit(1);
        }
        rows.push_back({jobs, seconds, out.depth(), out.count_reachable_ands(),
                        stats.work_units});
        std::printf("  jobs=%-3d %8.2fs   depth %2d   %6zu ANDs   %8llu units   speedup %.2fx\n",
                    jobs, seconds, out.depth(), out.count_reachable_ands(),
                    static_cast<unsigned long long>(stats.work_units),
                    rows.front().seconds / seconds);
        std::fflush(stdout);
    }
    *identical = true;
    for (const auto& row : rows)
        *identical = *identical && row.depth == rows.front().depth &&
                     row.ands == rows.front().ands && row.work_units == rows.front().work_units;
    return rows;
}

std::string rows_json(const std::vector<Row>& rows) {
    std::string json = "[";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        if (i) json += ',';
        json += "{\"jobs\":" + std::to_string(rows[i].jobs) +
                ",\"seconds\":" + std::to_string(rows[i].seconds) +
                ",\"speedup\":" + std::to_string(rows.front().seconds / rows[i].seconds) +
                ",\"depth\":" + std::to_string(rows[i].depth) +
                ",\"ands\":" + std::to_string(rows[i].ands) +
                ",\"work_units\":" + std::to_string(rows[i].work_units) + "}";
    }
    return json + "]";
}

struct BddRow {
    int jobs;
    double shared_seconds;
    double private_seconds;
    double shared_hit_rate;   ///< ITE-cache hit rate of the one shared manager
    double private_hit_rate;  ///< aggregate ITE-cache hit rate of the private managers
};

double hit_rate(std::uint64_t hits, std::uint64_t misses) {
    return hits + misses == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(hits + misses);
}

/// Shared-vs-private BDD manager comparison on the engine's exact-verify
/// workload shape: every PO cone of the circuit, kRounds times over, built
/// as node BDDs from `jobs` threads. Shared mode points every task at one
/// concurrent manager (overlapping subfunctions collapse to unique-table
/// and ITE-cache hits across workers); private mode gives every task its
/// own manager, the pre-refactor behavior.
std::vector<BddRow> bdd_sweep(const Aig& circuit, const std::vector<int>& job_counts) {
    constexpr int kRounds = 32;
    // Sized so the one shared manager can hold every cone's node BDDs at
    // once: the old 2^16 cap was exceeded by the default 16-bit adder's
    // cones and killed the whole bench with an uncaught ResourceExhausted.
    constexpr std::size_t kNodeLimit = std::size_t{1} << 20;
    std::vector<Aig> cones;
    for (std::size_t o = 0; o < circuit.num_pos(); ++o) cones.push_back(extract_cone(circuit, o));
    const std::size_t tasks = cones.size() * kRounds;

    std::vector<BddRow> rows;
    for (const int jobs : job_counts) {
        ThreadPool pool(static_cast<std::size_t>(jobs) - 1);

        BddManager shared(static_cast<int>(circuit.num_pis()), kNodeLimit);
        Stopwatch shared_sw;
        pool.parallel_for(0, tasks, [&](std::size_t i) {
            build_node_bdds(cones[i % cones.size()], shared);
        });
        const double shared_seconds = shared_sw.elapsed_seconds();
        const BddStats shared_stats = shared.stats();

        std::atomic<std::uint64_t> private_hits{0}, private_misses{0};
        Stopwatch private_sw;
        pool.parallel_for(0, tasks, [&](std::size_t i) {
            const Aig& cone = cones[i % cones.size()];
            BddManager manager(static_cast<int>(cone.num_pis()), kNodeLimit);
            build_node_bdds(cone, manager);
            const BddStats s = manager.stats();
            private_hits.fetch_add(s.ite_hits, std::memory_order_relaxed);
            private_misses.fetch_add(s.ite_misses, std::memory_order_relaxed);
        });
        const double private_seconds = private_sw.elapsed_seconds();

        rows.push_back({jobs, shared_seconds, private_seconds,
                        hit_rate(shared_stats.ite_hits, shared_stats.ite_misses),
                        hit_rate(private_hits.load(), private_misses.load())});
        std::printf("  jobs=%-3d shared %7.3fs (ite hit %5.1f%%)   private %7.3fs "
                    "(ite hit %5.1f%%)   speedup %.2fx\n",
                    jobs, shared_seconds, 100.0 * rows.back().shared_hit_rate, private_seconds,
                    100.0 * rows.back().private_hit_rate, private_seconds / shared_seconds);
        std::fflush(stdout);
    }
    return rows;
}

std::string bdd_rows_json(const std::vector<BddRow>& rows) {
    std::string json = "[";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        if (i) json += ',';
        json += "{\"jobs\":" + std::to_string(rows[i].jobs) +
                ",\"shared_seconds\":" + std::to_string(rows[i].shared_seconds) +
                ",\"private_seconds\":" + std::to_string(rows[i].private_seconds) +
                ",\"shared_ite_hit_rate\":" + std::to_string(rows[i].shared_hit_rate) +
                ",\"private_ite_hit_rate\":" + std::to_string(rows[i].private_hit_rate) +
                ",\"speedup\":" + std::to_string(rows[i].private_seconds / rows[i].shared_seconds) +
                "}";
    }
    return json + "]";
}

/// One large many-critical-cone circuit + several small adders: the batch
/// shape whose tail used to leave every worker but one idle.
std::vector<BatchItem> skewed_batch() {
    BenchmarkProfile profile;
    profile.name = "steal_big";
    profile.num_pis = 16;
    profile.num_pos = 12;
    profile.chain_length = 10;
    profile.num_shared = 4;
    profile.seed = 23;
    std::vector<BatchItem> items;
    items.push_back({"big", synthetic_control_circuit(profile)});
    for (int i = 0; i < 6; ++i)
        items.push_back({"small" + std::to_string(i), ripple_carry_adder(4 + (i % 3))});
    return items;
}

struct StealResult {
    int jobs = 0;
    std::size_t items = 0;
    double off_seconds = 0.0;
    double on_seconds = 0.0;
    bool identical = false;
};

/// Same skewed batch with stealing off then on, cold caches both times;
/// `identical` is full-structural-hash equality of every item's output.
StealResult steal_sweep(const std::vector<BatchItem>& items, const LookaheadParams& params,
                        int jobs) {
    auto run_mode = [&](bool steal, std::vector<std::uint64_t>* hashes) {
        clear_engine_caches();
        EngineOptions engine;
        engine.jobs = jobs;
        engine.steal = steal;
        Stopwatch sw;
        const auto outcomes = optimize_timing_batch(items, params, engine);
        const double seconds = sw.elapsed_seconds();
        for (const auto& outcome : outcomes) {
            if (outcome.failed) {
                std::fprintf(stderr, "BATCH ITEM FAILED: %s: %s\n", outcome.name.c_str(),
                             outcome.error.c_str());
                std::exit(1);
            }
            hashes->push_back(outcome.output.hash());
        }
        return seconds;
    };
    StealResult result;
    result.jobs = jobs;
    result.items = items.size();
    std::vector<std::uint64_t> off_hashes, on_hashes;
    result.off_seconds = run_mode(false, &off_hashes);
    result.on_seconds = run_mode(true, &on_hashes);
    result.identical = off_hashes == on_hashes;
    std::printf("  jobs=%-3d steal off %7.2fs   steal on %7.2fs   speedup %.2fx   outputs %s\n",
                jobs, result.off_seconds, result.on_seconds,
                result.off_seconds / result.on_seconds,
                result.identical ? "identical" : "DIFFER (BUG)");
    std::fflush(stdout);
    return result;
}

/// Single dominant-cone input for the intra-cone sweep: one deep
/// single-PO circuit, so every round evaluates exactly one cone and only
/// the per-cube SAT don't-care proofs inside it can use the pool. 18 PIs
/// keep simulation non-exhaustive (random patterns), which is what routes
/// unreached don't-care candidates to SAT in the first place.
Aig dominant_cone_circuit() {
    BenchmarkProfile profile;
    profile.name = "intracone_big";
    profile.num_pis = 18;
    profile.num_pos = 1;
    profile.chain_length = 28;
    profile.num_shared = 8;
    profile.seed = 47;
    return synthetic_control_circuit(profile);
}

struct IntraConeResult {
    int jobs = 0;
    double off_seconds = 0.0;
    double on_seconds = 0.0;
    std::uint64_t queries = 0;           ///< SAT don't-care proofs in the `on` run
    std::uint64_t parallel_batches = 0;  ///< multi-task fan-out dispatches in the `on` run
    bool identical = false;
};

/// The dominant-cone circuit with the intra-cone fan-out off then on, cold
/// caches both times; `identical` is structural-hash equality plus equal
/// deterministic work spend.
IntraConeResult intracone_sweep(const Aig& circuit, const LookaheadParams& params, int jobs) {
    auto run_mode = [&](bool intra, std::uint64_t* hash, std::uint64_t* work) {
        clear_engine_caches();
        EngineOptions engine;
        engine.jobs = jobs;
        engine.intra_cone = intra;
        OptimizeStats stats;
        Stopwatch sw;
        const Aig out = optimize_timing_engine(circuit, params, engine, &stats);
        const double seconds = sw.elapsed_seconds();
        if (!stats.verified) {
            std::fprintf(stderr, "VERIFICATION FAILURE at intra_cone=%d\n", intra ? 1 : 0);
            std::exit(1);
        }
        *hash = out.hash();
        *work = stats.work_units;
        return seconds;
    };
    IntraConeResult result;
    result.jobs = jobs;
    std::uint64_t off_hash = 0, on_hash = 0, off_work = 0, on_work = 0;
    result.off_seconds = run_mode(false, &off_hash, &off_work);
    Metrics& metrics = Metrics::global();
    const std::uint64_t queries_before = metrics.counter("engine.intracone.queries").value();
    const std::uint64_t batches_before =
        metrics.counter("engine.intracone.parallel_batches").value();
    result.on_seconds = run_mode(true, &on_hash, &on_work);
    result.queries = metrics.counter("engine.intracone.queries").value() - queries_before;
    result.parallel_batches =
        metrics.counter("engine.intracone.parallel_batches").value() - batches_before;
    result.identical = off_hash == on_hash && off_work == on_work;
    std::printf("  jobs=%-3d intra off %7.2fs   intra on %7.2fs   speedup %.2fx   "
                "%llu proofs / %llu parallel batches   outputs %s\n",
                jobs, result.off_seconds, result.on_seconds,
                result.off_seconds / result.on_seconds,
                static_cast<unsigned long long>(result.queries),
                static_cast<unsigned long long>(result.parallel_batches),
                result.identical ? "identical" : "DIFFER (BUG)");
    std::fflush(stdout);
    return result;
}

struct MemgovRow {
    std::uint64_t budget = 0;  ///< global rail in bytes (0 = unlimited)
    double seconds = 0.0;
    int depth = 0;
    std::size_t ands = 0;
    int quota_degraded = 0;
    std::uint64_t shed_events = 0;
    std::uint64_t charged_bytes = 0;
};

/// The adder under a fixed tight per-cone quota at several global budgets,
/// cold caches each time. Tier 1 degrades the same cones at every budget
/// (the quota is schedule- and budget-invariant); Tier 2 sheds more as the
/// budget shrinks. `*identical` is QoR + degrade-count equality across all
/// budgets — the rail must never change results.
std::vector<MemgovRow> memgov_sweep(const Aig& circuit, const LookaheadParams& base, int jobs,
                                    bool* identical) {
    constexpr std::uint64_t kConeQuota = std::uint64_t{4} << 20;
    const std::uint64_t budgets[] = {0, std::uint64_t{256} << 20, std::uint64_t{64} << 20,
                                     std::uint64_t{16} << 20};
    std::vector<MemgovRow> rows;
    for (const std::uint64_t budget : budgets) {
        clear_engine_caches();
        LookaheadParams params = base;
        params.cone_mem_bytes = kConeQuota;
        MemoryGovernor governor(budget);
        register_memo_governance(governor);
        EngineOptions engine;
        engine.jobs = jobs;
        engine.governor = &governor;
        OptimizeStats stats;
        Stopwatch sw;
        const Aig out = optimize_timing_engine(circuit, params, engine, &stats);
        const double seconds = sw.elapsed_seconds();
        if (!stats.verified) {
            std::fprintf(stderr, "VERIFICATION FAILURE at mem budget %llu\n",
                         static_cast<unsigned long long>(budget));
            std::exit(1);
        }
        rows.push_back({budget, seconds, out.depth(), out.count_reachable_ands(),
                        stats.quota_degraded, governor.shed_events(), governor.charged_total()});
        char label[32];
        if (budget == 0) std::snprintf(label, sizeof label, "unlimited");
        else std::snprintf(label, sizeof label, "%lluM",
                           static_cast<unsigned long long>(budget >> 20));
        std::printf("  budget %-10s %7.2fs   depth %2d   %6zu ANDs   %d cone(s) degraded   "
                    "%llu shed event(s)   %llu MB charged\n",
                    label, seconds, out.depth(), out.count_reachable_ands(),
                    stats.quota_degraded, static_cast<unsigned long long>(rows.back().shed_events),
                    static_cast<unsigned long long>(rows.back().charged_bytes >> 20));
        std::fflush(stdout);
    }
    *identical = true;
    for (const auto& row : rows)
        *identical = *identical && row.depth == rows.front().depth &&
                     row.ands == rows.front().ands &&
                     row.quota_degraded == rows.front().quota_degraded;
    return rows;
}

std::string memgov_rows_json(const std::vector<MemgovRow>& rows) {
    std::string json = "[";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        if (i) json += ',';
        json += "{\"budget_bytes\":" + std::to_string(rows[i].budget) +
                ",\"seconds\":" + std::to_string(rows[i].seconds) +
                ",\"depth\":" + std::to_string(rows[i].depth) +
                ",\"ands\":" + std::to_string(rows[i].ands) +
                ",\"quota_degraded\":" + std::to_string(rows[i].quota_degraded) +
                ",\"shed_events\":" + std::to_string(rows[i].shed_events) +
                ",\"charged_bytes\":" + std::to_string(rows[i].charged_bytes) + "}";
    }
    return json + "]";
}

}  // namespace

int main(int argc, char** argv) {
    int bits = 16, max_jobs = 4, iterations = 4;
    const bool args_ok =
        (argc <= 1 || parse_int_option("bits", argv[1], 2, 4096, &bits)) &&
        (argc <= 2 || parse_int_option("max_jobs", argv[2], 1, 1024, &max_jobs)) &&
        (argc <= 3 || parse_int_option("iterations", argv[3], 1, 1000000, &iterations));
    if (!args_ok) {
        std::fprintf(stderr, "usage: %s [bits>=2] [max_jobs>=1] [iterations>=1]\n", argv[0]);
        return 2;
    }

    const Aig rca = ripple_carry_adder(bits);
    LookaheadParams params;
    params.max_iterations = iterations;

    std::printf("parallel scaling: %d-bit ripple adder, %zu PIs, %zu POs, depth %d, %zu ANDs "
                "(%zu hardware threads)\n",
                bits, rca.num_pis(), rca.num_pos(), rca.depth(), rca.count_reachable_ands(),
                ThreadPool::hardware_jobs());

    std::vector<int> job_counts;
    for (int j = 1; j <= max_jobs; j *= 2) job_counts.push_back(j);
    if (job_counts.back() != max_jobs) job_counts.push_back(max_jobs);

    bool identical = false;
    const std::vector<Row> rows = sweep(rca, params, job_counts, &identical);
    std::printf("QoR identical across job counts: %s\n", identical ? "yes" : "NO (BUG)");

    // Budgeted sweep: the same circuit under a deterministic work budget
    // that binds mid-run (half the unbudgeted spend), asserting that the
    // bit-identical guarantee survives budget exhaustion.
    const std::uint64_t work_budget = std::max<std::uint64_t>(1, rows.front().work_units / 2);
    std::printf("budgeted scaling: --work-budget %llu (half of unbudgeted %llu units)\n",
                static_cast<unsigned long long>(work_budget),
                static_cast<unsigned long long>(rows.front().work_units));
    LookaheadParams budgeted_params = params;
    budgeted_params.work_budget = work_budget;
    bool budgeted_identical = false;
    const std::vector<Row> budgeted_rows =
        sweep(rca, budgeted_params, job_counts, &budgeted_identical);
    std::printf("QoR identical across job counts with budget: %s\n",
                budgeted_identical ? "yes" : "NO (BUG)");

    // Shared-vs-private BDD manager on the exact-verification workload.
    // Capped at a 10-bit adder: with the generator's PI order (all a's,
    // then all b's) adder cone BDDs grow exponentially in the bit width,
    // and past ~12 bits they exceed any sane node limit — which used to
    // kill this bench with an uncaught ResourceExhausted at the default
    // 16-bit size.
    const Aig bdd_rca = bits <= 10 ? rca : ripple_carry_adder(10);
    std::printf("shared BDD manager: node BDDs of all %zu PO cones x32 rounds (%d-bit adder)\n",
                bdd_rca.num_pos(), bits <= 10 ? bits : 10);
    const std::vector<BddRow> bdd_rows = bdd_sweep(bdd_rca, job_counts);
    bool bdd_sharing_observed = false;
    for (const auto& row : bdd_rows)
        bdd_sharing_observed = bdd_sharing_observed || row.shared_hit_rate > 0.0;
    std::printf("cross-worker ITE-cache hits observed: %s\n",
                bdd_sharing_observed ? "yes" : "NO (BUG)");

    // Two-level work stealing on the skewed batch, at the largest job
    // count (stealing only matters once workers outnumber live items).
    const int steal_jobs = std::max(2, max_jobs);
    const std::vector<BatchItem> batch = skewed_batch();
    std::printf("steal sweep: skewed batch, %zu items (1 big + %zu small), --jobs %d\n",
                batch.size(), batch.size() - 1, steal_jobs);
    const StealResult steal = steal_sweep(batch, params, steal_jobs);

    // Intra-cone fan-out on the single dominant cone, at the same largest
    // job count; random patterns forced so the SAT don't-care path runs.
    const Aig dominant = dominant_cone_circuit();
    LookaheadParams intracone_params = params;
    intracone_params.force_random_patterns = true;
    std::printf("intra-cone sweep: single dominant cone (%zu PIs, depth %d, %zu ANDs), "
                "--jobs %d\n",
                dominant.num_pis(), dominant.depth(), dominant.count_reachable_ands(),
                steal_jobs);
    const IntraConeResult intracone = intracone_sweep(dominant, intracone_params, steal_jobs);

    // Memory-governor sweep: fixed tight per-cone quota, shrinking global
    // budgets; outputs must be identical at every budget.
    std::printf("memgov sweep: --cone-mem 4M at budgets unlimited/256M/64M/16M, --jobs %d\n",
                steal_jobs);
    bool memgov_identical = false;
    const std::vector<MemgovRow> memgov_rows =
        memgov_sweep(rca, params, steal_jobs, &memgov_identical);
    std::printf("QoR identical across memory budgets: %s\n",
                memgov_identical ? "yes" : "NO (BUG)");

    std::string json = "{\"circuit\":\"rca" + std::to_string(bits) + "\",\"bits\":" +
                       std::to_string(bits) + ",\"iterations\":" + std::to_string(iterations) +
                       ",\"hardware_threads\":" + std::to_string(ThreadPool::hardware_jobs()) +
                       ",\"qor_identical\":" + (identical ? "true" : "false") +
                       ",\"runs\":" + rows_json(rows) +
                       ",\"budgeted\":{\"work_budget\":" + std::to_string(work_budget) +
                       ",\"qor_identical\":" + (budgeted_identical ? "true" : "false") +
                       ",\"runs\":" + rows_json(budgeted_rows) + "}" +
                       ",\"bdd\":{\"sharing_observed\":" + (bdd_sharing_observed ? "true" : "false") +
                       ",\"runs\":" + bdd_rows_json(bdd_rows) + "}" +
                       ",\"steal\":{\"jobs\":" + std::to_string(steal.jobs) +
                       ",\"items\":" + std::to_string(steal.items) +
                       ",\"off_seconds\":" + std::to_string(steal.off_seconds) +
                       ",\"on_seconds\":" + std::to_string(steal.on_seconds) +
                       ",\"speedup\":" + std::to_string(steal.off_seconds / steal.on_seconds) +
                       ",\"identical\":" + (steal.identical ? "true" : "false") + "}" +
                       ",\"intracone\":{\"jobs\":" + std::to_string(intracone.jobs) +
                       ",\"queries\":" + std::to_string(intracone.queries) +
                       ",\"parallel_batches\":" + std::to_string(intracone.parallel_batches) +
                       ",\"off_seconds\":" + std::to_string(intracone.off_seconds) +
                       ",\"on_seconds\":" + std::to_string(intracone.on_seconds) +
                       ",\"speedup\":" +
                       std::to_string(intracone.off_seconds / intracone.on_seconds) +
                       ",\"identical\":" + (intracone.identical ? "true" : "false") + "}" +
                       ",\"memgov\":{\"cone_mem_bytes\":" +
                       std::to_string(std::uint64_t{4} << 20) +
                       ",\"identical\":" + (memgov_identical ? "true" : "false") +
                       ",\"runs\":" + memgov_rows_json(memgov_rows) + "}}\n";
    if (std::FILE* f = std::fopen("BENCH_parallel.json", "w")) {
        std::fputs(json.c_str(), f);
        std::fclose(f);
        std::printf("wrote BENCH_parallel.json\n");
    }
    return identical && budgeted_identical && bdd_sharing_observed && steal.identical &&
                   intracone.identical && memgov_identical
               ? 0
               : 1;
}
