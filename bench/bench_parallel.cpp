// Scaling bench of the concurrent optimization engine: optimizes a
// multi-output circuit (ripple-carry adder, every sum output on the
// critical ripple chain) with an increasing number of jobs and reports
// wall-clock speedup over the serial engine. The engine's determinism
// contract makes the comparison exact: every job count must produce the
// same depth and AND count, which this bench asserts.
//
//   bench_parallel [bits] [max_jobs] [iterations]
//
// Results go to stdout and to BENCH_parallel.json (machine-readable, one
// object per jobs value) so the perf trajectory is tracked across PRs.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/stopwatch.hpp"
#include "common/thread_pool.hpp"
#include "engine/engine.hpp"
#include "io/generators.hpp"

using namespace lls;

int main(int argc, char** argv) {
    const int bits = argc > 1 ? std::atoi(argv[1]) : 16;
    const int max_jobs = argc > 2 ? std::atoi(argv[2]) : 4;
    const int iterations = argc > 3 ? std::atoi(argv[3]) : 4;
    if (bits < 2 || max_jobs < 1 || iterations < 1) {
        std::fprintf(stderr, "usage: %s [bits>=2] [max_jobs>=1] [iterations>=1]\n", argv[0]);
        return 2;
    }

    const Aig rca = ripple_carry_adder(bits);
    LookaheadParams params;
    params.max_iterations = iterations;

    std::printf("parallel scaling: %d-bit ripple adder, %zu PIs, %zu POs, depth %d, %zu ANDs "
                "(%zu hardware threads)\n",
                bits, rca.num_pis(), rca.num_pos(), rca.depth(), rca.count_reachable_ands(),
                ThreadPool::hardware_jobs());

    struct Row {
        int jobs;
        double seconds;
        int depth;
        std::size_t ands;
    };
    std::vector<Row> rows;
    std::vector<int> job_counts;
    for (int j = 1; j <= max_jobs; j *= 2) job_counts.push_back(j);
    if (job_counts.back() != max_jobs) job_counts.push_back(max_jobs);

    for (const int jobs : job_counts) {
        // Each jobs value must redo the full work: the process-wide memo
        // would otherwise hand later runs the earlier runs' results and
        // fake the scaling curve.
        clear_engine_caches();
        EngineOptions engine;
        engine.jobs = jobs;
        OptimizeStats stats;
        Stopwatch sw;
        const Aig out = optimize_timing_engine(rca, params, engine, &stats);
        const double seconds = sw.elapsed_seconds();
        if (!stats.verified) {
            std::fprintf(stderr, "VERIFICATION FAILURE at jobs=%d\n", jobs);
            return 1;
        }
        rows.push_back({jobs, seconds, out.depth(), out.count_reachable_ands()});
        std::printf("  jobs=%-3d %8.2fs   depth %2d   %6zu ANDs   speedup %.2fx\n", jobs,
                    seconds, out.depth(), out.count_reachable_ands(),
                    rows.front().seconds / seconds);
        std::fflush(stdout);
    }

    bool identical = true;
    for (const auto& row : rows)
        identical = identical && row.depth == rows.front().depth && row.ands == rows.front().ands;
    std::printf("QoR identical across job counts: %s\n", identical ? "yes" : "NO (BUG)");

    std::string json = "{\"circuit\":\"rca" + std::to_string(bits) + "\",\"bits\":" +
                       std::to_string(bits) + ",\"iterations\":" + std::to_string(iterations) +
                       ",\"hardware_threads\":" + std::to_string(ThreadPool::hardware_jobs()) +
                       ",\"qor_identical\":" + (identical ? "true" : "false") + ",\"runs\":[";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        if (i) json += ',';
        json += "{\"jobs\":" + std::to_string(rows[i].jobs) +
                ",\"seconds\":" + std::to_string(rows[i].seconds) +
                ",\"speedup\":" + std::to_string(rows.front().seconds / rows[i].seconds) +
                ",\"depth\":" + std::to_string(rows[i].depth) +
                ",\"ands\":" + std::to_string(rows[i].ands) + "}";
    }
    json += "]}\n";
    if (std::FILE* f = std::fopen("BENCH_parallel.json", "w")) {
        std::fputs(json.c_str(), f);
        std::fclose(f);
        std::printf("wrote BENCH_parallel.json\n");
    }
    return identical ? 0 : 1;
}
