// Micro-benchmarks for the substrate libraries (google-benchmark): truth
// tables, ISOP/minimum-SOP, AIG construction, cut enumeration, simulation,
// floating-mode timing simulation, SAT, CEC, and the baseline passes.

#include <benchmark/benchmark.h>

#include "aig/aig_build.hpp"
#include "aig/cuts.hpp"
#include "baseline/restructure.hpp"
#include "cec/cec.hpp"
#include "common/rng.hpp"
#include "io/generators.hpp"
#include "lookahead/decompose.hpp"
#include "sim/simulation.hpp"
#include "sop/sop.hpp"

using namespace lls;

namespace {

TruthTable random_tt(int num_vars, Rng& rng) {
    TruthTable tt(num_vars);
    for (std::uint64_t m = 0; m < tt.num_minterms(); ++m) tt.set_bit(m, rng.next_bool());
    return tt;
}

void BM_TruthTableOps(benchmark::State& state) {
    Rng rng(1);
    const int n = static_cast<int>(state.range(0));
    const TruthTable a = random_tt(n, rng);
    const TruthTable b = random_tt(n, rng);
    for (auto _ : state) {
        benchmark::DoNotOptimize((a & b) | (~a ^ b));
    }
}
BENCHMARK(BM_TruthTableOps)->Arg(6)->Arg(10)->Arg(14);

void BM_Isop(benchmark::State& state) {
    Rng rng(2);
    const int n = static_cast<int>(state.range(0));
    std::vector<TruthTable> tts;
    for (int i = 0; i < 32; ++i) tts.push_back(random_tt(n, rng));
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(isop(tts[i++ % tts.size()]));
    }
}
BENCHMARK(BM_Isop)->Arg(4)->Arg(6)->Arg(8);

void BM_MinimumSop(benchmark::State& state) {
    Rng rng(3);
    const int n = static_cast<int>(state.range(0));
    std::vector<TruthTable> tts;
    for (int i = 0; i < 32; ++i) tts.push_back(random_tt(n, rng));
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(minimum_sop(tts[i++ % tts.size()]));
    }
}
BENCHMARK(BM_MinimumSop)->Arg(4)->Arg(6);

void BM_AigConstruction(benchmark::State& state) {
    const int bits = static_cast<int>(state.range(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(ripple_carry_adder(bits));
    }
}
BENCHMARK(BM_AigConstruction)->Arg(16)->Arg(64);

void BM_CutEnumeration(benchmark::State& state) {
    const Aig adder = ripple_carry_adder(static_cast<int>(state.range(0)));
    for (auto _ : state) {
        CutEnumerator cuts(adder, 5, 8);
        benchmark::DoNotOptimize(cuts.cuts(static_cast<std::uint32_t>(adder.num_nodes()) - 1));
    }
}
BENCHMARK(BM_CutEnumeration)->Arg(16)->Arg(64);

void BM_Simulation(benchmark::State& state) {
    const Aig adder = ripple_carry_adder(32);
    Rng rng(4);
    const SimPatterns patterns = SimPatterns::random(adder.num_pis(), 2048, rng);
    for (auto _ : state) {
        benchmark::DoNotOptimize(simulate(adder, patterns));
    }
}
BENCHMARK(BM_Simulation);

void BM_TimingSimulation(benchmark::State& state) {
    const Aig adder = ripple_carry_adder(32);
    Rng rng(5);
    const SimPatterns patterns = SimPatterns::random(adder.num_pis(), 1024, rng);
    const auto sigs = simulate(adder, patterns);
    for (auto _ : state) {
        benchmark::DoNotOptimize(timing_simulate(adder, patterns, sigs));
    }
}
BENCHMARK(BM_TimingSimulation);

void BM_SatAdderMiter(benchmark::State& state) {
    const Aig rca = ripple_carry_adder(static_cast<int>(state.range(0)));
    const Aig cla = carry_lookahead_adder(static_cast<int>(state.range(0)));
    for (auto _ : state) {
        benchmark::DoNotOptimize(check_equivalence(rca, cla));
    }
}
BENCHMARK(BM_SatAdderMiter)->Arg(8)->Arg(16)->Arg(32);

void BM_SatSweep(benchmark::State& state) {
    const Aig adder = ripple_carry_adder(16);
    for (auto _ : state) {
        Rng rng(6);
        benchmark::DoNotOptimize(sat_sweep(adder, rng));
    }
}
BENCHMARK(BM_SatSweep);

void BM_Balance(benchmark::State& state) {
    const Aig adder = ripple_carry_adder(64);
    for (auto _ : state) {
        benchmark::DoNotOptimize(balance(adder));
    }
}
BENCHMARK(BM_Balance);

void BM_RestructureDelay(benchmark::State& state) {
    const Aig adder = ripple_carry_adder(32);
    RestructureOptions opt;
    opt.delay_oriented = true;
    for (auto _ : state) {
        benchmark::DoNotOptimize(restructure(adder, opt));
    }
}
BENCHMARK(BM_RestructureDelay);

void BM_DecomposeCoutCone(benchmark::State& state) {
    const Aig rca = ripple_carry_adder(8);
    const Aig cone = extract_cone(rca, rca.num_pos() - 1);
    LookaheadParams params;
    for (auto _ : state) {
        Rng rng(7);
        benchmark::DoNotOptimize(decompose_output(cone, params, rng));
    }
}
BENCHMARK(BM_DecomposeCoutCone);

}  // namespace

BENCHMARK_MAIN();
