// Reproduces Table 2 of the paper: fifteen MCNC / ISCAS85 / OpenSPARC T1
// control-logic circuits optimized with the three baseline flow stand-ins
// (SIS / ABC / Synopsys DC) and with the lookahead technique, reporting AIG
// gates, AIG levels, technology-mapped delay, and dynamic power at 1 GHz.
//
// The circuits are synthetic stand-ins with the paper's PI/PO interfaces
// (the originals are not redistributable); see DESIGN.md "Substitutions".
// The reproduced claim is the relative shape: lookahead achieves the lowest
// levels and mapped delay on average, at a modest power premium over the
// best baseline.

#include <cstdio>
#include <string>
#include <vector>

#include "baseline/flows.hpp"
#include "cec/cec.hpp"
#include "common/stopwatch.hpp"
#include "io/generators.hpp"
#include "lookahead/optimize.hpp"
#include "mapping/mapper.hpp"

using namespace lls;

namespace {

struct FlowResult {
    std::size_t gates = 0;
    int levels = 0;
    double delay_ps = 0.0;
    double power_mw = 0.0;
};

FlowResult evaluate(const Aig& original, const Aig& optimized, const CellLibrary& lib,
                    const char* flow, const char* circuit) {
    const CecResult cec = check_equivalence(original, optimized, 4000000);
    if (!cec.resolved || !cec.equivalent) {
        std::fprintf(stderr, "EQUIVALENCE FAILURE: %s on %s\n", flow, circuit);
        std::exit(1);
    }
    const MappedCircuit mapped = map_circuit(optimized, lib);
    return FlowResult{optimized.count_reachable_ands(), optimized.depth(), mapped.delay_ps,
                      mapped.power_mw};
}

}  // namespace

int main() {
    const CellLibrary lib = CellLibrary::generic_70nm();
    const auto profiles = table2_profiles();

    std::printf("Table 2: comparison of the proposed technique with the best algorithms in "
                "SIS, ABC, and Synopsys DC (synthetic benchmark stand-ins)\n");
    std::printf("%-22s %-9s | %-28s | %-28s | %-28s | %-28s\n", "Name", "PI/PO",
                "SIS   gates lvl  delay  power", "ABC   gates lvl  delay  power",
                "DC    gates lvl  delay  power", "LA    gates lvl  delay  power");

    const char* flow_names[4] = {"sis", "abc", "dc", "lookahead"};
    double sum_levels[4] = {0, 0, 0, 0};
    double sum_delay[4] = {0, 0, 0, 0};
    double sum_power[4] = {0, 0, 0, 0};
    double sum_gates[4] = {0, 0, 0, 0};
    std::string json = "{\"benchmarks\":[";
    bool json_first = true;

    Stopwatch total;
    for (const auto& profile : profiles) {
        const Aig circuit = synthetic_control_circuit(profile);
        Rng rng(7);

        FlowResult r[4];
        r[0] = evaluate(circuit, flow_sis(circuit, rng), lib, flow_names[0], profile.name.c_str());
        r[1] = evaluate(circuit, flow_abc(circuit, rng), lib, flow_names[1], profile.name.c_str());
        r[2] = evaluate(circuit, flow_dc(circuit, rng), lib, flow_names[2], profile.name.c_str());

        LookaheadParams params;
        params.max_iterations = 8;
        params.time_budget_seconds = 180.0;  // bound the largest OpenSPARC stand-ins
        const Aig ours = optimize_timing(circuit, params);
        r[3] = evaluate(circuit, ours, lib, flow_names[3], profile.name.c_str());

        std::printf("%-22s %3d/%-5d |", profile.name.c_str(), profile.num_pis, profile.num_pos);
        if (!json_first) json += ',';
        json_first = false;
        json += "{\"name\":\"" + profile.name + "\",\"pis\":" + std::to_string(profile.num_pis) +
                ",\"pos\":" + std::to_string(profile.num_pos) + ",\"flows\":{";
        for (int f = 0; f < 4; ++f) {
            std::printf(" %10zu %3d %6.0f %6.3f |", r[f].gates, r[f].levels, r[f].delay_ps,
                        r[f].power_mw);
            sum_gates[f] += static_cast<double>(r[f].gates);
            sum_levels[f] += r[f].levels;
            sum_delay[f] += r[f].delay_ps;
            sum_power[f] += r[f].power_mw;
            if (f) json += ',';
            json += "\"" + std::string(flow_names[f]) + "\":{\"gates\":" +
                    std::to_string(r[f].gates) + ",\"levels\":" + std::to_string(r[f].levels) +
                    ",\"delay_ps\":" + std::to_string(r[f].delay_ps) +
                    ",\"power_mw\":" + std::to_string(r[f].power_mw) + "}";
        }
        json += "}}";
        std::printf("\n");
        std::fflush(stdout);
    }

    const double n = static_cast<double>(profiles.size());
    std::printf("%-22s %9s |", "Average", "");
    for (int f = 0; f < 4; ++f)
        std::printf(" %10.0f %3.0f %6.0f %6.3f |", sum_gates[f] / n, sum_levels[f] / n,
                    sum_delay[f] / n, sum_power[f] / n);
    std::printf("\n\n");

    auto reduction = [&](const double* sums) {
        std::printf("  vs SIS %+5.1f%%   vs ABC %+5.1f%%   vs DC %+5.1f%%\n",
                    100.0 * (sums[3] - sums[0]) / sums[0], 100.0 * (sums[3] - sums[1]) / sums[1],
                    100.0 * (sums[3] - sums[2]) / sums[2]);
    };
    std::printf("Lookahead average AIG levels change:\n");
    reduction(sum_levels);
    std::printf("Lookahead average mapped delay change:\n");
    reduction(sum_delay);
    std::printf("Lookahead average power change:\n");
    reduction(sum_power);
    std::printf("Lookahead average gate-count change:\n");
    reduction(sum_gates);
    std::printf("(paper: levels -40%%/-56%%/-22%%, delay -21%%/-56%%/-10%%, power ~+10%% vs DC; "
                "all circuits CEC-verified; %.1fs total)\n", total.elapsed_seconds());

    json += "],\"total_seconds\":" + std::to_string(total.elapsed_seconds()) + "}\n";
    if (std::FILE* f = std::fopen("BENCH_table2.json", "w")) {
        std::fputs(json.c_str(), f);
        std::fclose(f);
        std::printf("wrote BENCH_table2.json\n");
    }
    return 0;
}
