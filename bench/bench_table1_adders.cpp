// Reproduces Table 1 of the paper: best AIG levels after timing
// optimization of an n-bit ripple-carry adder, n = 2, 4, 8, 16, for the
// "Optimum" carry-lookahead reference, the three baseline flow stand-ins
// (SIS / ABC / Synopsys DC), and the proposed lookahead technique.
//
// Absolute numbers differ from the paper (different AIG costs for XOR and
// different baseline implementations); the claim reproduced is the *shape*:
// the baselines stay far from the optimum while lookahead lands at or near
// it (and below SIS/ABC/DC on every size).

#include <cstdio>

#include "baseline/flows.hpp"
#include "cec/cec.hpp"
#include "common/stopwatch.hpp"
#include "io/generators.hpp"
#include "lookahead/optimize.hpp"

using namespace lls;

namespace {

int run_flow(const char* name, const Aig& input, const Aig& optimized) {
    const CecResult cec = check_equivalence(input, optimized, 2000000);
    if (!cec.resolved || !cec.equivalent) {
        std::fprintf(stderr, "EQUIVALENCE FAILURE in flow %s\n", name);
        std::exit(1);
    }
    return optimized.depth();
}

}  // namespace

int main() {
    std::printf("Table 1: best AIG levels after timing optimization of an n-bit adder\n");
    std::printf("%-4s %-8s %-6s %-6s %-12s %-10s\n", "n", "Optimum", "SIS", "ABC", "Synopsys DC",
                "Lookahead");

    Stopwatch total;
    for (const int n : {2, 4, 8, 16}) {
        const Aig rca = ripple_carry_adder(n);
        const Aig cla = carry_lookahead_adder(n);

        Rng rng(1);
        const int d_opt = cla.depth();
        const int d_sis = run_flow("sis", rca, flow_sis(rca, rng));
        const int d_abc = run_flow("abc", rca, flow_abc(rca, rng));
        const int d_dc = run_flow("dc", rca, flow_dc(rca, rng));

        LookaheadParams params;
        params.max_iterations = 12;
        OptimizeStats stats;
        const Aig ours = optimize_timing(rca, params, &stats);
        const int d_la = run_flow("lookahead", rca, ours);

        std::printf("%-4d %-8d %-6d %-6d %-12d %-10d\n", n, d_opt, d_sis, d_abc, d_dc, d_la);
        std::fflush(stdout);
    }
    std::printf("(all optimized circuits verified equivalent to the ripple-carry input; "
                "%.1fs total)\n", total.elapsed_seconds());
    return 0;
}
