// Ablation study for the design choices called out in DESIGN.md:
//   * implication-rule reconstruction on/off,
//   * secondary simplification on/off,
//   * interleaved conventional restructuring on/off (pure decomposition),
//   * SAT-sweep area recovery on/off,
//   * exact (exhaustive) vs sampled SPCF on the same circuit,
//   * SPCF slack (strictly critical vs near-critical paths).
// Each variant is CEC-verified; reported are final AIG depth, gate count,
// and runtime.

#include <cstdio>
#include <string>
#include <vector>

#include "baseline/permissible.hpp"
#include "baseline/select_transform.hpp"
#include "cec/cec.hpp"
#include "common/stopwatch.hpp"
#include "io/generators.hpp"
#include "lookahead/optimize.hpp"

using namespace lls;

namespace {

void run(const char* circuit_name, const Aig& circuit, const char* variant,
         const LookaheadParams& params) {
    Stopwatch sw;
    OptimizeStats stats;
    const Aig out = optimize_timing(circuit, params, &stats);
    const CecResult cec = check_equivalence(circuit, out, 2000000);
    std::printf("%-10s %-26s depth %2d -> %2d  gates %4zu -> %4zu  decomps=%2d  %5.2fs  %s\n",
                circuit_name, variant, stats.initial_depth, stats.final_depth, stats.initial_ands,
                stats.final_ands, stats.outputs_decomposed, sw.elapsed_seconds(),
                cec.equivalent ? "verified" : "NOT EQUIVALENT");
    if (!cec.equivalent) std::exit(1);
    std::fflush(stdout);
}

}  // namespace

int main() {
    std::printf("Ablation study (lookahead flow variants)\n");

    std::vector<std::pair<std::string, Aig>> circuits;
    circuits.emplace_back("rca12", ripple_carry_adder(12));
    circuits.emplace_back("ctl", synthetic_control_circuit({"ctl", 24, 8, 12, 14, 21}));

    for (const auto& [name, circuit] : circuits) {
        {
            LookaheadParams p;
            run(name.c_str(), circuit, "full flow", p);
        }
        {
            LookaheadParams p;
            p.use_implication_rules = false;
            run(name.c_str(), circuit, "no implication rules", p);
        }
        {
            LookaheadParams p;
            p.secondary_simplification = false;
            run(name.c_str(), circuit, "no secondary simplif.", p);
        }
        {
            LookaheadParams p;
            p.baseline_preoptimize = false;
            run(name.c_str(), circuit, "pure decomposition", p);
        }
        {
            LookaheadParams p;
            p.area_recovery = false;
            run(name.c_str(), circuit, "no area recovery", p);
        }
        {
            LookaheadParams p;
            p.force_random_patterns = true;
            run(name.c_str(), circuit, "sampled SPCF (forced)", p);
        }
        {
            LookaheadParams p;
            p.spcf_slack = 2;
            run(name.c_str(), circuit, "SPCF slack = 2", p);
        }
        {
            // Topology-only comparison point: the generalized select
            // transform (Sec. 2 of the paper) — the special case of the
            // lookahead decomposition with window = one internal signal.
            Stopwatch sw;
            const Aig out = generalized_select_transform(circuit);
            const CecResult cec = check_equivalence(circuit, out, 2000000);
            std::printf("%-10s %-26s depth %2d -> %2d  gates %4zu -> %4zu  decomps= -  %5.2fs  %s\n",
                        name.c_str(), "select transform [2] only", circuit.depth(), out.depth(),
                        circuit.count_reachable_ands(), out.count_reachable_ands(),
                        sw.elapsed_seconds(), cec.equivalent ? "verified" : "NOT EQUIVALENT");
            if (!cec.equivalent) return 1;
        }
        {
            // Prior function-based comparison point: permissible-function /
            // don't-care resynthesis ([6]-style, ~ SIS full_simplify) — the
            // paper's argument is that it optimizes area, not timing.
            Stopwatch sw;
            const Aig out = permissible_function_simplify(circuit);
            const CecResult cec = check_equivalence(circuit, out, 2000000);
            std::printf("%-10s %-26s depth %2d -> %2d  gates %4zu -> %4zu  decomps= -  %5.2fs  %s\n",
                        name.c_str(), "permissible fns [6] only", circuit.depth(), out.depth(),
                        circuit.count_reachable_ands(), out.count_reachable_ands(),
                        sw.elapsed_seconds(), cec.equivalent ? "verified" : "NOT EQUIVALENT");
            if (!cec.equivalent) return 1;
        }
    }
    return 0;
}
