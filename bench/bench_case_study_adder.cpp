// Reproduces the Sec. 4 case study: the 2-bit adder's carry-out admits four
// different optimal-level decompositions — carry lookahead (two disjoint
// window levels), carry select, carry bypass, and the paper's "new"
// overlapping decomposition. Each is built from the paper's equations,
// verified equivalent to the ripple-carry c_out, and measured; then the
// lookahead flow is run on the ripple form to show it discovers a
// realization at the same level budget.

#include <cstdio>

#include "aig/aig_build.hpp"
#include "cec/cec.hpp"
#include "io/generators.hpp"
#include "lookahead/optimize.hpp"

using namespace lls;

namespace {

struct Slices {
    AigLit a1, a2, b1, b2, cin;
    AigLit g1, g2, p1, p2;
};

Slices make_slices(Aig& aig) {
    Slices s;
    // PI order matches ripple_carry_adder(2): a0 a1 b0 b1 cin. The paper
    // indexes bits from 1.
    s.a1 = aig.add_pi("a0");
    s.a2 = aig.add_pi("a1");
    s.b1 = aig.add_pi("b0");
    s.b2 = aig.add_pi("b1");
    s.cin = aig.add_pi("cin");
    s.g1 = aig.land(s.a1, s.b1);
    s.g2 = aig.land(s.a2, s.b2);
    s.p1 = aig.lor(s.a1, s.b1);
    s.p2 = aig.lor(s.a2, s.b2);
    return s;
}

void report(const char* name, const Aig& circuit, const Aig& reference) {
    const CecResult cec = check_equivalence(reference, circuit);
    std::printf("%-28s levels=%2d gates=%2zu equivalent=%s\n", name, circuit.depth(),
                circuit.count_reachable_ands(), cec.equivalent ? "yes" : "NO");
    if (!cec.equivalent) std::exit(1);
}

}  // namespace

int main() {
    // Reference: c_out of the 2-bit ripple-carry adder.
    const Aig rca = ripple_carry_adder(2);
    const Aig cout_ref = extract_cone(rca, rca.num_pos() - 1);
    std::printf("Sec. 4 case study: decompositions of the 2-bit adder carry-out\n");
    std::printf("%-28s levels=%2d gates=%2zu (reference)\n", "ripple carry", cout_ref.depth(),
                cout_ref.count_reachable_ands());

    {  // Carry lookahead: two disjoint window levels.
        Aig aig;
        Slices s = make_slices(aig);
        const AigLit sigma1 = aig.lxor(s.a1, s.b1);
        const AigLit sigma2 = aig.lxor(s.a2, s.b2);
        // Eqn. 3 for n = 2: the window S_i = a_i ^ b_i selects carry
        // propagation, so cout = !S2*a2 + S2*!S1*a1 + S2*S1*cin.
        const AigLit cout =
            aig.lor(aig.land(!sigma2, s.a2),
                    aig.lor(aig.land_many({sigma2, !sigma1, s.a1}),
                            aig.land_many({sigma2, sigma1, s.cin})));
        aig.add_po(cout, "cout");
        report("carry lookahead (disjoint)", aig.cleanup(), cout_ref);
    }
    {  // Carry select: S1 = cin; y1 = cout|cin=1, y0 = cout|cin=0.
        Aig aig;
        Slices s = make_slices(aig);
        const AigLit y1 = aig.lor(s.g2, aig.land(s.p2, s.p1));
        const AigLit y0 = aig.lor(s.g2, aig.land(s.p2, s.g1));
        aig.add_po(aig.lmux(s.cin, y1, y0), "cout");
        report("carry select (overlapping)", aig.cleanup(), cout_ref);
    }
    {  // Carry bypass: S1 = p2*p1*cin selects constant 1.
        Aig aig;
        Slices s = make_slices(aig);
        const AigLit sigma = aig.land_many({s.p2, s.p1, s.cin});
        const AigLit slow = aig.lor(s.g2, aig.land(s.p2, s.g1));
        aig.add_po(aig.lor(sigma, slow), "cout");
        report("carry bypass (overlapping)", aig.cleanup(), cout_ref);
    }
    {  // The paper's new decomposition: S1 = cin + g2 + p2 g1, other side 0.
        Aig aig;
        Slices s = make_slices(aig);
        const AigLit sigma = aig.lor(s.cin, aig.lor(s.g2, aig.land(s.p2, s.g1)));
        const AigLit y = aig.lor(s.g2, aig.land(s.p2, s.p1));
        aig.add_po(aig.land(sigma, y), "cout");
        report("new decomposition (paper)", aig.cleanup(), cout_ref);
    }

    // The flow itself, run on the full 2-bit adder and on the cout cone.
    LookaheadParams params;
    const Aig optimized_cout = optimize_timing(cout_ref, params);
    report("lookahead flow on c_out", optimized_cout, cout_ref);

    const Aig optimized_full = optimize_timing(rca, params);
    const CecResult cec = check_equivalence(rca, optimized_full);
    std::printf("%-28s levels=%2d gates=%2zu equivalent=%s (full 2-bit adder: the critical\n"
                "%-28s path is the most significant sum bit, one level above c_out)\n",
                "lookahead flow on adder", optimized_full.depth(),
                optimized_full.count_reachable_ands(), cec.equivalent ? "yes" : "NO", "");
    return cec.equivalent ? 0 : 1;
}
