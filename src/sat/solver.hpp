#pragma once

#include <cstdint>
#include <vector>

#include "common/check.hpp"

namespace lls {
struct RunContext;
}

namespace lls::sat {

/// A SAT literal: variable index with sign. Encoded as 2*var + (negated).
struct Lit {
    int value = -1;

    Lit() = default;
    Lit(int var, bool negated) : value(2 * var + (negated ? 1 : 0)) { LLS_DCHECK(var >= 0); }

    int var() const { return value >> 1; }
    bool negated() const { return value & 1; }
    Lit operator!() const {
        Lit l;
        l.value = value ^ 1;
        return l;
    }
    bool operator==(const Lit& other) const = default;
};

enum class Status { Sat, Unsat, Unknown };

/// A self-contained CDCL SAT solver: two-literal watching, VSIDS branching,
/// first-UIP clause learning, phase saving, and Luby restarts. It is the
/// decision engine behind the combinational equivalence checks and SAT
/// sweeping used by the synthesis flow.
class Solver {
public:
    Solver() = default;
    /// Releases this solver's counted bytes from the bound context's
    /// Tier-2 memory governor, if any.
    ~Solver();

    Solver(const Solver&) = delete;
    Solver& operator=(const Solver&) = delete;

    /// Creates a fresh variable and returns its index.
    int new_var();

    int num_vars() const { return static_cast<int>(assign_.size()); }

    /// Adds a clause (empty clause makes the instance trivially UNSAT).
    /// Returns false if the solver is already known to be UNSAT.
    bool add_clause(std::vector<Lit> lits);

    bool add_clause(Lit a) { return add_clause(std::vector<Lit>{a}); }
    bool add_clause(Lit a, Lit b) { return add_clause(std::vector<Lit>{a, b}); }
    bool add_clause(Lit a, Lit b, Lit c) { return add_clause(std::vector<Lit>{a, b, c}); }

    /// Solves under the given assumptions. `conflict_limit` < 0 means no
    /// limit; when the limit is hit, returns Status::Unknown.
    Status solve(const std::vector<Lit>& assumptions = {}, std::int64_t conflict_limit = -1);

    /// Model value of a variable after a Sat answer.
    bool model_value(int var) const {
        LLS_REQUIRE(var >= 0 && var < num_vars());
        return model_[var] == 1;
    }

    std::int64_t num_conflicts() const { return conflicts_; }
    std::int64_t num_decisions() const { return decisions_; }
    std::int64_t num_propagations() const { return propagations_; }

    /// Allocation guard: total literals stored across problem and learned
    /// clauses. Growing past the ceiling throws LlsError{ResourceExhausted}
    /// (from add_clause or solve) instead of letting a runaway instance
    /// OOM-kill the process; the solver itself stays usable — the exception
    /// surfaces before the offending clause is stored. The default is
    /// generous (hundreds of MB); tests shrink it to exercise recovery.
    void set_literal_limit(std::size_t limit) { literal_limit_ = limit; }
    std::size_t literal_limit() const { return literal_limit_; }
    std::size_t num_literals() const { return num_literals_; }

    /// Binds the run's cancellation context (common/run_context.hpp): the
    /// decide loop then polls the context's token every iteration and its
    /// deadline every kCancelPollPeriod iterations, in addition to the
    /// thread-local scope poll. This is what keeps a solver responsive
    /// when its query was fanned out to a pool worker whose thread-local
    /// scope belongs to someone else. Not owned; must outlive every solve.
    void bind_run_context(const RunContext* ctx) {
        run_context_ = ctx;
        context_poll_countdown_ = 0;
    }

private:
    static constexpr int kUndef = -1;

    struct Clause {
        std::vector<Lit> lits;
        bool learned = false;
        double activity = 0.0;
    };

    struct Watcher {
        int clause = -1;
        Lit blocker;
    };

    // value: 0 = false, 1 = true, -1 = unassigned (per variable).
    int lit_value(Lit l) const {
        const int v = assign_[l.var()];
        if (v == kUndef) return kUndef;
        return v ^ (l.negated() ? 1 : 0);
    }

    void enqueue(Lit l, int reason);
    int propagate();  // returns conflicting clause index or -1
    void analyze(int confl, std::vector<Lit>* learned, int* backtrack_level);
    void backtrack(int level);
    Lit pick_branch();
    void bump_var(int var);
    void bump_clause(int ci);
    void decay_activities();
    void reduce_learned();
    void attach_clause(int ci);
    void charge_literals(std::size_t count);
    /// Reconciles the bound governor with the live literal count, in
    /// chunks, so short-lived solvers never touch the shared atomic.
    void sync_governor_accounting();
    static std::int64_t luby(std::int64_t i);

    std::vector<Clause> clauses_;
    std::vector<std::vector<Watcher>> watches_;  // indexed by literal value
    std::vector<int> assign_;                    // per var: 0/1/kUndef
    std::vector<int> level_;                     // decision level per var
    std::vector<int> reason_;                    // clause index or -1
    std::vector<char> phase_;                    // saved phase per var
    std::vector<double> activity_;
    std::vector<Lit> trail_;
    std::vector<int> trail_lim_;
    std::vector<char> seen_;
    std::vector<char> model_;
    std::size_t qhead_ = 0;
    std::size_t num_literals_ = 0;
    std::size_t literal_limit_ = std::size_t{1} << 27;  // ~128M lits = 512 MB
    double var_inc_ = 1.0;
    double clause_inc_ = 1.0;
    bool unsat_ = false;

    std::int64_t conflicts_ = 0;
    std::int64_t decisions_ = 0;
    std::int64_t propagations_ = 0;

    const lls::RunContext* run_context_ = nullptr;
    unsigned context_poll_countdown_ = 0;  // amortizes the context's clock read
    std::int64_t governor_charged_ = 0;    // bytes reported to the Tier-2 governor
};

}  // namespace lls::sat
