#include "sat/solver.hpp"

#include <algorithm>
#include <cmath>

#include "common/cancel.hpp"
#include "common/error.hpp"
#include "common/memgov.hpp"
#include "common/run_context.hpp"

namespace lls::sat {

namespace {
/// Tier-2 accounting granularity: the governor's atomic is touched only
/// when the live byte estimate drifts this far from what was reported.
constexpr std::int64_t kGovernorChunkBytes = 256 << 10;
}  // namespace

Solver::~Solver() {
    if (governor_charged_ != 0 && run_context_ != nullptr && run_context_->governor != nullptr)
        run_context_->governor->charge(-governor_charged_);
}

void Solver::sync_governor_accounting() {
    if (run_context_ == nullptr || run_context_->governor == nullptr) return;
    const std::int64_t live = static_cast<std::int64_t>(num_literals_) *
                              static_cast<std::int64_t>(memcost::kSatLiteralBytes);
    const std::int64_t delta = live - governor_charged_;
    if (delta >= kGovernorChunkBytes || delta <= -kGovernorChunkBytes) {
        run_context_->governor->charge(delta);
        governor_charged_ = live;
    }
}

void Solver::charge_literals(std::size_t count) {
    if (num_literals_ + count > literal_limit_)
        throw LlsError(ErrorKind::ResourceExhausted,
                       "SAT literal limit exceeded (" + std::to_string(literal_limit_) +
                           " literals)",
                       "sat");
    // Tier-1 deterministic quota: clause/watch arena bytes, charged from
    // the literal count — the same allocation-count accounting the literal
    // limit itself uses. May throw LlsError{ResourceExhausted, "memgov"};
    // nothing was stored yet, so the solver stays usable.
    if (run_context_ != nullptr)
        run_context_->charge_memory(count * memcost::kSatLiteralBytes);
    num_literals_ += count;
    sync_governor_accounting();
}

int Solver::new_var() {
    const int v = num_vars();
    assign_.push_back(kUndef);
    level_.push_back(0);
    reason_.push_back(-1);
    phase_.push_back(0);
    activity_.push_back(0.0);
    seen_.push_back(0);
    model_.push_back(0);
    watches_.resize(2 * assign_.size());
    return v;
}

bool Solver::add_clause(std::vector<Lit> lits) {
    LLS_REQUIRE(trail_lim_.empty() && "clauses must be added at decision level 0");
    if (unsat_) return false;

    // Normalize: sort, remove duplicates, detect tautologies and falsified
    // literals (at level 0).
    std::sort(lits.begin(), lits.end(), [](Lit a, Lit b) { return a.value < b.value; });
    std::vector<Lit> kept;
    for (std::size_t i = 0; i < lits.size(); ++i) {
        LLS_REQUIRE(lits[i].var() < num_vars());
        if (i > 0 && lits[i] == lits[i - 1]) continue;
        if (i > 0 && lits[i] == !lits[i - 1]) return true;  // tautology
        const int v = lit_value(lits[i]);
        if (v == 1) return true;  // already satisfied at level 0
        if (v == 0) continue;     // falsified at level 0, drop
        kept.push_back(lits[i]);
    }

    if (kept.empty()) {
        unsat_ = true;
        return false;
    }
    if (kept.size() == 1) {
        enqueue(kept[0], -1);
        if (propagate() != -1) {
            unsat_ = true;
            return false;
        }
        return true;
    }

    charge_literals(kept.size());
    clauses_.push_back(Clause{std::move(kept), false, 0.0});
    attach_clause(static_cast<int>(clauses_.size()) - 1);
    return true;
}

void Solver::attach_clause(int ci) {
    const auto& c = clauses_[ci].lits;
    LLS_DCHECK(c.size() >= 2);
    watches_[(!c[0]).value].push_back(Watcher{ci, c[1]});
    watches_[(!c[1]).value].push_back(Watcher{ci, c[0]});
}

void Solver::enqueue(Lit l, int reason) {
    LLS_DCHECK(lit_value(l) == kUndef);
    assign_[l.var()] = l.negated() ? 0 : 1;
    level_[l.var()] = static_cast<int>(trail_lim_.size());
    reason_[l.var()] = reason;
    phase_[l.var()] = static_cast<char>(l.negated() ? 0 : 1);
    trail_.push_back(l);
}

int Solver::propagate() {
    while (qhead_ < trail_.size()) {
        const Lit p = trail_[qhead_++];
        ++propagations_;
        auto& ws = watches_[p.value];
        std::size_t keep = 0;
        for (std::size_t i = 0; i < ws.size(); ++i) {
            const Watcher w = ws[i];
            if (lit_value(w.blocker) == 1) {
                ws[keep++] = w;
                continue;
            }
            auto& lits = clauses_[w.clause].lits;
            // Make sure the falsified literal is lits[1].
            const Lit false_lit = !p;
            if (lits[0] == false_lit) std::swap(lits[0], lits[1]);
            LLS_DCHECK(lits[1] == false_lit);
            if (lit_value(lits[0]) == 1) {
                ws[keep++] = Watcher{w.clause, lits[0]};
                continue;
            }
            // Look for a new literal to watch.
            bool found = false;
            for (std::size_t k = 2; k < lits.size(); ++k) {
                if (lit_value(lits[k]) != 0) {
                    std::swap(lits[1], lits[k]);
                    watches_[(!lits[1]).value].push_back(Watcher{w.clause, lits[0]});
                    found = true;
                    break;
                }
            }
            if (found) continue;
            // Clause is unit or conflicting.
            ws[keep++] = Watcher{w.clause, lits[0]};
            if (lit_value(lits[0]) == 0) {
                // Conflict: restore remaining watchers and report.
                for (std::size_t j = i + 1; j < ws.size(); ++j) ws[keep++] = ws[j];
                ws.resize(keep);
                qhead_ = trail_.size();
                return w.clause;
            }
            enqueue(lits[0], w.clause);
        }
        ws.resize(keep);
    }
    return -1;
}

void Solver::bump_var(int var) {
    activity_[var] += var_inc_;
    if (activity_[var] > 1e100) {
        for (auto& a : activity_) a *= 1e-100;
        var_inc_ *= 1e-100;
    }
}

void Solver::bump_clause(int ci) {
    auto& c = clauses_[ci];
    if (!c.learned) return;
    c.activity += clause_inc_;
    if (c.activity > 1e20) {
        for (auto& cl : clauses_)
            if (cl.learned) cl.activity *= 1e-20;
        clause_inc_ *= 1e-20;
    }
}

void Solver::decay_activities() {
    var_inc_ /= 0.95;
    clause_inc_ /= 0.999;
}

void Solver::analyze(int confl, std::vector<Lit>* learned, int* backtrack_level) {
    learned->clear();
    learned->push_back(Lit{});  // slot for the asserting literal
    int counter = 0;
    Lit p{};
    std::size_t index = trail_.size();
    const int current_level = static_cast<int>(trail_lim_.size());

    do {
        LLS_DCHECK(confl != -1);
        bump_clause(confl);
        const auto& lits = clauses_[confl].lits;
        // Skip lits[0] on the first iteration only when it is the conflict
        // clause (all literals false); afterwards lits[0] == p.
        for (std::size_t i = (p.value == -1 ? 0 : 1); i < lits.size(); ++i) {
            const Lit q = lits[i];
            if (seen_[q.var()] || level_[q.var()] == 0) continue;
            seen_[q.var()] = 1;
            bump_var(q.var());
            if (level_[q.var()] == current_level)
                ++counter;
            else
                learned->push_back(q);
        }
        // Find the next literal on the trail that is marked.
        while (!seen_[trail_[index - 1].var()]) --index;
        p = trail_[index - 1];
        --index;
        confl = reason_[p.var()];
        seen_[p.var()] = 0;
        --counter;
    } while (counter > 0);
    (*learned)[0] = !p;

    // Simple self-subsumption minimization: drop literals whose reason
    // clause is entirely covered by the learned clause.
    std::vector<Lit> minimized;
    minimized.push_back((*learned)[0]);
    for (std::size_t i = 1; i < learned->size(); ++i) {
        const Lit q = (*learned)[i];
        const int r = reason_[q.var()];
        bool redundant = false;
        if (r != -1) {
            redundant = true;
            for (const Lit x : clauses_[r].lits) {
                if (x == !q) continue;
                if (level_[x.var()] == 0) continue;
                if (!seen_[x.var()]) {
                    redundant = false;
                    break;
                }
            }
        }
        if (!redundant) minimized.push_back(q);
    }
    for (std::size_t i = 1; i < learned->size(); ++i) seen_[(*learned)[i].var()] = 0;
    *learned = std::move(minimized);

    // Backtrack level = second highest level in the clause.
    *backtrack_level = 0;
    if (learned->size() > 1) {
        std::size_t max_i = 1;
        for (std::size_t i = 2; i < learned->size(); ++i)
            if (level_[(*learned)[i].var()] > level_[(*learned)[max_i].var()]) max_i = i;
        std::swap((*learned)[1], (*learned)[max_i]);
        *backtrack_level = level_[(*learned)[1].var()];
    }
}

void Solver::backtrack(int level) {
    if (static_cast<int>(trail_lim_.size()) <= level) return;
    const std::size_t bound = static_cast<std::size_t>(trail_lim_[level]);
    for (std::size_t i = trail_.size(); i > bound; --i) {
        const int v = trail_[i - 1].var();
        assign_[v] = kUndef;
        reason_[v] = -1;
    }
    trail_.resize(bound);
    trail_lim_.resize(static_cast<std::size_t>(level));
    qhead_ = trail_.size();
}

Lit Solver::pick_branch() {
    int best = -1;
    double best_act = -1.0;
    for (int v = 0; v < num_vars(); ++v) {
        if (assign_[v] != kUndef) continue;
        if (activity_[v] > best_act) {
            best_act = activity_[v];
            best = v;
        }
    }
    if (best == -1) return Lit{};
    return Lit(best, phase_[best] == 0);
}

std::int64_t Solver::luby(std::int64_t i) {
    // Finite subsequences of the Luby sequence: 1,1,2,1,1,2,4,...
    std::int64_t k = 1;
    while ((std::int64_t{1} << k) - 1 < i + 1) ++k;
    while ((std::int64_t{1} << (k - 1)) - 1 != i) {
        i = i - ((std::int64_t{1} << (k - 1)) - 1);
        k = 1;
        while ((std::int64_t{1} << k) - 1 < i + 1) ++k;
    }
    return std::int64_t{1} << (k - 1);
}

void Solver::reduce_learned() {
    // Remove the least active half of the learned clauses that are not
    // reasons for current assignments. Rebuild the watch lists afterwards.
    std::vector<int> learned_idx;
    for (int i = 0; i < static_cast<int>(clauses_.size()); ++i)
        if (clauses_[i].learned) learned_idx.push_back(i);
    if (learned_idx.size() < 2000) return;

    std::sort(learned_idx.begin(), learned_idx.end(),
              [&](int a, int b) { return clauses_[a].activity < clauses_[b].activity; });
    std::vector<char> drop(clauses_.size(), 0);
    std::vector<char> is_reason(clauses_.size(), 0);
    for (int v = 0; v < num_vars(); ++v)
        if (assign_[v] != kUndef && reason_[v] != -1) is_reason[reason_[v]] = 1;
    for (std::size_t i = 0; i < learned_idx.size() / 2; ++i)
        if (!is_reason[learned_idx[i]]) drop[learned_idx[i]] = 1;

    std::vector<Clause> kept;
    std::vector<int> remap(clauses_.size(), -1);
    for (int i = 0; i < static_cast<int>(clauses_.size()); ++i) {
        if (drop[i]) continue;
        remap[i] = static_cast<int>(kept.size());
        kept.push_back(std::move(clauses_[i]));
    }
    clauses_ = std::move(kept);
    num_literals_ = 0;
    for (const auto& c : clauses_) num_literals_ += c.lits.size();
    sync_governor_accounting();
    for (int v = 0; v < num_vars(); ++v)
        if (reason_[v] != -1) reason_[v] = remap[reason_[v]];
    for (auto& ws : watches_) ws.clear();
    for (int i = 0; i < static_cast<int>(clauses_.size()); ++i) attach_clause(i);
}

Status Solver::solve(const std::vector<Lit>& assumptions, std::int64_t conflict_limit) {
    if (unsat_) return Status::Unsat;
    backtrack(0);
    if (propagate() != -1) {
        unsat_ = true;
        return Status::Unsat;
    }

    const std::int64_t start_conflicts = conflicts_;
    std::int64_t restart_num = 0;
    std::int64_t restart_budget = 100 * luby(restart_num);

    while (true) {
        // The solve loop is unbounded when no conflict limit is set; this
        // poll is what guarantees a runaway query still honors shutdown
        // tokens and cone deadlines.
        poll_cancellation("sat");
        // A bound RunContext is polled too: its token on every iteration
        // (one relaxed load) and its deadline every kCancelPollPeriod
        // iterations, so queries fanned out to pool workers stay cancelable
        // even if the worker's thread-local scope belongs to another cone.
        if (run_context_ != nullptr) {
            if (run_context_->cancel != nullptr && run_context_->cancel->requested())
                throw LlsError(ErrorKind::Cancelled, "cancellation requested", "sat");
            if (context_poll_countdown_ == 0) {
                context_poll_countdown_ = kCancelPollPeriod;
                run_context_->poll_cancellation("sat");
            }
            --context_poll_countdown_;
        }
        const int confl = propagate();
        if (confl != -1) {
            ++conflicts_;
            if (trail_lim_.empty()) {
                unsat_ = true;
                return Status::Unsat;
            }
            std::vector<Lit> learned;
            int bt_level = 0;
            analyze(confl, &learned, &bt_level);
            // Backtracking below the assumption levels is fine: the pending
            // assumptions are re-applied as decisions before the next branch,
            // and a learned unit contradicting an assumption surfaces as
            // UNSAT below.
            backtrack(bt_level);
            if (learned.size() == 1) {
                if (lit_value(learned[0]) == 0) return Status::Unsat;
                if (lit_value(learned[0]) == kUndef) enqueue(learned[0], -1);
            } else {
                charge_literals(learned.size());
                clauses_.push_back(Clause{learned, true, clause_inc_});
                const int ci = static_cast<int>(clauses_.size()) - 1;
                attach_clause(ci);
                enqueue(learned[0], ci);
            }
            decay_activities();
            if (conflict_limit >= 0 && conflicts_ - start_conflicts >= conflict_limit)
                return Status::Unknown;
            if (conflicts_ - start_conflicts >= restart_budget) {
                ++restart_num;
                restart_budget = conflicts_ - start_conflicts + 100 * luby(restart_num);
                backtrack(0);
                reduce_learned();
            }
            continue;
        }

        // Apply pending assumptions as decisions.
        if (trail_lim_.size() < assumptions.size()) {
            const Lit a = assumptions[trail_lim_.size()];
            LLS_REQUIRE(a.var() < num_vars());
            const int v = lit_value(a);
            if (v == 0) return Status::Unsat;  // conflicting assumption
            trail_lim_.push_back(static_cast<int>(trail_.size()));
            if (v == kUndef) enqueue(a, -1);
            continue;
        }

        const Lit next = pick_branch();
        if (next.value == -1) {
            for (int v = 0; v < num_vars(); ++v)
                model_[v] = static_cast<char>(assign_[v] == 1 ? 1 : 0);
            return Status::Sat;
        }
        ++decisions_;
        trail_lim_.push_back(static_cast<int>(trail_.size()));
        enqueue(next, -1);
    }
}

}  // namespace lls::sat
