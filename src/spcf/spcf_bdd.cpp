#include "spcf/spcf_bdd.hpp"

#include <algorithm>

#include "bdd/aig_bdd.hpp"
#include "common/error.hpp"
#include "engine/metrics.hpp"

namespace lls {

std::optional<ExactSpcf> compute_spcf_exact(const Aig& aig, std::int32_t delta,
                                            std::size_t bdd_node_limit) {
    return compute_spcf_exact(
        aig, std::make_shared<BddManager>(static_cast<int>(aig.num_pis()), bdd_node_limit),
        delta);
}

std::optional<ExactSpcf> compute_spcf_exact(const Aig& aig, std::shared_ptr<BddManager> manager,
                                            std::int32_t delta) {
    static MetricTimer& exact_timer = Metrics::global().timer("spcf.exact");
    const ScopedTimer timer_scope(exact_timer);
    LLS_REQUIRE(manager && static_cast<int>(aig.num_pis()) <= manager->num_vars());
    try {
        const auto values = build_node_bdds(aig, *manager);

        // Arrival-threshold sets: arrive[n] holds A_t(n) = {x : floating
        // arrival of node n under x is >= t}. A_0 is the universe; for an
        // AND gate, the settling rule picks which fanins must still be late:
        //   both fanins 1  -> max rule   -> A(a) | A(b)
        //   both fanins 0  -> min rule   -> A(a) & A(b)
        //   exactly one 0  -> that (controlling) fanin's A.
        std::vector<BddManager::Ref> arrive_prev(aig.num_nodes(), manager->bdd_true());
        std::vector<BddManager::Ref> arrive_cur(aig.num_nodes(), manager->bdd_false());

        const int depth = aig.depth();
        // Per-PO history of A_t(po) so the threshold can be chosen after the
        // maximum sensitized arrival is known.
        std::vector<std::vector<BddManager::Ref>> po_history(
            aig.num_pos(), std::vector<BddManager::Ref>{manager->bdd_true()});

        for (int t = 1; t <= depth; ++t) {
            bool any_nonempty = false;
            for (std::uint32_t id = 0; id < aig.num_nodes(); ++id) {
                if (!aig.is_and(id)) {
                    arrive_cur[id] = manager->bdd_false();  // PIs settle at 0
                    continue;
                }
                const auto& n = aig.node(id);
                const BddManager::Ref va = bdd_of_lit(*manager, values, n.fanin0);
                const BddManager::Ref vb = bdd_of_lit(*manager, values, n.fanin1);
                const BddManager::Ref aa = arrive_prev[n.fanin0.node()];
                const BddManager::Ref ab = arrive_prev[n.fanin1.node()];
                const BddManager::Ref when_a1 =
                    manager->ite(vb, manager->bor(aa, ab), ab);  // a=1: b controls or max
                const BddManager::Ref when_a0 =
                    manager->ite(vb, aa, manager->band(aa, ab));  // a=0: a controls or min
                arrive_cur[id] = manager->ite(va, when_a1, when_a0);
                if (arrive_cur[id] != manager->bdd_false()) any_nonempty = true;
            }
            for (std::size_t o = 0; o < aig.num_pos(); ++o)
                po_history[o].push_back(arrive_cur[aig.po(o).node()]);
            std::swap(arrive_prev, arrive_cur);
            if (!any_nonempty) break;  // nothing arrives later than t anywhere
        }

        ExactSpcf result;
        result.po_max_arrival.assign(aig.num_pos(), 0);
        std::int32_t max_arrival = 0;
        for (std::size_t o = 0; o < aig.num_pos(); ++o) {
            const auto& hist = po_history[o];
            std::int32_t arr = 0;
            for (std::int32_t t = static_cast<std::int32_t>(hist.size()) - 1; t >= 1; --t)
                if (hist[static_cast<std::size_t>(t)] != manager->bdd_false()) {
                    arr = t;
                    break;
                }
            result.po_max_arrival[o] = arr;
            max_arrival = std::max(max_arrival, arr);
        }
        result.max_arrival = max_arrival;
        result.delta = delta > 0 ? delta : max_arrival;
        result.po_spcf.assign(aig.num_pos(), manager->bdd_false());
        for (std::size_t o = 0; o < aig.num_pos(); ++o) {
            const auto& hist = po_history[o];
            const auto t = static_cast<std::size_t>(result.delta);
            // Arrivals beyond the recorded history are empty sets.
            result.po_spcf[o] = t < hist.size() ? hist[t] : manager->bdd_false();
        }
        result.manager = std::move(manager);
        return result;
    } catch (const LlsError& e) {
        if (e.kind() != ErrorKind::ResourceExhausted) throw;
        return std::nullopt;  // node budget exceeded
    }
}

Signature bdd_to_signature(const BddManager& manager, BddManager::Ref f,
                           const SimPatterns& patterns) {
    Signature sig(patterns.num_words(), 0);
    for (std::size_t p = 0; p < patterns.num_patterns(); ++p) {
        std::uint64_t assignment = 0;
        for (std::size_t i = 0; i < patterns.num_pis() && i < 64; ++i)
            if (patterns.pi_value(i, p)) assignment |= std::uint64_t{1} << i;
        if (manager.evaluate(f, assignment)) sig[p >> 6] |= 1ULL << (p & 63);
    }
    return sig;
}

}  // namespace lls
