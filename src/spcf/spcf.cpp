#include "spcf/spcf.hpp"

#include <algorithm>

#include "common/bitops.hpp"
#include "engine/metrics.hpp"

namespace lls {

Spcf compute_spcf(const Aig& aig, const SimPatterns& patterns,
                  const std::vector<Signature>& node_sigs, std::int32_t delta) {
    static MetricTimer& spcf_timer = Metrics::global().timer("spcf.compute");
    const ScopedTimer timer_scope(spcf_timer);
    const TimingSimResult timing = timing_simulate(aig, patterns, node_sigs);

    Spcf spcf;
    spcf.max_arrival = timing.max_arrival;
    spcf.delta = delta > 0 ? delta : timing.max_arrival;
    spcf.po_spcf.assign(aig.num_pos(), Signature(patterns.num_words(), 0));
    spcf.po_max_arrival.assign(aig.num_pos(), 0);

    for (std::size_t o = 0; o < aig.num_pos(); ++o) {
        const auto& arrivals = timing.po_arrival[o];
        auto& sig = spcf.po_spcf[o];
        std::int32_t po_max = 0;
        for (std::size_t p = 0; p < arrivals.size(); ++p) {
            po_max = std::max(po_max, arrivals[p]);
            if (arrivals[p] >= spcf.delta) sig[p >> 6] |= 1ULL << (p & 63);
        }
        spcf.po_max_arrival[o] = po_max;
    }
    return spcf;
}

}  // namespace lls
