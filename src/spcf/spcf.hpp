#pragma once

#include <cstdint>
#include <vector>

#include "aig/aig.hpp"
#include "sim/simulation.hpp"

namespace lls {

/// Speed-path characteristic functions for every PO of a circuit.
///
/// SPCF(y, delta) is the set of input minterms that sensitize a path of
/// length >= delta terminating at output y (Sec. 3.1 of the paper). Here the
/// set is represented as a signature over a pattern set: with an exhaustive
/// pattern set this is the exact floating-mode SPCF; with random patterns it
/// is a Monte-Carlo sample, which the paper explicitly allows since the SPCF
/// only *guides* the synthesis (correctness never depends on it).
struct Spcf {
    std::vector<Signature> po_spcf;        ///< [po] -> pattern membership bits
    std::vector<std::int32_t> po_max_arrival;  ///< longest sensitized delay per PO
    std::int32_t max_arrival = 0;          ///< circuit's longest sensitized delay
    std::int32_t delta = 0;                ///< threshold used

    bool empty(std::size_t po) const {
        for (const auto w : po_spcf[po])
            if (w) return false;
        return true;
    }

    std::uint64_t count(std::size_t po) const {
        std::uint64_t n = 0;
        for (const auto w : po_spcf[po]) n += static_cast<std::uint64_t>(__builtin_popcountll(w));
        return n;
    }
};

/// Computes the SPCF of every PO at threshold `delta` (delta <= 0 selects
/// the circuit's maximal sensitized arrival, i.e. the true critical paths).
Spcf compute_spcf(const Aig& aig, const SimPatterns& patterns,
                  const std::vector<Signature>& node_sigs, std::int32_t delta = 0);

}  // namespace lls
