#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "aig/aig.hpp"
#include "bdd/bdd.hpp"
#include "sim/simulation.hpp"

namespace lls {

/// Exact speed-path characteristic functions, represented as BDDs.
///
/// This is the exact-computation counterpart of the simulation-based
/// `compute_spcf` (the paper cites exact SPCF algorithms [7,19] alongside
/// the over-approximations it actually recommends): for every PO, the BDD
/// of the set of input minterms whose floating-mode sensitized arrival is
/// >= delta. Exact analysis is exponential in the worst case, so the entry
/// point takes a node budget and declines (nullopt) when exceeded.
struct ExactSpcf {
    std::unique_ptr<BddManager> manager;
    std::vector<BddManager::Ref> po_spcf;  ///< [po] set of critical minterms
    std::vector<std::int32_t> po_max_arrival;
    std::int32_t max_arrival = 0;
    std::int32_t delta = 0;

    double fraction(std::size_t po) const {
        double scale = 1.0;
        for (int i = 0; i < manager->num_vars(); ++i) scale *= 0.5;
        return manager->count_minterms(po_spcf[po]) * scale;
    }
};

/// Computes the exact SPCF of every PO at threshold `delta` (<= 0 selects
/// the circuit's maximal sensitized arrival). Returns nullopt when the BDD
/// node budget is exhausted.
std::optional<ExactSpcf> compute_spcf_exact(const Aig& aig, std::int32_t delta = 0,
                                            std::size_t bdd_node_limit = 1u << 21);

/// Renders a BDD-represented minterm set as a signature over a pattern set,
/// so exact SPCFs plug into the same simulation-based machinery.
Signature bdd_to_signature(const BddManager& manager, BddManager::Ref f,
                           const SimPatterns& patterns);

}  // namespace lls
