#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "aig/aig.hpp"
#include "bdd/bdd.hpp"
#include "sim/simulation.hpp"

namespace lls {

/// Exact speed-path characteristic functions, represented as BDDs.
///
/// This is the exact-computation counterpart of the simulation-based
/// `compute_spcf` (the paper cites exact SPCF algorithms [7,19] alongside
/// the over-approximations it actually recommends): for every PO, the BDD
/// of the set of input minterms whose floating-mode sensitized arrival is
/// >= delta. Exact analysis is exponential in the worst case, so the entry
/// point takes a node budget and declines (nullopt) when exceeded.
struct ExactSpcf {
    /// Private to this result, or a shared concurrent manager handed in by
    /// the caller — shared_ptr so many ExactSpcf results (from many
    /// workers) can alias one manager and reuse each other's subgraphs.
    std::shared_ptr<BddManager> manager;
    std::vector<BddManager::Ref> po_spcf;  ///< [po] set of critical minterms
    std::vector<std::int32_t> po_max_arrival;
    std::int32_t max_arrival = 0;
    std::int32_t delta = 0;

    double fraction(std::size_t po) const {
        // Invariant under extra manager variables (a shared manager may
        // hold more than this circuit's PIs): count_minterms scales by
        // 2^num_vars and this divides by the same power.
        double scale = 1.0;
        for (int i = 0; i < manager->num_vars(); ++i) scale *= 0.5;
        return manager->count_minterms(po_spcf[po]) * scale;
    }
};

/// Computes the exact SPCF of every PO at threshold `delta` (<= 0 selects
/// the circuit's maximal sensitized arrival). Returns nullopt when the BDD
/// node budget is exhausted.
std::optional<ExactSpcf> compute_spcf_exact(const Aig& aig, std::int32_t delta = 0,
                                            std::size_t bdd_node_limit = 1u << 21);

/// The same computation against a caller-provided shared manager (must
/// satisfy `manager->num_vars() >= aig.num_pis()`): node BDDs and
/// arrival-set subgraphs common across circuits or workers are built once.
/// Returns nullopt when the shared manager's global node pool is exhausted
/// — with a warm shared pool that boundary depends on what else was built,
/// so callers needing a schedule-independent verdict should retry with a
/// private manager.
std::optional<ExactSpcf> compute_spcf_exact(const Aig& aig,
                                            std::shared_ptr<BddManager> manager,
                                            std::int32_t delta = 0);

/// Renders a BDD-represented minterm set as a signature over a pattern set,
/// so exact SPCFs plug into the same simulation-based machinery.
Signature bdd_to_signature(const BddManager& manager, BddManager::Ref f,
                           const SimPatterns& patterns);

}  // namespace lls
