#include "io/generators.hpp"

#include <algorithm>

namespace lls {

Aig ripple_carry_adder(int bits) {
    LLS_REQUIRE(bits >= 1);
    Aig aig;
    std::vector<AigLit> a(static_cast<std::size_t>(bits)), b(static_cast<std::size_t>(bits));
    for (int i = 0; i < bits; ++i) a[static_cast<std::size_t>(i)] = aig.add_pi("a" + std::to_string(i));
    for (int i = 0; i < bits; ++i) b[static_cast<std::size_t>(i)] = aig.add_pi("b" + std::to_string(i));
    AigLit carry = aig.add_pi("cin");

    std::vector<AigLit> sums;
    for (int i = 0; i < bits; ++i) {
        const AigLit ai = a[static_cast<std::size_t>(i)];
        const AigLit bi = b[static_cast<std::size_t>(i)];
        const AigLit p = aig.lxor(ai, bi);
        sums.push_back(aig.lxor(p, carry));
        // carry_out = a*b + carry*(a^b)
        carry = aig.lor(aig.land(ai, bi), aig.land(carry, p));
    }
    for (int i = 0; i < bits; ++i) aig.add_po(sums[static_cast<std::size_t>(i)], "sum" + std::to_string(i));
    aig.add_po(carry, "cout");
    return aig;
}

Aig carry_lookahead_adder(int bits) {
    LLS_REQUIRE(bits >= 1);
    Aig aig;
    std::vector<AigLit> a(static_cast<std::size_t>(bits)), b(static_cast<std::size_t>(bits));
    for (int i = 0; i < bits; ++i) a[static_cast<std::size_t>(i)] = aig.add_pi("a" + std::to_string(i));
    for (int i = 0; i < bits; ++i) b[static_cast<std::size_t>(i)] = aig.add_pi("b" + std::to_string(i));
    const AigLit cin = aig.add_pi("cin");

    // Bit-slice generate/propagate; the carry-in is folded in as an extra
    // (G, P) = (cin, 0) prefix element so carries come straight off the tree.
    std::vector<AigLit> g(static_cast<std::size_t>(bits) + 1), p(static_cast<std::size_t>(bits) + 1);
    g[0] = cin;
    p[0] = AigLit::constant(false);
    std::vector<AigLit> xor_ab(static_cast<std::size_t>(bits));
    for (int i = 0; i < bits; ++i) {
        const AigLit ai = a[static_cast<std::size_t>(i)];
        const AigLit bi = b[static_cast<std::size_t>(i)];
        g[static_cast<std::size_t>(i) + 1] = aig.land(ai, bi);
        xor_ab[static_cast<std::size_t>(i)] = aig.lxor(ai, bi);
        p[static_cast<std::size_t>(i) + 1] = xor_ab[static_cast<std::size_t>(i)];
    }

    // Sklansky prefix tree over (G, P) with (G2,P2)o(G1,P1) = (G2+P2G1, P2P1).
    const int n = bits + 1;
    std::vector<AigLit> G = g, P = p;
    for (int dist = 1; dist < n; dist *= 2) {
        std::vector<AigLit> nextG = G, nextP = P;
        for (int i = 0; i < n; ++i) {
            // Sklansky: node i combines with the block root when the bit at
            // `dist` position of i is set.
            if ((i / dist) % 2 == 1) {
                const int j = (i / dist) * dist - 1;  // end of previous block
                nextG[static_cast<std::size_t>(i)] =
                    aig.lor(G[static_cast<std::size_t>(i)],
                            aig.land(P[static_cast<std::size_t>(i)], G[static_cast<std::size_t>(j)]));
                nextP[static_cast<std::size_t>(i)] =
                    aig.land(P[static_cast<std::size_t>(i)], P[static_cast<std::size_t>(j)]);
            }
        }
        G = std::move(nextG);
        P = std::move(nextP);
    }
    // After the tree, G[i] is the carry into bit i (G[i] = C_i).
    for (int i = 0; i < bits; ++i)
        aig.add_po(aig.lxor(xor_ab[static_cast<std::size_t>(i)], G[static_cast<std::size_t>(i)]),
                   "sum" + std::to_string(i));
    aig.add_po(G[static_cast<std::size_t>(bits)], "cout");
    return aig;
}

Aig carry_select_adder(int bits, int block) {
    LLS_REQUIRE(bits >= 1 && block >= 1);
    Aig aig;
    std::vector<AigLit> a(static_cast<std::size_t>(bits)), b(static_cast<std::size_t>(bits));
    for (int i = 0; i < bits; ++i) a[static_cast<std::size_t>(i)] = aig.add_pi("a" + std::to_string(i));
    for (int i = 0; i < bits; ++i) b[static_cast<std::size_t>(i)] = aig.add_pi("b" + std::to_string(i));
    const AigLit cin = aig.add_pi("cin");

    std::vector<AigLit> sums(static_cast<std::size_t>(bits));
    AigLit carry = cin;
    for (int lo = 0; lo < bits; lo += block) {
        const int hi = std::min(bits, lo + block);
        // Compute the block twice: carry-in 0 and carry-in 1.
        std::vector<AigLit> sum0, sum1;
        AigLit c0 = AigLit::constant(false), c1 = AigLit::constant(true);
        for (int i = lo; i < hi; ++i) {
            const AigLit ai = a[static_cast<std::size_t>(i)];
            const AigLit bi = b[static_cast<std::size_t>(i)];
            const AigLit pi = aig.lxor(ai, bi);
            sum0.push_back(aig.lxor(pi, c0));
            sum1.push_back(aig.lxor(pi, c1));
            c0 = aig.lor(aig.land(ai, bi), aig.land(c0, pi));
            c1 = aig.lor(aig.land(ai, bi), aig.land(c1, pi));
        }
        for (int i = lo; i < hi; ++i)
            sums[static_cast<std::size_t>(i)] =
                aig.lmux(carry, sum1[static_cast<std::size_t>(i - lo)],
                         sum0[static_cast<std::size_t>(i - lo)]);
        carry = aig.lmux(carry, c1, c0);
    }
    for (int i = 0; i < bits; ++i) aig.add_po(sums[static_cast<std::size_t>(i)], "sum" + std::to_string(i));
    aig.add_po(carry, "cout");
    return aig;
}

Aig synthetic_control_circuit(const BenchmarkProfile& profile) {
    LLS_REQUIRE(profile.num_pis >= 4 && profile.num_pos >= 1);
    Rng rng(profile.seed);
    Aig aig;
    std::vector<AigLit> pis;
    pis.reserve(static_cast<std::size_t>(profile.num_pis));
    for (int i = 0; i < profile.num_pis; ++i) pis.push_back(aig.add_pi());

    auto pick = [&](const std::vector<AigLit>& pool) {
        AigLit l = pool[rng.next_below(pool.size())];
        return rng.next_below(4) == 0 ? !l : l;
    };

    // Shared intermediate signals: shallow random gating logic over the PIs,
    // reused across many chains (non-disjoint support / logic sharing).
    std::vector<AigLit> shared;
    const int num_shared = std::max(4, profile.num_shared);
    for (int i = 0; i < num_shared; ++i) {
        const std::vector<AigLit>& pool = shared.size() >= 4 && rng.next_bool() ? shared : pis;
        const AigLit x = pick(pool);
        const AigLit y = pick(pis);
        switch (rng.next_below(3)) {
            case 0: shared.push_back(aig.land(x, y)); break;
            case 1: shared.push_back(aig.lor(x, y)); break;
            default: shared.push_back(aig.lxor(x, y)); break;
        }
    }

    // Rippling control chains: each step folds the chain state with fresh
    // gating signals through select/enable/toggle-style operators -- the
    // late-arriving-signal structure that motivates the paper's technique.
    std::vector<AigLit> taps;  // intermediate chain states other chains can reuse
    std::vector<AigLit> outputs;
    for (int o = 0; o < profile.num_pos; ++o) {
        AigLit state = !taps.empty() && rng.next_below(3) == 0 ? pick(taps) : pick(shared);
        const int length =
            1 + static_cast<int>(rng.next_below(static_cast<std::uint64_t>(
                    std::max(2, profile.chain_length))));
        for (int step = 0; step < length; ++step) {
            const AigLit x = pick(shared);
            const AigLit y = pick(pis);
            switch (rng.next_below(4)) {
                case 0:  // select: late `state` steers a mux
                    state = aig.lmux(state, x, y);
                    break;
                case 1:  // enable chain: state AND fresh condition
                    state = aig.land(state, aig.lor(x, y));
                    break;
                case 2:  // release chain: state OR fresh condition
                    state = aig.lor(state, aig.land(x, y));
                    break;
                default:  // toggle: parity-style propagation
                    state = aig.lxor(state, aig.land(x, y));
                    break;
            }
            if (rng.next_below(3) == 0) taps.push_back(state);
        }
        outputs.push_back(state);
    }
    for (int o = 0; o < profile.num_pos; ++o)
        aig.add_po(outputs[static_cast<std::size_t>(o)]);
    return aig.cleanup();
}

std::vector<BenchmarkProfile> table2_profiles() {
    // PI/PO counts follow Table 2 of the paper (MCNC, ISCAS85 and flattened
    // OpenSPARC T1 control modules); chain/sharing parameters are scaled to
    // give each stand-in a size and depth profile comparable to its original.
    return {
        {"rot", 135, 107, 12, 60, 101},
        {"dalu", 75, 16, 14, 40, 102},
        {"i10", 257, 224, 12, 120, 103},
        {"C432", 36, 7, 16, 20, 104},
        {"C880", 60, 26, 14, 30, 105},
        {"C3540", 50, 22, 16, 28, 106},
        {"C5315", 178, 123, 12, 80, 107},
        {"sparc_exu_ecl_flat", 572, 351, 10, 200, 108},
        {"lsu_stb_ctl_flat", 182, 74, 12, 80, 109},
        {"sparc_ifu_dcl_flat", 136, 72, 12, 60, 110},
        {"sparc_ifu_dec_flat", 131, 52, 12, 60, 111},
        {"lsu_excpctl_flat", 251, 92, 12, 100, 112},
        {"sparc_tlu_intctl_flat", 82, 39, 14, 40, 113},
        {"sparc_ifu_fcl_flat", 465, 183, 10, 160, 114},
        {"tlu_hyperv_flat", 449, 167, 10, 160, 115},
    };
}

}  // namespace lls
