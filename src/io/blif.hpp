#pragma once

#include <iosfwd>
#include <string>

#include "aig/aig.hpp"

namespace lls {

/// Reads a combinational BLIF model (.model/.inputs/.outputs/.names/.end)
/// into an AIG. Latches and subcircuits are rejected with an exception;
/// both on-set ("... 1") and off-set ("... 0") covers are supported.
Aig read_blif(std::istream& in);
Aig read_blif_file(const std::string& path);

/// Writes an AIG as a BLIF model (one two-input .names per AND node).
void write_blif(std::ostream& out, const Aig& aig, const std::string& model_name = "lls");
void write_blif_file(const std::string& path, const Aig& aig,
                     const std::string& model_name = "lls");

/// Writes an AIG in the ASCII AIGER format (aag).
void write_aiger(std::ostream& out, const Aig& aig);
void write_aiger_file(const std::string& path, const Aig& aig);

/// Reads an AIGER combinational model — ASCII ("aag") or binary ("aig"),
/// auto-detected from the header. Latches are rejected; the symbol table
/// (when present) supplies PO names.
Aig read_aiger(std::istream& in);
Aig read_aiger_file(const std::string& path);

/// Writes an AIG in the binary AIGER format (aig): nodes are renumbered to
/// the contiguous layout the format requires, AND fanin deltas are
/// varint-compressed per the AIGER 1.9 specification.
void write_aiger_binary(std::ostream& out, const Aig& aig);
void write_aiger_binary_file(const std::string& path, const Aig& aig);

}  // namespace lls
