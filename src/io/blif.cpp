#include "io/blif.hpp"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "aig/aig_build.hpp"
#include "common/check.hpp"
#include "common/error.hpp"
#include "sop/sop.hpp"

namespace lls {

namespace {

std::vector<std::string> tokenize(const std::string& line) {
    std::istringstream ss(line);
    std::vector<std::string> tokens;
    std::string t;
    while (ss >> t) tokens.push_back(t);
    return tokens;
}

/// A logical line plus the physical line number where it started, so every
/// diagnostic can point at the offending source line even across
/// '\'-continuations.
struct BlifLine {
    std::string text;
    int number = 0;
};

/// Reads logical lines, joining '\'-continued lines and stripping comments.
std::vector<BlifLine> logical_lines(std::istream& in) {
    std::vector<BlifLine> lines;
    std::string line, pending;
    int number = 0, pending_start = 0;
    while (std::getline(in, line)) {
        ++number;
        if (const auto hash = line.find('#'); hash != std::string::npos) line.resize(hash);
        while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) line.pop_back();
        if (pending.empty()) pending_start = number;
        if (!line.empty() && line.back() == '\\') {
            line.pop_back();
            pending += line;
            continue;
        }
        pending += line;
        if (!pending.empty()) lines.push_back(BlifLine{pending, pending_start});
        pending.clear();
    }
    if (!pending.empty()) lines.push_back(BlifLine{pending, pending_start});
    return lines;
}

struct BlifGate {
    std::vector<std::string> inputs;
    std::string output;
    std::vector<std::string> cover;  // raw cover lines ("10-1 1")
    int line = 0;                    // .names line, for diagnostics
};

[[noreturn]] void parse_fail(int line, const std::string& message) {
    throw LlsError(ErrorKind::ParseError, "line " + std::to_string(line) + ": " + message,
                   "blif");
}

}  // namespace

Aig read_blif(std::istream& in) {
    const auto lines = logical_lines(in);
    std::vector<std::string> input_names;
    std::vector<std::pair<std::string, int>> output_names;  // name, .outputs line
    std::vector<BlifGate> gates;
    BlifGate* current = nullptr;
    // First definition line of every signal (PI declaration or .names
    // output) — the duplicate-driver diagnostic names both sites.
    std::unordered_map<std::string, int> defined_at;
    bool saw_end = false;
    int last_line = 0;

    for (const auto& logical : lines) {
        const std::string& line = logical.text;
        last_line = logical.number;
        auto tokens = tokenize(line);
        if (tokens.empty()) continue;
        const std::string& head = tokens[0];
        if (head == ".model") {
            current = nullptr;
        } else if (head == ".end") {
            current = nullptr;
            saw_end = true;
        } else if (head == ".inputs") {
            current = nullptr;
            for (auto it = tokens.begin() + 1; it != tokens.end(); ++it) {
                const auto [prev, inserted] = defined_at.emplace(*it, logical.number);
                if (!inserted)
                    parse_fail(logical.number, "signal '" + *it +
                                                   "' already declared at line " +
                                                   std::to_string(prev->second));
                input_names.push_back(*it);
            }
        } else if (head == ".outputs") {
            current = nullptr;
            for (auto it = tokens.begin() + 1; it != tokens.end(); ++it)
                output_names.emplace_back(*it, logical.number);
        } else if (head == ".names") {
            if (tokens.size() < 2) parse_fail(logical.number, ".names without signals");
            const std::string& output = tokens.back();
            const auto [prev, inserted] = defined_at.emplace(output, logical.number);
            if (!inserted)
                parse_fail(logical.number,
                           "duplicate driver for signal '" + output + "' (first defined at line " +
                               std::to_string(prev->second) + ")");
            gates.push_back(BlifGate{});
            current = &gates.back();
            current->output = output;
            current->inputs.assign(tokens.begin() + 1, tokens.end() - 1);
            current->line = logical.number;
        } else if (head == ".latch" || head == ".subckt" || head == ".gate") {
            parse_fail(logical.number, "only combinational .names models are supported (" +
                                           head + ")");
        } else if (head[0] == '.') {
            current = nullptr;  // ignore other directives (.default_input_arrival etc.)
        } else {
            if (!current) parse_fail(logical.number, "cover line outside .names");
            current->cover.push_back(line);
        }
    }
    if (!lines.empty() && !saw_end)
        parse_fail(last_line, "missing .end (truncated model?)");

    // Every referenced signal must be declared (a PI) or driven by a gate
    // — resolving against an absent signal would otherwise either hang the
    // iterative pass or build a silently-wrong network.
    for (const auto& g : gates)
        for (const auto& s : g.inputs)
            if (!defined_at.count(s))
                parse_fail(g.line, "reference to undeclared signal '" + s + "'");
    for (const auto& [name, line] : output_names)
        if (!defined_at.count(name))
            parse_fail(line, "output '" + name + "' is never driven");

    Aig aig;
    std::unordered_map<std::string, AigLit> signals;
    for (const auto& name : input_names) signals[name] = aig.add_pi(name);

    // Gates may be listed in any order; resolve iteratively.
    std::vector<bool> done(gates.size(), false);
    std::size_t remaining = gates.size();
    bool progress = true;
    while (remaining > 0 && progress) {
        progress = false;
        for (std::size_t gi = 0; gi < gates.size(); ++gi) {
            if (done[gi]) continue;
            const auto& g = gates[gi];
            const bool ready = std::all_of(g.inputs.begin(), g.inputs.end(),
                                           [&](const std::string& s) { return signals.count(s); });
            if (!ready) continue;

            const int k = static_cast<int>(g.inputs.size());
            if (k > Cube::kMaxVars)
                parse_fail(g.line, ".names with more than " + std::to_string(Cube::kMaxVars) +
                                       " inputs");
            Sop on(k);
            bool off_phase = false, phase_known = false;
            for (const auto& raw : g.cover) {
                const auto tokens = tokenize(raw);
                std::string bits, out;
                if (k == 0) {
                    if (tokens.size() != 1) parse_fail(g.line, "bad constant cover");
                    out = tokens[0];
                } else {
                    if (tokens.size() != 2) parse_fail(g.line, "bad cover line");
                    bits = tokens[0];
                    out = tokens[1];
                    if (static_cast<int>(bits.size()) != k)
                        parse_fail(g.line, "cover width mismatch");
                }
                const bool this_off = out == "0";
                if (phase_known && this_off != off_phase)
                    parse_fail(g.line, "mixed cover phases");
                off_phase = this_off;
                phase_known = true;
                Cube c;
                for (int v = 0; v < k; ++v) {
                    if (bits[static_cast<std::size_t>(v)] == '1') c = c.with_literal(v, true);
                    else if (bits[static_cast<std::size_t>(v)] == '0') c = c.with_literal(v, false);
                    else if (bits[static_cast<std::size_t>(v)] != '-')
                        parse_fail(g.line, "bad cover character");
                }
                on.add_cube(c);
            }

            std::vector<AigLit> fanins;
            fanins.reserve(g.inputs.size());
            for (const auto& s : g.inputs) fanins.push_back(signals.at(s));
            AigLit lit = build_sop(aig, on, fanins);
            if (phase_known && off_phase) lit = !lit;
            if (g.cover.empty()) lit = AigLit::constant(false);  // empty cover = constant 0
            signals[g.output] = lit;
            done[gi] = true;
            --remaining;
            progress = true;
        }
    }
    if (remaining > 0) {
        for (std::size_t gi = 0; gi < gates.size(); ++gi)
            if (!done[gi])
                parse_fail(gates[gi].line,
                           "signal '" + gates[gi].output + "' is part of a combinational cycle");
    }

    for (const auto& [name, line] : output_names) {
        const auto it = signals.find(name);
        if (it == signals.end()) parse_fail(line, "output '" + name + "' is never driven");
        aig.add_po(it->second, name);
    }
    return aig.cleanup();
}

Aig read_blif_file(const std::string& path) {
    std::ifstream in(path);
    if (!in) throw LlsError(ErrorKind::IoError, "cannot open " + path, "blif");
    return read_blif(in);
}

void write_blif(std::ostream& out, const Aig& aig, const std::string& model_name) {
    out << ".model " << model_name << "\n.inputs";
    for (std::size_t i = 0; i < aig.num_pis(); ++i) out << " " << aig.pi_name(i);
    out << "\n.outputs";
    for (std::size_t o = 0; o < aig.num_pos(); ++o) out << " " << aig.po_name(o);
    out << "\n";

    auto signal_name = [&](std::uint32_t id) {
        if (aig.is_pi(id)) return aig.pi_name(aig.pi_index(id));
        return "n" + std::to_string(id);
    };

    out << ".names zero__\n";  // constant-0 driver for node 0
    for (std::uint32_t id = 1; id < aig.num_nodes(); ++id) {
        if (!aig.is_and(id)) continue;
        const auto& n = aig.node(id);
        const std::string a =
            aig.is_const(n.fanin0.node()) ? "zero__" : signal_name(n.fanin0.node());
        const std::string b =
            aig.is_const(n.fanin1.node()) ? "zero__" : signal_name(n.fanin1.node());
        out << ".names " << a << " " << b << " " << signal_name(id) << "\n";
        out << (n.fanin0.complemented() ? '0' : '1') << (n.fanin1.complemented() ? '0' : '1')
            << " 1\n";
    }
    for (std::size_t o = 0; o < aig.num_pos(); ++o) {
        const AigLit po = aig.po(o);
        const std::string driver =
            aig.is_const(po.node()) ? "zero__" : signal_name(po.node());
        out << ".names " << driver << " " << aig.po_name(o) << "\n"
            << (po.complemented() ? '0' : '1') << " 1\n";
    }
    out << ".end\n";
}

void write_blif_file(const std::string& path, const Aig& aig, const std::string& model_name) {
    std::ofstream out(path);
    if (!out) throw std::runtime_error("cannot open " + path);
    write_blif(out, aig, model_name);
    // A full disk (or any other stream error) must not leave a silently
    // truncated netlist behind: flush and check before declaring success.
    out.flush();
    if (!out) throw std::runtime_error("error writing " + path + " (truncated output)");
}

void write_aiger(std::ostream& out, const Aig& aig) {
    // ASCII AIGER: node i gets variable index i (literal 2i / 2i+1), which
    // matches our internal encoding exactly (node 0 = constant false).
    const std::size_t m = aig.num_nodes() - 1;
    out << "aag " << m << " " << aig.num_pis() << " 0 " << aig.num_pos() << " " << aig.num_ands()
        << "\n";
    for (std::size_t i = 0; i < aig.num_pis(); ++i) out << (2 * aig.pi(i)) << "\n";
    for (std::size_t o = 0; o < aig.num_pos(); ++o) out << aig.po(o).value << "\n";
    for (std::uint32_t id = 1; id < aig.num_nodes(); ++id) {
        if (!aig.is_and(id)) continue;
        const auto& n = aig.node(id);
        out << (2 * id) << " " << n.fanin0.value << " " << n.fanin1.value << "\n";
    }
    for (std::size_t i = 0; i < aig.num_pis(); ++i) out << "i" << i << " " << aig.pi_name(i) << "\n";
    for (std::size_t o = 0; o < aig.num_pos(); ++o) out << "o" << o << " " << aig.po_name(o) << "\n";
}

void write_aiger_file(const std::string& path, const Aig& aig) {
    std::ofstream out(path);
    if (!out) throw std::runtime_error("cannot open " + path);
    write_aiger(out, aig);
    out.flush();
    if (!out) throw std::runtime_error("error writing " + path + " (truncated output)");
}

namespace {

/// AIGER varint decoding: 7 bits per byte, high bit = continuation.
std::size_t read_aiger_delta(std::istream& in) {
    std::size_t value = 0;
    int shift = 0;
    while (true) {
        const int byte = in.get();
        if (byte < 0) throw std::runtime_error("AIGER: truncated binary section");
        value |= static_cast<std::size_t>(byte & 0x7f) << shift;
        if (!(byte & 0x80)) return value;
        shift += 7;
    }
}

void write_aiger_delta(std::ostream& out, std::size_t value) {
    while (value >= 0x80) {
        out.put(static_cast<char>(0x80 | (value & 0x7f)));
        value >>= 7;
    }
    out.put(static_cast<char>(value));
}

/// Reads a binary "aig" body after the header numbers.
Aig read_aiger_binary_body(std::istream& in, std::size_t m, std::size_t i, std::size_t o,
                           std::size_t a) {
    Aig aig;
    std::vector<AigLit> var_map(m + 1, AigLit::constant(false));
    for (std::size_t k = 1; k <= i; ++k) var_map[k] = aig.add_pi();

    // Outputs are ASCII lines before the binary AND section.
    std::vector<std::size_t> output_lits(o);
    for (auto& lit : output_lits)
        if (!(in >> lit) || lit / 2 > m) throw std::runtime_error("AIGER: bad output literal");
    in.get();  // consume the newline preceding the binary section

    auto resolve = [&](std::size_t lit) {
        const AigLit base = var_map[lit / 2];
        return (lit & 1) ? !base : base;
    };
    for (std::size_t k = 0; k < a; ++k) {
        const std::size_t lhs = 2 * (i + k + 1);
        const std::size_t delta0 = read_aiger_delta(in);
        if (delta0 == 0 || delta0 > lhs) throw std::runtime_error("AIGER: bad delta");
        const std::size_t rhs0 = lhs - delta0;
        const std::size_t delta1 = read_aiger_delta(in);
        if (delta1 > rhs0) throw std::runtime_error("AIGER: bad delta");
        const std::size_t rhs1 = rhs0 - delta1;
        var_map[lhs / 2] = aig.land(resolve(rhs0), resolve(rhs1));
    }
    for (const auto lit : output_lits) aig.add_po(resolve(lit));

    // Optional symbol table (same format as ascii AIGER).
    std::string token;
    std::vector<std::string> po_names(o);
    bool have_po_names = false;
    while (in >> token) {
        if (token == "c") break;
        if (token.size() < 2) continue;
        std::string name;
        if (!std::getline(in, name)) break;
        if (!name.empty() && name[0] == ' ') name.erase(0, 1);
        const std::size_t index = std::strtoull(token.c_str() + 1, nullptr, 10);
        if (token[0] == 'o' && index < o) {
            po_names[index] = name;
            have_po_names = true;
        }
    }
    if (have_po_names) {
        Aig renamed;
        std::vector<AigLit> pi_map;
        for (std::size_t k = 0; k < aig.num_pis(); ++k) pi_map.push_back(renamed.add_pi());
        const auto outs = append_aig(renamed, aig, pi_map);
        for (std::size_t k = 0; k < outs.size(); ++k)
            renamed.add_po(outs[k], po_names[k].empty() ? "po" + std::to_string(k) : po_names[k]);
        return renamed.cleanup();
    }
    return aig.cleanup();
}

}  // namespace

void write_aiger_binary(std::ostream& out, const Aig& aig) {
    // The binary format requires inputs at variables 1..I and contiguous
    // AND variables above them, so renumber via a reachability pass.
    const Aig compact = aig.cleanup();
    const std::size_t i = compact.num_pis();
    std::vector<std::size_t> var_of(compact.num_nodes(), 0);
    for (std::size_t k = 0; k < i; ++k) var_of[compact.pi(k)] = k + 1;
    std::size_t next_var = i + 1;
    std::vector<std::uint32_t> and_nodes;
    for (std::uint32_t id = 1; id < compact.num_nodes(); ++id)
        if (compact.is_and(id)) {
            var_of[id] = next_var++;
            and_nodes.push_back(id);
        }
    auto lit_of = [&](AigLit l) { return 2 * var_of[l.node()] + (l.complemented() ? 1 : 0); };

    const std::size_t m = next_var - 1;
    out << "aig " << m << " " << i << " 0 " << compact.num_pos() << " " << and_nodes.size()
        << "\n";
    for (std::size_t k = 0; k < compact.num_pos(); ++k) out << lit_of(compact.po(k)) << "\n";
    for (const auto id : and_nodes) {
        const auto& n = compact.node(id);
        const std::size_t lhs = 2 * var_of[id];
        std::size_t rhs0 = lit_of(n.fanin0);
        std::size_t rhs1 = lit_of(n.fanin1);
        if (rhs0 < rhs1) std::swap(rhs0, rhs1);
        LLS_ENSURE(lhs > rhs0 && "AIGER ordering requires fanins below the gate");
        write_aiger_delta(out, lhs - rhs0);
        write_aiger_delta(out, rhs0 - rhs1);
    }
    for (std::size_t k = 0; k < compact.num_pis(); ++k)
        out << "i" << k << " " << compact.pi_name(k) << "\n";
    for (std::size_t k = 0; k < compact.num_pos(); ++k)
        out << "o" << k << " " << compact.po_name(k) << "\n";
}

void write_aiger_binary_file(const std::string& path, const Aig& aig) {
    std::ofstream out(path, std::ios::binary);
    if (!out) throw std::runtime_error("cannot open " + path);
    write_aiger_binary(out, aig);
    out.flush();
    if (!out) throw std::runtime_error("error writing " + path + " (truncated output)");
}

Aig read_aiger(std::istream& in) {
    std::string magic;
    std::size_t m = 0, i = 0, l = 0, o = 0, a = 0;
    if (!(in >> magic >> m >> i >> l >> o >> a) || (magic != "aag" && magic != "aig"))
        throw std::runtime_error("AIGER: bad header");
    if (l != 0) throw std::runtime_error("AIGER: latches are not supported");
    if (magic == "aig") return read_aiger_binary_body(in, m, i, o, a);

    Aig aig;
    // lit_map[aiger variable] -> our literal (variable v = aiger literal 2v).
    std::vector<AigLit> var_map(m + 1, AigLit::constant(false));
    var_map[0] = AigLit::constant(false);

    std::vector<std::size_t> input_vars;
    for (std::size_t k = 0; k < i; ++k) {
        std::size_t lit = 0;
        if (!(in >> lit) || (lit & 1) || lit / 2 > m)
            throw std::runtime_error("AIGER: bad input literal");
        var_map[lit / 2] = aig.add_pi();
        input_vars.push_back(lit / 2);
    }

    std::vector<std::size_t> output_lits(o);
    for (auto& lit : output_lits)
        if (!(in >> lit) || lit / 2 > m) throw std::runtime_error("AIGER: bad output literal");

    auto resolve = [&](std::size_t lit) {
        const AigLit base = var_map[lit / 2];
        return (lit & 1) ? !base : base;
    };

    for (std::size_t k = 0; k < a; ++k) {
        std::size_t out_lit = 0, in0 = 0, in1 = 0;
        if (!(in >> out_lit >> in0 >> in1) || (out_lit & 1) || out_lit / 2 > m ||
            in0 / 2 > m || in1 / 2 > m)
            throw std::runtime_error("AIGER: bad and line");
        // AIGER requires fanin variables to be defined before use
        // (out_lit > in0 >= in1 in the standard ordering).
        var_map[out_lit / 2] = aig.land(resolve(in0), resolve(in1));
    }

    for (const auto lit : output_lits) aig.add_po(resolve(lit));

    // Optional symbol table: iN / oN lines.
    std::string token;
    std::vector<std::string> po_names(o);
    bool have_po_names = false;
    while (in >> token) {
        if (token == "c") break;  // comment section
        if (token.size() < 2) continue;
        std::string name;
        if (!std::getline(in, name)) break;
        if (!name.empty() && name[0] == ' ') name.erase(0, 1);
        const std::size_t index = std::strtoull(token.c_str() + 1, nullptr, 10);
        if (token[0] == 'o' && index < o) {
            po_names[index] = name;
            have_po_names = true;
        }
        // PI names are informational; our PIs keep positional names so the
        // interface stays aligned with the literal order.
    }
    if (have_po_names) {
        Aig renamed;
        std::vector<AigLit> pi_map;
        for (std::size_t k = 0; k < aig.num_pis(); ++k) pi_map.push_back(renamed.add_pi());
        const auto outs = append_aig(renamed, aig, pi_map);
        for (std::size_t k = 0; k < outs.size(); ++k)
            renamed.add_po(outs[k], po_names[k].empty() ? "po" + std::to_string(k) : po_names[k]);
        return renamed.cleanup();
    }
    return aig.cleanup();
}

Aig read_aiger_file(const std::string& path) {
    std::ifstream in(path);
    if (!in) throw std::runtime_error("cannot open " + path);
    return read_aiger(in);
}

}  // namespace lls
