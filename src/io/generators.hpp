#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "aig/aig.hpp"
#include "common/rng.hpp"

namespace lls {

/// n-bit ripple-carry adder: PIs a0..a(n-1), b0..b(n-1), cin; POs
/// sum0..sum(n-1), cout. The canonical slow adder of the paper's case study
/// (Sec. 4) and of Table 1.
Aig ripple_carry_adder(int bits);

/// n-bit carry-lookahead adder with a Sklansky parallel-prefix carry tree:
/// the "Optimum" reference row of Table 1.
Aig carry_lookahead_adder(int bits);

/// n-bit carry-select adder (blocks of `block` bits computed for both carry
/// values and selected): one of the classic fast adders the decomposition
/// rediscovers.
Aig carry_select_adder(int bits, int block = 4);

/// Profile of a synthetic multi-level control-logic benchmark; stands in
/// for an MCNC/ISCAS/OpenSPARC circuit (see DESIGN.md, "Substitutions").
struct BenchmarkProfile {
    std::string name;
    int num_pis = 0;
    int num_pos = 0;
    int chain_length = 12;   ///< depth of the rippling control chains
    int num_shared = 0;      ///< shared intermediate signals (logic sharing)
    std::uint64_t seed = 1;
};

/// Generates irregular multi-level control logic with the structural
/// features the paper calls out: multiple critical paths, non-disjoint
/// support, logic sharing, and late-arriving chain signals (priority /
/// select-style cascades interleaved with random gating).
Aig synthetic_control_circuit(const BenchmarkProfile& profile);

/// The fifteen Table 2 benchmark profiles (PI/PO counts follow the paper's
/// circuits; the logic itself is synthetic — the originals are not
/// redistributable).
std::vector<BenchmarkProfile> table2_profiles();

}  // namespace lls
