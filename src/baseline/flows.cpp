#include "baseline/flows.hpp"

#include "baseline/restructure.hpp"
#include "cec/cec.hpp"
#include "exact/rewrite.hpp"

namespace lls {

Aig flow_sis(const Aig& aig, Rng& rng) {
    // "rugged"/"algebraic": one area-oriented resynthesis round, then
    // "speed_up": critical-path-only delay restructuring until no gain.
    Aig current = balance(aig.cleanup());
    RestructureOptions area;
    area.delay_oriented = false;
    area.cut_size = 6;
    current = restructure(current, area);
    current = sat_sweep(current, rng);

    RestructureOptions speedup;
    speedup.delay_oriented = true;
    speedup.only_critical = true;
    speedup.cut_size = 6;
    for (int i = 0; i < 6; ++i) {
        Aig next = balance(restructure(current, speedup));
        if (next.depth() >= current.depth()) break;
        current = std::move(next);
    }
    return current;
}

Aig flow_abc(const Aig& aig, Rng& rng) {
    // resyn2rs-like: balance / rewrite / refactor rounds with an area
    // objective. `rewrite` is the exact-synthesis cut rewriting (the real
    // counterpart of ABC's rewrite command).
    Aig current = aig.cleanup();
    RestructureOptions refactor;
    refactor.delay_oriented = false;
    refactor.cut_size = 8;
    for (int i = 0; i < 3; ++i) {
        current = balance(current);
        if (i == 0) current = rewrite(current);
        current = restructure(current, refactor);
        current = sat_sweep(current, rng);
    }
    return balance(current);
}

Aig flow_dc(const Aig& aig, Rng& rng) {
    // High-effort delay flow: global delay restructuring + balancing until
    // convergence, with area recovery.
    Aig current = balance(aig.cleanup());
    RestructureOptions delay;
    delay.delay_oriented = true;
    delay.cut_size = 8;
    for (int i = 0; i < 10; ++i) {
        Aig next = balance(restructure(current, delay));
        next = sat_sweep(next, rng);
        if (next.depth() >= current.depth()) break;
        current = std::move(next);
    }
    return current;
}

}  // namespace lls
