#include "baseline/permissible.hpp"

#include <algorithm>

#include "aig/aig_build.hpp"
#include "cec/cec.hpp"
#include "network/network.hpp"
#include "sop/sop.hpp"

namespace lls {

namespace {

/// Per-pattern "some PO differs" bits between two signature sets.
Signature po_difference(const Network& net, const std::vector<Signature>& a,
                        const std::vector<Signature>& b, std::size_t words) {
    Signature diff(words, 0);
    for (std::size_t o = 0; o < net.num_pos(); ++o) {
        const auto node = net.po(o).node;
        for (std::size_t w = 0; w < words; ++w) diff[w] |= a[node][w] ^ b[node][w];
        // PO complement flags cancel in the XOR.
    }
    return diff;
}

}  // namespace

Aig permissible_function_simplify(const Aig& aig, const PermissibleOptions& options) {
    Network net = Network::from_aig(aig, options.cut_size, options.max_cuts);
    Rng rng(options.seed);
    const SimPatterns patterns =
        aig.num_pis() <= SimPatterns::kMaxExhaustivePis
            ? SimPatterns::exhaustive(aig.num_pis())
            : SimPatterns::random(aig.num_pis(), options.num_patterns, rng);
    const std::size_t words = patterns.num_words();
    std::vector<Signature> sigs = net.simulate(patterns);

    for (std::uint32_t j = 1; j < net.num_nodes(); ++j) {
        if (!net.is_internal(j)) continue;
        const TruthTable f = net.function(j);
        const int k = f.num_vars();
        const auto& fanins = net.fanins(j);

        // Flip simulation: complement node j and re-evaluate its fanout cone
        // (everything with a larger id, since ids are topological).
        std::vector<Signature> flipped = sigs;
        for (std::size_t w = 0; w < words; ++w) flipped[j][w] = ~flipped[j][w];
        for (std::uint32_t id = j + 1; id < net.num_nodes(); ++id)
            if (net.is_internal(id))
                flipped[id] = net.eval_node_signature(id, flipped, patterns.num_patterns());
        const Signature observable = po_difference(net, sigs, flipped, words);

        // Candidate don't-care minterms of j's local space: no observed
        // pattern maps there with an observable flip.
        TruthTable care(k);
        for (std::size_t p = 0; p < patterns.num_patterns(); ++p) {
            if (!((observable[p >> 6] >> (p & 63)) & 1)) continue;
            std::uint32_t minterm = 0;
            for (std::size_t fi = 0; fi < fanins.size(); ++fi)
                if ((sigs[fanins[fi]][p >> 6] >> (p & 63)) & 1) minterm |= 1u << fi;
            care.set_bit(minterm, true);
        }
        TruthTable dc_candidates = ~care;
        if (dc_candidates.is_const0()) continue;

        TruthTable dc(k);
        if (patterns.is_exhaustive()) {
            // Exhaustive flip simulation is itself the proof.
            dc = dc_candidates;
        } else {
            // Flip miter: original network vs. network with node j
            // complemented; a don't-care minterm must make the miter UNSAT.
            Network flipped_net = net;
            flipped_net.set_function(j, ~f);
            std::vector<AigLit> map_a, map_b;
            const Aig full_a = net.to_aig_with_map(&map_a);
            const Aig full_b = flipped_net.to_aig_with_map(&map_b);

            Aig joint;
            std::vector<AigLit> pi_map;
            for (std::size_t i = 0; i < aig.num_pis(); ++i) joint.add_pi(aig.pi_name(i));
            for (std::size_t i = 0; i < aig.num_pis(); ++i) pi_map.push_back(joint.pi_lit(i));
            std::vector<AigLit> node_map_a, node_map_b;
            const auto pos_a = append_aig(joint, full_a, pi_map, &node_map_a);
            const auto pos_b = append_aig(joint, full_b, pi_map, &node_map_b);
            std::vector<AigLit> diffs;
            for (std::size_t o = 0; o < pos_a.size(); ++o)
                diffs.push_back(joint.lxor(pos_a[o], pos_b[o]));
            const AigLit miter = joint.lor_many(std::move(diffs));
            joint.add_po(miter, "miter");

            sat::Solver solver;
            std::vector<int> pi_vars(joint.num_pis());
            for (auto& v : pi_vars) v = solver.new_var();
            const auto sat_lits = encode_aig_nodes(joint, solver, pi_vars);
            auto net_lit = [&](std::uint32_t node) {
                const AigLit in_full = map_a[node];
                const AigLit in_joint = in_full.complemented()
                                            ? !node_map_a[in_full.node()]
                                            : node_map_a[in_full.node()];
                return sat_lit_of(sat_lits, in_joint);
            };
            const sat::Lit miter_lit = sat_lit_of(sat_lits, joint.po(joint.num_pos() - 1));

            for (std::uint32_t m = 0; m < (1u << k); ++m) {
                if (!dc_candidates.get_bit(m)) continue;
                std::vector<sat::Lit> assumptions{miter_lit};
                for (std::size_t fi = 0; fi < fanins.size(); ++fi) {
                    const sat::Lit l = net_lit(fanins[fi]);
                    assumptions.push_back(((m >> fi) & 1) ? l : !l);
                }
                if (solver.solve(assumptions, options.sat_conflict_limit) == sat::Status::Unsat)
                    dc.set_bit(m, true);
            }
        }
        if (dc.is_const0()) continue;

        // Area objective: adopt the don't-care-minimized cover only when it
        // actually simplifies the node.
        const Sop current_cover = minimum_sop(f);
        const Sop better = minimum_sop(f & ~dc, dc);
        if (better.num_literals() >= current_cover.num_literals()) continue;
        net.set_function(j, better.to_truth_table());
        for (std::uint32_t id = j; id < net.num_nodes(); ++id)
            if (net.is_internal(id))
                sigs[id] = net.eval_node_signature(id, sigs, patterns.num_patterns());
    }

    Rng sweep_rng(options.seed ^ 0x7777);
    Aig result = sat_sweep(net.to_aig_area(), sweep_rng);
    // Area objective: never return something larger than the input.
    if (result.count_reachable_ands() >= aig.cleanup().count_reachable_ands()) return aig.cleanup();
    return result;
}

}  // namespace lls
