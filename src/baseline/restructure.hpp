#pragma once

#include "aig/aig.hpp"

namespace lls {

/// Depth-optimal reconstruction of AND trees: multi-input conjunctions are
/// re-associated Huffman-style by fanin arrival level (the classic
/// `balance` pass). Single-fanout AND chains are flattened; shared nodes
/// are kept as tree leaves to avoid duplication.
Aig balance(const Aig& aig);

/// Options for the cut-based resynthesis pass.
struct RestructureOptions {
    int cut_size = 8;
    int max_cuts = 6;
    /// true: choose each node's rebuild to minimize arrival level
    /// (delay-oriented, like SIS `speed_up` / DC high effort);
    /// false: minimize factored literal count (area-oriented, like the
    /// refactor steps of ABC's resyn scripts).
    bool delay_oriented = true;
    /// Restrict resynthesis to nodes on topologically critical paths.
    bool only_critical = false;
};

/// Cut-based resynthesis: for every AND node, considers re-expressing the
/// function of each enumerated cut from scratch (timed SOP trees for delay,
/// factored forms for area) and keeps the best rebuild. This is the
/// workhorse behind the three baseline flows.
Aig restructure(const Aig& aig, const RestructureOptions& options);

}  // namespace lls
