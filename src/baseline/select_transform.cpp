#include "baseline/select_transform.hpp"

#include <algorithm>
#include <optional>

#include "aig/aig_build.hpp"

namespace lls {

Aig cofactor_internal(const Aig& aig, std::uint32_t node, bool value) {
    LLS_REQUIRE(aig.is_and(node) || aig.is_pi(node));
    Aig out;
    std::vector<AigLit> remap(aig.num_nodes(), AigLit::constant(false));
    for (std::size_t i = 0; i < aig.num_pis(); ++i) remap[aig.pi(i)] = out.add_pi(aig.pi_name(i));
    remap[node] = AigLit::constant(value);
    for (std::uint32_t id = 1; id < aig.num_nodes(); ++id) {
        if (!aig.is_and(id) || id == node) continue;
        const auto& n = aig.node(id);
        const AigLit f0 = n.fanin0.complemented() ? !remap[n.fanin0.node()] : remap[n.fanin0.node()];
        const AigLit f1 = n.fanin1.complemented() ? !remap[n.fanin1.node()] : remap[n.fanin1.node()];
        remap[id] = out.land(f0, f1);
    }
    for (std::size_t o = 0; o < aig.num_pos(); ++o) {
        const AigLit po = aig.po(o);
        out.add_po(po.complemented() ? !remap[po.node()] : remap[po.node()], aig.po_name(o));
    }
    return out.cleanup();
}

namespace {

/// Applies one select-transform step to a single-output cone; returns the
/// improved cone if some selection signal reduces its depth.
std::optional<Aig> select_step(const Aig& cone) {
    const int depth = cone.depth();
    if (depth < 3) return std::nullopt;
    const auto levels = cone.compute_levels();

    // Required times: a node is on a critical path iff level == required.
    std::vector<int> required(cone.num_nodes(), depth);
    for (std::uint32_t id = static_cast<std::uint32_t>(cone.num_nodes()); id-- > 1;) {
        if (!cone.is_and(id)) continue;
        const auto& n = cone.node(id);
        required[n.fanin0.node()] = std::min(required[n.fanin0.node()], required[id] - 1);
        required[n.fanin1.node()] = std::min(required[n.fanin1.node()], required[id] - 1);
    }

    // Candidate selection signals: critical AND nodes in the middle band of
    // the path (the logic both below *and* above them must be nontrivial).
    std::vector<std::uint32_t> candidates;
    for (std::uint32_t id = 1; id < cone.num_nodes(); ++id) {
        if (!cone.is_and(id) || levels[id] != required[id]) continue;
        if (levels[id] < depth / 4 || levels[id] > 3 * depth / 4) continue;
        candidates.push_back(id);
    }
    // Spread the trials over the band, at most 8 of them.
    if (candidates.size() > 8) {
        std::vector<std::uint32_t> picked;
        for (std::size_t i = 0; i < 8; ++i)
            picked.push_back(candidates[i * candidates.size() / 8]);
        candidates = std::move(picked);
    }

    std::optional<Aig> best;
    int best_depth = depth;
    for (const auto s : candidates) {
        const Aig c0 = cofactor_internal(cone, s, false);
        const Aig c1 = cofactor_internal(cone, s, true);

        Aig scratch;
        std::vector<AigLit> pis;
        for (std::size_t i = 0; i < cone.num_pis(); ++i) pis.push_back(scratch.add_pi(cone.pi_name(i)));
        std::vector<AigLit> node_map;
        (void)append_aig(scratch, cone, pis, &node_map);
        const AigLit s_lit = node_map[s];
        const AigLit y0 = append_aig(scratch, c0, pis)[0];
        const AigLit y1 = append_aig(scratch, c1, pis)[0];
        scratch.add_po(scratch.lmux(s_lit, y1, y0), cone.po_name(0));
        Aig candidate = extract_cone(scratch, scratch.num_pos() - 1);
        if (candidate.depth() < best_depth) {
            best_depth = candidate.depth();
            best = std::move(candidate);
        }
    }
    return best;
}

}  // namespace

Aig generalized_select_transform(const Aig& aig, int max_iterations) {
    Aig current = aig.cleanup();
    for (int iter = 0; iter < max_iterations; ++iter) {
        const int depth = current.depth();
        const auto levels = current.compute_levels();

        Aig next;
        std::vector<AigLit> pi_map;
        for (std::size_t i = 0; i < current.num_pis(); ++i)
            pi_map.push_back(next.add_pi(current.pi_name(i)));
        const auto original_pos = append_aig(next, current, pi_map);

        bool improved = false;
        for (std::size_t o = 0; o < current.num_pos(); ++o) {
            AigLit po_lit = original_pos[o];
            if (levels[current.po(o).node()] == depth) {
                if (auto cone = select_step(extract_cone(current, o))) {
                    po_lit = append_aig(next, *cone, pi_map)[0];
                    improved = true;
                }
            }
            next.add_po(po_lit, current.po_name(o));
        }
        if (!improved) break;
        next = next.cleanup();
        if (next.depth() >= depth) break;
        current = std::move(next);
    }
    return current;
}

}  // namespace lls
