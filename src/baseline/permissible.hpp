#pragma once

#include "aig/aig.hpp"
#include "common/rng.hpp"

namespace lls {

/// Options for permissible-function resynthesis.
struct PermissibleOptions {
    int cut_size = 5;
    int max_cuts = 8;
    std::size_t num_patterns = 1024;
    std::int64_t sat_conflict_limit = 2000;
    std::uint64_t seed = 5;
};

/// Permissible-function / don't-care-based resynthesis (the [6]-style prior
/// function-based technique reviewed in the paper's Sec. 2, and the moral
/// equivalent of SIS `full_simplify`): every node of the clustered network
/// is re-minimized against its complete don't-care set — satisfiability
/// don't-cares (fanin combinations no input produces) plus observability
/// don't-cares (combinations whose effect never reaches a PO). Candidates
/// are proposed by simulation and each used don't-care minterm is *proven*
/// by SAT on a flip-miter, so the result is always equivalent to the input.
///
/// Area-oriented by nature (the paper's point is precisely that don't-care
/// resynthesis does not target timing); exposed as a baseline/ablation
/// comparator and a standalone cleanup pass.
Aig permissible_function_simplify(const Aig& aig, const PermissibleOptions& options = {});

}  // namespace lls
