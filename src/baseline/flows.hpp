#pragma once

#include "aig/aig.hpp"
#include "common/rng.hpp"

namespace lls {

/// Scripted baseline optimization flows. These are in-repo stand-ins for
/// the commercial/academic tools used in the paper's Tables 1 and 2 (see
/// DESIGN.md, "Substitutions"):
///
///  * flow_sis  ~ SIS with scripts delay / rugged / algebraic / speed_up:
///    algebraic area resynthesis followed by critical-path speedup passes.
///  * flow_abc  ~ ABC's resyn2rs: iterated balancing and (area-oriented)
///    refactoring rounds with SAT sweeping; area-first, so its depth
///    results trail the delay-oriented flows — matching the paper, where
///    resyn2rs is the weakest baseline on levels/delay.
///  * flow_dc   ~ Synopsys DC with -map_effort high -area_effort high:
///    the most aggressive baseline; interleaves delay-oriented
///    restructuring, balancing, and sweeping until no further gain.
///
/// Each flow returns a circuit equivalent to its input (the benchmark
/// harness additionally verifies this by CEC).
Aig flow_sis(const Aig& aig, Rng& rng);
Aig flow_abc(const Aig& aig, Rng& rng);
Aig flow_dc(const Aig& aig, Rng& rng);

}  // namespace lls
