#include "baseline/restructure.hpp"

#include <algorithm>
#include <limits>
#include <queue>

#include "aig/aig_build.hpp"
#include "aig/cuts.hpp"
#include "network/network.hpp"
#include "sop/factor.hpp"
#include "sop/sop.hpp"

namespace lls {

Aig balance(const Aig& aig) {
    Aig out;
    std::vector<AigLit> remap(aig.num_nodes(), AigLit::constant(false));
    for (std::size_t i = 0; i < aig.num_pis(); ++i) remap[aig.pi(i)] = out.add_pi(aig.pi_name(i));
    const auto fanout = aig.compute_fanout_counts();
    AigLevelTracker levels(out);

    // Leaves of the maximal single-fanout conjunction rooted at `lit`
    // (in the original AIG).
    auto collect_leaves = [&](AigLit root, auto&& self) -> std::vector<AigLit> {
        std::vector<AigLit> leaves;
        std::vector<AigLit> stack{root};
        while (!stack.empty()) {
            const AigLit lit = stack.back();
            stack.pop_back();
            const std::uint32_t id = lit.node();
            const bool expandable = !lit.complemented() && aig.is_and(id) &&
                                    (lit == root || fanout[id] == 1);
            if (expandable) {
                stack.push_back(aig.node(id).fanin0);
                stack.push_back(aig.node(id).fanin1);
            } else {
                leaves.push_back(lit);
            }
        }
        (void)self;
        return leaves;
    };

    for (std::uint32_t id = 1; id < aig.num_nodes(); ++id) {
        if (!aig.is_and(id)) continue;
        auto leaves = collect_leaves(AigLit::make(id, false), collect_leaves);
        for (auto& l : leaves) {
            const AigLit m = remap[l.node()];
            l = l.complemented() ? !m : m;
        }
        remap[id] = land_timed(out, std::move(leaves), levels);
    }
    for (std::size_t o = 0; o < aig.num_pos(); ++o) {
        const AigLit po = aig.po(o);
        out.add_po(po.complemented() ? !remap[po.node()] : remap[po.node()], aig.po_name(o));
    }
    return out.cleanup();
}

Aig restructure(const Aig& aig, const RestructureOptions& options) {
    const CutEnumerator cuts(aig, options.cut_size, options.max_cuts);
    const auto old_levels = aig.compute_levels();
    const int depth = aig.depth();

    // Criticality: nodes on some maximal-level path (level + slack == depth).
    std::vector<int> required(aig.num_nodes(), 0);
    if (options.only_critical) {
        for (auto& r : required) r = depth;
        std::vector<int> req(aig.num_nodes(), depth);
        for (std::uint32_t id = static_cast<std::uint32_t>(aig.num_nodes()); id-- > 1;) {
            if (!aig.is_and(id)) continue;
            const auto& n = aig.node(id);
            req[n.fanin0.node()] = std::min(req[n.fanin0.node()], req[id] - 1);
            req[n.fanin1.node()] = std::min(req[n.fanin1.node()], req[id] - 1);
        }
        required = std::move(req);
    }

    Aig out;
    std::vector<AigLit> remap(aig.num_nodes(), AigLit::constant(false));
    for (std::size_t i = 0; i < aig.num_pis(); ++i) remap[aig.pi(i)] = out.add_pi(aig.pi_name(i));
    AigLevelTracker levels(out);

    for (std::uint32_t id = 1; id < aig.num_nodes(); ++id) {
        if (!aig.is_and(id)) continue;
        const auto& n = aig.node(id);
        const AigLit f0 = n.fanin0.complemented() ? !remap[n.fanin0.node()] : remap[n.fanin0.node()];
        const AigLit f1 = n.fanin1.complemented() ? !remap[n.fanin1.node()] : remap[n.fanin1.node()];
        const AigLit plain = out.land(f0, f1);
        remap[id] = plain;

        const bool critical = !options.only_critical || old_levels[id] == required[id];
        if (!critical) continue;

        // Evaluate the enumerated cuts and keep the most promising rebuild.
        int best_score = options.delay_oriented
                             ? levels.level(plain)
                             : std::numeric_limits<int>::max();  // plain adds 1 node anyway
        const AigCut* best_cut = nullptr;
        Sop best_sop;
        bool best_phase_on = true;
        for (const auto& cut : cuts.cuts(id)) {
            if (cut.leaves.size() == 1 && cut.leaves[0] == id) continue;  // trivial
            std::vector<int> leaf_levels;
            std::vector<AigLit> leaf_lits;
            leaf_levels.reserve(cut.leaves.size());
            for (const auto l : cut.leaves) {
                const AigLit m = remap[l];
                leaf_lits.push_back(m);
                leaf_levels.push_back(levels.level(m));
            }
            const Sop on = isop(cut.tt);
            const Sop off = isop(~cut.tt);
            if (options.delay_oriented) {
                const int lvl_on = Network::sop_tree_level(on, leaf_levels);
                const int lvl_off = Network::sop_tree_level(off, leaf_levels);
                const bool phase_on = lvl_on <= lvl_off;
                const int score = phase_on ? lvl_on : lvl_off;
                if (score < best_score) {
                    best_score = score;
                    best_cut = &cut;
                    best_sop = phase_on ? on : off;
                    best_phase_on = phase_on;
                }
            } else {
                const FactorExpr fe_on = factor(on);
                const FactorExpr fe_off = factor(off);
                const bool phase_on = fe_on.num_literals() <= fe_off.num_literals();
                const int score = phase_on ? fe_on.num_literals() : fe_off.num_literals();
                if (score < best_score) {
                    best_score = score;
                    best_cut = &cut;
                    best_sop = phase_on ? on : off;
                    best_phase_on = phase_on;
                }
            }
        }
        if (!best_cut) continue;

        std::vector<AigLit> leaf_lits;
        leaf_lits.reserve(best_cut->leaves.size());
        for (const auto l : best_cut->leaves) leaf_lits.push_back(remap[l]);
        AigLit rebuilt;
        if (options.delay_oriented)
            rebuilt = build_sop_timed(out, best_sop, leaf_lits, levels);
        else
            rebuilt = build_factored(out, factor(best_sop), leaf_lits);
        if (!best_phase_on) rebuilt = !rebuilt;

        if (options.delay_oriented) {
            if (levels.level(rebuilt) < levels.level(plain)) remap[id] = rebuilt;
        } else {
            remap[id] = rebuilt;
        }
    }

    for (std::size_t o = 0; o < aig.num_pos(); ++o) {
        const AigLit po = aig.po(o);
        out.add_po(po.complemented() ? !remap[po.node()] : remap[po.node()], aig.po_name(o));
    }
    return out.cleanup();
}

}  // namespace lls
