#pragma once

#include "aig/aig.hpp"

namespace lls {

/// Constant-propagates an internal node: returns a copy of `aig` in which
/// node `node` is replaced by the constant `value` (the cofactor of the
/// circuit with respect to an internal signal).
Aig cofactor_internal(const Aig& aig, std::uint32_t node, bool value);

/// The *generalized select transform* (Berman et al., the topology-based
/// technique the paper's Sec. 2 reviews): for each critical output, pick a
/// late-arriving internal signal s on the critical path, compute the cone
/// for both values of s in parallel, and select with a multiplexer:
/// y = s ? y|s=1 : y|s=0. Implemented as an iterated transform that accepts
/// only depth-reducing applications; serves as a topology-only comparison
/// point for the function-based lookahead decomposition (which subsumes it:
/// the select transform is the special case window = s).
Aig generalized_select_transform(const Aig& aig, int max_iterations = 10);

}  // namespace lls
