#pragma once

#include <string>
#include <vector>

#include "sop/cube.hpp"
#include "tt/truth_table.hpp"

namespace lls {

/// Sum-of-products over `num_vars` variables: an OR of cubes.
/// An empty cube list is the constant-0 function; a list containing the
/// tautology cube is constant 1.
class Sop {
public:
    Sop() : num_vars_(0) {}
    explicit Sop(int num_vars) : num_vars_(num_vars) {
        LLS_REQUIRE(num_vars >= 0 && num_vars <= Cube::kMaxVars);
    }
    Sop(int num_vars, std::vector<Cube> cubes) : num_vars_(num_vars), cubes_(std::move(cubes)) {}

    int num_vars() const { return num_vars_; }
    const std::vector<Cube>& cubes() const { return cubes_; }
    std::vector<Cube>& cubes() { return cubes_; }
    std::size_t num_cubes() const { return cubes_.size(); }
    bool empty() const { return cubes_.empty(); }

    int num_literals() const;

    void add_cube(const Cube& c) { cubes_.push_back(c); }

    bool evaluate(std::uint32_t minterm) const;

    TruthTable to_truth_table() const;

    /// Removes cubes contained in other cubes (single-cube containment).
    void remove_contained_cubes();

    std::string to_string() const;

private:
    int num_vars_;
    std::vector<Cube> cubes_;
};

/// Irredundant SOP between bounds via the Minato-Morreale algorithm:
/// returns an SOP g with lower <= g <= upper, irredundant w.r.t. those
/// bounds. `lower` are the required minterms (on-set), `upper` the allowed
/// ones (on-set plus don't-cares). Requires lower.implies(upper).
Sop isop(const TruthTable& lower, const TruthTable& upper);

/// Irredundant SOP of the exact function (no don't-cares).
inline Sop isop(const TruthTable& f) { return isop(f, f); }

/// All prime implicants of the function `f` with optional don't-care set
/// `dc` (primes of f|dc that intersect f), by iterated consensus/merging.
/// Exponential in general; intended for local node functions (<= ~12 vars).
std::vector<Cube> prime_implicants(const TruthTable& f, const TruthTable& dc);

inline std::vector<Cube> prime_implicants(const TruthTable& f) {
    return prime_implicants(f, TruthTable::constant(f.num_vars(), false));
}

/// Greedy minimum-cost prime cover of `f` (unate covering heuristic over
/// the primes): a compact stand-in for an exact minimum SOP.
Sop minimum_sop(const TruthTable& f, const TruthTable& dc);

inline Sop minimum_sop(const TruthTable& f) {
    return minimum_sop(f, TruthTable::constant(f.num_vars(), false));
}

}  // namespace lls
