#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sop/sop.hpp"

namespace lls {

/// Factored-form expression tree produced from an SOP by algebraic
/// (literal-division) factoring. Used to rebuild compact AIGs from the
/// node functions of a technology-independent network.
struct FactorExpr {
    enum class Kind { Const0, Const1, Literal, And, Or };

    Kind kind = Kind::Const0;
    int var = -1;          ///< for Literal
    bool polarity = true;  ///< for Literal: true = positive literal
    std::vector<FactorExpr> children;

    static FactorExpr constant(bool value) {
        FactorExpr e;
        e.kind = value ? Kind::Const1 : Kind::Const0;
        return e;
    }
    static FactorExpr literal(int var, bool polarity) {
        FactorExpr e;
        e.kind = Kind::Literal;
        e.var = var;
        e.polarity = polarity;
        return e;
    }

    /// Number of literal leaves in the tree.
    int num_literals() const;

    std::string to_string() const;
};

/// Algebraic factoring of an SOP by recursive most-frequent-literal
/// division ("quick factor"). The result is logically equivalent to the SOP.
FactorExpr factor(const Sop& sop);

/// Evaluates a factored expression on a minterm (bit v of `minterm` is the
/// value of variable v).
bool evaluate(const FactorExpr& expr, std::uint32_t minterm);

}  // namespace lls
