#pragma once

#include <optional>

#include "sop/sop.hpp"

namespace lls {

/// Exact minimum-cube SOP via prime generation + branch-and-bound unate
/// covering (Quine–McCluskey / Petrick style):
///   * generate all primes of [f, f|dc],
///   * unit-propagate essential primes,
///   * branch on the hardest uncovered minterm, bounding with the current
///     best and an independent-set lower bound.
///
/// Exponential in the worst case, so the search takes a node budget and
/// returns nullopt when exceeded (callers fall back to the heuristic
/// `minimum_sop`). Intended for the local node functions of the synthesis
/// flow (<= ~8 variables, dozens of primes).
std::optional<Sop> exact_minimum_sop(const TruthTable& f, const TruthTable& dc,
                                     std::size_t budget = 20000);

inline std::optional<Sop> exact_minimum_sop(const TruthTable& f, std::size_t budget = 20000) {
    return exact_minimum_sop(f, TruthTable::constant(f.num_vars(), false), budget);
}

}  // namespace lls
