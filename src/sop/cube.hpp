#pragma once

#include <cstdint>
#include <string>

#include "common/bitops.hpp"
#include "common/check.hpp"

namespace lls {

/// A product term (cube) over up to 32 variables, stored as two bitmasks:
/// bit v of `pos` set means literal x_v appears, bit v of `neg` means ~x_v.
/// A variable appearing in neither mask is absent (don't-care in the cube).
struct Cube {
    std::uint32_t pos = 0;
    std::uint32_t neg = 0;

    static constexpr int kMaxVars = 32;

    Cube() = default;
    Cube(std::uint32_t p, std::uint32_t n) : pos(p), neg(n) { LLS_DCHECK((p & n) == 0); }

    /// The full cube (tautology product, no literals).
    static Cube tautology() { return Cube{}; }

    /// Cube of the single minterm `m` over `num_vars` variables.
    static Cube minterm(std::uint32_t m, int num_vars) {
        const std::uint32_t mask =
            num_vars >= 32 ? ~0u : ((1u << num_vars) - 1);
        return Cube{m & mask, ~m & mask};
    }

    int num_literals() const { return popcount64(pos) + popcount64(neg); }

    bool has_literal(int var) const { return ((pos | neg) >> var) & 1; }
    bool literal_polarity(int var) const { return (pos >> var) & 1; }

    Cube with_literal(int var, bool polarity) const {
        Cube c = *this;
        if (polarity)
            c.pos |= 1u << var;
        else
            c.neg |= 1u << var;
        LLS_DCHECK((c.pos & c.neg) == 0);
        return c;
    }

    Cube without_literal(int var) const {
        Cube c = *this;
        c.pos &= ~(1u << var);
        c.neg &= ~(1u << var);
        return c;
    }

    /// True if the minterm (variable assignment) `m` lies inside this cube.
    bool contains_minterm(std::uint32_t m) const {
        return (m & pos) == pos && (~m & neg) == neg;
    }

    /// True if this cube contains (covers) every minterm of `other`.
    bool contains_cube(const Cube& other) const {
        return (pos & ~other.pos) == 0 && (neg & ~other.neg) == 0;
    }

    /// True if the two cubes share at least one minterm.
    bool intersects(const Cube& other) const {
        return (pos & other.neg) == 0 && (neg & other.pos) == 0;
    }

    bool operator==(const Cube& other) const = default;

    /// PLA-style text: one character per variable, '1'/'0'/'-', variable 0 first.
    std::string to_string(int num_vars) const {
        std::string s(static_cast<std::size_t>(num_vars), '-');
        for (int v = 0; v < num_vars; ++v) {
            if ((pos >> v) & 1) s[static_cast<std::size_t>(v)] = '1';
            if ((neg >> v) & 1) s[static_cast<std::size_t>(v)] = '0';
        }
        return s;
    }
};

}  // namespace lls
