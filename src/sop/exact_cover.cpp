#include "sop/exact_cover.hpp"

#include <algorithm>
#include <vector>

namespace lls {

namespace {

/// Branch-and-bound state for the unate covering problem.
struct CoverSearch {
    // coverage[p] = bitset (over minterm indices) covered by prime p.
    std::vector<std::vector<std::uint64_t>> coverage;
    std::size_t num_minterms = 0;
    std::size_t words = 0;
    std::size_t budget = 0;
    std::vector<int> best;  // best known solution (prime indices)
    bool budget_exceeded = false;

    bool all_covered(const std::vector<std::uint64_t>& covered) const {
        for (std::size_t w = 0; w < words; ++w) {
            std::uint64_t expect = ~0ULL;
            if (w + 1 == words && num_minterms % 64) expect = (1ULL << (num_minterms % 64)) - 1;
            if ((covered[w] & expect) != expect) return false;
        }
        return true;
    }

    int first_uncovered(const std::vector<std::uint64_t>& covered) const {
        for (std::size_t w = 0; w < words; ++w) {
            std::uint64_t expect = ~0ULL;
            if (w + 1 == words && num_minterms % 64) expect = (1ULL << (num_minterms % 64)) - 1;
            const std::uint64_t missing = ~covered[w] & expect;
            if (missing) return static_cast<int>(w * 64 + static_cast<std::size_t>(
                                                              __builtin_ctzll(missing)));
        }
        return -1;
    }

    /// Independent-set lower bound: greedily pick uncovered minterms whose
    /// covering primes are pairwise disjoint; each needs its own prime.
    int lower_bound(const std::vector<std::uint64_t>& covered,
                    const std::vector<std::vector<int>>& covers_of) const {
        std::vector<char> prime_used(coverage.size(), 0);
        int bound = 0;
        for (std::size_t m = 0; m < num_minterms; ++m) {
            if ((covered[m >> 6] >> (m & 63)) & 1) continue;
            bool independent = true;
            for (const int p : covers_of[m])
                if (prime_used[static_cast<std::size_t>(p)]) {
                    independent = false;
                    break;
                }
            if (!independent) continue;
            ++bound;
            for (const int p : covers_of[m]) prime_used[static_cast<std::size_t>(p)] = 1;
        }
        return bound;
    }

    void search(std::vector<std::uint64_t>& covered, std::vector<int>& chosen,
                const std::vector<std::vector<int>>& covers_of) {
        if (budget == 0) {
            budget_exceeded = true;
            return;
        }
        --budget;
        if (all_covered(covered)) {
            if (best.empty() || chosen.size() < best.size()) best = chosen;
            return;
        }
        if (!best.empty() &&
            chosen.size() + static_cast<std::size_t>(lower_bound(covered, covers_of)) >=
                best.size())
            return;

        // Branch on the uncovered minterm with the fewest covering primes.
        int branch_minterm = -1;
        std::size_t fewest = ~std::size_t{0};
        for (std::size_t m = 0; m < num_minterms; ++m) {
            if ((covered[m >> 6] >> (m & 63)) & 1) continue;
            if (covers_of[m].size() < fewest) {
                fewest = covers_of[m].size();
                branch_minterm = static_cast<int>(m);
            }
        }
        if (branch_minterm < 0) return;  // unreachable: all_covered handled it

        for (const int p : covers_of[static_cast<std::size_t>(branch_minterm)]) {
            std::vector<std::uint64_t> next = covered;
            for (std::size_t w = 0; w < words; ++w)
                next[w] |= coverage[static_cast<std::size_t>(p)][w];
            chosen.push_back(p);
            search(next, chosen, covers_of);
            chosen.pop_back();
            if (budget_exceeded) return;
        }
    }
};

}  // namespace

std::optional<Sop> exact_minimum_sop(const TruthTable& f, const TruthTable& dc,
                                     std::size_t budget) {
    LLS_REQUIRE(f.num_vars() == dc.num_vars());
    const int n = f.num_vars();
    const TruthTable on = f & ~dc;
    if (on.is_const0()) return Sop(n);
    if ((f | dc).is_const1()) {
        Sop s(n);
        s.add_cube(Cube::tautology());
        return s;
    }

    const std::vector<Cube> primes = prime_implicants(on, dc);
    // Indices of care on-set minterms.
    std::vector<std::uint32_t> minterms;
    for (std::uint64_t m = 0; m < on.num_minterms(); ++m)
        if (on.get_bit(m)) minterms.push_back(static_cast<std::uint32_t>(m));

    CoverSearch cs;
    cs.num_minterms = minterms.size();
    cs.words = (minterms.size() + 63) / 64;
    cs.budget = budget;
    cs.coverage.assign(primes.size(), std::vector<std::uint64_t>(cs.words, 0));
    std::vector<std::vector<int>> covers_of(minterms.size());
    for (std::size_t p = 0; p < primes.size(); ++p)
        for (std::size_t m = 0; m < minterms.size(); ++m)
            if (primes[p].contains_minterm(minterms[m])) {
                cs.coverage[p][m >> 6] |= 1ULL << (m & 63);
                covers_of[m].push_back(static_cast<int>(p));
            }

    // Essential primes: a minterm covered by exactly one prime forces it.
    std::vector<std::uint64_t> covered(cs.words, 0);
    std::vector<int> chosen;
    std::vector<char> taken(primes.size(), 0);
    for (std::size_t m = 0; m < minterms.size(); ++m) {
        if (covers_of[m].size() != 1) continue;
        const int p = covers_of[m][0];
        if (taken[static_cast<std::size_t>(p)]) continue;
        taken[static_cast<std::size_t>(p)] = 1;
        chosen.push_back(p);
        for (std::size_t w = 0; w < cs.words; ++w)
            covered[w] |= cs.coverage[static_cast<std::size_t>(p)][w];
    }

    cs.search(covered, chosen, covers_of);
    // A truncated search may hold a feasible but unproven cover; "exact"
    // semantics require declining in that case.
    if (cs.budget_exceeded || cs.best.empty()) return std::nullopt;

    Sop result(n);
    for (const int p : cs.best) result.add_cube(primes[static_cast<std::size_t>(p)]);
    return result;
}

}  // namespace lls
