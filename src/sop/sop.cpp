#include "sop/sop.hpp"

#include "sop/exact_cover.hpp"

#include <algorithm>
#include <map>
#include <set>

namespace lls {

int Sop::num_literals() const {
    int n = 0;
    for (const auto& c : cubes_) n += c.num_literals();
    return n;
}

bool Sop::evaluate(std::uint32_t minterm) const {
    return std::any_of(cubes_.begin(), cubes_.end(),
                       [&](const Cube& c) { return c.contains_minterm(minterm); });
}

TruthTable Sop::to_truth_table() const {
    TruthTable tt(num_vars_);
    for (const auto& c : cubes_) {
        TruthTable cube_tt = TruthTable::constant(num_vars_, true);
        for (int v = 0; v < num_vars_; ++v) {
            if ((c.pos >> v) & 1) cube_tt &= TruthTable::variable(num_vars_, v);
            if ((c.neg >> v) & 1) cube_tt &= ~TruthTable::variable(num_vars_, v);
        }
        tt |= cube_tt;
    }
    return tt;
}

void Sop::remove_contained_cubes() {
    std::vector<Cube> kept;
    for (std::size_t i = 0; i < cubes_.size(); ++i) {
        bool contained = false;
        for (std::size_t j = 0; j < cubes_.size() && !contained; ++j) {
            if (i == j) continue;
            // Break ties by index so that two identical cubes keep exactly one.
            if (cubes_[j].contains_cube(cubes_[i]) &&
                (!cubes_[i].contains_cube(cubes_[j]) || j < i))
                contained = true;
        }
        if (!contained) kept.push_back(cubes_[i]);
    }
    cubes_ = std::move(kept);
}

std::string Sop::to_string() const {
    if (cubes_.empty()) return "0";
    std::string s;
    for (std::size_t i = 0; i < cubes_.size(); ++i) {
        if (i) s += " + ";
        if (cubes_[i].num_literals() == 0) {
            s += "1";
            continue;
        }
        bool first = true;
        for (int v = 0; v < num_vars_; ++v) {
            if (!cubes_[i].has_literal(v)) continue;
            if (!first) s += "*";
            first = false;
            if (!cubes_[i].literal_polarity(v)) s += "!";
            s += "x" + std::to_string(v);
        }
    }
    return s;
}

namespace {

// Minato-Morreale ISOP on truth tables. Returns cubes of an irredundant SOP
// g with lower <= g <= upper, and stores the truth table of g in `cover`.
Sop isop_rec(const TruthTable& lower, const TruthTable& upper, int top_var, TruthTable* cover) {
    LLS_DCHECK(lower.implies(upper));
    const int n = lower.num_vars();
    if (lower.is_const0()) {
        *cover = TruthTable::constant(n, false);
        return Sop(n);
    }
    if (upper.is_const1()) {
        *cover = TruthTable::constant(n, true);
        Sop s(n);
        s.add_cube(Cube::tautology());
        return s;
    }
    // Find the top-most variable in the support of lower or upper.
    int var = top_var;
    while (var >= 0 && !lower.has_var(var) && !upper.has_var(var)) --var;
    LLS_ENSURE(var >= 0 && "non-constant function must have support");

    const TruthTable l0 = lower.cofactor(var, false);
    const TruthTable l1 = lower.cofactor(var, true);
    const TruthTable u0 = upper.cofactor(var, false);
    const TruthTable u1 = upper.cofactor(var, true);

    // Cubes that must contain literal !x_var / x_var.
    TruthTable cover0, cover1;
    Sop s0 = isop_rec(l0 & ~u1, u0, var - 1, &cover0);
    Sop s1 = isop_rec(l1 & ~u0, u1, var - 1, &cover1);

    // Remaining minterms to cover, independent of x_var.
    const TruthTable l_rest = (l0 & ~cover0) | (l1 & ~cover1);
    TruthTable cover_rest;
    Sop s_rest = isop_rec(l_rest, u0 & u1, var - 1, &cover_rest);

    const TruthTable xv = TruthTable::variable(n, var);
    *cover = (~xv & cover0) | (xv & cover1) | cover_rest;

    Sop result(n);
    for (const auto& c : s0.cubes()) result.add_cube(c.with_literal(var, false));
    for (const auto& c : s1.cubes()) result.add_cube(c.with_literal(var, true));
    for (const auto& c : s_rest.cubes()) result.add_cube(c);
    return result;
}

}  // namespace

Sop isop(const TruthTable& lower, const TruthTable& upper) {
    LLS_REQUIRE(lower.num_vars() == upper.num_vars());
    LLS_REQUIRE(lower.implies(upper));
    TruthTable cover;
    Sop s = isop_rec(lower, upper, lower.num_vars() - 1, &cover);
    LLS_ENSURE(lower.implies(cover) && cover.implies(upper));
    return s;
}

std::vector<Cube> prime_implicants(const TruthTable& f, const TruthTable& dc) {
    LLS_REQUIRE(f.num_vars() == dc.num_vars());
    LLS_REQUIRE(f.num_vars() <= 12 && "prime generation is exponential; cap the fan-in");
    const int n = f.num_vars();
    const TruthTable care_on = f | dc;

    // Quine-McCluskey: start from all care minterm cubes, repeatedly merge
    // pairs that differ in exactly one variable's polarity; implicants that
    // never merge are prime. This enumerates *all* primes, which exact
    // covering requires (a greedy per-minterm expansion misses some).
    std::set<std::pair<std::uint32_t, std::uint32_t>> current;
    for (std::uint64_t m = 0; m < (std::uint64_t{1} << n); ++m)
        if (care_on.get_bit(m)) {
            const Cube c = Cube::minterm(static_cast<std::uint32_t>(m), n);
            current.insert({c.pos, c.neg});
        }

    std::set<std::pair<std::uint32_t, std::uint32_t>> primes_set;
    while (!current.empty()) {
        std::vector<Cube> cubes;
        cubes.reserve(current.size());
        for (const auto& [pos, neg] : current) cubes.emplace_back(pos, neg);
        std::vector<char> merged(cubes.size(), 0);
        std::set<std::pair<std::uint32_t, std::uint32_t>> next;
        for (std::size_t i = 0; i < cubes.size(); ++i) {
            for (std::size_t j = i + 1; j < cubes.size(); ++j) {
                // Mergeable: same variable support, identical literals
                // except exactly one variable with opposite polarity.
                const std::uint32_t support_i = cubes[i].pos | cubes[i].neg;
                const std::uint32_t support_j = cubes[j].pos | cubes[j].neg;
                if (support_i != support_j) continue;
                const std::uint32_t diff = cubes[i].pos ^ cubes[j].pos;
                if (diff == 0 || (diff & (diff - 1)) != 0) continue;
                if ((cubes[i].neg ^ cubes[j].neg) != diff) continue;
                merged[i] = merged[j] = 1;
                next.insert({cubes[i].pos & ~diff, cubes[i].neg & ~diff});
            }
        }
        for (std::size_t i = 0; i < cubes.size(); ++i)
            if (!merged[i]) primes_set.insert({cubes[i].pos, cubes[i].neg});
        current = std::move(next);
    }

    // Keep only primes that cover at least one true on-set minterm.
    std::vector<Cube> primes;
    for (const auto& [pos, neg] : primes_set) {
        const Cube c(pos, neg);
        bool useful = false;
        for (std::uint64_t m = 0; m < (std::uint64_t{1} << n) && !useful; ++m)
            if (f.get_bit(m) && c.contains_minterm(static_cast<std::uint32_t>(m))) useful = true;
        if (useful) primes.push_back(c);
    }
    return primes;
}

Sop minimum_sop(const TruthTable& f, const TruthTable& dc) {
    const int n = f.num_vars();
    if (f.is_const0()) return Sop(n);
    if ((f | dc).is_const1() && !f.is_const0()) {
        // Tautology is allowed; if the care on-set fills everything outside
        // dc the single universal cube is the minimum cover.
        Sop s(n);
        s.add_cube(Cube::tautology());
        return s;
    }

    // Exact Quine-McCluskey covering for the small functions the synthesis
    // algorithms actually manipulate (it is what the paper's "minimum SOP"
    // means); the branch-and-bound declines on a budget and we fall back to
    // the heuristic below.
    if (n <= 6) {
        if (auto exact = exact_minimum_sop(f, dc, /*budget=*/4000)) return std::move(*exact);
    }

    // ISOP seeded cover, then greedy irredundant pass. For larger functions
    // (<= ~12 inputs) this is close to minimal and orders of magnitude
    // cheaper than exact covering.
    Sop cover = isop(f & ~dc, f | dc);
    cover.remove_contained_cubes();

    // Greedy removal of redundant cubes (those whose on-set minterms are all
    // covered by the rest).
    const TruthTable on = f & ~dc;
    bool removed = true;
    while (removed) {
        removed = false;
        for (std::size_t i = 0; i < cover.num_cubes(); ++i) {
            Sop rest(n);
            for (std::size_t j = 0; j < cover.num_cubes(); ++j)
                if (j != i) rest.add_cube(cover.cubes()[j]);
            if (on.implies(rest.to_truth_table())) {
                cover = std::move(rest);
                removed = true;
                break;
            }
        }
    }
    return cover;
}

}  // namespace lls
