#include "sop/factor.hpp"

#include <algorithm>
#include <array>

namespace lls {

int FactorExpr::num_literals() const {
    if (kind == Kind::Literal) return 1;
    int n = 0;
    for (const auto& c : children) n += c.num_literals();
    return n;
}

std::string FactorExpr::to_string() const {
    switch (kind) {
        case Kind::Const0:
            return "0";
        case Kind::Const1:
            return "1";
        case Kind::Literal:
            return (polarity ? "" : "!") + std::string("x") + std::to_string(var);
        case Kind::And: {
            std::string s;
            for (std::size_t i = 0; i < children.size(); ++i) {
                if (i) s += "*";
                const bool paren = children[i].kind == Kind::Or;
                s += paren ? "(" + children[i].to_string() + ")" : children[i].to_string();
            }
            return s;
        }
        case Kind::Or: {
            std::string s;
            for (std::size_t i = 0; i < children.size(); ++i) {
                if (i) s += " + ";
                s += children[i].to_string();
            }
            return s;
        }
    }
    return "?";
}

namespace {

// Picks the literal occurring in the largest number of cubes (>= 2), or
// returns false if every literal occurs at most once.
bool best_literal(const std::vector<Cube>& cubes, int num_vars, int* var, bool* polarity) {
    int best_count = 1;
    for (int v = 0; v < num_vars; ++v) {
        for (int pol = 0; pol < 2; ++pol) {
            int count = 0;
            for (const auto& c : cubes)
                if (c.has_literal(v) && c.literal_polarity(v) == (pol != 0)) ++count;
            if (count > best_count) {
                best_count = count;
                *var = v;
                *polarity = pol != 0;
            }
        }
    }
    return best_count > 1;
}

FactorExpr cube_to_expr(const Cube& cube, int num_vars) {
    std::vector<FactorExpr> lits;
    for (int v = 0; v < num_vars; ++v)
        if (cube.has_literal(v)) lits.push_back(FactorExpr::literal(v, cube.literal_polarity(v)));
    if (lits.empty()) return FactorExpr::constant(true);
    if (lits.size() == 1) return lits[0];
    FactorExpr e;
    e.kind = FactorExpr::Kind::And;
    e.children = std::move(lits);
    return e;
}

FactorExpr factor_cubes(const std::vector<Cube>& cubes, int num_vars) {
    if (cubes.empty()) return FactorExpr::constant(false);
    if (cubes.size() == 1) return cube_to_expr(cubes[0], num_vars);

    int var = -1;
    bool polarity = true;
    if (!best_literal(cubes, num_vars, &var, &polarity)) {
        FactorExpr e;
        e.kind = FactorExpr::Kind::Or;
        for (const auto& c : cubes) e.children.push_back(cube_to_expr(c, num_vars));
        return e;
    }

    std::vector<Cube> quotient, remainder;
    for (const auto& c : cubes) {
        if (c.has_literal(var) && c.literal_polarity(var) == polarity)
            quotient.push_back(c.without_literal(var));
        else
            remainder.push_back(c);
    }

    FactorExpr product;
    product.kind = FactorExpr::Kind::And;
    product.children.push_back(FactorExpr::literal(var, polarity));
    FactorExpr q = factor_cubes(quotient, num_vars);
    if (q.kind != FactorExpr::Kind::Const1) product.children.push_back(std::move(q));
    if (product.children.size() == 1) product = std::move(product.children[0]);

    if (remainder.empty()) return product;

    FactorExpr sum;
    sum.kind = FactorExpr::Kind::Or;
    sum.children.push_back(std::move(product));
    FactorExpr r = factor_cubes(remainder, num_vars);
    if (r.kind == FactorExpr::Kind::Or)
        for (auto& c : r.children) sum.children.push_back(std::move(c));
    else
        sum.children.push_back(std::move(r));
    return sum;
}

}  // namespace

FactorExpr factor(const Sop& sop) {
    // A tautology cube anywhere makes the whole SOP constant 1.
    for (const auto& c : sop.cubes())
        if (c.num_literals() == 0) return FactorExpr::constant(true);
    return factor_cubes(sop.cubes(), sop.num_vars());
}

bool evaluate(const FactorExpr& expr, std::uint32_t minterm) {
    switch (expr.kind) {
        case FactorExpr::Kind::Const0:
            return false;
        case FactorExpr::Kind::Const1:
            return true;
        case FactorExpr::Kind::Literal:
            return (((minterm >> expr.var) & 1) != 0) == expr.polarity;
        case FactorExpr::Kind::And:
            return std::all_of(expr.children.begin(), expr.children.end(),
                               [&](const FactorExpr& c) { return evaluate(c, minterm); });
        case FactorExpr::Kind::Or:
            return std::any_of(expr.children.begin(), expr.children.end(),
                               [&](const FactorExpr& c) { return evaluate(c, minterm); });
    }
    return false;
}

}  // namespace lls
