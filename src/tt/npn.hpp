#pragma once

#include <vector>

#include "tt/truth_table.hpp"

namespace lls {

/// Result of NPN canonization: `canonical` is the representative of the
/// NPN equivalence class of the input function, and the transform fields
/// record how to map the input onto it:
///   canonical(x) = output_neg XOR f(y)   where  y[perm[i]] = x[i] XOR input_neg bit i.
struct NpnResult {
    TruthTable canonical;
    std::vector<int> perm;      ///< canonical var i reads input var perm[i]
    unsigned input_negation;    ///< bit i set: input var i is complemented
    bool output_negation;
};

/// Exact NPN canonization by exhaustive enumeration. Practical for up to
/// 5 variables (5! * 2^5 * 2 = 7680 transforms); the technology mapper only
/// matches cuts of up to 4 inputs.
NpnResult npn_canonize(const TruthTable& tt);

/// Applies an NPN transform (permutation + input/output negation) to a
/// truth table; used to instantiate a library cell match from its canonical
/// form.
TruthTable npn_apply(const TruthTable& tt, const std::vector<int>& perm, unsigned input_negation,
                     bool output_negation);

}  // namespace lls
