#include "tt/truth_table.hpp"

#include <algorithm>

#include "common/bitops.hpp"

namespace lls {

namespace {

// Masks for sub-word variable manipulation: kVarMask[v] has bit b set iff
// bit v of b is 1, i.e. the truth table of variable v within one word.
constexpr std::uint64_t kVarMask[6] = {
    0xaaaaaaaaaaaaaaaaULL, 0xccccccccccccccccULL, 0xf0f0f0f0f0f0f0f0ULL,
    0xff00ff00ff00ff00ULL, 0xffff0000ffff0000ULL, 0xffffffff00000000ULL,
};

int hex_digit(char c) {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    LLS_REQUIRE(false && "invalid hex digit");
    return 0;
}

}  // namespace

TruthTable TruthTable::from_hex(int num_vars, const std::string& hex) {
    TruthTable tt(num_vars);
    const std::size_t digits =
        std::max<std::size_t>(1, (std::size_t{1} << num_vars) / 4);
    LLS_REQUIRE(hex.size() == digits);
    // hex[0] is the most significant nibble.
    for (std::size_t i = 0; i < digits; ++i) {
        const std::uint64_t nibble = static_cast<std::uint64_t>(hex_digit(hex[digits - 1 - i]));
        tt.words_[i / 16] |= nibble << (4 * (i % 16));
    }
    tt.mask_tail();
    return tt;
}

bool TruthTable::is_const0() const {
    return std::all_of(words_.begin(), words_.end(), [](std::uint64_t w) { return w == 0; });
}

bool TruthTable::is_const1() const { return *this == constant(num_vars_, true); }

std::uint64_t TruthTable::count_ones() const {
    std::uint64_t n = 0;
    for (auto w : words_) n += static_cast<std::uint64_t>(popcount64(w));
    return n;
}

bool TruthTable::has_var(int var) const {
    LLS_REQUIRE(var >= 0 && var < std::max(num_vars_, 1));
    if (var >= num_vars_) return false;
    if (var < 6) {
        const int shift = 1 << var;
        for (auto w : words_)
            if (((w >> shift) ^ w) & ~kVarMask[var]) return true;
        return false;
    }
    const std::size_t stride = std::size_t{1} << (var - 6);
    for (std::size_t base = 0; base < words_.size(); base += 2 * stride)
        for (std::size_t i = 0; i < stride; ++i)
            if (words_[base + i] != words_[base + stride + i]) return true;
    return false;
}

TruthTable TruthTable::operator~() const {
    TruthTable r(*this);
    for (auto& w : r.words_) w = ~w;
    r.mask_tail();
    return r;
}

TruthTable TruthTable::operator&(const TruthTable& other) const {
    check_compatible(other);
    TruthTable r(*this);
    for (std::size_t i = 0; i < words_.size(); ++i) r.words_[i] &= other.words_[i];
    return r;
}

TruthTable TruthTable::operator|(const TruthTable& other) const {
    check_compatible(other);
    TruthTable r(*this);
    for (std::size_t i = 0; i < words_.size(); ++i) r.words_[i] |= other.words_[i];
    return r;
}

TruthTable TruthTable::operator^(const TruthTable& other) const {
    check_compatible(other);
    TruthTable r(*this);
    for (std::size_t i = 0; i < words_.size(); ++i) r.words_[i] ^= other.words_[i];
    return r;
}

bool TruthTable::implies(const TruthTable& other) const {
    check_compatible(other);
    for (std::size_t i = 0; i < words_.size(); ++i)
        if (words_[i] & ~other.words_[i]) return false;
    return true;
}

TruthTable TruthTable::cofactor(int var, bool polarity) const {
    LLS_REQUIRE(var >= 0 && var < num_vars_);
    TruthTable r(*this);
    if (var < 6) {
        const int shift = 1 << var;
        for (auto& w : r.words_) {
            if (polarity) {
                const std::uint64_t hi = w & kVarMask[var];
                w = hi | (hi >> shift);
            } else {
                const std::uint64_t lo = w & ~kVarMask[var];
                w = lo | (lo << shift);
            }
        }
    } else {
        const std::size_t stride = std::size_t{1} << (var - 6);
        for (std::size_t base = 0; base < words_.size(); base += 2 * stride)
            for (std::size_t i = 0; i < stride; ++i) {
                const std::uint64_t v =
                    polarity ? r.words_[base + stride + i] : r.words_[base + i];
                r.words_[base + i] = v;
                r.words_[base + stride + i] = v;
            }
    }
    return r;
}

TruthTable TruthTable::swap_vars(int a, int b) const {
    LLS_REQUIRE(a >= 0 && a < num_vars_ && b >= 0 && b < num_vars_);
    if (a == b) return *this;
    std::vector<int> perm(num_vars_);
    for (int i = 0; i < num_vars_; ++i) perm[i] = i;
    std::swap(perm[a], perm[b]);
    return permute(perm);
}

TruthTable TruthTable::permute(const std::vector<int>& perm) const {
    LLS_REQUIRE(static_cast<int>(perm.size()) == num_vars_);
    TruthTable r(num_vars_);
    // General (slow-path) permutation by minterm remapping; local functions
    // are small so this is never a bottleneck.
    const std::uint64_t n = num_minterms();
    for (std::uint64_t m = 0; m < n; ++m) {
        if (!get_bit(m)) continue;
        // Minterm m assigns old variable perm[i] the bit that the new table
        // reads as variable i; build the new index from the old assignment.
        std::uint64_t nm = 0;
        for (int i = 0; i < num_vars_; ++i)
            if ((m >> perm[i]) & 1) nm |= std::uint64_t{1} << i;
        r.set_bit(nm, true);
    }
    return r;
}

TruthTable TruthTable::extend(int new_num_vars) const {
    LLS_REQUIRE(new_num_vars >= num_vars_ && new_num_vars <= kMaxVars);
    if (new_num_vars == num_vars_) return *this;
    TruthTable r(new_num_vars);
    if (num_vars_ < 6) {
        // Replicate the low 2^num_vars_ bits across the first word, then all
        // words.
        std::uint64_t w = words_[0];
        for (int width = 1 << num_vars_; width < 64; width *= 2) w |= w << width;
        for (auto& rw : r.words_) rw = w;
    } else {
        for (std::size_t i = 0; i < r.words_.size(); ++i) r.words_[i] = words_[i % words_.size()];
    }
    r.mask_tail();
    return r;
}

TruthTable TruthTable::shrink(int new_num_vars) const {
    LLS_REQUIRE(new_num_vars >= 0 && new_num_vars <= num_vars_);
    for (int v = new_num_vars; v < num_vars_; ++v)
        LLS_REQUIRE(!has_var(v) && "cannot shrink away a support variable");
    TruthTable r(new_num_vars);
    for (std::size_t i = 0; i < r.words_.size(); ++i) r.words_[i] = words_[i];
    r.mask_tail();
    return r;
}

std::string TruthTable::to_hex() const {
    const std::size_t digits =
        std::max<std::size_t>(1, (std::size_t{1} << num_vars_) / 4);
    std::string s(digits, '0');
    static const char* kHex = "0123456789abcdef";
    for (std::size_t i = 0; i < digits; ++i) {
        const int nibble = static_cast<int>((words_[i / 16] >> (4 * (i % 16))) & 0xf);
        s[digits - 1 - i] = kHex[nibble];
    }
    return s;
}

std::string TruthTable::to_binary() const {
    const std::uint64_t n = num_minterms();
    std::string s(n, '0');
    for (std::uint64_t m = 0; m < n; ++m)
        if (get_bit(m)) s[n - 1 - m] = '1';
    return s;
}

std::uint64_t TruthTable::hash() const {
    std::uint64_t h = 0xcbf29ce484222325ULL ^ static_cast<std::uint64_t>(num_vars_);
    for (auto w : words_) {
        h ^= w;
        h *= 0x100000001b3ULL;
        h ^= h >> 29;
    }
    return h;
}

}  // namespace lls
