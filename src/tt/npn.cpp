#include "tt/npn.hpp"

#include <algorithm>

namespace lls {

TruthTable npn_apply(const TruthTable& tt, const std::vector<int>& perm, unsigned input_negation,
                     bool output_negation) {
    TruthTable r = tt;
    for (int v = 0; v < tt.num_vars(); ++v)
        if ((input_negation >> v) & 1) {
            // Complementing input v swaps its cofactors.
            const TruthTable c0 = r.cofactor(v, false);
            const TruthTable c1 = r.cofactor(v, true);
            const TruthTable xv = TruthTable::variable(tt.num_vars(), v);
            r = (xv & c0) | (~xv & c1);
        }
    r = r.permute(perm);
    if (output_negation) r = ~r;
    return r;
}

NpnResult npn_canonize(const TruthTable& tt) {
    const int n = tt.num_vars();
    LLS_REQUIRE(n <= 5 && "exact NPN canonization is limited to 5 variables");

    std::vector<int> perm(n);
    for (int i = 0; i < n; ++i) perm[i] = i;

    NpnResult best;
    bool have_best = false;

    std::vector<int> p = perm;
    do {
        for (unsigned neg = 0; neg < (1u << n); ++neg) {
            for (int out_neg = 0; out_neg < 2; ++out_neg) {
                TruthTable cand = npn_apply(tt, p, neg, out_neg != 0);
                if (!have_best || cand.to_hex() < best.canonical.to_hex()) {
                    best = NpnResult{std::move(cand), p, neg, out_neg != 0};
                    have_best = true;
                }
            }
        }
    } while (std::next_permutation(p.begin(), p.end()));

    return best;
}

}  // namespace lls
