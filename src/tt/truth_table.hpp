#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/check.hpp"

namespace lls {

/// Bit-packed truth table over `num_vars` Boolean variables.
///
/// Bit `m` holds f(x) for the minterm whose binary encoding is `m`
/// (variable 0 is the least significant bit of the minterm index).
/// Supports up to 20 variables (1 Mi bits = 16 Ki words); the synthesis
/// algorithms only ever build local functions of at most ~12 variables.
class TruthTable {
public:
    static constexpr int kMaxVars = 20;

    TruthTable() : num_vars_(0), words_(1, 0) {}

    explicit TruthTable(int num_vars) : num_vars_(num_vars) {
        LLS_REQUIRE(num_vars >= 0 && num_vars <= kMaxVars);
        words_.assign(word_count(num_vars), 0);
    }

    /// Truth table of constant `value` over `num_vars` variables.
    static TruthTable constant(int num_vars, bool value) {
        TruthTable tt(num_vars);
        if (value) {
            for (auto& w : tt.words_) w = ~0ULL;
            tt.mask_tail();
        }
        return tt;
    }

    /// Truth table of the projection x_var over `num_vars` variables.
    static TruthTable variable(int num_vars, int var) {
        LLS_REQUIRE(var >= 0 && var < num_vars);
        TruthTable tt(num_vars);
        if (var < 6) {
            // Periodic pattern within one word.
            std::uint64_t pattern = 0;
            const int period = 1 << (var + 1);
            for (int b = 0; b < 64; ++b)
                if (b % period >= (1 << var)) pattern |= 1ULL << b;
            for (auto& w : tt.words_) w = pattern;
        } else {
            const std::size_t stride = std::size_t{1} << (var - 6);
            for (std::size_t i = 0; i < tt.words_.size(); ++i)
                if ((i / stride) & 1) tt.words_[i] = ~0ULL;
        }
        tt.mask_tail();
        return tt;
    }

    /// Parses a hex string (most significant minterms first, as printed by
    /// to_hex). The string must have exactly the right number of digits.
    static TruthTable from_hex(int num_vars, const std::string& hex);

    int num_vars() const { return num_vars_; }
    std::uint64_t num_minterms() const { return std::uint64_t{1} << num_vars_; }
    std::size_t word_count() const { return words_.size(); }
    const std::vector<std::uint64_t>& words() const { return words_; }

    bool get_bit(std::uint64_t minterm) const {
        LLS_DCHECK(minterm < num_minterms());
        return (words_[minterm >> 6] >> (minterm & 63)) & 1;
    }

    void set_bit(std::uint64_t minterm, bool value) {
        LLS_DCHECK(minterm < num_minterms());
        if (value)
            words_[minterm >> 6] |= 1ULL << (minterm & 63);
        else
            words_[minterm >> 6] &= ~(1ULL << (minterm & 63));
    }

    bool is_const0() const;
    bool is_const1() const;
    std::uint64_t count_ones() const;

    /// True if the function depends on variable `var`.
    bool has_var(int var) const;

    TruthTable operator~() const;
    TruthTable operator&(const TruthTable& other) const;
    TruthTable operator|(const TruthTable& other) const;
    TruthTable operator^(const TruthTable& other) const;
    bool operator==(const TruthTable& other) const = default;

    TruthTable& operator&=(const TruthTable& o) { return *this = *this & o; }
    TruthTable& operator|=(const TruthTable& o) { return *this = *this | o; }
    TruthTable& operator^=(const TruthTable& o) { return *this = *this ^ o; }

    /// True if this function implies `other` (this <= other pointwise).
    bool implies(const TruthTable& other) const;

    /// Positive/negative Shannon cofactor with respect to `var`; the result
    /// keeps the same variable count (the cofactored variable becomes
    /// vacuous).
    TruthTable cofactor(int var, bool polarity) const;

    /// Existential quantification: cofactor0 | cofactor1.
    TruthTable smooth(int var) const { return cofactor(var, false) | cofactor(var, true); }

    /// Swaps two variables.
    TruthTable swap_vars(int a, int b) const;

    /// Reorders variables: new variable i is old variable perm[i].
    TruthTable permute(const std::vector<int>& perm) const;

    /// Extends to `new_num_vars` variables (added variables are vacuous).
    TruthTable extend(int new_num_vars) const;

    /// Removes vacuous trailing variables down to `new_num_vars`
    /// (all removed variables must be vacuous).
    TruthTable shrink(int new_num_vars) const;

    /// Hex dump, most significant minterm first.
    std::string to_hex() const;

    /// Binary dump, minterm 2^n-1 first (matches common textbook layout).
    std::string to_binary() const;

    std::uint64_t hash() const;

private:
    static std::size_t word_count(int num_vars) {
        return num_vars <= 6 ? 1 : (std::size_t{1} << (num_vars - 6));
    }

    void mask_tail() {
        if (num_vars_ < 6) words_[0] &= (1ULL << (1 << num_vars_)) - 1;
    }

    void check_compatible(const TruthTable& other) const {
        LLS_REQUIRE(num_vars_ == other.num_vars_);
    }

    int num_vars_;
    std::vector<std::uint64_t> words_;
};

}  // namespace lls
