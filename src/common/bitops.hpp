#pragma once

#include <bit>
#include <cstdint>

namespace lls {

/// Number of 64-bit words needed to hold `bits` bits.
constexpr std::size_t words_for_bits(std::size_t bits) { return (bits + 63) / 64; }

/// Mask selecting the low `bits % 64` bits of the last word (all ones when
/// `bits` is a multiple of 64 and nonzero).
constexpr std::uint64_t tail_mask(std::size_t bits) {
    const std::size_t rem = bits % 64;
    return rem == 0 ? ~0ULL : ((1ULL << rem) - 1);
}

inline int popcount64(std::uint64_t w) { return std::popcount(w); }

/// ceil(log2(n)) for n >= 1; 0 for n in {0, 1}.
constexpr int ceil_log2(std::uint64_t n) {
    if (n <= 1) return 0;
    return 64 - std::countl_zero(n - 1);
}

}  // namespace lls
