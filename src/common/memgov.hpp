#pragma once

// Two-tier byte-level memory governance, mirroring the engine's split
// between deterministic budgets and nondeterministic wall rails
// (common/budget.hpp vs. time_budget_seconds):
//
// Tier 1 — MemoryQuota: a *deterministic* per-cone byte quota
// (`lls_opt --cone-mem`). Stages charge bytes at fixed program points with
// allocation-count-derived costs (literal counts, BDD node counts,
// signature word counts — never malloc observations), so the running total
// is a pure function of (cone, params). Exceeding the quota throws
// LlsError{ResourceExhausted} at stage `kMemgovStage`, which the engine's
// retry ladder contains by degrading the cone to its original structure —
// a deterministic fault that memoizes like any other. Like WorkCost, a
// MemoryQuota is deliberately NOT thread-safe: it is charged at serial
// points, or through task-local quotas merged in fixed task order after a
// parallel join (lookahead/decompose.cpp, phase B).
//
// Tier 2 — MemoryGovernor: a *process-wide* high-water rail
// (`lls_opt --mem-budget`). Solver arenas and shared BDD managers push
// counted byte deltas into one atomic accountant; the memo caches and
// warm-start buffers are polled through registered gauges. Crossing the
// rail first triggers cache shedding (registered shed hooks halve the memo
// caches; BDD managers observe the relief epoch and shrink their ITE
// caches), then admission control in batch mode (new items block at the
// gate until in-flight ones finish and release memory). The rail is
// wall-state-dependent — *when* it fires depends on scheduling — but it
// only ever evicts pure memo entries and delays dispatch, so committed
// results stay byte-identical; its event counts are reported as
// nondeterministic observability, like `time_budget_seconds`.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace lls {

/// Stage name of every Tier-1 quota exhaustion. The engine's retry ladder
/// recognizes it and ends the ladder immediately: escalated rungs only
/// *grow* the footprint, so retrying under the same quota deterministically
/// re-fails — the cone degrades at the first exhaustion, and fuzzing can
/// assert a quota-degraded cone is never reported as recovered.
inline constexpr const char* kMemgovStage = "memgov";

/// Allocation-count-derived byte costs of the governed structures. The
/// constants price one *counted unit* (a stored literal, a BDD node, a
/// signature word) including its amortized container overhead — the point
/// is a schedule-invariant charge stream, not malloc-exact totals.
namespace memcost {
/// One stored SAT literal: 4 B literal + watcher pair + clause header,
/// amortized across typical clause lengths.
inline constexpr std::uint64_t kSatLiteralBytes = 48;
/// One BDD node: 8 B packed word + unique-table entry.
inline constexpr std::uint64_t kBddNodeBytes = 32;
/// One 64-bit simulation-signature word.
inline constexpr std::uint64_t kSignatureWordBytes = 8;
/// One AIG node (fanins + level + hash bucket share).
inline constexpr std::uint64_t kAigNodeBytes = 24;
/// One technology-independent network node (fanins, truth table, fanouts).
inline constexpr std::uint64_t kNetworkNodeBytes = 96;
}  // namespace memcost

/// Tier 1: deterministic byte quota of one cone-evaluation rung.
class MemoryQuota {
public:
    /// `limit_bytes` = 0 disables the quota (charges still accumulate).
    explicit MemoryQuota(std::uint64_t limit_bytes = 0) : limit_(limit_bytes) {}

    /// Adds `bytes` to the running total; throws LlsError{ResourceExhausted}
    /// at stage `kMemgovStage` when a nonzero limit is exceeded. The charge
    /// is recorded before the throw, so `charged()` stays monotonic.
    void charge(std::uint64_t bytes) {
        charged_ += bytes;
        if (limit_ != 0 && charged_ > limit_)
            throw LlsError(ErrorKind::ResourceExhausted,
                           "cone memory quota exceeded (" + std::to_string(charged_) + " of " +
                               std::to_string(limit_) + " bytes)",
                           kMemgovStage);
    }

    std::uint64_t charged() const { return charged_; }
    std::uint64_t limit() const { return limit_; }

    /// Headroom below the limit (UINT64_MAX when unlimited). Snapshotting
    /// this at a serial point is how parallel intra-cone tasks get a
    /// schedule-invariant per-task bound.
    std::uint64_t remaining() const {
        if (limit_ == 0) return ~std::uint64_t{0};
        return charged_ >= limit_ ? 0 : limit_ - charged_;
    }

private:
    std::uint64_t limit_ = 0;
    std::uint64_t charged_ = 0;
};

/// Tier 2: process-wide byte accountant with a high-water relief rail.
///
/// Thread-safe for charging and admission once configured; gauges and shed
/// hooks must be registered during setup, before concurrent use.
class MemoryGovernor {
public:
    /// `budget_bytes` = 0 keeps the accountant running (metrics) with the
    /// relief rail disabled.
    explicit MemoryGovernor(std::uint64_t budget_bytes = 0);

    MemoryGovernor(const MemoryGovernor&) = delete;
    MemoryGovernor& operator=(const MemoryGovernor&) = delete;

    std::uint64_t budget() const { return budget_; }

    /// Counted-byte delta from a component (solver arena growth, BDD arena
    /// block, warm-start flush buffer). Negative deltas release. Positive
    /// deltas may trigger relief when the rail is armed.
    void charge(std::int64_t delta);

    /// Registers a polled byte source (memo caches, warm-start sets).
    void add_gauge(std::function<std::uint64_t()> gauge);

    /// Registers a relief action (e.g. shed half of a memo cache). Hooks
    /// run outside any charging lock, one relief episode at a time.
    void add_shed_hook(std::function<void()> hook);

    /// Live counted bytes (no gauge poll).
    std::uint64_t counted_bytes() const {
        return static_cast<std::uint64_t>(
            std::max<std::int64_t>(0, counted_.load(std::memory_order_relaxed)));
    }

    /// Counted bytes + a fresh poll of every gauge.
    std::uint64_t current_bytes();

    /// Monotonic sum of positive charges (the `engine.mem.charged_bytes`
    /// feed).
    std::uint64_t charged_total() const {
        return charged_total_.load(std::memory_order_relaxed);
    }

    std::uint64_t shed_events() const { return shed_events_.load(std::memory_order_relaxed); }
    std::uint64_t admission_holds() const {
        return admission_holds_.load(std::memory_order_relaxed);
    }

    /// Bumped on every relief episode. Components that cannot register a
    /// shed hook safely (per-run BDD managers whose lifetime the governor
    /// does not control) poll this and shrink themselves when it moves.
    std::uint64_t relief_epoch() const { return relief_epoch_.load(std::memory_order_acquire); }

    /// True while the post-shedding high-water hold is in effect (admission
    /// control active).
    bool admission_held() const { return hold_.load(std::memory_order_relaxed); }

    /// Batch admission gate: blocks while the rail is held *and* at least
    /// one item is in flight (so progress is always possible — with nothing
    /// in flight the item is admitted regardless, because only finishing
    /// work can release memory). Pairs with admission_release().
    void admission_acquire();
    void admission_release();

private:
    /// Cheap screen + one-reliever slow path; called from charge().
    void maybe_relieve();
    std::uint64_t poll_gauges_locked();

    const std::uint64_t budget_;
    std::atomic<std::int64_t> counted_{0};
    std::atomic<std::uint64_t> charged_total_{0};
    std::atomic<std::uint64_t> gauge_cache_{0};
    std::atomic<std::uint64_t> since_poll_{0};

    std::mutex config_mutex_;  // guards registration during setup
    std::vector<std::function<std::uint64_t()>> gauges_;
    std::vector<std::function<void()>> shed_hooks_;

    std::mutex relief_mutex_;  // one relief episode at a time
    std::uint64_t last_relief_bytes_ = 0;
    std::atomic<std::uint64_t> relief_epoch_{0};
    std::atomic<bool> hold_{false};

    std::mutex gate_mutex_;
    std::condition_variable gate_cv_;
    int inflight_ = 0;

    std::atomic<std::uint64_t> shed_events_{0};
    std::atomic<std::uint64_t> admission_holds_{0};
};

}  // namespace lls
