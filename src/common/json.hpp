#pragma once

// Minimal JSON string escaping, shared by everything that emits hand-built
// JSON (metrics, benches). Kept header-only in common/ so low layers can
// use it without new link dependencies.

#include <cstdio>
#include <string>
#include <string_view>

namespace lls {

/// Escapes `text` for embedding inside a JSON string literal: quotes,
/// backslashes, the short escapes \b \f \n \r \t, and \u00XX for every
/// other control character. Does not add the surrounding quotes.
inline std::string json_escape(std::string_view text) {
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\b': out += "\\b"; break;
            case '\f': out += "\\f"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    return out;
}

}  // namespace lls
