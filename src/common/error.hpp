#pragma once

// Structured error taxonomy for the LLS library.
//
// Every failure the library can surface is an LlsError carrying an
// ErrorKind plus optional context (pipeline stage, circuit name, cone/PO
// id). The kind is what recovery code dispatches on — the engine's
// per-cone retry ladder treats a SolverLimit differently from a
// VerificationFailed — while the context fields make a contained fault
// reportable without re-deriving where it happened. LlsError derives from
// std::runtime_error so existing catch sites keep working.

#include <cstdint>
#include <new>
#include <stdexcept>
#include <string>

#include "common/check.hpp"

namespace lls {

enum class ErrorKind {
    ParseError,          ///< malformed input (BLIF/AIGER/CLI spec grammar)
    ResourceExhausted,   ///< a guarded allocation ceiling was hit (BDD nodes, SAT literals, memory)
    SolverLimit,         ///< a solver gave up within its configured effort bound
    VerificationFailed,  ///< an equivalence check failed or could not be resolved
    InvariantViolation,  ///< an internal contract was broken
    IoError,             ///< filesystem open/read/write failure
    Cancelled,           ///< cooperative cancellation: shutdown token or cone deadline
};

inline const char* error_kind_name(ErrorKind kind) {
    switch (kind) {
        case ErrorKind::ParseError: return "parse";
        case ErrorKind::ResourceExhausted: return "resource";
        case ErrorKind::SolverLimit: return "solver";
        case ErrorKind::VerificationFailed: return "verify";
        case ErrorKind::InvariantViolation: return "invariant";
        case ErrorKind::IoError: return "io";
        case ErrorKind::Cancelled: return "cancelled";
    }
    return "unknown";
}

// Documented process exit codes (printed by `lls_opt --help`). 0 = success,
// 1 = non-equivalent result in single-circuit mode, 2 = usage error,
// 42 = simulated fatal crash (`fatal@batch:N`). Library failures map per
// ErrorKind below; kExitSignalShutdown is "terminated by signal, checkpoint
// flushed" — distinct so scripts know `--resume` will continue cleanly.
inline constexpr int kExitNotEquivalent = 1;
inline constexpr int kExitUsage = 2;
inline constexpr int kExitSignalShutdown = 30;
inline constexpr int kExitSimulatedCrash = 42;

inline int exit_code_for(ErrorKind kind) {
    switch (kind) {
        case ErrorKind::ParseError: return 10;
        case ErrorKind::ResourceExhausted: return 11;
        case ErrorKind::SolverLimit: return 12;
        case ErrorKind::VerificationFailed: return 13;
        case ErrorKind::InvariantViolation: return 14;
        case ErrorKind::IoError: return 15;
        case ErrorKind::Cancelled: return 16;
    }
    return 14;
}

class LlsError : public std::runtime_error {
public:
    LlsError(ErrorKind kind, const std::string& message, std::string stage = {},
             std::string circuit = {}, std::int64_t cone = -1)
        : std::runtime_error(format(kind, message, stage, circuit, cone)),
          kind_(kind),
          stage_(std::move(stage)),
          circuit_(std::move(circuit)),
          cone_(cone) {}

    ErrorKind kind() const { return kind_; }
    /// Pipeline stage that raised ("decompose", "spcf", "cec", "bdd", ...).
    const std::string& stage() const { return stage_; }
    /// Circuit (batch item / file) being processed, when known.
    const std::string& circuit() const { return circuit_; }
    /// Cone / primary-output index being processed, -1 when not cone-scoped.
    std::int64_t cone() const { return cone_; }

private:
    static std::string format(ErrorKind kind, const std::string& message,
                              const std::string& stage, const std::string& circuit,
                              std::int64_t cone) {
        std::string s = "[";
        s += error_kind_name(kind);
        if (!stage.empty()) s += "/" + stage;
        s += "] " + message;
        if (!circuit.empty()) s += " (circuit " + circuit + ")";
        if (cone >= 0) s += " (cone " + std::to_string(cone) + ")";
        return s;
    }

    ErrorKind kind_;
    std::string stage_;
    std::string circuit_;
    std::int64_t cone_;
};

/// Classifies an arbitrary exception into the taxonomy: LlsError keeps its
/// kind, allocation failures map to ResourceExhausted, broken contracts to
/// InvariantViolation (the conservative default for anything unknown).
inline ErrorKind error_kind_of(const std::exception& e) {
    if (const auto* lls = dynamic_cast<const LlsError*>(&e)) return lls->kind();
    if (dynamic_cast<const std::bad_alloc*>(&e)) return ErrorKind::ResourceExhausted;
    return ErrorKind::InvariantViolation;
}

}  // namespace lls
