#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace lls {

/// Fixed-size task-queue thread pool.
///
/// Tasks are submitted as callables and run on one of `size()` worker
/// threads; `submit` returns a `std::future` carrying the result (or the
/// exception the task threw). A pool of size 0 is a valid degenerate pool:
/// every task runs inline on the calling thread, which gives callers a
/// single code path for serial and concurrent execution. A task submitted
/// after shutdown has begun (the destructor is running) also runs inline,
/// so its future always becomes ready — it is never stranded in a queue
/// no worker will drain again.
///
/// `parallel_for` dispatches a half-open index range across the workers
/// with the *calling thread participating*, so a pool of size N applies
/// N+1 threads to the range. Indices are handed out through a shared
/// atomic cursor (work-stealing in the limit of chunk size 1): workers
/// that finish early keep pulling indices, so uneven per-index cost does
/// not serialize the loop. The first exception thrown by any iteration is
/// rethrown on the calling thread after the range completes; indices the
/// abort skipped are recorded in `aborted_indices()` so a partial fan-out
/// is never mistaken for a completed one.
///
/// `parallel_for` is reentrant: the body may call `parallel_for` on the
/// same pool (nested fan-out, or a worker running one batch item fanning
/// out that item's cones). The waiter never blocks while the queue holds
/// work — it *helps*, popping and running queued tasks until its own
/// helpers have finished — so nested calls cannot deadlock on workers
/// that are all waiting for helpers only they could run.
class ThreadPool {
public:
    explicit ThreadPool(std::size_t num_threads) {
        workers_.reserve(num_threads);
        for (std::size_t i = 0; i < num_threads; ++i)
            workers_.emplace_back([this] { worker_loop(); });
    }

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    ~ThreadPool() {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            stopping_ = true;
        }
        wake_.notify_all();
        for (auto& w : workers_) w.join();
    }

    std::size_t size() const { return workers_.size(); }

    /// Number of jobs to use when the caller asked for "all of the machine".
    static std::size_t hardware_jobs() {
        const unsigned n = std::thread::hardware_concurrency();
        return n == 0 ? 1 : n;
    }

    /// Schedules `fn` on a worker. The future reports the value or rethrows
    /// the exception. Runs inline when the pool has no workers or when
    /// shutdown has begun — a post-shutdown submission must still complete
    /// (callers blocked on the future would otherwise hang forever on a
    /// task nobody will ever pop).
    template <typename F>
    auto submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
        using R = std::invoke_result_t<std::decay_t<F>>;
        auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
        std::future<R> result = task->get_future();
        if (!enqueue([task] { (*task)(); })) (*task)();
        return result;
    }

    /// Runs `body(i)` for every i in [begin, end). Blocks until the whole
    /// range is done; rethrows the first exception any iteration threw.
    /// Safe to call from inside a pool task (see class comment).
    template <typename F>
    void parallel_for(std::size_t begin, std::size_t end, F&& body) {
        if (begin >= end) return;
        const std::size_t span = end - begin;

        // Shared between the caller and its helper tasks. Helpers hold the
        // control block by shared_ptr: a helper that outlives this frame is
        // impossible (the caller waits for `pending` to reach 0), but the
        // shared_ptr keeps the teardown order trivially safe anyway.
        struct Control {
            std::atomic<std::size_t> cursor;
            std::atomic<std::size_t> pending{0};    // helpers not yet finished
            std::atomic<std::size_t> completed{0};  // body calls that returned
            std::atomic<std::size_t> failures{0};   // body calls that threw
            std::atomic<bool> failed{false};
            std::exception_ptr first_error;
            std::mutex error_mutex;
        };
        auto ctrl = std::make_shared<Control>();
        ctrl->cursor.store(begin, std::memory_order_relaxed);

        auto drain = [ctrl, end, &body]() {
            for (;;) {
                const std::size_t i = ctrl->cursor.fetch_add(1, std::memory_order_relaxed);
                if (i >= end || ctrl->failed.load(std::memory_order_relaxed)) return;
                try {
                    body(i);
                    ctrl->completed.fetch_add(1, std::memory_order_relaxed);
                } catch (...) {
                    {
                        std::lock_guard<std::mutex> lock(ctrl->error_mutex);
                        if (!ctrl->first_error) ctrl->first_error = std::current_exception();
                    }
                    ctrl->failures.fetch_add(1, std::memory_order_relaxed);
                    ctrl->failed.store(true, std::memory_order_relaxed);
                }
            }
        };

        // One helper task per worker is enough: each helper drains the
        // shared cursor until the range is exhausted. `pending` is set
        // before any helper can run; the release decrement + acquire load
        // below publish each helper's writes to the waiting caller.
        const std::size_t num_helpers = workers_.empty() ? 0 : std::min(workers_.size(), span);
        ctrl->pending.store(num_helpers, std::memory_order_relaxed);
        for (std::size_t t = 0; t < num_helpers; ++t) {
            auto helper = [this, ctrl, drain] {
                drain();
                if (ctrl->pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
                    // Last helper out: the caller may be asleep in the
                    // help-while-waiting loop below. Taking the pool mutex
                    // before notifying pairs with the caller's predicate
                    // check, so the wakeup cannot be missed.
                    std::lock_guard<std::mutex> lock(mutex_);
                    wake_.notify_all();
                }
            };
            if (!enqueue(helper)) helper();
        }
        drain();

        // Help while waiting: instead of blocking on helper futures (which
        // deadlocks nested calls — every worker would wait on queued tasks
        // only a worker could run), keep popping and running queued tasks.
        // The popped task may belong to anyone: our own helpers, another
        // parallel_for's helpers, or a plain submit — all are safe to run
        // inline, and running them is exactly what guarantees global
        // progress. Only when the queue is empty does the caller sleep, and
        // then the work it waits for is already running on other threads.
        if (ctrl->pending.load(std::memory_order_acquire) != 0) {
            std::unique_lock<std::mutex> lock(mutex_);
            while (ctrl->pending.load(std::memory_order_acquire) != 0) {
                if (!queue_.empty()) {
                    std::function<void()> task = std::move(queue_.front());
                    queue_.pop_front();
                    lock.unlock();
                    run_contained(task);
                    lock.lock();
                    continue;
                }
                const auto idle_start = std::chrono::steady_clock::now();
                wake_.wait(lock, [this, &ctrl] {
                    return !queue_.empty() ||
                           ctrl->pending.load(std::memory_order_acquire) == 0;
                });
                idle_wait_nanos_.fetch_add(
                    static_cast<std::uint64_t>(
                        std::chrono::duration_cast<std::chrono::nanoseconds>(
                            std::chrono::steady_clock::now() - idle_start)
                            .count()),
                    std::memory_order_relaxed);
            }
        }

        if (ctrl->failed.load(std::memory_order_relaxed)) {
            // Everything neither completed nor thrown was silently skipped
            // by the early abort; record it so callers (and metrics) can
            // tell a partial fan-out from a finished round.
            aborted_indices_.fetch_add(
                span - ctrl->completed.load(std::memory_order_relaxed) -
                    ctrl->failures.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
        }
        if (ctrl->first_error) std::rethrow_exception(ctrl->first_error);
    }

    /// Total indices skipped by aborted (exception-cut) `parallel_for`
    /// ranges over this pool's lifetime.
    std::uint64_t aborted_indices() const {
        return aborted_indices_.load(std::memory_order_relaxed);
    }

    /// Total time threads spent asleep inside `parallel_for`'s
    /// help-while-waiting loop — waiting with an empty queue for helpers
    /// running elsewhere. The steal scheduler's idle-time metric.
    std::uint64_t idle_wait_nanos() const {
        return idle_wait_nanos_.load(std::memory_order_relaxed);
    }

private:
    /// Queues `task` and wakes a worker. Returns false — task NOT queued —
    /// when the pool has no workers or shutdown has begun; the caller must
    /// run it inline.
    bool enqueue(std::function<void()> task) {
        if (workers_.empty()) return false;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (stopping_) return false;
            queue_.push_back(std::move(task));
        }
        wake_.notify_one();
        return true;
    }

    /// Runs a queued task with the worker-loop backstop: the callable
    /// wrappers capture user exceptions themselves (packaged_task futures,
    /// parallel_for's per-body catch), so anything escaping here is wrapper
    /// failure (e.g. std::bad_alloc storing an exception) and must not take
    /// down the running thread — stranded futures deadlock their waiters.
    static void run_contained(std::function<void()>& task) {
        try {
            task();
        } catch (...) {
        }
    }

    void worker_loop() {
        for (;;) {
            std::function<void()> task;
            {
                std::unique_lock<std::mutex> lock(mutex_);
                wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
                if (queue_.empty()) return;  // stopping_ and drained
                task = std::move(queue_.front());
                queue_.pop_front();
            }
            run_contained(task);
        }
    }

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable wake_;
    bool stopping_ = false;
    std::atomic<std::uint64_t> aborted_indices_{0};
    std::atomic<std::uint64_t> idle_wait_nanos_{0};
};

}  // namespace lls
