#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace lls {

/// Fixed-size task-queue thread pool.
///
/// Tasks are submitted as callables and run on one of `size()` worker
/// threads; `submit` returns a `std::future` carrying the result (or the
/// exception the task threw). A pool of size 0 is a valid degenerate pool:
/// every task runs inline on the calling thread, which gives callers a
/// single code path for serial and concurrent execution.
///
/// `parallel_for` dispatches a half-open index range across the workers
/// with the *calling thread participating*, so a pool of size N applies
/// N+1 threads to the range. Indices are handed out through a shared
/// atomic cursor (work-stealing in the limit of chunk size 1): workers
/// that finish early keep pulling indices, so uneven per-index cost does
/// not serialize the loop. The first exception thrown by any iteration is
/// rethrown on the calling thread after the range completes.
class ThreadPool {
public:
    explicit ThreadPool(std::size_t num_threads) {
        workers_.reserve(num_threads);
        for (std::size_t i = 0; i < num_threads; ++i)
            workers_.emplace_back([this] { worker_loop(); });
    }

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    ~ThreadPool() {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            stopping_ = true;
        }
        wake_.notify_all();
        for (auto& w : workers_) w.join();
    }

    std::size_t size() const { return workers_.size(); }

    /// Number of jobs to use when the caller asked for "all of the machine".
    static std::size_t hardware_jobs() {
        const unsigned n = std::thread::hardware_concurrency();
        return n == 0 ? 1 : n;
    }

    /// Schedules `fn` on a worker (or runs it inline when the pool has no
    /// workers). The future reports the value or rethrows the exception.
    template <typename F>
    auto submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
        using R = std::invoke_result_t<std::decay_t<F>>;
        auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
        std::future<R> result = task->get_future();
        if (workers_.empty()) {
            (*task)();
            return result;
        }
        {
            std::lock_guard<std::mutex> lock(mutex_);
            queue_.emplace_back([task] { (*task)(); });
        }
        wake_.notify_one();
        return result;
    }

    /// Runs `body(i)` for every i in [begin, end). Blocks until the whole
    /// range is done; rethrows the first exception any iteration threw.
    template <typename F>
    void parallel_for(std::size_t begin, std::size_t end, F&& body) {
        if (begin >= end) return;
        auto cursor = std::make_shared<std::atomic<std::size_t>>(begin);
        auto failed = std::make_shared<std::atomic<bool>>(false);
        auto first_error = std::make_shared<std::exception_ptr>();
        auto error_mutex = std::make_shared<std::mutex>();

        auto drain = [cursor, failed, first_error, error_mutex, end, &body]() {
            for (;;) {
                const std::size_t i = cursor->fetch_add(1, std::memory_order_relaxed);
                if (i >= end || failed->load(std::memory_order_relaxed)) return;
                try {
                    body(i);
                } catch (...) {
                    std::lock_guard<std::mutex> lock(*error_mutex);
                    if (!*first_error) *first_error = std::current_exception();
                    failed->store(true, std::memory_order_relaxed);
                }
            }
        };

        // One helper task per worker is enough: each helper drains the
        // shared cursor until the range is exhausted.
        std::vector<std::future<void>> helpers;
        const std::size_t span = end - begin;
        const std::size_t num_helpers = workers_.empty() ? 0 : std::min(workers_.size(), span);
        helpers.reserve(num_helpers);
        for (std::size_t t = 0; t < num_helpers; ++t) helpers.push_back(submit(drain));
        drain();
        for (auto& h : helpers) h.get();
        if (*first_error) std::rethrow_exception(*first_error);
    }

private:
    void worker_loop() {
        for (;;) {
            std::function<void()> task;
            {
                std::unique_lock<std::mutex> lock(mutex_);
                wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
                if (queue_.empty()) return;  // stopping_ and drained
                task = std::move(queue_.front());
                queue_.pop_front();
            }
            // A throwing task must never take the worker down with it: the
            // packaged_task wrapper created by submit() captures anything
            // the user callable throws into the task's future, and this
            // backstop contains whatever could still escape the wrapper
            // itself (e.g. std::bad_alloc while storing the exception).
            // Losing a worker here would strand queued tasks forever — the
            // submitting thread deadlocks on futures nobody will fulfill.
            try {
                task();
            } catch (...) {
            }
        }
    }

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable wake_;
    bool stopping_ = false;
};

}  // namespace lls
