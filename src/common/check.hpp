#pragma once

// Lightweight contract checking for the LLS library.
//
// LLS_REQUIRE  - precondition on public API arguments (always on)
// LLS_ENSURE   - postcondition / invariant check (always on)
// LLS_DCHECK   - expensive internal consistency check (debug only)
//
// Violations throw lls::ContractViolation so tests can assert on misuse
// without bringing the whole process down (per CppCoreGuidelines I.6/E.x).

#include <stdexcept>
#include <string>

namespace lls {

class ContractViolation : public std::logic_error {
public:
    explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* kind, const char* expr, const char* file,
                                       int line) {
    throw ContractViolation(std::string(kind) + " failed: " + expr + " at " + file + ":" +
                            std::to_string(line));
}
}  // namespace detail

}  // namespace lls

#define LLS_REQUIRE(expr)                                                       \
    do {                                                                        \
        if (!(expr)) ::lls::detail::contract_fail("precondition", #expr, __FILE__, __LINE__); \
    } while (0)

#define LLS_ENSURE(expr)                                                        \
    do {                                                                        \
        if (!(expr)) ::lls::detail::contract_fail("invariant", #expr, __FILE__, __LINE__); \
    } while (0)

#ifndef NDEBUG
#define LLS_DCHECK(expr) LLS_ENSURE(expr)
#else
#define LLS_DCHECK(expr) \
    do {                 \
    } while (0)
#endif
