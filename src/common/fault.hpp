#pragma once

// Deterministic fault injection and fault reporting.
//
// A FaultPlan is parsed from the spec grammar `kind@site[:count]`
// (comma-separated for several specs):
//
//   kind  := parse | resource | solver | verify | invariant | io | cancel | oom | fatal
//   site  := decompose | spcf | sat | cec | ...   (engine sites)
//            batch                                (CLI-level fatal site)
//   count := how many retry-ladder rungs the fault poisons (default 1);
//            for `fatal@batch:N`, the number of journaled circuits after
//            which the CLI simulates a crash.
//
// Injection is deterministic by construction: a spec `kind@site:count`
// fires a synthetic LlsError of `kind` every time evaluation reaches the
// named site on ladder rungs 0..count-1. The decision depends only on
// (plan, site, rung) — never on wall clock, thread schedule, or cache
// state — so fault-injected runs stay bit-identical across --jobs values,
// and every recovery path is exercisable in tests and CI with a
// reproducible schedule. The plan fingerprint is mixed into the engine's
// params fingerprint (memo keys + per-cone RNG seeds), so memoized
// evaluations replay their injected faults consistently.
//
// FaultRecord is the report of one contained fault: what fired, where,
// which ladder rungs were retried, and whether the cone recovered. The
// engine appends records to OptimizeStats::faults at the serial commit
// point, in deterministic task order.

#include <cstdint>
#include <new>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.hpp"

namespace lls {

/// One contained fault: taxonomy kind, pipeline stage, cone scope, and the
/// retry history of the recovery ladder.
struct FaultRecord {
    ErrorKind kind = ErrorKind::InvariantViolation;
    std::string stage;                 ///< pipeline stage that faulted
    std::string detail;                ///< human-readable cause (exception text)
    int cone = -1;                     ///< PO index of the cone (filled at commit)
    std::string cone_name;             ///< PO name (filled at commit)
    std::vector<std::string> retries;  ///< ladder rungs attempted after the first fault
    bool recovered = false;            ///< a later rung completed; false = cone kept original
};

/// One parsed `kind@site[:count]` spec.
struct FaultSpec {
    ErrorKind kind = ErrorKind::ResourceExhausted;
    bool fatal = false;  ///< `fatal@...`: process-kill fault, handled by the CLI only
    /// `oom@...`: fires a raw std::bad_alloc instead of an LlsError, so the
    /// whole bad_alloc -> error_kind_of -> ResourceExhausted containment
    /// path is exercised — deterministically, like every other kind.
    bool bad_alloc = false;
    std::string site;
    int count = 1;
};

/// A parsed fault-injection plan. Empty plans (the default) inject nothing
/// and add nothing to the params fingerprint.
class FaultPlan {
public:
    FaultPlan() = default;

    /// Parses the spec grammar; throws LlsError{ParseError} on malformed
    /// input (unknown kind, empty site, non-positive count, bad syntax).
    static FaultPlan parse(const std::string& text) {
        FaultPlan plan;
        std::size_t pos = 0;
        while (pos <= text.size()) {
            std::size_t comma = text.find(',', pos);
            if (comma == std::string::npos) comma = text.size();
            const std::string item = text.substr(pos, comma - pos);
            pos = comma + 1;
            if (item.empty()) {
                if (text.empty()) break;
                throw LlsError(ErrorKind::ParseError, "empty fault spec in '" + text + "'",
                               "fault-plan");
            }
            plan.specs_.push_back(parse_spec(item));
            if (comma == text.size()) break;
        }
        return plan;
    }

    bool empty() const { return specs_.empty(); }
    const std::vector<FaultSpec>& specs() const { return specs_; }

    /// Poison count of `site` for engine-level (non-fatal) specs; 0 when
    /// the site is not in the plan.
    int count_for(std::string_view site) const {
        for (const auto& s : specs_)
            if (!s.fatal && s.site == site) return s.count;
        return 0;
    }

    ErrorKind kind_for(std::string_view site) const {
        for (const auto& s : specs_)
            if (!s.fatal && s.site == site) return s.kind;
        return ErrorKind::ResourceExhausted;
    }

    /// First non-fatal spec for `site`, or nullptr.
    const FaultSpec* spec_for(std::string_view site) const {
        for (const auto& s : specs_)
            if (!s.fatal && s.site == site) return &s;
        return nullptr;
    }

    /// Threshold of the CLI-level `fatal@site:count` spec, 0 when absent.
    int fatal_count_for(std::string_view site) const {
        for (const auto& s : specs_)
            if (s.fatal && s.site == site) return s.count;
        return 0;
    }

    /// Canonical spec string of the non-fatal (engine-relevant) specs —
    /// what the CLI forwards into LookaheadParams::fault_plan.
    std::string engine_spec() const {
        std::string out;
        for (const auto& s : specs_) {
            if (s.fatal) continue;
            if (!out.empty()) out += ',';
            out += s.bad_alloc ? "oom" : error_kind_name(s.kind);
            out += '@';
            out += s.site;
            out += ':' + std::to_string(s.count);
        }
        return out;
    }

    /// Deterministic 64-bit fingerprint over the non-fatal specs (fatal
    /// specs never reach the engine, so they must not perturb memo keys or
    /// RNG seeds — an interrupted-and-resumed run has to follow the same
    /// trajectory as an uninterrupted one).
    std::uint64_t fingerprint() const {
        std::uint64_t h = 0xcbf29ce484222325ULL;
        auto mix = [&h](std::string_view s) {
            for (const char c : s) {
                h ^= static_cast<unsigned char>(c);
                h *= 0x100000001b3ULL;
            }
            h ^= 0xff;
            h *= 0x100000001b3ULL;
        };
        for (const auto& s : specs_) {
            if (s.fatal) continue;
            // `oom` and `resource` share an ErrorKind but are different
            // injections (bad_alloc vs. LlsError), so they must not collide.
            mix(s.bad_alloc ? "oom" : error_kind_name(s.kind));
            mix(s.site);
            mix(std::to_string(s.count));
        }
        return h;
    }

private:
    static FaultSpec parse_spec(const std::string& item) {
        const std::size_t at = item.find('@');
        if (at == std::string::npos || at == 0)
            throw LlsError(ErrorKind::ParseError,
                           "fault spec '" + item + "' is not kind@site[:count]", "fault-plan");
        FaultSpec spec;
        const std::string kind = item.substr(0, at);
        if (kind == "parse") spec.kind = ErrorKind::ParseError;
        else if (kind == "resource") spec.kind = ErrorKind::ResourceExhausted;
        else if (kind == "solver") spec.kind = ErrorKind::SolverLimit;
        else if (kind == "verify") spec.kind = ErrorKind::VerificationFailed;
        else if (kind == "invariant") spec.kind = ErrorKind::InvariantViolation;
        else if (kind == "io") spec.kind = ErrorKind::IoError;
        // "cancelled" is error_kind_name(Cancelled) — accepted too so the
        // canonical engine_spec() form re-parses (the CLI round-trips plans
        // through it before they reach the engine).
        else if (kind == "cancel" || kind == "cancelled") spec.kind = ErrorKind::Cancelled;
        else if (kind == "oom") {
            spec.kind = ErrorKind::ResourceExhausted;
            spec.bad_alloc = true;
        }
        else if (kind == "fatal") spec.fatal = true;
        else
            throw LlsError(ErrorKind::ParseError, "unknown fault kind '" + kind + "'",
                           "fault-plan");

        std::string rest = item.substr(at + 1);
        const std::size_t colon = rest.find(':');
        if (colon != std::string::npos) {
            const std::string count = rest.substr(colon + 1);
            rest.resize(colon);
            std::size_t consumed = 0;
            int value = 0;
            try {
                value = std::stoi(count, &consumed);
            } catch (const std::exception&) {
                consumed = 0;
            }
            if (consumed != count.size() || value <= 0)
                throw LlsError(ErrorKind::ParseError,
                               "fault count '" + count + "' must be a positive integer",
                               "fault-plan");
            spec.count = value;
        }
        if (rest.empty())
            throw LlsError(ErrorKind::ParseError, "fault spec '" + item + "' has an empty site",
                           "fault-plan");
        spec.site = std::move(rest);
        return spec;
    }

    std::vector<FaultSpec> specs_;
};

/// Per-attempt injection hook: one FaultContext per (cone evaluation,
/// ladder rung). `check(site, stage)` throws the planned synthetic
/// LlsError when the plan poisons `site` on this rung — a pure function of
/// (plan, site, rung), which is what keeps injected runs deterministic.
class FaultContext {
public:
    FaultContext(const FaultPlan* plan, int rung) : plan_(plan), rung_(rung) {}

    /// Fires the planned fault for `site`, if any, as LlsError at `stage`
    /// — or as a raw std::bad_alloc for `oom` specs, exactly what a real
    /// allocation failure at the site would look like.
    void check(std::string_view site, std::string_view stage) const {
        if (!plan_) return;
        const FaultSpec* spec = plan_->spec_for(site);
        if (spec == nullptr || rung_ >= spec->count) return;
        if (spec->bad_alloc) throw std::bad_alloc();
        throw LlsError(spec->kind,
                       "injected fault at site '" + std::string(site) + "' (rung " +
                           std::to_string(rung_) + ")",
                       std::string(stage));
    }

    int rung() const { return rung_; }

private:
    const FaultPlan* plan_ = nullptr;
    int rung_ = 0;
};

}  // namespace lls
