#pragma once

// Cooperative cancellation: tokens, deadlines, and cheap polls.
//
// Two cancellation sources share one mechanism:
//
//   - CancelToken: a process- or batch-level "stop now" request (SIGTERM /
//     SIGINT installs one). Cross-thread, sticky, relaxed-atomic.
//   - Deadline: a per-cone wall-clock watchdog (`--cone-deadline`). Armed
//     when the cone evaluation starts; expiry is checked only every
//     kCancelPollPeriod polls so the common path never reads the clock.
//
// Hot loops call `poll_cancellation(stage)` — SAT decide loop, BDD node
// construction, decomposition / simplification / exact-synthesis inner
// loops. The poll reads one thread-local struct and one relaxed atomic;
// with no scope installed it is a couple of predictable branches. When a
// source fires, the poll throws LlsError{Cancelled}, which the engine's
// existing per-cone fault boundary contains exactly like a PR 3 fault:
// the cone degrades to its original form with a FaultRecord.
//
// The two sources are told apart *after* the throw: if the active token
// was requested, it is a shutdown (propagate, stop dispatching); otherwise
// the cone's deadline fired (contain, flag nondeterministic, never memoize
// — deadline expiry depends on wall clock, so a deadline-cancelled
// evaluation must not poison caches that byte-identity relies on).
//
// Scopes nest via RAII save/restore, which keeps them correct under the
// thread pool's help-while-waiting execution: a worker that inlines
// another cone's task installs that task's scope and restores its own on
// return.

#include <atomic>
#include <chrono>

#include "common/error.hpp"

namespace lls {

/// Sticky cross-thread cancellation request. `request()` may be called
/// from any thread — including a signal handler: it is a single relaxed
/// atomic store, which is async-signal-safe.
class CancelToken {
public:
    void request() { requested_.store(true, std::memory_order_relaxed); }
    bool requested() const { return requested_.load(std::memory_order_relaxed); }

private:
    std::atomic<bool> requested_{false};
};

/// Wall-clock deadline. Default-constructed deadlines are unarmed and
/// never expire; `after_seconds` arms one relative to now.
class Deadline {
public:
    Deadline() = default;

    static Deadline after_seconds(double seconds) {
        Deadline d;
        d.armed_ = true;
        d.expiry_ = std::chrono::steady_clock::now() +
                    std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                        std::chrono::duration<double>(seconds));
        return d;
    }

    bool armed() const { return armed_; }

    /// Reads the clock; call sites that poll frequently should go through
    /// `cancel_pending()`, which amortizes this check.
    bool expired() const { return armed_ && std::chrono::steady_clock::now() >= expiry_; }

private:
    bool armed_ = false;
    std::chrono::steady_clock::time_point expiry_{};
};

/// Clock reads happen at most once per this many polls. The first poll in
/// a fresh scope always checks (countdown starts at zero), so an
/// already-expired deadline cancels on the very first poll.
inline constexpr unsigned kCancelPollPeriod = 256;

/// Thread-local cancellation context installed by CancelScope.
struct CancelState {
    const CancelToken* token = nullptr;
    const Deadline* deadline = nullptr;
    bool deadline_fired = false;  ///< latch: expiry is checked once, then sticky
    unsigned countdown = 0;       ///< polls remaining until the next clock read
};

namespace detail {
inline CancelState& cancel_state() {
    thread_local CancelState state;
    return state;
}
}  // namespace detail

/// RAII scope: installs (token, deadline) for the current thread, restores
/// the previous state on destruction. Either pointer may be null. The
/// pointees must outlive the scope.
class CancelScope {
public:
    CancelScope(const CancelToken* token, const Deadline* deadline) {
        CancelState& s = detail::cancel_state();
        saved_ = s;
        s.token = token;
        s.deadline = deadline;
        s.deadline_fired = false;
        s.countdown = 0;
    }
    ~CancelScope() { detail::cancel_state() = saved_; }

    CancelScope(const CancelScope&) = delete;
    CancelScope& operator=(const CancelScope&) = delete;

private:
    CancelState saved_;
};

/// True when the active scope's token was requested or its deadline has
/// expired. No-throw; safe to call with no scope installed (returns
/// false). This is the cheap poll: a relaxed atomic load plus a counter
/// decrement on the common path.
inline bool cancel_pending() {
    CancelState& s = detail::cancel_state();
    if (s.token != nullptr && s.token->requested()) return true;
    if (s.deadline_fired) return true;
    if (s.deadline == nullptr || !s.deadline->armed()) return false;
    if (s.countdown > 0) {
        --s.countdown;
        return false;
    }
    s.countdown = kCancelPollPeriod - 1;
    if (s.deadline->expired()) {
        s.deadline_fired = true;
        return true;
    }
    return false;
}

/// True when the active scope's *token* (not deadline) was requested —
/// what the engine checks after catching a Cancelled error to distinguish
/// process shutdown from a fired cone watchdog.
inline bool cancel_requested_by_token() {
    const CancelState& s = detail::cancel_state();
    return s.token != nullptr && s.token->requested();
}

/// The poll hot loops call: throws LlsError{Cancelled} at `stage` when a
/// cancellation source fired, otherwise returns immediately.
inline void poll_cancellation(const char* stage) {
    if (!cancel_pending()) return;
    const CancelState& s = detail::cancel_state();
    const bool shutdown = s.token != nullptr && s.token->requested();
    throw LlsError(ErrorKind::Cancelled,
                   shutdown ? "cancellation requested" : "cone deadline expired", stage);
}

}  // namespace lls
