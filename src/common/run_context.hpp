#pragma once

// RunContext: the one plumbing path for cross-cutting run state.
//
// Before this type existed the engine threaded its shared state through
// five ad-hoc channels — `DecomposeHooks` (fault injection + exact-verify
// switches + shared BDD manager), raw `WorkCost*` parameters, a
// `FaultContext*`, a `BddManager*`, and the thread-local `CancelScope` —
// each with its own ownership and default-argument conventions. A layer
// that wanted one more piece of context forced a signature change through
// every caller, which is exactly what kept the inner loops from being
// handed a thread pool safely.
//
// A RunContext bundles all of it: the engine constructs one per cone
// evaluation (per retry rung), and decompose -> reduce -> simplify ->
// cec -> sat all take a `const RunContext&`. Every field is an unowned
// pointer that must outlive the call; every field defaults to "absent", so
// `RunContext{}` is a valid do-nothing context for tests and simple CLI
// paths.
//
// The `executor` field is what makes the third scheduling level possible:
// secondary simplification fans its independent per-cube SAT don't-care
// proofs across the (reentrant, help-while-waiting) pool, with verdicts
// committed and WorkCost charged in fixed index order after the join so
// the fan-out stays invisible to budgeted determinism and byte-identity
// (docs/ENGINE.md, "Run context & three-level scheduling").

#include <cstddef>
#include <string_view>

#include "common/budget.hpp"
#include "common/cancel.hpp"
#include "common/error.hpp"
#include "common/fault.hpp"
#include "common/memgov.hpp"

namespace lls {

class BddManager;
class Metrics;
class ThreadPool;

struct RunContext {
    /// Deterministic work sink of the current evaluation: attempts and SAT
    /// conflicts are accumulated here, always at serial points or in fixed
    /// index order after a parallel join (common/budget.hpp). May be null
    /// (work is then unmetered, as for ad-hoc CLI verification calls).
    WorkCost* cost = nullptr;

    /// Fault-injection context of the current retry rung, or null for
    /// fault-free execution. Stages call `check_fault(site, stage)` at
    /// their counted work points ("decompose", "spcf", "sat", "cec").
    const FaultContext* faults = nullptr;

    /// Process/batch-level shutdown token, or null. Together with
    /// `deadline` this mirrors what the evaluating thread's CancelScope
    /// holds — carried explicitly so work fanned out via `executor` can
    /// install the same scope on whichever worker picks it up, and so the
    /// SAT solver can poll the context directly between decisions.
    const CancelToken* cancel = nullptr;

    /// Per-cone wall-clock watchdog (unarmed-or-null = never expires).
    const Deadline* deadline = nullptr;

    /// Run-wide concurrency-safe BDD manager for exact verification, or
    /// null. When set and the cone fits its variable count, rung-2 exact
    /// verify builds in it; exhaustion of the shared pool falls back to a
    /// private manager bounded by `exact_verify_bdd_limit`, so a crowded
    /// pool can never flip a verdict the private manager would reach
    /// (docs/ENGINE.md, "Shared BDD manager").
    BddManager* shared_bdd = nullptr;

    /// Final-equivalence switch of the engine's retry ladder: SAT-based
    /// CEC when false, canonical-BDD comparison when true (rung 2).
    bool exact_verify = false;
    std::size_t exact_verify_bdd_limit = std::size_t{1} << 21;

    /// Tier-1 deterministic byte quota of this evaluation rung, or null
    /// for unmetered memory (common/memgov.hpp). Like `cost`, the quota is
    /// not thread-safe: serial stages charge it directly; parallel
    /// intra-cone tasks charge task-local quotas snapshotted from
    /// `remaining()` at a serial point and merged in fixed task order.
    MemoryQuota* mem_quota = nullptr;

    /// Tier-2 process-wide accountant (the `--mem-budget` rail), or null.
    /// Components with real arenas (SAT solvers, BDD managers) push
    /// counted byte deltas here; purely observability + relief, never a
    /// result-changing input.
    MemoryGovernor* governor = nullptr;

    /// Metrics registry, or null to fall back to the process-global one.
    Metrics* metrics = nullptr;

    /// Intra-cone executor: the run's reentrant pool, or null for strictly
    /// serial inner loops. Purely an execution knob — consumers must keep
    /// results identical with and without it (fixed-order joins).
    ThreadPool* executor = nullptr;

    /// Gate for the intra-cone fan-out (`lls_opt --intra-cone`). Kept
    /// separate from `executor` so one context can serve both modes.
    bool intra_cone = true;

    /// The executor to fan intra-cone work across, or null when the
    /// fan-out is disabled or no pool was provided.
    ThreadPool* intra_cone_executor() const { return intra_cone ? executor : nullptr; }

    /// Fires the planned fault for `site` (if any) as LlsError at `stage`.
    void check_fault(std::string_view site, std::string_view stage) const {
        if (faults != nullptr) faults->check(site, stage);
    }

    /// Merges `delta` into the context's work sink, if one is attached.
    void charge(const WorkCost& delta) const {
        if (cost != nullptr) *cost += delta;
    }

    /// Charges `bytes` against the Tier-1 quota, if one is attached;
    /// throws LlsError{ResourceExhausted, kMemgovStage} past the limit.
    /// Callers must only invoke this at deterministic program points.
    void charge_memory(std::uint64_t bytes) const {
        if (mem_quota != nullptr) mem_quota->charge(bytes);
    }

    /// True when the context's token was requested or its deadline has
    /// expired. Unlike the thread-local `lls::cancel_pending()`, this reads
    /// the clock unamortized — it is the *between-queries* poll, where each
    /// unit of work dwarfs a clock read. Per-decision hot loops amortize it
    /// themselves (sat::Solver::bind_run_context).
    bool cancel_pending() const {
        if (cancel != nullptr && cancel->requested()) return true;
        return deadline != nullptr && deadline->expired();
    }

    /// Throws LlsError{Cancelled} at `stage` when a cancellation source
    /// fired, otherwise returns immediately.
    void poll_cancellation(const char* stage) const {
        if (!cancel_pending()) return;
        const bool shutdown = cancel != nullptr && cancel->requested();
        throw LlsError(ErrorKind::Cancelled,
                       shutdown ? "cancellation requested" : "cone deadline expired", stage);
    }
};

}  // namespace lls
