#pragma once

#include <cstdint>

namespace lls {

/// Deterministic work accounting for budgeted optimization runs.
///
/// A work unit is something the flow *does*, never time it takes: one
/// decomposition/simplification attempt, or one CDCL conflict inside a SAT
/// query. Both are pure functions of the inputs they are charged for, so a
/// budget metered in these units runs out at the same point of the flow on
/// every thread schedule and every machine — unlike `time_budget_seconds`,
/// which is kept only as a nondeterministic safety rail (docs/ENGINE.md,
/// "Budget semantics").
struct WorkCost {
    std::uint64_t decompositions = 0;  ///< decomposition / node-simplification attempts
    std::uint64_t sat_conflicts = 0;   ///< CDCL conflicts across all SAT queries

    std::uint64_t units() const { return decompositions + sat_conflicts; }

    WorkCost& operator+=(const WorkCost& other) {
        decompositions += other.decompositions;
        sat_conflicts += other.sat_conflicts;
        return *this;
    }
};

/// A consumable work-unit budget (limit 0 = unlimited).
///
/// Deliberately not thread-safe: charges must happen at serial program
/// points of the driver (after a round's parallel fan-out has joined),
/// never inside the fan-out itself — charging from workers would make the
/// spend order, and with it the exhaustion point, schedule-dependent.
class WorkBudget {
public:
    explicit WorkBudget(std::uint64_t limit = 0) : limit_(limit) {}

    bool limited() const { return limit_ > 0; }
    std::uint64_t limit() const { return limit_; }
    std::uint64_t spent() const { return spent_; }

    void charge(const WorkCost& cost) { spent_ += cost.units(); }

    /// True once at least `limit` units have been charged — a pure
    /// function of work performed; no clock is involved.
    bool exhausted() const { return limited() && spent_ >= limit_; }

private:
    std::uint64_t limit_ = 0;
    std::uint64_t spent_ = 0;
};

}  // namespace lls
