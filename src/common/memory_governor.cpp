#include "common/memgov.hpp"

#include <algorithm>

namespace lls {

namespace {
/// Counted-traffic interval between forced gauge polls: cache growth is
/// only visible through gauges, so the screen must not rely on a stale
/// snapshot forever.
constexpr std::uint64_t kPollInterval = std::uint64_t{4} << 20;  // 4 MiB
/// A new relief episode is allowed once usage grows this far past the
/// level the previous episode measured — repeated shedding of an
/// already-empty cache would inflate event counts without freeing bytes.
constexpr std::uint64_t kEpisodeGrowth = std::uint64_t{1} << 20;  // 1 MiB
}  // namespace

MemoryGovernor::MemoryGovernor(std::uint64_t budget_bytes) : budget_(budget_bytes) {}

void MemoryGovernor::charge(std::int64_t delta) {
    if (delta > 0) {
        charged_total_.fetch_add(static_cast<std::uint64_t>(delta), std::memory_order_relaxed);
        since_poll_.fetch_add(static_cast<std::uint64_t>(delta), std::memory_order_relaxed);
    }
    counted_.fetch_add(delta, std::memory_order_relaxed);
    if (budget_ != 0 && delta > 0) maybe_relieve();
}

void MemoryGovernor::add_gauge(std::function<std::uint64_t()> gauge) {
    const std::lock_guard<std::mutex> lock(config_mutex_);
    gauges_.push_back(std::move(gauge));
}

void MemoryGovernor::add_shed_hook(std::function<void()> hook) {
    const std::lock_guard<std::mutex> lock(config_mutex_);
    shed_hooks_.push_back(std::move(hook));
}

std::uint64_t MemoryGovernor::poll_gauges_locked() {
    std::uint64_t total = 0;
    for (const auto& gauge : gauges_) total += gauge();
    gauge_cache_.store(total, std::memory_order_relaxed);
    since_poll_.store(0, std::memory_order_relaxed);
    return counted_bytes() + total;
}

std::uint64_t MemoryGovernor::current_bytes() {
    const std::lock_guard<std::mutex> lock(relief_mutex_);
    return poll_gauges_locked();
}

void MemoryGovernor::maybe_relieve() {
    // Cheap screen against the cached gauge total; a forced poll every
    // kPollInterval of counted traffic keeps the snapshot honest when the
    // gauged components (caches) are what grows.
    const std::uint64_t screen =
        counted_bytes() + gauge_cache_.load(std::memory_order_relaxed);
    if (screen <= budget_ && since_poll_.load(std::memory_order_relaxed) < kPollInterval) return;

    std::unique_lock<std::mutex> lock(relief_mutex_, std::try_to_lock);
    if (!lock.owns_lock()) return;  // another thread is already relieving
    const std::uint64_t current = poll_gauges_locked();
    if (current <= budget_) {
        // Hysteresis: drop the admission hold only once usage has fallen
        // meaningfully below the rail, so the gate does not flap.
        if (hold_.load(std::memory_order_relaxed) && current <= budget_ - budget_ / 8) {
            hold_.store(false, std::memory_order_relaxed);
            gate_cv_.notify_all();
        }
        return;
    }
    // Over the rail: shed at most once per growth episode.
    if (shed_events_.load(std::memory_order_relaxed) == 0 ||
        current >= last_relief_bytes_ + kEpisodeGrowth) {
        for (const auto& hook : shed_hooks_) hook();
        shed_events_.fetch_add(1, std::memory_order_relaxed);
        relief_epoch_.fetch_add(1, std::memory_order_release);
        last_relief_bytes_ = poll_gauges_locked();
        hold_.store(last_relief_bytes_ > budget_, std::memory_order_relaxed);
    } else {
        hold_.store(true, std::memory_order_relaxed);
    }
}

void MemoryGovernor::admission_acquire() {
    std::unique_lock<std::mutex> lock(gate_mutex_);
    bool counted_hold = false;
    while (budget_ != 0 && inflight_ > 0 && hold_.load(std::memory_order_relaxed)) {
        if (!counted_hold) {
            counted_hold = true;
            admission_holds_.fetch_add(1, std::memory_order_relaxed);
        }
        // Timed wait: the hold is cleared by whichever thread next runs the
        // relief slow path, which happens on charge traffic — re-poll here
        // too so a fully idle process still re-measures and unblocks.
        gate_cv_.wait_for(lock, std::chrono::milliseconds(50));
        if (hold_.load(std::memory_order_relaxed)) {
            lock.unlock();
            const std::uint64_t current = current_bytes();
            if (current <= budget_ - budget_ / 8) {
                hold_.store(false, std::memory_order_relaxed);
                gate_cv_.notify_all();
            }
            lock.lock();
        }
    }
    ++inflight_;
}

void MemoryGovernor::admission_release() {
    const std::lock_guard<std::mutex> lock(gate_mutex_);
    --inflight_;
    gate_cv_.notify_all();
}

}  // namespace lls
