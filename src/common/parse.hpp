#pragma once

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace lls {

/// Strict integer option parsing: the whole token must be a base-10 number
/// within [min_value, max_value]. Anything else — empty string, trailing
/// garbage ("12x"), non-numbers ("xyz", which std::atoi silently turns
/// into 0), or out-of-range values — prints an error naming `flag` to
/// stderr and returns false without touching `*out`.
inline bool parse_int_option(const char* flag, const char* text, long min_value, long max_value,
                             int* out) {
    char* end = nullptr;
    errno = 0;
    const long value = std::strtol(text, &end, 10);
    if (errno != 0 || end == text || *end != '\0' || value < min_value || value > max_value) {
        std::fprintf(stderr, "error: %s expects an integer in [%ld, %ld], got '%s'\n", flag,
                     min_value, max_value, text);
        return false;
    }
    *out = static_cast<int>(value);
    return true;
}

/// Job-count option: `"auto"` and `0` both mean "use every hardware
/// thread" and write 0 — the caller resolves 0 via
/// `ThreadPool::hardware_jobs()` (this header stays thread-free). A
/// positive count passes through; everything else is rejected like
/// `parse_int_option`.
inline bool parse_jobs_option(const char* flag, const char* text, long max_value, int* out) {
    if (std::strcmp(text, "auto") == 0) {
        *out = 0;
        return true;
    }
    return parse_int_option(flag, text, 0, max_value, out);
}

/// Strict duration option: a positive decimal number immediately followed
/// by a unit — `ms`, `s`, or `m` (`500ms`, `30s`, `1.5s`, `5m`). Writes
/// the value in seconds. The number part may contain only digits and at
/// most one '.', so signs, exponents, `inf`/`nan`, whitespace, and bare
/// numbers without a unit are all rejected with an error naming `flag`,
/// leaving `*out_seconds` untouched.
inline bool parse_duration_option(const char* flag, const char* text, double* out_seconds) {
    const std::size_t len = std::strlen(text);
    double scale = 0.0;
    std::size_t unit_len = 0;
    if (len > 2 && text[len - 2] == 'm' && text[len - 1] == 's') {
        scale = 1e-3;
        unit_len = 2;
    } else if (len > 1 && text[len - 1] == 's') {
        scale = 1.0;
        unit_len = 1;
    } else if (len > 1 && text[len - 1] == 'm') {
        scale = 60.0;
        unit_len = 1;
    } else {
        std::fprintf(stderr, "error: %s expects a duration like 500ms, 30s, or 5m, got '%s'\n",
                     flag, text);
        return false;
    }
    const std::size_t digits = len - unit_len;
    bool ok = digits > 0;
    bool saw_digit = false;
    bool saw_dot = false;
    for (std::size_t i = 0; i < digits && ok; ++i) {
        if (text[i] >= '0' && text[i] <= '9') saw_digit = true;
        else if (text[i] == '.' && !saw_dot) saw_dot = true;
        else ok = false;
    }
    double value = 0.0;
    if (ok && saw_digit) {
        // The digit run was validated above, so strtod stops exactly at the
        // unit suffix — no allocation needed to isolate the number.
        char* end = nullptr;
        errno = 0;
        value = std::strtod(text, &end) * scale;
        ok = errno == 0 && end == text + digits && value > 0.0;
    } else {
        ok = false;
    }
    if (!ok) {
        std::fprintf(stderr,
                     "error: %s expects a positive duration like 500ms, 30s, or 5m, got '%s'\n",
                     flag, text);
        return false;
    }
    *out_seconds = value;
    return true;
}

/// Strict byte-size option: a decimal digit run with an optional binary
/// unit suffix `K`, `M`, or `G` (case-insensitive; `64M`, `1G`, `4096`).
/// Writes the value in bytes. Signs, fractions, whitespace, trailing
/// garbage ("64MB"), empty digit runs ("M"), and anything that would
/// overflow 64 bits are rejected with an error naming `flag`, leaving
/// `*out_bytes` untouched.
inline bool parse_size_option(const char* flag, const char* text, std::uint64_t* out_bytes) {
    const std::size_t len = std::strlen(text);
    std::uint64_t multiplier = 1;
    std::size_t digits = len;
    if (len > 0) {
        const char suffix = text[len - 1];
        if (suffix == 'K' || suffix == 'k') multiplier = std::uint64_t{1} << 10;
        else if (suffix == 'M' || suffix == 'm') multiplier = std::uint64_t{1} << 20;
        else if (suffix == 'G' || suffix == 'g') multiplier = std::uint64_t{1} << 30;
        if (multiplier != 1) digits = len - 1;
    }
    bool ok = digits > 0;
    std::uint64_t value = 0;
    for (std::size_t i = 0; i < digits && ok; ++i) {
        const char c = text[i];
        if (c < '0' || c > '9') {
            ok = false;
            break;
        }
        const std::uint64_t d = static_cast<std::uint64_t>(c - '0');
        if (value > (~std::uint64_t{0} - d) / 10) ok = false;  // digit-run overflow
        else value = value * 10 + d;
    }
    if (ok && multiplier != 1 && value > ~std::uint64_t{0} / multiplier) ok = false;
    if (!ok) {
        std::fprintf(stderr, "error: %s expects a size like 4096, 64M, or 1G, got '%s'\n", flag,
                     text);
        return false;
    }
    *out_bytes = value * multiplier;
    return true;
}

/// Strict unsigned-64-bit variant (seeds, work budgets). Rejects negative
/// numbers, non-numbers, trailing garbage, and values above `max_value`.
inline bool parse_u64_option(const char* flag, const char* text, std::uint64_t max_value,
                             std::uint64_t* out) {
    char* end = nullptr;
    errno = 0;
    if (text[0] == '-') {
        std::fprintf(stderr, "error: %s expects a non-negative integer, got '%s'\n", flag, text);
        return false;
    }
    const unsigned long long value = std::strtoull(text, &end, 10);
    if (errno != 0 || end == text || *end != '\0' || value > max_value) {
        std::fprintf(stderr, "error: %s expects an integer in [0, %llu], got '%s'\n", flag,
                     static_cast<unsigned long long>(max_value), text);
        return false;
    }
    *out = static_cast<std::uint64_t>(value);
    return true;
}

}  // namespace lls
