#pragma once

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace lls {

/// Strict integer option parsing: the whole token must be a base-10 number
/// within [min_value, max_value]. Anything else — empty string, trailing
/// garbage ("12x"), non-numbers ("xyz", which std::atoi silently turns
/// into 0), or out-of-range values — prints an error naming `flag` to
/// stderr and returns false without touching `*out`.
inline bool parse_int_option(const char* flag, const char* text, long min_value, long max_value,
                             int* out) {
    char* end = nullptr;
    errno = 0;
    const long value = std::strtol(text, &end, 10);
    if (errno != 0 || end == text || *end != '\0' || value < min_value || value > max_value) {
        std::fprintf(stderr, "error: %s expects an integer in [%ld, %ld], got '%s'\n", flag,
                     min_value, max_value, text);
        return false;
    }
    *out = static_cast<int>(value);
    return true;
}

/// Job-count option: `"auto"` and `0` both mean "use every hardware
/// thread" and write 0 — the caller resolves 0 via
/// `ThreadPool::hardware_jobs()` (this header stays thread-free). A
/// positive count passes through; everything else is rejected like
/// `parse_int_option`.
inline bool parse_jobs_option(const char* flag, const char* text, long max_value, int* out) {
    if (std::strcmp(text, "auto") == 0) {
        *out = 0;
        return true;
    }
    return parse_int_option(flag, text, 0, max_value, out);
}

/// Strict unsigned-64-bit variant (seeds, work budgets). Rejects negative
/// numbers, non-numbers, trailing garbage, and values above `max_value`.
inline bool parse_u64_option(const char* flag, const char* text, std::uint64_t max_value,
                             std::uint64_t* out) {
    char* end = nullptr;
    errno = 0;
    if (text[0] == '-') {
        std::fprintf(stderr, "error: %s expects a non-negative integer, got '%s'\n", flag, text);
        return false;
    }
    const unsigned long long value = std::strtoull(text, &end, 10);
    if (errno != 0 || end == text || *end != '\0' || value > max_value) {
        std::fprintf(stderr, "error: %s expects an integer in [0, %llu], got '%s'\n", flag,
                     static_cast<unsigned long long>(max_value), text);
        return false;
    }
    *out = static_cast<std::uint64_t>(value);
    return true;
}

}  // namespace lls
