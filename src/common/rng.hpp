#pragma once

#include <cstdint>

namespace lls {

/// Deterministic xoshiro256** PRNG.
///
/// All stochastic parts of the library (simulation patterns, synthetic
/// benchmark generation, SAT decision jitter) draw from this generator so
/// that every run of the flow is reproducible from a single seed.
class Rng {
public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) {
        // splitmix64 seeding, as recommended by the xoshiro authors.
        auto next = [&seed]() {
            seed += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = seed;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            return z ^ (z >> 31);
        };
        for (auto& w : state_) w = next();
    }

    std::uint64_t next_u64() {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /// Uniform integer in [0, bound). bound must be > 0.
    std::uint64_t next_below(std::uint64_t bound) {
        // Lemire's multiply-shift rejection method.
        std::uint64_t x = next_u64();
        __uint128_t m = static_cast<__uint128_t>(x) * bound;
        auto lo = static_cast<std::uint64_t>(m);
        if (lo < bound) {
            const std::uint64_t threshold = -bound % bound;
            while (lo < threshold) {
                x = next_u64();
                m = static_cast<__uint128_t>(x) * bound;
                lo = static_cast<std::uint64_t>(m);
            }
        }
        return static_cast<std::uint64_t>(m >> 64);
    }

    bool next_bool() { return (next_u64() >> 63) != 0; }

    /// Uniform double in [0, 1).
    double next_double() { return static_cast<double>(next_u64() >> 11) * 0x1.0p-53; }

private:
    static std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

    std::uint64_t state_[4];
};

}  // namespace lls
