#pragma once

#include <optional>
#include <vector>

#include "aig/aig.hpp"
#include "tt/truth_table.hpp"

namespace lls {

/// A miniature AIG structure produced by exact synthesis: `gates[i]` reads
/// two earlier signals (signal s is input s when s < num_inputs, otherwise
/// gate s - num_inputs), each optionally complemented; the last gate,
/// possibly complemented, is the output. An empty gate list encodes a
/// constant or a (possibly complemented) input passthrough via
/// `output_signal`.
struct ExactStructure {
    struct Gate {
        int fanin0 = 0, fanin1 = 0;
        bool complement0 = false, complement1 = false;
    };
    int num_inputs = 0;
    std::vector<Gate> gates;
    int output_signal = 0;  ///< input index or num_inputs + gate index
    bool output_complemented = false;
    bool output_constant = false;  ///< output is constant `output_complemented`

    /// Evaluates the structure on one input row (bit i of `row` = input i).
    bool evaluate(std::uint32_t row) const;
};

/// SAT-based exact synthesis (Knuth/SSV-style encoding): finds an AIG with
/// the *minimum number of AND gates* realizing `tt`, searching gate counts
/// 0, 1, ..., max_gates. Returns nullopt when no realization within
/// max_gates exists or the SAT budget runs out. Practical for functions of
/// up to 4-5 inputs and ~7 gates — exactly the granularity cut rewriting
/// needs.
std::optional<ExactStructure> exact_synthesize(const TruthTable& tt, int max_gates = 7,
                                               std::int64_t conflict_limit = 200000);

/// Instantiates an exact structure in `aig` over the given fanin literals.
AigLit build_exact_structure(Aig& aig, const ExactStructure& structure,
                             const std::vector<AigLit>& fanins);

}  // namespace lls
