#include "exact/exact_synthesis.hpp"

#include <algorithm>

#include "common/cancel.hpp"
#include "sat/solver.hpp"

namespace lls {

bool ExactStructure::evaluate(std::uint32_t row) const {
    if (output_constant) return output_complemented;
    std::vector<bool> value(static_cast<std::size_t>(num_inputs) + gates.size());
    for (int i = 0; i < num_inputs; ++i) value[static_cast<std::size_t>(i)] = (row >> i) & 1;
    for (std::size_t g = 0; g < gates.size(); ++g) {
        const bool a = value[static_cast<std::size_t>(gates[g].fanin0)] != gates[g].complement0;
        const bool b = value[static_cast<std::size_t>(gates[g].fanin1)] != gates[g].complement1;
        value[static_cast<std::size_t>(num_inputs) + g] = a && b;
    }
    return value[static_cast<std::size_t>(output_signal)] != output_complemented;
}

namespace {

/// Sequential at-most-one encoding (Sinz): O(k) clauses and aux vars.
/// `prev` tracks "some literal among the processed prefix is set".
void add_at_most_one(sat::Solver& solver, const std::vector<sat::Lit>& lits) {
    if (lits.size() <= 1) return;
    sat::Lit prev = lits[0];
    for (std::size_t i = 1; i < lits.size(); ++i) {
        solver.add_clause(!prev, !lits[i]);  // prefix set -> lits[i] unset
        if (i + 1 == lits.size()) break;
        const sat::Lit aux = sat::Lit(solver.new_var(), false);
        solver.add_clause(!prev, aux);
        solver.add_clause(!lits[i], aux);
        prev = aux;
    }
}

struct Candidate {
    int fanin0, fanin1;  // signal indices, fanin0 < fanin1
    bool c0, c1;
};

/// Attempts synthesis with exactly `r` gates. Returns the structure on SAT.
std::optional<ExactStructure> try_with_gates(const TruthTable& tt, int r,
                                             std::int64_t conflict_limit) {
    const int n = tt.num_vars();
    const std::uint32_t rows = 1u << n;
    sat::Solver solver;

    // val[i][t]: value of gate i on input row t.
    std::vector<std::vector<sat::Lit>> val(static_cast<std::size_t>(r));
    for (auto& row_vars : val) {
        row_vars.resize(rows);
        for (auto& v : row_vars) v = sat::Lit(solver.new_var(), false);
    }
    // Output polarity.
    const sat::Lit out_neg = sat::Lit(solver.new_var(), false);

    // Row value of signal s (input or earlier gate) as a function of row t:
    // inputs give compile-time constants, gates give variables.
    auto input_value = [&](int s, std::uint32_t t) { return ((t >> s) & 1) != 0; };

    std::vector<std::vector<Candidate>> candidates(static_cast<std::size_t>(r));
    std::vector<std::vector<sat::Lit>> sel(static_cast<std::size_t>(r));
    for (int i = 0; i < r; ++i) {
        const int num_signals = n + i;
        for (int a = 0; a < num_signals; ++a)
            for (int b = a + 1; b < num_signals; ++b)
                for (int pol = 0; pol < 4; ++pol)
                    candidates[static_cast<std::size_t>(i)].push_back(
                        Candidate{a, b, (pol & 1) != 0, (pol & 2) != 0});
        auto& s = sel[static_cast<std::size_t>(i)];
        s.resize(candidates[static_cast<std::size_t>(i)].size());
        std::vector<sat::Lit> all;
        for (auto& v : s) {
            v = sat::Lit(solver.new_var(), false);
            all.push_back(v);
        }
        solver.add_clause(all);  // at least one candidate
        add_at_most_one(solver, all);
    }

    // Semantics: sel -> (val[i][t] == (A & B)).
    for (int i = 0; i < r; ++i) {
        for (std::size_t c = 0; c < candidates[static_cast<std::size_t>(i)].size(); ++c) {
            // CNF encoding is r × candidates × rows — large before the solver
            // even starts, so the encode loop polls alongside the solve loop.
            poll_cancellation("exact");
            const Candidate& cand = candidates[static_cast<std::size_t>(i)][c];
            const sat::Lit s = sel[static_cast<std::size_t>(i)][c];
            for (std::uint32_t t = 0; t < rows; ++t) {
                const sat::Lit x = val[static_cast<std::size_t>(i)][t];
                // Literal (or constant) of each fanin on this row.
                auto fanin_lit = [&](int signal, bool comp,
                                     bool* is_const, bool* const_val) -> sat::Lit {
                    if (signal < n) {
                        *is_const = true;
                        *const_val = input_value(signal, t) != comp;
                        return sat::Lit{};
                    }
                    *is_const = false;
                    sat::Lit l = val[static_cast<std::size_t>(signal - n)][t];
                    return comp ? !l : l;
                };
                bool a_const = false, a_val = false, b_const = false, b_val = false;
                const sat::Lit la = fanin_lit(cand.fanin0, cand.c0, &a_const, &a_val);
                const sat::Lit lb = fanin_lit(cand.fanin1, cand.c1, &b_const, &b_val);

                if (a_const && b_const) {
                    const bool result = a_val && b_val;
                    solver.add_clause(!s, result ? x : !x);
                } else if (a_const || b_const) {
                    const bool known = a_const ? a_val : b_val;
                    const sat::Lit other = a_const ? lb : la;
                    if (!known) {
                        solver.add_clause(!s, !x);  // constant-0 fanin
                    } else {
                        solver.add_clause(!s, !x, other);
                        solver.add_clause(!s, x, !other);
                    }
                } else {
                    solver.add_clause(!s, !x, la);
                    solver.add_clause(!s, !x, lb);
                    solver.add_clause({!s, x, !la, !lb});
                }
            }
        }
    }

    // Output constraint: val[r-1][t] XOR out_neg == tt[t].
    for (std::uint32_t t = 0; t < rows; ++t) {
        const sat::Lit x = val[static_cast<std::size_t>(r - 1)][t];
        if (tt.get_bit(t)) {
            solver.add_clause(out_neg, x);
            solver.add_clause(!out_neg, !x);
        } else {
            solver.add_clause(out_neg, !x);
            solver.add_clause(!out_neg, x);
        }
    }

    if (solver.solve({}, conflict_limit) != sat::Status::Sat) return std::nullopt;

    ExactStructure structure;
    structure.num_inputs = n;
    for (int i = 0; i < r; ++i) {
        for (std::size_t c = 0; c < candidates[static_cast<std::size_t>(i)].size(); ++c) {
            if (!solver.model_value(sel[static_cast<std::size_t>(i)][c].var())) continue;
            const Candidate& cand = candidates[static_cast<std::size_t>(i)][c];
            structure.gates.push_back(
                ExactStructure::Gate{cand.fanin0, cand.fanin1, cand.c0, cand.c1});
            break;
        }
    }
    LLS_ENSURE(static_cast<int>(structure.gates.size()) == r);
    structure.output_signal = n + r - 1;
    structure.output_complemented = solver.model_value(out_neg.var());
    return structure;
}

}  // namespace

std::optional<ExactStructure> exact_synthesize(const TruthTable& tt, int max_gates,
                                               std::int64_t conflict_limit) {
    const int n = tt.num_vars();
    LLS_REQUIRE(n >= 0 && n <= 5);

    // Zero-gate cases: constants and (complemented) input passthroughs.
    ExactStructure trivial;
    trivial.num_inputs = n;
    if (tt.is_const0() || tt.is_const1()) {
        trivial.output_constant = true;
        trivial.output_complemented = tt.is_const1();
        return trivial;
    }
    for (int v = 0; v < n; ++v) {
        const TruthTable x = TruthTable::variable(n, v);
        if (tt == x || tt == ~x) {
            trivial.output_signal = v;
            trivial.output_complemented = tt == ~x;
            return trivial;
        }
    }

    for (int r = 1; r <= max_gates; ++r) {
        if (auto result = try_with_gates(tt, r, conflict_limit)) {
            // Sanity: the decoded structure must realize tt exactly.
            for (std::uint32_t t = 0; t < tt.num_minterms(); ++t)
                LLS_ENSURE(result->evaluate(t) == tt.get_bit(t));
            return result;
        }
    }
    return std::nullopt;
}

AigLit build_exact_structure(Aig& aig, const ExactStructure& structure,
                             const std::vector<AigLit>& fanins) {
    LLS_REQUIRE(static_cast<int>(fanins.size()) >= structure.num_inputs);
    if (structure.output_constant) return AigLit::constant(structure.output_complemented);
    std::vector<AigLit> signal(static_cast<std::size_t>(structure.num_inputs) +
                               structure.gates.size());
    for (int i = 0; i < structure.num_inputs; ++i)
        signal[static_cast<std::size_t>(i)] = fanins[static_cast<std::size_t>(i)];
    for (std::size_t g = 0; g < structure.gates.size(); ++g) {
        const auto& gate = structure.gates[g];
        AigLit a = signal[static_cast<std::size_t>(gate.fanin0)];
        AigLit b = signal[static_cast<std::size_t>(gate.fanin1)];
        if (gate.complement0) a = !a;
        if (gate.complement1) b = !b;
        signal[static_cast<std::size_t>(structure.num_inputs) + g] = aig.land(a, b);
    }
    const AigLit out = signal[static_cast<std::size_t>(structure.output_signal)];
    return structure.output_complemented ? !out : out;
}

}  // namespace lls
