#include "exact/rewrite.hpp"

#include <optional>
#include <unordered_map>

#include "aig/aig_build.hpp"
#include "aig/cuts.hpp"
#include "engine/cache.hpp"
#include "exact/exact_synthesis.hpp"
#include "tt/npn.hpp"

namespace lls {

namespace {

NpnResult canonize_cached(const TruthTable& tt) {
    return npn_memo().get_or_compute(npn_cache_key(tt), [&] { return npn_canonize(tt); });
}

std::optional<ExactStructure> structure_cached(const TruthTable& canonical, int max_gates,
                                               std::int64_t conflict_limit) {
    // The conflict limit is part of the key: a nullopt produced under a
    // small SAT budget must not shadow a realization a larger budget would
    // find — and with the memo persisted across processes, entries now
    // outlive any single run's fixed options.
    return exact_structure_memo().get_or_compute(
        npn_cache_key(canonical, max_gates) + ":c" + std::to_string(conflict_limit),
        [&] { return exact_synthesize(canonical, max_gates, conflict_limit); });
}

}  // namespace

/// Process-wide caches: NPN canonization and exact structures per canonical
/// class. Both are pure functions of the truth table, so sharing them
/// across rewrite() calls (and circuits) is sound and makes repeated flow
/// invocations cheap. Sharded + mutex-striped so the engine's workers and
/// batch-mode circuits can rewrite concurrently.
ShardedCache<std::string, NpnResult>& npn_memo() {
    static ShardedCache<std::string, NpnResult> instance(
        "npn_canon", /*max_entries_per_shard=*/4096,
        [](const std::string& key, const NpnResult& npn) {
            return sizeof(NpnResult) + key.capacity() + npn.perm.capacity() * sizeof(int) +
                   ShardedCache<std::string, NpnResult>::kEntryOverheadBytes;
        });
    return instance;
}

ShardedCache<std::string, std::optional<ExactStructure>>& exact_structure_memo() {
    static ShardedCache<std::string, std::optional<ExactStructure>> instance(
        "exact_structures", /*max_entries_per_shard=*/4096,
        [](const std::string& key, const std::optional<ExactStructure>& s) {
            std::size_t bytes = sizeof(std::optional<ExactStructure>) + key.capacity() +
                                ShardedCache<std::string,
                                             std::optional<ExactStructure>>::kEntryOverheadBytes;
            if (s) bytes += s->gates.capacity() * sizeof(ExactStructure::Gate);
            return bytes;
        });
    return instance;
}

Aig rewrite(const Aig& aig, const RewriteOptions& options) {
    LLS_REQUIRE(options.cut_size >= 2 && options.cut_size <= 4);
    const CutEnumerator cuts(aig, options.cut_size, options.max_cuts);

    Aig out;
    AigLevelTracker levels(out);
    std::vector<AigLit> remap(aig.num_nodes(), AigLit::constant(false));
    for (std::size_t i = 0; i < aig.num_pis(); ++i) remap[aig.pi(i)] = out.add_pi(aig.pi_name(i));

    for (std::uint32_t id = 1; id < aig.num_nodes(); ++id) {
        if (!aig.is_and(id)) continue;
        const auto& n = aig.node(id);
        const AigLit f0 = n.fanin0.complemented() ? !remap[n.fanin0.node()] : remap[n.fanin0.node()];
        const AigLit f1 = n.fanin1.complemented() ? !remap[n.fanin1.node()] : remap[n.fanin1.node()];
        const std::size_t before_plain = out.num_nodes();
        const AigLit plain = out.land(f0, f1);

        AigLit best = plain;
        // Cost of the incremental rebuild (0 when strashing reused a node).
        std::size_t best_added = out.num_nodes() - before_plain;
        int best_level = levels.level(plain);

        for (const auto& cut : cuts.cuts(id)) {
            if (cut.leaves.size() == 1 && cut.leaves[0] == id) continue;
            if (cut.tt.num_vars() > 4) continue;
            const NpnResult& npn = canonize_cached(cut.tt);
            const auto& structure =
                structure_cached(npn.canonical, options.max_gates, options.conflict_limit);
            if (!structure) continue;

            // Instantiate: canonical input i is driven by cut leaf perm[i],
            // complemented per the input-negation mask at perm[i]; the
            // canonical output is complemented by the recorded output flag.
            std::vector<AigLit> inputs(cut.leaves.size());
            for (std::size_t i = 0; i < cut.leaves.size(); ++i) {
                const int src = npn.perm[i];
                AigLit lit = remap[cut.leaves[static_cast<std::size_t>(src)]];
                if ((npn.input_negation >> src) & 1) lit = !lit;
                inputs[i] = lit;
            }
            const std::size_t before = out.num_nodes();
            AigLit lit = build_exact_structure(out, *structure, inputs);
            if (npn.output_negation) lit = !lit;
            const std::size_t added = out.num_nodes() - before;
            const int level = levels.level(lit);

            const bool better = options.delay_oriented
                                    ? (level < best_level ||
                                       (level == best_level && added < best_added))
                                    : (added < best_added ||
                                       (added == best_added && level < best_level));
            if (better) {
                best = lit;
                best_added = added;
                best_level = level;
            }
        }
        remap[id] = best;
    }

    for (std::size_t o = 0; o < aig.num_pos(); ++o) {
        const AigLit po = aig.po(o);
        out.add_po(po.complemented() ? !remap[po.node()] : remap[po.node()], aig.po_name(o));
    }
    return out.cleanup();
}

}  // namespace lls
