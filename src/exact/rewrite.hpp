#pragma once

#include "aig/aig.hpp"

namespace lls {

/// Options for exact-synthesis cut rewriting.
struct RewriteOptions {
    int cut_size = 4;   ///< cuts of up to this many leaves (<= 4)
    int max_cuts = 6;
    /// false: minimize actually-added nodes (area, ABC `rewrite`-style);
    /// true: minimize arrival level first.
    bool delay_oriented = false;
    int max_gates = 6;  ///< exact-synthesis gate bound per cut class
    std::int64_t conflict_limit = 12000;
};

/// Cut rewriting backed by SAT-based exact synthesis (the real counterpart
/// of ABC's `rewrite`): every AND node's 4-feasible cuts are NPN-canonized,
/// the minimum-gate structure of each class is synthesized once (cached for
/// the whole process), and the node is replaced when the instantiated
/// structure — with sharing measured on the actual graph — beats the
/// incremental rebuild. The result is logically equivalent to the input.
Aig rewrite(const Aig& aig, const RewriteOptions& options = {});

}  // namespace lls
