#pragma once

#include <optional>

#include "aig/aig.hpp"
#include "engine/cache.hpp"
#include "exact/exact_synthesis.hpp"
#include "tt/npn.hpp"

namespace lls {

/// Options for exact-synthesis cut rewriting.
struct RewriteOptions {
    int cut_size = 4;   ///< cuts of up to this many leaves (<= 4)
    int max_cuts = 6;
    /// false: minimize actually-added nodes (area, ABC `rewrite`-style);
    /// true: minimize arrival level first.
    bool delay_oriented = false;
    int max_gates = 6;  ///< exact-synthesis gate bound per cut class
    std::int64_t conflict_limit = 12000;
};

/// Cut rewriting backed by SAT-based exact synthesis (the real counterpart
/// of ABC's `rewrite`): every AND node's 4-feasible cuts are NPN-canonized,
/// the minimum-gate structure of each class is synthesized once (cached for
/// the whole process), and the node is replaced when the instantiated
/// structure — with sharing measured on the actual graph — beats the
/// incremental rebuild. The result is logically equivalent to the input.
Aig rewrite(const Aig& aig, const RewriteOptions& options = {});

/// The process-wide NPN-canonization memo (truth-table key ->
/// canonization). Exposed for the persistent memo store's export/import
/// bridge and for tests; treat as read/insert-only.
ShardedCache<std::string, NpnResult>& npn_memo();

/// The process-wide exact-synthesis memo (canonical class + gate bound +
/// conflict limit -> minimal structure, nullopt = none within bounds).
ShardedCache<std::string, std::optional<ExactStructure>>& exact_structure_memo();

}  // namespace lls
