#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "aig/aig.hpp"
#include "sim/simulation.hpp"
#include "sop/sop.hpp"
#include "tt/truth_table.hpp"

namespace lls {

/// Technology-independent network: a DAG whose internal nodes carry
/// arbitrary (small) Boolean functions of their fanins, the representation
/// `T` on which the paper's primary/secondary simplifications operate.
///
/// Node 0 is the constant-0 node. POs reference a node with an optional
/// complement flag. Node functions are mutable (that is the whole point of
/// the simplification algorithms); fanin lists are fixed per node, but a
/// function is allowed to be vacuous in some of its fanins.
class Network {
public:
    struct Po {
        std::uint32_t node = 0;
        bool complemented = false;
        std::string name;
    };

    Network() {
        Node constant;
        constant.tt = TruthTable(0);
        nodes_.push_back(std::move(constant));
    }

    // --- construction -----------------------------------------------------

    std::uint32_t add_pi(std::string name = {});

    /// Adds an internal node computing `tt` over `fanins` (var i = fanin i).
    std::uint32_t add_node(std::vector<std::uint32_t> fanins, TruthTable tt);

    void add_po(std::uint32_t node, bool complemented, std::string name = {});

    /// Replaces the function of an internal node. The new table must range
    /// over the same number of variables (the node's fanins).
    void set_function(std::uint32_t node, TruthTable tt);

    // --- structure ---------------------------------------------------------

    std::size_t num_nodes() const { return nodes_.size(); }
    std::size_t num_pis() const { return pis_.size(); }
    std::size_t num_pos() const { return pos_.size(); }

    bool is_pi(std::uint32_t id) const { return nodes_[id].is_pi; }
    bool is_const(std::uint32_t id) const { return id == 0; }
    bool is_internal(std::uint32_t id) const { return id != 0 && !nodes_[id].is_pi; }

    const std::vector<std::uint32_t>& fanins(std::uint32_t id) const { return nodes_[id].fanins; }
    const TruthTable& function(std::uint32_t id) const { return nodes_[id].tt; }
    const std::string& pi_name(std::size_t index) const;
    std::uint32_t pi(std::size_t index) const { return pis_[index]; }
    std::size_t pi_index(std::uint32_t id) const;
    const Po& po(std::size_t index) const { return pos_[index]; }
    Po& po(std::size_t index) { return pos_[index]; }

    /// Cached minimum SOPs of the node's on-set and off-set (recomputed
    /// lazily after set_function).
    const Sop& on_sop(std::uint32_t id) const;
    const Sop& off_sop(std::uint32_t id) const;

    /// Nodes in a topological order (fanins before fanouts).
    std::vector<std::uint32_t> topo_order() const;

    /// Internal nodes in the transitive fanin cone of `node` (including it).
    std::vector<std::uint32_t> cone_of(std::uint32_t node) const;

    // --- the paper's SOP-aware level metric ---------------------------------

    /// Levels for all nodes: PIs/constants are 0; an internal node's level is
    /// min over its on-set/off-set minimum SOP of the optimal OR-tree level
    /// over optimal AND-tree levels of its cubes (Sec. 3.1, "Quantifying
    /// logic levels in T").
    std::vector<int> compute_sop_levels() const;

    /// Level of a single node's function given fanin levels (used for
    /// what-if evaluation of candidate simplified functions).
    static int sop_level_of(const TruthTable& tt, const std::vector<int>& fanin_levels);
    static int sop_level_of(const Sop& on, const Sop& off, const std::vector<int>& fanin_levels);

    /// Optimal OR-of-AND-trees level of a single SOP (one phase only).
    static int sop_tree_level(const Sop& sop, const std::vector<int>& fanin_levels);

    /// Network depth under the SOP level metric (max over PO nodes).
    int sop_depth() const;

    /// Critical fanins of `node`: fanins whose level must decrease for the
    /// node's level to decrease (evaluated by what-if level reduction).
    std::vector<std::uint32_t> critical_fanins(std::uint32_t node,
                                               const std::vector<int>& levels) const;

    // --- conversion ---------------------------------------------------------

    /// Clusters an AIG into a network whose nodes are `cut_size`-input
    /// functions, chosen depth-first over priority cuts (the "renode" step).
    static Network from_aig(const Aig& aig, int cut_size = 5, int max_cuts = 8);

    /// Rebuilds an AIG with arrival-aware (delay-oriented) node
    /// instantiation.
    Aig to_aig() const;

    /// Rebuilds an AIG with factored (area-oriented) node instantiation.
    Aig to_aig_area() const;

    /// Like to_aig(), but builds *all* nodes (no cleanup) and reports the
    /// AIG literal of every network node in `node_map`; used when callers
    /// need handles on internal signals (e.g. window functions) for further
    /// AIG-level construction.
    Aig to_aig_with_map(std::vector<AigLit>* node_map) const;

    /// Simulates all nodes over the given PI patterns.
    std::vector<Signature> simulate(const SimPatterns& patterns) const;

    /// Evaluates the signature of a single node from its fanins' signatures
    /// (used to extend a simulation incrementally after adding nodes).
    Signature eval_node_signature(std::uint32_t node, const std::vector<Signature>& sigs,
                                  std::size_t num_patterns) const;

    /// Duplicates the cone of `node` as fresh nodes (PIs and constants are
    /// shared, not copied). Returns the id of the copy of `node`; if
    /// `mapping` is non-null it receives old-id -> new-id for the whole cone.
    std::uint32_t duplicate_cone(std::uint32_t node,
                                 std::vector<std::uint32_t>* mapping = nullptr);

private:
    struct Node {
        std::vector<std::uint32_t> fanins;
        TruthTable tt;
        bool is_pi = false;
        // Lazy min-SOP caches; valid when sop_valid.
        mutable Sop on;
        mutable Sop off;
        mutable bool sop_valid = false;
    };

    void ensure_sops(std::uint32_t id) const;

    std::vector<Node> nodes_;
    std::vector<std::uint32_t> pis_;
    std::vector<Po> pos_;
    std::vector<std::string> pi_names_;
};

}  // namespace lls
