#include "network/network.hpp"

#include <algorithm>
#include <limits>
#include <queue>

#include "aig/aig_build.hpp"
#include "aig/cuts.hpp"
#include "common/bitops.hpp"
#include "engine/metrics.hpp"

namespace lls {

std::uint32_t Network::add_pi(std::string name) {
    const auto id = static_cast<std::uint32_t>(nodes_.size());
    Node n;
    n.is_pi = true;
    n.tt = TruthTable(0);
    nodes_.push_back(std::move(n));
    pis_.push_back(id);
    if (name.empty()) name = "pi" + std::to_string(pis_.size() - 1);
    pi_names_.push_back(std::move(name));
    return id;
}

std::uint32_t Network::add_node(std::vector<std::uint32_t> fanins, TruthTable tt) {
    LLS_REQUIRE(tt.num_vars() == static_cast<int>(fanins.size()));
    for (const auto f : fanins) LLS_REQUIRE(f < nodes_.size());
    const auto id = static_cast<std::uint32_t>(nodes_.size());
    Node n;
    n.fanins = std::move(fanins);
    n.tt = std::move(tt);
    nodes_.push_back(std::move(n));
    return id;
}

void Network::add_po(std::uint32_t node, bool complemented, std::string name) {
    LLS_REQUIRE(node < nodes_.size());
    if (name.empty()) name = "po" + std::to_string(pos_.size());
    pos_.push_back(Po{node, complemented, std::move(name)});
}

void Network::set_function(std::uint32_t node, TruthTable tt) {
    LLS_REQUIRE(is_internal(node));
    LLS_REQUIRE(tt.num_vars() == nodes_[node].tt.num_vars());
    nodes_[node].tt = std::move(tt);
    nodes_[node].sop_valid = false;
}

const std::string& Network::pi_name(std::size_t index) const { return pi_names_[index]; }

std::size_t Network::pi_index(std::uint32_t id) const {
    LLS_REQUIRE(is_pi(id));
    const auto it = std::find(pis_.begin(), pis_.end(), id);
    LLS_ENSURE(it != pis_.end());
    return static_cast<std::size_t>(it - pis_.begin());
}

void Network::ensure_sops(std::uint32_t id) const {
    const Node& n = nodes_[id];
    if (n.sop_valid) return;
    n.on = minimum_sop(n.tt);
    n.off = minimum_sop(~n.tt);
    n.sop_valid = true;
}

const Sop& Network::on_sop(std::uint32_t id) const {
    LLS_REQUIRE(is_internal(id));
    ensure_sops(id);
    return nodes_[id].on;
}

const Sop& Network::off_sop(std::uint32_t id) const {
    LLS_REQUIRE(is_internal(id));
    ensure_sops(id);
    return nodes_[id].off;
}

std::vector<std::uint32_t> Network::topo_order() const {
    // Nodes are created fanins-first, so ids are already topological.
    std::vector<std::uint32_t> order(nodes_.size());
    for (std::uint32_t i = 0; i < nodes_.size(); ++i) order[i] = i;
    return order;
}

std::vector<std::uint32_t> Network::cone_of(std::uint32_t node) const {
    std::vector<char> mark(nodes_.size(), 0);
    std::vector<std::uint32_t> stack{node};
    std::vector<std::uint32_t> cone;
    while (!stack.empty()) {
        const auto id = stack.back();
        stack.pop_back();
        if (mark[id] || !is_internal(id)) continue;
        mark[id] = 1;
        cone.push_back(id);
        for (const auto f : nodes_[id].fanins) stack.push_back(f);
    }
    std::sort(cone.begin(), cone.end());
    return cone;
}

namespace {

/// Optimal level of a balanced binary combine over operands with the given
/// arrival levels: repeatedly join the two earliest operands (each join is
/// one gate level). Equivalent to the Huffman-style tree-height algorithm.
int balanced_tree_level(std::vector<int> levels) {
    if (levels.empty()) return 0;
    std::priority_queue<int, std::vector<int>, std::greater<>> heap(levels.begin(), levels.end());
    while (heap.size() > 1) {
        const int a = heap.top();
        heap.pop();
        const int b = heap.top();
        heap.pop();
        heap.push(std::max(a, b) + 1);
    }
    return heap.top();
}

int sop_tree_level_impl(const Sop& sop, const std::vector<int>& fanin_levels) {
    if (sop.empty()) return 0;  // constant 0
    std::vector<int> cube_levels;
    cube_levels.reserve(sop.num_cubes());
    for (const auto& cube : sop.cubes()) {
        std::vector<int> lit_levels;
        for (int v = 0; v < sop.num_vars(); ++v)
            if (cube.has_literal(v)) lit_levels.push_back(fanin_levels[static_cast<std::size_t>(v)]);
        cube_levels.push_back(balanced_tree_level(std::move(lit_levels)));
    }
    return balanced_tree_level(std::move(cube_levels));
}

}  // namespace

int Network::sop_level_of(const Sop& on, const Sop& off, const std::vector<int>& fanin_levels) {
    return std::min(sop_tree_level_impl(on, fanin_levels), sop_tree_level_impl(off, fanin_levels));
}

int Network::sop_tree_level(const Sop& sop, const std::vector<int>& fanin_levels) {
    return sop_tree_level_impl(sop, fanin_levels);
}

int Network::sop_level_of(const TruthTable& tt, const std::vector<int>& fanin_levels) {
    return sop_level_of(minimum_sop(tt), minimum_sop(~tt), fanin_levels);
}

std::vector<int> Network::compute_sop_levels() const {
    std::vector<int> level(nodes_.size(), 0);
    for (std::uint32_t id = 1; id < nodes_.size(); ++id) {
        if (!is_internal(id)) continue;
        ensure_sops(id);
        std::vector<int> fl;
        fl.reserve(nodes_[id].fanins.size());
        for (const auto f : nodes_[id].fanins) fl.push_back(level[f]);
        level[id] = sop_level_of(nodes_[id].on, nodes_[id].off, fl);
    }
    return level;
}

int Network::sop_depth() const {
    const auto level = compute_sop_levels();
    int d = 0;
    for (const auto& po : pos_) d = std::max(d, level[po.node]);
    return d;
}

std::vector<std::uint32_t> Network::critical_fanins(std::uint32_t node,
                                                    const std::vector<int>& levels) const {
    LLS_REQUIRE(is_internal(node));
    ensure_sops(node);
    const auto& fanins = nodes_[node].fanins;
    std::vector<int> fl;
    fl.reserve(fanins.size());
    for (const auto f : fanins) fl.push_back(levels[f]);
    const int base = sop_level_of(nodes_[node].on, nodes_[node].off, fl);

    std::vector<std::uint32_t> critical;
    for (std::size_t i = 0; i < fanins.size(); ++i) {
        // Fanin i is critical if even reducing every *other* fanin to level 0
        // cannot reduce the node's level: then reducing fanin i is necessary.
        std::vector<int> relaxed(fl.size(), 0);
        relaxed[i] = fl[i];
        const int best_without_i = sop_level_of(nodes_[node].on, nodes_[node].off, relaxed);
        if (best_without_i >= base) critical.push_back(fanins[i]);
    }
    return critical;
}

Network Network::from_aig(const Aig& aig, int cut_size, int max_cuts) {
    static MetricTimer& clustering_timer = Metrics::global().timer("network.clustering");
    const ScopedTimer timer_scope(clustering_timer);
    const CutEnumerator cuts(aig, cut_size, max_cuts);

    // Depth-oriented best-cut choice per AND node.
    constexpr int kInf = std::numeric_limits<int>::max() / 2;
    std::vector<int> depth(aig.num_nodes(), 0);
    std::vector<int> best_cut(aig.num_nodes(), -1);
    for (std::uint32_t id = 1; id < aig.num_nodes(); ++id) {
        if (!aig.is_and(id)) continue;
        int best_depth = kInf;
        std::size_t best_leaves = 0;
        const auto& node_cuts = cuts.cuts(id);
        for (int ci = 0; ci < static_cast<int>(node_cuts.size()); ++ci) {
            const auto& c = node_cuts[ci];
            if (c.leaves.size() == 1 && c.leaves[0] == id) continue;  // trivial cut
            int d = 0;
            for (const auto l : c.leaves) d = std::max(d, depth[l] + 1);
            if (d < best_depth || (d == best_depth && c.leaves.size() < best_leaves)) {
                best_depth = d;
                best_leaves = c.leaves.size();
                best_cut[id] = ci;
            }
        }
        LLS_ENSURE(best_cut[id] >= 0);
        depth[id] = best_depth;
    }

    // Select the cover: walk back from the POs over chosen cuts.
    std::vector<char> required(aig.num_nodes(), 0);
    std::vector<std::uint32_t> stack;
    for (std::size_t o = 0; o < aig.num_pos(); ++o) stack.push_back(aig.po(o).node());
    while (!stack.empty()) {
        const auto id = stack.back();
        stack.pop_back();
        if (required[id]) continue;
        required[id] = 1;
        if (!aig.is_and(id)) continue;
        for (const auto l : cuts.cuts(id)[static_cast<std::size_t>(best_cut[id])].leaves)
            stack.push_back(l);
    }

    Network net;
    std::vector<std::uint32_t> map(aig.num_nodes(), 0);
    for (std::size_t i = 0; i < aig.num_pis(); ++i) map[aig.pi(i)] = net.add_pi(aig.pi_name(i));
    for (std::uint32_t id = 1; id < aig.num_nodes(); ++id) {
        if (!required[id] || !aig.is_and(id)) continue;
        const auto& cut = cuts.cuts(id)[static_cast<std::size_t>(best_cut[id])];
        std::vector<std::uint32_t> fanins;
        fanins.reserve(cut.leaves.size());
        for (const auto l : cut.leaves) fanins.push_back(map[l]);
        map[id] = net.add_node(std::move(fanins), cut.tt);
    }
    for (std::size_t o = 0; o < aig.num_pos(); ++o) {
        const AigLit po = aig.po(o);
        net.add_po(map[po.node()], po.complemented(), aig.po_name(o));
    }
    return net;
}

Aig Network::to_aig_with_map(std::vector<AigLit>* node_map) const {
    Aig aig;
    AigLevelTracker levels(aig);
    std::vector<AigLit> map(nodes_.size(), AigLit::constant(false));
    for (std::size_t i = 0; i < pis_.size(); ++i) map[pis_[i]] = aig.add_pi(pi_names_[i]);
    for (std::uint32_t id = 1; id < nodes_.size(); ++id) {
        if (!is_internal(id)) continue;
        std::vector<AigLit> fanin_lits;
        fanin_lits.reserve(nodes_[id].fanins.size());
        for (const auto f : nodes_[id].fanins) fanin_lits.push_back(map[f]);
        // Arrival-aware instantiation: node functions sit on reconstructed
        // critical paths, so the SOP trees must respect fanin skew (this is
        // the AIG realization of the SOP-aware level metric).
        map[id] = build_truth_table_timed(aig, nodes_[id].tt, fanin_lits, levels);
    }
    for (const auto& po : pos_) {
        const AigLit lit = po.complemented ? !map[po.node] : map[po.node];
        aig.add_po(lit, po.name);
    }
    if (node_map) *node_map = map;
    return aig;
}

Aig Network::to_aig() const { return to_aig_with_map(nullptr).cleanup(); }

Aig Network::to_aig_area() const {
    Aig aig;
    std::vector<AigLit> map(nodes_.size(), AigLit::constant(false));
    for (std::size_t i = 0; i < pis_.size(); ++i) map[pis_[i]] = aig.add_pi(pi_names_[i]);
    for (std::uint32_t id = 1; id < nodes_.size(); ++id) {
        if (!is_internal(id)) continue;
        std::vector<AigLit> fanin_lits;
        fanin_lits.reserve(nodes_[id].fanins.size());
        for (const auto f : nodes_[id].fanins) fanin_lits.push_back(map[f]);
        map[id] = build_truth_table(aig, nodes_[id].tt, fanin_lits);
    }
    for (const auto& po : pos_) {
        const AigLit lit = po.complemented ? !map[po.node] : map[po.node];
        aig.add_po(lit, po.name);
    }
    return aig.cleanup();
}

std::vector<Signature> Network::simulate(const SimPatterns& patterns) const {
    LLS_REQUIRE(patterns.num_pis() == pis_.size());
    const std::size_t words = patterns.num_words();
    std::vector<Signature> sigs(nodes_.size(), Signature(words, 0));
    for (std::size_t i = 0; i < pis_.size(); ++i) sigs[pis_[i]] = patterns.pi_bits(i);

    for (std::uint32_t id = 1; id < nodes_.size(); ++id) {
        if (!is_internal(id)) continue;
        sigs[id] = eval_node_signature(id, sigs, patterns.num_patterns());
    }
    return sigs;
}

Signature Network::eval_node_signature(std::uint32_t node, const std::vector<Signature>& sigs,
                                       std::size_t num_patterns) const {
    LLS_REQUIRE(is_internal(node));
    const auto& n = nodes_[node];
    const std::size_t words = words_for_bits(num_patterns);
    Signature out(words, 0);
    const std::size_t k = n.fanins.size();
    // Evaluate the truth table word-by-word: assemble the minterm index per
    // pattern from the fanin signatures.
    for (std::size_t w = 0; w < words; ++w) {
        std::uint64_t out_word = 0;
        const std::size_t base = w * 64;
        const std::size_t limit = std::min<std::size_t>(64, num_patterns - base);
        for (std::size_t b = 0; b < limit; ++b) {
            std::uint32_t minterm = 0;
            for (std::size_t f = 0; f < k; ++f)
                minterm |= static_cast<std::uint32_t>((sigs[n.fanins[f]][w] >> b) & 1) << f;
            if (n.tt.get_bit(minterm)) out_word |= 1ULL << b;
        }
        out[w] = out_word;
    }
    return out;
}

std::uint32_t Network::duplicate_cone(std::uint32_t node, std::vector<std::uint32_t>* mapping) {
    const auto cone = cone_of(node);
    std::vector<std::uint32_t> map(nodes_.size(), 0);
    for (std::uint32_t id = 0; id < nodes_.size(); ++id) map[id] = id;
    for (const auto id : cone) {
        std::vector<std::uint32_t> fanins;
        fanins.reserve(nodes_[id].fanins.size());
        for (const auto f : nodes_[id].fanins) fanins.push_back(map[f]);
        map[id] = add_node(std::move(fanins), nodes_[id].tt);
    }
    if (mapping) *mapping = map;
    return map[node];
}

}  // namespace lls
