#include "sim/simulation.hpp"

#include <algorithm>

#include "common/bitops.hpp"

namespace lls {

SimPatterns SimPatterns::exhaustive(std::size_t num_pis) {
    LLS_REQUIRE(num_pis <= kMaxExhaustivePis);
    SimPatterns p;
    p.num_patterns_ = std::size_t{1} << num_pis;
    p.words_ = words_for_bits(p.num_patterns_);
    p.exhaustive_ = true;
    p.pi_bits_.resize(num_pis);
    for (std::size_t i = 0; i < num_pis; ++i) {
        auto& bits = p.pi_bits_[i];
        bits.assign(p.words_, 0);
        for (std::size_t m = 0; m < p.num_patterns_; ++m)
            if ((m >> i) & 1) bits[m >> 6] |= 1ULL << (m & 63);
    }
    return p;
}

SimPatterns SimPatterns::random(std::size_t num_pis, std::size_t num_patterns, Rng& rng) {
    LLS_REQUIRE(num_patterns >= 64);
    SimPatterns p;
    p.num_patterns_ = num_patterns;
    p.words_ = words_for_bits(num_patterns);
    p.exhaustive_ = false;
    p.pi_bits_.resize(num_pis);
    const std::uint64_t tail = tail_mask(num_patterns);
    for (std::size_t i = 0; i < num_pis; ++i) {
        auto& bits = p.pi_bits_[i];
        bits.resize(p.words_);
        for (auto& w : bits) w = rng.next_u64();
        bits.back() &= tail;
    }
    return p;
}

std::vector<Signature> simulate(const Aig& aig, const SimPatterns& patterns) {
    LLS_REQUIRE(patterns.num_pis() == aig.num_pis());
    const std::size_t words = patterns.num_words();
    std::vector<Signature> sigs(aig.num_nodes(), Signature(words, 0));
    for (std::size_t i = 0; i < aig.num_pis(); ++i) sigs[aig.pi(i)] = patterns.pi_bits(i);
    const std::uint64_t tail = tail_mask(patterns.num_patterns());
    for (std::uint32_t id = 1; id < aig.num_nodes(); ++id) {
        if (!aig.is_and(id)) continue;
        const auto& n = aig.node(id);
        const auto& s0 = sigs[n.fanin0.node()];
        const auto& s1 = sigs[n.fanin1.node()];
        auto& out = sigs[id];
        const std::uint64_t c0 = n.fanin0.complemented() ? ~0ULL : 0ULL;
        const std::uint64_t c1 = n.fanin1.complemented() ? ~0ULL : 0ULL;
        for (std::size_t w = 0; w < words; ++w) out[w] = (s0[w] ^ c0) & (s1[w] ^ c1);
        out.back() &= tail;
    }
    return sigs;
}

Signature literal_signature(const Aig& aig, AigLit lit, const std::vector<Signature>& node_sigs,
                            std::size_t num_patterns) {
    (void)aig;
    Signature s = node_sigs[lit.node()];
    if (lit.complemented()) {
        for (auto& w : s) w = ~w;
        s.back() &= tail_mask(num_patterns);
    }
    return s;
}

TimingSimResult timing_simulate(const Aig& aig, const SimPatterns& patterns,
                                const std::vector<Signature>& node_sigs) {
    TimingSimResult result;
    result.po_arrival.assign(aig.num_pos(),
                             std::vector<std::int32_t>(patterns.num_patterns(), 0));
    std::vector<std::int32_t> arrival(aig.num_nodes(), 0);

    for (std::size_t p = 0; p < patterns.num_patterns(); ++p) {
        const std::size_t word = p >> 6;
        const std::uint64_t bit = 1ULL << (p & 63);
        for (std::uint32_t id = 1; id < aig.num_nodes(); ++id) {
            if (!aig.is_and(id)) continue;
            const auto& n = aig.node(id);
            const bool v0 =
                ((node_sigs[n.fanin0.node()][word] & bit) != 0) != n.fanin0.complemented();
            const bool v1 =
                ((node_sigs[n.fanin1.node()][word] & bit) != 0) != n.fanin1.complemented();
            const std::int32_t a0 = arrival[n.fanin0.node()];
            const std::int32_t a1 = arrival[n.fanin1.node()];
            std::int32_t a;
            if (v0 && v1)
                a = std::max(a0, a1);
            else if (!v0 && !v1)
                a = std::min(a0, a1);
            else
                a = v0 ? a1 : a0;  // the controlling (0-valued) fanin decides
            arrival[id] = a + 1;
        }
        for (std::size_t o = 0; o < aig.num_pos(); ++o) {
            const std::int32_t a = arrival[aig.po(o).node()];
            result.po_arrival[o][p] = a;
            result.max_arrival = std::max(result.max_arrival, a);
        }
    }
    return result;
}

}  // namespace lls
