#pragma once

#include <cstdint>
#include <vector>

#include "aig/aig.hpp"
#include "common/rng.hpp"

namespace lls {

/// A fixed set of input patterns used for bit-parallel simulation.
///
/// Exhaustive pattern sets enumerate all 2^n input combinations (pattern p
/// assigns PI i the bit i of p), making every signature an *exact*
/// characteristic function over the PIs. Random pattern sets are
/// Monte-Carlo samples of the input space; all uses in the synthesis flow
/// treat them as an approximate characteristic function, as the paper
/// permits for the SPCF.
class SimPatterns {
public:
    static constexpr int kMaxExhaustivePis = 14;

    static SimPatterns exhaustive(std::size_t num_pis);
    static SimPatterns random(std::size_t num_pis, std::size_t num_patterns, Rng& rng);

    std::size_t num_pis() const { return pi_bits_.size(); }
    std::size_t num_patterns() const { return num_patterns_; }
    std::size_t num_words() const { return words_; }
    bool is_exhaustive() const { return exhaustive_; }

    const std::vector<std::uint64_t>& pi_bits(std::size_t pi) const { return pi_bits_[pi]; }

    /// Value of PI `pi` under pattern `p`.
    bool pi_value(std::size_t pi, std::size_t p) const {
        return (pi_bits_[pi][p >> 6] >> (p & 63)) & 1;
    }

private:
    std::size_t num_patterns_ = 0;
    std::size_t words_ = 0;
    bool exhaustive_ = false;
    std::vector<std::vector<std::uint64_t>> pi_bits_;
};

/// Per-node simulation signature: bit p of word p/64 is the node's value
/// under pattern p. Complementation of literals is applied by the caller.
using Signature = std::vector<std::uint64_t>;

/// Simulates all nodes; result[i] is node i's signature (uncomplemented).
std::vector<Signature> simulate(const Aig& aig, const SimPatterns& patterns);

/// Signature of a literal given the node signatures.
Signature literal_signature(const Aig& aig, AigLit lit, const std::vector<Signature>& node_sigs,
                            std::size_t num_patterns);

/// Result of floating-mode timing simulation: for each PO and pattern, the
/// length (in AND levels) of the longest *sensitized* path terminating at
/// the PO under that input vector.
struct TimingSimResult {
    std::vector<std::vector<std::int32_t>> po_arrival;  ///< [po][pattern]
    std::int32_t max_arrival = 0;
};

/// Floating-mode per-pattern timing simulation with unit AND delay and free
/// inverters: for an AND gate, if any fanin evaluates to the controlling
/// value 0 the gate settles as soon as the earliest controlling fanin
/// arrives; otherwise it waits for the latest fanin. This is the standard
/// vector-delay model used by the telescopic-unit/timed-supersetting line of
/// work the paper cites for approximate SPCF computation.
TimingSimResult timing_simulate(const Aig& aig, const SimPatterns& patterns,
                                const std::vector<Signature>& node_sigs);

}  // namespace lls
