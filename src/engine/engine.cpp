#include "engine/engine.hpp"

#include <algorithm>
#include <memory>
#include <optional>
#include <unordered_map>
#include <utility>

#include <atomic>

#include <mutex>

#include <thread>

#include "aig/aig_build.hpp"
#include "baseline/restructure.hpp"
#include "bdd/bdd.hpp"
#include "cec/cec.hpp"
#include "common/budget.hpp"
#include "common/error.hpp"
#include "common/fault.hpp"
#include "common/memgov.hpp"
#include "common/stopwatch.hpp"
#include "common/thread_pool.hpp"
#include "engine/memo.hpp"
#include "engine/metrics.hpp"
#include "engine/warm_start.hpp"
#include "exact/rewrite.hpp"
#include "lookahead/decompose.hpp"

namespace lls {

namespace {

/// One round of conventional delay-oriented restructuring (the "existing
/// logic optimization algorithms" the paper's technique complements).
Aig restructure_round(const Aig& aig) {
    RestructureOptions delay_opt;
    delay_opt.delay_oriented = true;
    delay_opt.cut_size = 8;
    return balance(restructure(aig, delay_opt));
}

bool better(const Aig& a, const Aig& b) {
    const int da = a.depth(), db = b.depth();
    return da < db || (da == db && a.count_reachable_ands() < b.count_reachable_ands());
}

/// Fingerprint of every LookaheadParams field `decompose_output` reads. A
/// memo entry is only valid for identical parameters, and the per-cone RNG
/// seed is derived from this fingerprint + the cone's structural hash so
/// that a cone's outcome depends on nothing but (cone, params) — the root
/// of the jobs-invariance guarantee.
std::uint64_t params_fingerprint(const LookaheadParams& p) {
    std::uint64_t h = 0x6c6f6f6b61686561ULL;  // "lookahea"
    h = hash_mix(h, static_cast<std::uint64_t>(p.cut_size));
    h = hash_mix(h, static_cast<std::uint64_t>(p.max_cuts));
    h = hash_mix(h, p.num_random_patterns);
    h = hash_mix(h, p.force_random_patterns);
    h = hash_mix(h, p.seed);
    h = hash_mix(h, static_cast<std::uint64_t>(static_cast<std::int64_t>(p.spcf_slack)));
    h = hash_mix(h, static_cast<std::uint64_t>(p.sat_conflict_limit));
    h = hash_mix(h, p.use_implication_rules);
    h = hash_mix(h, p.secondary_simplification);
    // A non-empty fault plan changes what the evaluations compute, so it
    // must change the memo key; an empty plan adds nothing, keeping every
    // fault-free fingerprint (and so every RNG stream) exactly as before.
    if (!p.fault_plan.empty()) h = hash_mix(h, FaultPlan::parse(p.fault_plan).fingerprint());
    // The per-cone memory quota is deterministic and result-changing (a
    // quota-degraded cone keeps its original structure), so it keys the
    // memo; zero adds nothing, like the empty fault plan. The wall rails
    // (time budget, cone deadline, --mem-budget) stay excluded.
    if (p.cone_mem_bytes != 0) h = hash_mix(h, p.cone_mem_bytes);
    return h;
}

/// Raises the engine.mem.* counters to the governor's cumulative totals.
/// Idempotent ("sync up to total"), serialized so concurrent batch items
/// cannot double-add one delta — safe however many runs share a governor.
void sync_governor_metrics(Metrics& metrics, const MemoryGovernor& governor) {
    static std::mutex mutex;
    const std::lock_guard<std::mutex> lock(mutex);
    const auto sync = [&metrics](const char* name, std::uint64_t total) {
        MetricCounter& counter = metrics.counter(name);
        const std::uint64_t seen = counter.value();
        if (total > seen) counter.add(total - seen);
    };
    sync("engine.mem.charged_bytes", governor.charged_total());
    sync("engine.mem.shed_events", governor.shed_events());
    sync("engine.mem.admission_holds", governor.admission_holds());
}

/// RAII ticket on the governor's batch admission gate; a null governor
/// degrades to a no-op so the batch loop stays unconditional.
class AdmissionGuard {
public:
    explicit AdmissionGuard(MemoryGovernor* governor) : governor_(governor) {
        if (governor_ != nullptr) governor_->admission_acquire();
    }
    ~AdmissionGuard() {
        if (governor_ != nullptr) governor_->admission_release();
    }
    AdmissionGuard(const AdmissionGuard&) = delete;
    AdmissionGuard& operator=(const AdmissionGuard&) = delete;

private:
    MemoryGovernor* governor_;
};

/// Equivalence check with the structural-hash verdict memo in front. Only
/// resolved verdicts are stored; a memo hit returns no counterexample
/// (engine callers only branch on resolved/equivalent). `ctx.cost` meters
/// the SAT work actually performed — a memo hit honestly reports zero,
/// which is why serial-stage CEC work feeds --metrics but is never charged
/// against the deterministic budget (docs/ENGINE.md, "Budget semantics").
/// A hit on a verdict imported from the persistent store is noted against
/// `warm` for the `persist.warm_hits` split.
CecResult check_equivalence_memo(const Aig& a, const Aig& b, std::int64_t conflict_limit,
                                 bool use_cache, const RunContext& ctx = RunContext{},
                                 WarmStart* warm = nullptr) {
    if (!use_cache) return check_equivalence(a, b, conflict_limit, ctx);
    // Not std::minmax: it returns references into the hash() temporaries,
    // which dangle once this statement ends.
    const std::uint64_t ha = a.hash(), hb = b.hash();
    const std::pair<std::uint64_t, std::uint64_t> key{std::min(ha, hb), std::max(ha, hb)};
    if (const auto verdict = cec_memo().get(key)) {
        if (warm) warm->note_cec_hit(key.first, key.second);
        CecResult r;
        r.equivalent = *verdict;
        r.resolved = true;
        return r;
    }
    CecResult r = check_equivalence(a, b, conflict_limit, ctx);
    if (r.resolved) cec_memo().put(key, r.equivalent);
    return r;
}

}  // namespace

DecomposeMemo& decompose_memo() {
    static DecomposeMemo instance(
        "decompose_memo", /*max_entries_per_shard=*/2048,
        [](const std::pair<std::uint64_t, std::uint64_t>&, const ConeEvaluation& e) {
            std::size_t bytes = sizeof(ConeEvaluation) + DecomposeMemo::kEntryOverheadBytes;
            if (e.outcome)
                bytes += sizeof(DecomposeOutcome) +
                         e.outcome->aig.num_nodes() * memcost::kAigNodeBytes +
                         e.outcome->reconstruction.capacity();
            for (const auto& f : e.faults)
                bytes += sizeof(FaultRecord) + f.stage.capacity() + f.detail.capacity() +
                         f.cone_name.capacity();
            return bytes;
        });
    return instance;
}

void register_memo_governance(MemoryGovernor& governor) {
    governor.add_gauge([] { return decompose_memo().bytes(); });
    governor.add_gauge([] { return cec_memo().bytes(); });
    governor.add_gauge([] { return npn_memo().bytes(); });
    governor.add_gauge([] { return exact_structure_memo().bytes(); });
    governor.add_shed_hook([] { return decompose_memo().shed_half(); });
    governor.add_shed_hook([] { return cec_memo().shed_half(); });
    governor.add_shed_hook([] { return npn_memo().shed_half(); });
    governor.add_shed_hook([] { return exact_structure_memo().shed_half(); });
}

Aig optimize_timing_engine(const Aig& input, const LookaheadParams& params,
                           const EngineOptions& engine, OptimizeStats* stats) {
    Metrics& metrics = Metrics::global();
    MetricCounter& cones_evaluated = metrics.counter("engine.cones_evaluated");
    MetricCounter& cones_improved = metrics.counter("engine.cones_improved");
    MetricCounter& rounds_run = metrics.counter("engine.rounds");
    MetricTimer& evaluate_timer = metrics.timer("engine.evaluate");
    MetricTimer& commit_timer = metrics.timer("engine.commit");
    MetricTimer& restructure_timer = metrics.timer("engine.restructure");
    MetricTimer& sweep_timer = metrics.timer("engine.sat_sweep");
    MetricTimer& cec_timer = metrics.timer("engine.cec");
    MetricTimer& total_timer = metrics.timer("engine.total");
    // Work-unit meters: `work.evaluate.*` is what the deterministic budget
    // charges (memo hits replay the stored cost, so the charge stream is
    // cache-invariant); the serial-stage meters report work actually
    // performed and are observability-only.
    MetricCounter& work_decompositions = metrics.counter("engine.work.evaluate.decompositions");
    MetricCounter& work_eval_conflicts = metrics.counter("engine.work.evaluate.sat_conflicts");
    MetricCounter& work_sweep_conflicts = metrics.counter("engine.work.sat_sweep.sat_conflicts");
    MetricCounter& work_cec_conflicts = metrics.counter("engine.work.cec.sat_conflicts");
    MetricCounter& budget_stops = metrics.counter("engine.budget_exhausted");
    MetricCounter& wall_clock_stops = metrics.counter("engine.wall_clock_interrupts");
    MetricCounter& fault_records = metrics.counter("engine.fault.records");
    MetricCounter& fault_recovered = metrics.counter("engine.fault.recovered");
    MetricCounter& fault_degraded = metrics.counter("engine.fault.degraded");
    MetricCounter& quota_degrades = metrics.counter("engine.mem.quota_degrades");
    MetricCounter& deadline_cancels = metrics.counter("engine.cancel.deadline_cancelled");
    MetricCounter& shutdown_stops = metrics.counter("engine.cancel.shutdowns");
    const ScopedTimer total_scope(total_timer);
    metrics.counter("engine.runs").add();

    // The calling thread participates in parallel_for, so a pool of
    // jobs - 1 workers applies exactly `jobs` threads to the cone fan-out.
    // Under two-level scheduling the run instead publishes its fan-out to
    // the caller-owned shared pool (batch mode), where freed workers from
    // completed sibling items pick it up.
    const int jobs = std::max(1, engine.jobs);
    std::optional<ThreadPool> own_pool;
    if (!engine.shared_pool) own_pool.emplace(static_cast<std::size_t>(jobs - 1));
    ThreadPool& pool = engine.shared_pool ? *engine.shared_pool : *own_pool;
    MetricCounter& steal_donated = metrics.counter("engine.steal.donated_ranges");
    MetricCounter& steal_stolen = metrics.counter("engine.steal.stolen_indices");
    // A malformed plan is an entry error, raised before any work starts.
    const FaultPlan fault_plan = FaultPlan::parse(params.fault_plan);
    // Run-entry fault site: `oom@run` (or any kind at site "run") fires
    // here, before any per-cone work — in batch mode the exception crosses
    // the item boundary, proving a run-level allocation failure degrades
    // that item to `failed` without tearing down its siblings.
    FaultContext(&fault_plan, /*rung=*/0).check("run", "engine");
    const std::uint64_t fingerprint = params_fingerprint(params);

    // Master RNG for the *serial* stages (SAT sweeping). Candidate
    // evaluation never draws from it: each cone gets its own generator
    // seeded from (params fingerprint, cone hash), so the fan-out order —
    // and therefore the job count — cannot influence any outcome.
    Rng rng(params.seed);
    const Aig original = input.cleanup();

    // Run-wide shared BDD manager (the substrate of the rung-2 exact
    // verification): one concurrency-safe manager every worker builds
    // into, so identical subgraphs are constructed once per run instead of
    // once per cone per worker. Sized to the full pool cap — exhaustion is
    // a safety rail, not a routine boundary, and the exact-verify path
    // falls back to a private manager when it fires. Circuits beyond the
    // manager's variable-packing range simply run without one — exactly
    // the inputs whose cones exact verification could never build anyway.
    // Batch mode hands every item the same externally owned manager
    // (engine.shared_bdd_manager), so parallel items reuse each other's
    // subgraphs instead of each building a private run-wide pool.
    std::shared_ptr<BddManager> own_shared_bdd;
    BddManager* shared_bdd = nullptr;
    if (engine.shared_bdd) {
        if (engine.shared_bdd_manager != nullptr &&
            original.num_pis() <= static_cast<std::size_t>(engine.shared_bdd_manager->num_vars())) {
            shared_bdd = engine.shared_bdd_manager;
        } else if (original.num_pis() < (std::size_t{1} << 20)) {
            own_shared_bdd = std::make_shared<BddManager>(static_cast<int>(original.num_pis()),
                                                          /*node_limit=*/std::size_t{1} << 22);
            shared_bdd = own_shared_bdd.get();
            // A run-private shared manager reports its arena to the Tier-2
            // rail (an externally owned one was bound by its owner — the
            // batch driver or the CLI — binding it again would double-count).
            if (engine.governor != nullptr) own_shared_bdd->bind_governor(engine.governor);
        }
    }

    // Deterministic work budget: charged only at serial points with the
    // per-cone costs of each round's evaluations, so `budget.exhausted()`
    // is a pure function of work performed — identical on every thread
    // schedule. The wall-clock rail stays as a nondeterministic emergency
    // stop; once it fires the in-flight round is discarded (partially
    // evaluated rounds are never committed) and the run is flagged.
    WorkBudget budget(params.work_budget);
    Stopwatch wall_clock;
    std::atomic<bool> wall_clock_fired{false};
    // Process/batch-level cooperative cancellation. The serial stages run
    // under this scope (token only — the per-cone watchdog is armed inside
    // each evaluation), so a SIGTERM reaches the polls in SAT sweeping and
    // CEC too; the Cancelled error it raises is caught around the passes
    // below and the best verified circuit so far is returned.
    auto shutdown_requested = [&]() {
        return engine.cancel != nullptr && engine.cancel->requested();
    };
    const CancelScope serial_cancel_scope(engine.cancel, nullptr);
    // Context of the *serial* stages (SAT sweeping, CEC): observability
    // cost sink plus the shutdown token, never a deadline or executor —
    // serial-stage work is uncharged and single-threaded by design.
    auto serial_context = [&](WorkCost& cost) {
        RunContext ctx;
        ctx.cost = &cost;
        ctx.cancel = engine.cancel;
        ctx.metrics = &metrics;
        // Serial-stage solvers report arena bytes to the Tier-2 rail but
        // never carry a Tier-1 quota — serial work is uncharged by design.
        ctx.governor = engine.governor;
        return ctx;
    };
    auto wall_clock_expired = [&]() {
        if (wall_clock_fired.load(std::memory_order_relaxed)) return true;
        if (params.time_budget_seconds > 0.0 &&
            wall_clock.elapsed_seconds() > params.time_budget_seconds) {
            wall_clock_fired.store(true, std::memory_order_relaxed);
            return true;
        }
        return false;
    };

    OptimizeStats local;
    local.initial_depth = original.depth();
    local.initial_ands = original.count_reachable_ands();
    const std::size_t and_budget = 8 * std::max<std::size_t>(local.initial_ands, 64);

    Aig best = original;

    // Each iteration applies one level of lookahead decomposition to every
    // critical output, then (optionally) rounds of conventional
    // restructuring that flatten the freshly built window/mux logic — the
    // step that turns iterated single-level decompositions into the
    // prefix-style trees of the paper's Eqn. 2. An iteration that keeps the
    // depth flat is tolerated for a bounded number of rounds (the rewrite
    // into window form often pays off only once a later round flattens the
    // nested windows); the best circuit seen anywhere is what is returned.
    // Above this size, SAT sweeping and CEC run per *pass* instead of per
    // iteration (every per-cone decomposition is CEC-verified regardless,
    // and the returned circuit is always verified against the input).
    constexpr std::size_t kPerIterationCheckLimit = 1500;

    // Evaluation of one candidate: pure function of (current, po, params) —
    // including its work cost and fault history, which the memo stores
    // alongside the outcome.
    //
    // The retry ladder runs *inside* the memoized computation. When an
    // exception escapes a rung, the next rung retries the cone under
    // progressively more conservative settings:
    //   rung 0: the caller's params;
    //   rung 1: escalated SAT conflict cap (x16);
    //   rung 2: rung 1 + exact BDD verification instead of SAT CEC.
    // Every rung re-seeds the cone RNG identically and charges its work to
    // the evaluation's cost, so the ladder — like the fault injection that
    // exercises it — is a pure function of (cone, params): bit-identical
    // across job counts, and replayed verbatim on a memo hit. A cone whose
    // last rung still faults degrades to "no improvement" (the commit keeps
    // its original structure) with `recovered = false` in the record.
    auto evaluate_cone = [&](const Aig& current, std::size_t po) -> ConeEvaluation {
        const Aig cone = extract_cone(current, po);
        const std::uint64_t cone_hash = cone.hash();
        auto compute = [&]() -> ConeEvaluation {
            cones_evaluated.add();
            // Watchdog: arm the per-cone deadline (when configured) and
            // expose the shutdown token to every poll site this evaluation
            // reaches — the SAT solve loop, BDD node construction, and the
            // decomposition inner loops all poll this scope.
            const Deadline cone_deadline = params.cone_deadline_seconds > 0.0
                                               ? Deadline::after_seconds(
                                                     params.cone_deadline_seconds)
                                               : Deadline();
            const CancelScope cancel_scope(engine.cancel, &cone_deadline);
            ConeEvaluation evaluation;
            constexpr int kNumRungs = 3;
            static const char* const kRungLabel[kNumRungs] = {"base", "escalated-sat",
                                                              "bdd-exact"};
            FaultRecord record;
            bool faulted = false;
            for (int rung = 0; rung < kNumRungs; ++rung) {
                LookaheadParams rung_params = params;
                if (rung >= 1)
                    rung_params.sat_conflict_limit =
                        std::max<std::int64_t>(params.sat_conflict_limit, 1) * 16;
                const FaultContext fault_context(&fault_plan, rung);
                // Tier-1 quota, fresh per rung: every rung starts from zero
                // so the charge stream — and the exact point an exhaustion
                // fires — is a pure function of (cone, params, rung).
                MemoryQuota quota(params.cone_mem_bytes);
                // The one plumbing path down the decompose -> reduce ->
                // simplify -> cec -> sat stack: deterministic cost sink,
                // fault rung, cancellation sources (mirroring the
                // CancelScope above, so fanned-out work re-installs them on
                // whichever worker runs it), the run-wide BDD manager, and
                // the intra-cone executor for the per-cube SAT don't-care
                // fan-out (third scheduling level).
                RunContext ctx = cone_run_context(evaluation);
                ctx.faults = &fault_context;
                ctx.cancel = engine.cancel;
                ctx.deadline = &cone_deadline;
                ctx.shared_bdd = shared_bdd;
                ctx.exact_verify = rung == 2;
                ctx.metrics = &metrics;
                ctx.executor = pool.size() > 0 ? &pool : nullptr;
                ctx.intra_cone = engine.intra_cone;
                if (params.cone_mem_bytes != 0) ctx.mem_quota = &quota;
                ctx.governor = engine.governor;
                Rng cone_rng(hash_mix(fingerprint, cone_hash));
                try {
                    if (auto outcome = decompose_output(cone, rung_params, cone_rng, ctx))
                        evaluation.outcome =
                            std::make_shared<const DecomposeOutcome>(std::move(*outcome));
                    if (faulted) {
                        record.retries.push_back(std::string(kRungLabel[rung]) + ": ok");
                        record.recovered = true;
                    }
                    break;
                } catch (const std::exception& e) {
                    const ErrorKind kind = error_kind_of(e);
                    // A shutdown cancellation propagates: the whole round is
                    // about to be discarded, so nothing is recorded or
                    // memoized for this cone — `--resume` re-evaluates it
                    // from scratch, byte-identically.
                    if (kind == ErrorKind::Cancelled && shutdown_requested()) throw;
                    const auto* lls_error = dynamic_cast<const LlsError*>(&e);
                    if (!faulted) {
                        faulted = true;
                        record.kind = kind;
                        record.stage = lls_error && !lls_error->stage().empty()
                                           ? lls_error->stage()
                                           : "evaluate";
                        record.detail = e.what();
                    } else {
                        record.retries.push_back(std::string(kRungLabel[rung]) + ": " +
                                                 error_kind_name(kind));
                    }
                    // A fired cone watchdog (or an injected `cancel` fault
                    // exercising its path) ends the ladder immediately:
                    // retrying under an already-expired deadline cannot
                    // complete, and the outcome depends on wall clock, so
                    // the evaluation is flagged to keep it out of the memo.
                    if (kind == ErrorKind::Cancelled) {
                        evaluation.timing_dependent = true;
                        break;
                    }
                    // Tier-1 quota exhaustion also ends the ladder — the
                    // escalated rungs only *grow* the footprint, so under
                    // the same per-rung quota they deterministically
                    // re-fail. Unlike a deadline this is a pure function of
                    // (cone, params): the evaluation memoizes, and the cone
                    // can never be reported as recovered.
                    if (lls_error != nullptr && lls_error->stage() == kMemgovStage) break;
                }
            }
            if (faulted) evaluation.faults.push_back(std::move(record));
            return evaluation;
        };
        if (!engine.use_result_cache) return compute();
        // Explicit get/put instead of get_or_compute so a hit on an entry
        // the persistent store imported can be metered as a warm hit.
        const std::pair<std::uint64_t, std::uint64_t> key{cone_hash, fingerprint};
        if (auto cached = decompose_memo().get(key)) {
            if (engine.warm_start) engine.warm_start->note_decompose_hit(cone_hash, fingerprint);
            return std::move(*cached);
        }
        ConeEvaluation value = compute();
        // Timing-dependent (deadline-cancelled) evaluations are a function
        // of wall clock, not of (cone, params): never memoize them.
        if (!value.timing_dependent) decompose_memo().put(key, value);
        return value;
    };

    auto run_decomposition_loop = [&](Aig current) {
        int plateau = 0;
        constexpr int kMaxPlateau = 2;
        bool touched = false;
        for (int iter = 0; iter < params.max_iterations && !budget.exhausted(); ++iter) {
            if (wall_clock_expired() || shutdown_requested()) break;
            const int depth = current.depth();
            if (depth < 2) break;
            const auto levels = current.compute_levels();

            // Gather the timing-critical POs: one evaluation task per
            // distinct driver node (a complemented sibling PO reuses the
            // result with an inverted output), keyed to the first PO that
            // references the driver.
            struct ConeTask {
                std::size_t po;
            };
            std::vector<ConeTask> tasks;
            std::unordered_map<std::uint32_t, std::size_t> driver_task;
            for (std::size_t o = 0; o < current.num_pos(); ++o) {
                const AigLit driver = current.po(o);
                if (levels[driver.node()] != depth) continue;
                if (driver_task.emplace(driver.node(), tasks.size()).second)
                    tasks.push_back({o});
            }

            // Fan the candidate evaluations across the workers. Workers
            // only read `current` (cone extraction copies what they need)
            // and build private cones, simulators, and SAT solvers. The
            // work budget is never consulted here — every admitted task
            // runs to completion, so the set of evaluated cones cannot
            // depend on the schedule. Only the wall-clock rail may abandon
            // a round, and then the whole round is discarded below.
            std::vector<ConeEvaluation> evaluations(tasks.size());
            {
                const ScopedTimer evaluate_scope(evaluate_timer);
                // On a shared pool this range is *donated*: the helper
                // tasks land in the batch-wide queue where any freed
                // worker can drain them. An index executed by a thread
                // other than this item's owner is a stolen index —
                // observability only, never part of the result.
                const bool donated =
                    engine.shared_pool != nullptr && pool.size() > 0 && tasks.size() > 1;
                if (donated) steal_donated.add();
                const std::thread::id owner = std::this_thread::get_id();
                pool.parallel_for(0, tasks.size(), [&](std::size_t i) {
                    if (donated && std::this_thread::get_id() != owner) steal_stolen.add();
                    // Stop dispatching: tasks that have not started yet are
                    // skipped outright once a shutdown is requested (the
                    // round below is discarded anyway).
                    if (wall_clock_expired() || shutdown_requested()) return;
                    // Task-boundary backstop: the retry ladder contains
                    // faults inside the evaluation, so anything arriving
                    // here escaped outside it (cone extraction, the memo
                    // itself, allocation). The cone degrades to "keep
                    // original structure" and the round continues.
                    try {
                        evaluations[i] = evaluate_cone(current, tasks[i].po);
                    } catch (const std::exception& e) {
                        // In-flight shutdown cancellation: leave the slot
                        // empty, no fault record — the round is discarded.
                        if (error_kind_of(e) == ErrorKind::Cancelled && shutdown_requested())
                            return;
                        ConeEvaluation degraded;
                        FaultRecord record;
                        record.kind = error_kind_of(e);
                        const auto* lls_error = dynamic_cast<const LlsError*>(&e);
                        record.stage = lls_error && !lls_error->stage().empty()
                                           ? lls_error->stage()
                                           : "evaluate";
                        record.detail = e.what();
                        degraded.faults.push_back(std::move(record));
                        evaluations[i] = std::move(degraded);
                    }
                });
            }
            // Wall-clock interruption or shutdown: the partially evaluated
            // round is discarded — never charged, never committed — so a
            // resumed run retraces the uninterrupted trajectory exactly.
            if (wall_clock_fired.load(std::memory_order_relaxed) || shutdown_requested()) break;

            // Charge this round's deterministic cost, in task order, at a
            // serial point. The round is fully evaluated by now and will be
            // fully committed; exhaustion takes effect before the *next*
            // round starts.
            {
                WorkCost round_cost;
                for (const auto& evaluation : evaluations) round_cost += evaluation.cost;
                budget.charge(round_cost);
                work_decompositions.add(round_cost.decompositions);
                work_eval_conflicts.add(round_cost.sat_conflicts);
            }

            // Round boundary: push the memo entries this round created to
            // the persistent store. Serial point, after the charge — a
            // publication failure is contained in the store and cannot
            // perturb the budget stream or the round's results.
            if (engine.warm_start && engine.use_result_cache) engine.warm_start->flush_round();

            // Report contained faults at the same serial point, in task
            // order, stamping each record with its cone — deterministic for
            // every job count, memo hits included.
            for (std::size_t i = 0; i < tasks.size(); ++i) {
                for (FaultRecord record : evaluations[i].faults) {
                    record.cone = static_cast<int>(tasks[i].po);
                    record.cone_name = current.po_name(tasks[i].po);
                    fault_records.add();
                    if (record.recovered) fault_recovered.add();
                    else fault_degraded.add();
                    if (record.kind == ErrorKind::Cancelled) {
                        ++local.deadline_cancelled;
                        deadline_cancels.add();
                    }
                    if (record.stage == kMemgovStage && !record.recovered) {
                        ++local.quota_degraded;
                        quota_degrades.add();
                    }
                    local.faults.push_back(std::move(record));
                }
            }

            // Serial commit in PO order: rebuild the circuit output by
            // output, splicing in the verified candidates. The order is
            // fixed, so the result is identical for every job count.
            Aig next;
            int improved_outputs = 0;
            {
                const ScopedTimer commit_scope(commit_timer);
                std::vector<AigLit> pi_map;
                pi_map.reserve(current.num_pis());
                for (std::size_t i = 0; i < current.num_pis(); ++i)
                    pi_map.push_back(next.add_pi(current.pi_name(i)));
                const auto original_pos = append_aig(next, current, pi_map);

                // Literal of the *uncomplemented* driver function per task,
                // valid once the task's outcome has been appended.
                std::vector<AigLit> task_base(tasks.size());
                std::vector<bool> task_appended(tasks.size(), false);
                for (std::size_t o = 0; o < current.num_pos(); ++o) {
                    AigLit po_lit = original_pos[o];
                    const AigLit driver = current.po(o);
                    const auto it = levels[driver.node()] == depth
                                        ? driver_task.find(driver.node())
                                        : driver_task.end();
                    if (it != driver_task.end() && evaluations[it->second].outcome) {
                        const std::size_t t = it->second;
                        const DecomposeOutcome& outcome = *evaluations[t].outcome;
                        if (!task_appended[t]) {
                            const auto new_outs = append_aig(next, outcome.aig, pi_map);
                            const bool first_complemented =
                                current.po(tasks[t].po).complemented();
                            task_base[t] = first_complemented ? !new_outs[0] : new_outs[0];
                            task_appended[t] = true;
                            local.log.push_back(
                                "iter " + std::to_string(iter) + " po " +
                                current.po_name(tasks[t].po) + ": depth " +
                                std::to_string(outcome.old_depth) + " -> " +
                                std::to_string(outcome.new_depth) + " (" +
                                std::to_string(outcome.num_windows) + " windows, " +
                                outcome.reconstruction + ")");
                        }
                        po_lit = driver.complemented() ? !task_base[t] : task_base[t];
                        ++improved_outputs;
                    }
                    next.add_po(po_lit, current.po_name(o));
                }
            }

            Aig candidate = next.cleanup();
            if (params.baseline_preoptimize) {
                const ScopedTimer restructure_scope(restructure_timer);
                for (int r = 0; r < 10; ++r) {
                    Aig restructured = restructure_round(candidate);
                    if (restructured.depth() >= candidate.depth()) break;
                    candidate = std::move(restructured);
                }
            }
            const bool small = candidate.count_reachable_ands() <= kPerIterationCheckLimit;
            if (params.area_recovery && small) {
                const ScopedTimer sweep_scope(sweep_timer);
                WorkCost sweep_cost;
                candidate = sat_sweep(candidate, rng, /*conflict_limit=*/2000,
                                      /*num_patterns=*/1024, /*depth_aware=*/true,
                                      serial_context(sweep_cost));
                work_sweep_conflicts.add(sweep_cost.sat_conflicts);
            }

            const int candidate_depth = candidate.depth();
            if (candidate_depth > depth) break;  // regression: keep the best seen
            if (candidate_depth == depth) {
                if (improved_outputs == 0 || ++plateau > kMaxPlateau) break;
            } else {
                plateau = 0;
            }
            if (candidate.count_reachable_ands() > and_budget) break;  // runaway duplication

            if (params.verify_each_iteration && small) {
                const ScopedTimer cec_scope(cec_timer);
                WorkCost cec_cost;
                const CecResult cec =
                    check_equivalence_memo(candidate, current, /*conflict_limit=*/1000000,
                                           engine.use_result_cache, serial_context(cec_cost),
                                           engine.warm_start);
                work_cec_conflicts.add(cec_cost.sat_conflicts);
                if (!cec.resolved || !cec.equivalent) {
                    // A failed or unresolved check means this round cannot
                    // be trusted; keep the last verified circuit.
                    local.verified = local.verified && cec.resolved;
                    break;
                }
            }

            local.outputs_decomposed += improved_outputs;
            ++local.iterations;
            touched = true;
            current = std::move(candidate);
            if (better(current, best)) best = current;
        }

        // Pass-level area recovery and verification for circuits that were
        // too large for per-iteration checks.
        if (touched && best.count_reachable_ands() > kPerIterationCheckLimit) {
            if (params.area_recovery) {
                const ScopedTimer sweep_scope(sweep_timer);
                WorkCost sweep_cost;
                Aig swept = sat_sweep(best, rng, /*conflict_limit=*/2000, /*num_patterns=*/1024,
                                      /*depth_aware=*/true, serial_context(sweep_cost));
                work_sweep_conflicts.add(sweep_cost.sat_conflicts);
                if (!better(best, swept)) best = std::move(swept);
            }
            if (params.verify_each_iteration) {
                const ScopedTimer cec_scope(cec_timer);
                WorkCost cec_cost;
                const CecResult cec =
                    check_equivalence_memo(best, original, /*conflict_limit=*/4000000,
                                           engine.use_result_cache, serial_context(cec_cost),
                                           engine.warm_start);
                work_cec_conflicts.add(cec_cost.sat_conflicts);
                if (!cec.resolved || !cec.equivalent) {
                    local.verified = local.verified && cec.resolved;
                    best = original;  // cannot trust anything from this pass
                }
            }
        }
    };

    // The passes run under a graceful-shutdown boundary: a Cancelled error
    // raised by a poll in the *serial* stages (SAT sweeping, CEC,
    // restructuring's solver work) unwinds to here and the run returns the
    // best verified circuit so far. Anything else propagates unchanged.
    try {
        // Pass 1: decomposition starting from the raw circuit (deep chains
        // are where the windows are easiest to find).
        run_decomposition_loop(original);

        // Pass 2: conventional restructuring alone, then decomposition on
        // top of it — the paper's deployment ("complements existing logic
        // optimization algorithms"). Whichever pass wins is returned.
        if (params.baseline_preoptimize && !shutdown_requested()) {
            Aig preopt = balance(original);
            if (better(preopt, best)) best = preopt;
            for (int r = 0; r < 10 && !shutdown_requested(); ++r) {
                Aig restructured;
                {
                    const ScopedTimer restructure_scope(restructure_timer);
                    restructured = restructure_round(preopt);
                }
                if (params.area_recovery) {
                    const ScopedTimer sweep_scope(sweep_timer);
                    WorkCost sweep_cost;
                    restructured =
                        sat_sweep(restructured, rng, /*conflict_limit=*/2000,
                                  /*num_patterns=*/1024, /*depth_aware=*/true,
                                  serial_context(sweep_cost));
                    work_sweep_conflicts.add(sweep_cost.sat_conflicts);
                }
                if (restructured.depth() >= preopt.depth()) break;
                preopt = std::move(restructured);
            }
            if (params.verify_each_iteration) {
                const ScopedTimer cec_scope(cec_timer);
                WorkCost cec_cost;
                const CecResult cec =
                    check_equivalence_memo(preopt, original, /*conflict_limit=*/1000000,
                                           engine.use_result_cache, serial_context(cec_cost),
                                           engine.warm_start);
                work_cec_conflicts.add(cec_cost.sat_conflicts);
                if (!cec.resolved || !cec.equivalent) {
                    local.verified = local.verified && cec.resolved;
                    preopt = original;
                }
            }
            if (better(preopt, best)) best = preopt;
            if (preopt.depth() < original.depth() && !shutdown_requested())
                run_decomposition_loop(preopt);
        }
    } catch (const std::exception& e) {
        if (error_kind_of(e) != ErrorKind::Cancelled || !shutdown_requested()) throw;
    }

    local.cancelled = shutdown_requested();
    if (local.cancelled) shutdown_stops.add();
    local.final_depth = best.depth();
    local.final_ands = best.count_reachable_ands();
    local.work_units = budget.spent();
    local.budget_exhausted = budget.exhausted();
    local.wall_clock_interrupted = wall_clock_fired.load(std::memory_order_relaxed);
    if (local.budget_exhausted) budget_stops.add();
    if (local.wall_clock_interrupted) wall_clock_stops.add();
    rounds_run.add(static_cast<std::uint64_t>(local.iterations));
    cones_improved.add(static_cast<std::uint64_t>(local.outputs_decomposed));
    // Indices an exception-aborted fan-out skipped. A run-private pool is
    // exported here; a shared pool is exported once by the batch that owns
    // it (the counter is pool-cumulative).
    if (own_pool && own_pool->aborted_indices() > 0)
        metrics.counter("engine.pool.aborted_indices").add(own_pool->aborted_indices());
    // Time a run-private pool's threads spent waiting idle across this
    // run's fan-outs (cone rounds and intra-cone proof batches) — the cost
    // help-while-waiting exists to shrink. A shared pool's wait is exported
    // by the batch as engine.steal.idle_wait instead.
    if (own_pool && engine.intra_cone && own_pool->size() > 0)
        metrics.timer("engine.intracone.idle_wait").add_nanos(own_pool->idle_wait_nanos());
    if (engine.governor != nullptr) sync_governor_metrics(metrics, *engine.governor);
    if (stats) *stats = local;
    return best;
}

Aig optimize_timing(const Aig& input, const LookaheadParams& params, OptimizeStats* stats) {
    return optimize_timing_engine(input, params, EngineOptions{}, stats);
}

std::vector<BatchOutcome> optimize_timing_batch(
    const std::vector<BatchItem>& items, const LookaheadParams& params,
    const EngineOptions& engine,
    const std::function<void(const BatchOutcome&, std::size_t)>& on_complete) {
    std::vector<BatchOutcome> outcomes(items.size());
    const std::size_t jobs = static_cast<std::size_t>(std::max(1, engine.jobs));
    // Two-level scheduling: every item starts at jobs=1, but with stealing
    // on the items share one pool, so the per-round cone fan-out of an
    // in-flight item is published to the same queue the item-level
    // parallel_for drains. Early in the batch every worker owns a whole
    // circuit; as items complete, freed workers pick up the donated cone
    // ranges of the stragglers instead of idling — which is why the pool
    // keeps all jobs-1 workers even when fewer items than workers remain.
    // With stealing off, the pool is capped at items-1 workers as before
    // (extra workers could never get work).
    const bool steal = engine.steal && jobs > 1 && items.size() > 1;
    ThreadPool pool(steal ? jobs - 1
                          : std::min(jobs - 1, items.empty() ? 0 : items.size() - 1));
    // One batch-wide BDD manager, sized to the widest item: the exact-SPCF
    // and exact-verification BDD work of every parallel item builds into
    // the same concurrency-safe pool, so items share subgraphs the way
    // workers within one run already do. Per-call private-manager fallback
    // on exhaustion is unchanged (verdicts stay deterministic); items
    // beyond the packing range simply run without a shared manager, as
    // before. An externally provided manager is passed through untouched.
    std::optional<BddManager> batch_bdd;
    if (engine.shared_bdd && engine.shared_bdd_manager == nullptr && !items.empty()) {
        std::size_t max_pis = 0;
        for (const auto& item : items) max_pis = std::max(max_pis, item.input.num_pis());
        if (max_pis < (std::size_t{1} << 20))
            batch_bdd.emplace(static_cast<int>(max_pis), /*node_limit=*/std::size_t{1} << 22);
    }
    // The batch owns the shared manager, so the batch binds it to the rail
    // (per-item engines skip externally owned managers to avoid
    // double-counting).
    if (batch_bdd && engine.governor != nullptr) batch_bdd->bind_governor(engine.governor);
    EngineOptions per_item = engine;
    per_item.jobs = 1;  // item-level parallelism still dominates a full batch
    per_item.shared_pool = steal ? &pool : nullptr;
    if (batch_bdd) per_item.shared_bdd_manager = &*batch_bdd;
    std::mutex complete_mutex;
    const auto batch_cancelled = [&engine]() {
        return engine.cancel != nullptr && engine.cancel->requested();
    };
    pool.parallel_for(0, items.size(), [&](std::size_t i) {
        Stopwatch item_clock;
        outcomes[i].name = items[i].name;
        // Graceful shutdown: once the token is requested, items that have
        // not started are never dispatched — they are marked cancelled with
        // their input unchanged so the CLI neither journals nor writes
        // them, and `--resume` re-runs them from scratch.
        if (batch_cancelled()) {
            outcomes[i].cancelled = true;
            outcomes[i].output = items[i].input.cleanup();
            outcomes[i].stats.verified = false;
            Metrics::global().counter("engine.cancel.batch_items_cancelled").add();
            if (on_complete) {
                const std::lock_guard<std::mutex> lock(complete_mutex);
                on_complete(outcomes[i], i);
            }
            return;
        }
        // Tier-2 admission control: while the governor's post-shedding
        // high-water hold is up and other items are in flight, this item
        // waits here instead of adding its footprint — the batch finishes
        // what it started and serializes new dispatch until usage falls
        // below the rail (or everything in flight has drained, which
        // guarantees progress). Purely a *when*, never a *what*: the item
        // computes the same bytes however long it waited.
        const AdmissionGuard admission(engine.governor);
        // Item-level fault boundary: one failing circuit must not abort the
        // other 99. The failed item degrades to its unmodified input — the
        // same keep-original rule the per-cone boundary applies — and is
        // reported through `failed`/`error` and the metrics registry.
        try {
            outcomes[i].output =
                optimize_timing_engine(items[i].input, params, per_item, &outcomes[i].stats);
            // An in-flight shutdown returns gracefully with stats.cancelled;
            // the item is demoted to cancelled (not finished, not failed).
            if (outcomes[i].stats.cancelled) {
                outcomes[i].cancelled = true;
                Metrics::global().counter("engine.cancel.batch_items_cancelled").add();
            }
        } catch (const std::exception& e) {
            if (error_kind_of(e) == ErrorKind::Cancelled && batch_cancelled()) {
                outcomes[i].cancelled = true;
                outcomes[i].output = items[i].input.cleanup();
                outcomes[i].stats = OptimizeStats{};
                outcomes[i].stats.verified = false;
                Metrics::global().counter("engine.cancel.batch_items_cancelled").add();
            } else {
                outcomes[i].failed = true;
                outcomes[i].error = e.what();
                outcomes[i].output = items[i].input.cleanup();
                outcomes[i].stats = OptimizeStats{};
                outcomes[i].stats.verified = false;
                Metrics::global().counter("engine.batch.item_failures").add();
            }
        }
        outcomes[i].seconds = item_clock.elapsed_seconds();
        if (on_complete) {
            const std::lock_guard<std::mutex> lock(complete_mutex);
            on_complete(outcomes[i], i);
        }
    });
    // Pool-lifetime observability: time threads spent waiting idle in
    // parallel_for (the cost stealing exists to shrink) and indices any
    // aborted fan-out skipped.
    if (steal) Metrics::global().timer("engine.steal.idle_wait").add_nanos(pool.idle_wait_nanos());
    if (pool.aborted_indices() > 0)
        Metrics::global().counter("engine.pool.aborted_indices").add(pool.aborted_indices());
    if (engine.governor != nullptr) sync_governor_metrics(Metrics::global(), *engine.governor);
    return outcomes;
}

std::uint64_t lookahead_params_fingerprint(const LookaheadParams& params) {
    return params_fingerprint(params);
}

CacheStatsSnapshot decomposition_cache_stats() { return decompose_memo().stats(); }

void clear_engine_caches() {
    decompose_memo().clear();
    cec_memo().clear();
    npn_memo().clear();
    exact_structure_memo().clear();
}

}  // namespace lls
