#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "aig/aig.hpp"
#include "common/cancel.hpp"
#include "engine/cache.hpp"
#include "lookahead/optimize.hpp"
#include "lookahead/params.hpp"

namespace lls {

class BddManager;
class MemoryGovernor;
class ThreadPool;
class WarmStart;

/// Execution knobs of the concurrent optimization engine. These control
/// *how* the flow runs, never *what* it computes: the result is
/// bit-identical for every `jobs` value, including runs bounded by the
/// deterministic `params.work_budget`. The only escape hatch is the
/// wall-clock safety rail `params.time_budget_seconds`, which is reported
/// as nondeterministic when it fires (see docs/ENGINE.md, "Determinism
/// contract" and "Budget semantics").
struct EngineOptions {
    /// Worker threads used to evaluate per-cone decomposition candidates
    /// (and, in batch mode, to run whole circuits). 1 = serial.
    int jobs = 1;

    /// Consult/populate the process-wide decomposition memo (keyed by cone
    /// structural hash + parameter fingerprint) and the CEC verdict memo.
    bool use_result_cache = true;

    /// Share one concurrency-safe BddManager across the run's workers for
    /// the exact-verification rung (and any other BDD-exact work), instead
    /// of rebuilding identical subgraphs in per-call private managers.
    /// Refs are canonical and the resource boundary falls back to a
    /// private manager, so results match the private-manager baseline on
    /// every run that doesn't exhaust the shared pool mid-verification;
    /// the one divergence is benign and one-sided — a warm shared pool can
    /// complete an exact verify the cold private limit would abandon, so
    /// rung 2 may recover strictly more cones (see docs/ENGINE.md,
    /// "Shared BDD manager"). CLI escape hatch: `lls_opt --shared-bdd
    /// off`.
    bool shared_bdd = true;

    /// Externally owned concurrency-safe BddManager the run should use as
    /// its shared manager instead of creating a private run-wide one. This
    /// is how batch mode routes the exact-SPCF/exact-verification BDD work
    /// of *every* parallel item through one manager: `optimize_timing_batch`
    /// sizes a manager to the widest item and points each per-item engine
    /// at it. The existing per-call private-manager fallback on resource
    /// exhaustion is unchanged, so verdicts stay deterministic. Ignored
    /// when `shared_bdd` is off or the manager cannot pack the circuit's
    /// PIs. Not owned; must outlive the run.
    BddManager* shared_bdd_manager = nullptr;

    /// Fan the per-cube SAT don't-care proofs of secondary simplification
    /// *inside one cone* across the run's pool (the third scheduling level
    /// below batch items and cones). Each proof task encodes a private
    /// solver against the same read-only snapshot and the results are
    /// committed at a serial point in fixed task order, so outputs and
    /// budget charges are byte-identical with this on or off, at every
    /// `jobs` value (docs/ENGINE.md, "Run context & three-level
    /// scheduling"). Escape hatch: `lls_opt --intra-cone off`.
    bool intra_cone = true;

    /// Persistent-store bridge (engine/warm_start.hpp), or nullptr for a
    /// memory-only run. When set (and `use_result_cache` is on), the
    /// engine notes warm hits against the imported entries and flushes
    /// newly computed memo entries to the store at round boundaries.
    /// Imported entries replay their stored WorkCost, so budgeted warm
    /// runs stay bit-identical to cold ones. Not owned.
    WarmStart* warm_start = nullptr;

    /// Externally owned pool to fan each round's cone evaluations across,
    /// instead of a run-private pool sized from `jobs`. This is the
    /// two-level scheduling hook: `optimize_timing_batch` points every
    /// in-flight item at the one batch pool, so the per-round
    /// `parallel_for` publishes its index range to a queue that *freed*
    /// workers — threads whose own items have completed — also drain.
    /// Requires the pool's reentrant `parallel_for` (the round fan-out
    /// runs from inside a pool task). Purely an execution knob: commits
    /// stay serial per item in deterministic cone order, so outputs are
    /// byte-identical with and without a shared pool. Not owned.
    ThreadPool* shared_pool = nullptr;

    /// Batch mode only: donate in-flight items' cone fan-out to freed
    /// workers via a shared pool (see `shared_pool`). Off restores the
    /// pre-stealing schedule — each circuit strictly serial on one worker
    /// — as an escape hatch (`lls_opt --steal off`). Outputs are
    /// byte-identical either way.
    bool steal = true;

    /// Process/batch-level cooperative cancellation (common/cancel.hpp),
    /// or nullptr for none. When the token is requested — the CLI's
    /// SIGTERM/SIGINT handler does this — the engine stops dispatching new
    /// cones and rounds, cancels in-flight evaluations at their next poll,
    /// and returns with `OptimizeStats::cancelled` set; batch mode stops
    /// starting items and marks interrupted ones `BatchOutcome::cancelled`
    /// so they are never journaled or written. Not owned; must outlive the
    /// run.
    const CancelToken* cancel = nullptr;

    /// Tier-2 global memory accountant (common/memgov.hpp), or nullptr for
    /// none. The engine binds it to the run's shared BddManager, keeps it
    /// bound through every solver the run creates (via RunContext), and in
    /// batch mode gates item dispatch on its admission hold. Like
    /// `params.time_budget_seconds` this is a wall rail: crossing the
    /// budget changes *when* caches shed and items dispatch, never what any
    /// committed result contains — shedding only evicts pure memos and
    /// admission only delays starts — so outputs stay byte-identical; only
    /// the `engine.mem.{shed_events,admission_holds}` event counts are
    /// schedule-dependent. Not owned; must outlive the run.
    MemoryGovernor* governor = nullptr;
};

/// The paper's timing-driven flow, executed by the concurrent engine: each
/// round fans the candidate lookahead decompositions of all timing-critical
/// POs across `engine.jobs` workers (every worker owns its cone copy,
/// simulation state, and SAT solvers), then commits the verified winners
/// serially in PO order. `optimize_timing` is this function with the
/// default (serial) EngineOptions.
Aig optimize_timing_engine(const Aig& input, const LookaheadParams& params,
                           const EngineOptions& engine, OptimizeStats* stats = nullptr);

/// One circuit of a batch run.
struct BatchItem {
    std::string name;
    Aig input;
};

struct BatchOutcome {
    std::string name;
    Aig output;
    OptimizeStats stats;
    double seconds = 0.0;
    /// The item's optimization threw past every recovery rung. The batch
    /// keeps going; `output` is the *input circuit unchanged* (the same
    /// degrade-to-original rule the per-cone fault boundary applies), and
    /// `error` carries the diagnostic.
    bool failed = false;
    std::string error;
    /// A batch-level cancellation (SIGTERM/SIGINT token) interrupted this
    /// item. `output` is the unmodified input when the item never started,
    /// or the engine's best verified circuit so far when it was in flight;
    /// either way it must NOT be journaled or written — `--resume` re-runs
    /// the item from scratch, which reproduces the uninterrupted bytes.
    bool cancelled = false;
};

/// Optimizes every item of a batch, running up to `engine.jobs` circuits
/// concurrently. Each item starts serial (circuit-level parallelism
/// dominates while there are more circuits than workers), but with
/// `engine.steal` on the items share one pool: as circuits complete and
/// workers free up, they join the per-round cone fan-out of the items
/// still running, so a batch's skewed tail no longer serializes on its
/// largest circuit (docs/ENGINE.md, "Two-level scheduling"). Commits stay
/// serial per item in deterministic cone order, so outputs are
/// byte-identical across `jobs` values and steal on/off. Outcomes are
/// returned in input order regardless of completion order.
///
/// Any exception escaping one item is contained at the item boundary: the
/// outcome is marked `failed`, its output degrades to the unmodified
/// input, and the remaining items still run.
///
/// `on_complete` (optional) is invoked once per item as it finishes, under
/// an internal mutex (never concurrently), with the finished outcome and
/// its index. This is the checkpoint hook: journaling and output writing
/// happen here so an interrupted batch keeps every finished circuit.
/// Completion *order* follows the thread schedule; anything order-sensitive
/// must key on the index, not the call sequence.
std::vector<BatchOutcome> optimize_timing_batch(
    const std::vector<BatchItem>& items, const LookaheadParams& params,
    const EngineOptions& engine,
    const std::function<void(const BatchOutcome&, std::size_t)>& on_complete = {});

/// The fingerprint of every LookaheadParams field the cone evaluations
/// read (including a non-empty fault plan). This keys the decomposition
/// memo and seeds the per-cone RNGs; batch checkpoints store it so
/// `--resume` only reuses journal entries produced under identical
/// parameters. Throws LlsError{ParseError} if `params.fault_plan` is
/// malformed.
std::uint64_t lookahead_params_fingerprint(const LookaheadParams& params);

/// Stats of the process-wide decomposition memo (tests and --metrics).
CacheStatsSnapshot decomposition_cache_stats();

/// Drops every entry of the engine's process-wide caches (decomposition
/// memo, CEC memo, and the exact-rewrite NPN/structure memos) — what the
/// persistence tests use to simulate a fresh process. Counters are not
/// reset.
void clear_engine_caches();

/// Wires the engine's process-wide memo caches into a Tier-2 governor:
/// registers each cache's `bytes()` as a gauge and its `shed_half()` as a
/// shed hook, so a relief episode halves the decomposition, CEC, NPN, and
/// exact-structure memos before the governor re-checks the budget. Call
/// once per governor, before the run starts (registrations cannot be
/// undone, so the governor must not outlive the process-wide caches —
/// which live forever).
void register_memo_governance(MemoryGovernor& governor);

}  // namespace lls
