#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "tt/truth_table.hpp"

namespace lls {

/// Point-in-time statistics of one process-wide cache.
struct CacheStatsSnapshot {
    std::string name;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t entries = 0;
    std::uint64_t bytes = 0;  ///< estimated resident bytes (sizer-derived)
};

namespace detail {
/// Registers a cache's stats provider with the global registry (cache.cpp),
/// so `all_cache_stats()` and `lls_opt --metrics` see every instance no
/// matter which translation unit created it.
void register_cache(std::function<CacheStatsSnapshot()> provider);
}  // namespace detail

/// Snapshots of every registered cache, in registration order.
std::vector<CacheStatsSnapshot> all_cache_stats();

/// Mixes a value into a 64-bit hash accumulator (splitmix64 finalizer).
inline std::uint64_t hash_mix(std::uint64_t h, std::uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    h ^= (h >> 30);
    h *= 0xbf58476d1ce4e5b9ULL;
    h ^= (h >> 27);
    return h;
}

/// Sharded, mutex-striped memo cache for pure functions of the key.
///
/// Keys are distributed over `kShards` independently locked hash maps, so
/// concurrent lookups from the optimization workers contend only when they
/// collide on a stripe. Each shard is capacity-bounded: when an insert
/// would push a shard past `max_entries_per_shard`, the shard drops half of
/// its entries (in map order — the entries are pure memos, so eviction only
/// costs recomputation, never correctness). Hit/miss/eviction counters are
/// lock-free and the instance registers itself with the global stats
/// registry on construction.
template <typename Key, typename Value, typename Hash = std::hash<Key>>
class ShardedCache {
public:
    static constexpr std::size_t kShards = 16;

    /// Byte estimate of one entry. Must be a pure function of (key, value):
    /// the per-shard byte ledger subtracts the same estimate on eviction
    /// that insertion added, so a sizer that reads mutable global state
    /// would corrupt the accounting.
    using Sizer = std::function<std::size_t(const Key&, const Value&)>;

    /// Flat fallback estimate when no sizer is supplied: the inline footprint
    /// plus an unordered_map node/bucket overhead share.
    static constexpr std::size_t kEntryOverheadBytes = 48;

    explicit ShardedCache(std::string name, std::size_t max_entries_per_shard = 4096,
                          Sizer sizer = {})
        : name_(std::move(name)),
          max_entries_per_shard_(max_entries_per_shard),
          sizer_(std::move(sizer)) {
        if (!sizer_)
            sizer_ = [](const Key&, const Value&) {
                return sizeof(Key) + sizeof(Value) + kEntryOverheadBytes;
            };
        detail::register_cache([this] { return stats(); });
    }

    ShardedCache(const ShardedCache&) = delete;
    ShardedCache& operator=(const ShardedCache&) = delete;

    std::optional<Value> get(const Key& key) {
        Shard& shard = shard_of(key);
        std::lock_guard<std::mutex> lock(shard.mutex);
        const auto it = shard.map.find(key);
        if (it == shard.map.end()) {
            misses_.fetch_add(1, std::memory_order_relaxed);
            return std::nullopt;
        }
        hits_.fetch_add(1, std::memory_order_relaxed);
        return it->second;
    }

    /// Inserts (or overwrites) an entry, evicting half the shard first if
    /// it is full — by entry count, or by its slice of the byte limit when
    /// one is armed.
    void put(const Key& key, Value value) {
        // The ledger always charges the *stored* entry (capacities can
        // differ between a caller's copy and the map's), so insert/erase
        // balance exactly.
        const std::size_t incoming = sizer_(key, value);
        Shard& shard = shard_of(key);
        std::lock_guard<std::mutex> lock(shard.mutex);
        const auto it = shard.map.find(key);
        if (it != shard.map.end()) {
            shard.bytes -= sizer_(it->first, it->second);
            it->second = std::move(value);
            shard.bytes += sizer_(it->first, it->second);
            return;
        }
        const std::size_t byte_limit = byte_limit_.load(std::memory_order_relaxed);
        if (shard.map.size() >= max_entries_per_shard_ ||
            (byte_limit != 0 && shard.bytes + incoming > byte_limit / kShards))
            evict_half_locked(shard);
        const auto inserted = shard.map.emplace(key, std::move(value)).first;
        shard.bytes += sizer_(inserted->first, inserted->second);
    }

    /// Returns the cached value for `key`, computing and inserting it with
    /// `compute()` on a miss. `compute` runs outside the stripe lock, so
    /// two threads racing on the same fresh key may both compute; the first
    /// insert wins and the duplicates are discarded — acceptable for pure
    /// memos, and it keeps long computations from blocking a whole stripe.
    template <typename F>
    Value get_or_compute(const Key& key, F&& compute) {
        if (auto cached = get(key)) return std::move(*cached);
        Value value = compute();
        Shard& shard = shard_of(key);
        {
            std::lock_guard<std::mutex> lock(shard.mutex);
            const auto it = shard.map.find(key);
            if (it != shard.map.end()) return it->second;
        }
        put(key, value);
        return value;
    }

    void clear() {
        for (auto& shard : shards_) {
            std::lock_guard<std::mutex> lock(shard.mutex);
            shard.map.clear();
            shard.bytes = 0;
        }
    }

    /// Estimated resident bytes across all shards (the governor's gauge).
    std::uint64_t bytes() const {
        std::uint64_t total = 0;
        for (auto& shard : shards_) {
            std::lock_guard<std::mutex> lock(shard.mutex);
            total += shard.bytes;
        }
        return total;
    }

    /// Arms (or clears, with 0) a total byte cap: an insert whose shard
    /// would exceed its 1/kShards slice halves that shard first. Lossy by
    /// design — entries are pure memos, so shedding costs recomputation,
    /// never correctness.
    void set_byte_limit(std::size_t limit) {
        byte_limit_.store(limit, std::memory_order_relaxed);
    }

    /// Drops half of every shard (the governor's shed hook), returning the
    /// estimated bytes freed.
    std::size_t shed_half() {
        std::size_t freed = 0;
        for (auto& shard : shards_) {
            std::lock_guard<std::mutex> lock(shard.mutex);
            const std::size_t before = shard.bytes;
            evict_half_locked(shard);
            freed += before - shard.bytes;
        }
        return freed;
    }

    /// Visits every entry, shard by shard, under the stripe locks — the
    /// export hook of the persistent memo store. `fn` must not call back
    /// into this cache (the stripe lock is held) and should be cheap;
    /// concurrent inserts into not-yet-visited shards may or may not be
    /// seen, which is fine for the pure memos this cache holds.
    template <typename F>
    void for_each(F&& fn) const {
        for (const auto& shard : shards_) {
            std::lock_guard<std::mutex> lock(shard.mutex);
            for (const auto& [key, value] : shard.map) fn(key, value);
        }
    }

    CacheStatsSnapshot stats() const {
        CacheStatsSnapshot s;
        s.name = name_;
        s.hits = hits_.load(std::memory_order_relaxed);
        s.misses = misses_.load(std::memory_order_relaxed);
        s.evictions = evictions_.load(std::memory_order_relaxed);
        for (auto& shard : shards_) {
            std::lock_guard<std::mutex> lock(shard.mutex);
            s.entries += shard.map.size();
            s.bytes += shard.bytes;
        }
        return s;
    }

private:
    struct Shard {
        mutable std::mutex mutex;
        std::unordered_map<Key, Value, Hash> map;
        std::size_t bytes = 0;  ///< sizer-estimated bytes of live entries
    };

    Shard& shard_of(const Key& key) { return shards_[Hash{}(key) % kShards]; }

    void evict_half_locked(Shard& shard) {
        const std::size_t target = shard.map.size() / 2;
        while (shard.map.size() > target) {
            const auto victim = shard.map.begin();
            shard.bytes -= sizer_(victim->first, victim->second);
            shard.map.erase(victim);
            evictions_.fetch_add(1, std::memory_order_relaxed);
        }
    }

    std::string name_;
    std::size_t max_entries_per_shard_;
    Sizer sizer_;
    mutable std::array<Shard, kShards> shards_;
    std::atomic<std::size_t> byte_limit_{0};
    std::atomic<std::uint64_t> hits_{0}, misses_{0}, evictions_{0};
};

/// Hash for pair-of-u64 keys (structural-hash pairs, e.g. the CEC memo).
struct U64PairHash {
    std::size_t operator()(const std::pair<std::uint64_t, std::uint64_t>& p) const {
        return static_cast<std::size_t>(hash_mix(hash_mix(0x243f6a8885a308d3ULL, p.first),
                                                 p.second));
    }
};

/// NPN-canonical cache key of a truth table: canonization maps every
/// function of an NPN equivalence class onto one representative, so memos
/// keyed this way are shared across input permutations and polarities.
std::string npn_cache_key(const TruthTable& canonical, int extra = 0);

/// Verdict memo for combinational equivalence checks, keyed by the ordered
/// pair of structural hashes of the two circuits. Only *resolved* checks
/// are memoized (an unresolved check may succeed with a fresh conflict
/// budget). The 128-bit key treats structural-hash equality as identity;
/// see docs/ENGINE.md for the collision discussion.
ShardedCache<std::pair<std::uint64_t, std::uint64_t>, bool, U64PairHash>& cec_memo();

}  // namespace lls
