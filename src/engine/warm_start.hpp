#pragma once

// Bridge between the engine's live memo caches and the persistent on-disk
// store (src/persist/). One WarmStart instance spans a CLI invocation:
//
//   construction  — opens the store, loads every intact shard, decodes the
//                   records, and seeds the live caches (decomposition, CEC,
//                   NPN, exact-structure) before any optimization runs;
//   flush_round() — called by the engine at round boundaries (and safe from
//                   concurrent batch items): exports entries the live
//                   caches gained since the last flush and publishes them
//                   as a new shard;
//   finalize()    — last flush plus shard compaction.
//
// Determinism: imported entries replay their stored WorkCost, so a
// budgeted warm run charges the identical unit stream as the cold run that
// produced the entries — cache state (in-process or on-disk) can never
// move the exhaustion point. Entries whose evaluation contained a fault
// are not exported: recomputing them replays the same faults and cost
// (injection is a pure function of (cone, params)), and the store stays
// free of fault-history state.
//
// The imported key sets are immutable after construction, so the warm-hit
// probes the workers call take no locks.

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_set>
#include <utility>

#include "engine/cache.hpp"
#include "engine/metrics.hpp"
#include "persist/store.hpp"

namespace lls {

class WarmStart {
public:
    /// Opens the store rooted at `dir`, loads it, and seeds the live
    /// caches. Throws LlsError{IoError} only when a *writing* mode cannot
    /// create the directory; every data-level problem (corrupt shards,
    /// undecodable records) is contained in the report.
    WarmStart(std::string dir, persist::StoreMode mode);
    ~WarmStart();

    WarmStart(const WarmStart&) = delete;
    WarmStart& operator=(const WarmStart&) = delete;

    const persist::LoadReport& report() const { return store_.report(); }

    /// Records decoded into the live caches at construction (0 = cold).
    std::size_t imported_records() const { return imported_records_; }

    /// Exports new cache entries and publishes them as a shard. Called at
    /// engine round boundaries; cheap when nothing is new. Publication
    /// failures are contained in the store (retried at the next flush).
    void flush_round();

    /// Final flush + compaction of accumulated shard files.
    void finalize();

    /// Warm-hit probes: the engine calls these on live-cache hits; keys
    /// that came from the store bump `persist.warm_hits`. Lock-free (the
    /// imported sets are frozen after construction).
    void note_decompose_hit(std::uint64_t cone_hash, std::uint64_t params_fp);
    void note_cec_hit(std::uint64_t hash_low, std::uint64_t hash_high);

    /// Estimated resident bytes of the frozen imported-key sets — the
    /// warm-start contribution to the Tier-2 governor's gauges (the live
    /// cache entries themselves are gauged by their caches). Constant after
    /// construction, so safe to poll from any thread.
    std::uint64_t approx_bytes() const {
        constexpr std::uint64_t kSetEntryBytes = 2 * sizeof(std::uint64_t) + 16;
        return (imported_decompose_.size() + imported_cec_.size()) * kSetEntryBytes;
    }

private:
    void import_loaded();

    persist::MemoStore store_;
    std::unordered_set<std::pair<std::uint64_t, std::uint64_t>, U64PairHash> imported_decompose_;
    std::unordered_set<std::pair<std::uint64_t, std::uint64_t>, U64PairHash> imported_cec_;
    std::size_t imported_records_ = 0;
    MetricCounter* warm_hits_ = nullptr;
};

}  // namespace lls
