#include "engine/metrics.hpp"

#include <deque>
#include <mutex>
#include <tuple>

#include "common/json.hpp"
#include "engine/cache.hpp"

namespace lls {

/// Entries live in deques so handles returned to callers stay stable while
/// new names are registered.
struct Metrics::Impl {
    mutable std::mutex mutex;
    std::deque<std::pair<std::string, MetricCounter>> counters;
    std::deque<std::pair<std::string, MetricTimer>> timers;
};

Metrics::Impl& Metrics::impl() const {
    static Impl instance;
    return instance;
}

Metrics& Metrics::global() {
    static Metrics instance;
    return instance;
}

MetricCounter& Metrics::counter(std::string_view name) {
    Impl& i = impl();
    std::lock_guard<std::mutex> lock(i.mutex);
    for (auto& [n, c] : i.counters)
        if (n == name) return c;
    i.counters.emplace_back(std::piecewise_construct, std::forward_as_tuple(name),
                            std::forward_as_tuple());
    return i.counters.back().second;
}

MetricTimer& Metrics::timer(std::string_view name) {
    Impl& i = impl();
    std::lock_guard<std::mutex> lock(i.mutex);
    for (auto& [n, t] : i.timers)
        if (n == name) return t;
    i.timers.emplace_back(std::piecewise_construct, std::forward_as_tuple(name),
                          std::forward_as_tuple());
    return i.timers.back().second;
}

std::vector<Metrics::CounterRow> Metrics::counters() const {
    Impl& i = impl();
    std::lock_guard<std::mutex> lock(i.mutex);
    std::vector<CounterRow> rows;
    rows.reserve(i.counters.size());
    for (const auto& [n, c] : i.counters) rows.push_back({n, c.value()});
    return rows;
}

std::vector<Metrics::TimerRow> Metrics::timers() const {
    Impl& i = impl();
    std::lock_guard<std::mutex> lock(i.mutex);
    std::vector<TimerRow> rows;
    rows.reserve(i.timers.size());
    for (const auto& [n, t] : i.timers) rows.push_back({n, t.total_seconds(), t.samples()});
    return rows;
}

void Metrics::reset() {
    Impl& i = impl();
    std::lock_guard<std::mutex> lock(i.mutex);
    for (auto& [n, c] : i.counters) c.reset();
    for (auto& [n, t] : i.timers) t.reset();
}

void Metrics::report(std::FILE* out) const {
    std::fprintf(out, "-- metrics ------------------------------------------------\n");
    for (const auto& row : counters())
        std::fprintf(out, "  %-32s %12llu\n", row.name.c_str(),
                     static_cast<unsigned long long>(row.value));
    for (const auto& row : timers())
        std::fprintf(out, "  %-32s %11.3fs  (%llu samples)\n", row.name.c_str(),
                     row.total_seconds, static_cast<unsigned long long>(row.samples));
    for (const auto& cache : all_cache_stats())
        std::fprintf(out, "  cache %-26s %llu hits, %llu misses, %llu evictions, %llu entries\n",
                     cache.name.c_str(), static_cast<unsigned long long>(cache.hits),
                     static_cast<unsigned long long>(cache.misses),
                     static_cast<unsigned long long>(cache.evictions),
                     static_cast<unsigned long long>(cache.entries));
}

std::string Metrics::to_json() const {
    // Names come from code today, but nothing enforces that (cache names
    // are arbitrary constructor strings) — always escape.
    std::string json = "{\"counters\":{";
    bool first = true;
    for (const auto& row : counters()) {
        if (!first) json += ',';
        first = false;
        json += '"' + json_escape(row.name) + "\":" + std::to_string(row.value);
    }
    json += "},\"timers\":{";
    first = true;
    for (const auto& row : timers()) {
        if (!first) json += ',';
        first = false;
        json += '"' + json_escape(row.name) + "\":{\"seconds\":" +
                std::to_string(row.total_seconds) +
                ",\"samples\":" + std::to_string(row.samples) + "}";
    }
    json += "},\"caches\":{";
    first = true;
    for (const auto& cache : all_cache_stats()) {
        if (!first) json += ',';
        first = false;
        json += '"' + json_escape(cache.name) + "\":{\"hits\":" + std::to_string(cache.hits) +
                ",\"misses\":" + std::to_string(cache.misses) +
                ",\"evictions\":" + std::to_string(cache.evictions) +
                ",\"entries\":" + std::to_string(cache.entries) + "}";
    }
    json += "}}";
    return json;
}

}  // namespace lls
