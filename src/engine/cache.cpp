#include "engine/cache.hpp"

namespace lls {

namespace {

/// Global registry of cache stats providers. Caches are process-lifetime
/// singletons, so providers never dangle; the mutex only guards the vector
/// itself (registration happens once per cache, snapshots are rare).
struct CacheRegistry {
    std::mutex mutex;
    std::vector<std::function<CacheStatsSnapshot()>> providers;
};

CacheRegistry& registry() {
    static CacheRegistry instance;
    return instance;
}

}  // namespace

namespace detail {

void register_cache(std::function<CacheStatsSnapshot()> provider) {
    auto& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    reg.providers.push_back(std::move(provider));
}

}  // namespace detail

std::vector<CacheStatsSnapshot> all_cache_stats() {
    std::vector<std::function<CacheStatsSnapshot()>> providers;
    {
        auto& reg = registry();
        std::lock_guard<std::mutex> lock(reg.mutex);
        providers = reg.providers;
    }
    std::vector<CacheStatsSnapshot> stats;
    stats.reserve(providers.size());
    for (const auto& p : providers) stats.push_back(p());
    return stats;
}

std::string npn_cache_key(const TruthTable& canonical, int extra) {
    std::string key = std::to_string(canonical.num_vars());
    key += ':';
    key += canonical.to_hex();
    if (extra != 0) {
        key += ':';
        key += std::to_string(extra);
    }
    return key;
}

ShardedCache<std::pair<std::uint64_t, std::uint64_t>, bool, U64PairHash>& cec_memo() {
    static ShardedCache<std::pair<std::uint64_t, std::uint64_t>, bool, U64PairHash> instance(
        "cec_memo", /*max_entries_per_shard=*/8192);
    return instance;
}

}  // namespace lls
