#pragma once

// Batch checkpoint/resume journal.
//
// `lls_opt --batch --checkpoint FILE` appends one journal line per
// completed circuit: the circuit's name, its *input* structural hash, the
// params fingerprint the run used, the hash of the *output* AIGER bytes,
// and the headline stats. Appends follow the flush-and-throw discipline
// (common to the PR-2 file writers): the line is flushed before the batch
// moves on, and a write failure raises LlsError{IoError} instead of
// leaving a silently truncated journal.
//
// `--resume` loads the journal and skips every item whose (name, input
// hash, params fingerprint) triple matches an entry — the circuit was
// already optimized under identical parameters, so its on-disk output is
// already byte-identical to what a fresh run would produce. Items that
// match by name but differ in hash or fingerprint are re-run (the journal
// entry is stale).
//
// Format, line-oriented and human-inspectable:
//   # lls-checkpoint v1
//   <name>\t<input_hash hex>\t<params_fp hex>\t<output_hash hex>\t<depth>\t<ands>\t<failed 0|1>

#include <cstdint>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

namespace lls {

/// One journaled circuit.
struct CheckpointEntry {
    std::string name;
    std::uint64_t input_hash = 0;     ///< structural hash of the input AIG
    std::uint64_t params_fingerprint = 0;
    std::uint64_t output_hash = 0;    ///< FNV-1a of the output AIGER bytes
    int final_depth = 0;
    std::size_t final_ands = 0;
    bool failed = false;              ///< the item's optimization faulted
};

/// FNV-1a over arbitrary bytes — the journal's output-bytes hash.
inline std::uint64_t checkpoint_bytes_hash(std::string_view bytes) {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const char c : bytes) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ULL;
    }
    return h;
}

/// Append-only journal of completed batch items.
class BatchCheckpoint {
public:
    /// Loads an existing journal (empty result when `path` does not exist —
    /// a fresh run) and opens it for appending. Throws
    /// LlsError{ParseError} on a malformed journal, LlsError{IoError} when
    /// the file cannot be opened for appending.
    explicit BatchCheckpoint(const std::string& path);

    const std::vector<CheckpointEntry>& entries() const { return entries_; }

    /// The entry matching (name, input hash, params fingerprint), or
    /// nullptr — nullptr means the item must (re-)run.
    const CheckpointEntry* find(const std::string& name, std::uint64_t input_hash,
                                std::uint64_t params_fingerprint) const;

    /// Journals one completed item: write, flush, and only then return.
    /// Throws LlsError{IoError} if the append did not reach the file.
    void append(const CheckpointEntry& entry);

private:
    std::string path_;
    std::vector<CheckpointEntry> entries_;
    std::ofstream out_;
};

}  // namespace lls
