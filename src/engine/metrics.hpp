#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

namespace lls {

/// One named monotonically increasing counter. Handles returned by
/// `Metrics::counter` stay valid for the life of the process.
class MetricCounter {
public:
    void add(std::uint64_t delta = 1) { value_.fetch_add(delta, std::memory_order_relaxed); }
    std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
    void reset() { value_.store(0, std::memory_order_relaxed); }

private:
    std::atomic<std::uint64_t> value_{0};
};

/// One named accumulating timer (total nanoseconds + number of samples).
class MetricTimer {
public:
    void add_nanos(std::uint64_t nanos) {
        total_nanos_.fetch_add(nanos, std::memory_order_relaxed);
        samples_.fetch_add(1, std::memory_order_relaxed);
    }
    double total_seconds() const {
        return static_cast<double>(total_nanos_.load(std::memory_order_relaxed)) * 1e-9;
    }
    std::uint64_t samples() const { return samples_.load(std::memory_order_relaxed); }
    void reset() {
        total_nanos_.store(0, std::memory_order_relaxed);
        samples_.store(0, std::memory_order_relaxed);
    }

private:
    std::atomic<std::uint64_t> total_nanos_{0};
    std::atomic<std::uint64_t> samples_{0};
};

/// Process-wide registry of named counters and stage timers.
///
/// Lookup by name takes a mutex, so callers on hot paths should resolve
/// their handles once and hold the returned references (they are stable —
/// entries are never removed). The counters/timers themselves are atomic
/// and safe to bump from any worker thread.
class Metrics {
public:
    static Metrics& global();

    MetricCounter& counter(std::string_view name);
    MetricTimer& timer(std::string_view name);

    struct CounterRow {
        std::string name;
        std::uint64_t value;
    };
    struct TimerRow {
        std::string name;
        double total_seconds;
        std::uint64_t samples;
    };

    std::vector<CounterRow> counters() const;
    std::vector<TimerRow> timers() const;

    /// Zeroes every counter and timer (entries stay registered).
    void reset();

    /// Human-readable report: counters, timers, and the global cache stats.
    void report(std::FILE* out) const;

    /// The same data as a JSON object string (stable key order).
    std::string to_json() const;

private:
    Metrics() = default;
    struct Impl;
    Impl& impl() const;
};

/// RAII timer: accumulates the scope's wall-clock duration into a
/// MetricTimer on destruction.
class ScopedTimer {
public:
    explicit ScopedTimer(MetricTimer& timer)
        : timer_(timer), start_(std::chrono::steady_clock::now()) {}
    ScopedTimer(const ScopedTimer&) = delete;
    ScopedTimer& operator=(const ScopedTimer&) = delete;
    ~ScopedTimer() {
        const auto elapsed = std::chrono::steady_clock::now() - start_;
        timer_.add_nanos(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count()));
    }

private:
    MetricTimer& timer_;
    std::chrono::steady_clock::time_point start_;
};

}  // namespace lls
