#pragma once

// The engine's decomposition memo, factored out of engine.cpp so the
// persistence bridge (engine/warm_start.hpp) can export and import entries
// without reaching into the driver's translation unit.

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/budget.hpp"
#include "common/fault.hpp"
#include "common/run_context.hpp"
#include "engine/cache.hpp"
#include "lookahead/decompose.hpp"

namespace lls {

/// The memoized result of evaluating one cone: the outcome (nullptr
/// recording "no improvement found" — negative results are just as
/// expensive to recompute) plus the deterministic work it cost. Storing
/// the cost is what keeps budgeted runs independent of cache state: a memo
/// hit charges exactly the units the avoided recomputation would have.
struct ConeEvaluation {
    std::shared_ptr<const DecomposeOutcome> outcome;
    WorkCost cost;
    /// Faults contained by the retry ladder while evaluating this cone
    /// (cone id/name are filled in at the serial commit). Stored in the
    /// memo with the rest of the evaluation, so a cache hit replays its
    /// fault history the same way it replays its cost. Entries with a
    /// fault history are never *persisted*: recomputing them replays the
    /// same faults and charges the same cost (injection is a pure function
    /// of (cone, params)), so the store only ever carries clean records.
    std::vector<FaultRecord> faults;
    /// The evaluation was cut short by a wall-clock cancellation (fired
    /// cone deadline, or an injected `cancel@site` fault exercising that
    /// path). Such evaluations are a function of elapsed time, not just of
    /// (cone, params): the engine never memoizes or persists them, so one
    /// slow run cannot poison the byte-identity of later runs.
    bool timing_dependent = false;
};

/// Seed of the per-cone RunContext: a context whose deterministic
/// work-cost sink is the evaluation being computed, so every unit a cone's
/// decomposition spends lands in the record the memo stores (and replays
/// on a hit). The engine fills in the remaining fields — fault context,
/// cancellation sources, shared BDD manager, metrics, intra-cone executor
/// — before handing the context down the decompose → reduce → simplify →
/// cec → sat stack.
inline RunContext cone_run_context(ConeEvaluation& evaluation) {
    RunContext ctx;
    ctx.cost = &evaluation.cost;
    return ctx;
}

/// Decomposition memo: (cone structural hash, params fingerprint) -> the
/// evaluation. Shared across runs in the process.
using DecomposeMemo =
    ShardedCache<std::pair<std::uint64_t, std::uint64_t>, ConeEvaluation, U64PairHash>;

/// The process-wide instance (defined in engine.cpp).
DecomposeMemo& decompose_memo();

}  // namespace lls
