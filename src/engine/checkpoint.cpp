#include "engine/checkpoint.hpp"

#include <sstream>

#include "common/error.hpp"

namespace lls {

namespace {

constexpr const char* kMagic = "# lls-checkpoint v1";

std::uint64_t parse_hex(const std::string& field, const std::string& path, int line) {
    std::size_t consumed = 0;
    std::uint64_t value = 0;
    try {
        value = std::stoull(field, &consumed, 16);
    } catch (const std::exception&) {
        consumed = 0;
    }
    if (consumed != field.size() || field.empty())
        throw LlsError(ErrorKind::ParseError,
                       path + ":" + std::to_string(line) + ": bad checkpoint field '" + field +
                           "'",
                       "checkpoint");
    return value;
}

}  // namespace

BatchCheckpoint::BatchCheckpoint(const std::string& path) : path_(path) {
    bool saw_magic = false;
    if (std::ifstream in(path); in) {
        std::string line;
        int number = 0;
        while (std::getline(in, line)) {
            ++number;
            if (!line.empty() && line.back() == '\r') line.pop_back();
            if (line.empty()) continue;
            if (number == 1) {
                if (line != kMagic)
                    throw LlsError(ErrorKind::ParseError,
                                   path + " is not a checkpoint journal (bad magic line)",
                                   "checkpoint");
                saw_magic = true;
                continue;
            }
            std::vector<std::string> fields;
            std::istringstream ss(line);
            std::string field;
            while (std::getline(ss, field, '\t')) fields.push_back(field);
            if (fields.size() != 7)
                throw LlsError(ErrorKind::ParseError,
                               path + ":" + std::to_string(number) +
                                   ": expected 7 tab-separated checkpoint fields, got " +
                                   std::to_string(fields.size()),
                               "checkpoint");
            CheckpointEntry entry;
            entry.name = fields[0];
            entry.input_hash = parse_hex(fields[1], path, number);
            entry.params_fingerprint = parse_hex(fields[2], path, number);
            entry.output_hash = parse_hex(fields[3], path, number);
            entry.final_depth = static_cast<int>(parse_hex(fields[4], path, number));
            entry.final_ands = static_cast<std::size_t>(parse_hex(fields[5], path, number));
            entry.failed = parse_hex(fields[6], path, number) != 0;
            entries_.push_back(std::move(entry));
        }
    }

    out_.open(path, std::ios::app);
    if (!out_) throw LlsError(ErrorKind::IoError, "cannot open checkpoint " + path, "checkpoint");
    if (!saw_magic) {
        // (Re-)stamp the magic line; appending to an empty or absent file.
        out_ << kMagic << "\n";
        out_.flush();
        if (!out_)
            throw LlsError(ErrorKind::IoError, "error writing checkpoint " + path, "checkpoint");
    }
}

const CheckpointEntry* BatchCheckpoint::find(const std::string& name, std::uint64_t input_hash,
                                             std::uint64_t params_fingerprint) const {
    for (const auto& entry : entries_)
        if (entry.name == name && entry.input_hash == input_hash &&
            entry.params_fingerprint == params_fingerprint)
            return &entry;
    return nullptr;
}

void BatchCheckpoint::append(const CheckpointEntry& entry) {
    if (entry.name.find('\t') != std::string::npos ||
        entry.name.find('\n') != std::string::npos)
        throw LlsError(ErrorKind::InvariantViolation,
                       "checkpoint entry name contains a separator: " + entry.name, "checkpoint");
    std::ostringstream line;
    line << entry.name << '\t' << std::hex << entry.input_hash << '\t'
         << entry.params_fingerprint << '\t' << entry.output_hash << '\t' << entry.final_depth
         << '\t' << entry.final_ands << '\t' << (entry.failed ? 1 : 0);
    out_ << line.str() << "\n";
    // Flush-and-throw: the journal line must be durable before the batch
    // counts this item as done — a crash right after this point loses
    // nothing, a write failure surfaces now instead of at exit.
    out_.flush();
    if (!out_)
        throw LlsError(ErrorKind::IoError, "error writing checkpoint " + path_, "checkpoint");
    entries_.push_back(entry);
}

}  // namespace lls
