#include "engine/warm_start.hpp"

#include <string>
#include <utility>
#include <vector>

#include "engine/memo.hpp"
#include "exact/rewrite.hpp"
#include "persist/codec.hpp"

namespace lls {

namespace {

using persist::Section;

/// Copies one section's loaded records out of the store before touching
/// any live cache: the store mutex and the cache stripe locks are never
/// held together, so flushes (stripe -> store) and imports can never form
/// a lock cycle.
std::vector<std::pair<std::string, std::string>> snapshot_section(
    const persist::MemoStore& store, Section section) {
    std::vector<std::pair<std::string, std::string>> records;
    store.for_each_loaded(section, [&](std::string_view key, std::string_view value) {
        records.emplace_back(std::string(key), std::string(value));
    });
    return records;
}

}  // namespace

WarmStart::WarmStart(std::string dir, persist::StoreMode mode)
    : store_(std::move(dir), mode) {
    warm_hits_ = &Metrics::global().counter("persist.warm_hits");
    store_.load();
    import_loaded();
}

WarmStart::~WarmStart() = default;

void WarmStart::import_loaded() {
    MetricCounter& undecodable = Metrics::global().counter("persist.load.undecodable");

    for (auto& [key, value] : snapshot_section(store_, Section::Decompose)) {
        try {
            const auto pair = persist::decode_pair_key(key);
            ConeEvaluation evaluation = persist::decode_cone_evaluation(value);
            decompose_memo().put(pair, std::move(evaluation));
            imported_decompose_.insert(pair);
            ++imported_records_;
        } catch (const std::exception&) {
            undecodable.add();  // checksum passed but the value is inconsistent: recompute
        }
    }
    for (auto& [key, value] : snapshot_section(store_, Section::Cec)) {
        try {
            const auto pair = persist::decode_pair_key(key);
            cec_memo().put(pair, persist::decode_cec_verdict(value));
            imported_cec_.insert(pair);
            ++imported_records_;
        } catch (const std::exception&) {
            undecodable.add();
        }
    }
    for (auto& [key, value] : snapshot_section(store_, Section::Npn)) {
        try {
            npn_memo().put(key, persist::decode_npn_result(value));
            ++imported_records_;
        } catch (const std::exception&) {
            undecodable.add();
        }
    }
    for (auto& [key, value] : snapshot_section(store_, Section::ExactStruct)) {
        try {
            exact_structure_memo().put(key, persist::decode_exact_structure(value));
            ++imported_records_;
        } catch (const std::exception&) {
            undecodable.add();
        }
    }
}

void WarmStart::flush_round() {
    if (!persist::mode_writes(store_.mode())) return;
    // record() skips every known key without invoking the encoder, so a
    // steady-state flush walks the caches but serializes nothing.
    decompose_memo().for_each(
        [&](const std::pair<std::uint64_t, std::uint64_t>& key, const ConeEvaluation& evaluation) {
            if (!evaluation.faults.empty()) return;  // recompute replays faults identically
            // Belt and braces: the engine never memoizes timing-dependent
            // (deadline-cancelled) evaluations, so none should reach here.
            if (evaluation.timing_dependent) return;
            store_.record(Section::Decompose, persist::encode_pair_key(key.first, key.second),
                          [&] { return persist::encode_cone_evaluation(evaluation); });
        });
    cec_memo().for_each([&](const std::pair<std::uint64_t, std::uint64_t>& key, bool equivalent) {
        store_.record(Section::Cec, persist::encode_pair_key(key.first, key.second),
                      [&] { return persist::encode_cec_verdict(equivalent); });
    });
    npn_memo().for_each([&](const std::string& key, const NpnResult& npn) {
        store_.record(Section::Npn, key, [&] { return persist::encode_npn_result(npn); });
    });
    exact_structure_memo().for_each(
        [&](const std::string& key, const std::optional<ExactStructure>& structure) {
            store_.record(Section::ExactStruct, key,
                          [&] { return persist::encode_exact_structure(structure); });
        });
    store_.publish();
}

void WarmStart::finalize() {
    flush_round();
    store_.compact();
}

void WarmStart::note_decompose_hit(std::uint64_t cone_hash, std::uint64_t params_fp) {
    if (imported_decompose_.count({cone_hash, params_fp})) warm_hits_->add();
}

void WarmStart::note_cec_hit(std::uint64_t hash_low, std::uint64_t hash_high) {
    if (imported_cec_.count({hash_low, hash_high})) warm_hits_->add();
}

}  // namespace lls
