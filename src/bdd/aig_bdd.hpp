#pragma once

#include <vector>

#include "aig/aig.hpp"
#include "bdd/bdd.hpp"

namespace lls {

/// Builds the global BDD of every AIG node (PI i = BDD variable i).
/// Throws ContractViolation if the manager's node limit is exceeded —
/// callers treat that as "circuit too large for exact analysis".
std::vector<BddManager::Ref> build_node_bdds(const Aig& aig, BddManager& manager);

/// BDD of an AIG literal given the per-node refs.
inline BddManager::Ref bdd_of_lit(BddManager& manager,
                                  const std::vector<BddManager::Ref>& refs, AigLit lit) {
    const BddManager::Ref r = refs[lit.node()];
    return lit.complemented() ? manager.bnot(r) : r;
}

}  // namespace lls
