#pragma once

#include <vector>

#include "aig/aig.hpp"
#include "bdd/bdd.hpp"

namespace lls {

/// Builds the global BDD of every AIG node (PI i = BDD variable i).
/// Throws LlsError{ResourceExhausted} if the manager's node limit is
/// exceeded — callers treat that as "circuit too large for exact analysis".
std::vector<BddManager::Ref> build_node_bdds(const Aig& aig, BddManager& manager);

/// Exact combinational equivalence via canonical BDDs: builds both
/// networks in one manager (shared variable order, PI i = variable i) and
/// compares the per-output refs. This is the engine's last-resort
/// verification rung when SAT-based CEC hits its effort limit. Throws
/// LlsError{ResourceExhausted} when `node_limit` is exceeded.
bool bdd_equivalent(const Aig& a, const Aig& b, std::size_t node_limit = 1u << 21);

/// The same check against a caller-provided (typically shared, concurrent)
/// manager: sub-BDDs already built by other cones or workers are reused
/// instead of rebuilt, and the verdict is identical to the private-manager
/// form whenever both complete (refs are canonical). Requires
/// `manager.num_vars() >= a.num_pis()`; throws LlsError{ResourceExhausted}
/// when the manager's *global* node pool is exhausted — callers that need a
/// schedule-independent outcome must fall back to a private manager then
/// (see docs/ENGINE.md, "Shared BDD manager").
bool bdd_equivalent(const Aig& a, const Aig& b, BddManager& manager);

/// BDD of an AIG literal given the per-node refs.
inline BddManager::Ref bdd_of_lit(BddManager& manager,
                                  const std::vector<BddManager::Ref>& refs, AigLit lit) {
    const BddManager::Ref r = refs[lit.node()];
    return lit.complemented() ? manager.bnot(r) : r;
}

}  // namespace lls
