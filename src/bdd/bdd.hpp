#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/check.hpp"

namespace lls {

class MemoryGovernor;

/// Point-in-time counters of one BddManager (tests, benches, and the
/// shared-vs-private comparison in bench_parallel). The same numbers are
/// flushed into the global metrics registry (`bdd.unique.*`,
/// `bdd.ite_cache.*`) when the manager is destroyed, so `lls_opt --metrics`
/// aggregates them across every manager the process created.
struct BddStats {
    std::uint64_t unique_hits = 0;     ///< make_node found an existing node
    std::uint64_t nodes_created = 0;   ///< make_node allocated a fresh node
    std::uint64_t ite_hits = 0;        ///< computed-table hits
    std::uint64_t ite_misses = 0;      ///< computed-table misses
    std::uint64_t ite_evictions = 0;   ///< lossy overwrites of a live entry
};

/// Reduced ordered binary decision diagrams with a fixed variable order.
///
/// Node 0 is the terminal FALSE, node 1 the terminal TRUE. Internal nodes
/// are canonical (unique table) so equality of functions is pointer
/// equality. Operations go through ITE with a computed table. No dynamic
/// reordering — the package exists as an exact-function substrate (exact
/// SPCF computation, cross-checks of the simulation-based machinery), not
/// as a general-purpose verification engine.
///
/// The manager is safe for concurrent use from many threads (Sylvan-style,
/// scaled down to this package's ambitions):
///
/// - The unique table is sharded over `kShards` independently locked hash
///   maps; node storage is a segmented arena of immutable packed words, so
///   readers never take a lock. Canonicity is preserved under contention:
///   two threads racing to create the same (var, low, high) node serialize
///   on the owning shard and observe one ref.
/// - The computed table (ITE cache) is a fixed-size, direct-mapped, *lossy*
///   array under striped mutexes: an insert simply overwrites the slot, so
///   the table is capacity-bounded for the life of the manager (the cap is
///   tied to the node limit). Losing an entry only costs recomputation —
///   results are canonical, so a recomputation returns the identical ref.
/// - Node-limit accounting is one global atomic aggregated across shards:
///   allocation attempt `node_limit` throws LlsError{ResourceExhausted} no
///   matter which shard (or thread) triggers it, matching the serial
///   manager's threshold exactly.
///
/// Determinism: ref *values* depend on allocation order and therefore on
/// the thread schedule, but every public decision made from refs is an
/// equality test between canonical refs, which is schedule-independent.
/// Callers must never persist or compare ref values across managers.
class BddManager {
public:
    using Ref = std::uint32_t;
    static constexpr Ref kFalse = 0;
    static constexpr Ref kTrue = 1;

    explicit BddManager(int num_vars, std::size_t node_limit = 1u << 22);
    ~BddManager();

    BddManager(const BddManager&) = delete;
    BddManager& operator=(const BddManager&) = delete;

    int num_vars() const { return num_vars_; }
    std::size_t num_nodes() const { return num_nodes_.load(std::memory_order_acquire); }

    Ref bdd_false() const { return kFalse; }
    Ref bdd_true() const { return kTrue; }
    /// The projection function of variable `var`.
    Ref variable(int var);

    Ref ite(Ref f, Ref g, Ref h);
    Ref band(Ref f, Ref g) { return ite(f, g, kFalse); }
    Ref bor(Ref f, Ref g) { return ite(f, kTrue, g); }
    Ref bnot(Ref f) { return ite(f, kFalse, kTrue); }
    Ref bxor(Ref f, Ref g) { return ite(f, bnot(g), g); }

    /// Cofactor with respect to a variable.
    Ref cofactor(Ref f, int var, bool value);
    /// Existential quantification of a single variable.
    Ref exists(Ref f, int var);
    /// Universal quantification of a single variable.
    Ref forall(Ref f, int var);

    bool is_false(Ref f) const { return f == kFalse; }
    bool is_true(Ref f) const { return f == kTrue; }

    /// Evaluates f under a complete assignment (bit v of `assignment` is
    /// the value of variable v).
    bool evaluate(Ref f, std::uint64_t assignment) const;

    /// Number of satisfying assignments over all num_vars() variables.
    double count_minterms(Ref f) const;

    /// Number of DAG nodes reachable from f (excluding terminals).
    std::size_t size(Ref f) const;

    /// Total nodes allocated; exceeding the limit throws
    /// LlsError{ResourceExhausted} (callers treat it as "circuit too large
    /// for exact analysis" and degrade rather than abort). The count is
    /// aggregated across every unique-table shard, so the threshold is the
    /// same global number however allocations distribute over shards.
    std::size_t node_limit() const { return node_limit_; }

    /// Counter snapshot (hit/miss totals are approximate only in the sense
    /// that a concurrent snapshot is not an atomic cut across counters).
    BddStats stats() const;

    /// Attaches the Tier-2 memory governor (common/memgov.hpp): arena
    /// blocks and the ITE cache report counted bytes, and every relief
    /// episode the governor runs makes this manager halve its ITE cache at
    /// the next node allocation (the manager polls the relief epoch rather
    /// than registering a hook, so lifetimes stay decoupled). Call during
    /// setup, before concurrent use; pass nullptr to detach.
    void bind_governor(MemoryGovernor* governor);

    /// Halves the ITE cache (never below its minimum capacity), returning
    /// the bytes freed. Safe against concurrent ite() traffic: the resize
    /// happens under all cache stripes.
    std::size_t shrink_ite_cache();

    /// Current ITE-cache slot count (observability/tests).
    std::size_t ite_capacity() const;

private:
    // Packing: a node is one 64-bit word (var << 44 | low << 22 | high).
    // var < 2^20 and refs < 2^22 (enforced by the node-limit cap), so the
    // packing is injective and doubles as the unique-table key.
    static constexpr int kRefBits = 22;
    static constexpr std::uint64_t kRefMask = (std::uint64_t{1} << kRefBits) - 1;
    static constexpr std::size_t kShards = 16;
    static constexpr std::size_t kBlockBits = 16;  // 65536 nodes per arena block
    static constexpr std::size_t kBlockSize = std::size_t{1} << kBlockBits;
    static constexpr std::size_t kMaxBlocks =
        (std::size_t{1} << kRefBits) >> kBlockBits;
    static constexpr std::size_t kIteStripes = 64;

    static constexpr std::uint64_t pack(int var, Ref low, Ref high) {
        return (static_cast<std::uint64_t>(var) << (2 * kRefBits)) |
               (static_cast<std::uint64_t>(low) << kRefBits) | static_cast<std::uint64_t>(high);
    }
    static constexpr int word_var(std::uint64_t w) { return static_cast<int>(w >> (2 * kRefBits)); }
    static constexpr Ref word_low(std::uint64_t w) {
        return static_cast<Ref>((w >> kRefBits) & kRefMask);
    }
    static constexpr Ref word_high(std::uint64_t w) { return static_cast<Ref>(w & kRefMask); }

    struct U64Hash {
        std::size_t operator()(const std::uint64_t& k) const {
            std::uint64_t h = k * 0x9e3779b97f4a7c15ULL;
            h ^= h >> 29;
            return static_cast<std::size_t>(h);
        }
    };

    struct Shard {
        std::mutex mutex;
        std::unordered_map<std::uint64_t, Ref, U64Hash> map;
    };

    /// One lossy, direct-mapped computed-table slot. `f` is never a
    /// terminal for a cached call (terminal cases short-circuit in ite), so
    /// f == kFalse doubles as the empty marker.
    struct IteEntry {
        Ref f = kFalse, g = kFalse, h = kFalse;
        Ref result = kFalse;
    };

    Ref make_node(int var, Ref low, Ref high);
    /// Packed word of a node. Safe without locks: words are immutable once
    /// published, and every cross-thread ref handoff goes through a mutex
    /// (shard map, ITE stripe) or an acquire load (variable cache), which
    /// establishes the necessary happens-before with the write.
    std::uint64_t node_word(Ref f) const {
        return blocks_[f >> kBlockBits].load(std::memory_order_acquire)[f & (kBlockSize - 1)];
    }
    int var_of(Ref f) const { return word_var(node_word(f)); }
    /// Writes the word for a freshly allocated index, creating its arena
    /// block on demand.
    void store_word(std::size_t index, std::uint64_t word);

    std::size_t ite_hash(Ref f, Ref g, Ref h) const;
    bool ite_cache_get(Ref f, Ref g, Ref h, Ref* result);
    void ite_cache_put(Ref f, Ref g, Ref h, Ref result);
    /// Shrinks the ITE cache when the bound governor ran a relief episode
    /// since this manager last looked.
    void maybe_shrink_for_governor();

    int num_vars_;
    std::size_t node_limit_;
    std::atomic<std::size_t> num_nodes_{0};

    // Segmented node arena: blocks are allocated on demand under
    // `block_mutex_` and published with release stores; refs index into
    // them as blocks_[ref >> 16][ref & 0xffff].
    std::array<std::atomic<std::uint64_t*>, kMaxBlocks> blocks_{};
    std::mutex block_mutex_;

    mutable std::array<Shard, kShards> shards_;

    // Lossy ITE cache: power-of-two slot array, striped mutexes. The slot
    // array only changes (shrinks) under *all* stripes; readers map a
    // stripe-independent hash to a slot under their stripe lock. Capacity
    // never drops below 2^10 slots, so slot & (kIteStripes - 1) equals
    // hash & (kIteStripes - 1) — same slot always means same stripe.
    std::vector<IteEntry> ite_cache_;
    std::size_t ite_mask_ = 0;
    mutable std::array<std::mutex, kIteStripes> ite_mutex_;

    MemoryGovernor* governor_ = nullptr;
    std::atomic<std::int64_t> governor_charged_{0};
    std::atomic<std::uint64_t> governor_epoch_seen_{0};

    // Projection-function cache; kFalse marks "not created yet" (a variable
    // node is never the FALSE terminal).
    std::vector<std::atomic<Ref>> var_refs_;

    std::atomic<std::uint64_t> unique_hits_{0}, nodes_created_{0};
    std::atomic<std::uint64_t> ite_hits_{0}, ite_misses_{0}, ite_evictions_{0};
};

}  // namespace lls
