#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/check.hpp"

namespace lls {

/// Reduced ordered binary decision diagrams with a fixed variable order.
///
/// Node 0 is the terminal FALSE, node 1 the terminal TRUE. Internal nodes
/// are canonical (unique table) so equality of functions is pointer
/// equality. Operations go through ITE with a computed table. No dynamic
/// reordering — the package exists as an exact-function substrate (exact
/// SPCF computation, cross-checks of the simulation-based machinery), not
/// as a general-purpose verification engine.
class BddManager {
public:
    using Ref = std::uint32_t;
    static constexpr Ref kFalse = 0;
    static constexpr Ref kTrue = 1;

    explicit BddManager(int num_vars, std::size_t node_limit = 1u << 22);

    int num_vars() const { return num_vars_; }
    std::size_t num_nodes() const { return nodes_.size(); }

    Ref bdd_false() const { return kFalse; }
    Ref bdd_true() const { return kTrue; }
    /// The projection function of variable `var`.
    Ref variable(int var);

    Ref ite(Ref f, Ref g, Ref h);
    Ref band(Ref f, Ref g) { return ite(f, g, kFalse); }
    Ref bor(Ref f, Ref g) { return ite(f, kTrue, g); }
    Ref bnot(Ref f) { return ite(f, kFalse, kTrue); }
    Ref bxor(Ref f, Ref g) { return ite(f, bnot(g), g); }

    /// Cofactor with respect to a variable.
    Ref cofactor(Ref f, int var, bool value);
    /// Existential quantification of a single variable.
    Ref exists(Ref f, int var);
    /// Universal quantification of a single variable.
    Ref forall(Ref f, int var);

    bool is_false(Ref f) const { return f == kFalse; }
    bool is_true(Ref f) const { return f == kTrue; }

    /// Evaluates f under a complete assignment (bit v of `assignment` is
    /// the value of variable v).
    bool evaluate(Ref f, std::uint64_t assignment) const;

    /// Number of satisfying assignments over all num_vars() variables.
    double count_minterms(Ref f) const;

    /// Number of DAG nodes reachable from f (excluding terminals).
    std::size_t size(Ref f) const;

    /// Total nodes allocated; exceeding the limit throws
    /// LlsError{ResourceExhausted} (callers treat it as "circuit too large
    /// for exact analysis" and degrade rather than abort).
    std::size_t node_limit() const { return node_limit_; }

private:
    struct Node {
        int var;  // terminals use num_vars_ (below every real variable)
        Ref low, high;
    };
    struct U64Hash {
        std::size_t operator()(const std::uint64_t& k) const {
            std::uint64_t h = k * 0x9e3779b97f4a7c15ULL;
            h ^= h >> 29;
            return static_cast<std::size_t>(h);
        }
    };
    struct IteKey {
        Ref f, g, h;
        bool operator==(const IteKey&) const = default;
    };
    struct IteKeyHash {
        std::size_t operator()(const IteKey& k) const {
            std::uint64_t h = k.f;
            h = h * 0x100000001b3ULL ^ k.g;
            h = h * 0x100000001b3ULL ^ k.h;
            h *= 0x9e3779b97f4a7c15ULL;
            return static_cast<std::size_t>(h ^ (h >> 31));
        }
    };

    Ref make_node(int var, Ref low, Ref high);
    int var_of(Ref f) const { return nodes_[f].var; }

    int num_vars_;
    std::size_t node_limit_;
    std::vector<Node> nodes_;
    // Unique-table key packs (var, low, high) injectively into 64 bits
    // (var < 2^20, refs < 2^22 by the node limit).
    std::unordered_map<std::uint64_t, Ref, U64Hash> unique_;
    std::unordered_map<IteKey, Ref, IteKeyHash> computed_;  // ite cache
    std::vector<Ref> var_refs_;
};

}  // namespace lls
