#include "bdd/aig_bdd.hpp"

namespace lls {

std::vector<BddManager::Ref> build_node_bdds(const Aig& aig, BddManager& manager) {
    LLS_REQUIRE(static_cast<int>(aig.num_pis()) <= manager.num_vars());
    std::vector<BddManager::Ref> refs(aig.num_nodes(), manager.bdd_false());
    for (std::size_t i = 0; i < aig.num_pis(); ++i)
        refs[aig.pi(i)] = manager.variable(static_cast<int>(i));
    for (std::uint32_t id = 1; id < aig.num_nodes(); ++id) {
        if (!aig.is_and(id)) continue;
        const auto& n = aig.node(id);
        refs[id] = manager.band(bdd_of_lit(manager, refs, n.fanin0),
                                bdd_of_lit(manager, refs, n.fanin1));
    }
    return refs;
}

bool bdd_equivalent(const Aig& a, const Aig& b, std::size_t node_limit) {
    if (a.num_pis() != b.num_pis() || a.num_pos() != b.num_pos()) return false;
    BddManager manager(static_cast<int>(a.num_pis()), node_limit);
    return bdd_equivalent(a, b, manager);
}

bool bdd_equivalent(const Aig& a, const Aig& b, BddManager& manager) {
    if (a.num_pis() != b.num_pis() || a.num_pos() != b.num_pos()) return false;
    const auto refs_a = build_node_bdds(a, manager);
    const auto refs_b = build_node_bdds(b, manager);
    for (std::size_t o = 0; o < a.num_pos(); ++o) {
        // Canonicity makes function equality ref equality.
        if (bdd_of_lit(manager, refs_a, a.po(o)) != bdd_of_lit(manager, refs_b, b.po(o)))
            return false;
    }
    return true;
}

}  // namespace lls
