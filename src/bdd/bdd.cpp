#include "bdd/bdd.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace lls {

BddManager::BddManager(int num_vars, std::size_t node_limit)
    : num_vars_(num_vars), node_limit_(node_limit) {
    LLS_REQUIRE(num_vars >= 0 && num_vars < (1 << 20));
    LLS_REQUIRE(node_limit <= (std::size_t{1} << 22) && "ref packing requires refs < 2^22");
    nodes_.push_back(Node{num_vars_, kFalse, kFalse});  // FALSE terminal
    nodes_.push_back(Node{num_vars_, kTrue, kTrue});    // TRUE terminal
    var_refs_.assign(static_cast<std::size_t>(num_vars), kFalse);
}

BddManager::Ref BddManager::make_node(int var, Ref low, Ref high) {
    if (low == high) return low;
    const std::uint64_t key = (static_cast<std::uint64_t>(var) << 44) |
                              (static_cast<std::uint64_t>(low) << 22) |
                              static_cast<std::uint64_t>(high);
    if (const auto it = unique_.find(key); it != unique_.end()) return it->second;
    if (nodes_.size() >= node_limit_)
        throw LlsError(ErrorKind::ResourceExhausted,
                       "BDD node limit exceeded (" + std::to_string(node_limit_) + " nodes)",
                       "bdd");
    const Ref ref = static_cast<Ref>(nodes_.size());
    nodes_.push_back(Node{var, low, high});
    unique_.emplace(key, ref);
    return ref;
}

BddManager::Ref BddManager::variable(int var) {
    LLS_REQUIRE(var >= 0 && var < num_vars_);
    auto& cached = var_refs_[static_cast<std::size_t>(var)];
    if (cached == kFalse) cached = make_node(var, kFalse, kTrue);
    return cached;
}

BddManager::Ref BddManager::ite(Ref f, Ref g, Ref h) {
    // Terminal cases.
    if (f == kTrue) return g;
    if (f == kFalse) return h;
    if (g == h) return g;
    if (g == kTrue && h == kFalse) return f;

    const IteKey key{f, g, h};
    if (const auto it = computed_.find(key); it != computed_.end()) return it->second;

    const int top = std::min({var_of(f), var_of(g), var_of(h)});
    auto cof = [&](Ref x, bool hi) {
        if (var_of(x) != top) return x;
        return hi ? nodes_[x].high : nodes_[x].low;
    };
    const Ref lo = ite(cof(f, false), cof(g, false), cof(h, false));
    const Ref hi = ite(cof(f, true), cof(g, true), cof(h, true));
    const Ref result = make_node(top, lo, hi);
    computed_.emplace(key, result);
    return result;
}

BddManager::Ref BddManager::cofactor(Ref f, int var, bool value) {
    LLS_REQUIRE(var >= 0 && var < num_vars_);
    if (var_of(f) > var) return f;  // f does not depend on var (order!)
    if (var_of(f) == var) return value ? nodes_[f].high : nodes_[f].low;
    // var is below f's top variable: rebuild via ite on restricted children.
    const Ref lo = cofactor(nodes_[f].low, var, value);
    const Ref hi = cofactor(nodes_[f].high, var, value);
    return ite(variable(var_of(f)), hi, lo);
}

BddManager::Ref BddManager::exists(Ref f, int var) {
    return bor(cofactor(f, var, false), cofactor(f, var, true));
}

BddManager::Ref BddManager::forall(Ref f, int var) {
    return band(cofactor(f, var, false), cofactor(f, var, true));
}

bool BddManager::evaluate(Ref f, std::uint64_t assignment) const {
    while (f > kTrue) {
        const Node& n = nodes_[f];
        f = ((assignment >> n.var) & 1) ? n.high : n.low;
    }
    return f == kTrue;
}

double BddManager::count_minterms(Ref f) const {
    // Fraction-based DP avoids overflow for many variables.
    std::unordered_map<Ref, double> fraction;
    fraction[kFalse] = 0.0;
    fraction[kTrue] = 1.0;
    // Iterative post-order via explicit stack.
    std::vector<Ref> stack{f};
    while (!stack.empty()) {
        const Ref r = stack.back();
        if (fraction.count(r)) {
            stack.pop_back();
            continue;
        }
        const Node& n = nodes_[r];
        const bool lo_done = fraction.count(n.low);
        const bool hi_done = fraction.count(n.high);
        if (lo_done && hi_done) {
            fraction[r] = 0.5 * fraction[n.low] + 0.5 * fraction[n.high];
            stack.pop_back();
        } else {
            if (!lo_done) stack.push_back(n.low);
            if (!hi_done) stack.push_back(n.high);
        }
    }
    double scale = 1.0;
    for (int i = 0; i < num_vars_; ++i) scale *= 2.0;
    return fraction[f] * scale;
}

std::size_t BddManager::size(Ref f) const {
    std::vector<Ref> stack{f};
    std::unordered_map<Ref, bool> seen;
    std::size_t count = 0;
    while (!stack.empty()) {
        const Ref r = stack.back();
        stack.pop_back();
        if (r <= kTrue || seen.count(r)) continue;
        seen[r] = true;
        ++count;
        stack.push_back(nodes_[r].low);
        stack.push_back(nodes_[r].high);
    }
    return count;
}

}  // namespace lls
