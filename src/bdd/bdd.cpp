#include "bdd/bdd.hpp"

#include <algorithm>

#include "common/cancel.hpp"
#include "common/error.hpp"
#include "common/memgov.hpp"
#include "engine/metrics.hpp"

namespace lls {

namespace {

std::size_t next_pow2(std::size_t n) {
    std::size_t p = 1;
    while (p < n) p <<= 1;
    return p;
}

/// Computed-table capacity for a given node limit: lossy by design, the
/// table never outgrows this, fixing the unbounded growth of the old
/// per-manager std::unordered_map. Half the node limit (clamped) keeps the
/// table proportional to the function sizes the manager can represent.
std::size_t ite_cache_slots(std::size_t node_limit) {
    return next_pow2(std::clamp<std::size_t>(node_limit / 2, std::size_t{1} << 10,
                                             std::size_t{1} << 20));
}

}  // namespace

BddManager::BddManager(int num_vars, std::size_t node_limit)
    : num_vars_(num_vars), node_limit_(node_limit) {
    LLS_REQUIRE(num_vars >= 0 && num_vars < (1 << 20));
    LLS_REQUIRE(node_limit <= (std::size_t{1} << 22) && "ref packing requires refs < 2^22");
    ite_cache_.assign(ite_cache_slots(node_limit), IteEntry{});
    ite_mask_ = ite_cache_.size() - 1;
    var_refs_ = std::vector<std::atomic<Ref>>(static_cast<std::size_t>(num_vars));
    for (auto& ref : var_refs_) ref.store(kFalse, std::memory_order_relaxed);
    // Terminals live at the head of block 0 and use var = num_vars_ (below
    // every real variable in the order).
    store_word(kFalse, pack(num_vars_, kFalse, kFalse));
    store_word(kTrue, pack(num_vars_, kTrue, kTrue));
    num_nodes_.store(2, std::memory_order_release);
}

BddManager::~BddManager() {
    // Aggregate this manager's counters into the process-wide registry so
    // `lls_opt --metrics` reports BDD work no matter how many managers
    // (shared or private) the run created.
    const BddStats s = stats();
    Metrics& metrics = Metrics::global();
    if (s.unique_hits) metrics.counter("bdd.unique.hits").add(s.unique_hits);
    if (s.nodes_created) metrics.counter("bdd.unique.nodes").add(s.nodes_created);
    if (s.ite_hits) metrics.counter("bdd.ite_cache.hits").add(s.ite_hits);
    if (s.ite_misses) metrics.counter("bdd.ite_cache.misses").add(s.ite_misses);
    if (s.ite_evictions) metrics.counter("bdd.ite_cache.evictions").add(s.ite_evictions);
    for (auto& block : blocks_) delete[] block.load(std::memory_order_acquire);
    if (governor_ != nullptr) {
        const std::int64_t charged = governor_charged_.load(std::memory_order_relaxed);
        if (charged != 0) governor_->charge(-charged);
    }
}

void BddManager::bind_governor(MemoryGovernor* governor) {
    // Detach: release everything reported so far.
    if (governor_ != nullptr && governor == nullptr) {
        const std::int64_t charged = governor_charged_.exchange(0, std::memory_order_relaxed);
        if (charged != 0) governor_->charge(-charged);
    }
    governor_ = governor;
    if (governor_ != nullptr) {
        governor_epoch_seen_.store(governor_->relief_epoch(), std::memory_order_relaxed);
        // Report what already exists: the ITE slot array and the arena
        // blocks allocated before binding (block 0 at least).
        std::int64_t charged = static_cast<std::int64_t>(ite_cache_.size() * sizeof(IteEntry));
        for (const auto& block : blocks_)
            if (block.load(std::memory_order_acquire) != nullptr)
                charged += static_cast<std::int64_t>(kBlockSize * memcost::kBddNodeBytes);
        governor_charged_.store(charged, std::memory_order_relaxed);
        governor_->charge(charged);
    }
}

std::size_t BddManager::ite_capacity() const {
    // Racy-read tolerant: capacity only changes under all stripes, and
    // callers of this accessor are tests/observability.
    return ite_mask_ + 1;
}

std::size_t BddManager::shrink_ite_cache() {
    // Lock every stripe in index order; ite() traffic holds exactly one
    // stripe, so once all are held no reader can observe the resize.
    std::array<std::unique_lock<std::mutex>, kIteStripes> locks;
    for (std::size_t s = 0; s < kIteStripes; ++s)
        locks[s] = std::unique_lock<std::mutex>(ite_mutex_[s]);
    constexpr std::size_t kMinSlots = std::size_t{1} << 10;
    const std::size_t old_slots = ite_cache_.size();
    if (old_slots <= kMinSlots) return 0;
    const std::size_t new_slots = old_slots / 2;
    std::vector<IteEntry>(new_slots, IteEntry{}).swap(ite_cache_);
    ite_mask_ = new_slots - 1;
    const std::size_t freed = (old_slots - new_slots) * sizeof(IteEntry);
    if (governor_ != nullptr) {
        governor_charged_.fetch_sub(static_cast<std::int64_t>(freed), std::memory_order_relaxed);
        governor_->charge(-static_cast<std::int64_t>(freed));
    }
    return freed;
}

void BddManager::maybe_shrink_for_governor() {
    if (governor_ == nullptr) return;
    const std::uint64_t epoch = governor_->relief_epoch();
    if (epoch == governor_epoch_seen_.load(std::memory_order_relaxed)) return;
    governor_epoch_seen_.store(epoch, std::memory_order_relaxed);
    shrink_ite_cache();
}

void BddManager::store_word(std::size_t index, std::uint64_t word) {
    auto& slot = blocks_[index >> kBlockBits];
    std::uint64_t* block = slot.load(std::memory_order_acquire);
    if (!block) {
        bool allocated = false;
        {
            const std::lock_guard<std::mutex> lock(block_mutex_);
            block = slot.load(std::memory_order_acquire);
            if (!block) {
                block = new std::uint64_t[kBlockSize]();
                slot.store(block, std::memory_order_release);
                allocated = true;
            }
        }
        // Tier-2 accounting per arena block (8 B word + unique-table entry
        // share per node), outside block_mutex_ so a relief episode the
        // charge triggers cannot nest under it.
        if (allocated && governor_ != nullptr) {
            const std::int64_t bytes =
                static_cast<std::int64_t>(kBlockSize * memcost::kBddNodeBytes);
            governor_charged_.fetch_add(bytes, std::memory_order_relaxed);
            governor_->charge(bytes);
        }
    }
    block[index & (kBlockSize - 1)] = word;
}

BddManager::Ref BddManager::make_node(int var, Ref low, Ref high) {
    if (low == high) return low;
    // Every BDD operation funnels through node construction, so this one
    // poll bounds an exponentially blowing-up ITE recursion in wall-clock
    // time the same way node_limit_ bounds it in count.
    poll_cancellation("bdd");
    maybe_shrink_for_governor();
    const std::uint64_t key = pack(var, low, high);
    Shard& shard = shards_[U64Hash{}(key) % kShards];
    const std::lock_guard<std::mutex> lock(shard.mutex);
    if (const auto it = shard.map.find(key); it != shard.map.end()) {
        unique_hits_.fetch_add(1, std::memory_order_relaxed);
        return it->second;
    }
    // Global accounting: the aggregate count across all shards decides
    // exhaustion, so the threshold is the same number on every shard
    // distribution and thread schedule.
    const std::size_t index = num_nodes_.fetch_add(1, std::memory_order_acq_rel);
    if (index >= node_limit_) {
        num_nodes_.fetch_sub(1, std::memory_order_acq_rel);
        throw LlsError(ErrorKind::ResourceExhausted,
                       "BDD node limit exceeded (" + std::to_string(node_limit_) + " nodes)",
                       "bdd");
    }
    store_word(index, key);
    const Ref ref = static_cast<Ref>(index);
    shard.map.emplace(key, ref);
    nodes_created_.fetch_add(1, std::memory_order_relaxed);
    return ref;
}

BddManager::Ref BddManager::variable(int var) {
    LLS_REQUIRE(var >= 0 && var < num_vars_);
    auto& cached = var_refs_[static_cast<std::size_t>(var)];
    Ref ref = cached.load(std::memory_order_acquire);
    if (ref == kFalse) {
        // Benign race: make_node is canonical, so concurrent creators store
        // the identical ref.
        ref = make_node(var, kFalse, kTrue);
        cached.store(ref, std::memory_order_release);
    }
    return ref;
}

std::size_t BddManager::ite_hash(Ref f, Ref g, Ref h) const {
    std::uint64_t k = f;
    k = k * 0x100000001b3ULL ^ g;
    k = k * 0x100000001b3ULL ^ h;
    k *= 0x9e3779b97f4a7c15ULL;
    return static_cast<std::size_t>(k ^ (k >> 31));
}

bool BddManager::ite_cache_get(Ref f, Ref g, Ref h, Ref* result) {
    const std::size_t hash = ite_hash(f, g, h);
    // Stripe from the unmasked hash, slot under the stripe lock: capacity
    // stays >= 2^10 slots while kIteStripes is 64, so hash & mask agrees
    // with hash & 63 on the stripe bits whatever the current mask is.
    const std::lock_guard<std::mutex> lock(ite_mutex_[hash & (kIteStripes - 1)]);
    const IteEntry& entry = ite_cache_[hash & ite_mask_];
    if (entry.f == f && entry.g == g && entry.h == h) {
        ite_hits_.fetch_add(1, std::memory_order_relaxed);
        *result = entry.result;
        return true;
    }
    ite_misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
}

void BddManager::ite_cache_put(Ref f, Ref g, Ref h, Ref result) {
    const std::size_t hash = ite_hash(f, g, h);
    const std::lock_guard<std::mutex> lock(ite_mutex_[hash & (kIteStripes - 1)]);
    IteEntry& entry = ite_cache_[hash & ite_mask_];
    if (entry.f != kFalse && !(entry.f == f && entry.g == g && entry.h == h))
        ite_evictions_.fetch_add(1, std::memory_order_relaxed);
    entry = IteEntry{f, g, h, result};
}

BddManager::Ref BddManager::ite(Ref f, Ref g, Ref h) {
    // Terminal cases.
    if (f == kTrue) return g;
    if (f == kFalse) return h;
    if (g == h) return g;
    if (g == kTrue && h == kFalse) return f;

    Ref cached;
    if (ite_cache_get(f, g, h, &cached)) return cached;
    poll_cancellation("bdd");

    const std::uint64_t wf = node_word(f), wg = node_word(g), wh = node_word(h);
    const int top = std::min({word_var(wf), word_var(wg), word_var(wh)});
    auto cof = [top](Ref x, std::uint64_t wx, bool hi) {
        if (word_var(wx) != top) return x;
        return hi ? word_high(wx) : word_low(wx);
    };
    const Ref lo = ite(cof(f, wf, false), cof(g, wg, false), cof(h, wh, false));
    const Ref hi = ite(cof(f, wf, true), cof(g, wg, true), cof(h, wh, true));
    const Ref result = make_node(top, lo, hi);
    ite_cache_put(f, g, h, result);
    return result;
}

BddManager::Ref BddManager::cofactor(Ref f, int var, bool value) {
    LLS_REQUIRE(var >= 0 && var < num_vars_);
    const std::uint64_t wf = node_word(f);
    if (word_var(wf) > var) return f;  // f does not depend on var (order!)
    if (word_var(wf) == var) return value ? word_high(wf) : word_low(wf);
    // var is below f's top variable: rebuild via ite on restricted children.
    const Ref lo = cofactor(word_low(wf), var, value);
    const Ref hi = cofactor(word_high(wf), var, value);
    return ite(variable(word_var(wf)), hi, lo);
}

BddManager::Ref BddManager::exists(Ref f, int var) {
    return bor(cofactor(f, var, false), cofactor(f, var, true));
}

BddManager::Ref BddManager::forall(Ref f, int var) {
    return band(cofactor(f, var, false), cofactor(f, var, true));
}

bool BddManager::evaluate(Ref f, std::uint64_t assignment) const {
    while (f > kTrue) {
        const std::uint64_t w = node_word(f);
        f = ((assignment >> word_var(w)) & 1) ? word_high(w) : word_low(w);
    }
    return f == kTrue;
}

double BddManager::count_minterms(Ref f) const {
    // Fraction-based DP avoids overflow for many variables.
    std::unordered_map<Ref, double> fraction;
    fraction[kFalse] = 0.0;
    fraction[kTrue] = 1.0;
    // Iterative post-order via explicit stack.
    std::vector<Ref> stack{f};
    while (!stack.empty()) {
        const Ref r = stack.back();
        if (fraction.count(r)) {
            stack.pop_back();
            continue;
        }
        const std::uint64_t w = node_word(r);
        const Ref low = word_low(w), high = word_high(w);
        const bool lo_done = fraction.count(low);
        const bool hi_done = fraction.count(high);
        if (lo_done && hi_done) {
            fraction[r] = 0.5 * fraction[low] + 0.5 * fraction[high];
            stack.pop_back();
        } else {
            if (!lo_done) stack.push_back(low);
            if (!hi_done) stack.push_back(high);
        }
    }
    double scale = 1.0;
    for (int i = 0; i < num_vars_; ++i) scale *= 2.0;
    return fraction[f] * scale;
}

std::size_t BddManager::size(Ref f) const {
    std::vector<Ref> stack{f};
    std::unordered_map<Ref, bool> seen;
    std::size_t count = 0;
    while (!stack.empty()) {
        const Ref r = stack.back();
        stack.pop_back();
        if (r <= kTrue || seen.count(r)) continue;
        seen[r] = true;
        ++count;
        const std::uint64_t w = node_word(r);
        stack.push_back(word_low(w));
        stack.push_back(word_high(w));
    }
    return count;
}

BddStats BddManager::stats() const {
    BddStats s;
    s.unique_hits = unique_hits_.load(std::memory_order_relaxed);
    s.nodes_created = nodes_created_.load(std::memory_order_relaxed);
    s.ite_hits = ite_hits_.load(std::memory_order_relaxed);
    s.ite_misses = ite_misses_.load(std::memory_order_relaxed);
    s.ite_evictions = ite_evictions_.load(std::memory_order_relaxed);
    return s;
}

}  // namespace lls
