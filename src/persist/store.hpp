#pragma once

// Persistent cross-process memo store (docs/ENGINE.md, "Persistent memo
// store").
//
// A MemoStore is a directory of checksummed shard files, each holding
// section-tagged (key, value) byte records (persist/format.hpp). Every
// process publishes its new entries as its *own* shard via
// write-temp-then-atomic-rename, so parallel batch invocations can read
// and write one cache directory concurrently without locks: readers only
// ever see fully published files, and two writers never touch the same
// path. Duplicate keys across shards are benign — the memos are pure, so
// the last-loaded value equals every other one.
//
// Corruption is a first-class scenario, never an exception that escapes:
// a truncated, bit-flipped, or version-mismatched shard is rejected whole
// (its staged records discarded), the failure is recorded as a structured
// LlsError{IoError} note in the LoadReport, and the run continues cold.

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "persist/format.hpp"

namespace lls::persist {

/// What the store is allowed to do with the cache directory.
enum class StoreMode {
    Off,        ///< no store at all
    Read,       ///< import shards, never publish
    Write,      ///< publish fresh entries, never import (always cold)
    ReadWrite,  ///< import and publish (the CLI default for --cache-dir)
};

inline bool mode_reads(StoreMode m) { return m == StoreMode::Read || m == StoreMode::ReadWrite; }
inline bool mode_writes(StoreMode m) { return m == StoreMode::Write || m == StoreMode::ReadWrite; }

/// Parses the CLI grammar `read|write|rw|off`; nullopt on anything else.
std::optional<StoreMode> parse_store_mode(std::string_view text);

/// Outcome of scanning the cache directory. `notes` carries the formatted
/// LlsError{IoError} of every rejected shard — the "cold start" diagnoses
/// surfaced by `lls_opt` and the tests.
struct LoadReport {
    std::size_t files_scanned = 0;
    std::size_t files_loaded = 0;
    std::size_t files_rejected = 0;
    std::size_t records_loaded = 0;
    /// No persisted record made it in: nothing on disk, an off/write-only
    /// mode, or every shard rejected as corrupt.
    bool cold_start = true;
    std::vector<std::string> notes;
};

/// One on-disk memo store rooted at a directory. Thread-safe: the engine's
/// round-boundary flushes and batch items share one instance.
class MemoStore {
public:
    /// Binds the store to `dir` (created on demand in writing modes).
    /// Throws LlsError{IoError} only for unusable *write* setups (the
    /// directory cannot be created); read-side problems are contained in
    /// load().
    MemoStore(std::string dir, StoreMode mode);

    StoreMode mode() const { return mode_; }
    const std::string& dir() const { return dir_; }

    /// Scans the directory and stages every record of every intact shard.
    /// Rejected files are skipped whole and noted; this never throws for
    /// data-level problems. No-op (cold report) when the mode does not
    /// read. Call once, before the first optimization run.
    const LoadReport& load();
    const LoadReport& report() const { return report_; }

    /// Iterates the records loaded from disk for one section.
    void for_each_loaded(Section section,
                         const std::function<void(std::string_view key,
                                                  std::string_view value)>& fn) const;

    /// Stages a fresh record unless the key is already known (loaded or
    /// previously staged). `value_fn` is only invoked for genuinely new
    /// keys, so callers can serialize lazily. Returns true when staged.
    bool record(Section section, std::string key,
                const std::function<std::string()>& value_fn);

    std::size_t loaded_count() const;
    std::size_t fresh_count() const;

    /// Publishes the staged records as one new shard file (write temp,
    /// flush, atomic rename), then promotes them to "loaded". No-op when
    /// nothing is staged or the mode does not write. Publication failures
    /// are contained: noted in the report, counted in metrics, staged
    /// records kept for a later retry. Returns true when a shard was
    /// written.
    bool publish();

    /// When the directory has accumulated more than `max_shards` shard
    /// files, rewrites everything this store has seen (loaded + published)
    /// as one snapshot shard and deletes the files it merged — including
    /// corrupt rejects of the *current* format version, whose content has
    /// been re-derived by now. Shards of other concurrent processes and
    /// version-mismatched files are left alone.
    void compact(std::size_t max_shards = 8);

private:
    struct SectionMap {
        std::map<std::string, std::string> entries;  // ordered: deterministic shard bytes
    };
    static constexpr std::size_t kNumSections = 4;
    static std::size_t section_index(Section s);

    bool publish_locked();
    std::string encode_shard_locked() const;
    static void load_file(const std::string& path,
                          std::vector<std::tuple<Section, std::string, std::string>>* staged);

    const std::string dir_;
    const StoreMode mode_;

    mutable std::mutex mutex_;
    SectionMap loaded_[kNumSections];
    SectionMap fresh_[kNumSections];
    LoadReport report_;
    std::vector<std::string> merged_files_;  ///< loaded/published/corrupt-current-version paths
    std::uint64_t publish_seq_ = 0;
};

}  // namespace lls::persist
