#include "persist/store.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>
#include <tuple>

#include "engine/cache.hpp"
#include "engine/metrics.hpp"

namespace lls::persist {

namespace fs = std::filesystem;

namespace {

/// Unique shard names keep concurrent writers from ever publishing to the
/// same path: process entropy mixed with a fresh nonce per call. The nonce
/// matters within one process too — sequential MemoStore instances all
/// start their publish sequence at 0, and without it the second store's
/// first shard would overwrite the first's.
std::uint64_t shard_entropy() {
    static const std::uint64_t base = [] {
        std::random_device rd;
        std::uint64_t h = (std::uint64_t{rd()} << 32) ^ rd();
        h ^= static_cast<std::uint64_t>(
            std::chrono::steady_clock::now().time_since_epoch().count());
        return h ? h : 0x9e3779b97f4a7c15ULL;
    }();
    static std::atomic<std::uint64_t> instance{0};
    return hash_mix(base, instance.fetch_add(1, std::memory_order_relaxed));
}

std::string hex16(std::uint64_t v) {
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(v));
    return buf;
}

bool is_shard_path(const fs::path& p) {
    return p.extension() == kShardExtension &&
           p.filename().string().rfind(".tmp-", 0) != 0;
}

}  // namespace

std::optional<StoreMode> parse_store_mode(std::string_view text) {
    if (text == "off") return StoreMode::Off;
    if (text == "read") return StoreMode::Read;
    if (text == "write") return StoreMode::Write;
    if (text == "rw") return StoreMode::ReadWrite;
    return std::nullopt;
}

std::size_t MemoStore::section_index(Section s) {
    const auto raw = static_cast<std::uint8_t>(s);
    LLS_REQUIRE(raw >= 1 && raw <= kNumSections);
    return raw - 1;
}

MemoStore::MemoStore(std::string dir, StoreMode mode) : dir_(std::move(dir)), mode_(mode) {
    if (mode_ == StoreMode::Off) return;
    if (mode_writes(mode_)) {
        std::error_code ec;
        fs::create_directories(dir_, ec);
        if (ec && !fs::is_directory(dir_))
            throw LlsError(ErrorKind::IoError,
                           "cannot create cache directory '" + dir_ + "': " + ec.message(),
                           "persist");
    }
}

/// Decodes one shard file into `staged`. Throws LlsError{IoError} on any
/// header, framing, or checksum problem; `*current_version` tells the
/// caller whether the file at least declared our format version (and is
/// therefore safe for compaction to delete once its content is re-derived).
void MemoStore::load_file(const std::string& path,
                          std::vector<std::tuple<Section, std::string, std::string>>* staged) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw LlsError(ErrorKind::IoError, "cannot open shard '" + path + "'", "persist");
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string bytes = buffer.str();
    if (!in.good() && !in.eof())
        throw LlsError(ErrorKind::IoError, "read failure on shard '" + path + "'", "persist");

    ByteReader reader(bytes);
    if (reader.remaining() < sizeof(kMagic) + 8 ||
        std::string_view(bytes).substr(0, sizeof(kMagic)) !=
            std::string_view(kMagic, sizeof(kMagic)))
        throw LlsError(ErrorKind::IoError, "shard '" + path + "' has no LLSMEMO1 header",
                       "persist");
    for (std::size_t i = 0; i < sizeof(kMagic); ++i) reader.u8();
    const std::uint32_t version = reader.u32();
    if (version != kFormatVersion)
        throw LlsError(ErrorKind::IoError,
                       "shard '" + path + "' has format version " + std::to_string(version) +
                           ", expected " + std::to_string(kFormatVersion),
                       "persist");
    reader.u32();  // reserved flags

    while (!reader.at_end()) {
        const std::uint32_t len = reader.u32();
        if (len > reader.remaining())
            throw LlsError(ErrorKind::IoError, "truncated record in shard '" + path + "'",
                           "persist");
        // Re-slice the payload so a record decoder can never read past its
        // own frame into the next record.
        const std::size_t payload_at = bytes.size() - reader.remaining();
        const std::string_view payload = std::string_view(bytes).substr(payload_at, len);
        for (std::uint32_t i = 0; i < len; ++i) reader.u8();
        const std::uint64_t checksum = reader.u64();
        if (checksum != fnv1a(payload))
            throw LlsError(ErrorKind::IoError, "checksum mismatch in shard '" + path + "'",
                           "persist");
        ByteReader record(payload);
        const std::uint8_t section_raw = record.u8();
        const std::string key(record.blob());
        const std::string value(record.blob());
        record.expect_end();
        if (section_raw < 1 || section_raw > kNumSections) continue;  // future section: skip
        staged->emplace_back(static_cast<Section>(section_raw), key, value);
    }
}

const LoadReport& MemoStore::load() {
    std::lock_guard<std::mutex> lock(mutex_);
    Metrics& metrics = Metrics::global();
    report_ = LoadReport{};
    if (!mode_reads(mode_)) return report_;

    std::error_code ec;
    std::vector<std::string> paths;
    for (fs::directory_iterator it(dir_, ec), end; !ec && it != end; it.increment(ec)) {
        if (it->is_regular_file(ec) && is_shard_path(it->path()))
            paths.push_back(it->path().string());
    }
    // Deterministic load order (duplicate keys resolve identically no
    // matter how the directory iterates — the values are equal anyway,
    // since every entry is a pure memo).
    std::sort(paths.begin(), paths.end());

    for (const auto& path : paths) {
        ++report_.files_scanned;
        std::vector<std::tuple<Section, std::string, std::string>> staged;
        bool current_version = true;
        try {
            load_file(path, &staged);
        } catch (const std::exception& e) {
            // Rejected whole: nothing of a corrupt shard is kept, so a
            // half-loaded file can never mix intact and damaged records.
            ++report_.files_rejected;
            report_.notes.push_back(e.what());
            current_version =
                std::string_view(e.what()).find("format version") == std::string_view::npos;
            if (current_version) merged_files_.push_back(path);
            metrics.counter("persist.load.rejected").add();
            continue;
        }
        for (auto& [section, key, value] : staged)
            loaded_[section_index(section)].entries.insert_or_assign(std::move(key),
                                                                     std::move(value));
        report_.records_loaded += staged.size();
        ++report_.files_loaded;
        merged_files_.push_back(path);
        metrics.counter("persist.load.shards").add();
        metrics.counter("persist.load.records").add(staged.size());
    }
    report_.cold_start = report_.records_loaded == 0;
    return report_;
}

void MemoStore::for_each_loaded(
    Section section,
    const std::function<void(std::string_view, std::string_view)>& fn) const {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [key, value] : loaded_[section_index(section)].entries) fn(key, value);
}

bool MemoStore::record(Section section, std::string key,
                       const std::function<std::string()>& value_fn) {
    if (!mode_writes(mode_)) return false;
    std::lock_guard<std::mutex> lock(mutex_);
    const std::size_t s = section_index(section);
    if (loaded_[s].entries.count(key) || fresh_[s].entries.count(key)) return false;
    fresh_[s].entries.emplace(std::move(key), value_fn());
    return true;
}

std::size_t MemoStore::loaded_count() const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::size_t n = 0;
    for (const auto& section : loaded_) n += section.entries.size();
    return n;
}

std::size_t MemoStore::fresh_count() const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::size_t n = 0;
    for (const auto& section : fresh_) n += section.entries.size();
    return n;
}

/// Serializes every *fresh* record as one shard image.
std::string MemoStore::encode_shard_locked() const {
    ByteWriter shard;
    shard.raw(std::string_view(kMagic, sizeof(kMagic)));
    shard.u32(kFormatVersion);
    shard.u32(0);  // reserved
    for (std::size_t s = 0; s < kNumSections; ++s) {
        for (const auto& [key, value] : fresh_[s].entries) {
            ByteWriter payload;
            payload.u8(static_cast<std::uint8_t>(s + 1));
            payload.blob(key);
            payload.blob(value);
            shard.u32(static_cast<std::uint32_t>(payload.str().size()));
            shard.raw(payload.str());
            shard.u64(fnv1a(payload.str()));
        }
    }
    return shard.take();
}

bool MemoStore::publish_locked() {
    Metrics& metrics = Metrics::global();
    std::size_t fresh_records = 0;
    for (const auto& section : fresh_) fresh_records += section.entries.size();
    if (fresh_records == 0 || !mode_writes(mode_)) return false;

    const std::string bytes = encode_shard_locked();
    const std::string name =
        "memo-" + hex16(shard_entropy() ^ (publish_seq_ * 0x9e3779b97f4a7c15ULL)) + "-" +
        std::to_string(publish_seq_) + kShardExtension;
    ++publish_seq_;
    const std::string tmp_path = dir_ + "/.tmp-" + name;
    const std::string final_path = dir_ + "/" + name;
    {
        std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
        out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
        out.flush();
        if (!out.good()) {
            std::error_code ec;
            fs::remove(tmp_path, ec);
            report_.notes.push_back(LlsError(ErrorKind::IoError,
                                             "cannot write shard '" + tmp_path + "'", "persist")
                                        .what());
            metrics.counter("persist.store.failures").add();
            return false;  // staged records kept; a later flush retries
        }
    }
    std::error_code ec;
    fs::rename(tmp_path, final_path, ec);
    if (ec) {
        fs::remove(tmp_path, ec);
        report_.notes.push_back(
            LlsError(ErrorKind::IoError, "cannot publish shard '" + final_path + "'", "persist")
                .what());
        metrics.counter("persist.store.failures").add();
        return false;
    }
    for (std::size_t s = 0; s < kNumSections; ++s) {
        for (auto& [key, value] : fresh_[s].entries)
            loaded_[s].entries.insert_or_assign(key, std::move(value));
        fresh_[s].entries.clear();
    }
    merged_files_.push_back(final_path);
    metrics.counter("persist.store.shards").add();
    metrics.counter("persist.store.records").add(fresh_records);
    return true;
}

bool MemoStore::publish() {
    std::lock_guard<std::mutex> lock(mutex_);
    return publish_locked();
}

void MemoStore::compact(std::size_t max_shards) {
    std::lock_guard<std::mutex> lock(mutex_);
    publish_locked();
    if (!mode_writes(mode_)) return;

    std::error_code ec;
    std::size_t shard_files = 0;
    for (fs::directory_iterator it(dir_, ec), end; !ec && it != end; it.increment(ec))
        if (it->is_regular_file(ec) && is_shard_path(it->path())) ++shard_files;
    if (shard_files <= max_shards || merged_files_.empty()) return;

    // Re-stage everything we have seen as one snapshot, publish it, then
    // delete only the files whose content that snapshot subsumes. Shards
    // of concurrent processes we never loaded stay untouched.
    for (std::size_t s = 0; s < kNumSections; ++s)
        for (const auto& [key, value] : loaded_[s].entries)
            fresh_[s].entries.insert_or_assign(key, value);
    std::vector<std::string> to_delete;
    to_delete.swap(merged_files_);
    if (!publish_locked()) {
        merged_files_ = std::move(to_delete);  // snapshot failed: delete nothing
        for (auto& section : fresh_) section.entries.clear();
        return;
    }
    for (const auto& path : to_delete) fs::remove(path, ec);
    Metrics::global().counter("persist.store.compactions").add();
}

}  // namespace lls::persist
