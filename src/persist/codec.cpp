#include "persist/codec.hpp"

namespace lls::persist {

namespace {

[[noreturn]] void malformed(const std::string& what) {
    throw LlsError(ErrorKind::IoError, what, "persist");
}

/// Bounds a varint that will be narrowed to a vector size or int field.
std::uint64_t bounded(std::uint64_t v, std::uint64_t max, const char* what) {
    if (v > max) malformed(std::string("persisted ") + what + " out of range");
    return v;
}

void encode_truth_table(ByteWriter& out, const TruthTable& tt) {
    out.varint(static_cast<std::uint64_t>(tt.num_vars()));
    out.blob(tt.to_hex());
}

TruthTable decode_truth_table(ByteReader& in) {
    const int num_vars =
        static_cast<int>(bounded(in.varint(), TruthTable::kMaxVars, "truth-table arity"));
    const std::string_view hex = in.blob();
    try {
        return TruthTable::from_hex(num_vars, std::string(hex));
    } catch (const std::exception& e) {
        malformed(std::string("persisted truth table rejected: ") + e.what());
    }
}

}  // namespace

std::string encode_pair_key(std::uint64_t a, std::uint64_t b) {
    ByteWriter w;
    w.u64(a);
    w.u64(b);
    return w.take();
}

std::pair<std::uint64_t, std::uint64_t> decode_pair_key(std::string_view key) {
    ByteReader r(key);
    const std::uint64_t a = r.u64();
    const std::uint64_t b = r.u64();
    r.expect_end();
    return {a, b};
}

void encode_aig(ByteWriter& out, const Aig& aig) {
    out.u64(aig.hash());
    out.varint(aig.num_pis());
    out.varint(aig.num_nodes());
    for (std::uint32_t id = 1; id < aig.num_nodes(); ++id) {
        if (aig.is_pi(id)) {
            out.u8(0);
        } else {
            const auto& n = aig.node(id);
            out.u8(1);
            out.u32(n.fanin0.value);
            out.u32(n.fanin1.value);
        }
    }
    out.varint(aig.num_pos());
    for (std::size_t o = 0; o < aig.num_pos(); ++o) out.u32(aig.po(o).value);
}

Aig decode_aig(ByteReader& in) {
    const std::uint64_t expected_hash = in.u64();
    const std::size_t num_pis =
        static_cast<std::size_t>(bounded(in.varint(), 1u << 24, "AIG PI count"));
    const std::size_t num_nodes =
        static_cast<std::size_t>(bounded(in.varint(), 1u << 26, "AIG node count"));
    if (num_nodes < 1 + num_pis) malformed("persisted AIG node count below PI count");

    Aig aig;
    for (std::uint32_t id = 1; id < num_nodes; ++id) {
        const std::uint8_t tag = in.u8();
        if (tag == 0) {
            const AigLit pi = aig.add_pi();
            if (pi.node() != id) malformed("persisted AIG replay produced a different PI id");
        } else if (tag == 1) {
            const AigLit f0{in.u32()}, f1{in.u32()};
            if (f0.node() >= id || f1.node() >= id)
                malformed("persisted AIG fanin references a later node");
            // The replay invariant: this AND was created fresh by land() at
            // exactly this id, so the same call must reproduce it — any
            // normalization or strash short-circuit means the record does
            // not describe a cleanup-built graph and is rejected.
            const AigLit lit = aig.land(f0, f1);
            if (lit != AigLit::make(id, false))
                malformed("persisted AIG replay diverged from the recorded structure");
        } else {
            malformed("persisted AIG has an unknown node tag");
        }
    }
    const std::size_t num_pos =
        static_cast<std::size_t>(bounded(in.varint(), 1u << 24, "AIG PO count"));
    for (std::size_t o = 0; o < num_pos; ++o) {
        const AigLit po{in.u32()};
        if (po.node() >= num_nodes) malformed("persisted AIG PO references a missing node");
        aig.add_po(po);
    }
    if (aig.num_pis() != num_pis) malformed("persisted AIG PI count mismatch");
    if (aig.hash() != expected_hash) malformed("persisted AIG hash mismatch after replay");
    return aig;
}

std::string encode_cone_evaluation(const ConeEvaluation& evaluation) {
    LLS_REQUIRE(evaluation.faults.empty());  // faulted entries are never persisted
    ByteWriter w;
    w.u8(evaluation.outcome ? 1 : 0);
    w.varint(evaluation.cost.decompositions);
    w.varint(evaluation.cost.sat_conflicts);
    if (evaluation.outcome) {
        const DecomposeOutcome& outcome = *evaluation.outcome;
        w.varint(static_cast<std::uint64_t>(outcome.old_depth));
        w.varint(static_cast<std::uint64_t>(outcome.new_depth));
        w.varint(static_cast<std::uint64_t>(outcome.num_windows));
        w.blob(outcome.reconstruction);
        encode_aig(w, outcome.aig);
    }
    return w.take();
}

ConeEvaluation decode_cone_evaluation(std::string_view bytes) {
    ByteReader r(bytes);
    const std::uint8_t flags = r.u8();
    if (flags > 1) malformed("persisted cone evaluation has unknown flags");
    ConeEvaluation evaluation;
    evaluation.cost.decompositions = r.varint();
    evaluation.cost.sat_conflicts = r.varint();
    if (flags & 1) {
        DecomposeOutcome outcome;
        outcome.old_depth = static_cast<int>(bounded(r.varint(), 1u << 30, "cone depth"));
        outcome.new_depth = static_cast<int>(bounded(r.varint(), 1u << 30, "cone depth"));
        outcome.num_windows = static_cast<int>(bounded(r.varint(), 1u << 30, "window count"));
        outcome.reconstruction = std::string(r.blob());
        outcome.aig = decode_aig(r);
        evaluation.outcome = std::make_shared<const DecomposeOutcome>(std::move(outcome));
    }
    r.expect_end();
    return evaluation;
}

std::string encode_cec_verdict(bool equivalent) {
    ByteWriter w;
    w.u8(equivalent ? 1 : 0);
    return w.take();
}

bool decode_cec_verdict(std::string_view bytes) {
    ByteReader r(bytes);
    const std::uint8_t v = r.u8();
    if (v > 1) malformed("persisted CEC verdict is not a boolean");
    r.expect_end();
    return v == 1;
}

std::string encode_npn_result(const NpnResult& npn) {
    ByteWriter w;
    encode_truth_table(w, npn.canonical);
    w.varint(npn.perm.size());
    for (const int p : npn.perm) w.varint(static_cast<std::uint64_t>(p));
    w.u32(npn.input_negation);
    w.u8(npn.output_negation ? 1 : 0);
    return w.take();
}

NpnResult decode_npn_result(std::string_view bytes) {
    ByteReader r(bytes);
    NpnResult npn;
    npn.canonical = decode_truth_table(r);
    const std::size_t n =
        static_cast<std::size_t>(bounded(r.varint(), TruthTable::kMaxVars, "NPN perm size"));
    npn.perm.resize(n);
    for (std::size_t i = 0; i < n; ++i)
        npn.perm[i] = static_cast<int>(bounded(r.varint(), n ? n - 1 : 0, "NPN perm entry"));
    npn.input_negation = r.u32();
    const std::uint8_t out_neg = r.u8();
    if (out_neg > 1) malformed("persisted NPN output negation is not a boolean");
    npn.output_negation = out_neg == 1;
    r.expect_end();
    return npn;
}

std::string encode_exact_structure(const std::optional<ExactStructure>& structure) {
    ByteWriter w;
    w.u8(structure ? 1 : 0);
    if (structure) {
        w.varint(static_cast<std::uint64_t>(structure->num_inputs));
        w.varint(structure->gates.size());
        for (const auto& g : structure->gates) {
            w.varint(static_cast<std::uint64_t>(g.fanin0));
            w.varint(static_cast<std::uint64_t>(g.fanin1));
            w.u8(static_cast<std::uint8_t>((g.complement0 ? 1 : 0) | (g.complement1 ? 2 : 0)));
        }
        w.varint(static_cast<std::uint64_t>(structure->output_signal));
        w.u8(static_cast<std::uint8_t>((structure->output_complemented ? 1 : 0) |
                                       (structure->output_constant ? 2 : 0)));
    }
    return w.take();
}

std::optional<ExactStructure> decode_exact_structure(std::string_view bytes) {
    ByteReader r(bytes);
    const std::uint8_t present = r.u8();
    if (present > 1) malformed("persisted exact structure has unknown flags");
    if (!present) {
        r.expect_end();
        return std::nullopt;
    }
    ExactStructure s;
    s.num_inputs = static_cast<int>(bounded(r.varint(), 16, "exact-structure input count"));
    const std::size_t num_gates =
        static_cast<std::size_t>(bounded(r.varint(), 64, "exact-structure gate count"));
    s.gates.resize(num_gates);
    for (std::size_t i = 0; i < num_gates; ++i) {
        // Gate i may only read inputs and earlier gates.
        const std::uint64_t max_signal = static_cast<std::uint64_t>(s.num_inputs) + i;
        s.gates[i].fanin0 =
            static_cast<int>(bounded(r.varint(), max_signal ? max_signal - 1 : 0, "gate fanin"));
        s.gates[i].fanin1 =
            static_cast<int>(bounded(r.varint(), max_signal ? max_signal - 1 : 0, "gate fanin"));
        const std::uint8_t flags = r.u8();
        if (flags > 3) malformed("persisted gate has unknown complement flags");
        s.gates[i].complement0 = flags & 1;
        s.gates[i].complement1 = flags & 2;
    }
    const std::uint64_t max_out = static_cast<std::uint64_t>(s.num_inputs) + num_gates;
    s.output_signal =
        static_cast<int>(bounded(r.varint(), max_out ? max_out - 1 : 0, "output signal"));
    const std::uint8_t out_flags = r.u8();
    if (out_flags > 3) malformed("persisted structure has unknown output flags");
    s.output_complemented = out_flags & 1;
    s.output_constant = out_flags & 2;
    r.expect_end();
    return s;
}

}  // namespace lls::persist
