#pragma once

// Value codecs of the persistent memo store: byte encodings for the
// payloads of each Section (persist/format.hpp). Every decoder validates
// what it reads and throws LlsError{IoError, "persist"} on anything
// malformed — the warm-start bridge turns that into a skipped record, so a
// logically inconsistent value (as opposed to the bit-level corruption the
// per-record checksums catch) degrades to a recompute, never a crash or a
// wrong structure.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

#include "aig/aig.hpp"
#include "engine/memo.hpp"
#include "exact/exact_synthesis.hpp"
#include "persist/format.hpp"
#include "tt/npn.hpp"

namespace lls::persist {

/// 16-byte key of the (u64, u64)-keyed sections (Decompose, Cec).
std::string encode_pair_key(std::uint64_t a, std::uint64_t b);
/// Throws LlsError{IoError} unless `key` is exactly 16 bytes.
std::pair<std::uint64_t, std::uint64_t> decode_pair_key(std::string_view key);

/// AIG structure codec by land()-replay. Outcome AIGs are cleanup() /
/// extract_cone() products: node 0 is the constant, PIs come first, and
/// every AND was freshly created by land() in id order — so replaying the
/// recorded nodes through land() in a new Aig reproduces the identical
/// graph, verified node by node and by the final structural hash. Names
/// are not stored (the engine's commit step never reads them and hash()
/// excludes them).
void encode_aig(ByteWriter& out, const Aig& aig);
Aig decode_aig(ByteReader& in);

/// ConeEvaluation codec (Section::Decompose values). Only fault-free
/// evaluations may be encoded — persisting a fault history would be
/// redundant (injection is deterministic, the recompute replays it) and
/// the decoder always returns an empty one.
std::string encode_cone_evaluation(const ConeEvaluation& evaluation);
ConeEvaluation decode_cone_evaluation(std::string_view bytes);

/// CEC verdict codec (Section::Cec values).
std::string encode_cec_verdict(bool equivalent);
bool decode_cec_verdict(std::string_view bytes);

/// NpnResult codec (Section::Npn values).
std::string encode_npn_result(const NpnResult& npn);
NpnResult decode_npn_result(std::string_view bytes);

/// optional<ExactStructure> codec (Section::ExactStruct values); nullopt
/// records "no realization within the gate/conflict bounds".
std::string encode_exact_structure(const std::optional<ExactStructure>& structure);
std::optional<ExactStructure> decode_exact_structure(std::string_view bytes);

}  // namespace lls::persist
