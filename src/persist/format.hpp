#pragma once

// Binary record framing of the persistent memo store (docs/ENGINE.md,
// "Persistent memo store").
//
// A shard file is:
//
//   magic "LLSMEMO1" (8 bytes)
//   format version   (u32 LE)
//   reserved flags   (u32 LE, zero)
//   record*          (until EOF)
//
// and each record is individually framed and checksummed:
//
//   payload length   (u32 LE)
//   payload          (section u8 | key blob | value blob)
//   checksum         (u64 LE, FNV-1a of the payload bytes)
//
// Per-record checksums make the format append-friendly: a writer can add
// records to the end of a file without rewriting anything, and a reader
// detects a truncated tail or a flipped bit without trusting a whole-file
// digest. Every integrity failure is raised as LlsError{IoError, stage
// "persist"}; the store layer contains it by rejecting the file (cold
// start), never by crashing.

#include <cstdint>
#include <string>
#include <string_view>

#include "common/error.hpp"

namespace lls::persist {

inline constexpr char kMagic[8] = {'L', 'L', 'S', 'M', 'E', 'M', 'O', '1'};
inline constexpr std::uint32_t kFormatVersion = 1;
/// Shard files published by the store; anything else in the cache
/// directory (temp files, journals, stray files) is ignored by the loader.
inline constexpr const char* kShardExtension = ".shard";

/// Memo sections of the store. Values are part of the on-disk format —
/// never renumber; add new sections at the end. An unknown section id in a
/// structurally valid record is skipped (forward compatibility), not an
/// error.
enum class Section : std::uint8_t {
    Decompose = 1,    ///< (cone hash, params fp) -> ConeEvaluation
    Cec = 2,          ///< ordered structural-hash pair -> verdict
    Npn = 3,          ///< truth-table key -> NpnResult
    ExactStruct = 4,  ///< canonical-class key -> optional<ExactStructure>
};

/// FNV-1a over arbitrary bytes — the per-record checksum.
inline std::uint64_t fnv1a(std::string_view bytes,
                           std::uint64_t h = 0xcbf29ce484222325ULL) {
    for (const char c : bytes) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ULL;
    }
    return h;
}

/// Little-endian append-only byte buffer: fixed-width ints, LEB128
/// varints, and length-prefixed blobs. The encoding layer of both record
/// payloads and whole shard files.
class ByteWriter {
public:
    void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }

    void u32(std::uint32_t v) {
        for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }

    void u64(std::uint64_t v) {
        for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }

    void varint(std::uint64_t v) {
        while (v >= 0x80) {
            buf_.push_back(static_cast<char>(0x80 | (v & 0x7f)));
            v >>= 7;
        }
        buf_.push_back(static_cast<char>(v));
    }

    void raw(std::string_view bytes) { buf_.append(bytes); }

    void blob(std::string_view bytes) {
        varint(bytes.size());
        raw(bytes);
    }

    const std::string& str() const { return buf_; }
    std::string take() { return std::move(buf_); }

private:
    std::string buf_;
};

/// Bounds-checked reader over a byte span. Every underrun or malformed
/// varint throws LlsError{IoError, "persist"} — the store layer turns that
/// into a rejected shard, so a truncated or bit-flipped file can never
/// crash the process or smuggle in a half-read record.
class ByteReader {
public:
    explicit ByteReader(std::string_view data) : data_(data) {}

    std::uint8_t u8() { return static_cast<std::uint8_t>(need(1)[0]); }

    std::uint32_t u32() {
        const std::string_view b = need(4);
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i) v |= std::uint32_t(static_cast<unsigned char>(b[i])) << (8 * i);
        return v;
    }

    std::uint64_t u64() {
        const std::string_view b = need(8);
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i) v |= std::uint64_t(static_cast<unsigned char>(b[i])) << (8 * i);
        return v;
    }

    std::uint64_t varint() {
        std::uint64_t v = 0;
        for (int shift = 0; shift < 64; shift += 7) {
            const auto byte = static_cast<unsigned char>(need(1)[0]);
            v |= std::uint64_t(byte & 0x7f) << shift;
            if (!(byte & 0x80)) return v;
        }
        throw LlsError(ErrorKind::IoError, "varint longer than 64 bits", "persist");
    }

    std::string_view blob() {
        const std::uint64_t n = varint();
        if (n > remaining())
            throw LlsError(ErrorKind::IoError, "blob length past end of record", "persist");
        return need(static_cast<std::size_t>(n));
    }

    std::size_t remaining() const { return data_.size() - pos_; }
    bool at_end() const { return pos_ == data_.size(); }

    void expect_end() const {
        if (!at_end())
            throw LlsError(ErrorKind::IoError, "trailing bytes after record payload", "persist");
    }

private:
    std::string_view need(std::size_t n) {
        if (remaining() < n)
            throw LlsError(ErrorKind::IoError, "unexpected end of record", "persist");
        const std::string_view out = data_.substr(pos_, n);
        pos_ += n;
        return out;
    }

    std::string_view data_;
    std::size_t pos_ = 0;
};

}  // namespace lls::persist
