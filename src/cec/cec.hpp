#pragma once

#include <optional>
#include <vector>

#include "aig/aig.hpp"
#include "common/rng.hpp"
#include "common/run_context.hpp"
#include "sat/solver.hpp"

namespace lls {

/// Tseitin-encodes every node of `aig` into `solver`, using `pi_vars[i]` as
/// the variable of PI i (they must already exist). Returns one SAT literal
/// per PO.
std::vector<sat::Lit> encode_aig(const Aig& aig, sat::Solver& solver,
                                 const std::vector<int>& pi_vars);

/// Like encode_aig, but returns the SAT literal of every AIG *node*
/// (index = node id), letting callers constrain internal signals.
std::vector<sat::Lit> encode_aig_nodes(const Aig& aig, sat::Solver& solver,
                                       const std::vector<int>& pi_vars);

/// SAT literal of an AIG literal given the per-node encoding.
inline sat::Lit sat_lit_of(const std::vector<sat::Lit>& node_lits, AigLit lit) {
    const sat::Lit s = node_lits[lit.node()];
    return lit.complemented() ? !s : s;
}

struct CecResult {
    bool equivalent = false;
    bool resolved = true;                     ///< false when a conflict limit was hit
    std::vector<bool> counterexample;         ///< PI assignment when not equivalent
};

/// SAT-based combinational equivalence check of two AIGs with identical
/// PI/PO interfaces (the paper's post-optimization verification step).
/// A bit-parallel random-simulation pre-pass catches most inequivalences
/// without touching the solver. `ctx` (common/run_context.hpp) is the
/// caller's run context: its `cost` sink (when attached) accumulates the
/// SAT conflicts spent by the internal sweep and the final miter
/// (deterministic work metering for budgeted runs, common/budget.hpp),
/// and its cancellation sources are bound into every solver so a fired
/// cone deadline or shutdown token reaches the miter mid-solve.
CecResult check_equivalence(const Aig& a, const Aig& b, std::int64_t conflict_limit = -1,
                            const RunContext& ctx = RunContext{});

/// SAT sweeping (fraiging): merges functionally equivalent internal nodes,
/// up to complement. Candidates are proposed by random-simulation
/// signatures (refined with counterexamples from failed proofs) and proven
/// by SAT; unresolved candidates are left unmerged, so the result is always
/// equivalent to the input. Used as the "standard redundancy elimination"
/// area-recovery step of the paper.
///
/// With `depth_aware` set (the default, for area recovery inside the
/// synthesis flow) a node is never merged into a *deeper* representative;
/// the CEC path disables this so structurally different implementations can
/// collapse onto each other.
///
/// `ctx.cost` (when attached) accumulates the solver's conflicts; the
/// sweep additionally polls cancellation between individual SAT queries —
/// not just inside the solve loop — so `--cone-deadline` and shutdown
/// tokens fire at query granularity during area recovery.
Aig sat_sweep(const Aig& aig, Rng& rng, std::int64_t conflict_limit = 2000,
              std::size_t num_patterns = 1024, bool depth_aware = true,
              const RunContext& ctx = RunContext{});

}  // namespace lls
