#include "cec/redundancy.hpp"

#include "cec/cec.hpp"
#include "common/cancel.hpp"
#include "sim/simulation.hpp"

namespace lls {

namespace {

/// Copy of `aig` with one fanin edge of one AND node tied to constant 1
/// (the stuck-at-1 faulty machine; the AND then passes its other input).
Aig with_edge_stuck_at_1(const Aig& aig, std::uint32_t node, int slot) {
    Aig out;
    std::vector<AigLit> remap(aig.num_nodes(), AigLit::constant(false));
    for (std::size_t i = 0; i < aig.num_pis(); ++i) remap[aig.pi(i)] = out.add_pi(aig.pi_name(i));
    for (std::uint32_t id = 1; id < aig.num_nodes(); ++id) {
        if (!aig.is_and(id)) continue;
        const auto& n = aig.node(id);
        auto lit_of = [&](AigLit l) { return l.complemented() ? !remap[l.node()] : remap[l.node()]; };
        AigLit f0 = lit_of(n.fanin0);
        AigLit f1 = lit_of(n.fanin1);
        if (id == node) (slot == 0 ? f0 : f1) = AigLit::constant(true);
        remap[id] = out.land(f0, f1);
    }
    for (std::size_t o = 0; o < aig.num_pos(); ++o) {
        const AigLit po = aig.po(o);
        out.add_po(po.complemented() ? !remap[po.node()] : remap[po.node()], aig.po_name(o));
    }
    return out;
}

}  // namespace

Aig remove_redundancies(const Aig& aig, Rng& rng, int max_removals,
                        std::int64_t conflict_limit, const RunContext& ctx) {
    Aig current = aig.cleanup();
    // Each accepted removal renumbers the graph, so the scan restarts; a
    // full scan without a find is the fixpoint. Removing one redundancy can
    // un-redundify others, which the restart handles naturally.
    for (int removals = 0; removals < max_removals; ++removals) {
        const SimPatterns patterns =
            current.num_pis() <= SimPatterns::kMaxExhaustivePis
                ? SimPatterns::exhaustive(current.num_pis())
                : SimPatterns::random(current.num_pis(), 2048, rng);
        const auto good_sigs = simulate(current, patterns);

        bool changed = false;
        for (std::uint32_t id = 1; id < current.num_nodes() && !changed; ++id) {
            if (!current.is_and(id)) continue;
            for (int slot = 0; slot < 2 && !changed; ++slot) {
                poll_cancellation("redundancy");
                ctx.poll_cancellation("redundancy");
                const Aig faulty = with_edge_stuck_at_1(current, id, slot);

                // Simulation screen: a pattern that detects the fault
                // proves the edge non-redundant.
                const auto faulty_sigs = simulate(faulty, patterns);
                bool detected = false;
                for (std::size_t o = 0; o < current.num_pos() && !detected; ++o) {
                    const Signature a = literal_signature(current, current.po(o), good_sigs,
                                                          patterns.num_patterns());
                    const Signature b = literal_signature(faulty, faulty.po(o), faulty_sigs,
                                                          patterns.num_patterns());
                    if (a != b) detected = true;
                }
                if (detected) continue;
                if (!patterns.is_exhaustive()) {
                    const CecResult cec = check_equivalence(current, faulty, conflict_limit, ctx);
                    if (!cec.resolved || !cec.equivalent) continue;
                }
                current = faulty.cleanup();
                changed = true;
            }
        }
        if (!changed) break;  // full scan found nothing: fixpoint reached
    }
    return current;
}

}  // namespace lls
