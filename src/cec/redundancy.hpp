#pragma once

#include "aig/aig.hpp"
#include "common/rng.hpp"
#include "common/run_context.hpp"

namespace lls {

/// Classic redundancy elimination (the "standard redundancy elimination
/// algorithms" the paper names as its area-recovery step): an AND-gate input
/// is redundant iff the stuck-at-1 fault on that input is untestable, i.e.
/// replacing the edge by constant 1 preserves every output. Each candidate
/// is screened by random simulation (testable faults are cheap to witness)
/// and surviving candidates are proven by the fraiging CEC. The result is
/// always equivalent to the input.
///
/// Exhaustive by nature (every edge is a candidate), so intended for
/// small/medium circuits and for the ablation studies; `max_removals`
/// bounds the fixpoint iteration. `ctx` carries the caller's work-cost
/// sink and cancellation sources (common/run_context.hpp): each candidate
/// edge polls cancellation before its (potentially expensive) SAT proof.
Aig remove_redundancies(const Aig& aig, Rng& rng, int max_removals = 100,
                        std::int64_t conflict_limit = 100000,
                        const RunContext& ctx = RunContext{});

}  // namespace lls
