#include "cec/cec.hpp"

#include "aig/aig_build.hpp"

#include <algorithm>
#include <unordered_map>

#include "common/bitops.hpp"
#include "common/cancel.hpp"
#include "sim/simulation.hpp"

namespace lls {

std::vector<sat::Lit> encode_aig_nodes(const Aig& aig, sat::Solver& solver,
                                       const std::vector<int>& pi_vars) {
    LLS_REQUIRE(pi_vars.size() == aig.num_pis());
    // node_lit[id] = SAT literal equal to the node's (uncomplemented) value.
    std::vector<sat::Lit> node_lit(aig.num_nodes());

    // Constant node: a dedicated variable forced to 0.
    const int const_var = solver.new_var();
    solver.add_clause(sat::Lit(const_var, true));
    node_lit[0] = sat::Lit(const_var, false);

    for (std::size_t i = 0; i < aig.num_pis(); ++i)
        node_lit[aig.pi(i)] = sat::Lit(pi_vars[i], false);

    auto lit_of = [&](AigLit l) {
        const sat::Lit s = node_lit[l.node()];
        return l.complemented() ? !s : s;
    };

    for (std::uint32_t id = 1; id < aig.num_nodes(); ++id) {
        if (!aig.is_and(id)) continue;
        const auto& n = aig.node(id);
        const sat::Lit a = lit_of(n.fanin0);
        const sat::Lit b = lit_of(n.fanin1);
        const sat::Lit c = sat::Lit(solver.new_var(), false);
        solver.add_clause(!c, a);
        solver.add_clause(!c, b);
        solver.add_clause(c, !a, !b);
        node_lit[id] = c;
    }
    return node_lit;
}

std::vector<sat::Lit> encode_aig(const Aig& aig, sat::Solver& solver,
                                 const std::vector<int>& pi_vars) {
    const auto node_lit = encode_aig_nodes(aig, solver, pi_vars);
    std::vector<sat::Lit> pos;
    pos.reserve(aig.num_pos());
    for (std::size_t i = 0; i < aig.num_pos(); ++i) pos.push_back(sat_lit_of(node_lit, aig.po(i)));
    return pos;
}

namespace {

/// Random-simulation pre-pass: returns a counterexample pattern index if
/// some PO differs, together with the pattern set used.
std::optional<std::vector<bool>> simulation_counterexample(const Aig& a, const Aig& b) {
    Rng rng(0x5eedu);
    SimPatterns patterns =
        a.num_pis() <= SimPatterns::kMaxExhaustivePis
            ? SimPatterns::exhaustive(a.num_pis())
            : SimPatterns::random(a.num_pis(), 2048, rng);
    const auto sa = simulate(a, patterns);
    const auto sb = simulate(b, patterns);
    for (std::size_t o = 0; o < a.num_pos(); ++o) {
        const Signature va = literal_signature(a, a.po(o), sa, patterns.num_patterns());
        const Signature vb = literal_signature(b, b.po(o), sb, patterns.num_patterns());
        for (std::size_t w = 0; w < va.size(); ++w) {
            const std::uint64_t diff = va[w] ^ vb[w];
            if (!diff) continue;
            const std::size_t p = w * 64 + static_cast<std::size_t>(std::countr_zero(diff));
            std::vector<bool> cex(a.num_pis());
            for (std::size_t i = 0; i < a.num_pis(); ++i) cex[i] = patterns.pi_value(i, p);
            return cex;
        }
    }
    return std::nullopt;
}

}  // namespace

CecResult check_equivalence(const Aig& a, const Aig& b, std::int64_t conflict_limit,
                            const RunContext& ctx) {
    LLS_REQUIRE(a.num_pis() == b.num_pis());
    LLS_REQUIRE(a.num_pos() == b.num_pos());

    CecResult result;
    if (auto cex = simulation_counterexample(a, b)) {
        result.equivalent = false;
        result.counterexample = std::move(*cex);
        return result;
    }
    // For exhaustively simulated interfaces the pre-pass is already a proof.
    if (a.num_pis() <= SimPatterns::kMaxExhaustivePis) {
        result.equivalent = true;
        return result;
    }

    // Fraiging-based CEC: sweep the joint circuit so internal equivalences
    // between the two versions are merged bottom-up (cheap local SAT
    // proofs); most output pairs then collapse onto the same literal, and
    // only the leftovers go to a monolithic miter.
    Aig joint;
    std::vector<AigLit> pi_map;
    pi_map.reserve(a.num_pis());
    for (std::size_t i = 0; i < a.num_pis(); ++i) joint.add_pi(a.pi_name(i));
    for (std::size_t i = 0; i < a.num_pis(); ++i) pi_map.push_back(joint.pi_lit(i));
    const auto pos_a_lits = append_aig(joint, a, pi_map);
    const auto pos_b_lits = append_aig(joint, b, pi_map);
    for (std::size_t o = 0; o < a.num_pos(); ++o) joint.add_po(pos_a_lits[o]);
    for (std::size_t o = 0; o < b.num_pos(); ++o) joint.add_po(pos_b_lits[o]);

    Rng rng(0xfaced5eedULL);
    const Aig swept = sat_sweep(joint, rng, /*conflict_limit=*/5000, /*num_patterns=*/2048,
                                /*depth_aware=*/false, ctx);

    std::vector<std::size_t> unresolved;
    for (std::size_t o = 0; o < a.num_pos(); ++o)
        if (swept.po(o) != swept.po(a.num_pos() + o)) unresolved.push_back(o);
    if (unresolved.empty()) {
        result.equivalent = true;
        return result;
    }

    sat::Solver solver;
    solver.bind_run_context(&ctx);
    std::vector<int> pi_vars(swept.num_pis());
    for (auto& v : pi_vars) v = solver.new_var();
    const auto node_lits = encode_aig_nodes(swept, solver, pi_vars);

    // Miter over the unresolved pairs: OR of XORs must be UNSAT.
    std::vector<sat::Lit> xor_lits;
    for (const auto o : unresolved) {
        const sat::Lit x = sat::Lit(solver.new_var(), false);
        const sat::Lit p = sat_lit_of(node_lits, swept.po(o));
        const sat::Lit q = sat_lit_of(node_lits, swept.po(a.num_pos() + o));
        solver.add_clause(!x, p, q);
        solver.add_clause(!x, !p, !q);
        solver.add_clause(x, !p, q);
        solver.add_clause(x, p, !q);
        xor_lits.push_back(x);
    }
    solver.add_clause(std::move(xor_lits));

    const sat::Status status = solver.solve({}, conflict_limit);
    if (ctx.cost != nullptr)
        ctx.cost->sat_conflicts += static_cast<std::uint64_t>(solver.num_conflicts());
    if (status == sat::Status::Unknown) {
        result.resolved = false;
        return result;
    }
    if (status == sat::Status::Unsat) {
        result.equivalent = true;
        return result;
    }
    result.equivalent = false;
    result.counterexample.resize(a.num_pis());
    for (std::size_t i = 0; i < a.num_pis(); ++i)
        result.counterexample[i] = solver.model_value(pi_vars[i]);
    return result;
}

Aig sat_sweep(const Aig& aig, Rng& rng, std::int64_t conflict_limit, std::size_t num_patterns,
              bool depth_aware, const RunContext& ctx) {
    const SimPatterns patterns =
        aig.num_pis() <= SimPatterns::kMaxExhaustivePis
            ? SimPatterns::exhaustive(aig.num_pis())
            : SimPatterns::random(aig.num_pis(), num_patterns, rng);
    // Node signatures; refined with counterexample patterns as SAT disproves
    // candidate equivalences (classic fraiging refinement). simulate() masks
    // the tail bits of the last base word to zero for every node, so plain
    // word-wise comparison and hashing stay consistent as words are appended.
    std::vector<Signature> sigs = simulate(aig, patterns);

    sat::Solver solver;
    solver.bind_run_context(&ctx);
    std::vector<int> pi_vars(aig.num_pis());
    for (auto& v : pi_vars) v = solver.new_var();
    const std::vector<sat::Lit> node_lit = encode_aig_nodes(aig, solver, pi_vars);

    // --- counterexample refinement ------------------------------------------
    // valid_mask[w] marks the bits of signature word w that correspond to
    // real patterns (the base pattern set's last word may be partial; the
    // appended counterexample words are zero-padded with the all-zero input,
    // which is itself a real, consistently simulated pattern).
    std::vector<std::uint64_t> valid_mask(patterns.num_words(), ~0ULL);
    valid_mask.back() = tail_mask(patterns.num_patterns());

    std::vector<std::uint32_t> reps;  // node ids currently present in buckets
    std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> buckets;
    // Complement-invariant bucket key: normalize so that the first valid bit
    // is 0, and mask out invalid bits before hashing.
    auto canon_hash = [&](const Signature& s) {
        const bool flip = s[0] & 1;  // bit 0 is always a valid pattern
        std::uint64_t h = 0x9e3779b97f4a7c15ULL;
        for (std::size_t w = 0; w < s.size(); ++w) {
            const std::uint64_t word = (flip ? ~s[w] : s[w]) & valid_mask[w];
            h ^= word;
            h *= 0x100000001b3ULL;
            h ^= h >> 31;
        }
        return h;
    };

    auto sig_relation = [&](const Signature& a, const Signature& b) -> int {
        // 1: equal on all valid patterns; -1: complementary; 0: neither.
        bool eq = true, comp = true;
        for (std::size_t w = 0; w < a.size() && (eq || comp); ++w) {
            if ((a[w] ^ b[w]) & valid_mask[w]) eq = false;
            if ((a[w] ^ ~b[w]) & valid_mask[w]) comp = false;
        }
        return eq ? 1 : (comp ? -1 : 0);
    };

    std::vector<std::vector<bool>> pending_cex;
    auto refine = [&]() {
        // Simulate one 64-bit word of counterexample patterns (zero-padded:
        // the pad positions consistently simulate the all-zero input).
        std::vector<std::uint64_t> word(aig.num_nodes(), 0);
        for (std::size_t i = 0; i < aig.num_pis(); ++i) {
            std::uint64_t w = 0;
            for (std::size_t c = 0; c < pending_cex.size(); ++c)
                if (pending_cex[c][i]) w |= 1ULL << c;
            word[aig.pi(i)] = w;
        }
        for (std::uint32_t id = 1; id < aig.num_nodes(); ++id) {
            if (!aig.is_and(id)) continue;
            const auto& n = aig.node(id);
            const std::uint64_t f0 =
                n.fanin0.complemented() ? ~word[n.fanin0.node()] : word[n.fanin0.node()];
            const std::uint64_t f1 =
                n.fanin1.complemented() ? ~word[n.fanin1.node()] : word[n.fanin1.node()];
            word[id] = f0 & f1;
        }
        for (std::uint32_t id = 0; id < aig.num_nodes(); ++id) sigs[id].push_back(word[id]);
        valid_mask.push_back(~0ULL);  // pads are themselves consistent patterns
        buckets.clear();
        for (const auto id : reps) buckets[canon_hash(sigs[id])].push_back(id);
        pending_cex.clear();
    };
    auto record_cex = [&]() {
        std::vector<bool> cex(aig.num_pis());
        for (std::size_t i = 0; i < aig.num_pis(); ++i) cex[i] = solver.model_value(pi_vars[i]);
        pending_cex.push_back(std::move(cex));
    };

    // Returns 1 if (x=1 and y=1) proven impossible, 0 if satisfiable (the
    // model is recorded as a refinement pattern), -1 if unresolved.
    // Cancellation is polled here, between queries, so a fired cone
    // deadline ends the sweep at query granularity rather than only when
    // the next solve's amortized in-loop poll happens to trigger.
    auto try_impossible = [&](sat::Lit x, sat::Lit y) -> int {
        poll_cancellation("sweep");
        ctx.poll_cancellation("sweep");
        const sat::Status status = solver.solve({x, y}, conflict_limit);
        if (status == sat::Status::Unsat) return 1;
        if (status == sat::Status::Sat) {
            record_cex();
            return 0;
        }
        return -1;
    };
    auto proved_equal = [&](std::uint32_t n1, std::uint32_t n2, bool complemented) {
        const sat::Lit a = node_lit[n1];
        const sat::Lit b = complemented ? !node_lit[n2] : node_lit[n2];
        return try_impossible(a, !b) == 1 && try_impossible(!a, b) == 1;
    };

    Aig out;
    AigLevelTracker out_levels(out);
    std::vector<AigLit> remap(aig.num_nodes(), AigLit::constant(false));
    for (std::size_t i = 0; i < aig.num_pis(); ++i) remap[aig.pi(i)] = out.add_pi(aig.pi_name(i));
    // PIs seed the buckets so internal nodes can merge into them too.
    for (std::size_t i = 0; i < aig.num_pis(); ++i) {
        reps.push_back(aig.pi(i));
        buckets[canon_hash(sigs[aig.pi(i)])].push_back(aig.pi(i));
    }

    auto is_zero_sig = [&](const Signature& s) {
        for (std::size_t w = 0; w < s.size(); ++w)
            if (s[w] & valid_mask[w]) return false;
        return true;
    };

    for (std::uint32_t id = 1; id < aig.num_nodes(); ++id) {
        if (!aig.is_and(id)) continue;
        const auto& n = aig.node(id);
        const AigLit f0 = n.fanin0.complemented() ? !remap[n.fanin0.node()] : remap[n.fanin0.node()];
        const AigLit f1 = n.fanin1.complemented() ? !remap[n.fanin1.node()] : remap[n.fanin1.node()];
        const AigLit lit = out.land(f0, f1);

        // Constant-candidate check.
        if (is_zero_sig(sigs[id]) && try_impossible(node_lit[id], node_lit[id]) == 1) {
            remap[id] = AigLit::constant(false);
            continue;
        }

        bool merged = false;
        const auto it = buckets.find(canon_hash(sigs[id]));
        if (it != buckets.end()) {
            for (const auto cand : it->second) {
                const int rel = sig_relation(sigs[cand], sigs[id]);
                if (rel == 0) continue;
                const bool invert = rel == -1;
                // Never merge into a *deeper* representative: area recovery
                // must not undo the depth gains of the synthesis flow.
                if (depth_aware && out_levels.level(remap[cand]) > out_levels.level(lit)) continue;
                if (proved_equal(id, cand, invert)) {
                    remap[id] = invert ? !remap[cand] : remap[cand];
                    merged = true;
                    break;
                }
            }
        }
        if (!merged) {
            remap[id] = lit;
            reps.push_back(id);
            buckets[canon_hash(sigs[id])].push_back(id);
        }
        if (pending_cex.size() >= 64) refine();
    }

    for (std::size_t i = 0; i < aig.num_pos(); ++i) {
        const AigLit po = aig.po(i);
        out.add_po(po.complemented() ? !remap[po.node()] : remap[po.node()], aig.po_name(i));
    }
    if (ctx.cost != nullptr)
        ctx.cost->sat_conflicts += static_cast<std::uint64_t>(solver.num_conflicts());
    return out.cleanup();
}

}  // namespace lls
