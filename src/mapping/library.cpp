#include "mapping/library.hpp"

#include <algorithm>

namespace lls {

namespace {

TruthTable tt_of(int num_vars, const std::string& hex) {
    return TruthTable::from_hex(num_vars, hex);
}

}  // namespace

int CellLibrary::add_cell(Cell cell) {
    cells_.push_back(std::move(cell));
    return static_cast<int>(cells_.size()) - 1;
}

CellLibrary CellLibrary::generic_70nm() {
    CellLibrary lib;
    // Single-input cells. INV: f = !a -> truth table "1" over bit pattern 01.
    lib.inverter_ = lib.add_cell({"INV", 1, tt_of(1, "1"), 1.0, 35.0, 0.40});
    lib.add_cell({"BUF", 1, tt_of(1, "2"), 1.3, 60.0, 0.55});

    // Two-input cells (minterm order x1 x0 = 11,10,01,00 -> hex nibble).
    lib.add_cell({"NAND2", 2, tt_of(2, "7"), 1.3, 50.0, 0.70});
    lib.add_cell({"NOR2", 2, tt_of(2, "1"), 1.3, 55.0, 0.80});
    lib.add_cell({"AND2", 2, tt_of(2, "8"), 1.7, 80.0, 0.90});
    lib.add_cell({"OR2", 2, tt_of(2, "e"), 1.7, 85.0, 1.00});
    lib.add_cell({"XOR2", 2, tt_of(2, "6"), 3.0, 120.0, 1.80});
    lib.add_cell({"XNOR2", 2, tt_of(2, "9"), 3.0, 120.0, 1.80});

    // Three-input cells.
    lib.add_cell({"NAND3", 3, tt_of(3, "7f"), 1.8, 70.0, 1.00});
    lib.add_cell({"NOR3", 3, tt_of(3, "01"), 1.8, 80.0, 1.20});
    lib.add_cell({"AND3", 3, tt_of(3, "80"), 2.2, 95.0, 1.10});
    lib.add_cell({"OR3", 3, tt_of(3, "fe"), 2.2, 100.0, 1.30});
    // AOI21: !(a*b + c)  (a=var0, b=var1, c=var2)
    lib.add_cell({"AOI21", 3, tt_of(3, "07"), 2.0, 75.0, 1.00});
    // OAI21: !((a+b) * c)
    lib.add_cell({"OAI21", 3, tt_of(3, "1f"), 2.0, 75.0, 1.00});
    // MUX2: s ? b : a  (a=var0, b=var1, s=var2)
    lib.add_cell({"MUX2", 3, tt_of(3, "ca"), 3.3, 110.0, 1.60});

    // Four-input cells.
    lib.add_cell({"NAND4", 4, tt_of(4, "7fff"), 2.3, 90.0, 1.30});
    lib.add_cell({"NOR4", 4, tt_of(4, "0001"), 2.3, 100.0, 1.50});
    // AOI22: !(a*b + c*d)
    lib.add_cell({"AOI22", 4, tt_of(4, "0777"), 2.7, 95.0, 1.30});
    // OAI22: !((a+b) * (c+d))
    lib.add_cell({"OAI22", 4, tt_of(4, "111f"), 2.7, 95.0, 1.30});
    return lib;
}

std::optional<CellMatch> CellLibrary::match(const TruthTable& tt) const {
    LLS_REQUIRE(tt.num_vars() <= 4);
    const std::string key = std::to_string(tt.num_vars()) + ":" + tt.to_hex();
    if (auto it = match_cache_.find(key); it != match_cache_.end()) return it->second;

    // Exhaustive pin assignment search over same-arity cells: with at most
    // 4 inputs this is 4! * 2^4 * 2 = 768 candidate transforms per cell.
    // An output negation costs a real inverter downstream, so the match
    // score charges it; input negations are usually absorbed by AIG
    // complemented edges and stay free in the score.
    std::optional<CellMatch> best;
    double best_score = 0.0;
    const int k = tt.num_vars();
    const double inv_delay = cells_[static_cast<std::size_t>(inverter_)].delay_ps;
    for (int ci = 0; ci < static_cast<int>(cells_.size()); ++ci) {
        const Cell& cell = cells_[static_cast<std::size_t>(ci)];
        if (cell.num_inputs != k) continue;

        for (int oneg = 0; oneg < 2; ++oneg) {
            for (int with_input_neg = 0; with_input_neg < 2; ++with_input_neg) {
            const double score = cell.delay_ps + (oneg ? inv_delay : 0.0) +
                                 (with_input_neg ? inv_delay : 0.0);
            if (best && score >= best_score) continue;

            bool found = false;
            std::vector<int> pin_to_leaf(static_cast<std::size_t>(k));
            for (int i = 0; i < k; ++i) pin_to_leaf[static_cast<std::size_t>(i)] = i;
            std::sort(pin_to_leaf.begin(), pin_to_leaf.end());
            do {
                const unsigned neg_begin = with_input_neg ? 1 : 0;
                const unsigned neg_end = with_input_neg ? (1u << k) : 1;
                for (unsigned neg = neg_begin; neg < neg_end && !found; ++neg) {
                    // Candidate: out = oneg ^ cell(pins), pin j = leaf
                    // pin_to_leaf[j] ^ (neg >> j).
                    bool ok = true;
                    for (std::uint64_t m = 0; m < tt.num_minterms() && ok; ++m) {
                        std::uint32_t cell_minterm = 0;
                        for (int j = 0; j < k; ++j) {
                            const bool leaf_val =
                                (m >> pin_to_leaf[static_cast<std::size_t>(j)]) & 1;
                            const bool pin_val = leaf_val != (((neg >> j) & 1) != 0);
                            if (pin_val) cell_minterm |= 1u << j;
                        }
                        const bool out = cell.function.get_bit(cell_minterm) != (oneg != 0);
                        if (out != tt.get_bit(m)) ok = false;
                    }
                    if (ok) {
                        best = CellMatch{ci, pin_to_leaf, neg, oneg != 0};
                        best_score = score;
                        found = true;
                    }
                }
            } while (!found && std::next_permutation(pin_to_leaf.begin(), pin_to_leaf.end()));
            }
        }
    }
    match_cache_[key] = best;
    return best;
}

}  // namespace lls
