#pragma once

#include <map>
#include <string>

#include "aig/aig.hpp"
#include "common/rng.hpp"
#include "mapping/library.hpp"

namespace lls {

/// Result of technology mapping a circuit (the "Gates / Delay / Power"
/// columns of the paper's Table 2).
struct MappedCircuit {
    double delay_ps = 0.0;    ///< critical-path pin-to-pin delay
    double area = 0.0;        ///< total cell area
    double power_mw = 0.0;    ///< dynamic power at the given clock
    std::size_t num_gates = 0;
    std::map<std::string, int> cell_histogram;
};

struct MapperOptions {
    int cut_size = 4;   ///< match cuts of up to this many leaves (<= 4)
    int max_cuts = 8;
    double clock_ghz = 1.0;       ///< the paper reports power at 1 GHz
    double supply_voltage = 1.0;  ///< normalized
    std::size_t activity_patterns = 2048;  ///< simulation length for switching activity
    std::uint64_t seed = 7;
};

/// Delay-oriented cut-based technology mapping onto `library`:
/// for every node the fastest matching cut/cell pair is chosen; leaf or
/// output polarity mismatches are repaired with explicit inverters. Power
/// is alpha * E_cell * f summed over mapped gates, with switching activity
/// alpha taken from bit-parallel random simulation.
MappedCircuit map_circuit(const Aig& aig, const CellLibrary& library,
                          const MapperOptions& options = {});

}  // namespace lls
