#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "tt/truth_table.hpp"

namespace lls {

/// A combinational standard cell. Delays are pin-to-pin and load-independent
/// (a deliberate simplification: the paper's comparisons are relative, and a
/// load-independent model preserves ordering between flows).
struct Cell {
    std::string name;
    int num_inputs = 0;
    TruthTable function;    ///< over inputs (var i = pin i)
    double area = 0.0;      ///< normalized area units
    double delay_ps = 0.0;  ///< pin-to-pin delay
    double energy_fj = 0.0; ///< switching energy per output transition
};

/// A match of a cut function onto a cell: pin j of the cell is driven by
/// cut leaf `leaf_of_pin[j]`, complemented when bit j of `input_neg` is set;
/// the cell output is complemented when `output_neg` is set.
struct CellMatch {
    int cell = -1;
    std::vector<int> leaf_of_pin;
    unsigned input_neg = 0;
    bool output_neg = false;
};

/// A small technology library ("generic 70 nm"), with exhaustive
/// permutation/negation matching of cut functions (cached per function).
class CellLibrary {
public:
    /// The library used by all experiments: INV/BUF, NAND/NOR/AND/OR 2-4,
    /// XOR/XNOR, MUX, AOI/OAI 21 and 22.
    static CellLibrary generic_70nm();

    const std::vector<Cell>& cells() const { return cells_; }
    const Cell& cell(int index) const { return cells_[static_cast<std::size_t>(index)]; }

    int inverter_index() const { return inverter_; }
    double inverter_delay_ps() const { return cells_[static_cast<std::size_t>(inverter_)].delay_ps; }

    /// Finds the cheapest-delay cell realizing `tt` (up to input
    /// permutation/negation and output negation). Returns nullopt when no
    /// cell matches. Results are memoized by truth-table value.
    std::optional<CellMatch> match(const TruthTable& tt) const;

private:
    int add_cell(Cell cell);

    std::vector<Cell> cells_;
    int inverter_ = -1;
    mutable std::unordered_map<std::string, std::optional<CellMatch>> match_cache_;
};

}  // namespace lls
