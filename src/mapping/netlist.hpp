#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "aig/aig.hpp"
#include "common/rng.hpp"
#include "mapping/library.hpp"

namespace lls {

/// A mapped gate-level netlist: cell instances over named nets.
///
/// Net 0 is constant 0 and net 1 constant 1; nets 2..2+num_inputs-1 are the
/// primary inputs; the remaining nets are gate outputs. This is the concrete
/// artifact behind the mapper's summary numbers — it can be simulated,
/// timed, and exported as structural Verilog.
class Netlist {
public:
    struct Gate {
        int cell = -1;                   ///< index into the library
        std::vector<std::uint32_t> inputs;  ///< one net per cell pin
        std::uint32_t output = 0;        ///< driven net
    };

    explicit Netlist(const CellLibrary& library) : library_(&library) {}

    const CellLibrary& library() const { return *library_; }

    std::uint32_t add_input(std::string name);
    std::uint32_t add_net(std::string name = {});
    void add_gate(int cell, std::vector<std::uint32_t> inputs, std::uint32_t output);
    void add_output(std::uint32_t net, std::string name);

    static constexpr std::uint32_t kConst0 = 0;
    static constexpr std::uint32_t kConst1 = 1;

    std::size_t num_nets() const { return net_names_.size(); }
    std::size_t num_inputs() const { return inputs_.size(); }
    std::size_t num_outputs() const { return outputs_.size(); }
    std::size_t num_gates() const { return gates_.size(); }
    const std::vector<Gate>& gates() const { return gates_; }
    std::uint32_t input_net(std::size_t i) const { return inputs_[i]; }
    std::uint32_t output_net(std::size_t o) const { return outputs_[o]; }
    const std::string& net_name(std::uint32_t net) const { return net_names_[net]; }
    const std::string& output_name(std::size_t o) const { return output_names_[o]; }

    double total_area() const;

    /// Per-output static timing analysis: arrival = max over paths of the
    /// sum of pin-to-pin cell delays (load-independent model). Returns the
    /// arrival of every net; gates must be in topological order (they are,
    /// by construction from the mapper).
    std::vector<double> arrival_times() const;
    double critical_delay_ps() const;

    /// Required time of every net against a target (default: the critical
    /// delay, so the worst slack is exactly zero).
    std::vector<double> required_times(double target_ps = -1.0) const;

    /// Per-net slack = required - arrival.
    std::vector<double> slacks(double target_ps = -1.0) const;

    /// One critical path as a sequence of gate indices from a primary
    /// input/constant up to the latest output (empty for gateless netlists).
    std::vector<std::size_t> critical_path() const;

    /// Gate-level simulation of one input vector (PO values only).
    std::vector<bool> evaluate(const std::vector<bool>& input_values) const;

    /// Gate-level simulation returning the value of every net (used for
    /// switching-activity extraction).
    std::vector<bool> evaluate_nets(const std::vector<bool>& input_values) const;

    /// Structural Verilog dump.
    void write_verilog(std::ostream& out, const std::string& module_name = "lls_mapped") const;

private:
    const CellLibrary* library_;
    std::vector<Gate> gates_;
    std::vector<std::uint32_t> inputs_;
    std::vector<std::uint32_t> outputs_;
    std::vector<std::string> net_names_;
    std::vector<std::string> output_names_;
};

/// Technology mapping that materializes the netlist (same covering
/// algorithm as map_circuit; in fact map_circuit's numbers are derived from
/// this object). The returned netlist is functionally equivalent to `aig`
/// (see tests/test_netlist.cpp for the property check).
Netlist map_to_netlist(const Aig& aig, const CellLibrary& library, int cut_size = 4,
                       int max_cuts = 8);

}  // namespace lls
