#include "mapping/mapper.hpp"

#include <algorithm>

#include "engine/metrics.hpp"
#include "mapping/netlist.hpp"
#include "sim/simulation.hpp"

namespace lls {

MappedCircuit map_circuit(const Aig& aig, const CellLibrary& library,
                          const MapperOptions& options) {
    static MetricTimer& mapping_timer = Metrics::global().timer("mapping.map");
    const ScopedTimer timer_scope(mapping_timer);
    const Netlist netlist = map_to_netlist(aig, library, options.cut_size, options.max_cuts);

    MappedCircuit result;
    result.num_gates = netlist.num_gates();
    result.area = netlist.total_area();
    result.delay_ps = netlist.critical_delay_ps();
    for (const auto& gate : netlist.gates()) ++result.cell_histogram[library.cell(gate.cell).name];

    // Switching activity by gate-level simulation of the mapped netlist.
    Rng rng(options.seed);
    const SimPatterns patterns =
        aig.num_pis() <= SimPatterns::kMaxExhaustivePis
            ? SimPatterns::exhaustive(aig.num_pis())
            : SimPatterns::random(aig.num_pis(), options.activity_patterns, rng);
    std::vector<std::uint64_t> ones(netlist.num_nets(), 0);
    std::vector<bool> input_values(netlist.num_inputs());
    for (std::size_t p = 0; p < patterns.num_patterns(); ++p) {
        for (std::size_t i = 0; i < netlist.num_inputs(); ++i)
            input_values[i] = patterns.pi_value(i, p);
        const std::vector<bool> values = netlist.evaluate_nets(input_values);
        for (std::uint32_t n = 0; n < netlist.num_nets(); ++n)
            if (values[n]) ++ones[n];
    }

    const double freq_hz = options.clock_ghz * 1e9;
    const double v2 = options.supply_voltage * options.supply_voltage;
    for (const auto& gate : netlist.gates()) {
        const double p =
            static_cast<double>(ones[gate.output]) / static_cast<double>(patterns.num_patterns());
        const double activity = 2.0 * p * (1.0 - p);  // transitions per cycle, random data
        result.power_mw +=
            activity * library.cell(gate.cell).energy_fj * 1e-15 * v2 * freq_hz * 1e3;
    }
    return result;
}

}  // namespace lls
