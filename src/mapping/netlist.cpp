#include "mapping/netlist.hpp"

#include <algorithm>
#include <array>
#include <limits>
#include <ostream>
#include <unordered_map>

#include "aig/cuts.hpp"
#include "common/check.hpp"

namespace lls {

std::uint32_t Netlist::add_input(std::string name) {
    const std::uint32_t net = add_net(std::move(name));
    inputs_.push_back(net);
    return net;
}

std::uint32_t Netlist::add_net(std::string name) {
    const auto net = static_cast<std::uint32_t>(net_names_.size());
    if (name.empty()) name = "n" + std::to_string(net);
    net_names_.push_back(std::move(name));
    return net;
}

void Netlist::add_gate(int cell, std::vector<std::uint32_t> inputs, std::uint32_t output) {
    LLS_REQUIRE(cell >= 0 && cell < static_cast<int>(library_->cells().size()));
    LLS_REQUIRE(static_cast<int>(inputs.size()) == library_->cell(cell).num_inputs);
    for (const auto n : inputs) LLS_REQUIRE(n < num_nets());
    LLS_REQUIRE(output < num_nets());
    gates_.push_back(Gate{cell, std::move(inputs), output});
}

void Netlist::add_output(std::uint32_t net, std::string name) {
    LLS_REQUIRE(net < num_nets());
    outputs_.push_back(net);
    output_names_.push_back(std::move(name));
}

double Netlist::total_area() const {
    double area = 0.0;
    for (const auto& g : gates_) area += library_->cell(g.cell).area;
    return area;
}

std::vector<double> Netlist::arrival_times() const {
    std::vector<double> arrival(num_nets(), 0.0);
    for (const auto& g : gates_) {
        double in = 0.0;
        for (const auto n : g.inputs) in = std::max(in, arrival[n]);
        arrival[g.output] = in + library_->cell(g.cell).delay_ps;
    }
    return arrival;
}

double Netlist::critical_delay_ps() const {
    const auto arrival = arrival_times();
    double delay = 0.0;
    for (const auto n : outputs_) delay = std::max(delay, arrival[n]);
    return delay;
}

std::vector<double> Netlist::required_times(double target_ps) const {
    if (target_ps < 0.0) target_ps = critical_delay_ps();
    std::vector<double> required(num_nets(), std::numeric_limits<double>::infinity());
    for (const auto n : outputs_) required[n] = std::min(required[n], target_ps);
    // Backward pass over the (topologically ordered) gate list.
    for (auto it = gates_.rbegin(); it != gates_.rend(); ++it) {
        const double at_inputs = required[it->output] - library_->cell(it->cell).delay_ps;
        for (const auto in : it->inputs) required[in] = std::min(required[in], at_inputs);
    }
    return required;
}

std::vector<double> Netlist::slacks(double target_ps) const {
    const auto arrival = arrival_times();
    const auto required = required_times(target_ps);
    std::vector<double> slack(num_nets());
    for (std::uint32_t n = 0; n < num_nets(); ++n) slack[n] = required[n] - arrival[n];
    return slack;
}

std::vector<std::size_t> Netlist::critical_path() const {
    const auto arrival = arrival_times();
    // Driver gate of each net (inputs/constants have none).
    std::vector<std::size_t> driver(num_nets(), static_cast<std::size_t>(-1));
    for (std::size_t g = 0; g < gates_.size(); ++g) driver[gates_[g].output] = g;

    std::uint32_t net = outputs_.empty() ? kConst0 : outputs_[0];
    for (const auto o : outputs_)
        if (arrival[o] > arrival[net]) net = o;

    std::vector<std::size_t> path;
    while (driver[net] != static_cast<std::size_t>(-1)) {
        const std::size_t g = driver[net];
        path.push_back(g);
        // Continue through the latest-arriving input pin.
        std::uint32_t next = gates_[g].inputs[0];
        for (const auto in : gates_[g].inputs)
            if (arrival[in] > arrival[next]) next = in;
        net = next;
    }
    std::reverse(path.begin(), path.end());
    return path;
}

std::vector<bool> Netlist::evaluate_nets(const std::vector<bool>& input_values) const {
    LLS_REQUIRE(input_values.size() == inputs_.size());
    std::vector<bool> value(num_nets(), false);
    value[kConst1] = true;
    for (std::size_t i = 0; i < inputs_.size(); ++i) value[inputs_[i]] = input_values[i];
    for (const auto& g : gates_) {
        std::uint32_t minterm = 0;
        for (std::size_t pin = 0; pin < g.inputs.size(); ++pin)
            if (value[g.inputs[pin]]) minterm |= 1u << pin;
        value[g.output] = library_->cell(g.cell).function.get_bit(minterm);
    }
    return value;
}

std::vector<bool> Netlist::evaluate(const std::vector<bool>& input_values) const {
    const std::vector<bool> value = evaluate_nets(input_values);
    std::vector<bool> outs(outputs_.size());
    for (std::size_t o = 0; o < outputs_.size(); ++o) outs[o] = value[outputs_[o]];
    return outs;
}

void Netlist::write_verilog(std::ostream& out, const std::string& module_name) const {
    out << "module " << module_name << " (";
    for (std::size_t i = 0; i < inputs_.size(); ++i) out << net_name(inputs_[i]) << ", ";
    for (std::size_t o = 0; o < outputs_.size(); ++o)
        out << output_names_[o] << (o + 1 < outputs_.size() ? ", " : "");
    out << ");\n";
    for (std::size_t i = 0; i < inputs_.size(); ++i)
        out << "  input " << net_name(inputs_[i]) << ";\n";
    for (std::size_t o = 0; o < outputs_.size(); ++o)
        out << "  output " << output_names_[o] << ";\n";

    std::vector<char> is_io(num_nets(), 0);
    for (const auto n : inputs_) is_io[n] = 1;
    for (std::uint32_t n = 2; n < num_nets(); ++n)
        if (!is_io[n]) out << "  wire " << net_name(n) << ";\n";
    out << "  wire " << net_name(kConst0) << " = 1'b0;\n";
    out << "  wire " << net_name(kConst1) << " = 1'b1;\n";

    static const char* kPins = "ABCD";
    for (std::size_t gi = 0; gi < gates_.size(); ++gi) {
        const Gate& g = gates_[gi];
        const Cell& cell = library_->cell(g.cell);
        out << "  " << cell.name << " g" << gi << " (";
        for (std::size_t pin = 0; pin < g.inputs.size(); ++pin)
            out << "." << kPins[pin] << "(" << net_name(g.inputs[pin]) << "), ";
        out << ".Y(" << net_name(g.output) << "));\n";
    }
    for (std::size_t o = 0; o < outputs_.size(); ++o)
        out << "  assign " << output_names_[o] << " = " << net_name(outputs_[o]) << ";\n";
    out << "endmodule\n";
}

Netlist map_to_netlist(const Aig& aig, const CellLibrary& library, int cut_size, int max_cuts) {
    LLS_REQUIRE(cut_size >= 2 && cut_size <= 4);
    const CutEnumerator cuts(aig, cut_size, max_cuts);
    const double inv_delay = library.inverter_delay_ps();
    // Two-phase (polarity-aware) mapping: every node carries an arrival and
    // a best realization for both its positive and its negative phase. A
    // match whose cell output is the complement of the requested function
    // (output_neg) is simply a realization of the *other* phase — no
    // inverter needed; explicit inverters only appear when one phase is
    // best derived from the other.
    struct PhaseChoice {
        double arrival = std::numeric_limits<double>::infinity();
        int cut_index = -1;
        CellMatch match;     // realizes this phase directly when cut_index >= 0
        bool from_inverter = false;  // realized as INV(other phase)
    };
    std::vector<std::array<PhaseChoice, 2>> choice(aig.num_nodes());

    auto leaf_arrival = [&](std::uint32_t leaf, bool negated) {
        if (aig.is_const(leaf)) return 0.0;
        if (aig.is_pi(leaf)) return negated ? inv_delay : 0.0;
        return choice[leaf][negated ? 1 : 0].arrival;
    };

    for (std::uint32_t id = 1; id < aig.num_nodes(); ++id) {
        if (!aig.is_and(id)) continue;
        auto& ph = choice[id];
        const auto& node_cuts = cuts.cuts(id);
        for (int ci = 0; ci < static_cast<int>(node_cuts.size()); ++ci) {
            const auto& cut = node_cuts[ci];
            if (cut.leaves.size() == 1 && cut.leaves[0] == id) continue;
            if (cut.tt.num_vars() > 4) continue;
            for (const bool want_neg : {false, true}) {
                const auto match = library.match(want_neg ? ~cut.tt : cut.tt);
                if (!match) continue;
                const Cell& cell = library.cell(match->cell);
                double arrival = 0.0;
                for (int pin = 0; pin < cell.num_inputs; ++pin) {
                    const std::uint32_t leaf =
                        cut.leaves[static_cast<std::size_t>(match->leaf_of_pin[pin])];
                    arrival = std::max(arrival, leaf_arrival(leaf, (match->input_neg >> pin) & 1));
                }
                arrival += cell.delay_ps;
                // The cell's output realizes (want_neg ^ output_neg) applied
                // to the node's function.
                const int phase = (want_neg != match->output_neg) ? 1 : 0;
                if (arrival < ph[static_cast<std::size_t>(phase)].arrival) {
                    auto& slot = ph[static_cast<std::size_t>(phase)];
                    slot.arrival = arrival;
                    slot.cut_index = ci;
                    slot.match = *match;
                    slot.from_inverter = false;
                }
            }
        }
        LLS_ENSURE((ph[0].cut_index >= 0 || ph[1].cut_index >= 0) &&
                   "every AND node must be mappable in at least one phase");
        // Phase relaxation: derive a missing/slow phase through an inverter.
        for (const int p : {0, 1}) {
            const double via_inv = ph[static_cast<std::size_t>(1 - p)].arrival + inv_delay;
            if (via_inv < ph[static_cast<std::size_t>(p)].arrival) {
                ph[static_cast<std::size_t>(p)].arrival = via_inv;
                ph[static_cast<std::size_t>(p)].cut_index = -1;
                ph[static_cast<std::size_t>(p)].from_inverter = true;
            }
        }
    }

    // Emission with per-(node, phase) memoized nets.
    Netlist netlist(library);
    const std::uint32_t const0 = netlist.add_net("const0_");
    const std::uint32_t const1 = netlist.add_net("const1_");
    LLS_ENSURE(const0 == Netlist::kConst0 && const1 == Netlist::kConst1);

    constexpr std::uint32_t kUnset = ~std::uint32_t{0};
    std::vector<std::array<std::uint32_t, 2>> net_of(aig.num_nodes(), {kUnset, kUnset});
    net_of[0] = {Netlist::kConst0, Netlist::kConst1};
    for (std::size_t i = 0; i < aig.num_pis(); ++i)
        net_of[aig.pi(i)][0] = netlist.add_input(aig.pi_name(i));

    // Recursive emission (depth bounded by the mapping DAG).
    auto emit = [&](auto&& self, std::uint32_t node, bool negated) -> std::uint32_t {
        const std::size_t phase = negated ? 1 : 0;
        if (net_of[node][phase] != kUnset) return net_of[node][phase];
        std::uint32_t net;
        if (aig.is_pi(node)) {
            // Only the negated phase can be missing for a PI.
            net = netlist.add_net();
            netlist.add_gate(library.inverter_index(), {net_of[node][0]}, net);
        } else {
            const PhaseChoice& pc = choice[node][phase];
            if (pc.from_inverter || pc.cut_index < 0) {
                const std::uint32_t other = self(self, node, !negated);
                net = netlist.add_net();
                netlist.add_gate(library.inverter_index(), {other}, net);
            } else {
                const auto& cut = cuts.cuts(node)[static_cast<std::size_t>(pc.cut_index)];
                const Cell& cell = library.cell(pc.match.cell);
                std::vector<std::uint32_t> pin_nets(static_cast<std::size_t>(cell.num_inputs));
                for (int pin = 0; pin < cell.num_inputs; ++pin) {
                    const std::uint32_t leaf =
                        cut.leaves[static_cast<std::size_t>(pc.match.leaf_of_pin[pin])];
                    pin_nets[static_cast<std::size_t>(pin)] =
                        self(self, leaf, (pc.match.input_neg >> pin) & 1);
                }
                net = netlist.add_net();
                netlist.add_gate(pc.match.cell, std::move(pin_nets), net);
            }
        }
        net_of[node][phase] = net;
        return net;
    };

    for (std::size_t o = 0; o < aig.num_pos(); ++o) {
        const AigLit po = aig.po(o);
        netlist.add_output(emit(emit, po.node(), po.complemented()), aig.po_name(o));
    }
    return netlist;
}

}  // namespace lls
