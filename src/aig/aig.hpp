#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/check.hpp"

namespace lls {

/// A literal: an AIG node index with an optional complement bit.
/// Literal 0 is constant false, literal 1 constant true.
struct AigLit {
    std::uint32_t value = 0;

    AigLit() = default;
    constexpr explicit AigLit(std::uint32_t v) : value(v) {}
    static constexpr AigLit make(std::uint32_t node, bool complemented) {
        return AigLit{(node << 1) | static_cast<std::uint32_t>(complemented)};
    }
    static constexpr AigLit constant(bool v) { return AigLit{static_cast<std::uint32_t>(v)}; }

    std::uint32_t node() const { return value >> 1; }
    bool complemented() const { return value & 1; }
    AigLit operator!() const { return AigLit{value ^ 1}; }
    AigLit with_complement(bool c) const { return AigLit{(value & ~1u) | (c ? 1u : 0u)}; }

    bool is_constant() const { return node() == 0; }

    bool operator==(const AigLit& other) const = default;
    auto operator<=>(const AigLit& other) const = default;
};

/// And-Inverter Graph: the "decomposed logic circuit" of the paper.
///
/// Node 0 is the constant-false node. Primary inputs are leaf nodes;
/// internal nodes are two-input ANDs with optionally complemented fanins.
/// Construction is append-only and structurally hashed; `cleanup()` returns
/// a compacted copy containing only logic reachable from the outputs.
class Aig {
public:
    struct Node {
        AigLit fanin0;  ///< meaningful only for AND nodes
        AigLit fanin1;
        bool is_pi = false;
    };

    Aig() { nodes_.push_back(Node{}); }

    // --- construction -----------------------------------------------------

    AigLit add_pi(std::string name = {});
    void add_po(AigLit lit, std::string name = {});

    /// Structural-hashed AND with constant/idempotence normalization.
    AigLit land(AigLit a, AigLit b);

    AigLit lor(AigLit a, AigLit b) { return !land(!a, !b); }
    AigLit lxor(AigLit a, AigLit b) { return lor(land(a, !b), land(!a, b)); }
    AigLit lxnor(AigLit a, AigLit b) { return !lxor(a, b); }
    /// Multiplexer: sel ? t : e.
    AigLit lmux(AigLit sel, AigLit t, AigLit e) {
        return lor(land(sel, t), land(!sel, e));
    }
    /// N-ary AND/OR over a span of literals (balanced reduction).
    AigLit land_many(std::vector<AigLit> lits);
    AigLit lor_many(std::vector<AigLit> lits);

    // --- structure --------------------------------------------------------

    std::size_t num_nodes() const { return nodes_.size(); }
    std::size_t num_pis() const { return pis_.size(); }
    std::size_t num_pos() const { return pos_.size(); }
    std::size_t num_ands() const { return nodes_.size() - 1 - pis_.size(); }

    const Node& node(std::uint32_t id) const { return nodes_[id]; }
    bool is_pi(std::uint32_t id) const { return nodes_[id].is_pi; }
    bool is_and(std::uint32_t id) const { return id != 0 && !nodes_[id].is_pi; }
    bool is_const(std::uint32_t id) const { return id == 0; }

    std::uint32_t pi(std::size_t index) const { return pis_[index]; }
    AigLit pi_lit(std::size_t index) const { return AigLit::make(pis_[index], false); }
    AigLit po(std::size_t index) const { return pos_[index]; }
    void set_po(std::size_t index, AigLit lit) { pos_[index] = lit; }

    const std::string& pi_name(std::size_t index) const { return pi_names_[index]; }
    const std::string& po_name(std::size_t index) const { return po_names_[index]; }

    /// Index of the PI node `id` among the PIs (inverse of pi()).
    std::size_t pi_index(std::uint32_t id) const {
        LLS_REQUIRE(is_pi(id));
        return pi_index_.at(id);
    }

    // --- analysis ---------------------------------------------------------

    /// Levels: PIs and constants are level 0, AND nodes 1 + max(fanins).
    std::vector<int> compute_levels() const;

    /// Depth of the graph = max level over PO drivers.
    int depth() const;

    /// Number of AND nodes reachable from the POs (the paper's "gates").
    std::size_t count_reachable_ands() const;

    /// Fanout counts (per node, counting PO references).
    std::vector<int> compute_fanout_counts() const;

    /// Nodes in topological order (constant and PIs first). Since the graph
    /// is append-only this is simply 0..n-1.
    std::vector<std::uint32_t> topo_order() const;

    // --- transformations ---------------------------------------------------

    /// Returns a compacted copy with only logic reachable from POs, same
    /// PI/PO interface.
    Aig cleanup() const;

    std::uint64_t hash() const;

private:
    struct PairHash {
        std::size_t operator()(const std::pair<std::uint32_t, std::uint32_t>& p) const {
            return std::hash<std::uint64_t>{}((std::uint64_t{p.first} << 32) | p.second);
        }
    };

    std::vector<Node> nodes_;
    std::vector<std::uint32_t> pis_;
    std::vector<AigLit> pos_;
    std::vector<std::string> pi_names_;
    std::vector<std::string> po_names_;
    std::unordered_map<std::uint32_t, std::size_t> pi_index_;
    std::unordered_map<std::pair<std::uint32_t, std::uint32_t>, std::uint32_t, PairHash> strash_;
};

}  // namespace lls
