#include "aig/cuts.hpp"

#include <algorithm>

namespace lls {

TruthTable expand_truth_table(const TruthTable& tt, const std::vector<std::uint32_t>& old_leaves,
                              const std::vector<std::uint32_t>& new_leaves) {
    LLS_REQUIRE(static_cast<int>(old_leaves.size()) == tt.num_vars());
    const int n_new = static_cast<int>(new_leaves.size());
    TruthTable extended = tt.extend(n_new);

    // perm[j] = old variable read by new variable j. Old variable i must land
    // at the position of old_leaves[i] within new_leaves; vacuous extended
    // variables fill the remaining slots.
    std::vector<int> perm(static_cast<std::size_t>(n_new), -1);
    std::vector<char> used(static_cast<std::size_t>(n_new), 0);
    for (int i = 0; i < static_cast<int>(old_leaves.size()); ++i) {
        const auto it = std::lower_bound(new_leaves.begin(), new_leaves.end(), old_leaves[i]);
        LLS_REQUIRE(it != new_leaves.end() && *it == old_leaves[i]);
        const auto pos = static_cast<std::size_t>(it - new_leaves.begin());
        perm[pos] = i;
        used[static_cast<std::size_t>(i)] = 1;
    }
    int next_free = 0;
    for (auto& p : perm) {
        if (p >= 0) continue;
        while (used[static_cast<std::size_t>(next_free)]) ++next_free;
        p = next_free;
        used[static_cast<std::size_t>(next_free)] = 1;
    }
    return extended.permute(perm);
}

namespace {

bool merge_leaves(const std::vector<std::uint32_t>& a, const std::vector<std::uint32_t>& b,
                  int limit, std::vector<std::uint32_t>* out) {
    out->clear();
    std::size_t i = 0, j = 0;
    while (i < a.size() || j < b.size()) {
        std::uint32_t v;
        if (j == b.size() || (i < a.size() && a[i] < b[j]))
            v = a[i++];
        else if (i == a.size() || b[j] < a[i])
            v = b[j++];
        else {
            v = a[i];
            ++i;
            ++j;
        }
        if (static_cast<int>(out->size()) == limit) return false;
        out->push_back(v);
    }
    return true;
}

}  // namespace

CutEnumerator::CutEnumerator(const Aig& aig, int cut_size, int max_cuts)
    : cut_size_(cut_size), max_cuts_(max_cuts) {
    LLS_REQUIRE(cut_size >= 2 && cut_size <= 12);
    LLS_REQUIRE(max_cuts >= 1);
    cuts_.resize(aig.num_nodes());
    const auto level = aig.compute_levels();

    auto trivial = [&](std::uint32_t id) {
        AigCut c;
        c.leaves = {id};
        c.tt = TruthTable::variable(1, 0);
        return c;
    };

    // Constant node: single empty-leaf cut with constant function.
    {
        AigCut c;
        c.tt = TruthTable(0);
        cuts_[0].push_back(std::move(c));
    }

    auto cut_cost = [&](const AigCut& c) {
        long lvl = 0;
        for (auto l : c.leaves) lvl += level[l];
        return std::make_pair(static_cast<long>(c.leaves.size()), lvl);
    };

    for (std::uint32_t id = 1; id < aig.num_nodes(); ++id) {
        if (aig.is_pi(id)) {
            cuts_[id].push_back(trivial(id));
            continue;
        }
        const auto& n = aig.node(id);
        std::vector<AigCut> cand;
        std::vector<std::uint32_t> merged;
        for (const auto& c0 : cuts_[n.fanin0.node()]) {
            for (const auto& c1 : cuts_[n.fanin1.node()]) {
                if (!merge_leaves(c0.leaves, c1.leaves, cut_size_, &merged)) continue;
                AigCut c;
                c.leaves = merged;
                TruthTable t0 = expand_truth_table(c0.tt, c0.leaves, merged);
                TruthTable t1 = expand_truth_table(c1.tt, c1.leaves, merged);
                if (n.fanin0.complemented()) t0 = ~t0;
                if (n.fanin1.complemented()) t1 = ~t1;
                c.tt = t0 & t1;
                cand.push_back(std::move(c));
            }
        }
        // Deduplicate and drop dominated cuts.
        std::sort(cand.begin(), cand.end(),
                  [&](const AigCut& a, const AigCut& b) { return cut_cost(a) < cut_cost(b); });
        std::vector<AigCut> kept;
        for (auto& c : cand) {
            bool dominated = false;
            for (const auto& k : kept)
                if (k.dominates(c) || (k.leaves == c.leaves)) {
                    dominated = true;
                    break;
                }
            if (!dominated) kept.push_back(std::move(c));
            if (static_cast<int>(kept.size()) == max_cuts_) break;
        }
        kept.push_back(trivial(id));
        cuts_[id] = std::move(kept);
    }
}

}  // namespace lls
