#pragma once

#include <vector>

#include "aig/aig.hpp"
#include "sop/factor.hpp"
#include "sop/sop.hpp"
#include "tt/truth_table.hpp"

namespace lls {

/// Instantiates a factored expression in `aig`, substituting `fanins[v]`
/// for variable v. Returns the literal of the expression's output.
AigLit build_factored(Aig& aig, const FactorExpr& expr, const std::vector<AigLit>& fanins);

/// Instantiates an SOP directly (balanced AND trees per cube, balanced OR
/// tree over the cubes); used when depth, not area, is the goal.
AigLit build_sop(Aig& aig, const Sop& sop, const std::vector<AigLit>& fanins);

/// Instantiates a truth table over the given fanin literals, by factoring
/// its irredundant SOP (choosing the cheaper of the on-set and off-set).
AigLit build_truth_table(Aig& aig, const TruthTable& tt, const std::vector<AigLit>& fanins);

/// Tracks arrival levels of a growing (append-only) AIG incrementally.
class AigLevelTracker {
public:
    explicit AigLevelTracker(const Aig& aig) : aig_(aig) { refresh(); }

    int level(AigLit lit) {
        refresh();
        return levels_[lit.node()];
    }

private:
    void refresh();

    const Aig& aig_;
    std::vector<int> levels_;
};

/// AND/OR reduction joining the two earliest-arriving operands first
/// (depth-optimal re-association given fanin arrival levels).
AigLit land_timed(Aig& aig, std::vector<AigLit> lits, AigLevelTracker& levels);
AigLit lor_timed(Aig& aig, std::vector<AigLit> lits, AigLevelTracker& levels);

/// Instantiates an SOP with arrival-aware AND/OR tree shapes.
AigLit build_sop_timed(Aig& aig, const Sop& sop, const std::vector<AigLit>& fanins,
                       AigLevelTracker& levels);

/// Delay-oriented truth-table instantiation: builds both the timed-SOP and
/// the factored realization (in the cheaper phase each) and returns the
/// shallower of the two.
AigLit build_truth_table_timed(Aig& aig, const TruthTable& tt, const std::vector<AigLit>& fanins,
                               AigLevelTracker& levels);

/// Builds the single-output cone of PO `po_index` as a standalone AIG whose
/// PIs are the original PIs (same order, full interface).
Aig extract_cone(const Aig& aig, std::size_t po_index);

/// Copies `src` into `dst`, mapping src PI i to `pi_map[i]`. Returns the
/// literals corresponding to src's POs. If `node_map` is non-null it
/// receives the dst literal of every src node (callers can then reference
/// internal signals of the copied logic).
std::vector<AigLit> append_aig(Aig& dst, const Aig& src, const std::vector<AigLit>& pi_map,
                               std::vector<AigLit>* node_map = nullptr);

}  // namespace lls
