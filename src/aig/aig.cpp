#include "aig/aig.hpp"

#include <algorithm>
#include <queue>

namespace lls {

AigLit Aig::add_pi(std::string name) {
    const auto id = static_cast<std::uint32_t>(nodes_.size());
    Node n;
    n.is_pi = true;
    nodes_.push_back(n);
    pis_.push_back(id);
    if (name.empty()) name = "pi" + std::to_string(pis_.size() - 1);
    pi_names_.push_back(std::move(name));
    pi_index_[id] = pis_.size() - 1;
    return AigLit::make(id, false);
}

void Aig::add_po(AigLit lit, std::string name) {
    LLS_REQUIRE(lit.node() < nodes_.size());
    pos_.push_back(lit);
    if (name.empty()) name = "po" + std::to_string(pos_.size() - 1);
    po_names_.push_back(std::move(name));
}

AigLit Aig::land(AigLit a, AigLit b) {
    LLS_REQUIRE(a.node() < nodes_.size() && b.node() < nodes_.size());
    // Constant and trivial rules.
    if (a == AigLit::constant(false) || b == AigLit::constant(false))
        return AigLit::constant(false);
    if (a == AigLit::constant(true)) return b;
    if (b == AigLit::constant(true)) return a;
    if (a == b) return a;
    if (a == !b) return AigLit::constant(false);
    // Canonical operand order for structural hashing.
    if (b < a) std::swap(a, b);
    const auto key = std::make_pair(a.value, b.value);
    if (auto it = strash_.find(key); it != strash_.end())
        return AigLit::make(it->second, false);
    const auto id = static_cast<std::uint32_t>(nodes_.size());
    Node n;
    n.fanin0 = a;
    n.fanin1 = b;
    nodes_.push_back(n);
    strash_.emplace(key, id);
    return AigLit::make(id, false);
}

AigLit Aig::land_many(std::vector<AigLit> lits) {
    if (lits.empty()) return AigLit::constant(true);
    // Balanced pairwise reduction keeps the AND tree depth at ceil(log2 n).
    while (lits.size() > 1) {
        std::vector<AigLit> next;
        for (std::size_t i = 0; i + 1 < lits.size(); i += 2) next.push_back(land(lits[i], lits[i + 1]));
        if (lits.size() % 2) next.push_back(lits.back());
        lits = std::move(next);
    }
    return lits[0];
}

AigLit Aig::lor_many(std::vector<AigLit> lits) {
    for (auto& l : lits) l = !l;
    return !land_many(std::move(lits));
}

std::vector<int> Aig::compute_levels() const {
    std::vector<int> level(nodes_.size(), 0);
    for (std::uint32_t id = 1; id < nodes_.size(); ++id) {
        if (nodes_[id].is_pi) continue;
        level[id] = 1 + std::max(level[nodes_[id].fanin0.node()], level[nodes_[id].fanin1.node()]);
    }
    return level;
}

int Aig::depth() const {
    const auto level = compute_levels();
    int d = 0;
    for (const auto& po : pos_) d = std::max(d, level[po.node()]);
    return d;
}

std::size_t Aig::count_reachable_ands() const {
    std::vector<char> mark(nodes_.size(), 0);
    std::vector<std::uint32_t> stack;
    for (const auto& po : pos_) stack.push_back(po.node());
    std::size_t count = 0;
    while (!stack.empty()) {
        const auto id = stack.back();
        stack.pop_back();
        if (mark[id]) continue;
        mark[id] = 1;
        if (is_and(id)) {
            ++count;
            stack.push_back(nodes_[id].fanin0.node());
            stack.push_back(nodes_[id].fanin1.node());
        }
    }
    return count;
}

std::vector<int> Aig::compute_fanout_counts() const {
    std::vector<int> fanout(nodes_.size(), 0);
    for (std::uint32_t id = 1; id < nodes_.size(); ++id) {
        if (nodes_[id].is_pi) continue;
        ++fanout[nodes_[id].fanin0.node()];
        ++fanout[nodes_[id].fanin1.node()];
    }
    for (const auto& po : pos_) ++fanout[po.node()];
    return fanout;
}

std::vector<std::uint32_t> Aig::topo_order() const {
    std::vector<std::uint32_t> order(nodes_.size());
    for (std::uint32_t i = 0; i < nodes_.size(); ++i) order[i] = i;
    return order;
}

Aig Aig::cleanup() const {
    Aig result;
    std::vector<AigLit> remap(nodes_.size(), AigLit::constant(false));
    std::vector<char> reachable(nodes_.size(), 0);

    // Mark the reachable cone.
    std::vector<std::uint32_t> stack;
    for (const auto& po : pos_) stack.push_back(po.node());
    while (!stack.empty()) {
        const auto id = stack.back();
        stack.pop_back();
        if (reachable[id]) continue;
        reachable[id] = 1;
        if (is_and(id)) {
            stack.push_back(nodes_[id].fanin0.node());
            stack.push_back(nodes_[id].fanin1.node());
        }
    }

    // Keep the full PI interface (even unused PIs) so circuits stay
    // comparable before and after optimization.
    for (std::size_t i = 0; i < pis_.size(); ++i)
        remap[pis_[i]] = result.add_pi(pi_names_[i]);

    auto remap_lit = [&remap](AigLit old) {
        AigLit m = remap[old.node()];
        return old.complemented() ? !m : m;
    };

    for (std::uint32_t id = 1; id < nodes_.size(); ++id) {
        if (!reachable[id] || !is_and(id)) continue;
        remap[id] = result.land(remap_lit(nodes_[id].fanin0), remap_lit(nodes_[id].fanin1));
    }

    for (std::size_t i = 0; i < pos_.size(); ++i)
        result.add_po(remap_lit(pos_[i]), po_names_[i]);
    return result;
}

std::uint64_t Aig::hash() const {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    auto mix = [&h](std::uint64_t v) {
        h ^= v;
        h *= 0x100000001b3ULL;
        h ^= h >> 31;
    };
    mix(nodes_.size());
    mix(pis_.size());
    for (std::uint32_t id = 1; id < nodes_.size(); ++id) {
        if (nodes_[id].is_pi) continue;
        mix((std::uint64_t{nodes_[id].fanin0.value} << 32) | nodes_[id].fanin1.value);
    }
    for (const auto& po : pos_) mix(po.value);
    return h;
}

}  // namespace lls
