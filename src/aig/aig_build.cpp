#include "aig/aig_build.hpp"

#include <algorithm>
#include <queue>

namespace lls {

AigLit build_factored(Aig& aig, const FactorExpr& expr, const std::vector<AigLit>& fanins) {
    switch (expr.kind) {
        case FactorExpr::Kind::Const0:
            return AigLit::constant(false);
        case FactorExpr::Kind::Const1:
            return AigLit::constant(true);
        case FactorExpr::Kind::Literal: {
            LLS_REQUIRE(expr.var >= 0 &&
                        static_cast<std::size_t>(expr.var) < fanins.size());
            const AigLit lit = fanins[static_cast<std::size_t>(expr.var)];
            return expr.polarity ? lit : !lit;
        }
        case FactorExpr::Kind::And: {
            std::vector<AigLit> kids;
            kids.reserve(expr.children.size());
            for (const auto& c : expr.children) kids.push_back(build_factored(aig, c, fanins));
            return aig.land_many(std::move(kids));
        }
        case FactorExpr::Kind::Or: {
            std::vector<AigLit> kids;
            kids.reserve(expr.children.size());
            for (const auto& c : expr.children) kids.push_back(build_factored(aig, c, fanins));
            return aig.lor_many(std::move(kids));
        }
    }
    return AigLit::constant(false);
}

AigLit build_sop(Aig& aig, const Sop& sop, const std::vector<AigLit>& fanins) {
    std::vector<AigLit> cube_lits;
    cube_lits.reserve(sop.num_cubes());
    for (const auto& cube : sop.cubes()) {
        std::vector<AigLit> lits;
        for (int v = 0; v < sop.num_vars(); ++v) {
            if (!cube.has_literal(v)) continue;
            const AigLit f = fanins[static_cast<std::size_t>(v)];
            lits.push_back(cube.literal_polarity(v) ? f : !f);
        }
        cube_lits.push_back(aig.land_many(std::move(lits)));
    }
    return aig.lor_many(std::move(cube_lits));
}

AigLit build_truth_table(Aig& aig, const TruthTable& tt, const std::vector<AigLit>& fanins) {
    LLS_REQUIRE(static_cast<int>(fanins.size()) >= tt.num_vars());
    if (tt.is_const0()) return AigLit::constant(false);
    if (tt.is_const1()) return AigLit::constant(true);
    const Sop on = isop(tt);
    const Sop off = isop(~tt);
    // Build whichever phase factors into fewer literals; invert if off-set.
    const FactorExpr on_expr = factor(on);
    const FactorExpr off_expr = factor(off);
    if (off_expr.num_literals() < on_expr.num_literals())
        return !build_factored(aig, off_expr, fanins);
    return build_factored(aig, on_expr, fanins);
}

void AigLevelTracker::refresh() {
    const std::size_t old = levels_.size();
    if (old == aig_.num_nodes()) return;
    levels_.resize(aig_.num_nodes(), 0);
    for (std::uint32_t id = static_cast<std::uint32_t>(old); id < aig_.num_nodes(); ++id) {
        if (!aig_.is_and(id)) continue;
        const auto& n = aig_.node(id);
        levels_[id] = 1 + std::max(levels_[n.fanin0.node()], levels_[n.fanin1.node()]);
    }
}

AigLit land_timed(Aig& aig, std::vector<AigLit> lits, AigLevelTracker& levels) {
    if (lits.empty()) return AigLit::constant(true);
    auto cmp = [&](AigLit a, AigLit b) { return levels.level(a) > levels.level(b); };
    std::priority_queue<AigLit, std::vector<AigLit>, decltype(cmp)> heap(cmp, std::move(lits));
    while (heap.size() > 1) {
        const AigLit a = heap.top();
        heap.pop();
        const AigLit b = heap.top();
        heap.pop();
        heap.push(aig.land(a, b));
    }
    return heap.top();
}

AigLit lor_timed(Aig& aig, std::vector<AigLit> lits, AigLevelTracker& levels) {
    for (auto& l : lits) l = !l;
    return !land_timed(aig, std::move(lits), levels);
}

AigLit build_sop_timed(Aig& aig, const Sop& sop, const std::vector<AigLit>& fanins,
                       AigLevelTracker& levels) {
    std::vector<AigLit> cube_lits;
    cube_lits.reserve(sop.num_cubes());
    for (const auto& cube : sop.cubes()) {
        std::vector<AigLit> lits;
        for (int v = 0; v < sop.num_vars(); ++v) {
            if (!cube.has_literal(v)) continue;
            const AigLit f = fanins[static_cast<std::size_t>(v)];
            lits.push_back(cube.literal_polarity(v) ? f : !f);
        }
        cube_lits.push_back(land_timed(aig, std::move(lits), levels));
    }
    return lor_timed(aig, std::move(cube_lits), levels);
}

AigLit build_truth_table_timed(Aig& aig, const TruthTable& tt, const std::vector<AigLit>& fanins,
                               AigLevelTracker& levels) {
    LLS_REQUIRE(static_cast<int>(fanins.size()) >= tt.num_vars());
    if (tt.is_const0()) return AigLit::constant(false);
    if (tt.is_const1()) return AigLit::constant(true);
    const Sop on = isop(tt);
    const Sop off = isop(~tt);
    const AigLit timed_on = build_sop_timed(aig, on, fanins, levels);
    const AigLit timed_off = !build_sop_timed(aig, off, fanins, levels);
    const AigLit timed =
        levels.level(timed_off) < levels.level(timed_on) ? timed_off : timed_on;
    // Factored realization: usually smaller, sometimes also shallower.
    const AigLit factored = build_truth_table(aig, tt, fanins);
    return levels.level(factored) < levels.level(timed) ? factored : timed;
}

Aig extract_cone(const Aig& aig, std::size_t po_index) {
    LLS_REQUIRE(po_index < aig.num_pos());
    Aig cone;
    std::vector<AigLit> remap(aig.num_nodes(), AigLit::constant(false));
    for (std::size_t i = 0; i < aig.num_pis(); ++i) remap[aig.pi(i)] = cone.add_pi(aig.pi_name(i));
    for (std::uint32_t id = 1; id < aig.num_nodes(); ++id) {
        if (!aig.is_and(id)) continue;
        const auto& n = aig.node(id);
        const AigLit f0 = n.fanin0.complemented() ? !remap[n.fanin0.node()] : remap[n.fanin0.node()];
        const AigLit f1 = n.fanin1.complemented() ? !remap[n.fanin1.node()] : remap[n.fanin1.node()];
        remap[id] = cone.land(f0, f1);
    }
    const AigLit po = aig.po(po_index);
    cone.add_po(po.complemented() ? !remap[po.node()] : remap[po.node()], aig.po_name(po_index));
    return cone.cleanup();
}

std::vector<AigLit> append_aig(Aig& dst, const Aig& src, const std::vector<AigLit>& pi_map,
                               std::vector<AigLit>* node_map) {
    LLS_REQUIRE(pi_map.size() == src.num_pis());
    std::vector<AigLit> remap(src.num_nodes(), AigLit::constant(false));
    for (std::size_t i = 0; i < src.num_pis(); ++i) remap[src.pi(i)] = pi_map[i];
    for (std::uint32_t id = 1; id < src.num_nodes(); ++id) {
        if (!src.is_and(id)) continue;
        const auto& n = src.node(id);
        const AigLit f0 = n.fanin0.complemented() ? !remap[n.fanin0.node()] : remap[n.fanin0.node()];
        const AigLit f1 = n.fanin1.complemented() ? !remap[n.fanin1.node()] : remap[n.fanin1.node()];
        remap[id] = dst.land(f0, f1);
    }
    std::vector<AigLit> outs;
    outs.reserve(src.num_pos());
    for (std::size_t i = 0; i < src.num_pos(); ++i) {
        const AigLit po = src.po(i);
        outs.push_back(po.complemented() ? !remap[po.node()] : remap[po.node()]);
    }
    if (node_map) *node_map = std::move(remap);
    return outs;
}

}  // namespace lls
