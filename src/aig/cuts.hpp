#pragma once

#include <vector>

#include "aig/aig.hpp"
#include "tt/truth_table.hpp"

namespace lls {

/// A k-feasible cut of an AIG node: a set of leaves (sorted node ids) such
/// that every path from the PIs to the node passes through a leaf, plus the
/// local function of the node over the leaves.
struct AigCut {
    std::vector<std::uint32_t> leaves;
    TruthTable tt;  ///< function of the cut root over `leaves` (leaf i = var i)

    bool dominates(const AigCut& other) const {
        // A cut dominates another if its leaves are a subset.
        std::size_t i = 0;
        for (auto leaf : leaves) {
            while (i < other.leaves.size() && other.leaves[i] < leaf) ++i;
            if (i == other.leaves.size() || other.leaves[i] != leaf) return false;
        }
        return true;
    }
};

/// Re-expresses `tt` (over `old_leaves`) as a function of `new_leaves`,
/// which must be a superset of `old_leaves`. Both leaf lists are sorted.
TruthTable expand_truth_table(const TruthTable& tt, const std::vector<std::uint32_t>& old_leaves,
                              const std::vector<std::uint32_t>& new_leaves);

/// Priority-cut enumeration (Mishchenko-style): bottom-up merge of fanin
/// cuts, keeping at most `max_cuts` non-trivial cuts per node ranked by
/// (fewer leaves, then lower total leaf level). Each node also always has
/// its trivial cut {node}.
class CutEnumerator {
public:
    CutEnumerator(const Aig& aig, int cut_size, int max_cuts);

    const std::vector<AigCut>& cuts(std::uint32_t node) const { return cuts_[node]; }
    int cut_size() const { return cut_size_; }

private:
    int cut_size_;
    int max_cuts_;
    std::vector<std::vector<AigCut>> cuts_;
};

}  // namespace lls
