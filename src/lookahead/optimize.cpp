#include "lookahead/optimize.hpp"

#include <algorithm>
#include <optional>
#include <unordered_map>

#include "aig/aig_build.hpp"
#include "baseline/restructure.hpp"
#include "cec/cec.hpp"
#include "common/stopwatch.hpp"
#include "lookahead/decompose.hpp"

namespace lls {

namespace {

/// One round of conventional delay-oriented restructuring (the "existing
/// logic optimization algorithms" the paper's technique complements).
Aig restructure_round(const Aig& aig) {
    RestructureOptions delay_opt;
    delay_opt.delay_oriented = true;
    delay_opt.cut_size = 8;
    return balance(restructure(aig, delay_opt));
}

bool better(const Aig& a, const Aig& b) {
    const int da = a.depth(), db = b.depth();
    return da < db || (da == db && a.count_reachable_ands() < b.count_reachable_ands());
}

}  // namespace

Aig optimize_timing(const Aig& input, const LookaheadParams& params, OptimizeStats* stats) {
    Rng rng(params.seed);
    const Aig original = input.cleanup();
    Stopwatch budget_clock;
    auto out_of_budget = [&]() {
        return params.time_budget_seconds > 0.0 &&
               budget_clock.elapsed_seconds() > params.time_budget_seconds;
    };

    OptimizeStats local;
    local.initial_depth = original.depth();
    local.initial_ands = original.count_reachable_ands();
    const std::size_t and_budget = 8 * std::max<std::size_t>(local.initial_ands, 64);

    Aig best = original;

    // Each iteration applies one level of lookahead decomposition to every
    // critical output, then (optionally) rounds of conventional
    // restructuring that flatten the freshly built window/mux logic — the
    // step that turns iterated single-level decompositions into the
    // prefix-style trees of the paper's Eqn. 2. An iteration that keeps the
    // depth flat is tolerated for a bounded number of rounds (the rewrite
    // into window form often pays off only once a later round flattens the
    // nested windows); the best circuit seen anywhere is what is returned.
    // Above this size, SAT sweeping and CEC run per *pass* instead of per
    // iteration (every per-cone decomposition is CEC-verified regardless,
    // and the returned circuit is always verified against the input).
    constexpr std::size_t kPerIterationCheckLimit = 1500;

    auto run_decomposition_loop = [&](Aig current) {
        int plateau = 0;
        constexpr int kMaxPlateau = 2;
        bool touched = false;
        for (int iter = 0; iter < params.max_iterations && !out_of_budget(); ++iter) {
            const int depth = current.depth();
            if (depth < 2) break;
            const auto levels = current.compute_levels();

            // Rebuild the circuit output by output; critical cones go
            // through the decomposition, everything else is copied (sharing
            // is recovered by structural hashing and the SAT sweep).
            Aig next;
            std::vector<AigLit> pi_map;
            pi_map.reserve(current.num_pis());
            for (std::size_t i = 0; i < current.num_pis(); ++i)
                pi_map.push_back(next.add_pi(current.pi_name(i)));
            const auto original_pos = append_aig(next, current, pi_map);

            // POs sharing a driver are decomposed once; a complemented
            // sibling reuses the result with an inverted output.
            std::unordered_map<std::uint32_t, std::optional<AigLit>> done_nodes;

            int improved_outputs = 0;
            for (std::size_t o = 0; o < current.num_pos(); ++o) {
                AigLit po_lit = original_pos[o];
                const AigLit driver = current.po(o);
                if (levels[driver.node()] == depth && !out_of_budget()) {
                    const auto cached = done_nodes.find(driver.node());
                    if (cached != done_nodes.end()) {
                        if (cached->second) {
                            const AigLit base = *cached->second;
                            po_lit = driver.complemented() ? !base : base;
                            ++improved_outputs;
                        }
                    } else {
                        const Aig cone = extract_cone(current, o);
                        std::optional<AigLit> rebuilt;
                        if (auto outcome = decompose_output(cone, params, rng)) {
                            const auto new_outs = append_aig(next, outcome->aig, pi_map);
                            po_lit = new_outs[0];
                            // Cache the uncomplemented-driver form.
                            rebuilt = driver.complemented() ? !new_outs[0] : new_outs[0];
                            ++improved_outputs;
                            local.log.push_back(
                                "iter " + std::to_string(iter) + " po " + current.po_name(o) +
                                ": depth " + std::to_string(outcome->old_depth) + " -> " +
                                std::to_string(outcome->new_depth) + " (" +
                                std::to_string(outcome->num_windows) + " windows, " +
                                outcome->reconstruction + ")");
                        }
                        done_nodes.emplace(driver.node(), rebuilt);
                    }
                }
                next.add_po(po_lit, current.po_name(o));
            }

            Aig candidate = next.cleanup();
            if (params.baseline_preoptimize) {
                for (int r = 0; r < 10; ++r) {
                    Aig restructured = restructure_round(candidate);
                    if (restructured.depth() >= candidate.depth()) break;
                    candidate = std::move(restructured);
                }
            }
            const bool small = candidate.count_reachable_ands() <= kPerIterationCheckLimit;
            if (params.area_recovery && small) candidate = sat_sweep(candidate, rng);

            const int candidate_depth = candidate.depth();
            if (candidate_depth > depth) break;  // regression: keep the best seen
            if (candidate_depth == depth) {
                if (improved_outputs == 0 || ++plateau > kMaxPlateau) break;
            } else {
                plateau = 0;
            }
            if (candidate.count_reachable_ands() > and_budget) break;  // runaway duplication

            if (params.verify_each_iteration && small) {
                const CecResult cec =
                    check_equivalence(candidate, current, /*conflict_limit=*/1000000);
                if (!cec.resolved || !cec.equivalent) {
                    // A failed or unresolved check means this round cannot
                    // be trusted; keep the last verified circuit.
                    local.verified = local.verified && cec.resolved;
                    break;
                }
            }

            local.outputs_decomposed += improved_outputs;
            ++local.iterations;
            touched = true;
            current = std::move(candidate);
            if (better(current, best)) best = current;
        }

        // Pass-level area recovery and verification for circuits that were
        // too large for per-iteration checks.
        if (touched && best.count_reachable_ands() > kPerIterationCheckLimit) {
            if (params.area_recovery) {
                Aig swept = sat_sweep(best, rng);
                if (!better(best, swept)) best = std::move(swept);
            }
            if (params.verify_each_iteration) {
                const CecResult cec =
                    check_equivalence(best, original, /*conflict_limit=*/4000000);
                if (!cec.resolved || !cec.equivalent) {
                    local.verified = local.verified && cec.resolved;
                    best = original;  // cannot trust anything from this pass
                }
            }
        }
    };

    // Pass 1: decomposition starting from the raw circuit (deep chains are
    // where the windows are easiest to find).
    run_decomposition_loop(original);

    // Pass 2: conventional restructuring alone, then decomposition on top
    // of it — the paper's deployment ("complements existing logic
    // optimization algorithms"). Whichever pass wins is returned.
    if (params.baseline_preoptimize) {
        Aig preopt = balance(original);
        if (better(preopt, best)) best = preopt;
        for (int r = 0; r < 10; ++r) {
            Aig restructured = restructure_round(preopt);
            if (params.area_recovery) restructured = sat_sweep(restructured, rng);
            if (restructured.depth() >= preopt.depth()) break;
            preopt = std::move(restructured);
        }
        if (params.verify_each_iteration) {
            const CecResult cec = check_equivalence(preopt, original, /*conflict_limit=*/1000000);
            if (!cec.resolved || !cec.equivalent) {
                local.verified = local.verified && cec.resolved;
                preopt = original;
            }
        }
        if (better(preopt, best)) best = preopt;
        if (preopt.depth() < original.depth()) run_decomposition_loop(preopt);
    }

    local.final_depth = best.depth();
    local.final_ands = best.count_reachable_ands();
    if (stats) *stats = local;
    return best;
}

}  // namespace lls
