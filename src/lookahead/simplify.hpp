#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/run_context.hpp"
#include "network/network.hpp"
#include "sim/simulation.hpp"
#include "sop/sop.hpp"
#include "tt/truth_table.hpp"

namespace lls {

/// Weight of a cube over `node`'s fanin space against a target
/// characteristic function (Sec. 3.1, "Using the SPCF"): the number of
/// target patterns whose fanin values fall inside the cube. `sigs` are the
/// network node signatures, `target` the SPCF (primary) or the complement
/// of the window function (secondary) over the same pattern set.
std::uint64_t cube_weight(const Network& net, std::uint32_t node, const Cube& cube,
                          const std::vector<Signature>& sigs, const Signature& target);

/// Result of simplifying one node per the paper's Fig. 1.
struct SimplifyOutcome {
    TruthTable new_tt;     ///< simplified node function (over the node's fanins)
    TruthTable window_tt;  ///< agreement window: (new_tt == old_tt), same space
    int old_level = 0;
    int new_level = 0;
};

/// The paper's `Simplify(j)` (Fig. 1): rewrites the Boolean function of
/// `node` to reduce its SOP-aware logic level, keeping the cubes that cover
/// the most SPCF minterms so that the resulting agreement window retains the
/// timing-critical input space.
///
/// The returned window is an *under-approximation* of the agreement set
/// (window => new_tt == old_tt, which is all the reconstruction needs):
/// fanins whose level reaches `window_budget` are universally quantified out
/// so that the window logic stays shallow — the Fig. 2 requirement that "the
/// additional logic does not cancel the reduction in logic levels". A
/// simplification is rejected (nullopt) when no level reduction exists, when
/// the quantified window vanishes, when its level exceeds the budget, or
/// when it covers none of the SPCF patterns reaching this node.
///
/// When `ctx.cost` is attached, one decomposition attempt is charged per
/// call (accepted or not — rejections cost the same analysis), the unit
/// the deterministic work budget meters (common/budget.hpp).
std::optional<SimplifyOutcome> simplify_node(const Network& net, std::uint32_t node,
                                             const std::vector<int>& levels,
                                             const std::vector<Signature>& sigs,
                                             const Signature& spcf, int window_budget,
                                             const RunContext& ctx = RunContext{});

}  // namespace lls
