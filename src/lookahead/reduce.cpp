#include "lookahead/reduce.hpp"

#include <algorithm>

#include "common/cancel.hpp"
#include "lookahead/simplify.hpp"

namespace lls {

ReduceResult reduce_cone(Network& net, std::uint32_t root, std::vector<Signature>& sigs,
                         std::size_t num_patterns, const Signature& spcf,
                         const RunContext& ctx) {
    ReduceResult result;
    std::vector<int> levels = net.compute_sop_levels();
    const int l_t = levels[root];
    result.old_level = l_t;
    result.new_level = l_t;
    if (l_t == 0) return result;

    const auto cone = net.cone_of(root);
    std::vector<char> visited(net.num_nodes(), 0);
    std::vector<char> marked(net.num_nodes(), 0);

    // Budget for the window logic: Sigma_1 plus the reconstruction mux must
    // close below the original level, so windows may not come near l_t.
    const int window_budget = std::max(1, l_t - 3);

    auto pick_start = [&]() -> std::uint32_t {
        std::uint32_t best = 0;
        int best_level = 0;
        for (const auto id : cone)
            if (!visited[id] && levels[id] > best_level) {
                best = id;
                best_level = levels[id];
            }
        return best;  // 0 (the constant node) doubles as "none"
    };

    while (levels[root] >= l_t) {
        std::uint32_t c = pick_start();
        if (c == 0) break;  // cone exhausted without reaching the target

        // Walk a critical chain downward from c (Fig. 2's inner loop).
        while (c != 0 && levels[root] >= l_t) {
            poll_cancellation("reduce");
            visited[c] = 1;
            if (!marked[c]) {
                if (auto outcome =
                        simplify_node(net, c, levels, sigs, spcf, window_budget, ctx)) {
                    net.set_function(c, outcome->new_tt);
                    result.windows.emplace_back(c, outcome->window_tt);
                    marked[c] = 1;
                    // Refresh the signatures of the changed node and
                    // everything downstream of it (ids are topological).
                    for (std::uint32_t id = c; id < net.num_nodes(); ++id)
                        if (net.is_internal(id))
                            sigs[id] = net.eval_node_signature(id, sigs, num_patterns);
                    levels = net.compute_sop_levels();
                    if (levels[root] < l_t) break;
                }
            }
            // Among critical fanins of c, descend into the highest unvisited
            // internal node.
            std::uint32_t next = 0;
            int next_level = 0;
            for (const auto f : net.critical_fanins(c, levels)) {
                if (!net.is_internal(f) || visited[f] || marked[f]) continue;
                if (levels[f] > next_level) {
                    next = f;
                    next_level = levels[f];
                }
            }
            c = next;
        }
    }

    result.new_level = levels[root];
    result.improved = result.new_level < l_t;
    return result;
}

}  // namespace lls
