#pragma once

#include <optional>
#include <string>

#include "aig/aig.hpp"
#include "bdd/bdd.hpp"
#include "common/budget.hpp"
#include "common/fault.hpp"
#include "common/rng.hpp"
#include "lookahead/params.hpp"

namespace lls {

/// Fault-containment hooks the engine threads into a cone decomposition.
///
/// `faults` is the deterministic injection context of the current retry
/// rung: the pipeline stages call `faults->check(site, stage)` at their
/// counted work points ("decompose", "spcf", "sat", "cec"), which throws
/// the planned synthetic LlsError when the active fault plan poisons that
/// site on this rung. `exact_verify` switches the final equivalence check
/// from SAT-based CEC to canonical-BDD comparison — the engine's
/// last-resort verification rung when the SAT solver keeps hitting its
/// effort limit.
///
/// `shared_bdd` (optional) is the engine's run-wide concurrency-safe
/// manager: when set and the cone fits its variable count, the exact
/// verification builds in it, reusing subgraphs other cones and workers
/// already constructed instead of rebuilding them per call. If the shared
/// pool's global node limit is exhausted mid-verification the rung falls
/// back to a *private* manager bounded by `exact_verify_bdd_limit`, so a
/// crowded pool can never flip a verdict the private manager would reach —
/// at worst the warm pool *completes* a verification the cold private
/// limit would abandon, which recovers strictly more cones and is always
/// an exact verdict (docs/ENGINE.md, "Shared BDD manager").
struct DecomposeHooks {
    const FaultContext* faults = nullptr;
    bool exact_verify = false;
    std::size_t exact_verify_bdd_limit = std::size_t{1} << 21;
    BddManager* shared_bdd = nullptr;
};

/// Result of one level of lookahead decomposition on a single-output cone.
struct DecomposeOutcome {
    Aig aig;  ///< improved cone, same PI interface, one PO
    int old_depth = 0;
    int new_depth = 0;
    int num_windows = 0;         ///< nodes whose agreement window feeds Sigma_1
    std::string reconstruction;  ///< implication rule used to rebuild y
};

/// Performs one level of the paper's timing-driven decomposition
/// y = Sigma_1*y0 + !Sigma_1*y1 on a single-output AIG:
///
///  1. computes the SPCF by floating-mode timing simulation,
///  2. clusters the cone into a technology-independent network,
///  3. primary simplification (`Reduce`/`Simplify`) on a duplicated cone
///     -> y0 and the window function Sigma_1,
///  4. secondary simplification of a second duplicate against !Sigma_1
///     (zero-weight cubes become don't-cares; with sampled patterns each
///     drop is additionally proven safe by SAT) -> y1,
///  5. reconstruction with the implication-rule library, picking the
///     lowest-depth correct form,
///  6. verification (CEC) of the result against the input cone.
///
/// Returns nullopt when no depth improvement is found.
///
/// When `cost` is given, the deterministic work spent on this cone is
/// accumulated into it: one decomposition attempt for the cone itself, one
/// per node-simplification attempt inside `reduce_cone`, and every SAT
/// conflict of the don't-care, implication, and verification queries. The
/// total is a pure function of (cone, params, rng seed) — the engine's
/// budgeted-determinism guarantee rests on this (common/budget.hpp).
///
/// Work spent before an exception is still merged into `cost`, so a
/// faulted rung charges the budget exactly like a completed one. `hooks`
/// (optional) carries the fault-injection context and the
/// exact-verification switch of the engine's retry ladder.
std::optional<DecomposeOutcome> decompose_output(const Aig& cone, const LookaheadParams& params,
                                                 Rng& rng, WorkCost* cost = nullptr,
                                                 const DecomposeHooks* hooks = nullptr);

}  // namespace lls
