#pragma once

#include <optional>
#include <string>

#include "aig/aig.hpp"
#include "common/rng.hpp"
#include "common/run_context.hpp"
#include "lookahead/params.hpp"

namespace lls {

/// Result of one level of lookahead decomposition on a single-output cone.
struct DecomposeOutcome {
    Aig aig;  ///< improved cone, same PI interface, one PO
    int old_depth = 0;
    int new_depth = 0;
    int num_windows = 0;         ///< nodes whose agreement window feeds Sigma_1
    std::string reconstruction;  ///< implication rule used to rebuild y
};

/// Performs one level of the paper's timing-driven decomposition
/// y = Sigma_1*y0 + !Sigma_1*y1 on a single-output AIG:
///
///  1. computes the SPCF by floating-mode timing simulation,
///  2. clusters the cone into a technology-independent network,
///  3. primary simplification (`Reduce`/`Simplify`) on a duplicated cone
///     -> y0 and the window function Sigma_1,
///  4. secondary simplification of a second duplicate against !Sigma_1
///     (zero-weight cubes become don't-cares; with sampled patterns each
///     drop is additionally proven safe by SAT) -> y1,
///  5. reconstruction with the implication-rule library, picking the
///     lowest-depth correct form,
///  6. verification (CEC) of the result against the input cone.
///
/// Returns nullopt when no depth improvement is found.
///
/// `ctx` is the engine's per-rung RunContext (common/run_context.hpp) and
/// the only plumbing path into the pipeline: its `cost` sink accumulates
/// the deterministic work spent on this cone (one decomposition attempt
/// for the cone itself, one per node-simplification attempt inside
/// `reduce_cone`, and every SAT conflict of the don't-care, implication,
/// and verification queries — a pure function of (cone, params, rng seed),
/// which budgeted determinism rests on); `faults` carries the injection
/// context of the current retry rung; `exact_verify`/`shared_bdd` select
/// and back the rung-2 exact equivalence check; `executor` (with
/// `intra_cone`) lets step 4 fan its independent per-cube SAT don't-care
/// proofs across the pool — verdicts are committed and conflicts charged
/// in fixed index order after the join, so the result and the charge
/// stream are identical with and without the fan-out.
///
/// Work spent before an exception is still merged into `ctx.cost`, so a
/// faulted rung charges the budget exactly like a completed one.
std::optional<DecomposeOutcome> decompose_output(const Aig& cone, const LookaheadParams& params,
                                                 Rng& rng,
                                                 const RunContext& ctx = RunContext{});

}  // namespace lls
