#pragma once

#include <optional>
#include <string>

#include "aig/aig.hpp"
#include "common/budget.hpp"
#include "common/rng.hpp"
#include "lookahead/params.hpp"

namespace lls {

/// Result of one level of lookahead decomposition on a single-output cone.
struct DecomposeOutcome {
    Aig aig;  ///< improved cone, same PI interface, one PO
    int old_depth = 0;
    int new_depth = 0;
    int num_windows = 0;         ///< nodes whose agreement window feeds Sigma_1
    std::string reconstruction;  ///< implication rule used to rebuild y
};

/// Performs one level of the paper's timing-driven decomposition
/// y = Sigma_1*y0 + !Sigma_1*y1 on a single-output AIG:
///
///  1. computes the SPCF by floating-mode timing simulation,
///  2. clusters the cone into a technology-independent network,
///  3. primary simplification (`Reduce`/`Simplify`) on a duplicated cone
///     -> y0 and the window function Sigma_1,
///  4. secondary simplification of a second duplicate against !Sigma_1
///     (zero-weight cubes become don't-cares; with sampled patterns each
///     drop is additionally proven safe by SAT) -> y1,
///  5. reconstruction with the implication-rule library, picking the
///     lowest-depth correct form,
///  6. verification (CEC) of the result against the input cone.
///
/// Returns nullopt when no depth improvement is found.
///
/// When `cost` is given, the deterministic work spent on this cone is
/// accumulated into it: one decomposition attempt for the cone itself, one
/// per node-simplification attempt inside `reduce_cone`, and every SAT
/// conflict of the don't-care, implication, and verification queries. The
/// total is a pure function of (cone, params, rng seed) — the engine's
/// budgeted-determinism guarantee rests on this (common/budget.hpp).
std::optional<DecomposeOutcome> decompose_output(const Aig& cone, const LookaheadParams& params,
                                                 Rng& rng, WorkCost* cost = nullptr);

}  // namespace lls
