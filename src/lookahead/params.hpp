#pragma once

#include <cstdint>
#include <string>

namespace lls {

/// Knobs of the lookahead synthesis flow. The defaults reproduce the
/// paper's configuration; several switches exist purely for the ablation
/// benchmarks documented in DESIGN.md.
struct LookaheadParams {
    // Clustering (AIG -> technology-independent network, the "renode" step).
    int cut_size = 5;
    int max_cuts = 8;

    /// Run conventional delay-oriented restructuring (balance + cut-based
    /// resynthesis) before and between decomposition rounds. The paper's
    /// technique "complements existing logic optimization algorithms" and
    /// was implemented inside ABC on top of its scripts; this switch
    /// reproduces that setting (and is an ablation knob).
    bool baseline_preoptimize = true;

    // Simulation-based SPCF / cube weights.
    std::size_t num_random_patterns = 1024;
    /// Ablation: use random patterns even when the PI count permits
    /// exhaustive (exact) simulation, exercising the sampled-SPCF +
    /// SAT-verified-don't-care path on small circuits.
    bool force_random_patterns = false;
    std::uint64_t seed = 1;
    /// SPCF threshold slack: SPCF collects patterns with sensitized arrival
    /// >= (max_arrival - spcf_slack); 0 = strictly critical paths.
    std::int32_t spcf_slack = 0;

    // SAT budgets.
    std::int64_t sat_conflict_limit = 2000;

    /// Use the implication-rule library when reconstructing
    /// y = S*y0 + !S*y1 (ablation switch; the paper's Sec. 3.1
    /// "Reconstructing y").
    bool use_implication_rules = true;

    /// Run the secondary simplification (ablation switch; without it y1
    /// stays the original function).
    bool secondary_simplification = true;

    /// Run SAT sweeping as area recovery after each reconstruction.
    bool area_recovery = true;

    /// Outer loop bound: each iteration adds one level of lookahead
    /// decomposition (Sigma_1, Sigma_2, ... in the paper's notation).
    int max_iterations = 10;

    /// Verify every accepted iteration against the previous circuit by CEC.
    bool verify_each_iteration = true;

    /// Deterministic work budget for the whole optimization (0 = none),
    /// counted in work units (common/budget.hpp): decomposition attempts
    /// plus SAT conflicts. Exhaustion is a pure function of work performed
    /// — not of wall time — so budgeted runs stay bit-identical across
    /// `--jobs` values, machines, and cache states. Once the accumulated
    /// charge reaches the budget, no further decomposition rounds start;
    /// the best verified circuit found so far is returned.
    std::uint64_t work_budget = 0;

    /// Wall-clock *safety rail* in seconds (0 = none). Unlike
    /// `work_budget` this is inherently nondeterministic: when it fires,
    /// the in-flight round is discarded, the run stops, and the result is
    /// flagged as timing-dependent (`OptimizeStats::wall_clock_interrupted`,
    /// `engine.wall_clock_interrupts` in --metrics). Use `work_budget` for
    /// reproducible budgeted runs; keep this only as a hard upper bound.
    double time_budget_seconds = 0.0;

    /// Per-cone wall-clock watchdog in seconds (0 = off). Each cone
    /// evaluation arms a Deadline (common/cancel.hpp) when it starts; an
    /// evaluation that outlives it is cancelled at its next poll and the
    /// cone degrades to its original form with a FaultRecord{Cancelled} —
    /// the same containment as an injected fault. Like
    /// `time_budget_seconds` this is inherently nondeterministic: fired
    /// watchdogs flag the run timing-dependent
    /// (`OptimizeStats::deadline_cancelled` /
    /// `engine.cancel.deadline_cancelled` in --metrics), and
    /// deadline-cancelled evaluations are never memoized or persisted so
    /// they cannot poison byte-identity of later runs. Deliberately NOT
    /// part of the params fingerprint: a cone that completes under a
    /// deadline computes exactly what it computes without one.
    double cone_deadline_seconds = 0.0;

    /// Deterministic per-cone memory quota in bytes (0 = none). Each
    /// retry-ladder rung of a cone evaluation charges its SAT clause/watch
    /// arenas, private BDD nodes, and decomposition scratch against a fresh
    /// quota at fixed program points, with allocation-count-derived byte
    /// costs (common/memgov.hpp) — never malloc-observed sizes — so
    /// exceeding the quota raises LlsError{ResourceExhausted, "memgov"} at
    /// identical points whatever the job count, intra-cone setting, or
    /// cache state. A memgov fault ends the ladder immediately (escalated
    /// rungs only grow the footprint) and the cone degrades to its
    /// original structure with a FaultRecord, which memoizes and persists
    /// like any other deterministic fault. Unlike `cone_deadline_seconds`,
    /// a nonzero quota IS part of the params fingerprint: it changes what
    /// evaluations compute.
    std::uint64_t cone_mem_bytes = 0;

    /// Deterministic fault-injection plan, `kind@site[:count]` specs
    /// separated by commas (common/fault.hpp; empty = inject nothing).
    /// Each spec fires a synthetic LlsError of `kind` whenever a cone
    /// evaluation reaches `site` ("decompose", "spcf", "sat", "cec") on
    /// retry-ladder rungs 0..count-1, so every recovery path is
    /// exercisable with a reproducible schedule. A non-empty plan is mixed
    /// into the params fingerprint (memo keys + per-cone RNG seeds);
    /// injected runs therefore stay bit-identical across `--jobs` values
    /// and cache states, and a run with an empty plan is untouched.
    std::string fault_plan;
};

}  // namespace lls
