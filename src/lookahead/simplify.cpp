#include "lookahead/simplify.hpp"

#include <algorithm>
#include <bit>

#include "common/bitops.hpp"
#include "common/cancel.hpp"

namespace lls {

std::uint64_t cube_weight(const Network& net, std::uint32_t node, const Cube& cube,
                          const std::vector<Signature>& sigs, const Signature& target) {
    const auto& fanins = net.fanins(node);
    std::uint64_t weight = 0;
    for (std::size_t w = 0; w < target.size(); ++w) {
        std::uint64_t match = target[w];
        if (!match) continue;
        for (std::size_t f = 0; f < fanins.size() && match; ++f) {
            if (!cube.has_literal(static_cast<int>(f))) continue;
            const std::uint64_t v = sigs[fanins[f]][w];
            match &= cube.literal_polarity(static_cast<int>(f)) ? v : ~v;
        }
        weight += static_cast<std::uint64_t>(popcount64(match));
    }
    return weight;
}

namespace {

TruthTable cube_truth_table(const Cube& cube, int num_vars) {
    Sop s(num_vars);
    s.add_cube(cube);
    return s.to_truth_table();
}

struct WeightedCube {
    Cube cube;
    bool on_set;  ///< true if from the on-set SOP
    std::uint64_t weight;
};

}  // namespace

std::optional<SimplifyOutcome> simplify_node(const Network& net, std::uint32_t node,
                                             const std::vector<int>& levels,
                                             const std::vector<Signature>& sigs,
                                             const Signature& spcf, int window_budget,
                                             const RunContext& ctx) {
    if (ctx.cost != nullptr) ++ctx.cost->decompositions;
    poll_cancellation("simplify");
    if (!net.is_internal(node)) return std::nullopt;
    const TruthTable& old_tt = net.function(node);
    const int k = old_tt.num_vars();

    std::vector<int> fl;
    fl.reserve(net.fanins(node).size());
    for (const auto f : net.fanins(node)) fl.push_back(levels[f]);

    const Sop& s_on = net.on_sop(node);
    const Sop& s_off = net.off_sop(node);
    const int l_j = Network::sop_level_of(s_on, s_off, fl);
    if (l_j == 0) return std::nullopt;  // nothing to gain

    auto weigh = [&](const Sop& sop, bool on_set) {
        std::vector<WeightedCube> result;
        result.reserve(sop.num_cubes());
        for (const auto& c : sop.cubes())
            result.push_back(WeightedCube{c, on_set, cube_weight(net, node, c, sigs, spcf)});
        return result;
    };
    std::vector<WeightedCube> on_cubes = weigh(s_on, true);
    std::vector<WeightedCube> off_cubes = weigh(s_off, false);

    const bool off_all_zero = std::all_of(off_cubes.begin(), off_cubes.end(),
                                          [](const WeightedCube& w) { return w.weight == 0; });
    const bool on_all_zero = std::all_of(on_cubes.begin(), on_cubes.end(),
                                         [](const WeightedCube& w) { return w.weight == 0; });
    if (off_all_zero && on_all_zero) return std::nullopt;  // no SPCF activity here

    auto by_weight_desc = [](const WeightedCube& a, const WeightedCube& b) {
        return a.weight > b.weight;
    };

    TruthTable new_tt(k);
    if (off_all_zero || on_all_zero) {
        // One-sided case of Fig. 1: all timing-critical activity lies in one
        // phase. Start from the constant of the *other* phase and re-admit
        // cubes of the active phase in decreasing weight order, as long as
        // the node's level stays below the original.
        const bool grow_on_set = off_all_zero;  // critical minterms are in the on-set
        std::vector<WeightedCube>& order = grow_on_set ? on_cubes : off_cubes;
        std::sort(order.begin(), order.end(), by_weight_desc);

        TruthTable accepted(k);  // union of accepted cubes of the active phase
        for (const auto& wc : order) {
            if (wc.weight == 0) continue;
            const TruthTable cand = accepted | cube_truth_table(wc.cube, k);
            const TruthTable cand_fn = grow_on_set ? cand : ~cand;
            if (Network::sop_level_of(cand_fn, fl) < l_j) accepted = cand;
        }
        new_tt = grow_on_set ? accepted : ~accepted;
    } else {
        // Two-sided case: both phases carry critical minterms. Start from an
        // unconstrained function and pin cube regions to their original
        // values in decreasing weight order, filling the rest by the
        // cheapest completion between the accumulated bounds.
        std::vector<WeightedCube> order;
        order.insert(order.end(), on_cubes.begin(), on_cubes.end());
        order.insert(order.end(), off_cubes.begin(), off_cubes.end());
        std::sort(order.begin(), order.end(), by_weight_desc);

        TruthTable lower(k);                             // must-be-1 region
        TruthTable upper = TruthTable::constant(k, true);  // may-be-1 region
        auto completion = [&](const TruthTable& lo, const TruthTable& up) {
            return minimum_sop(lo, up & ~lo).to_truth_table();
        };
        new_tt = completion(lower, upper);  // constant 0
        for (const auto& wc : order) {
            if (wc.weight == 0) continue;
            TruthTable lo = lower;
            TruthTable up = upper;
            const TruthTable region = cube_truth_table(wc.cube, k);
            if (wc.on_set)
                lo |= region;
            else
                up &= ~region;
            if (!lo.implies(up)) continue;  // overlapping cubes pinned both ways
            const TruthTable cand = completion(lo, up);
            if (Network::sop_level_of(cand, fl) < l_j) {
                lower = lo;
                upper = up;
                new_tt = cand;
            }
        }
    }

    if (new_tt == old_tt) return std::nullopt;
    const int new_level = Network::sop_level_of(new_tt, fl);
    if (new_level >= l_j) return std::nullopt;

    // Agreement window, under-approximated: universally quantify out every
    // fanin that is itself at (or beyond) the window budget, so Sigma_1 does
    // not re-introduce the deep signals the simplification just removed.
    TruthTable window = ~(new_tt ^ old_tt);
    for (int v = 0; v < k; ++v) {
        if (fl[static_cast<std::size_t>(v)] < window_budget) continue;
        if (!window.has_var(v)) continue;
        window = window.cofactor(v, false) & window.cofactor(v, true);
    }
    if (window.is_const0()) return std::nullopt;
    if (Network::sop_level_of(window, fl) > window_budget) return std::nullopt;

    // The window must retain at least part of the timing-critical input
    // space, otherwise the decomposition cannot help the speed paths.
    {
        const auto& fanins = net.fanins(node);
        bool covers_critical = false;
        for (std::size_t w = 0; w < spcf.size() && !covers_critical; ++w) {
            std::uint64_t bits = spcf[w];
            while (bits) {
                const int b = std::countr_zero(bits);
                bits &= bits - 1;
                std::uint32_t minterm = 0;
                for (std::size_t f = 0; f < fanins.size(); ++f)
                    if ((sigs[fanins[f]][w] >> b) & 1) minterm |= 1u << f;
                if (window.get_bit(minterm)) {
                    covers_critical = true;
                    break;
                }
            }
        }
        if (!covers_critical) return std::nullopt;
    }

    SimplifyOutcome outcome;
    outcome.window_tt = std::move(window);
    outcome.new_tt = std::move(new_tt);
    outcome.old_level = l_j;
    outcome.new_level = new_level;
    return outcome;
}

}  // namespace lls
