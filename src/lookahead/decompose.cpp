#include "lookahead/decompose.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstdlib>
#include <exception>

#include "aig/aig_build.hpp"
#include "bdd/aig_bdd.hpp"
#include "bdd/bdd.hpp"
#include "cec/cec.hpp"
#include "common/bitops.hpp"
#include "common/cancel.hpp"
#include "common/error.hpp"
#include "common/memgov.hpp"
#include "common/thread_pool.hpp"
#include "engine/metrics.hpp"
#include "lookahead/reduce.hpp"
#include "lookahead/simplify.hpp"
#include "network/network.hpp"
#include "spcf/spcf.hpp"

namespace lls {

namespace {

/// Two-input AND truth table (minterm 3 only).
TruthTable and2_tt() {
    TruthTable tt(2);
    tt.set_bit(3, true);
    return tt;
}

Signature complement_signature(Signature s, std::size_t num_patterns) {
    for (auto& w : s) w = ~w;
    s.back() &= tail_mask(num_patterns);
    return s;
}

bool signature_implies(const Signature& a, const Signature& b) {
    for (std::size_t w = 0; w < a.size(); ++w)
        if (a[w] & ~b[w]) return false;
    return true;
}

Metrics& metrics_of(const RunContext& ctx) {
    return ctx.metrics != nullptr ? *ctx.metrics : Metrics::global();
}

/// One node's don't-care proof obligation in secondary simplification: the
/// candidate minterms no !Sigma_1 pattern reached, to be proven genuinely
/// unreachable by SAT (one independent query per minterm). Tasks are
/// self-contained — each runs against its own solver encoding of the same
/// pre-simplification network snapshot — so they can execute in any order,
/// on any thread, and still produce identical verdicts and identical
/// per-task conflict counts. That purity is the whole determinism argument
/// of the intra-cone fan-out: the joined results are a function of the
/// task list, never of the schedule.
struct DcProofTask {
    std::uint32_t node = 0;
    TruthTable dc;                        ///< proven don't-cares (pre-filled when exhaustive)
    std::vector<std::uint32_t> queries;   ///< minterms still needing a SAT proof
    std::vector<char> verdicts;           ///< parallel to `queries`; 1 = proven unreachable
    std::uint64_t conflicts = 0;          ///< this task's solver conflicts
    std::uint64_t mem_bytes = 0;          ///< this task's quota-counted bytes
    std::exception_ptr error;             ///< contained failure, rethrown at the join
};

/// The decomposition body; `ctx.cost` (non-null here — the public wrapper
/// guarantees it) collects work units on every exit path.
std::optional<DecomposeOutcome> decompose_output_impl(const Aig& cone,
                                                      const LookaheadParams& params, Rng& rng,
                                                      const RunContext& ctx) {
    LLS_REQUIRE(cone.num_pos() == 1);
    WorkCost& cost = *ctx.cost;
    poll_cancellation("decompose");
    ctx.check_fault("decompose", "decompose");
    const int old_depth = cone.depth();
    if (old_depth < 2) return std::nullopt;

    // --- 1. SPCF from floating-mode timing simulation -----------------------
    const bool exhaustive =
        cone.num_pis() <= SimPatterns::kMaxExhaustivePis && !params.force_random_patterns;
    const SimPatterns patterns =
        exhaustive ? SimPatterns::exhaustive(cone.num_pis())
                   : SimPatterns::random(cone.num_pis(), params.num_random_patterns, rng);
    const auto aig_sigs = simulate(cone, patterns);
    // Tier-1 charge site: simulation signatures, priced by their counted
    // word footprint — a pure function of (cone, params), like every charge
    // below, so the quota trips at the same point on every schedule.
    ctx.charge_memory(aig_sigs.size() *
                      (aig_sigs.empty() ? 0 : aig_sigs.front().size()) *
                      memcost::kSignatureWordBytes);
    const Spcf spcf = compute_spcf(cone, patterns, aig_sigs, /*delta=*/0);
    const std::int32_t delta = std::max<std::int32_t>(1, spcf.max_arrival - params.spcf_slack);
    const Spcf spcf_at_delta = delta == spcf.delta
                                   ? spcf
                                   : compute_spcf(cone, patterns, aig_sigs, delta);
    const Signature& spcf_sig = spcf_at_delta.po_spcf[0];
    ctx.check_fault("spcf", "spcf");
    if (spcf_at_delta.empty(0)) return std::nullopt;

    // --- 2. cluster into a technology-independent network -------------------
    Network net = Network::from_aig(cone, params.cut_size, params.max_cuts);
    std::vector<Signature> sigs = net.simulate(patterns);
    // Charge site: the clustered network plus its per-node signatures.
    const std::uint64_t sig_words =
        sigs.empty() ? 0 : static_cast<std::uint64_t>(sigs.front().size());
    const std::uint64_t net_node_bytes =
        memcost::kNetworkNodeBytes + sig_words * memcost::kSignatureWordBytes;
    ctx.charge_memory(net.num_nodes() * net_node_bytes);
    const std::uint32_t y_orig = net.po(0).node;
    if (!net.is_internal(y_orig)) return std::nullopt;

    auto extend_sigs_for_copies = [&](const std::vector<std::uint32_t>& mapping,
                                      std::size_t old_size) {
        sigs.resize(net.num_nodes());
        for (std::uint32_t old_id = 0; old_id < old_size; ++old_id) {
            const std::uint32_t new_id = mapping[old_id];
            if (new_id != old_id) sigs[new_id] = sigs[old_id];
        }
    };

    // --- 3. primary simplification -> y0 and the windows --------------------
    std::vector<std::uint32_t> primary_map;
    const std::size_t size_before_primary = net.num_nodes();
    const std::uint32_t y0_root = net.duplicate_cone(y_orig, &primary_map);
    extend_sigs_for_copies(primary_map, size_before_primary);
    // Charge site: the primary duplicate's node growth.
    ctx.charge_memory((net.num_nodes() - size_before_primary) * net_node_bytes);

    const ReduceResult reduced =
        reduce_cone(net, y0_root, sigs, patterns.num_patterns(), spcf_sig, ctx);
    if (!reduced.improved || reduced.windows.empty()) return std::nullopt;

    // Window nodes: one agreement node per marked node, conjoined by a
    // balanced AND tree into Sigma_1.
    std::vector<std::uint32_t> window_nodes;
    window_nodes.reserve(reduced.windows.size());
    for (const auto& [marked_node, window_tt] : reduced.windows) {
        std::vector<std::uint32_t> fanins = net.fanins(marked_node);
        const std::uint32_t w = net.add_node(std::move(fanins), window_tt);
        sigs.resize(net.num_nodes());
        sigs[w] = net.eval_node_signature(w, sigs, patterns.num_patterns());
        window_nodes.push_back(w);
    }
    while (window_nodes.size() > 1) {
        std::vector<std::uint32_t> next;
        for (std::size_t i = 0; i + 1 < window_nodes.size(); i += 2) {
            const std::uint32_t a =
                net.add_node({window_nodes[i], window_nodes[i + 1]}, and2_tt());
            sigs.resize(net.num_nodes());
            sigs[a] = net.eval_node_signature(a, sigs, patterns.num_patterns());
            next.push_back(a);
        }
        if (window_nodes.size() % 2) next.push_back(window_nodes.back());
        window_nodes = std::move(next);
    }
    const std::uint32_t sigma = window_nodes[0];
    const Signature not_sigma = complement_signature(sigs[sigma], patterns.num_patterns());

    // --- 4. secondary simplification -> y1 ---------------------------------
    std::vector<std::uint32_t> secondary_map;
    const std::size_t size_before_secondary = net.num_nodes();
    const std::uint32_t y1_root = net.duplicate_cone(y_orig, &secondary_map);
    extend_sigs_for_copies(secondary_map, size_before_secondary);
    // Charge site: the secondary duplicate (window nodes built in between
    // are part of this growth window, priced at the same per-node cost).
    ctx.charge_memory((net.num_nodes() - size_before_secondary) * net_node_bytes);

    if (params.secondary_simplification) {
        ctx.check_fault("sat", "simplify");
        // With random patterns a zero sampled weight is only evidence; every
        // cube drop must be proven unreachable under !Sigma_1 by SAT before
        // it becomes a don't-care (DESIGN.md, "Key algorithmic decisions").
        const bool need_sat = !patterns.is_exhaustive();
        std::vector<AigLit> node_map;
        Aig snapshot;
        if (need_sat) {
            snapshot = net.to_aig_with_map(&node_map);
            // Charge site: the read-only AIG snapshot the proof tasks
            // encode against.
            ctx.charge_memory(snapshot.num_nodes() * memcost::kAigNodeBytes);
        }

        // Phase A (serial): collect per-node don't-care candidates from the
        // sampled signatures. Node functions are untouched during this and
        // the proof phase, so `net`, `snapshot`, and `sigs` are read-only
        // shared state for the tasks below.
        std::vector<DcProofTask> proof_tasks;
        const auto y1_levels = net.compute_sop_levels();
        for (const auto node : net.cone_of(y1_root)) {
            poll_cancellation("simplify");
            if (y1_levels[node] == 0) continue;  // already a literal/constant
            const TruthTable& f = net.function(node);
            const int k = f.num_vars();
            const auto& fanins = net.fanins(node);

            // Fanin-space minterms that some !Sigma_1 pattern actually
            // reaches; everything else is a don't-care candidate.
            TruthTable reached(k);
            for (std::size_t w = 0; w < not_sigma.size(); ++w) {
                std::uint64_t bits = not_sigma[w];
                while (bits) {
                    const int b = std::countr_zero(bits);
                    bits &= bits - 1;
                    std::uint32_t minterm = 0;
                    for (std::size_t fi = 0; fi < fanins.size(); ++fi)
                        if ((sigs[fanins[fi]][w] >> b) & 1) minterm |= 1u << fi;
                    reached.set_bit(minterm, true);
                }
            }
            DcProofTask task;
            task.node = node;
            task.dc = TruthTable(k);
            for (std::uint32_t m = 0; m < (1u << k); ++m) {
                if (reached.get_bit(m)) continue;
                // Exhaustive patterns make sampled absence a proof already.
                if (need_sat) task.queries.push_back(m);
                else task.dc.set_bit(m, true);
            }
            if (task.queries.empty() && task.dc.is_const0()) continue;
            proof_tasks.push_back(std::move(task));
        }

        // Phase B: prove the candidates. Each task encodes the shared
        // snapshot into its own solver and runs its minterm queries in
        // minterm order — structurally identical work whether the tasks run
        // serially here or fanned out across the pool, which is what keeps
        // `--intra-cone on|off` (and every --jobs value) byte-identical.
        // Errors are contained per task, every index always executes, and
        // the join below charges conflicts in task order up to the first
        // error — so the charge stream cannot depend on the schedule.
        if (need_sat && !proof_tasks.empty()) {
            // Tier-1 headroom snapshot, taken at this serial point: each
            // proof task charges a *task-local* quota bounded by the same
            // snapshot (sharing the cone quota across threads would be a
            // data race and make the trip point schedule-dependent). The
            // join below merges the task byte counts into the cone quota in
            // fixed task order — the same discipline as the conflict
            // charges. An exhausted snapshot (0 headroom) clamps to 1 so
            // any task allocation still trips deterministically.
            const std::uint64_t task_quota_limit =
                ctx.mem_quota == nullptr
                    ? 0
                    : std::max<std::uint64_t>(1, ctx.mem_quota->remaining());
            auto run_task = [&](std::size_t t) {
                DcProofTask& task = proof_tasks[t];
                // A pool worker may arrive here from any cone or batch
                // item; install this cone's cancellation scope so the
                // thread-local polls inside the solver see the right
                // deadline (nesting-safe: CancelScope saves/restores).
                const CancelScope task_scope(ctx.cancel, ctx.deadline);
                RunContext task_ctx = ctx;
                MemoryQuota task_quota(task_quota_limit);
                task_ctx.mem_quota = ctx.mem_quota != nullptr ? &task_quota : nullptr;
                sat::Solver solver;
                solver.bind_run_context(&task_ctx);
                try {
                    std::vector<int> pi_vars(snapshot.num_pis());
                    for (auto& v : pi_vars) v = solver.new_var();
                    const auto aig_lits = encode_aig_nodes(snapshot, solver, pi_vars);
                    const sat::Lit sigma_lit = sat_lit_of(aig_lits, node_map[sigma]);
                    const auto& fanins = net.fanins(task.node);
                    task.verdicts.assign(task.queries.size(), 0);
                    for (std::size_t q = 0; q < task.queries.size(); ++q) {
                        // Between-queries poll: a fired cone deadline (or a
                        // shutdown) stops the sweep at the next query
                        // boundary instead of grinding through the rest of
                        // the proof batch.
                        ctx.poll_cancellation("simplify");
                        const std::uint32_t minterm = task.queries[q];
                        std::vector<sat::Lit> assumptions{!sigma_lit};
                        for (std::size_t f = 0; f < fanins.size(); ++f) {
                            const sat::Lit l = sat_lit_of(aig_lits, node_map[fanins[f]]);
                            assumptions.push_back(((minterm >> f) & 1) ? l : !l);
                        }
                        task.verdicts[q] =
                            solver.solve(assumptions, params.sat_conflict_limit) ==
                            sat::Status::Unsat;
                    }
                } catch (...) {
                    task.error = std::current_exception();
                }
                task.conflicts = static_cast<std::uint64_t>(solver.num_conflicts());
                task.mem_bytes = task_quota.charged();
            };

            ThreadPool* executor = ctx.intra_cone_executor();
            if (executor != nullptr && proof_tasks.size() > 1) {
                metrics_of(ctx).counter("engine.intracone.parallel_batches").add();
                // run_task never throws (errors are recorded per task), so
                // the fan-out always executes every index — required: the
                // join must see a verdict-or-error for each task.
                executor->parallel_for(0, proof_tasks.size(), run_task);
            } else {
                for (std::size_t t = 0; t < proof_tasks.size(); ++t) run_task(t);
            }

            // Deterministic join: resolve verdicts and charge conflicts in
            // fixed task order. On error, charge through the first failing
            // task (its partial conflicts are a pure function of the task
            // for deterministic kinds like ResourceExhausted) and rethrow;
            // later tasks ran but stay uncharged in both execution modes.
            std::uint64_t sat_queries = 0;
            std::exception_ptr first_error;
            for (DcProofTask& task : proof_tasks) {
                cost.sat_conflicts += task.conflicts;
                sat_queries += task.queries.size();
                // Merge the task's counted bytes into the cone quota at
                // this fixed-order point; an exhaustion raised here is the
                // deterministic Tier-1 fault, identical on every schedule.
                if (ctx.mem_quota != nullptr) ctx.mem_quota->charge(task.mem_bytes);
                if (task.error) {
                    first_error = task.error;
                    break;
                }
                for (std::size_t q = 0; q < task.queries.size(); ++q)
                    if (task.verdicts[q]) task.dc.set_bit(task.queries[q], true);
            }
            metrics_of(ctx).counter("engine.intracone.queries").add(sat_queries);
            if (first_error) std::rethrow_exception(first_error);
        }

        // Phase C (serial): commit the proven don't-cares in cone order.
        for (const DcProofTask& task : proof_tasks) {
            if (task.dc.is_const0()) continue;
            const TruthTable& f = net.function(task.node);
            const TruthTable new_f = minimum_sop(f & ~task.dc, task.dc).to_truth_table();
            if (!(new_f == f)) net.set_function(task.node, new_f);
        }
    }

    // --- 5. reconstruction with implication rules ---------------------------
    std::vector<AigLit> node_map;
    Aig full = net.to_aig_with_map(&node_map);
    const AigLit s = node_map[sigma];
    const AigLit a = node_map[y0_root];  // equals y when Sigma_1 = 1
    const AigLit b = node_map[y1_root];  // equals y when Sigma_1 = 0
    const AigLit base = full.lmux(s, a, b);

    const auto full_sigs = simulate(full, patterns);
    auto lit_sig = [&](AigLit lit) {
        return literal_signature(full, lit, full_sigs, patterns.num_patterns());
    };

    // Implication oracle: signature screen first (sound for refutation),
    // exhaustive patterns prove directly, otherwise SAT proves.
    sat::Solver impl_solver;
    impl_solver.bind_run_context(&ctx);
    std::vector<sat::Lit> full_sat;
    bool impl_solver_ready = false;
    auto ensure_impl_solver = [&]() {
        if (impl_solver_ready) return;
        std::vector<int> pi_vars(full.num_pis());
        for (auto& v : pi_vars) v = impl_solver.new_var();
        full_sat = encode_aig_nodes(full, impl_solver, pi_vars);
        impl_solver_ready = true;
    };
    auto implies = [&](AigLit x, AigLit y) {
        if (!signature_implies(lit_sig(x), lit_sig(y))) return false;
        if (patterns.is_exhaustive()) return true;
        ensure_impl_solver();
        return impl_solver.solve({sat_lit_of(full_sat, x), sat_lit_of(full_sat, !y)},
                                 params.sat_conflict_limit) == sat::Status::Unsat;
    };

    struct Candidate {
        AigLit lit;
        std::string rule;
    };
    std::vector<Candidate> candidates{{base, "base mux"}};
    if (params.use_implication_rules) {
        if (a == b) candidates.push_back({a, "y0 == y1"});
        if (a == AigLit::constant(false)) candidates.push_back({full.land(!s, b), "y0 == 0"});
        if (a == AigLit::constant(true)) candidates.push_back({full.lor(s, b), "y0 == 1"});
        if (b == AigLit::constant(false)) candidates.push_back({full.land(s, a), "y1 == 0"});
        if (b == AigLit::constant(true)) candidates.push_back({full.lor(!s, a), "y1 == 1"});
        const bool a_implies_f = implies(a, base);
        const bool b_implies_f = implies(b, base);
        const bool f_implies_a = implies(base, a);
        const bool f_implies_b = implies(base, b);
        if (a_implies_f) candidates.push_back({full.lor(a, full.land(!s, b)), "y0 => y"});
        if (b_implies_f) candidates.push_back({full.lor(b, full.land(s, a)), "y1 => y"});
        if (a_implies_f && b_implies_f) candidates.push_back({full.lor(a, b), "y0+y1"});
        if (f_implies_a) candidates.push_back({full.land(a, full.lor(s, b)), "y => y0"});
        if (f_implies_b) candidates.push_back({full.land(b, full.lor(!s, a)), "y => y1"});
        if (f_implies_a && f_implies_b) candidates.push_back({full.land(a, b), "y0*y1"});
        // Rules relating the window itself to the branch functions:
        //   S => y0   : S*y0 = S,         y = S + y1   (window forces y0)
        //   S => !y0  : S*y0 = 0,         y = !S*y1
        //   !S => y1  : !S*y1 = !S,       y = !S + y0
        //   !S => !y1 : !S*y1 = 0,        y = S*y0
        if (implies(s, a)) candidates.push_back({full.lor(s, b), "S => y0"});
        if (implies(s, !a)) candidates.push_back({full.land(!s, b), "S => !y0"});
        if (implies(!s, b)) candidates.push_back({full.lor(!s, a), "!S => y1"});
        if (implies(!s, !b)) candidates.push_back({full.land(s, a), "!S => !y1"});
    }
    cost.sat_conflicts += static_cast<std::uint64_t>(impl_solver.num_conflicts());

    const auto levels = full.compute_levels();
    std::size_t best = 0;
    for (std::size_t i = 1; i < candidates.size(); ++i)
        if (levels[candidates[i].lit.node()] < levels[candidates[best].lit.node()]) best = i;

    const AigLit chosen = net.po(0).complemented ? !candidates[best].lit : candidates[best].lit;
    full.add_po(chosen, cone.po_name(0));
    Aig result = extract_cone(full, full.num_pos() - 1);

    // --- 6. verify and accept ------------------------------------------------
    // Equal-depth results are accepted too: they re-express the cone in
    // window/mux form, which the interleaved restructuring rounds of
    // optimize_timing can then flatten across decomposition levels
    // (the telescoping of the paper's Eqn. 2).
    const int new_depth = result.depth();
    if (getenv("LLS_DEBUG"))
        fprintf(stderr, "[decompose] old=%d new=%d rule=%s sigma_lvl=%d y0_lvl=%d y1_lvl=%d\n",
                old_depth, new_depth, candidates[best].rule.c_str(), levels[s.node()],
                levels[a.node()], levels[b.node()]);
    if (new_depth > old_depth) return std::nullopt;
    ctx.check_fault("cec", "cec");
    if (ctx.exact_verify) {
        // Last-resort rung of the engine's retry ladder: canonical BDDs
        // decide equivalence exactly instead of bounding SAT effort. The
        // shared run-wide manager is tried first (cross-cone/cross-worker
        // subgraph reuse); its global pool running dry falls back to a
        // private manager so the resource boundary stays a pure function
        // of (cone, params) rather than of the thread schedule.
        bool equivalent = false;
        bool decided = false;
        // Under a Tier-1 quota the shared manager is skipped outright: its
        // node pool reflects what *other* cones and workers built, so
        // charging this cone for growth observed there would be
        // schedule-dependent. The quota-capped private manager below keeps
        // the charge a pure function of (cone, params).
        if (ctx.mem_quota == nullptr && ctx.shared_bdd != nullptr &&
            static_cast<int>(result.num_pis()) <= ctx.shared_bdd->num_vars()) {
            try {
                equivalent = bdd_equivalent(result, cone, *ctx.shared_bdd);
                decided = true;
            } catch (const LlsError& e) {
                if (e.kind() != ErrorKind::ResourceExhausted) throw;
                metrics_of(ctx).counter("bdd.shared.exact_verify_fallbacks").add();
            }
        }
        if (!decided && ctx.mem_quota != nullptr) {
            // Private manager with a node cap derived from the quota
            // headroom. When the quota is the binding constraint (not the
            // configured BDD limit), running the manager dry *is* quota
            // exhaustion — converted into the canonical memgov fault.
            const std::uint64_t headroom = ctx.mem_quota->remaining();
            const std::uint64_t quota_nodes = headroom / memcost::kBddNodeBytes;
            const bool quota_capped = quota_nodes < ctx.exact_verify_bdd_limit;
            const std::size_t node_cap = static_cast<std::size_t>(std::clamp<std::uint64_t>(
                std::min<std::uint64_t>(ctx.exact_verify_bdd_limit, quota_nodes), 2,
                std::uint64_t{1} << 22));
            try {
                BddManager priv(static_cast<int>(std::max(result.num_pis(), cone.num_pis())),
                                node_cap);
                equivalent = bdd_equivalent(result, cone, priv);
                ctx.mem_quota->charge(priv.num_nodes() * memcost::kBddNodeBytes);
                decided = true;
            } catch (const LlsError& e) {
                if (e.kind() == ErrorKind::ResourceExhausted && quota_capped)
                    ctx.mem_quota->charge(headroom + 1);  // throws the memgov fault
                throw;
            }
        }
        if (!decided) equivalent = bdd_equivalent(result, cone, ctx.exact_verify_bdd_limit);
        if (!equivalent) return std::nullopt;
    } else {
        const CecResult cec = check_equivalence(result, cone, /*conflict_limit=*/500000, ctx);
        if (!cec.resolved || !cec.equivalent) return std::nullopt;
    }

    DecomposeOutcome outcome;
    outcome.aig = std::move(result);
    outcome.old_depth = old_depth;
    outcome.new_depth = new_depth;
    outcome.num_windows = static_cast<int>(reduced.windows.size());
    outcome.reconstruction = candidates[best].rule;
    return outcome;
}

}  // namespace

std::optional<DecomposeOutcome> decompose_output(const Aig& cone, const LookaheadParams& params,
                                                 Rng& rng, const RunContext& ctx) {
    WorkCost local;
    local.decompositions = 1;  // the attempt itself, even when it bails early
    RunContext inner = ctx;
    inner.cost = &local;
    try {
        auto result = decompose_output_impl(cone, params, rng, inner);
        ctx.charge(local);
        return result;
    } catch (...) {
        // A faulted attempt charges the budget exactly like a completed
        // one — budgeted determinism must hold on recovery paths too.
        ctx.charge(local);
        throw;
    }
}

}  // namespace lls
