#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/run_context.hpp"
#include "network/network.hpp"
#include "sim/simulation.hpp"
#include "tt/truth_table.hpp"

namespace lls {

/// Result of running the paper's `Reduce` (Fig. 2) on one output cone.
struct ReduceResult {
    /// Marked nodes and their agreement windows (functions over each node's
    /// fanins). Sigma_1 is the conjunction of all of them.
    std::vector<std::pair<std::uint32_t, TruthTable>> windows;
    int old_level = 0;  ///< SOP level of the root before reduction
    int new_level = 0;  ///< SOP level of the root after reduction
    bool improved = false;
};

/// The paper's `Reduce(T, SPCF)` specialized to a single output cone rooted
/// at `root`: repeatedly walks down critical fanin chains from the
/// highest-level nodes, simplifying each node with `simplify_node`, until
/// the root's SOP level drops below its original value or the cone is
/// exhausted. Node functions in `net` are modified in place (the caller is
/// expected to operate on a duplicated cone), and `sigs` is re-simulated
/// incrementally so that cube weights always reflect the current network
/// state, as the paper's "global Boolean functions of each node" require.
/// `ctx.cost` (when attached) accumulates one decomposition attempt per
/// `simplify_node` call, the unit of the deterministic work budget.
ReduceResult reduce_cone(Network& net, std::uint32_t root, std::vector<Signature>& sigs,
                         std::size_t num_patterns, const Signature& spcf,
                         const RunContext& ctx = RunContext{});

}  // namespace lls
