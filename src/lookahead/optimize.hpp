#pragma once

#include <string>
#include <vector>

#include "aig/aig.hpp"
#include "common/fault.hpp"
#include "lookahead/params.hpp"

namespace lls {

/// Statistics of a full lookahead optimization run.
struct OptimizeStats {
    int initial_depth = 0;
    int final_depth = 0;
    std::size_t initial_ands = 0;
    std::size_t final_ands = 0;
    int iterations = 0;            ///< accepted decomposition levels
    int outputs_decomposed = 0;    ///< per-output decompositions accepted (total)
    bool verified = true;          ///< every accepted step passed CEC
    /// Work units charged against `params.work_budget` (decomposition
    /// attempts + SAT conflicts of the cone evaluations); deterministic for
    /// a given (input, params), whatever the job count or cache state.
    std::uint64_t work_units = 0;
    /// The deterministic work budget stopped the run before the iteration
    /// limit. The result is still bit-identical across `--jobs` values.
    bool budget_exhausted = false;
    /// The wall-clock safety rail (`time_budget_seconds`) fired: the
    /// in-flight round was discarded and the result is timing-dependent —
    /// reruns may differ. Never set on purely work-budgeted runs.
    bool wall_clock_interrupted = false;
    /// Cone evaluations cancelled by the per-cone deadline watchdog
    /// (`cone_deadline_seconds`). Like `wall_clock_interrupted`, nonzero
    /// means the result is timing-dependent: a rerun may cancel different
    /// cones (or none). Each cancelled cone also appears in `faults` as a
    /// FaultRecord{Cancelled}.
    int deadline_cancelled = 0;
    /// Cones degraded to their original structure by the deterministic
    /// per-cone memory quota (`params.cone_mem_bytes`). Unlike
    /// `deadline_cancelled` this count is deterministic — a pure function
    /// of (input, params) — and each degraded cone appears in `faults`
    /// with stage "memgov" and `recovered = false`.
    int quota_degraded = 0;
    /// A process/batch-level cancellation (CancelToken, e.g. SIGTERM) was
    /// requested during the run: the engine stopped at the next round
    /// boundary and returned the best verified circuit so far. Batch mode
    /// treats such items as *not finished* — they are never journaled, so
    /// `--resume` re-runs them from scratch, byte-identically.
    bool cancelled = false;
    /// Contained faults, appended during the serial commit in deterministic
    /// task order (common/fault.hpp). Every exception that escaped a cone
    /// evaluation — real or injected — lands here with its retry history;
    /// `recovered` tells whether a later ladder rung completed or the cone
    /// deterministically kept its original structure.
    std::vector<FaultRecord> faults;
    std::vector<std::string> log;  ///< human-readable per-iteration notes
};

/// The paper's full timing-driven optimization flow: iterates one level of
/// lookahead decomposition per round over every PO whose cone reaches the
/// current critical depth, rebuilds the circuit, recovers area by SAT
/// sweeping, and verifies each accepted round by CEC. Iterations stop when
/// no output improves or `params.max_iterations` is reached.
///
/// Implemented by the concurrent engine (src/engine/engine.cpp, linked via
/// lls_engine) running serially; `optimize_timing_engine` in
/// engine/engine.hpp exposes the multi-threaded driver with the same QoR.
Aig optimize_timing(const Aig& input, const LookaheadParams& params = {},
                    OptimizeStats* stats = nullptr);

}  // namespace lls
