// A small ALU: add/subtract/AND/OR/XOR/pass on two n-bit operands, selected
// by a 3-bit opcode — the classic mixed arithmetic + control datapath. The
// subtractor shares the adder through the usual invert-and-carry-in trick,
// so the carry chain is exercised by two opcodes and the result mux makes
// every sum bit a late-select consumer.
//
//   $ ./examples/alu_slice [bits]

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "baseline/flows.hpp"
#include "cec/cec.hpp"
#include "common/parse.hpp"
#include "lookahead/optimize.hpp"
#include "mapping/mapper.hpp"

namespace {

lls::Aig alu(int bits) {
    lls::Aig aig;
    std::vector<lls::AigLit> a, b, op;
    for (int i = 0; i < bits; ++i) a.push_back(aig.add_pi("a" + std::to_string(i)));
    for (int i = 0; i < bits; ++i) b.push_back(aig.add_pi("b" + std::to_string(i)));
    for (int i = 0; i < 3; ++i) op.push_back(aig.add_pi("op" + std::to_string(i)));

    // op2 op1 op0: 000 add, 001 sub, 010 and, 011 or, 100 xor, 101 pass-a.
    const lls::AigLit is_sub = aig.land(aig.land(!op[2], !op[1]), op[0]);

    // Shared adder: b is conditionally inverted, carry-in = is_sub.
    std::vector<lls::AigLit> sum(static_cast<std::size_t>(bits));
    lls::AigLit carry = is_sub;
    for (int i = 0; i < bits; ++i) {
        const lls::AigLit bi = aig.lxor(b[static_cast<std::size_t>(i)], is_sub);
        const lls::AigLit p = aig.lxor(a[static_cast<std::size_t>(i)], bi);
        sum[static_cast<std::size_t>(i)] = aig.lxor(p, carry);
        carry = aig.lor(aig.land(a[static_cast<std::size_t>(i)], bi), aig.land(carry, p));
    }

    for (int i = 0; i < bits; ++i) {
        const lls::AigLit ai = a[static_cast<std::size_t>(i)];
        const lls::AigLit bi = b[static_cast<std::size_t>(i)];
        // Result mux over the opcode space.
        const lls::AigLit logic_low = aig.lmux(op[0], aig.lor(ai, bi), aig.land(ai, bi));
        const lls::AigLit logic_high = aig.lmux(op[0], ai, aig.lxor(ai, bi));
        const lls::AigLit arith = sum[static_cast<std::size_t>(i)];
        const lls::AigLit non_arith = aig.lmux(op[2], logic_high, logic_low);
        aig.add_po(aig.lmux(op[1], non_arith, aig.lmux(op[2], logic_high, arith)),
                   "r" + std::to_string(i));
    }
    aig.add_po(carry, "carry_out");
    return aig.cleanup();
}

}  // namespace

int main(int argc, char** argv) {
    int bits = 12;
    if (argc > 1 && !lls::parse_int_option("bits", argv[1], 1, 4096, &bits)) {
        std::fprintf(stderr, "usage: %s [bits]\n", argv[0]);
        return 2;
    }
    const lls::Aig circuit = alu(bits);
    std::printf("%d-bit ALU: %zu PIs, %zu POs, %zu AND nodes, depth %d\n", bits,
                circuit.num_pis(), circuit.num_pos(), circuit.count_reachable_ands(),
                circuit.depth());

    const lls::CellLibrary lib = lls::CellLibrary::generic_70nm();
    lls::Rng rng(4);
    auto report = [&](const char* name, const lls::Aig& opt) {
        if (!lls::check_equivalence(circuit, opt, 2000000).equivalent) {
            std::printf("%s: NOT EQUIVALENT\n", name);
            std::exit(1);
        }
        const lls::MappedCircuit mapped = lls::map_circuit(opt, lib);
        std::printf("%-10s depth=%3d gates=%5zu mapped delay=%6.0f ps power=%.3f mW\n", name,
                    opt.depth(), opt.count_reachable_ands(), mapped.delay_ps, mapped.power_mw);
    };

    report("original", circuit);
    report("DC-like", lls::flow_dc(circuit, rng));

    lls::LookaheadParams params;
    params.max_iterations = 20;
    report("lookahead", lls::optimize_timing(circuit, params));
    return 0;
}
