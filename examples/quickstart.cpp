// Quickstart: build a circuit, run the lookahead timing optimization, verify
// the result, and map it onto the generic standard-cell library.
//
//   $ ./examples/quickstart [bits]
//
// This walks through the whole public API surface in ~60 lines: the AIG
// builder, the optimization entry point, SAT-based equivalence checking,
// and technology mapping.

#include <cstdio>
#include <cstdlib>

#include "cec/cec.hpp"
#include "common/parse.hpp"
#include "io/generators.hpp"
#include "lookahead/optimize.hpp"
#include "mapping/mapper.hpp"

int main(int argc, char** argv) {
    int bits = 12;
    if (argc > 1 && !lls::parse_int_option("bits", argv[1], 1, 4096, &bits)) {
        std::fprintf(stderr, "usage: %s [bits]\n", argv[0]);
        return 2;
    }

    // 1. Build a circuit. Any lls::Aig works; here the classic slow adder.
    //    (You can also construct one gate by gate via aig.add_pi() /
    //    aig.land() / aig.lxor() / aig.add_po(), or load BLIF via
    //    lls::read_blif_file.)
    const lls::Aig circuit = lls::ripple_carry_adder(bits);
    std::printf("input:     %4zu AND nodes, depth %2d\n", circuit.count_reachable_ands(),
                circuit.depth());

    // 2. Optimize. LookaheadParams controls everything; the defaults run the
    //    full flow of the paper (SPCF-guided decomposition + interleaved
    //    restructuring + SAT-sweep area recovery + per-round verification).
    lls::LookaheadParams params;
    lls::OptimizeStats stats;
    const lls::Aig optimized = lls::optimize_timing(circuit, params, &stats);
    std::printf("optimized: %4zu AND nodes, depth %2d (%d decomposition rounds, "
                "%d cones rebuilt)\n",
                stats.final_ands, stats.final_depth, stats.iterations, stats.outputs_decomposed);

    // 3. Verify independently (the flow already checks each round).
    const lls::CecResult cec = lls::check_equivalence(circuit, optimized);
    std::printf("equivalence check: %s\n", cec.equivalent ? "PASS" : "FAIL");
    if (!cec.equivalent) return 1;

    // 4. Map both versions onto the bundled 70nm-style library and compare.
    const lls::CellLibrary library = lls::CellLibrary::generic_70nm();
    const lls::MappedCircuit before = lls::map_circuit(circuit, library);
    const lls::MappedCircuit after = lls::map_circuit(optimized, library);
    std::printf("mapped delay: %.0f ps -> %.0f ps   (area %.1f -> %.1f, power %.3f mW -> "
                "%.3f mW at 1 GHz)\n",
                before.delay_ps, after.delay_ps, before.area, after.area, before.power_mw,
                after.power_mw);
    return 0;
}
