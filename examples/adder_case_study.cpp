// The Sec. 4 workload as a user-facing example: how different fast-adder
// architectures compare, and how the lookahead flow turns the slow
// ripple-carry form into a competitive one automatically.
//
//   $ ./examples/adder_case_study [bits]

#include <cstdio>
#include <cstdlib>

#include "cec/cec.hpp"
#include "common/parse.hpp"
#include "io/generators.hpp"
#include "lookahead/optimize.hpp"
#include "mapping/mapper.hpp"

namespace {

void report(const char* name, const lls::Aig& adder, const lls::CellLibrary& lib) {
    const lls::MappedCircuit mapped = lls::map_circuit(adder, lib);
    std::printf("%-24s depth=%3d  ands=%5zu  mapped delay=%6.0f ps  area=%7.1f\n", name,
                adder.depth(), adder.count_reachable_ands(), mapped.delay_ps, mapped.area);
}

}  // namespace

int main(int argc, char** argv) {
    int bits = 16;
    if (argc > 1 && !lls::parse_int_option("bits", argv[1], 1, 4096, &bits)) {
        std::fprintf(stderr, "usage: %s [bits]\n", argv[0]);
        return 2;
    }
    const lls::CellLibrary lib = lls::CellLibrary::generic_70nm();

    const lls::Aig rca = lls::ripple_carry_adder(bits);
    const lls::Aig cla = lls::carry_lookahead_adder(bits);
    const lls::Aig csa = lls::carry_select_adder(bits, 4);

    std::printf("%d-bit adder architectures:\n", bits);
    report("ripple carry", rca, lib);
    report("carry lookahead", cla, lib);
    report("carry select (4b blocks)", csa, lib);

    // All three compute the same function -- prove it.
    if (!lls::check_equivalence(rca, cla).equivalent ||
        !lls::check_equivalence(rca, csa).equivalent) {
        std::printf("adder architectures disagree!?\n");
        return 1;
    }

    // Let the synthesis flow find a fast realization on its own, starting
    // from the slow one.
    lls::LookaheadParams params;
    params.max_iterations = 16;
    const lls::Aig discovered = lls::optimize_timing(rca, params);
    report("lookahead (discovered)", discovered, lib);

    const bool ok = lls::check_equivalence(rca, discovered).equivalent;
    std::printf("discovered realization is %s to the ripple-carry adder\n",
                ok ? "equivalent" : "NOT EQUIVALENT");
    return ok ? 0 : 1;
}
