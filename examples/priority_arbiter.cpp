// Token-passing arbiter / daisy-chained grant logic: the classic "control
// logic with a rippling critical chain" workload from processor front-ends.
// A token ripples down the chain; a requesting station grabs it and its
// mask bit decides whether the token is regenerated for the stations below
// or killed:
//
//   token_0     = enable
//   grant_i     = token_i & req_i
//   token_{i+1} = req_i ? mask_i : token_i        (a mux recurrence)
//
// Unlike a plain AND chain, the mux recurrence cannot be flattened by
// algebraic tree balancing — exactly the generate/propagate structure the
// lookahead windows capture (req_i = "this station decides", mask_i =
// "generate", !req_i = "propagate").
//
//   $ ./examples/priority_arbiter [width]

#include <cstdio>
#include <cstdlib>

#include "baseline/flows.hpp"
#include "cec/cec.hpp"
#include "common/parse.hpp"
#include "io/generators.hpp"
#include "lookahead/optimize.hpp"
#include "mapping/mapper.hpp"

namespace {

lls::Aig priority_arbiter(int width) {
    lls::Aig aig;
    std::vector<lls::AigLit> req, mask;
    for (int i = 0; i < width; ++i) req.push_back(aig.add_pi("req" + std::to_string(i)));
    for (int i = 0; i < width; ++i) mask.push_back(aig.add_pi("mask" + std::to_string(i)));
    lls::AigLit pass = aig.add_pi("enable");

    for (int i = 0; i < width; ++i) {
        aig.add_po(aig.land(pass, req[i]), "grant" + std::to_string(i));
        pass = aig.lmux(req[i], mask[i], pass);
    }
    aig.add_po(pass, "token_out");  // token state after the last station
    return aig;
}

}  // namespace

int main(int argc, char** argv) {
    int width = 24;
    if (argc > 1 && !lls::parse_int_option("width", argv[1], 1, 4096, &width)) {
        std::fprintf(stderr, "usage: %s [width]\n", argv[0]);
        return 2;
    }
    const lls::Aig arbiter = priority_arbiter(width);
    std::printf("%d-way priority arbiter: %zu AND nodes, depth %d\n", width,
                arbiter.count_reachable_ands(), arbiter.depth());

    const lls::CellLibrary lib = lls::CellLibrary::generic_70nm();
    lls::Rng rng(3);

    auto report = [&](const char* name, const lls::Aig& opt) {
        if (!lls::check_equivalence(arbiter, opt, 2000000).equivalent) {
            std::printf("%s: NOT EQUIVALENT\n", name);
            std::exit(1);
        }
        const lls::MappedCircuit mapped = lls::map_circuit(opt, lib);
        std::printf("%-10s depth=%3d gates=%4zu mapped delay=%6.0f ps\n", name, opt.depth(),
                    opt.count_reachable_ands(), mapped.delay_ps);
    };

    report("original", arbiter);
    report("DC-like", lls::flow_dc(arbiter, rng));

    lls::LookaheadParams params;
    params.max_iterations = 24;
    lls::OptimizeStats stats;
    const lls::Aig ours = lls::optimize_timing(arbiter, params, &stats);
    report("lookahead", ours);
    std::printf("(%d decomposition rounds, %d cones rebuilt; every grant output verified)\n",
                stats.iterations, stats.outputs_decomposed);
    return 0;
}
