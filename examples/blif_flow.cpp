// File-based flow: read a combinational BLIF model, optimize it, verify,
// and write the result back as BLIF (plus an ASCII AIGER dump).
//
//   $ ./examples/blif_flow input.blif output.blif
//
// Without arguments, the example generates a demo input file first so it is
// runnable out of the box.

#include <cstdio>
#include <string>

#include "cec/cec.hpp"
#include "io/blif.hpp"
#include "io/generators.hpp"
#include "lookahead/optimize.hpp"

int main(int argc, char** argv) {
    std::string in_path = argc > 1 ? argv[1] : "demo_in.blif";
    const std::string out_path = argc > 2 ? argv[2] : "demo_out.blif";

    if (argc <= 1) {
        // Self-contained demo: write a 10-bit ripple-carry adder as BLIF.
        lls::write_blif_file(in_path, lls::ripple_carry_adder(10), "demo");
        std::printf("wrote demo input %s\n", in_path.c_str());
    }

    const lls::Aig circuit = lls::read_blif_file(in_path);
    std::printf("read %s: %zu PIs, %zu POs, %zu AND nodes, depth %d\n", in_path.c_str(),
                circuit.num_pis(), circuit.num_pos(), circuit.count_reachable_ands(),
                circuit.depth());

    lls::LookaheadParams params;
    const lls::Aig optimized = lls::optimize_timing(circuit, params);
    const bool ok = lls::check_equivalence(circuit, optimized, 2000000).equivalent;
    std::printf("optimized: depth %d -> %d, %s\n", circuit.depth(), optimized.depth(),
                ok ? "verified equivalent" : "NOT EQUIVALENT");
    if (!ok) return 1;

    lls::write_blif_file(out_path, optimized, "demo_opt");
    lls::write_aiger_file(out_path + ".aag", optimized);
    std::printf("wrote %s and %s.aag\n", out_path.c_str(), out_path.c_str());
    return 0;
}
